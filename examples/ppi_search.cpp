// PPI motif search: the paper's motivating scenario. A STRING-like database
// of probabilistic protein-protein interaction networks is generated with
// the Section 6 max-rule JPTs, the PMI is built and persisted, and a motif
// query workload is answered under both the correlated (COR) and
// independent-edge (IND) models, reporting pruning power and agreement.
//
//   ./examples/ppi_search [--db=N] [--queries=N] [--seed=N]

#include <cstdio>
#include <cstring>
#include <string>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

using namespace pgsim;

namespace {

int64_t FlagInt(int argc, char** argv, const char* key, int64_t fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t db_size = FlagInt(argc, argv, "db", 60);
  const size_t num_queries = FlagInt(argc, argv, "queries", 6);
  const uint64_t seed = FlagInt(argc, argv, "seed", 2024);

  // 1. STRING-like probabilistic PPI database (max-rule JPTs, mean edge
  // probability 0.383 as the paper reports).
  SyntheticOptions dataset;
  dataset.num_graphs = db_size;
  dataset.avg_vertices = 16;
  dataset.edge_factor = 1.55;
  dataset.num_vertex_labels = 8;  // COG-style functional annotations
  dataset.jpt_rule = JptRule::kPaperMax;
  dataset.seed = seed;
  auto db = GenerateDatabase(dataset).value();
  double mean_p = 0.0;
  size_t edges = 0;
  for (const auto& g : db) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      mean_p += g.EdgeMarginal(e);
      ++edges;
    }
  }
  std::printf("PPI database: %zu graphs, %zu interactions, mean Pr = %.3f\n",
              db.size(), edges, mean_p / edges);

  // 2. Build the index once, persist it, and reload (the deployment flow).
  PmiBuildOptions build;
  build.miner.beta = 0.15;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 4;
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  const std::string index_path = "/tmp/pgsim_ppi.pmi";
  if (pmi.Save(index_path).ok()) {
    auto reloaded = ProbabilisticMatrixIndex::Load(index_path);
    std::printf("PMI: %zu features, %.1f KB (saved+reloaded: %s)\n",
                pmi.stats().num_features, pmi.stats().size_bytes / 1024.0,
                reloaded.ok() ? "ok" : "FAILED");
  }

  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  StructuralFilter filter = StructuralFilter::Build(certain, pmi.features());
  QueryProcessor processor(&db, &pmi, &filter);

  // 3. IND counterpart database (product of marginals) for comparison.
  std::vector<ProbabilisticGraph> ind_db;
  for (const auto& g : db) ind_db.push_back(ToIndependentModel(g).value());
  auto ind_pmi = ProbabilisticMatrixIndex::Build(ind_db, build).value();
  StructuralFilter ind_filter =
      StructuralFilter::Build(certain, ind_pmi.features());
  QueryProcessor ind_processor(&ind_db, &ind_pmi, &ind_filter);

  // 4. Motif workload: size-4 motifs extracted from the database itself.
  // With mean interaction probability ~0.4, a 4-edge motif relaxed by one
  // edge survives with SSP around 0.1-0.4, so epsilon = 0.2 separates
  // confident networks from coincidental ones.
  auto queries = GenerateQueries(db, 4, num_queries, seed + 1).value();
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.2;

  std::printf("\n%-6s %-10s %-10s %-8s %-8s %-10s %-10s\n", "query", "|SCq|",
              "verified", "ans_COR", "ans_IND", "agree", "time_ms");
  size_t agreements = 0, comparisons = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryStats stats;
    auto cor_answers = processor.Query(queries[qi], options, &stats);
    auto ind_answers = ind_processor.Query(queries[qi], options);
    if (!cor_answers.ok() || !ind_answers.ok()) continue;
    size_t common = 0;
    for (uint32_t gi : cor_answers.value()) {
      for (uint32_t gj : ind_answers.value()) {
        if (gi == gj) ++common;
      }
    }
    const size_t total =
        cor_answers->size() + ind_answers->size() - common;
    agreements += common;
    comparisons += total;
    std::printf("q%-5zu %-10zu %-10zu %-8zu %-8zu %zu/%-8zu %-10.1f\n", qi,
                stats.structural_candidates, stats.verification_candidates,
                cor_answers->size(), ind_answers->size(), common, total,
                stats.total_seconds * 1e3);
  }
  if (comparisons > 0) {
    std::printf(
        "\nCOR vs IND answer overlap: %.0f%% — the correlated model changes "
        "which PPI networks pass the probability threshold.\n",
        100.0 * agreements / comparisons);
  }
  return 0;
}
