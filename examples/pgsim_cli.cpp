// pgsim command-line tool: generate datasets, build/persist indexes, and run
// T-PS / top-k queries against text-format databases without writing C++.
//
//   pgsim_cli generate --out=db.txt [--graphs=N] [--vertices=N] [--seed=N]
//   pgsim_cli index    --db=db.txt --out=index.pmi [--build-threads=N]
//   pgsim_cli query    --db=db.txt --queries=q.txt [--index=index.pmi]
//                      [--delta=N] [--epsilon=F] [--threads=N] [--chunk=N]
//                      [--scheduler=stealing|chunked] [--task-grain=N]
//                      [--build-threads=N] [--cache=0|1] [--verify-threads=N]
//                      [--answer-cache[=CAP]] [--repeat=N] [--mutate-every=N]
//                      [--wal-dir=DIR] [--snapshot-every=N]
//                      [--signatures=on|off]
//
// --signatures toggles the neighborhood-signature gate (default on): barren
// (rq, candidate) pairs are rejected before VF2 and survivors run over
// signature-built candidate domains. Answers are bit-identical either way;
// the per-pass "signatures ..." line reports the work avoided.
//
// --wal-dir serves from a crash-consistent durable database in DIR: the
// first run initializes it from --db (snapshot generation 0 + empty WAL);
// later runs recover from the checksummed snapshot + WAL tail and ignore
// --db's graphs (--db is still read for its label table, so query label
// names resolve). Mutations (--mutate-every) are WAL-logged and survive a
// kill -9. --snapshot-every=N checkpoints automatically after N mutations,
// truncating the WAL; 0 (default) never checkpoints automatically.
//
// --answer-cache keeps one cross-batch AnswerCache (capacity CAP entries,
// default 1024) across --repeat passes over the query file: repeated passes
// hit it, and any mutation invalidates by epoch. --repeat defaults to 2 when
// the answer cache is on (so the second pass demonstrates hits), else 1.
// --mutate-every=N churns the live database before every Nth pass (adds a
// copy of graph 0, then removes it): epochs bump, cached answers go stale,
// and the reported answer counts stay identical — the live-maintenance
// round-trip guarantee.
//
// --scheduler picks how the batch is distributed across --threads workers:
// "stealing" (default) decomposes each query into a front-stages task plus
// per-candidate verification tasks on a work-stealing scheduler (skewed
// batches keep every worker busy); "chunked" is the plain parallel-for that
// claims --chunk whole queries at a time. Answers are bit-identical either
// way. --task-grain sets verification candidates per stealing task.
//
// --verify-threads fans each query's verification candidates across a pool
// (0 = all hardware threads; answers are byte-identical at any setting). It
// multiplies with --threads, so raise one or the other, not both.
//
// --build-threads parallelizes the offline phase (feature mining, PMI bound
// columns, structural-filter counts) on a thread pool; 0 (default) uses all
// hardware threads and the built index is bit-identical at any setting.
//   pgsim_cli serve    --db=db.txt --queries=q.txt [--index=index.pmi]
//                      [--delta=N] [--epsilon=F] [--threads=N]
//                      [--deadline-ms=N] [--priority=N] [--allow-degraded]
//                      [--cancel-after-draws=N] [--max-queue=N]
//                      [--answer-cache[=CAP]] [--repeat=N] [--mutate-every=N]
//                      [--signatures=on|off]
//
// serve drives the always-on ServingCore instead of a closed batch: every
// query is Submit()ed through the bounded priority admission queue
// (--max-queue slots; overflow sheds kUnavailable with a retry-after hint)
// and resolves to a ticket. --deadline-ms arms a per-query deadline —
// without --allow-degraded a late query resolves DeadlineExceeded; with it,
// the anytime answer (graphs verified so far + per-candidate [lo,hi]
// intervals). --cancel-after-draws=N cuts every candidate's sampling loop
// after N draws (deterministic degradation, byte-identical across runs).
// --mutate-every=N interleaves an add+remove mutation pair through the SAME
// admission queue before every Nth pass. (query also accepts --serve as an
// alias for this mode.)
//
//   pgsim_cli topk     --db=db.txt --queries=q.txt [--index=index.pmi]
//                      [--delta=N] [--k=N]
//   pgsim_cli sample-queries --db=db.txt --out=q.txt [--count=N] [--size=N]
//   pgsim_cli stats    --db=db.txt

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "pgsim/datasets/stats.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/datasets/text_io.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/query/top_k.h"
#include "pgsim/serving/serving_core.h"
#include "pgsim/storage/durable_db.h"

using namespace pgsim;

namespace {

std::string FlagStr(int argc, char** argv, const char* key,
                    const std::string& fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

int64_t FlagInt(int argc, char** argv, const char* key, int64_t fallback) {
  const std::string v = FlagStr(argc, argv, key, "");
  return v.empty() ? fallback : std::atoll(v.c_str());
}

double FlagDouble(int argc, char** argv, const char* key, double fallback) {
  const std::string v = FlagStr(argc, argv, key, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

// True when --KEY appears, bare or as --KEY=VALUE.
bool FlagPresent(int argc, char** argv, const char* key) {
  const std::string bare = std::string("--") + key;
  const std::string prefix = bare + "=";
  for (int i = 2; i < argc; ++i) {
    if (bare == argv[i] ||
        std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return true;
    }
  }
  return false;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: pgsim_cli <generate|index|query|serve|topk|sample-queries> "
      "[--flags]\n  see the header comment of examples/pgsim_cli.cpp\n");
  return 2;
}

// Synthetic label table matching the generator's integer labels.
LabelTable GeneratorLabels(uint32_t num_labels) {
  LabelTable labels;
  for (uint32_t i = 0; i < num_labels; ++i) {
    labels.Intern("L" + std::to_string(i));
  }
  return labels;
}

int CmdGenerate(int argc, char** argv) {
  const std::string out = FlagStr(argc, argv, "out", "pgsim_db.txt");
  SyntheticOptions options;
  options.num_graphs = FlagInt(argc, argv, "graphs", 100);
  options.avg_vertices = FlagInt(argc, argv, "vertices", 14);
  options.num_vertex_labels = FlagInt(argc, argv, "labels", 6);
  options.seed = FlagInt(argc, argv, "seed", 42);
  auto db = GenerateDatabase(options);
  if (!db.ok()) return Fail(db.status());
  const LabelTable labels = GeneratorLabels(options.num_vertex_labels);
  Status s = SaveDatabaseText(out, *db, labels);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu probabilistic graphs to %s\n", db->size(),
              out.c_str());
  return 0;
}

int CmdSampleQueries(int argc, char** argv) {
  const std::string db_path = FlagStr(argc, argv, "db", "pgsim_db.txt");
  const std::string out = FlagStr(argc, argv, "out", "pgsim_queries.txt");
  auto db = LoadDatabaseText(db_path);
  if (!db.ok()) return Fail(db.status());
  auto queries = GenerateQueries(db->graphs, FlagInt(argc, argv, "size", 6),
                                 FlagInt(argc, argv, "count", 10),
                                 FlagInt(argc, argv, "seed", 7));
  if (!queries.ok()) return Fail(queries.status());
  Status s = SaveQueriesText(out, *queries, db->labels);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu queries to %s\n", queries->size(), out.c_str());
  return 0;
}

// Shared --build-threads handling: 0 = all hardware threads (the
// PmiBuildOptions default); negative values are clamped to 1.
uint32_t BuildThreadsFlag(int argc, char** argv) {
  const int64_t threads = FlagInt(argc, argv, "build-threads", 0);
  return threads < 0 ? 1u : static_cast<uint32_t>(threads);
}

int CmdIndex(int argc, char** argv) {
  const std::string db_path = FlagStr(argc, argv, "db", "pgsim_db.txt");
  const std::string out = FlagStr(argc, argv, "out", "pgsim_index.pmi");
  auto db = LoadDatabaseText(db_path);
  if (!db.ok()) return Fail(db.status());
  PmiBuildOptions build;
  build.miner.beta = FlagDouble(argc, argv, "beta", 0.15);
  build.miner.gamma = FlagDouble(argc, argv, "gamma", -1.0);
  build.miner.max_vertices = FlagInt(argc, argv, "maxL", 4);
  build.num_threads = BuildThreadsFlag(argc, argv);
  auto pmi = ProbabilisticMatrixIndex::Build(db->graphs, build);
  if (!pmi.ok()) return Fail(pmi.status());
  Status s = pmi->Save(out);
  if (!s.ok()) return Fail(s);
  std::printf(
      "indexed %u graphs: %zu features, %zu entries, %.1f KB -> %s "
      "(%.2f s = %.2f mining + %.2f bounds, %u thread(s))\n",
      pmi->num_graphs(), pmi->stats().num_features, pmi->stats().num_entries,
      pmi->stats().size_bytes / 1024.0, out.c_str(),
      pmi->stats().total_seconds, pmi->stats().mining_seconds,
      pmi->stats().bounds_seconds, pmi->stats().build_threads);
  return 0;
}

struct LoadedSetup {
  TextDatabase db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
  std::vector<Graph> queries;
};

// Loads --db and --queries; builds (or loads) the PMI + structural filter
// unless `need_index` is false (the durable --wal-dir path owns its own
// index inside the snapshot and only needs the label table + queries here).
Result<LoadedSetup> LoadSetup(int argc, char** argv, bool need_index = true) {
  LoadedSetup s;
  PGSIM_ASSIGN_OR_RETURN(
      s.db, LoadDatabaseText(FlagStr(argc, argv, "db", "pgsim_db.txt")));
  const uint32_t build_threads = BuildThreadsFlag(argc, argv);
  if (need_index) {
    const std::string index_path = FlagStr(argc, argv, "index", "");
    if (index_path.empty()) {
      PmiBuildOptions build;
      build.miner.gamma = -1.0;
      build.num_threads = build_threads;
      PGSIM_ASSIGN_OR_RETURN(
          s.pmi, ProbabilisticMatrixIndex::Build(s.db.graphs, build));
    } else {
      PGSIM_ASSIGN_OR_RETURN(s.pmi, ProbabilisticMatrixIndex::Load(index_path));
      if (s.pmi.num_graphs() != s.db.graphs.size()) {
        return Status::InvalidArgument(
            "index was built for a different database size");
      }
    }
    for (const auto& g : s.db.graphs) s.certain.push_back(g.certain());
    StructuralFilterOptions filter_options;
    filter_options.num_threads = build_threads;
    s.filter = StructuralFilter::Build(s.certain, s.pmi.features(),
                                       filter_options);
  }
  PGSIM_ASSIGN_OR_RETURN(
      s.queries,
      LoadQueriesText(FlagStr(argc, argv, "queries", "pgsim_queries.txt"),
                      &s.db.labels));
  return s;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

int CmdQuery(int argc, char** argv) {
  const std::string wal_dir = FlagStr(argc, argv, "wal-dir", "");
  auto setup = LoadSetup(argc, argv, /*need_index=*/wal_dir.empty());
  if (!setup.ok()) return Fail(setup.status());
  QueryOptions options;
  options.delta = FlagInt(argc, argv, "delta", 1);
  options.epsilon = FlagDouble(argc, argv, "epsilon", 0.5);
  const int64_t verify_threads = FlagInt(argc, argv, "verify-threads", 1);
  options.verify_threads =
      verify_threads < 0 ? 1 : static_cast<uint32_t>(verify_threads);
  const std::string signatures = FlagStr(argc, argv, "signatures", "on");
  if (signatures == "on") {
    options.use_signatures = true;
  } else if (signatures == "off") {
    options.use_signatures = false;
  } else {
    std::fprintf(stderr, "unknown --signatures=%s (on|off)\n",
                 signatures.c_str());
    return 2;
  }
  BatchOptions batch;
  // Clamp: negative flag values would wrap through the uint32 fields.
  const int64_t threads = FlagInt(argc, argv, "threads", 1);
  const int64_t chunk = FlagInt(argc, argv, "chunk", 4);
  batch.num_threads = threads < 0 ? 1 : static_cast<uint32_t>(threads);
  batch.chunk_size = chunk < 1 ? 1 : static_cast<uint32_t>(chunk);
  batch.enable_cache = FlagInt(argc, argv, "cache", 1) != 0;
  const std::string scheduler = FlagStr(argc, argv, "scheduler", "stealing");
  if (scheduler == "chunked") {
    batch.scheduler = BatchOptions::Scheduler::kChunked;
  } else if (scheduler == "stealing") {
    batch.scheduler = BatchOptions::Scheduler::kStealing;
  } else {
    std::fprintf(stderr, "unknown --scheduler=%s (chunked|stealing)\n",
                 scheduler.c_str());
    return 2;
  }
  const int64_t task_grain = FlagInt(argc, argv, "task-grain", 1);
  batch.task_grain = task_grain < 1 ? 1 : static_cast<uint32_t>(task_grain);

  // Cross-batch answer cache + live-mutation churn knobs.
  const bool answer_cache_on = FlagPresent(argc, argv, "answer-cache");
  AnswerCacheOptions cache_options;
  const int64_t cap = FlagInt(argc, argv, "answer-cache", 0);
  if (cap > 0) cache_options.max_entries = static_cast<size_t>(cap);
  AnswerCache answer_cache(cache_options);
  if (answer_cache_on) batch.answer_cache = &answer_cache;
  const int64_t repeat_flag =
      FlagInt(argc, argv, "repeat", answer_cache_on ? 2 : 1);
  const size_t repeat = repeat_flag < 1 ? 1 : static_cast<size_t>(repeat_flag);
  const int64_t mutate_every = FlagInt(argc, argv, "mutate-every", 0);

  // --wal-dir: serve from a crash-consistent durable database instead of
  // the in-memory setup. First run seeds it from --db; later runs recover
  // snapshot + WAL and --db contributes only its label table.
  std::unique_ptr<DurableDatabase> durable;
  std::unique_ptr<QueryProcessor> local;
  QueryProcessor* processor = nullptr;
  if (!wal_dir.empty()) {
    DurableDbOptions durable_options;
    const int64_t every = FlagInt(argc, argv, "snapshot-every", 0);
    durable_options.snapshot_every =
        every < 0 ? 0 : static_cast<uint32_t>(every);
    if (FileExists(wal_dir + "/MANIFEST")) {
      auto opened = DurableDatabase::Open(wal_dir, durable_options);
      if (!opened.ok()) return Fail(opened.status());
      durable = std::move(*opened);
      const RecoveryStats& rec = durable->recovery();
      std::printf(
          "wal-dir %s: recovered generation %llu (epoch %llu), replayed "
          "%zu of %zu WAL records (%zu already in snapshot)%s\n",
          wal_dir.c_str(), static_cast<unsigned long long>(rec.snapshot_gen),
          static_cast<unsigned long long>(rec.snapshot_epoch),
          rec.wal_records_replayed, rec.wal_records_seen,
          rec.wal_records_skipped,
          rec.wal_tail_truncated ? ", torn tail truncated" : "");
    } else {
      PmiBuildOptions build;
      build.miner.gamma = -1.0;
      build.num_threads = BuildThreadsFlag(argc, argv);
      StructuralFilterOptions filter_options;
      filter_options.num_threads = build.num_threads;
      auto created = DurableDatabase::Create(wal_dir, setup->db.graphs, build,
                                             filter_options, durable_options);
      if (!created.ok()) return Fail(created.status());
      durable = std::move(*created);
      std::printf("wal-dir %s: initialized with %zu graphs (generation 0)\n",
                  wal_dir.c_str(), setup->db.graphs.size());
    }
    processor = &durable->processor();
  } else {
    local = std::make_unique<QueryProcessor>(&setup->db.graphs, &setup->pmi,
                                             &setup->filter);
    processor = local.get();
  }
  for (size_t pass = 0; pass < repeat; ++pass) {
    if (mutate_every > 0 && pass > 0 &&
        pass % static_cast<size_t>(mutate_every) == 0) {
      // Churn the live database: add a copy of graph 0, then remove it.
      // Ids are stable and the round trip leaves every structure serving
      // the same answers — only the epoch moves (staling cached answers).
      // With --wal-dir the pair is logged and fsync'd, so it survives a
      // crash at any point between the two.
      const ProbabilisticGraph copy = setup->db.graphs[0];
      auto added = durable ? durable->AddGraph(copy, /*seed=*/1000 + pass)
                           : processor->AddGraph(copy, /*seed=*/1000 + pass);
      if (!added.ok()) return Fail(added.status());
      Status removed = durable ? durable->RemoveGraph(added.value())
                               : processor->RemoveGraph(added.value());
      if (!removed.ok()) return Fail(removed);
      std::printf("pass %zu: mutated (add+remove graph copy), epoch now %llu\n",
                  pass, static_cast<unsigned long long>(processor->epoch()));
    }
    BatchStats batch_stats;
    const auto results =
        processor->QueryBatch(setup->queries, options, batch, &batch_stats);
    if (pass == 0) {
      std::printf("%-7s %-8s %-10s %-9s %-9s %-8s\n", "query", "|SCq|",
                  "verified", "answers", "ids", "time_ms");
      for (size_t qi = 0; qi < results.size(); ++qi) {
        const BatchQueryResult& r = results[qi];
        if (!r.status.ok()) {
          std::printf("q%-6zu %s\n", qi, r.status.ToString().c_str());
          continue;
        }
        std::string ids;
        for (uint32_t gi : r.answers) ids += std::to_string(gi) + " ";
        std::printf("q%-6zu %-8zu %-10zu %-9zu %-9s %-8.1f\n", qi,
                    r.stats.structural_candidates,
                    r.stats.verification_candidates, r.answers.size(),
                    ids.empty() ? "-" : ids.c_str(),
                    r.stats.total_seconds * 1e3);
      }
    }
    std::printf(
        "pass %zu: %zu queries, %zu answers, %zu failed | %u thread(s) | "
        "wall %.1f ms, cpu %.1f ms, %.1f queries/s\n",
        pass, batch_stats.num_queries, batch_stats.total_answers,
        batch_stats.failed_queries, batch_stats.threads_used,
        batch_stats.wall_seconds * 1e3, batch_stats.sum_query_seconds * 1e3,
        batch_stats.wall_seconds > 0.0
            ? batch_stats.num_queries / batch_stats.wall_seconds
            : 0.0);
    if (batch_stats.tasks_executed > 0) {
      std::printf(
          "scheduler: %zu tasks (%zu stolen, %zu steal probes), queue depth "
          "%zu, %zu overlapped verify tasks, %.1f ms summed queue wait\n",
          batch_stats.tasks_executed, batch_stats.tasks_stolen,
          batch_stats.steal_attempts, batch_stats.max_queue_depth,
          batch_stats.overlapped_verify_tasks,
          batch_stats.sum_queue_wait_seconds * 1e3);
    }
    if (batch.enable_cache) {
      std::printf(
          "cache: relax %zu/%zu hits, counts %zu/%zu hits, pruner %zu/%zu "
          "hits, %zu uncacheable (%.1f ms probing)\n",
          batch_stats.relax_cache_hits,
          batch_stats.relax_cache_hits + batch_stats.relax_cache_misses,
          batch_stats.counts_cache_hits,
          batch_stats.counts_cache_hits + batch_stats.counts_cache_misses,
          batch_stats.prepared_cache_hits,
          batch_stats.prepared_cache_hits + batch_stats.prepared_cache_misses,
          batch_stats.cache_uncacheable, batch_stats.cache_seconds * 1e3);
    }
    std::printf(
        "signatures %s: %zu pairs rejected, %zu domain candidates pruned, "
        "%zu VF2 calls avoided\n",
        options.use_signatures ? "on" : "off", batch_stats.sig_pairs_rejected,
        batch_stats.domain_candidates_pruned, batch_stats.vf2_calls_avoided);
    if (answer_cache_on) {
      std::printf(
          "answer-cache: %zu hits, %zu misses (%zu stale), %zu evictions | "
          "%zu entries, epoch %llu\n",
          batch_stats.answer_cache_hits, batch_stats.answer_cache_misses,
          batch_stats.answer_cache_stale, batch_stats.answer_cache_evictions,
          answer_cache.size(),
          static_cast<unsigned long long>(processor->epoch()));
    }
  }
  if (durable) {
    std::printf(
        "wal-dir %s: generation %llu, epoch %llu, %llu mutations since "
        "checkpoint, wal %llu bytes\n",
        wal_dir.c_str(),
        static_cast<unsigned long long>(durable->snapshot_generation()),
        static_cast<unsigned long long>(durable->epoch()),
        static_cast<unsigned long long>(durable->mutations_since_checkpoint()),
        static_cast<unsigned long long>(durable->wal_size_bytes()));
  }
  return 0;
}

// The always-on serving mode: every query goes through the ServingCore's
// bounded priority admission queue and resolves to a ticket, with optional
// deadlines, anytime degradation, and mutation interleaving.
int CmdServe(int argc, char** argv) {
  auto setup = LoadSetup(argc, argv);
  if (!setup.ok()) return Fail(setup.status());

  ServingOptions so;
  const int64_t threads = FlagInt(argc, argv, "threads", 0);
  so.num_threads = threads < 0 ? 0 : static_cast<uint32_t>(threads);
  const int64_t max_queue = FlagInt(argc, argv, "max-queue", 256);
  so.max_queue = max_queue < 0 ? 0 : static_cast<size_t>(max_queue);
  so.query.delta = FlagInt(argc, argv, "delta", 1);
  so.query.epsilon = FlagDouble(argc, argv, "epsilon", 0.5);
  const std::string signatures = FlagStr(argc, argv, "signatures", "on");
  if (signatures == "on") {
    so.query.use_signatures = true;
  } else if (signatures == "off") {
    so.query.use_signatures = false;
  } else {
    std::fprintf(stderr, "unknown --signatures=%s (on|off)\n",
                 signatures.c_str());
    return 2;
  }

  const bool answer_cache_on = FlagPresent(argc, argv, "answer-cache");
  AnswerCacheOptions cache_options;
  const int64_t cap = FlagInt(argc, argv, "answer-cache", 0);
  if (cap > 0) cache_options.max_entries = static_cast<size_t>(cap);
  AnswerCache answer_cache(cache_options);
  if (answer_cache_on) so.answer_cache = &answer_cache;

  SubmitOptions submit;
  submit.deadline_ms = FlagInt(argc, argv, "deadline-ms", -1);
  submit.priority = static_cast<int>(FlagInt(argc, argv, "priority", 0));
  submit.allow_degraded = FlagPresent(argc, argv, "allow-degraded");
  const int64_t draws = FlagInt(argc, argv, "cancel-after-draws", 0);
  submit.cancel_after_draws = draws < 0 ? 0 : static_cast<uint64_t>(draws);

  const int64_t repeat_flag =
      FlagInt(argc, argv, "repeat", answer_cache_on ? 2 : 1);
  const size_t repeat = repeat_flag < 1 ? 1 : static_cast<size_t>(repeat_flag);
  const int64_t mutate_every = FlagInt(argc, argv, "mutate-every", 0);

  QueryProcessor processor(&setup->db.graphs, &setup->pmi, &setup->filter);
  ServingCore core(&processor, so);

  for (size_t pass = 0; pass < repeat; ++pass) {
    if (mutate_every > 0 && pass > 0 &&
        pass % static_cast<size_t>(mutate_every) == 0) {
      // Same add+remove churn as `query`, but interleaved through the
      // admission queue: the pair waits for in-flight queries, never for
      // whole batches.
      QueryTicket add =
          core.SubmitAddGraph(setup->db.graphs[0], /*seed=*/1000 + pass);
      const ServeResult& added = add.Wait();
      if (!added.status.ok()) return Fail(added.status);
      QueryTicket remove = core.SubmitRemoveGraph(added.graph_id);
      const ServeResult& removed = remove.Wait();
      if (!removed.status.ok()) return Fail(removed.status);
      std::printf("pass %zu: mutated via queue, epoch now %llu\n", pass,
                  static_cast<unsigned long long>(removed.epoch));
    }

    std::vector<QueryTicket> tickets;
    tickets.reserve(setup->queries.size());
    WallTimer pass_timer;
    for (const Graph& q : setup->queries) {
      tickets.push_back(core.Submit(q, submit));
    }
    size_t answers = 0, shed = 0, deadline = 0, degraded = 0, failed = 0;
    for (size_t qi = 0; qi < tickets.size(); ++qi) {
      const ServeResult& r = tickets[qi].Wait();
      if (r.status.ok()) {
        answers += r.answers.size();
        degraded += r.degraded;
      } else if (r.status.code() == StatusCode::kUnavailable) {
        ++shed;
      } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
        ++deadline;
      } else {
        ++failed;
      }
      if (pass == 0) {
        std::string ids;
        for (uint32_t gi : r.answers) ids += std::to_string(gi) + " ";
        if (r.status.ok()) {
          std::printf("q%-6zu %-9zu %-9s %s%s\n", qi, r.answers.size(),
                      ids.empty() ? "-" : ids.c_str(),
                      r.degraded ? "degraded " : "exact",
                      r.degraded
                          ? ("(" + std::to_string(r.intervals.size()) +
                             " open intervals)")
                                .c_str()
                          : "");
          for (const IntervalAnswer& ia : r.intervals) {
            std::printf("   graph %-4u est=%.3f [%.3f, %.3f] after %llu "
                        "draws\n",
                        ia.graph_id, ia.estimate, ia.lo, ia.hi,
                        static_cast<unsigned long long>(ia.samples));
          }
        } else {
          std::printf("q%-6zu %s%s\n", qi, r.status.ToString().c_str(),
                      r.status.code() == StatusCode::kUnavailable
                          ? (" (retry after " +
                             std::to_string(r.retry_after_seconds) + "s)")
                                .c_str()
                          : "");
        }
      }
    }
    const double wall = pass_timer.Seconds();
    std::printf(
        "pass %zu: %zu queries | %zu answers, %zu degraded, %zu deadline, "
        "%zu shed, %zu failed | wall %.1f ms, %.1f queries/s\n",
        pass, tickets.size(), answers, degraded, deadline, shed, failed,
        wall * 1e3, wall > 0.0 ? tickets.size() / wall : 0.0);
  }
  core.Shutdown();
  const ServingStats st = core.stats();
  std::printf(
      "serving: %llu submitted, %llu admitted, %llu cache hits, %llu waves, "
      "%llu mutations, %llu double-resolves\n",
      static_cast<unsigned long long>(st.submitted),
      static_cast<unsigned long long>(st.admitted),
      static_cast<unsigned long long>(st.answer_cache_hits),
      static_cast<unsigned long long>(st.waves),
      static_cast<unsigned long long>(st.mutations_applied),
      static_cast<unsigned long long>(st.double_resolves));
  std::printf(
      "signatures %s: %llu pairs rejected, %llu domain candidates pruned, "
      "%llu VF2 calls avoided\n",
      so.query.use_signatures ? "on" : "off",
      static_cast<unsigned long long>(st.sig_pairs_rejected),
      static_cast<unsigned long long>(st.domain_candidates_pruned),
      static_cast<unsigned long long>(st.vf2_calls_avoided));
  return 0;
}

int CmdTopK(int argc, char** argv) {
  auto setup = LoadSetup(argc, argv);
  if (!setup.ok()) return Fail(setup.status());
  TopKOptions options;
  options.delta = FlagInt(argc, argv, "delta", 1);
  options.k = FlagInt(argc, argv, "k", 5);
  for (size_t qi = 0; qi < setup->queries.size(); ++qi) {
    auto result = TopKQuery(setup->db.graphs, setup->pmi, &setup->filter,
                            setup->queries[qi], options);
    if (!result.ok()) {
      std::printf("q%zu: %s\n", qi, result.status().ToString().c_str());
      continue;
    }
    std::printf("q%zu: verified %zu of %zu candidates (%zu cut by bound)\n",
                qi, result->verified, result->structural_candidates,
                result->skipped_by_bound);
    for (const TopKEntry& e : result->entries) {
      std::printf("   graph %-4u ssp=%.3f (usim=%.3f)\n", e.graph_id, e.ssp,
                  e.usim);
    }
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  auto db = LoadDatabaseText(FlagStr(argc, argv, "db", "pgsim_db.txt"));
  if (!db.ok()) return Fail(db.status());
  const DatabaseStats stats = ComputeDatabaseStats(db->graphs);
  std::fputs(FormatDatabaseStats(stats).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "index") return CmdIndex(argc, argv);
  if (command == "query") {
    // --serve is an alias: route to the always-on serving mode.
    return FlagPresent(argc, argv, "serve") ? CmdServe(argc, argv)
                                            : CmdQuery(argc, argv);
  }
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "topk") return CmdTopK(argc, argv);
  if (command == "sample-queries") return CmdSampleQueries(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  return Usage();
}
