// Quickstart: build a tiny probabilistic graph database by hand (the
// Figure 1 setting of the paper), index it, and run one threshold-based
// probabilistic subgraph similarity (T-PS) query end to end.
//
//   ./examples/quickstart

#include <cstdio>

#include "pgsim/graph/label_table.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

using namespace pgsim;

namespace {

// A small protein-interaction-style probabilistic graph: a hub protein with
// correlated interactions (one JPT per neighbor edge set).
Result<ProbabilisticGraph> MakeProbGraph(LabelTable* labels, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder;
  const LabelId kinase = labels->Intern("kinase");
  const LabelId transporter = labels->Intern("transporter");
  const LabelId ligase = labels->Intern("ligase");
  const LabelId interacts = labels->Intern("interacts");

  // A hub (kinase) touching four partners plus a side interaction.
  const VertexId hub = builder.AddVertex(kinase);
  const VertexId a = builder.AddVertex(transporter);
  const VertexId b = builder.AddVertex(ligase);
  const VertexId c = builder.AddVertex(transporter);
  const VertexId d = builder.AddVertex(kinase);
  EdgeId e0 = builder.AddEdge(hub, a, interacts).value();
  EdgeId e1 = builder.AddEdge(hub, b, interacts).value();
  EdgeId e2 = builder.AddEdge(hub, c, interacts).value();
  EdgeId e3 = builder.AddEdge(hub, d, interacts).value();
  EdgeId e4 = builder.AddEdge(a, b, interacts).value();
  Graph certain = builder.Build();

  // Correlated neighbor edge sets: the hub's four edges in two JPTs of
  // arity 2, plus the side edge alone. Random-but-seeded tables.
  auto random_table = [&rng](uint32_t arity) {
    std::vector<double> w(1ULL << arity);
    for (auto& x : w) x = 0.05 + rng.UniformDouble();
    return JointProbTable::FromWeights(w).value();
  };
  std::vector<NeighborEdgeSet> ne_sets(3);
  ne_sets[0].edges = {e0, e1};
  ne_sets[0].table = random_table(2);
  ne_sets[1].edges = {e2, e3};
  ne_sets[1].table = random_table(2);
  ne_sets[2].edges = {e4};
  ne_sets[2].table = random_table(1);
  return ProbabilisticGraph::Create(std::move(certain), std::move(ne_sets));
}

}  // namespace

int main() {
  LabelTable labels;

  // 1. A database of probabilistic graphs.
  std::vector<ProbabilisticGraph> db;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    db.push_back(MakeProbGraph(&labels, seed).value());
  }
  std::printf("database: %zu probabilistic graphs\n", db.size());

  // 2. Build the Probabilistic Matrix Index (features + SIP bounds).
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  std::printf("PMI: %zu features, %zu entries, %.1f KB\n",
              pmi.stats().num_features, pmi.stats().num_entries,
              pmi.stats().size_bytes / 1024.0);

  // 3. Structural filter over the certain graphs.
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  StructuralFilter filter = StructuralFilter::Build(certain, pmi.features());

  // 4. The query: kinase-hub motif "transporter - kinase - kinase".
  GraphBuilder qb;
  const VertexId q0 = qb.AddVertex(labels.Lookup("transporter"));
  const VertexId q1 = qb.AddVertex(labels.Lookup("kinase"));
  const VertexId q2 = qb.AddVertex(labels.Lookup("kinase"));
  (void)qb.AddEdge(q0, q1, labels.Lookup("interacts"));
  (void)qb.AddEdge(q1, q2, labels.Lookup("interacts"));
  const Graph query = qb.Build();

  // 5. T-PS query: distance threshold 1, probability threshold 0.4.
  QueryProcessor processor(&db, &pmi, &filter);
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.4;
  QueryStats stats;
  auto answers = processor.Query(query, options, &stats);
  if (!answers.ok()) {
    std::printf("query failed: %s\n", answers.status().ToString().c_str());
    return 1;
  }

  std::printf("\nT-PS query (delta=1, epsilon=0.4)\n");
  std::printf("  relaxed queries |U|        : %zu\n",
              stats.num_relaxed_queries);
  std::printf("  structural candidates |SCq|: %zu\n",
              stats.structural_candidates);
  std::printf("  pruned by Usim < eps       : %zu\n", stats.pruned_by_upper);
  std::printf("  accepted by Lsim >= eps    : %zu\n",
              stats.accepted_by_lower);
  std::printf("  verified by sampling       : %zu\n",
              stats.verification_candidates);
  std::printf("  answers                    : %zu graphs {", stats.answers);
  for (uint32_t gi : answers.value()) std::printf(" %u", gi);
  std::printf(" }\n  total time                 : %.1f ms\n",
              stats.total_seconds * 1e3);
  return 0;
}
