// Road-network route reliability: the paper's second motivating scenario
// ([8, 16]): edges are road segments whose availability (not congested) is
// uncertain, and congestion is *correlated* between segments that meet at a
// junction ("a busy traffic path often blocking traffics in nearby paths").
//
// A fleet of district maps is generated as grid-like probabilistic graphs
// with comonotone JPTs at junctions; the query is a route motif
// (checkpoint - highway - checkpoint) and the T-PS query returns districts
// where a route within distance delta exists with probability >= epsilon.
//
//   ./examples/road_network

#include <cstdio>

#include "pgsim/graph/label_table.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

using namespace pgsim;

namespace {

// A w x h grid road map. Vertex labels: junction kind; edge labels: road
// kind. Junction-incident edges share comonotone congestion JPTs.
Result<ProbabilisticGraph> MakeDistrict(LabelTable* labels, uint32_t w,
                                        uint32_t h, uint64_t seed) {
  Rng rng(seed);
  const LabelId junction = labels->Intern("junction");
  const LabelId checkpoint = labels->Intern("checkpoint");
  const LabelId road = labels->Intern("road");
  const LabelId highway = labels->Intern("highway");

  GraphBuilder builder;
  for (uint32_t y = 0; y < h; ++y) {
    for (uint32_t x = 0; x < w; ++x) {
      // Sparse checkpoints at ~1/4 of the junctions.
      builder.AddVertex(rng.Bernoulli(0.25) ? checkpoint : junction);
    }
  }
  auto vertex = [&](uint32_t x, uint32_t y) { return y * w + x; };
  std::vector<EdgeId> edge_ids;
  for (uint32_t y = 0; y < h; ++y) {
    for (uint32_t x = 0; x < w; ++x) {
      const LabelId kind = rng.Bernoulli(0.3) ? highway : road;
      if (x + 1 < w) {
        edge_ids.push_back(
            builder.AddEdge(vertex(x, y), vertex(x + 1, y), kind).value());
      }
      if (y + 1 < h) {
        const LabelId kind2 = rng.Bernoulli(0.3) ? highway : road;
        edge_ids.push_back(
            builder.AddEdge(vertex(x, y), vertex(x, y + 1), kind2).value());
      }
    }
  }
  Graph certain = builder.Build();

  // Junction-anchored ne sets with strongly comonotone congestion: if one
  // approach to a junction is jammed, its neighbors likely are too.
  std::vector<char> assigned(certain.NumEdges(), 0);
  std::vector<NeighborEdgeSet> ne_sets;
  for (VertexId v = 0; v < certain.NumVertices(); ++v) {
    std::vector<EdgeId> pool;
    for (const AdjEntry& adj : certain.Neighbors(v)) {
      if (!assigned[adj.edge]) pool.push_back(adj.edge);
    }
    size_t i = 0;
    while (i < pool.size()) {
      const size_t take = std::min<size_t>(3, pool.size() - i);
      NeighborEdgeSet ne;
      ne.edges.assign(pool.begin() + i, pool.begin() + i + take);
      for (EdgeId e : ne.edges) assigned[e] = 1;
      // Availability 0.45-0.75, correlation weight 0.5.
      const double p = 0.45 + 0.3 * rng.UniformDouble();
      std::vector<double> weights(1ULL << take);
      for (uint32_t mask = 0; mask < weights.size(); ++mask) {
        double independent = 1.0;
        for (size_t j = 0; j < take; ++j) {
          independent *= ((mask >> j) & 1U) ? p : 1.0 - p;
        }
        weights[mask] = 0.5 * independent;
      }
      weights[weights.size() - 1] += 0.5 * p;
      weights[0] += 0.5 * (1.0 - p);
      ne.table = JointProbTable::FromWeights(weights).value();
      ne_sets.push_back(std::move(ne));
      i += take;
    }
  }
  return ProbabilisticGraph::Create(std::move(certain), std::move(ne_sets));
}

}  // namespace

int main() {
  LabelTable labels;

  // 1. Twelve district maps.
  std::vector<ProbabilisticGraph> districts;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    districts.push_back(MakeDistrict(&labels, 4, 3, seed).value());
  }
  std::printf("road database: %zu district maps (4x3 grids)\n",
              districts.size());

  // 2. Index.
  PmiBuildOptions build;
  build.miner.beta = 0.3;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  auto pmi = ProbabilisticMatrixIndex::Build(districts, build).value();
  std::vector<Graph> certain;
  for (const auto& g : districts) certain.push_back(g.certain());
  StructuralFilter filter = StructuralFilter::Build(certain, pmi.features());
  QueryProcessor processor(&districts, &pmi, &filter);

  // 3. Route motif: checkpoint -highway- junction -road- checkpoint.
  GraphBuilder qb;
  const VertexId c1 = qb.AddVertex(labels.Lookup("checkpoint"));
  const VertexId j = qb.AddVertex(labels.Lookup("junction"));
  const VertexId c2 = qb.AddVertex(labels.Lookup("checkpoint"));
  (void)qb.AddEdge(c1, j, labels.Lookup("highway"));
  (void)qb.AddEdge(j, c2, labels.Lookup("road"));
  const Graph route = qb.Build();

  // 4. Sweep the reliability threshold.
  std::printf("\n%-10s %-26s %-12s\n", "epsilon", "districts with route",
              "time_ms");
  for (double epsilon : {0.2, 0.4, 0.6}) {
    QueryOptions options;
    options.delta = 0;  // the route must be fully available
    options.epsilon = epsilon;
    QueryStats stats;
    auto answers = processor.Query(route, options, &stats);
    if (!answers.ok()) {
      std::printf("%.1f       query failed: %s\n", epsilon,
                  answers.status().ToString().c_str());
      continue;
    }
    std::string ids;
    for (uint32_t gi : answers.value()) ids += " " + std::to_string(gi);
    std::printf("%-10.1f %-2zu districts:%-12s %-12.1f\n", epsilon,
                answers->size(), ids.c_str(), stats.total_seconds * 1e3);
  }
  std::printf(
      "\nHigher epsilon keeps only districts whose route survives correlated "
      "congestion with high probability.\n");
  return 0;
}
