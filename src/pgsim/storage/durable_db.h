// Crash-consistent live database: a mutable QueryProcessor wired through a
// write-ahead log and checksummed snapshots.
//
// Directory layout:
//
//   <dir>/MANIFEST        checksummed pointer {generation, epoch}; renamed
//                         into place atomically — the ONLY commit point
//   <dir>/snap-<gen>.db      the probabilistic graphs (PGDB container)
//   <dir>/snap-<gen>.pmi     the PMI (PMI3 container)
//   <dir>/snap-<gen>.filter  the structural filter (PGSF container)
//   <dir>/wal.log            the mutation log (storage/wal.h)
//
// Durability protocol:
//
//   * Every mutation (AddGraph / RemoveGraph / Compact) is appended to the
//     WAL and fsync'd BEFORE the in-memory serving structures change. The
//     record carries the processor epoch it was applied at (epoch_before).
//   * Checkpoint() writes a fresh snapshot generation (each file installed
//     atomically via temp + fsync + rename), then atomically installs a new
//     MANIFEST pointing at it, then truncates the WAL and unlinks the old
//     generation. A crash anywhere leaves either the old generation + full
//     WAL or the new generation (+ a WAL whose records are skipped by the
//     epoch rule below) — never a torn state.
//   * Open() loads the MANIFEST generation, verifies every checksum
//     (corruption is Status::DataLoss, never a silently wrong database),
//     replays the WAL tail on top: records with epoch_before < the snapshot
//     epoch are already inside the snapshot and are skipped; the rest must
//     chain exactly (record.epoch_before == current epoch) and are
//     re-applied through the same QueryProcessor mutation code that ran the
//     first time — including deterministic auto-compaction — so the
//     recovered processor answers queries bit-identically to the
//     pre-crash one.
//
// Concurrency: queries run on processor() under its own reader/writer lock;
// mutations and checkpoints additionally serialize on an internal mutex, so
// an AddGraph issued while a checkpoint is writing simply waits (and a
// checkpoint observes a frozen mutation state).
//
// Every IO step passes through a named failpoint site (common/failpoint.h);
// the recovery test harness kills the process at each one and asserts the
// reopened database equals the pre- or post-mutation state.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/storage/wal.h"

namespace pgsim {

/// Durability knobs.
struct DurableDbOptions {
  /// Automatically Checkpoint() after this many mutations (0 = only when
  /// Checkpoint() is called explicitly). Each checkpoint truncates the WAL,
  /// bounding both recovery replay time and log growth.
  uint32_t snapshot_every = 0;
};

/// What Open() did to bring the database back.
struct RecoveryStats {
  uint64_t snapshot_gen = 0;    ///< generation the MANIFEST pointed at
  uint64_t snapshot_epoch = 0;  ///< epoch the snapshot was taken at
  size_t wal_records_seen = 0;      ///< intact records decoded from the log
  size_t wal_records_replayed = 0;  ///< records applied on top of the snapshot
  size_t wal_records_skipped = 0;   ///< records already inside the snapshot
  bool wal_tail_truncated = false;  ///< a torn/corrupt tail was discarded
  uint64_t wal_bytes_truncated = 0;
};

/// A QueryProcessor whose mutations survive crashes.
class DurableDatabase {
 public:
  /// Initializes `dir` as a durable database: builds the PMI and structural
  /// filter over `database`, writes snapshot generation 0 + MANIFEST, and
  /// starts an empty WAL. Fails with FailedPrecondition if `dir` already
  /// holds a durable database (Open it instead).
  static Result<std::unique_ptr<DurableDatabase>> Create(
      const std::string& dir, std::vector<ProbabilisticGraph> database,
      const PmiBuildOptions& build = PmiBuildOptions(),
      const StructuralFilterOptions& filter_options =
          StructuralFilterOptions(),
      const DurableDbOptions& options = DurableDbOptions());

  /// Recovers the database from `dir`: loads the MANIFEST snapshot
  /// generation (every checksum verified), replays the WAL tail, truncating
  /// a torn final record. See recovery() for what was done.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      const std::string& dir,
      const DurableDbOptions& options = DurableDbOptions());

  /// The serving pipeline. Queries (Query/QueryBatch/ExactScan) run here
  /// directly and need no extra coordination with the durability layer.
  QueryProcessor& processor() { return *processor_; }
  const QueryProcessor& processor() const { return *processor_; }

  /// Durable mutations: WAL append + fsync, then the in-memory mutation,
  /// then (when snapshot_every is hit) an automatic checkpoint. On an
  /// auto-checkpoint failure the mutation itself is already applied AND
  /// durable in the WAL; only the snapshot write failed, and the error says
  /// so. Validation errors (e.g. removing a dead id) are detected before
  /// anything is logged — the WAL and the serving state stay untouched.
  Result<uint32_t> AddGraph(const ProbabilisticGraph& graph, uint64_t seed);
  Status RemoveGraph(uint32_t graph_id);
  Status Compact();

  /// Writes a fresh snapshot generation, installs the MANIFEST, truncates
  /// the WAL, and unlinks the previous generation. On failure the previous
  /// generation + WAL remain authoritative.
  Status Checkpoint();

  /// Current mutation epoch (== processor().epoch()).
  uint64_t epoch() const { return processor_->epoch(); }

  /// Generation the MANIFEST currently points at.
  uint64_t snapshot_generation() const { return snapshot_gen_; }

  /// Mutations logged since the last checkpoint.
  uint64_t mutations_since_checkpoint() const {
    return mutations_since_checkpoint_;
  }

  /// WAL file size (header + records).
  uint64_t wal_size_bytes() const { return wal_->SizeBytes(); }

  /// What the last Open() recovered (zeroed for Create()).
  const RecoveryStats& recovery() const { return recovery_; }

  const std::string& dir() const { return dir_; }

 private:
  DurableDatabase() = default;

  /// Binds certain_, builds the processor, opens + replays the WAL.
  Status FinishOpen(std::vector<WalRecord> records);

  /// Writes snap-<gen>.{db,pmi,filter,sig} and installs MANIFEST{gen, epoch}.
  Status WriteSnapshotGeneration(uint64_t gen);

  Status CheckpointLocked();
  Status MaybeCheckpointLocked();

  std::string dir_;
  DurableDbOptions options_;
  std::vector<ProbabilisticGraph> database_;
  /// Stable copies of the certain graphs the filter's pointers bind to;
  /// sized at Create/Open and never grown (the filter copies graphs added
  /// later into its own stable storage).
  std::vector<Graph> certain_;
  ProbabilisticMatrixIndex pmi_;
  StructuralFilter filter_;
  /// Neighborhood signatures for the stage-3/filter gate; snapshotted as
  /// snap-<gen>.sig and maintained through the processor's mutation path. A
  /// missing file (pre-signature directory) is rebuilt from the graphs.
  SignatureIndex sigs_;
  std::unique_ptr<QueryProcessor> processor_;
  std::unique_ptr<WriteAheadLog> wal_;
  /// Serializes mutations and checkpoints (queries use the processor's own
  /// reader/writer lock and never take this).
  std::mutex mutation_mu_;
  uint64_t snapshot_gen_ = 0;
  uint64_t snapshot_epoch_ = 0;
  uint64_t mutations_since_checkpoint_ = 0;
  /// Set when a WAL record was durably appended but its in-memory apply
  /// failed — memory and log may disagree, so further mutations refuse with
  /// FailedPrecondition (queries keep serving; reopen to recover).
  bool wedged_ = false;
  RecoveryStats recovery_;
};

}  // namespace pgsim
