// Write-ahead mutation log for the live database.
//
// Every mutation of a durable QueryProcessor (AddGraph / RemoveGraph /
// Compact) is appended here and fsync'd BEFORE the in-memory structures
// change, so a crash at any instant loses at most the mutation whose fsync
// had not yet returned — and that one atomically (its record is torn and
// discarded on recovery).
//
// File layout:
//
//   [u32 magic "PWAL"][u32 version]
//   repeated records: [u32 payload_len][u32 crc32c(payload)][payload]
//
// A record payload is
//
//   [u8 op][u64 epoch_before][op-specific body]
//     op 1 = AddGraph:    [u64 seed][probabilistic graph]
//     op 2 = RemoveGraph: [u32 graph_id]
//     op 3 = Compact:     (empty body)
//
// `epoch_before` is the processor epoch the mutation was applied AT (not the
// epoch it produced): RemoveGraph can trigger auto-compaction and bump the
// epoch twice, so the post-epoch is not predictable from the record alone,
// but the pre-epoch always is. Recovery replays records whose epoch_before
// is >= the snapshot epoch and skips older ones — that comparison IS the
// WAL-truncation-keyed-to-snapshot-epoch mechanism.
//
// Each record reaches the file in a single write() followed by one fsync.
// Open() scans the log, bounds-checks every length, verifies every CRC, and
// truncates the file at the first torn or corrupt record — the crash-
// recovery contract: a prefix of intact records is replayed, the torn tail
// is discarded, and nothing after a bad record is ever trusted.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// One replayable mutation decoded from the log.
struct WalRecord {
  enum class Op : uint8_t {
    kAddGraph = 1,
    kRemoveGraph = 2,
    kCompact = 3,
  };

  Op op = Op::kCompact;
  /// Processor epoch at the moment the mutation was applied.
  uint64_t epoch_before = 0;
  /// AddGraph only: the index-insertion seed and the graph itself.
  uint64_t seed = 0;
  ProbabilisticGraph graph;
  /// RemoveGraph only.
  uint32_t graph_id = 0;
};

/// What Open() found while scanning the existing log.
struct WalRecoveryInfo {
  /// Intact records decoded (and returned for replay).
  size_t records_recovered = 0;
  /// True when a torn/corrupt tail was cut off.
  bool tail_truncated = false;
  /// Bytes discarded by the truncation.
  uint64_t bytes_truncated = 0;
};

/// Append-only, CRC-framed, fsync-per-record mutation log.
class WriteAheadLog {
 public:
  /// Opens (or creates) the log at `path`. Existing intact records are
  /// decoded into `*records` for replay; a torn tail is truncated in place
  /// (ftruncate + fsync) and reported through `*info` (optional). The file
  /// is then positioned for appending. DataLoss is returned only for damage
  /// that truncation cannot repair (a torn header).
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, std::vector<WalRecord>* records,
      WalRecoveryInfo* info = nullptr);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Append + fsync one mutation record. On return the record is durable.
  /// Failpoint sites: "wal.append" (pre), "wal.append.write" (write site —
  /// torn/short-write apply), "wal.append.sync" (pre-fsync),
  /// "wal.append.after" (durable, pre-apply).
  Status AppendAddGraph(uint64_t epoch_before, uint64_t seed,
                        const ProbabilisticGraph& graph);
  Status AppendRemoveGraph(uint64_t epoch_before, uint32_t graph_id);
  Status AppendCompact(uint64_t epoch_before);

  /// Truncates the log back to its header — called after a checkpoint made
  /// every logged mutation part of the durable snapshot generation.
  /// Failpoint site: "wal.reset".
  Status Reset();

  /// Current file size in bytes (header + records).
  uint64_t SizeBytes() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  Status AppendPayload(const std::string& payload);

  std::string path_;
  int fd_ = -1;
  uint64_t size_ = 0;
};

}  // namespace pgsim
