#include "pgsim/storage/durable_db.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "pgsim/graph/io.h"
#include "pgsim/storage/io_util.h"

namespace pgsim {

namespace {

constexpr uint32_t kManifestMagic = 0x50474d46u;  // "PGMF"
constexpr uint32_t kManifestVersion = 1;
constexpr uint32_t kDbMagic = 0x50474442u;  // "PGDB"
constexpr uint32_t kDbVersion = 1;

std::string SnapPath(const std::string& dir, uint64_t gen, const char* kind) {
  return dir + "/snap-" + std::to_string(gen) + "." + kind;
}

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::Internal("cannot create directory '" + dir +
                          "': " + std::strerror(errno));
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Create(
    const std::string& dir, std::vector<ProbabilisticGraph> database,
    const PmiBuildOptions& build, const StructuralFilterOptions& filter_options,
    const DurableDbOptions& options) {
  PGSIM_RETURN_NOT_OK(EnsureDir(dir));
  if (FileExists(ManifestPath(dir))) {
    return Status::FailedPrecondition(
        "'" + dir + "' already holds a durable database; use Open()");
  }

  std::unique_ptr<DurableDatabase> db(new DurableDatabase());
  db->dir_ = dir;
  db->options_ = options;
  db->database_ = std::move(database);
  PGSIM_ASSIGN_OR_RETURN(db->pmi_,
                         ProbabilisticMatrixIndex::Build(db->database_, build));
  db->certain_.reserve(db->database_.size());
  for (const ProbabilisticGraph& g : db->database_) {
    db->certain_.push_back(g.certain());
  }
  db->filter_ =
      StructuralFilter::Build(db->certain_, db->pmi_.features(),
                              filter_options);
  db->sigs_ = SignatureIndex::Build(db->database_);
  db->processor_ = std::make_unique<QueryProcessor>(&db->database_, &db->pmi_,
                                                    &db->filter_, &db->sigs_);

  PGSIM_RETURN_NOT_OK(db->WriteSnapshotGeneration(0));
  db->snapshot_gen_ = 0;
  db->snapshot_epoch_ = db->processor_->epoch();

  // A leftover log (crash between a previous Create's WAL creation and its
  // MANIFEST install) is dead weight: the snapshot we just wrote is the
  // whole state.
  ::unlink(WalPath(dir).c_str());
  std::vector<WalRecord> records;
  PGSIM_ASSIGN_OR_RETURN(db->wal_,
                         WriteAheadLog::Open(WalPath(dir), &records, nullptr));
  return db;
}

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& dir, const DurableDbOptions& options) {
  auto manifest = SnapshotReader::Open(ManifestPath(dir), kManifestMagic);
  if (!manifest.ok()) {
    if (manifest.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("'" + dir +
                              "' is not a durable database (no MANIFEST)");
    }
    return manifest.status();
  }
  if (manifest->version() != kManifestVersion ||
      manifest->num_sections() != 1) {
    return Status::DataLoss("MANIFEST in '" + dir + "' is malformed");
  }
  std::istringstream ms(manifest->section(0));
  uint64_t gen = 0;
  uint64_t snap_epoch = 0;
  PGSIM_ASSIGN_OR_RETURN(gen, ReadU64(ms));
  PGSIM_ASSIGN_OR_RETURN(snap_epoch, ReadU64(ms));

  std::unique_ptr<DurableDatabase> db(new DurableDatabase());
  db->dir_ = dir;
  db->options_ = options;
  db->snapshot_gen_ = gen;
  db->snapshot_epoch_ = snap_epoch;
  db->recovery_.snapshot_gen = gen;
  db->recovery_.snapshot_epoch = snap_epoch;

  // Graphs.
  PGSIM_ASSIGN_OR_RETURN(
      SnapshotReader snap,
      SnapshotReader::Open(SnapPath(dir, gen, "db"), kDbMagic));
  if (snap.version() != kDbVersion || snap.num_sections() < 1) {
    return Status::DataLoss("database snapshot in '" + dir + "' is malformed");
  }
  std::istringstream hs(snap.section(0));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t count, ReadU32(hs));
  PGSIM_ASSIGN_OR_RETURN(const uint64_t db_epoch, ReadU64(hs));
  if (db_epoch != snap_epoch) {
    return Status::DataLoss("database snapshot epoch " +
                            std::to_string(db_epoch) +
                            " does not match MANIFEST epoch " +
                            std::to_string(snap_epoch));
  }
  if (snap.num_sections() != size_t{count} + 1) {
    return Status::DataLoss("database snapshot holds " +
                            std::to_string(snap.num_sections() - 1) +
                            " graphs, header says " + std::to_string(count));
  }
  db->database_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::istringstream gs(snap.section(i + 1));
    PGSIM_ASSIGN_OR_RETURN(ProbabilisticGraph g, ReadProbabilisticGraph(gs));
    db->database_.push_back(std::move(g));
  }

  // Indexes, bound to the recovered graphs.
  PGSIM_ASSIGN_OR_RETURN(db->pmi_,
                         ProbabilisticMatrixIndex::Load(
                             SnapPath(dir, gen, "pmi")));
  if (db->pmi_.epoch() != snap_epoch) {
    return Status::DataLoss("PMI snapshot epoch " +
                            std::to_string(db->pmi_.epoch()) +
                            " does not match MANIFEST epoch " +
                            std::to_string(snap_epoch));
  }
  if (db->pmi_.num_graphs() != db->database_.size()) {
    return Status::DataLoss("PMI snapshot has " +
                            std::to_string(db->pmi_.num_graphs()) +
                            " columns for " +
                            std::to_string(db->database_.size()) + " graphs");
  }

  // WAL: decode intact records, truncate a torn tail, then replay.
  std::vector<WalRecord> records;
  WalRecoveryInfo wal_info;
  PGSIM_ASSIGN_OR_RETURN(db->wal_,
                         WriteAheadLog::Open(WalPath(dir), &records,
                                             &wal_info));
  db->recovery_.wal_records_seen = wal_info.records_recovered;
  db->recovery_.wal_tail_truncated = wal_info.tail_truncated;
  db->recovery_.wal_bytes_truncated = wal_info.bytes_truncated;

  PGSIM_RETURN_NOT_OK(db->FinishOpen(std::move(records)));
  return db;
}

Status DurableDatabase::FinishOpen(std::vector<WalRecord> records) {
  certain_.reserve(database_.size());
  for (const ProbabilisticGraph& g : database_) {
    certain_.push_back(g.certain());
  }
  PGSIM_ASSIGN_OR_RETURN(
      filter_, StructuralFilter::Load(SnapPath(dir_, snapshot_gen_, "filter"),
                                      certain_, pmi_.features()));
  // Signature snapshot: load and cross-check, or rebuild. Unlike the PMI and
  // filter, the signatures are fully derivable from the graphs, so a missing
  // file (a pre-signature directory) rebuilds instead of failing — but a
  // *present* file that disagrees with the MANIFEST or the graphs is
  // corruption and must surface as DataLoss, never silently rebuild.
  auto sigs = SignatureIndex::Load(SnapPath(dir_, snapshot_gen_, "sig"));
  if (sigs.ok()) {
    if (sigs->saved_epoch() != snapshot_epoch_) {
      return Status::DataLoss("signature snapshot epoch " +
                              std::to_string(sigs->saved_epoch()) +
                              " does not match MANIFEST epoch " +
                              std::to_string(snapshot_epoch_));
    }
    if (sigs->num_graphs() != database_.size()) {
      return Status::DataLoss("signature snapshot has " +
                              std::to_string(sigs->num_graphs()) +
                              " graphs, database has " +
                              std::to_string(database_.size()));
    }
    for (uint32_t gi = 0; gi < database_.size(); ++gi) {
      if (sigs->ForGraph(gi).num_vertices !=
              database_[gi].certain().NumVertices() ||
          sigs->IsAlive(gi) != pmi_.IsAlive(gi)) {
        return Status::DataLoss(
            "signature snapshot disagrees with the database at graph " +
            std::to_string(gi));
      }
    }
    sigs_ = std::move(sigs).value();
  } else if (sigs.status().code() == StatusCode::kNotFound) {
    sigs_ = SignatureIndex::Build(database_);
    for (uint32_t gi = 0; gi < database_.size(); ++gi) {
      if (!pmi_.IsAlive(gi)) PGSIM_RETURN_NOT_OK(sigs_.RemoveGraph(gi));
    }
  } else {
    return sigs.status();
  }
  // The processor inherits the PMI's epoch and tombstone view, so the epoch
  // chain below continues exactly where the snapshot left off.
  processor_ =
      std::make_unique<QueryProcessor>(&database_, &pmi_, &filter_, &sigs_);

  for (const WalRecord& rec : records) {
    if (rec.epoch_before < snapshot_epoch_) {
      // Already folded into the snapshot generation (a crash between
      // MANIFEST install and WAL truncation leaves such records behind).
      ++recovery_.wal_records_skipped;
      continue;
    }
    if (rec.epoch_before != processor_->epoch()) {
      return Status::DataLoss(
          "WAL epoch chain broken: record expects epoch " +
          std::to_string(rec.epoch_before) + ", database is at " +
          std::to_string(processor_->epoch()));
    }
    // Re-apply through the live mutation path — the same deterministic code
    // (including auto-compaction) that ran before the crash.
    switch (rec.op) {
      case WalRecord::Op::kAddGraph: {
        auto id = processor_->AddGraph(rec.graph, rec.seed);
        if (!id.ok()) {
          return Status::DataLoss("WAL replay: AddGraph failed: " +
                                  id.status().ToString());
        }
        break;
      }
      case WalRecord::Op::kRemoveGraph: {
        Status s = processor_->RemoveGraph(rec.graph_id);
        if (!s.ok()) {
          return Status::DataLoss("WAL replay: RemoveGraph failed: " +
                                  s.ToString());
        }
        break;
      }
      case WalRecord::Op::kCompact:
        processor_->Compact();
        break;
    }
    ++recovery_.wal_records_replayed;
    ++mutations_since_checkpoint_;
  }
  return Status::OK();
}

Status DurableDatabase::WriteSnapshotGeneration(uint64_t gen) {
  const uint64_t epoch = processor_->epoch();

  SnapshotWriter db_writer(kDbMagic, kDbVersion);
  std::ostringstream header;
  WriteU32(header, static_cast<uint32_t>(database_.size()));
  WriteU64(header, epoch);
  db_writer.AddSection(header.str());
  for (const ProbabilisticGraph& g : database_) {
    std::ostringstream gs;
    WriteProbabilisticGraph(gs, g);
    db_writer.AddSection(gs.str());
  }
  PGSIM_RETURN_NOT_OK(
      db_writer.Commit(SnapPath(dir_, gen, "db"), "snapshot.db"));

  PGSIM_RETURN_NOT_OK(pmi_.Save(SnapPath(dir_, gen, "pmi")));
  PGSIM_RETURN_NOT_OK(filter_.Save(SnapPath(dir_, gen, "filter")));
  PGSIM_RETURN_NOT_OK(sigs_.Save(SnapPath(dir_, gen, "sig"), epoch));

  // The MANIFEST rename is the commit point: until it lands, the previous
  // generation (or nothing, for Create) stays authoritative.
  SnapshotWriter manifest(kManifestMagic, kManifestVersion);
  std::ostringstream ms;
  WriteU64(ms, gen);
  WriteU64(ms, epoch);
  manifest.AddSection(ms.str());
  return manifest.Commit(ManifestPath(dir_), "snapshot.manifest");
}

Result<uint32_t> DurableDatabase::AddGraph(const ProbabilisticGraph& graph,
                                           uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable database is wedged (a logged mutation failed to apply); "
        "reopen to recover");
  }
  PGSIM_RETURN_NOT_OK(
      wal_->AppendAddGraph(processor_->epoch(), seed, graph));
  auto id = processor_->AddGraph(graph, seed);
  if (!id.ok()) {
    wedged_ = true;
    return Status::Internal("AddGraph was logged but failed to apply: " +
                            id.status().ToString());
  }
  ++mutations_since_checkpoint_;
  PGSIM_RETURN_NOT_OK(MaybeCheckpointLocked());
  return *id;
}

Status DurableDatabase::RemoveGraph(uint32_t graph_id) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable database is wedged (a logged mutation failed to apply); "
        "reopen to recover");
  }
  // Validate BEFORE logging: an invalid remove must leave both the WAL and
  // the serving state untouched (the processor would reject it anyway, but
  // by then the record would already be durable).
  if (!pmi_.IsAlive(graph_id)) {
    return Status::InvalidArgument(
        "RemoveGraph: graph id out of range or already removed");
  }
  PGSIM_RETURN_NOT_OK(wal_->AppendRemoveGraph(processor_->epoch(), graph_id));
  Status s = processor_->RemoveGraph(graph_id);
  if (!s.ok()) {
    wedged_ = true;
    return Status::Internal("RemoveGraph was logged but failed to apply: " +
                            s.ToString());
  }
  ++mutations_since_checkpoint_;
  return MaybeCheckpointLocked();
}

Status DurableDatabase::Compact() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable database is wedged (a logged mutation failed to apply); "
        "reopen to recover");
  }
  PGSIM_RETURN_NOT_OK(wal_->AppendCompact(processor_->epoch()));
  processor_->Compact();
  ++mutations_since_checkpoint_;
  return MaybeCheckpointLocked();
}

Status DurableDatabase::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable database is wedged (a logged mutation failed to apply); "
        "reopen to recover");
  }
  return CheckpointLocked();
}

Status DurableDatabase::MaybeCheckpointLocked() {
  if (options_.snapshot_every == 0 ||
      mutations_since_checkpoint_ < options_.snapshot_every) {
    return Status::OK();
  }
  return CheckpointLocked();
}

Status DurableDatabase::CheckpointLocked() {
  const uint64_t gen = snapshot_gen_ + 1;
  PGSIM_RETURN_NOT_OK(WriteSnapshotGeneration(gen));
  const uint64_t old_gen = snapshot_gen_;
  snapshot_gen_ = gen;
  snapshot_epoch_ = processor_->epoch();
  mutations_since_checkpoint_ = 0;
  PGSIM_RETURN_NOT_OK(wal_->Reset());
  // Best-effort cleanup: a leftover old generation is unreferenced bytes,
  // not a correctness problem.
  ::unlink(SnapPath(dir_, old_gen, "db").c_str());
  ::unlink(SnapPath(dir_, old_gen, "pmi").c_str());
  ::unlink(SnapPath(dir_, old_gen, "filter").c_str());
  ::unlink(SnapPath(dir_, old_gen, "sig").c_str());
  return Status::OK();
}

// Forwarder declared in query/processor.h (implemented here to keep the
// processor header free of a storage dependency).
Result<std::unique_ptr<DurableDatabase>> QueryProcessor::Open(
    const std::string& dir) {
  return DurableDatabase::Open(dir);
}

}  // namespace pgsim
