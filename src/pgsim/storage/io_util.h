// Durable-IO primitives shared by the WAL and the snapshot writers.
//
// Two layers live here:
//
//   * File helpers — ReadFileToString, SyncDir, and AtomicWriteFile (the
//     write-temp + fsync + rename + parent-dir-fsync install protocol). Every
//     syscall on these paths passes through a failpoint site so the recovery
//     tests can kill or corrupt the process at each step.
//
//   * The checksummed snapshot container — SnapshotWriter/SnapshotReader.
//     A snapshot file is
//
//       [u32 magic][u32 version]
//       repeated:  [u32 len][u32 crc32c(body)][body]
//       [u32 footer magic][u32 crc32c(everything before the footer)]
//
//     The reader verifies the whole-file footer checksum first (catches
//     truncation and bit rot anywhere), then each per-section CRC (localizes
//     the damage). Any mismatch is Status::DataLoss — a corrupt snapshot is
//     rejected, never partially loaded.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgsim/common/status.h"

namespace pgsim {

/// Reads an entire file. NotFound when the file does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// fsyncs a directory so a prior rename/unlink inside it is durable.
Status SyncDir(const std::string& dir);

/// Atomically installs `data` at `path`: writes `path`.tmp, fsyncs it,
/// renames over `path`, fsyncs the parent directory. A crash at any point
/// leaves either the old file or the new file — never a torn mix. Failpoint
/// sites: `<failpoint_prefix>.write` (a write site — torn/short apply),
/// `.sync`, `.rename`.
Status AtomicWriteFile(const std::string& path, const std::string& data,
                       const std::string& failpoint_prefix);

/// Accumulates checksummed sections and atomically installs the file.
class SnapshotWriter {
 public:
  SnapshotWriter(uint32_t magic, uint32_t version);

  /// Appends one section (length + CRC32C + body).
  void AddSection(const std::string& body);

  /// Appends the footer and atomically writes the file (see AtomicWriteFile
  /// for the failpoint sites under `failpoint_prefix`).
  Status Commit(const std::string& path, const std::string& failpoint_prefix);

 private:
  std::string buf_;
};

/// Parses and verifies a snapshot file written by SnapshotWriter.
class SnapshotReader {
 public:
  /// Reads the whole file, checks magic/footer/section checksums. NotFound
  /// when missing; DataLoss on any truncation or checksum mismatch;
  /// InvalidArgument on a wrong magic (not this kind of file at all).
  static Result<SnapshotReader> Open(const std::string& path, uint32_t magic);

  uint32_t version() const { return version_; }
  size_t num_sections() const { return sections_.size(); }
  const std::string& section(size_t i) const { return sections_[i]; }

 private:
  uint32_t version_ = 0;
  std::vector<std::string> sections_;
};

}  // namespace pgsim
