#include "pgsim/storage/io_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "pgsim/common/crc32c.h"
#include "pgsim/common/failpoint.h"

namespace pgsim {

namespace {

constexpr uint32_t kFooterMagic = 0x50474654u;  // "PGFT"

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

Result<uint32_t> TakeU32(const std::string& buf, size_t* pos) {
  if (*pos + 4 > buf.size()) {
    return Status::DataLoss("snapshot file truncated mid-word");
  }
  uint32_t v;
  std::memcpy(&v, buf.data() + *pos, 4);
  *pos += 4;
  return v;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// write() the full buffer, honoring an armed torn/short-write failpoint at
// `site`: only spec.keep_bytes bytes reach the fd before the injected fault.
Status WriteAllWithFailpoint(int fd, const char* data, size_t n,
                             const std::string& site) {
  FailpointSpec spec;
  Status injected;
  size_t to_write = n;
  bool partial = false;
  if (FailpointCheckWrite(site.c_str(), n, &spec, &injected)) {
    to_write = spec.keep_bytes;
    partial = true;
  } else if (!injected.ok()) {
    return injected;
  }
  size_t off = 0;
  while (off < to_write) {
    const ssize_t w = ::write(fd, data + off, to_write - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  if (partial) return FailpointAfterPartialWrite(site.c_str(), spec);
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  if (is.bad()) {
    return Status::Internal("read failed on '" + path + "'");
  }
  return ss.str();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("cannot open directory", dir));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal(ErrnoMessage("fsync failed on directory", dir));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& data,
                       const std::string& failpoint_prefix) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("cannot create", tmp));
  }
  Status s = WriteAllWithFailpoint(fd, data.data(), data.size(),
                                   failpoint_prefix + ".write");
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  s = FailpointCheck((failpoint_prefix + ".sync").c_str());
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  if (::fsync(fd) != 0) {
    s = Status::Internal(ErrnoMessage("fsync failed on", tmp));
    ::close(fd);
    return s;
  }
  ::close(fd);
  PGSIM_RETURN_NOT_OK(FailpointCheck((failpoint_prefix + ".rename").c_str()));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(ErrnoMessage("rename failed installing", path));
  }
  return SyncDir(ParentDir(path));
}

SnapshotWriter::SnapshotWriter(uint32_t magic, uint32_t version) {
  AppendU32(&buf_, magic);
  AppendU32(&buf_, version);
}

void SnapshotWriter::AddSection(const std::string& body) {
  AppendU32(&buf_, static_cast<uint32_t>(body.size()));
  AppendU32(&buf_, Crc32c(body.data(), body.size()));
  buf_ += body;
}

Status SnapshotWriter::Commit(const std::string& path,
                              const std::string& failpoint_prefix) {
  AppendU32(&buf_, kFooterMagic);
  // The footer CRC covers every byte before it, footer magic included.
  const uint32_t crc = Crc32c(buf_.data(), buf_.size());
  AppendU32(&buf_, crc);
  return AtomicWriteFile(path, buf_, failpoint_prefix);
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path,
                                            uint32_t magic) {
  PGSIM_ASSIGN_OR_RETURN(const std::string buf, ReadFileToString(path));
  // Header (8) + footer (8) is the minimum valid file.
  if (buf.size() < 16) {
    return Status::DataLoss("snapshot '" + path + "' truncated (" +
                            std::to_string(buf.size()) + " bytes)");
  }
  size_t pos = 0;
  PGSIM_ASSIGN_OR_RETURN(const uint32_t got_magic, TakeU32(buf, &pos));
  if (got_magic != magic) {
    return Status::InvalidArgument("'" + path + "' has wrong magic");
  }
  // Verify the whole-file footer before trusting any section framing.
  size_t fpos = buf.size() - 8;
  PGSIM_ASSIGN_OR_RETURN(const uint32_t footer_magic, TakeU32(buf, &fpos));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t footer_crc, TakeU32(buf, &fpos));
  if (footer_magic != kFooterMagic) {
    return Status::DataLoss("snapshot '" + path +
                            "' has a missing or torn footer");
  }
  if (Crc32c(buf.data(), buf.size() - 4) != footer_crc) {
    return Status::DataLoss("snapshot '" + path +
                            "' failed its whole-file checksum");
  }

  SnapshotReader reader;
  PGSIM_ASSIGN_OR_RETURN(reader.version_, TakeU32(buf, &pos));
  const size_t sections_end = buf.size() - 8;
  while (pos < sections_end) {
    PGSIM_ASSIGN_OR_RETURN(const uint32_t len, TakeU32(buf, &pos));
    PGSIM_ASSIGN_OR_RETURN(const uint32_t crc, TakeU32(buf, &pos));
    if (pos + len > sections_end) {
      return Status::DataLoss("snapshot '" + path +
                              "' section overruns the file");
    }
    if (Crc32c(buf.data() + pos, len) != crc) {
      return Status::DataLoss("snapshot '" + path + "' section " +
                              std::to_string(reader.sections_.size()) +
                              " failed its checksum");
    }
    reader.sections_.emplace_back(buf, pos, len);
    pos += len;
  }
  return reader;
}

}  // namespace pgsim
