#include "pgsim/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "pgsim/common/crc32c.h"
#include "pgsim/common/failpoint.h"
#include "pgsim/graph/io.h"
#include "pgsim/storage/io_util.h"

namespace pgsim {

namespace {

constexpr uint32_t kWalMagic = 0x5057414cu;  // "PWAL"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 8;
constexpr size_t kRecordFrameBytes = 8;  // u32 len + u32 crc
// op byte + epoch_before: smallest payload any op can produce.
constexpr size_t kMinPayloadBytes = 9;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

Status WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("WAL write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

// Decodes one payload. Corruption that slipped past the CRC (or a logic
// change) surfaces as DataLoss so Open() truncates at this record.
Result<WalRecord> DecodePayload(const std::string& payload) {
  std::istringstream is(payload);
  is.exceptions(std::ios::goodbit);
  char op_byte = 0;
  is.read(&op_byte, 1);
  WalRecord rec;
  PGSIM_ASSIGN_OR_RETURN(rec.epoch_before, ReadU64(is));
  switch (static_cast<WalRecord::Op>(op_byte)) {
    case WalRecord::Op::kAddGraph: {
      rec.op = WalRecord::Op::kAddGraph;
      PGSIM_ASSIGN_OR_RETURN(rec.seed, ReadU64(is));
      PGSIM_ASSIGN_OR_RETURN(rec.graph, ReadProbabilisticGraph(is));
      break;
    }
    case WalRecord::Op::kRemoveGraph: {
      rec.op = WalRecord::Op::kRemoveGraph;
      PGSIM_ASSIGN_OR_RETURN(rec.graph_id, ReadU32(is));
      break;
    }
    case WalRecord::Op::kCompact:
      rec.op = WalRecord::Op::kCompact;
      break;
    default:
      return Status::DataLoss("WAL record has unknown op " +
                              std::to_string(static_cast<int>(op_byte)));
  }
  // Trailing junk inside a CRC-valid payload means the encoder and decoder
  // disagree — refuse rather than replay a half-understood record.
  if (static_cast<size_t>(is.tellg()) != payload.size()) {
    return Status::DataLoss("WAL record payload has trailing bytes");
  }
  return rec;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, std::vector<WalRecord>* records,
    WalRecoveryInfo* info) {
  records->clear();
  WalRecoveryInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = WalRecoveryInfo{};

  auto contents = ReadFileToString(path);
  std::string buf;
  if (contents.ok()) {
    buf = std::move(contents).value();
  } else if (contents.status().code() != StatusCode::kNotFound) {
    return contents.status();
  }

  const bool fresh = buf.empty();
  if (!fresh) {
    if (buf.size() < kWalHeaderBytes || LoadU32(buf.data()) != kWalMagic) {
      return Status::DataLoss("'" + path + "' is not a WAL (bad header)");
    }
    const uint32_t version = LoadU32(buf.data() + 4);
    if (version != kWalVersion) {
      return Status::DataLoss("WAL '" + path + "' has unsupported version " +
                              std::to_string(version));
    }
  }

  // Scan records; stop (and truncate) at the first frame that is torn,
  // overruns the file, fails its CRC, or does not decode.
  size_t pos = fresh ? 0 : kWalHeaderBytes;
  size_t valid_end = pos;
  while (pos + kRecordFrameBytes <= buf.size()) {
    const uint32_t len = LoadU32(buf.data() + pos);
    const uint32_t crc = LoadU32(buf.data() + pos + 4);
    if (len < kMinPayloadBytes ||
        len > buf.size() - pos - kRecordFrameBytes) {
      break;
    }
    const char* payload = buf.data() + pos + kRecordFrameBytes;
    if (Crc32c(payload, len) != crc) break;
    auto rec = DecodePayload(std::string(payload, len));
    if (!rec.ok()) break;
    records->push_back(std::move(rec).value());
    pos += kRecordFrameBytes + len;
    valid_end = pos;
  }
  info->records_recovered = records->size();

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open WAL '" + path +
                            "': " + std::strerror(errno));
  }
  auto fail = [fd](Status s) {
    ::close(fd);
    return s;
  };

  if (fresh) {
    std::string header;
    AppendU32(&header, kWalMagic);
    AppendU32(&header, kWalVersion);
    Status s = WriteAll(fd, header.data(), header.size());
    if (!s.ok()) return fail(std::move(s));
    if (::fsync(fd) != 0) {
      return fail(Status::Internal("fsync failed on new WAL"));
    }
    valid_end = kWalHeaderBytes;
  } else if (valid_end < buf.size()) {
    info->tail_truncated = true;
    info->bytes_truncated = buf.size() - valid_end;
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      return fail(Status::Internal("cannot truncate torn WAL tail: " +
                                   std::string(std::strerror(errno))));
    }
    if (::fsync(fd) != 0) {
      return fail(Status::Internal("fsync failed after WAL truncation"));
    }
  }

  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    return fail(Status::Internal("cannot seek to WAL append position"));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, valid_end));
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::AppendPayload(const std::string& payload) {
  PGSIM_RETURN_NOT_OK(FailpointCheck("wal.append"));

  std::string frame;
  frame.reserve(kRecordFrameBytes + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, Crc32c(payload.data(), payload.size()));
  frame += payload;

  // One write() for the whole frame; a torn-write failpoint keeps only a
  // prefix, which recovery must then discard.
  FailpointSpec spec;
  Status injected;
  size_t to_write = frame.size();
  bool partial = false;
  if (FailpointCheckWrite("wal.append.write", frame.size(), &spec,
                          &injected)) {
    to_write = spec.keep_bytes;
    partial = true;
  } else if (!injected.ok()) {
    return injected;
  }
  PGSIM_RETURN_NOT_OK(WriteAll(fd_, frame.data(), to_write));
  if (partial) {
    size_ += to_write;
    return FailpointAfterPartialWrite("wal.append.write", spec);
  }

  PGSIM_RETURN_NOT_OK(FailpointCheck("wal.append.sync"));
  if (::fsync(fd_) != 0) {
    return Status::Internal(std::string("WAL fsync failed: ") +
                            std::strerror(errno));
  }
  size_ += frame.size();
  return FailpointCheck("wal.append.after");
}

Status WriteAheadLog::AppendAddGraph(uint64_t epoch_before, uint64_t seed,
                                     const ProbabilisticGraph& graph) {
  std::ostringstream body;
  WriteProbabilisticGraph(body, graph);
  std::string payload;
  payload.push_back(static_cast<char>(WalRecord::Op::kAddGraph));
  {
    std::ostringstream head;
    WriteU64(head, epoch_before);
    WriteU64(head, seed);
    payload += head.str();
  }
  payload += body.str();
  return AppendPayload(payload);
}

Status WriteAheadLog::AppendRemoveGraph(uint64_t epoch_before,
                                        uint32_t graph_id) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecord::Op::kRemoveGraph));
  std::ostringstream head;
  WriteU64(head, epoch_before);
  WriteU32(head, graph_id);
  payload += head.str();
  return AppendPayload(payload);
}

Status WriteAheadLog::AppendCompact(uint64_t epoch_before) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecord::Op::kCompact));
  std::ostringstream head;
  WriteU64(head, epoch_before);
  payload += head.str();
  return AppendPayload(payload);
}

Status WriteAheadLog::Reset() {
  PGSIM_RETURN_NOT_OK(FailpointCheck("wal.reset"));
  if (::ftruncate(fd_, static_cast<off_t>(kWalHeaderBytes)) != 0) {
    return Status::Internal(std::string("WAL reset ftruncate failed: ") +
                            std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return Status::Internal("WAL reset fsync failed");
  }
  if (::lseek(fd_, static_cast<off_t>(kWalHeaderBytes), SEEK_SET) < 0) {
    return Status::Internal("WAL reset seek failed");
  }
  size_ = kWalHeaderBytes;
  return Status::OK();
}

}  // namespace pgsim
