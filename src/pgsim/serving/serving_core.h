// Always-on serving core: the continuously-admitting frontend over
// QueryProcessor + TaskScheduler.
//
// Where QueryBatch hands the scheduler a CLOSED root array and waits for the
// whole graph to drain, ServingCore::Submit returns a QueryTicket
// immediately and feeds the live scheduler from a bounded priority admission
// queue — queries, AddGraph and RemoveGraph all flow through the same queue,
// so mutations interleave with the always-on frontend instead of waiting for
// whole batches.
//
// Execution model — waves under the serving lock:
//   A dispatcher thread owns the reader/writer serving lock discipline. When
//   the queue head is a query it takes QueryProcessor::live_mu_ SHARED,
//   freezes the epoch, and runs one TaskScheduler wave whose single root is
//   the *pump task*: the pump pops every poppable query (head not an
//   exclusive mutation), spawns its front-stages task mid-run
//   (TaskScheduler::Spawn), re-spawns itself while queries are in flight —
//   so arrivals DURING the wave join it, stage-pipelined with running
//   queries — and exits once nothing is in flight and no query is poppable.
//   The wave then drains, the shared lock drops, and the dispatcher pops an
//   exclusive mutation if one heads the queue, applies it (the processor
//   takes the lock exclusive internally), resolves its ticket, and loops.
//   A mutation therefore waits only for in-flight queries — exactly the
//   writer-preference the live database already implements — while queries
//   queued behind it wait their turn.
//
// Deadlines & graceful degradation:
//   SubmitOptions::deadline_ms arms a deadline thread that flips the
//   ticket's CancelState when the instant passes. The pipeline polls the
//   flag at its cancellation points (FrontStagesImpl stage boundaries, each
//   stage-2 candidate, every Karp-Luby draw), so the query unwinds within
//   one cancellation-point granularity and resolves as:
//     - allow_degraded=false: Status kDeadlineExceeded.
//     - allow_degraded=true: OK with degraded=true — the answers verified
//       so far plus a per-candidate [lo, hi] Hoeffding interval from the
//       samples each unresolved candidate had already drawn. For a fixed
//       seed and cancel point the degraded answer is byte-identical across
//       runs and scheduler widths (per-candidate RNGs are pre-forked).
//   Undeadlined queries run the identical code path with a null token and
//   stay bit-identical to QueryBatch.
//
// Overload shedding:
//   The admission queue is bounded (ServingOptions::max_queue). A push into
//   a full queue either rejects the newcomer or — when it strictly outranks
//   the lowest-priority queued item — evicts that class's youngest member;
//   the shed ticket resolves kUnavailable carrying a retry-after hint from
//   the observed drain rate. Every ticket resolves exactly once, always.
//
// Answer cache on the admission path:
//   When ServingOptions::answer_cache is set, Submit probes it under a brief
//   shared lock and resolves a hit instantly — the query never queues.
//   Misses are filled by the pipeline as usual; degraded or cancelled
//   results are never stored (see FinishQuery).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "pgsim/common/cancel.h"
#include "pgsim/common/status.h"
#include "pgsim/query/processor.h"
#include "pgsim/serving/admission_queue.h"
#include "pgsim/serving/deadline.h"

namespace pgsim {

class TaskScheduler;

/// Per-submission knobs.
struct SubmitOptions {
  /// Relative deadline in milliseconds; < 0 = none. Enforced cooperatively:
  /// the query resolves within deadline + one cancellation-point granule.
  int64_t deadline_ms = -1;
  /// Admission priority: higher pops first; FIFO within a class. Under
  /// overload a newcomer that strictly outranks the lowest queued class
  /// evicts its youngest member instead of being rejected.
  int priority = 0;
  /// Deadline behavior: false resolves kDeadlineExceeded; true resolves OK
  /// with degraded=true and the anytime answer.
  bool allow_degraded = false;
  /// Deterministic cancellation test hook: stop each candidate's sampling
  /// loop after this many draws (0 = disabled). Unlike a wall-clock
  /// deadline, the resulting degraded answer is byte-identical across runs
  /// and scheduler widths.
  uint64_t cancel_after_draws = 0;
  /// Invoked exactly once, on a serving thread, when the ticket resolves
  /// (in addition to waking QueryTicket::Wait). Keep it cheap.
  std::function<void(const struct ServeResult&)> callback;
};

/// A candidate the deadline cut off mid-verification: the anytime state.
struct IntervalAnswer {
  uint32_t graph_id = 0;
  double estimate = 0.0;  ///< running Karp-Luby estimate (0 when no draws)
  double lo = 0.0;        ///< Hoeffding interval at the verifier's 1 - xi
  double hi = 1.0;
  uint64_t samples = 0;   ///< draws taken before the cancellation point
};

/// How one ticket resolved. Exactly one of these reaches every ticket.
struct ServeResult {
  /// OK: exact answers, or (degraded=true) the anytime answer. Error codes:
  /// kDeadlineExceeded, kUnavailable (shed; see retry_after_seconds), or a
  /// pipeline/mutation error passed through.
  Status status;
  /// True iff the deadline fired and SubmitOptions::allow_degraded kept the
  /// partial answer: `answers` holds every graph VERIFIED similar so far,
  /// `intervals` one [lo, hi] per candidate still unresolved.
  bool degraded = false;
  std::vector<uint32_t> answers;          ///< sorted graph ids
  std::vector<IntervalAnswer> intervals;  ///< degraded only
  QueryStats stats;                       ///< query tickets only
  /// kUnavailable only: when a retry would likely find a slot, from the
  /// observed queue drain rate.
  double retry_after_seconds = 0.0;
  /// Mutation tickets: id AddGraph assigned.
  uint32_t graph_id = 0;
  /// Index epoch the result was computed at (mutations: epoch after apply).
  uint64_t epoch = 0;
};

/// Shared query/mutation ticket state. Internal to the serving core, but
/// the chaos harness reads resolve_count to pin exactly-once resolution.
struct TicketState {
  enum class Kind : uint8_t { kQuery, kAddGraph, kRemoveGraph };

  uint64_t id = 0;
  Kind kind = Kind::kQuery;
  Graph query;                   ///< kQuery (copied at Submit)
  ProbabilisticGraph add_graph;  ///< kAddGraph
  uint64_t add_seed = 0;
  uint32_t remove_id = 0;        ///< kRemoveGraph

  int priority = 0;
  bool allow_degraded = false;
  uint64_t cancel_after_draws = 0;
  DeadlinePoint deadline = DeadlinePoint::max();
  CancelState cancel;
  std::function<void(const ServeResult&)> callback;

  /// Times Resolve ran — the chaos invariant is that this is exactly 1 for
  /// every submitted ticket (a second Resolve is dropped and counted).
  std::atomic<uint32_t> resolve_count{0};

  /// First-resolution wins; wakes waiters and fires the callback. Returns
  /// false (and changes nothing) when the ticket was already resolved.
  bool Resolve(ServeResult result);
  /// Blocks until resolved; the result reference lives as long as the
  /// ticket.
  const ServeResult& Wait();
  bool resolved() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool resolved_ = false;
  ServeResult result_;
};

/// Caller-facing handle. Cheap to copy (shared state).
class QueryTicket {
 public:
  QueryTicket() = default;
  explicit QueryTicket(std::shared_ptr<TicketState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const { return state_->id; }
  /// Blocks until the ticket resolves.
  const ServeResult& Wait() { return state_->Wait(); }
  bool resolved() const { return state_->resolved(); }
  /// Cooperative cancel, same mechanism as a deadline: the query resolves
  /// degraded or kDeadlineExceeded at its next cancellation point.
  void Cancel() { state_->cancel.Cancel(); }

  std::shared_ptr<TicketState> state() const { return state_; }

 private:
  std::shared_ptr<TicketState> state_;
};

/// Monotonic counters, written with relaxed atomics (never torn) and
/// snapshotted by ServingCore::stats().
struct ServingStats {
  uint64_t submitted = 0;          ///< all tickets handed out
  uint64_t admitted = 0;           ///< entered the queue
  uint64_t answer_cache_hits = 0;  ///< resolved at Submit, never queued
  uint64_t shed = 0;               ///< kUnavailable (rejected or evicted)
  uint64_t completed = 0;          ///< resolved OK, exact
  uint64_t degraded = 0;           ///< resolved OK, degraded
  uint64_t deadline_exceeded = 0;  ///< resolved kDeadlineExceeded
  uint64_t failed = 0;             ///< resolved with any other error
  uint64_t mutations_applied = 0;  ///< AddGraph/RemoveGraph applied
  uint64_t waves = 0;              ///< scheduler runs the dispatcher issued
  uint64_t double_resolves = 0;    ///< Resolve calls dropped (MUST stay 0)
  /// Signature-gate totals across all resolved queries (see QueryStats).
  uint64_t sig_pairs_rejected = 0;
  uint64_t domain_candidates_pruned = 0;
  uint64_t vf2_calls_avoided = 0;
};

/// Construction knobs.
struct ServingOptions {
  /// Scheduler width; 0 = hardware threads, 1 = waves run inline on the
  /// dispatcher thread.
  uint32_t num_threads = 0;
  /// Admission queue capacity; pushes beyond it shed (see file comment).
  size_t max_queue = 256;
  /// Fixed per-core query options (the options fingerprint is computed once;
  /// every submitted query runs under these).
  QueryOptions query;
  /// Optional cross-batch answer cache (not owned; must outlive the core).
  AnswerCache* answer_cache = nullptr;
  /// Mutation backends; default to QueryProcessor::AddGraph/RemoveGraph.
  /// A DurableDatabase caller points these at its WAL'd mutation path.
  std::function<Result<uint32_t>(const ProbabilisticGraph&, uint64_t)> add;
  std::function<Status(uint32_t)> remove;
};

class ServingCore {
 public:
  /// `proc` must outlive the core. Mutation submissions require `proc` to be
  /// mutable-constructed (or ServingOptions hooks to be set).
  ServingCore(QueryProcessor* proc, ServingOptions options);
  ~ServingCore();

  ServingCore(const ServingCore&) = delete;
  ServingCore& operator=(const ServingCore&) = delete;

  /// Admits a query; returns immediately. The graph is copied.
  QueryTicket Submit(const Graph& query, const SubmitOptions& opts = {});

  /// Admits a mutation as an exclusive task in the same queue: it runs after
  /// every query ahead of it (and every in-flight one) and before every
  /// query behind it. `graph` is moved into the ticket.
  QueryTicket SubmitAddGraph(ProbabilisticGraph graph, uint64_t seed,
                             const SubmitOptions& opts = {});
  QueryTicket SubmitRemoveGraph(uint32_t graph_id,
                                const SubmitOptions& opts = {});

  /// Stops admitting (new Submits shed with kUnavailable), drains every
  /// queued ticket, and joins the serving threads. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  /// Point-in-time counter snapshot (relaxed reads; monotonic).
  ServingStats stats() const;

  /// Current admission queue depth (advisory).
  size_t queue_depth() const { return queue_.size(); }

 private:
  struct QueryRun;  // per-query task-graph state (serving_core.cc)

  static void PumpTask(void* ctx, uint32_t worker, uint32_t a, uint32_t b);
  static void QueryTask(void* ctx, uint32_t worker, uint32_t a, uint32_t b);
  static void VerifyTask(void* ctx, uint32_t worker, uint32_t a, uint32_t b);

  QueryTicket SubmitTicket(std::shared_ptr<TicketState> ticket);
  void DispatcherLoop();
  void DeadlineLoop();
  void RunWave();
  void ApplyMutation(const std::shared_ptr<TicketState>& ticket);
  void FinishRun(QueryRun* run);
  void ResolveShed(const std::shared_ptr<TicketState>& ticket);
  void RecordResolution(const Status& status, bool degraded);
  void ArmDeadline(const std::shared_ptr<TicketState>& ticket);

  QueryProcessor* proc_;
  ServingOptions options_;
  std::string fingerprint_;  ///< QueryOptionsFingerprint(options_.query)
  std::unique_ptr<TaskScheduler> sched_;

  BoundedPriorityQueue<std::shared_ptr<TicketState>> queue_;
  DrainRateEstimator drain_;
  WallTimer clock_;  ///< serving-core lifetime clock for the estimator

  std::mutex core_mu_;
  std::condition_variable work_cv_;
  bool shutdown_ = false;

  /// Queries popped into the current wave and not yet resolved.
  std::atomic<uint32_t> wave_inflight_{0};
  /// Epoch frozen for the current wave (written by the dispatcher before
  /// Run, read by wave tasks — ordered by the scheduler's run boundary).
  uint64_t wave_epoch_ = 0;

  std::atomic<uint64_t> next_ticket_id_{1};

  // Deadline thread state.
  struct DeadlineEntry {
    DeadlinePoint when;
    std::weak_ptr<TicketState> ticket;
    bool operator>(const DeadlineEntry& o) const { return when > o.when; }
  };
  std::mutex deadline_mu_;
  std::condition_variable deadline_cv_;
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_;
  bool deadline_shutdown_ = false;

  // Counters (relaxed; snapshotted by stats()).
  std::atomic<uint64_t> n_submitted_{0};
  std::atomic<uint64_t> n_admitted_{0};
  std::atomic<uint64_t> n_cache_hits_{0};
  std::atomic<uint64_t> n_shed_{0};
  std::atomic<uint64_t> n_completed_{0};
  std::atomic<uint64_t> n_degraded_{0};
  std::atomic<uint64_t> n_deadline_{0};
  std::atomic<uint64_t> n_failed_{0};
  std::atomic<uint64_t> n_mutations_{0};
  std::atomic<uint64_t> n_waves_{0};
  std::atomic<uint64_t> n_double_resolves_{0};
  std::atomic<uint64_t> n_sig_pairs_rejected_{0};
  std::atomic<uint64_t> n_domain_candidates_pruned_{0};
  std::atomic<uint64_t> n_vf2_calls_avoided_{0};

  std::thread dispatcher_;
  std::thread deadline_thread_;
};

}  // namespace pgsim
