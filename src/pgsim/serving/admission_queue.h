// Bounded priority admission queue + drain-rate estimator (overload shedding).
//
// The serving core admits every piece of work — queries and exclusive
// mutations alike — through one BoundedPriorityQueue. Ordering is strict
// priority (higher admits first) with FIFO inside a priority class, via a
// monotonic sequence number. The queue is BOUNDED: when full, an incoming
// item that strictly outranks the lowest-priority queued item evicts the
// youngest member of that lowest class (least sunk wait time); otherwise the
// incoming item itself is rejected. Either way exactly one ticket receives
// kUnavailable — the core never grows unboundedly under a traffic spike and
// never silently drops work.
//
// The DrainRateEstimator turns observed completion times into the
// retry-after hint attached to every shed: an EWMA of seconds-per-completion
// times the current depth estimates when a retry would find a slot.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

namespace pgsim {

/// Exponentially-weighted estimate of the admission queue's drain rate.
/// Thread-safe; time is injected by the caller (seconds on any monotonic
/// clock) so tests can drive it deterministically.
class DrainRateEstimator {
 public:
  /// Records that one admitted item finished at `now_seconds`.
  void RecordCompletion(double now_seconds);

  /// Seconds until a queue of `depth` items likely has a free slot:
  /// (depth + 1) * EWMA(seconds per completion). Before any completion has
  /// been observed, falls back to (depth + 1) * `default_per_item_seconds`.
  double RetryAfterSeconds(size_t depth,
                           double default_per_item_seconds = 0.005) const;

  /// Completions observed so far.
  uint64_t completions() const;

 private:
  mutable std::mutex mu_;
  double last_completion_seconds_ = 0.0;
  double ewma_interval_seconds_ = 0.0;
  uint64_t completions_ = 0;
};

/// See the file comment. T must be movable; one mutex guards everything —
/// admission is control-plane traffic, never a per-candidate hot path.
template <typename T>
class BoundedPriorityQueue {
 public:
  explicit BoundedPriorityQueue(size_t capacity) : capacity_(capacity) {}

  enum class PushOutcome {
    kAdmitted,         ///< item queued
    kAdmittedEvicted,  ///< item queued; *evicted holds the shed victim
    kRejected,         ///< queue full and item does not outrank anyone
  };

  PushOutcome TryPush(T item, int priority, T* evicted) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) {
      if (items_.empty()) return PushOutcome::kRejected;  // capacity == 0
      // Lowest priority class = largest key (key orders by -priority); its
      // youngest member = largest seq = the map's last entry.
      auto victim = std::prev(items_.end());
      if (-victim->first.first < priority) {
        // Strictly outranked: shed the victim, admit the newcomer.
        *evicted = std::move(victim->second);
        items_.erase(victim);
        items_.emplace(Key{-priority, next_seq_++}, std::move(item));
        return PushOutcome::kAdmittedEvicted;
      }
      return PushOutcome::kRejected;
    }
    items_.emplace(Key{-priority, next_seq_++}, std::move(item));
    return PushOutcome::kAdmitted;
  }

  /// Pops the head (highest priority, oldest within the class).
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.begin()->second);
    items_.erase(items_.begin());
    return true;
  }

  /// Pops the head only when `pred(head)` holds — how the wave pump takes
  /// queries while leaving an exclusive mutation at the head to end the
  /// wave. The predicate runs under the queue lock; keep it trivial.
  template <typename Pred>
  bool TryPopIf(Pred pred, T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty() || !pred(items_.begin()->second)) return false;
    *out = std::move(items_.begin()->second);
    items_.erase(items_.begin());
    return true;
  }

  /// Inspects the head under the lock (e.g. "is the head exclusive?").
  /// Returns false on empty. The result is advisory — a higher-priority push
  /// can change the head immediately after.
  template <typename Fn>
  bool PeekHead(Fn fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    fn(items_.begin()->second);
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return capacity_; }

 private:
  /// (-priority, admission sequence): map order == pop order.
  using Key = std::pair<int, uint64_t>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<Key, T> items_;
  uint64_t next_seq_ = 0;
};

}  // namespace pgsim
