#include "pgsim/serving/serving_core.h"

#include <algorithm>
#include <chrono>
#include <shared_mutex>
#include <utility>

#include "pgsim/common/failpoint.h"
#include "pgsim/common/task_scheduler.h"

namespace pgsim {

// ---------------------------------------------------------------------------
// TicketState
// ---------------------------------------------------------------------------

bool TicketState::Resolve(ServeResult result) {
  resolve_count.fetch_add(1, std::memory_order_relaxed);
  std::function<void(const ServeResult&)> cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (resolved_) return false;
    result_ = std::move(result);
    resolved_ = true;
    cb = std::move(callback);
  }
  cv_.notify_all();
  // Outside the lock: a callback that calls Wait()/resolved() must not
  // deadlock. result_ is immutable once resolved_.
  if (cb) cb(result_);
  return true;
}

const ServeResult& TicketState::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return resolved_; });
  return result_;
}

bool TicketState::resolved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolved_;
}

// ---------------------------------------------------------------------------
// Per-query wave state: one QueryRun per popped query ticket, heap-allocated
// by the pump and deleted by whichever task resolves it (mirrors
// StealingBatchRunner::Job, which has a batch to own it — waves do not).
// ---------------------------------------------------------------------------

struct ServingCore::QueryRun {
  ServingCore* core = nullptr;
  std::shared_ptr<TicketState> ticket;
  QueryJob job;
  std::atomic<uint32_t> remaining{0};  ///< outstanding verify tasks
};

// ---------------------------------------------------------------------------
// Construction / shutdown
// ---------------------------------------------------------------------------

ServingCore::ServingCore(QueryProcessor* proc, ServingOptions options)
    : proc_(proc),
      options_(std::move(options)),
      fingerprint_(QueryOptionsFingerprint(options_.query)),
      queue_(options_.max_queue) {
  if (!options_.add) {
    options_.add = [proc](const ProbabilisticGraph& g, uint64_t seed) {
      return proc->AddGraph(g, seed);
    };
  }
  if (!options_.remove) {
    options_.remove = [proc](uint32_t id) { return proc->RemoveGraph(id); };
  }
  sched_ = std::make_unique<TaskScheduler>(options_.num_threads);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  deadline_thread_ = std::thread([this] { DeadlineLoop(); });
}

ServingCore::~ServingCore() { Shutdown(); }

void ServingCore::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(core_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  // joinable() goes false after the first join, so a repeat call (the
  // destructor after an explicit Shutdown) is a no-op.
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(deadline_mu_);
    deadline_shutdown_ = true;
  }
  deadline_cv_.notify_all();
  if (deadline_thread_.joinable()) deadline_thread_.join();
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

QueryTicket ServingCore::Submit(const Graph& query, const SubmitOptions& opts) {
  auto ticket = std::make_shared<TicketState>();
  ticket->id = next_ticket_id_.fetch_add(1, std::memory_order_relaxed);
  ticket->kind = TicketState::Kind::kQuery;
  ticket->query = query;
  ticket->priority = opts.priority;
  ticket->allow_degraded = opts.allow_degraded;
  ticket->cancel_after_draws = opts.cancel_after_draws;
  ticket->deadline = DeadlineAfterMs(opts.deadline_ms);
  ticket->callback = opts.callback;
  n_submitted_.fetch_add(1, std::memory_order_relaxed);

  // Answer-cache probe on the admission path: a hit is exact and effectively
  // free, so it resolves here — the query never queues, never sheds, and
  // beats its deadline by construction. The epoch must be read under the
  // shared lock (a concurrent mutation bumps it only while holding the lock
  // exclusive), which also orders the cached answers with the index state.
  if (options_.answer_cache != nullptr) {
    AnswerCache::Probe probe;
    uint64_t epoch = 0;
    {
      std::shared_lock<std::shared_mutex> lock(proc_->live_mu_);
      epoch = proc_->epoch();
      probe = options_.answer_cache->Find(query, fingerprint_, epoch);
    }
    if (probe.hit) {
      n_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      ServeResult r;
      r.answers = *probe.answers;
      r.stats.answer_cache_hit = true;
      r.stats.answers = r.answers.size();
      r.epoch = epoch;
      n_completed_.fetch_add(1, std::memory_order_relaxed);
      ticket->Resolve(std::move(r));
      return QueryTicket(ticket);
    }
  }
  return SubmitTicket(std::move(ticket));
}

QueryTicket ServingCore::SubmitAddGraph(ProbabilisticGraph graph,
                                        uint64_t seed,
                                        const SubmitOptions& opts) {
  auto ticket = std::make_shared<TicketState>();
  ticket->id = next_ticket_id_.fetch_add(1, std::memory_order_relaxed);
  ticket->kind = TicketState::Kind::kAddGraph;
  ticket->add_graph = std::move(graph);
  ticket->add_seed = seed;
  ticket->priority = opts.priority;
  ticket->deadline = DeadlineAfterMs(opts.deadline_ms);
  ticket->callback = opts.callback;
  n_submitted_.fetch_add(1, std::memory_order_relaxed);
  return SubmitTicket(std::move(ticket));
}

QueryTicket ServingCore::SubmitRemoveGraph(uint32_t graph_id,
                                           const SubmitOptions& opts) {
  auto ticket = std::make_shared<TicketState>();
  ticket->id = next_ticket_id_.fetch_add(1, std::memory_order_relaxed);
  ticket->kind = TicketState::Kind::kRemoveGraph;
  ticket->remove_id = graph_id;
  ticket->priority = opts.priority;
  ticket->deadline = DeadlineAfterMs(opts.deadline_ms);
  ticket->callback = opts.callback;
  n_submitted_.fetch_add(1, std::memory_order_relaxed);
  return SubmitTicket(std::move(ticket));
}

QueryTicket ServingCore::SubmitTicket(std::shared_ptr<TicketState> ticket) {
  QueryTicket handle(ticket);
  if (DeadlineExpired(ticket->deadline)) {
    // Dead on arrival: resolve without consuming a queue slot.
    ServeResult r;
    r.status = Status::DeadlineExceeded("deadline expired before admission");
    n_deadline_.fetch_add(1, std::memory_order_relaxed);
    ticket->Resolve(std::move(r));
    return handle;
  }

  using Queue = BoundedPriorityQueue<std::shared_ptr<TicketState>>;
  std::shared_ptr<TicketState> evicted;
  auto outcome = Queue::PushOutcome::kRejected;
  bool shed_for_shutdown = false;
  {
    // Push under core_mu_: the dispatcher exits only on (shutdown_ && queue
    // empty) under the same mutex, so a ticket can never land in a queue
    // nobody will drain. Resolution happens OUTSIDE the lock — a ticket
    // callback is allowed to Submit again.
    std::lock_guard<std::mutex> lock(core_mu_);
    if (shutdown_) {
      shed_for_shutdown = true;
    } else {
      outcome = queue_.TryPush(ticket, ticket->priority, &evicted);
    }
  }
  if (shed_for_shutdown || outcome == Queue::PushOutcome::kRejected) {
    ResolveShed(ticket);
    return handle;
  }
  if (outcome == Queue::PushOutcome::kAdmittedEvicted) {
    ResolveShed(evicted);
  }
  n_admitted_.fetch_add(1, std::memory_order_relaxed);
  if (ticket->deadline != NoDeadline()) ArmDeadline(ticket);
  work_cv_.notify_one();
  return handle;
}

void ServingCore::ResolveShed(const std::shared_ptr<TicketState>& ticket) {
  ServeResult r;
  r.retry_after_seconds = drain_.RetryAfterSeconds(queue_.size());
  r.status = Status::Unavailable(
      "admission queue full; retry after ~" +
      std::to_string(r.retry_after_seconds) + "s");
  n_shed_.fetch_add(1, std::memory_order_relaxed);
  if (!ticket->Resolve(std::move(r))) {
    n_double_resolves_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Deadline thread: min-heap of (instant, ticket); flips CancelState when an
// instant passes. Tickets resolved earlier are held only weakly and lapse.
// ---------------------------------------------------------------------------

void ServingCore::ArmDeadline(const std::shared_ptr<TicketState>& ticket) {
  {
    std::lock_guard<std::mutex> lock(deadline_mu_);
    deadlines_.push(DeadlineEntry{ticket->deadline, ticket});
  }
  deadline_cv_.notify_one();
}

void ServingCore::DeadlineLoop() {
  std::unique_lock<std::mutex> lock(deadline_mu_);
  for (;;) {
    if (deadline_shutdown_) return;
    if (deadlines_.empty()) {
      deadline_cv_.wait(lock, [&] {
        return deadline_shutdown_ || !deadlines_.empty();
      });
      continue;
    }
    const DeadlinePoint next = deadlines_.top().when;
    if (std::chrono::steady_clock::now() < next) {
      deadline_cv_.wait_until(lock, next);
      continue;  // re-evaluate: new earlier deadline or shutdown
    }
    auto ticket = deadlines_.top().ticket.lock();
    deadlines_.pop();
    if (ticket != nullptr && !ticket->resolved()) {
      ticket->cancel.Cancel();
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatcher: alternates query waves (shared serving lock) with exclusive
// mutations, in admission-queue order.
// ---------------------------------------------------------------------------

void ServingCore::DispatcherLoop() {
  for (;;) {
    bool head_exclusive = false;
    bool have_head = false;
    {
      std::unique_lock<std::mutex> lock(core_mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
    }
    have_head = queue_.PeekHead([&](const std::shared_ptr<TicketState>& t) {
      head_exclusive = t->kind != TicketState::Kind::kQuery;
    });
    if (!have_head) continue;
    if (head_exclusive) {
      std::shared_ptr<TicketState> ticket;
      if (queue_.TryPopIf(
              [](const std::shared_ptr<TicketState>& t) {
                return t->kind != TicketState::Kind::kQuery;
              },
              &ticket)) {
        ApplyMutation(ticket);
      }
    } else {
      RunWave();
    }
  }
}

void ServingCore::RunWave() {
  // One wave = one scheduler Run under one shared serving lock = one frozen
  // epoch. The pump root admits queries mid-run; the wave ends when no query
  // is poppable and none is in flight.
  std::shared_lock<std::shared_mutex> lock(proc_->live_mu_);
  wave_epoch_ = proc_->epoch();
  n_waves_.fetch_add(1, std::memory_order_relaxed);
  TaskScheduler::Task root;
  root.fn = &ServingCore::PumpTask;
  root.ctx = this;
  sched_->Run(&root, 1, /*root_chunk=*/1);
}

void ServingCore::ApplyMutation(const std::shared_ptr<TicketState>& ticket) {
  ServeResult r;
  if (ticket->cancel.IsCancelled() || DeadlineExpired(ticket->deadline)) {
    r.status = Status::DeadlineExceeded("mutation expired while queued");
    n_deadline_.fetch_add(1, std::memory_order_relaxed);
    if (!ticket->Resolve(std::move(r))) {
      n_double_resolves_.fetch_add(1, std::memory_order_relaxed);
    }
    drain_.RecordCompletion(clock_.Seconds());
    return;
  }
  const Status injected = FailpointCheck("serving.mutation.apply");
  if (!injected.ok()) {
    r.status = injected;
  } else if (ticket->kind == TicketState::Kind::kAddGraph) {
    Result<uint32_t> added = options_.add(ticket->add_graph, ticket->add_seed);
    if (added.ok()) {
      r.graph_id = added.value();
    } else {
      r.status = added.status();
    }
  } else {
    r.status = options_.remove(ticket->remove_id);
  }
  r.epoch = proc_->epoch();
  RecordResolution(r.status, /*degraded=*/false);
  if (r.status.ok()) n_mutations_.fetch_add(1, std::memory_order_relaxed);
  if (!ticket->Resolve(std::move(r))) {
    n_double_resolves_.fetch_add(1, std::memory_order_relaxed);
  }
  drain_.RecordCompletion(clock_.Seconds());
}

void ServingCore::RecordResolution(const Status& status, bool degraded) {
  if (!status.ok()) {
    if (status.code() == StatusCode::kDeadlineExceeded) {
      n_deadline_.fetch_add(1, std::memory_order_relaxed);
    } else {
      n_failed_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (degraded) {
    n_degraded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    n_completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Wave tasks
// ---------------------------------------------------------------------------

void ServingCore::PumpTask(void* ctx, uint32_t worker, uint32_t /*a*/,
                           uint32_t /*b*/) {
  auto* core = static_cast<ServingCore*>(ctx);
  // Pop every currently-poppable query. Incrementing wave_inflight_ BEFORE
  // spawning keeps the "stay resident" decision below conservative.
  std::vector<QueryRun*> popped;
  std::shared_ptr<TicketState> ticket;
  while (core->queue_.TryPopIf(
      [](const std::shared_ptr<TicketState>& t) {
        return t->kind == TicketState::Kind::kQuery;
      },
      &ticket)) {
    auto* run = new QueryRun();
    run->core = core;
    run->ticket = std::move(ticket);
    core->wave_inflight_.fetch_add(1, std::memory_order_acq_rel);
    popped.push_back(run);
  }
  const bool stay =
      !popped.empty() ||
      core->wave_inflight_.load(std::memory_order_acquire) > 0;
  if (stay) {
    // Re-spawn the pump FIRST: the owner pops its deque LIFO, so the query
    // tasks below run (or are stolen) before the pump comes around again —
    // the pump polls for mid-wave arrivals without starving real work.
    TaskScheduler::Task pump;
    pump.fn = &ServingCore::PumpTask;
    pump.ctx = core;
    core->sched_->Spawn(worker, pump);
    if (popped.empty()) {
      // Nothing new this round: yield briefly so the resident pump does not
      // spin a worker at 100% while in-flight queries finish elsewhere.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  for (size_t i = popped.size(); i-- > 0;) {
    TaskScheduler::Task task;
    task.fn = &ServingCore::QueryTask;
    task.ctx = popped[i];
    core->sched_->Spawn(worker, task);
  }
  // !stay: queue head is empty or exclusive and nothing is in flight — the
  // wave drains and the dispatcher re-evaluates (mutation, wait, shutdown).
}

void ServingCore::QueryTask(void* ctx, uint32_t worker, uint32_t /*a*/,
                            uint32_t /*b*/) {
  auto* run = static_cast<ServingCore::QueryRun*>(ctx);
  ServingCore* core = run->core;
  TicketState* t = run->ticket.get();

  const Status injected = FailpointCheck("serving.query.front");
  if (!injected.ok()) {
    run->job.Clear();
    run->job.status = injected;
    core->FinishRun(run);
    return;
  }

  QueryContext* qctx = core->sched_->WorkerState<QueryContext>(worker);
  qctx->cache = nullptr;  // no batch-scoped cache across a live wave
  qctx->answer_cache = core->options_.answer_cache;
  qctx->answer_fingerprint = &core->fingerprint_;
  qctx->answer_epoch = core->wave_epoch_;
  qctx->cancel = &t->cancel;
  qctx->cancel_after_draws = t->cancel_after_draws;
  core->proc_->RunFrontStages(t->query, core->options_.query, qctx, &run->job);
  // The job captured the wiring; clear the per-worker context so a later
  // query on this worker cannot inherit another ticket's token.
  qctx->cancel = nullptr;
  qctx->cancel_after_draws = 0;

  const size_t n = run->job.to_verify.size();
  if (!run->job.status.ok() || n == 0) {
    core->FinishRun(run);
    return;
  }
  run->remaining.store(static_cast<uint32_t>(n), std::memory_order_relaxed);
  // Reverse spawn order: candidate 0 runs next on this worker (LIFO pop)
  // while thieves steal from the tail — same shape as StealingBatchRunner.
  for (size_t k = n; k-- > 0;) {
    TaskScheduler::Task task;
    task.fn = &ServingCore::VerifyTask;
    task.ctx = run;
    task.a = static_cast<uint32_t>(k);
    task.b = static_cast<uint32_t>(k + 1);
    core->sched_->Spawn(worker, task);
  }
}

void ServingCore::VerifyTask(void* ctx, uint32_t worker, uint32_t a,
                             uint32_t b) {
  auto* run = static_cast<ServingCore::QueryRun*>(ctx);
  ServingCore* core = run->core;
  QueryContext* qctx = core->sched_->WorkerState<QueryContext>(worker);
  for (uint32_t k = a; k < b; ++k) {
    core->proc_->VerifyCandidate(core->options_.query, &run->job, k,
                                 &qctx->verifier_scratch);
  }
  // acq_rel: the last finisher must observe every verdict/interval write.
  if (run->remaining.fetch_sub(static_cast<uint32_t>(b - a),
                               std::memory_order_acq_rel) == b - a) {
    core->FinishRun(run);
  }
}

void ServingCore::FinishRun(QueryRun* run) {
  proc_->FinishQuery(&run->job);
  QueryJob& job = run->job;
  TicketState* t = run->ticket.get();

  ServeResult r;
  r.epoch = wave_epoch_;
  if (!job.status.ok()) {
    r.status = job.status;
  } else if (job.cancelled.load(std::memory_order_relaxed)) {
    if (t->allow_degraded) {
      // The anytime answer: graphs verified similar so far, plus one
      // interval per candidate the cancellation cut off. Candidates the
      // front stages never even enumerated are simply absent — that is the
      // "one cancellation-point granularity" the contract allows.
      r.degraded = true;
      r.answers = std::move(job.answers);
      for (size_t k = 0; k < job.to_verify.size(); ++k) {
        if (job.intervals[k].completed) continue;
        IntervalAnswer ia;
        ia.graph_id = job.to_verify[k];
        ia.estimate = job.intervals[k].estimate;
        ia.lo = job.intervals[k].lo;
        ia.hi = job.intervals[k].hi;
        ia.samples = job.intervals[k].drawn;
        r.intervals.push_back(ia);
      }
      r.stats = job.stats;
    } else {
      r.status = Status::DeadlineExceeded("query cancelled at deadline");
      r.stats = job.stats;
    }
  } else {
    r.answers = std::move(job.answers);
    r.stats = job.stats;
  }
  // Every branch above filled r.stats from job.stats; fold the signature
  // counters into the core totals before resolving.
  n_sig_pairs_rejected_.fetch_add(r.stats.sig_pairs_rejected,
                                  std::memory_order_relaxed);
  n_domain_candidates_pruned_.fetch_add(r.stats.domain_candidates_pruned,
                                        std::memory_order_relaxed);
  n_vf2_calls_avoided_.fetch_add(r.stats.vf2_calls_avoided,
                                 std::memory_order_relaxed);
  RecordResolution(r.status, r.degraded);
  if (!t->Resolve(std::move(r))) {
    n_double_resolves_.fetch_add(1, std::memory_order_relaxed);
  }
  drain_.RecordCompletion(clock_.Seconds());
  delete run;
  // Release AFTER the resolve: the pump's "stay resident" check may only
  // see 0 once this query is fully accounted for.
  wave_inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

ServingStats ServingCore::stats() const {
  ServingStats s;
  s.submitted = n_submitted_.load(std::memory_order_relaxed);
  s.admitted = n_admitted_.load(std::memory_order_relaxed);
  s.answer_cache_hits = n_cache_hits_.load(std::memory_order_relaxed);
  s.shed = n_shed_.load(std::memory_order_relaxed);
  s.completed = n_completed_.load(std::memory_order_relaxed);
  s.degraded = n_degraded_.load(std::memory_order_relaxed);
  s.deadline_exceeded = n_deadline_.load(std::memory_order_relaxed);
  s.failed = n_failed_.load(std::memory_order_relaxed);
  s.mutations_applied = n_mutations_.load(std::memory_order_relaxed);
  s.waves = n_waves_.load(std::memory_order_relaxed);
  s.double_resolves = n_double_resolves_.load(std::memory_order_relaxed);
  s.sig_pairs_rejected =
      n_sig_pairs_rejected_.load(std::memory_order_relaxed);
  s.domain_candidates_pruned =
      n_domain_candidates_pruned_.load(std::memory_order_relaxed);
  s.vf2_calls_avoided = n_vf2_calls_avoided_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pgsim
