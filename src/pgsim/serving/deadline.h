// Deadline representation for the serving core.
//
// Deadlines are absolute steady-clock instants (steady_clock, not
// system_clock, so NTP slews can neither fire nor starve them). The serving
// core's deadline thread keeps a min-heap of (deadline, ticket) and flips
// each ticket's CancelState (common/cancel.h) when its instant passes; the
// query pipeline polls that flag at its cancellation points.

#pragma once

#include <chrono>
#include <cstdint>

#include "pgsim/common/cancel.h"

namespace pgsim {

/// A deadline as an absolute steady-clock instant.
using DeadlinePoint = std::chrono::steady_clock::time_point;

/// Sentinel for "no deadline".
inline DeadlinePoint NoDeadline() { return DeadlinePoint::max(); }

/// Deadline `ms` milliseconds from now; ms < 0 means no deadline.
inline DeadlinePoint DeadlineAfterMs(int64_t ms) {
  if (ms < 0) return NoDeadline();
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

inline bool DeadlineExpired(DeadlinePoint deadline) {
  return deadline != NoDeadline() &&
         std::chrono::steady_clock::now() >= deadline;
}

}  // namespace pgsim
