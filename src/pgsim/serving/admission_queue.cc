#include "pgsim/serving/admission_queue.h"

namespace pgsim {

namespace {
// One-eighth weight on the newest interval: smooth enough to ride out one
// pathological query, fresh enough to track a real load shift within ~8
// completions.
constexpr double kEwmaAlpha = 0.125;
}  // namespace

void DrainRateEstimator::RecordCompletion(double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (completions_ > 0) {
    const double interval = now_seconds - last_completion_seconds_;
    if (interval >= 0.0) {
      ewma_interval_seconds_ =
          completions_ == 1
              ? interval
              : (1.0 - kEwmaAlpha) * ewma_interval_seconds_ +
                    kEwmaAlpha * interval;
    }
  }
  last_completion_seconds_ = now_seconds;
  ++completions_;
}

double DrainRateEstimator::RetryAfterSeconds(
    size_t depth, double default_per_item_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double per_item = completions_ >= 2 && ewma_interval_seconds_ > 0.0
                              ? ewma_interval_seconds_
                              : default_per_item_seconds;
  return static_cast<double>(depth + 1) * per_item;
}

uint64_t DrainRateEstimator::completions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completions_;
}

}  // namespace pgsim
