#include "pgsim/common/failpoint.h"

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <set>

namespace pgsim {

namespace {

// Fast path: sites check this counter with one relaxed load and bail when no
// failpoint is armed anywhere, so the framework costs nothing in production.
std::atomic<int> g_active_count{0};

std::mutex g_mu;
std::map<std::string, FailpointSpec>& ArmedMap() {
  static auto* m = new std::map<std::string, FailpointSpec>();
  return *m;
}
std::set<std::string>& KnownSites() {
  static auto* s = new std::set<std::string>();
  return *s;
}
std::map<std::string, uint64_t>& HitCounts() {
  static auto* m = new std::map<std::string, uint64_t>();
  return *m;
}

void RegisterSite(const char* site) {
  std::lock_guard<std::mutex> lock(g_mu);
  KnownSites().insert(site);
}

// Looks up `site` under the lock. Decrements the skip count on a hit that is
// still being skipped; disarms (one-shot) on a hit that fires. Returns kOff
// in `*spec` when the site should not fire this time.
void Hit(const char* site, FailpointSpec* spec) {
  spec->mode = FailpointMode::kOff;
  std::lock_guard<std::mutex> lock(g_mu);
  KnownSites().insert(site);
  auto& armed = ArmedMap();
  auto it = armed.find(site);
  if (it == armed.end()) return;
  if (it->second.skip > 0) {
    --it->second.skip;
    return;
  }
  *spec = it->second;
  armed.erase(it);
  ++HitCounts()[site];
  g_active_count.fetch_sub(1, std::memory_order_relaxed);
}

[[noreturn]] void CrashNow() {
  // A literal process kill: no stream flushes, no destructors, no atexit.
  _exit(kFailpointCrashExitCode);
}

Status InjectedError(const char* site) {
  return Status::Internal(std::string("failpoint '") + site +
                          "' injected error");
}

}  // namespace

void FailpointSet(const std::string& site, const FailpointSpec& spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  KnownSites().insert(site);
  auto& armed = ArmedMap();
  auto it = armed.find(site);
  if (spec.mode == FailpointMode::kOff) {
    if (it != armed.end()) {
      armed.erase(it);
      g_active_count.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  if (it == armed.end()) {
    armed.emplace(site, spec);
    g_active_count.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second = spec;
  }
}

void FailpointArm(const std::string& site, const FailpointSpec& spec) {
  FailpointSet(site, spec);
}

void FailpointClear(const std::string& site) {
  FailpointSet(site, FailpointSpec{});
}

void FailpointClearAll() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_active_count.fetch_sub(static_cast<int>(ArmedMap().size()),
                           std::memory_order_relaxed);
  ArmedMap().clear();
}

void FailpointResetAll() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_active_count.fetch_sub(static_cast<int>(ArmedMap().size()),
                           std::memory_order_relaxed);
  ArmedMap().clear();
  HitCounts().clear();
}

uint64_t FailpointHits(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto& counts = HitCounts();
  auto it = counts.find(site);
  return it == counts.end() ? 0 : it->second;
}

Status FailpointSetFromString(const std::string& config) {
  size_t pos = 0;
  while (pos < config.size()) {
    size_t end = config.find(';', pos);
    if (end == std::string::npos) end = config.size();
    std::string entry = config.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' is not of the form site=mode");
    }
    std::string site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    FailpointSpec spec;
    // Peel "@skip" then ":keep" suffixes off the mode token.
    const size_t at = rest.find('@');
    if (at != std::string::npos) {
      char* endp = nullptr;
      const unsigned long v = std::strtoul(rest.c_str() + at + 1, &endp, 10);
      if (endp == rest.c_str() + at + 1 || *endp != '\0') {
        return Status::InvalidArgument("failpoint entry '" + entry +
                                       "' has a malformed @skip count");
      }
      spec.skip = static_cast<uint32_t>(v);
      rest.resize(at);
    }
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      char* endp = nullptr;
      const unsigned long v = std::strtoul(rest.c_str() + colon + 1, &endp, 10);
      if (endp == rest.c_str() + colon + 1 || *endp != '\0') {
        return Status::InvalidArgument("failpoint entry '" + entry +
                                       "' has a malformed :keep_bytes value");
      }
      spec.keep_bytes = static_cast<uint32_t>(v);
      rest.resize(colon);
    }

    if (rest == "error") {
      spec.mode = FailpointMode::kError;
    } else if (rest == "crash") {
      spec.mode = FailpointMode::kCrash;
    } else if (rest == "torn") {
      spec.mode = FailpointMode::kTornWrite;
    } else if (rest == "short") {
      spec.mode = FailpointMode::kShortWrite;
    } else {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' has unknown mode '" + rest + "'");
    }
    FailpointSet(site, spec);
  }
  return Status::OK();
}

Status FailpointInstallFromEnv() {
  const char* env = std::getenv("PGSIM_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  return FailpointSetFromString(env);
}

Status FailpointCheck(const char* site) {
  if (g_active_count.load(std::memory_order_relaxed) == 0) {
    RegisterSite(site);
    return Status::OK();
  }
  FailpointSpec spec;
  Hit(site, &spec);
  switch (spec.mode) {
    case FailpointMode::kOff:
      return Status::OK();
    case FailpointMode::kCrash:
      CrashNow();
    case FailpointMode::kError:
    case FailpointMode::kTornWrite:
    case FailpointMode::kShortWrite:
      // Non-write sites have no payload to tear; degrade to an error.
      return InjectedError(site);
  }
  return Status::OK();
}

bool FailpointCheckWrite(const char* site, size_t n, FailpointSpec* spec,
                         Status* error) {
  *error = Status::OK();
  if (g_active_count.load(std::memory_order_relaxed) == 0) {
    RegisterSite(site);
    return false;
  }
  Hit(site, spec);
  switch (spec->mode) {
    case FailpointMode::kOff:
      return false;
    case FailpointMode::kCrash:
      CrashNow();
    case FailpointMode::kError:
      *error = InjectedError(site);
      return false;
    case FailpointMode::kTornWrite:
    case FailpointMode::kShortWrite:
      if (spec->keep_bytes > n) spec->keep_bytes = static_cast<uint32_t>(n);
      return true;
  }
  return false;
}

Status FailpointAfterPartialWrite(const char* site, const FailpointSpec& spec) {
  if (spec.mode == FailpointMode::kTornWrite) CrashNow();
  return Status::DataLoss(std::string("failpoint '") + site +
                          "' injected short write (" +
                          std::to_string(spec.keep_bytes) + " bytes kept)");
}

std::vector<std::string> FailpointKnownSites() {
  std::lock_guard<std::mutex> lock(g_mu);
  return std::vector<std::string>(KnownSites().begin(), KnownSites().end());
}

bool FailpointAnyActive() {
  return g_active_count.load(std::memory_order_relaxed) != 0;
}

}  // namespace pgsim
