#include "pgsim/common/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace pgsim {
namespace {

// Cheap per-worker xorshift for victim selection. Seeds differ per worker;
// the steal schedule is allowed to vary run-to-run (results may not).
inline uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace

// Chase-Lev work-stealing deque (Lê/Pop/Cocchiarella/Zappa Nardelli fences).
// The owner pushes/pops at `bottom`; thieves CAS `top` upward. Slots are
// relaxed atomics: a thief may read a slot the owner is concurrently
// recycling, but the value is only *used* if the subsequent top CAS
// succeeds, which proves the slot was still live when read (the owner never
// overwrites an index in [top, bottom), and growth keeps old rings alive).
class TaskDeque {
 public:
  // NewRing registers the ring in rings_, so it must run in the body (after
  // every member is constructed), not in the init list: ring_ is declared
  // before rings_, and a list-initializer would push into a vector whose
  // constructor hasn't run yet, leaking the initial ring when it does.
  TaskDeque() { ring_.store(NewRing(kInitialCapacity), std::memory_order_relaxed); }

  // Owner only.
  void Push(const TaskScheduler::Task& task) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t > ring->capacity - 1) ring = Grow(ring, t, b);
    StoreSlot(&ring->slots[b & ring->mask], task);
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. LIFO: returns the most recently pushed task.
  bool Pop(TaskScheduler::Task* out) {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    LoadSlot(ring->slots[b & ring->mask], out);
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  // Any thief. FIFO: returns the oldest task.
  bool Steal(TaskScheduler::Task* out) {
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Ring* ring = ring_.load(std::memory_order_acquire);
    TaskScheduler::Task task;
    LoadSlot(ring->slots[t & ring->mask], &task);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race; the speculative read is discarded
    }
    *out = task;
    return true;
  }

  /// Approximate depth (racy; for stats only).
  int64_t DepthApprox() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

  bool EmptyApprox() const { return DepthApprox() <= 0; }

 private:
  static constexpr int64_t kInitialCapacity = 256;

  // One task, stored as independent relaxed atomics (see class comment).
  struct Slot {
    std::atomic<TaskScheduler::TaskFn> fn{nullptr};
    std::atomic<void*> ctx{nullptr};
    std::atomic<uint32_t> a{0};
    std::atomic<uint32_t> b{0};
  };
  struct Ring {
    int64_t capacity = 0;
    int64_t mask = 0;
    std::unique_ptr<Slot[]> slots;
  };

  static void StoreSlot(Slot* slot, const TaskScheduler::Task& task) {
    slot->fn.store(task.fn, std::memory_order_relaxed);
    slot->ctx.store(task.ctx, std::memory_order_relaxed);
    slot->a.store(task.a, std::memory_order_relaxed);
    slot->b.store(task.b, std::memory_order_relaxed);
  }
  static void LoadSlot(const Slot& slot, TaskScheduler::Task* out) {
    out->fn = slot.fn.load(std::memory_order_relaxed);
    out->ctx = slot.ctx.load(std::memory_order_relaxed);
    out->a = slot.a.load(std::memory_order_relaxed);
    out->b = slot.b.load(std::memory_order_relaxed);
  }

  Ring* NewRing(int64_t capacity) {
    auto ring = std::make_unique<Ring>();
    ring->capacity = capacity;
    ring->mask = capacity - 1;
    ring->slots = std::make_unique<Slot[]>(capacity);
    rings_.push_back(std::move(ring));
    return rings_.back().get();
  }

  // Owner only. Old rings stay alive until destruction: a thief that loaded
  // the old ring pointer can still read (then discard) stale slots safely.
  Ring* Grow(Ring* old, int64_t top, int64_t bottom) {
    Ring* bigger = NewRing(old->capacity * 2);
    for (int64_t i = top; i < bottom; ++i) {
      TaskScheduler::Task task;
      LoadSlot(old->slots[i & old->mask], &task);
      StoreSlot(&bigger->slots[i & bigger->mask], task);
    }
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-touched at Grow only
};

struct alignas(64) TaskScheduler::PerWorker {
  TaskDeque deque;
  // Written by the owning worker during a Run, read by Run() afterwards.
  uint64_t executed = 0;
  uint64_t stolen = 0;
  uint64_t steal_attempts = 0;
  uint64_t root_claims = 0;
  uint64_t max_depth = 0;
};

TaskScheduler::TaskScheduler(uint32_t num_workers) {
  num_workers_ = num_workers == 0 ? ThreadPool::DefaultThreads() : num_workers;
  if (num_workers_ > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(num_workers_);
    pool_ = owned_pool_.get();
  }
  workers_.reserve(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    workers_.push_back(std::make_unique<PerWorker>());
  }
  worker_state_.resize(num_workers_);
}

TaskScheduler::TaskScheduler(ThreadPool* pool) {
  num_workers_ = pool == nullptr ? 1 : pool->size();
  pool_ = num_workers_ > 1 ? pool : nullptr;
  workers_.reserve(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    workers_.push_back(std::make_unique<PerWorker>());
  }
  worker_state_.resize(num_workers_);
}

TaskScheduler::~TaskScheduler() {
  for (StateSlot& slot : worker_state_) {
    if (slot.ptr != nullptr) slot.destroy(slot.ptr);
  }
}

SchedulerRunStats TaskScheduler::Run(const Task* roots, size_t num_roots,
                                     size_t root_chunk) {
  SchedulerRunStats stats;
  if (num_roots == 0) return stats;
  roots_ = roots;
  num_roots_ = num_roots;
  root_chunk_ = root_chunk == 0 ? 1 : root_chunk;
  root_cursor_.store(0, std::memory_order_relaxed);
  pending_.store(static_cast<int64_t>(num_roots), std::memory_order_relaxed);
  first_exception_ = nullptr;
  for (auto& worker : workers_) {
    worker->executed = worker->stolen = worker->steal_attempts =
        worker->root_claims = worker->max_depth = 0;
  }

  if (pool_ == nullptr) {
    WorkerLoop(0);
  } else {
    std::vector<std::function<void()>> loops;
    loops.reserve(num_workers_);
    for (uint32_t w = 0; w < num_workers_; ++w) {
      loops.push_back([this, w] { WorkerLoop(w); });
    }
    pool_->SubmitMany(std::move(loops));
    pool_->Wait();
  }

  for (const auto& worker : workers_) {
    stats.tasks_executed += worker->executed;
    stats.tasks_stolen += worker->stolen;
    stats.steal_attempts += worker->steal_attempts;
    stats.root_claims += worker->root_claims;
    stats.max_queue_depth = std::max(stats.max_queue_depth, worker->max_depth);
  }
  roots_ = nullptr;
  num_roots_ = 0;
  if (first_exception_ != nullptr) {
    std::exception_ptr rethrow = std::move(first_exception_);
    first_exception_ = nullptr;
    std::rethrow_exception(rethrow);
  }
  return stats;
}

void TaskScheduler::Spawn(uint32_t worker, const Task& task) {
  PerWorker& self = *workers_[worker];
  pending_.fetch_add(1, std::memory_order_relaxed);
  self.deque.Push(task);
  const uint64_t depth = static_cast<uint64_t>(self.deque.DepthApprox());
  if (depth > self.max_depth) self.max_depth = depth;
  // Pair with the sleeper's publish-then-recheck (seq_cst fence on both
  // sides): either the spawner sees the sleeper and notifies, or the
  // sleeper's post-publish scan sees this push.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    sleep_cv_.notify_all();
  }
}

void TaskScheduler::Execute(const Task& task, uint32_t worker) {
  ++workers_[worker]->executed;
  try {
    task.fn(task.ctx, worker, task.a, task.b);
  } catch (...) {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    if (first_exception_ == nullptr) {
      first_exception_ = std::current_exception();
    }
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    sleep_cv_.notify_all();  // graph drained: wake every parked worker
  }
}

bool TaskScheduler::TrySteal(uint32_t thief, uint64_t* rng_state, Task* out) {
  if (num_workers_ <= 1) return false;
  PerWorker& self = *workers_[thief];
  // Randomized probes first, then one deterministic sweep so a lone busy
  // victim is always found before the thief parks.
  for (uint32_t attempt = 0; attempt < num_workers_; ++attempt) {
    const uint32_t victim =
        static_cast<uint32_t>(NextRandom(rng_state) % num_workers_);
    if (victim == thief) continue;
    ++self.steal_attempts;
    if (workers_[victim]->deque.Steal(out)) return true;
  }
  for (uint32_t victim = 0; victim < num_workers_; ++victim) {
    if (victim == thief) continue;
    ++self.steal_attempts;
    if (workers_[victim]->deque.Steal(out)) return true;
  }
  return false;
}

bool TaskScheduler::HasVisibleWork() const {
  if (root_cursor_.load(std::memory_order_relaxed) < num_roots_) return true;
  for (const auto& worker : workers_) {
    if (!worker->deque.EmptyApprox()) return true;
  }
  return false;
}

void TaskScheduler::Park() {
  std::unique_lock<std::mutex> lock(sleep_mu_);
  sleepers_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!HasVisibleWork() && pending_.load(std::memory_order_acquire) != 0) {
    // Timed: even a (theoretically) lost wakeup only costs the timeout.
    sleep_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

void TaskScheduler::WorkerLoop(uint32_t worker) {
  PerWorker& self = *workers_[worker];
  uint64_t rng_state = 0x9E3779B97F4A7C15ULL * (worker + 1) | 1;
  size_t local_root = 0;
  size_t local_root_end = 0;
  Task task;
  for (;;) {
    bool have = false;
    if (self.deque.Pop(&task)) {
      have = true;
    } else if (local_root < local_root_end) {
      task = roots_[local_root++];
      have = true;
    } else if (TrySteal(worker, &rng_state, &task)) {
      ++self.stolen;
      have = true;
    } else {
      const size_t begin =
          root_cursor_.fetch_add(root_chunk_, std::memory_order_relaxed);
      if (begin < num_roots_) {
        ++self.root_claims;
        local_root = begin;
        local_root_end = std::min(begin + root_chunk_, num_roots_);
        task = roots_[local_root++];
        have = true;
      }
    }
    if (have) {
      Execute(task, worker);
      continue;
    }
    if (pending_.load(std::memory_order_acquire) == 0) return;
    Park();
  }
}

}  // namespace pgsim
