#include "pgsim/common/crc32c.h"

namespace pgsim {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

// Slice-by-4 tables: table_[0] is the plain byte-at-a-time table; tables
// 1..3 fold 4 input bytes per step. Built once at first use (thread-safe
// under C++11 static initialization).
struct Tables {
  uint32_t t[4][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Head: align to 4 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3u) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  // Body: 4 bytes per step.
  while (n >= 4) {
    const uint32_t w = crc ^ (static_cast<uint32_t>(p[0]) |
                              static_cast<uint32_t>(p[1]) << 8 |
                              static_cast<uint32_t>(p[2]) << 16 |
                              static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][w & 0xFFu] ^ tb.t[2][(w >> 8) & 0xFFu] ^
          tb.t[1][(w >> 16) & 0xFFu] ^ tb.t[0][(w >> 24) & 0xFFu];
    p += 4;
    n -= 4;
  }
  // Tail.
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  return ~crc;
}

}  // namespace pgsim
