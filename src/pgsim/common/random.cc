#include "pgsim/common/random.h"

#include <cassert>
#include <cmath>

namespace pgsim {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::Gamma(double shape) {
  // Marsaglia–Tsang for shape >= 1; boost via U^(1/shape) otherwise.
  if (shape < 1.0) {
    double u = 0.0;
    while (u == 0.0) u = UniformDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  const double x = Gamma(alpha);
  const double y = Gamma(beta);
  const double sum = x + y;
  return sum > 0.0 ? x / sum : 0.5;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace pgsim
