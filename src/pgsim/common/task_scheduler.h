// Work-stealing task scheduler with a chunked root-claim fallback.
//
// The chunked ParallelFor in thread_pool.h distributes *ranges*: once a
// worker claims a chunk it owns every item in it, so one pathological item
// (a huge relaxation set, a verification-heavy query) stalls its whole chunk
// while other workers idle. This scheduler distributes *tasks*: each worker
// owns a Chase-Lev deque it pushes spawned subtasks onto (LIFO for the
// owner, so a query's own verification candidates run next with warm
// caches), and an idle worker steals from the FIFO end of a random victim —
// the Galois/Pangolin stealing-executor idiom (ENABLE_STEAL + chunked
// claim). Root tasks submitted to Run() are claimed `root_chunk` at a time
// from a shared cursor, exactly like the chunked ParallelFor, so the steady
// state is cheap and stealing only pays when skew appears.
//
// Tasks are plain structs (function pointer + context pointer + two u32
// operands): spawning performs no allocation beyond occasional deque ring
// growth, and the deque slots are relaxed atomics so concurrent
// steal-vs-push probes are data-race-free (a torn speculative read is
// discarded by the failed top CAS that follows it).
//
// Determinism contract: the scheduler guarantees only that every spawned
// task executes exactly once, on some worker, before Run() returns. Callers
// needing schedule-independent results must make each task's *output*
// independent of execution order and worker identity — the query engine
// does this with sequentially pre-forked per-candidate RNGs and
// order-merged verdicts (see query/processor.h).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "pgsim/common/thread_pool.h"

namespace pgsim {

/// Counters aggregated over one Run() (summed across workers).
struct SchedulerRunStats {
  uint64_t tasks_executed = 0;  ///< root + spawned tasks run to completion
  uint64_t tasks_stolen = 0;    ///< tasks taken from another worker's deque
  uint64_t steal_attempts = 0;  ///< victim probes, successful or not
  uint64_t root_claims = 0;     ///< chunked grabs from the shared root cursor
  uint64_t max_queue_depth = 0; ///< deepest per-worker deque seen at a push
};

/// Work-stealing executor over a ThreadPool (owned or borrowed).
///
/// Run() executes a set of root tasks plus everything they transitively
/// Spawn(), returning when the whole task graph has drained. One Run() at a
/// time per scheduler; the object (and its per-worker state) is reusable
/// across Run() calls, which is how worker scratch survives across batches.
class TaskScheduler {
 public:
  /// A task: fn(ctx, worker, a, b). `worker` is the executing worker's rank
  /// in [0, num_workers()) — valid for Spawn() and WorkerState() calls made
  /// from inside the task. `a`/`b` are free operands (typically an index or
  /// a [begin, end) range).
  using TaskFn = void (*)(void* ctx, uint32_t worker, uint32_t a, uint32_t b);
  struct Task {
    TaskFn fn = nullptr;
    void* ctx = nullptr;
    uint32_t a = 0;
    uint32_t b = 0;
  };

  /// Owns a ThreadPool of `num_workers` threads (0 = all hardware threads).
  /// A width of 1 runs every task inline on the thread calling Run().
  explicit TaskScheduler(uint32_t num_workers = 0);

  /// Borrows `pool` (must outlive the scheduler); width = pool->size().
  /// Run() assumes exclusive use of the pool for its duration (the same
  /// contract QueryBatch already imposes on BatchOptions::pool). A null
  /// pool behaves like width 1.
  explicit TaskScheduler(ThreadPool* pool);

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;
  ~TaskScheduler();

  /// Worker count (>= 1).
  uint32_t num_workers() const { return num_workers_; }

  /// Runs `roots[0..num_roots)` and all transitively spawned tasks to
  /// completion. Workers prefer their own deque (newest first), then steal
  /// from random victims, then claim `root_chunk` roots from the shared
  /// cursor. If a task throws, the first exception is rethrown here after
  /// the graph drains (remaining tasks still run); the scheduler stays
  /// usable. Must not be called from inside a task.
  SchedulerRunStats Run(const Task* roots, size_t num_roots,
                        size_t root_chunk = 1);
  SchedulerRunStats Run(const std::vector<Task>& roots,
                        size_t root_chunk = 1) {
    return Run(roots.data(), roots.size(), root_chunk);
  }

  /// Pushes `task` onto `worker`'s deque. Call only from inside a task
  /// running on `worker` (the rank passed to its TaskFn).
  void Spawn(uint32_t worker, const Task& task);

  /// Lazily default-constructed per-worker state of type T, owned by the
  /// scheduler and retained across Run() calls — this is how a worker
  /// reuses query/verifier scratch across stolen tasks and across batches.
  /// Safe from the worker itself mid-run, or from any thread while no Run()
  /// is active. One T per worker slot: all callers must agree on the type.
  template <typename T>
  T* WorkerState(uint32_t worker) {
    StateSlot& slot = worker_state_[worker];
    if (slot.ptr == nullptr) {
      slot.ptr = new T();
      slot.destroy = [](void* p) { delete static_cast<T*>(p); };
    }
    return static_cast<T*>(slot.ptr);
  }

 private:
  struct StateSlot {
    void* ptr = nullptr;
    void (*destroy)(void*) = nullptr;
  };
  struct PerWorker;  // deque + local stats (task_scheduler.cc)

  void WorkerLoop(uint32_t worker);
  void Execute(const Task& task, uint32_t worker);
  bool TrySteal(uint32_t thief, uint64_t* rng_state, Task* out);
  bool HasVisibleWork() const;
  void Park();

  uint32_t num_workers_ = 1;
  ThreadPool* pool_ = nullptr;            ///< null => width-1 inline mode
  std::unique_ptr<ThreadPool> owned_pool_;
  std::vector<std::unique_ptr<PerWorker>> workers_;
  std::vector<StateSlot> worker_state_;

  // Per-run root distribution (chunked claim fallback).
  const Task* roots_ = nullptr;
  size_t num_roots_ = 0;
  size_t root_chunk_ = 1;
  std::atomic<size_t> root_cursor_{0};

  // Unfinished-task count: roots are pre-counted by Run(), Spawn()
  // increments before pushing, Execute() decrements after the task body (and
  // after any tasks it spawned were counted) — so 0 means the graph drained.
  std::atomic<int64_t> pending_{0};

  // Idle-worker parking. Spawners notify only when sleepers_ > 0; sleepers
  // re-check for work after publishing themselves (seq_cst fences order the
  // push/check against the sleeper count), and the wait is timed as a
  // belt-and-braces backstop, so a lost wakeup costs at most the timeout.
  std::atomic<uint32_t> sleepers_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::exception_ptr first_exception_;  ///< guarded by sleep_mu_
};

}  // namespace pgsim
