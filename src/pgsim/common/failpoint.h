// Failpoint fault-injection framework for the durability layer.
//
// Every WAL and snapshot IO path passes through named failpoint *sites*
// ("wal.append.write", "snapshot.pmi.rename", ...). A site is inert by
// default — the fast path is one relaxed atomic load of a global counter —
// and can be armed programmatically (FailpointSet) or through the
// PGSIM_FAILPOINTS environment variable to inject one of four faults:
//
//   error       the site returns Status::Internal to its caller — exercises
//               the error-propagation path (e.g. a failed write syscall).
//   crash       the process dies on the spot via _exit (no flushes, no
//               destructors) — a literal kill -9 at that instruction. The
//               recovery test harness forks a child, arms a crash failpoint,
//               runs a mutation, and asserts the reopened database is
//               bit-identical to the pre- or post-mutation index.
//   torn-write  a write-site writes only the first `keep_bytes` bytes of its
//               payload and then crashes — the torn-record case every WAL
//               and snapshot reader must detect by CRC.
//   short-write a write-site writes only `keep_bytes` bytes and returns
//               Status::DataLoss — a lying disk / ENOSPC that the caller
//               survives in-process (the file tail is garbage).
//
// Environment syntax (';'-separated):
//   PGSIM_FAILPOINTS="wal.append.write=torn:12;snapshot.pmi.rename=crash@1"
//     mode      := error | crash | torn | short
//     :N        keep_bytes for torn/short (default 0 = write nothing)
//     @K        skip the first K hits of the site (default 0 = fire first)
//
// Every armed failpoint is ONE-SHOT: it disarms when it fires, so a
// recovery run over the same code path does not re-trigger the fault.
// Sites self-register on first evaluation; FailpointKnownSites() lists them
// so kill matrices can assert full coverage.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "pgsim/common/status.h"

namespace pgsim {

enum class FailpointMode : uint8_t {
  kOff = 0,
  kError,       ///< return an injected Status::Internal
  kCrash,       ///< _exit(kFailpointCrashExitCode) immediately
  kTornWrite,   ///< write keep_bytes, then crash
  kShortWrite,  ///< write keep_bytes, then return Status::DataLoss
};

/// Exit code of a crash/torn-write failpoint — lets a forking test harness
/// distinguish the injected kill from an ordinary failure.
constexpr int kFailpointCrashExitCode = 73;

struct FailpointSpec {
  FailpointMode mode = FailpointMode::kOff;
  /// torn/short-write: bytes of the payload actually written before the
  /// fault. Values >= the payload size fault AFTER a complete write.
  uint32_t keep_bytes = 0;
  /// Hits of the site to let through before firing.
  uint32_t skip = 0;
};

/// Arms `site` with `spec` (replacing any previous arming).
void FailpointSet(const std::string& site, const FailpointSpec& spec);

/// Programmatic arming for in-process tests (chaos soak, unit suites): the
/// same operation as FailpointSet, named for call-site readability.
void FailpointArm(const std::string& site, const FailpointSpec& spec);

/// Disarms one site / all sites.
void FailpointClear(const std::string& site);
void FailpointClearAll();

/// Disarms every site AND zeroes every per-site hit counter — the reset a
/// test runs between chaos iterations so counters attribute to one run.
void FailpointResetAll();

/// Times `site` has FIRED an armed fault in this process (skipped hits and
/// unarmed evaluations do not count). Zeroed by FailpointResetAll.
uint64_t FailpointHits(const std::string& site);

/// Parses the PGSIM_FAILPOINTS syntax above and arms every entry. Unknown
/// modes or malformed entries return InvalidArgument (nothing armed from the
/// bad entry; prior entries stay armed).
Status FailpointSetFromString(const std::string& config);

/// Reads PGSIM_FAILPOINTS from the environment (no-op when unset).
Status FailpointInstallFromEnv();

/// Evaluates a non-write site: kError returns the injected status, kCrash
/// does not return. Torn/short-write arming on a non-write site behaves as
/// kError (the site has no payload to tear). OK when unarmed.
Status FailpointCheck(const char* site);

/// Evaluates a write site carrying an `n`-byte payload. Returns false when
/// unarmed (caller performs the full write). When armed with torn/short
/// write, fills `*spec` and returns true: the caller must write
/// min(spec->keep_bytes, n) bytes and then call FailpointAfterPartialWrite.
/// kError/kCrash fire here directly (kError via *error).
bool FailpointCheckWrite(const char* site, size_t n, FailpointSpec* spec,
                         Status* error);

/// Completes a torn/short write after the partial payload got out: crashes
/// (torn) or returns the DataLoss the caller propagates (short).
Status FailpointAfterPartialWrite(const char* site, const FailpointSpec& spec);

/// Sites evaluated at least once in this process, sorted — the kill-matrix
/// universe. Sites register on first evaluation regardless of arming.
std::vector<std::string> FailpointKnownSites();

/// True when any site is armed (the fast-path counter is nonzero).
bool FailpointAnyActive();

}  // namespace pgsim
