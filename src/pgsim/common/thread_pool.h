// Fixed-size worker pool with chunked parallel-for.
//
// QueryProcessor::QueryBatch fans query batches across one of these; the
// chunked claim loop (an atomic cursor advanced `chunk` items at a time)
// follows the Galois/Pangolin-style chunked work distribution: large enough
// chunks to amortize the atomic, small enough to balance skewed per-query
// cost. Header-only; uses only std::thread primitives.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pgsim {

/// Fixed pool of worker threads. Tasks run in submission order per worker;
/// Wait() blocks until every submitted task has finished.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 means DefaultThreads()).
  explicit ThreadPool(uint32_t num_threads = 0) {
    if (num_threads == 0) num_threads = DefaultThreads();
    workers_.reserve(num_threads);
    for (uint32_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Number of worker threads.
  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  /// Enqueues a task for any worker.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++pending_;
      queue_.push(std::move(task));
    }
    wake_.notify_one();
  }

  /// Enqueues a burst of tasks under one lock acquisition and one
  /// notify_all, instead of a lock + notify_one per task: on small batches
  /// the per-Submit wake-up (futex syscall while the workers are still
  /// parking) dominates enqueue cost — BM_ThreadPool_SubmitBurst pins the
  /// difference. ParallelFor and the work-stealing TaskScheduler submit
  /// their per-worker loops through this.
  void SubmitMany(std::vector<std::function<void()>> tasks) {
    if (tasks.empty()) return;
    {
      std::unique_lock<std::mutex> lock(mu_);
      pending_ += tasks.size();
      for (auto& task : tasks) queue_.push(std::move(task));
    }
    wake_.notify_all();
  }

  /// Blocks until all tasks submitted so far have completed.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Chunked parallel-for over [0, n): workers repeatedly claim the next
  /// `chunk` indices and call fn(worker_rank, begin, end) with worker_rank in
  /// [0, size()). Blocks until the whole range is processed. Per-rank state
  /// (e.g. one QueryContext per rank) is safe: a rank never runs twice
  /// concurrently.
  void ParallelFor(size_t n, size_t chunk,
                   const std::function<void(uint32_t, size_t, size_t)>& fn) {
    if (n == 0) return;
    if (chunk == 0) chunk = 1;
    auto cursor = std::make_shared<std::atomic<size_t>>(0);
    std::vector<std::function<void()>> claimers;
    claimers.reserve(size());
    for (uint32_t rank = 0; rank < size(); ++rank) {
      claimers.push_back([cursor, n, chunk, rank, &fn] {
        for (;;) {
          const size_t begin = cursor->fetch_add(chunk);
          if (begin >= n) return;
          const size_t end = begin + chunk < n ? begin + chunk : n;
          fn(rank, begin, end);
        }
      });
    }
    SubmitMany(std::move(claimers));
    Wait();
  }

  /// Hardware concurrency, at least 1.
  static uint32_t DefaultThreads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1u : static_cast<uint32_t>(hc);
  }

  /// Resolves a (num_threads, pool) option pair the way every build/query
  /// entry point does: a caller-owned pool wins; otherwise 0 means
  /// DefaultThreads(). Returns the effective thread count.
  static uint32_t ResolveThreads(uint32_t num_threads, const ThreadPool* pool) {
    if (pool != nullptr) return pool->size();
    return num_threads == 0 ? DefaultThreads() : num_threads;
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  size_t pending_ = 0;
  bool stop_ = false;
};

/// Resolves an options-style (num_threads, pool) pair into a usable pool:
/// borrows `pool` when given, spawns an owned transient pool when
/// num_threads resolves above 1, and stays null — the ForEachIndex inline
/// path — otherwise. The single spawn point for every offline builder.
class ScopedPool {
 public:
  ScopedPool(uint32_t num_threads, ThreadPool* pool)
      : threads_(ThreadPool::ResolveThreads(num_threads, pool)), pool_(pool) {
    if (pool_ == nullptr && threads_ > 1) {
      owned_ = std::make_unique<ThreadPool>(threads_);
      pool_ = owned_.get();
    }
  }

  /// The pool to run on; null means "execute inline".
  ThreadPool* get() const { return pool_; }
  /// The effective worker count (1 for inline execution).
  uint32_t threads() const { return threads_; }

 private:
  uint32_t threads_;
  ThreadPool* pool_;
  std::unique_ptr<ThreadPool> owned_;
};

/// Runs fn(i) for every i in [0, n), inline on the calling thread when
/// `pool` is null (or trivial), else chunked across the pool. The offline
/// index builders use this so that their 1-thread path is genuinely
/// sequential while the N-thread path fans the same per-index work items
/// out; determinism is the caller's contract — fn(i) must write only
/// state owned by item i.
inline void ForEachIndex(ThreadPool* pool, size_t n, size_t chunk,
                         const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, chunk, [&fn](uint32_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace pgsim
