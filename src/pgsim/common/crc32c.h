// CRC32C (Castagnoli) — the checksum guarding every on-disk artifact: WAL
// records, snapshot sections, and whole-file footers. The Castagnoli
// polynomial (0x1EDC6F41, reflected 0x82F63B78) is the same one RocksDB,
// LevelDB, and ext4 use; a software slice-by-4 table implementation keeps it
// portable (no SSE4.2 requirement) at several GB/s — far above the fsync
// floor of the paths it protects.

#pragma once

#include <cstddef>
#include <cstdint>

namespace pgsim {

/// Extends `crc` (a previous Crc32c result, or 0 for a fresh stream) with
/// `n` bytes at `data`. Crc32c(data) == ExtendCrc32c(0, data, n).
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

}  // namespace pgsim
