// Lightweight Status / Result error-handling primitives (RocksDB/Arrow idiom).
//
// pgsim avoids exceptions on all library paths. Fallible operations return
// either a `Status` (no payload) or a `Result<T>` (payload or error). Both are
// cheap to move and carry a code plus a human-readable message.

#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pgsim {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< Caller passed something malformed.
  kNotFound,         ///< Lookup target does not exist.
  kOutOfRange,       ///< Value or size exceeds a configured limit.
  kResourceExhausted,///< A cap (embeddings, cuts, worlds...) was hit.
  kFailedPrecondition,///< Object not in the required state.
  kInternal,         ///< Invariant violation inside the library.
  kUnimplemented,    ///< Feature intentionally not supported.
  kDataLoss,         ///< On-disk data is torn, truncated, or corrupted.
  kDeadlineExceeded, ///< The operation ran past its caller-supplied deadline.
  kUnavailable,      ///< Transient overload: the caller should retry later.
};

/// Returns a short stable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail but carries no payload.
///
/// Typical use:
/// \code
///   Status s = builder.AddEdge(u, v, label);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// The human-readable message (empty when ok()).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result of an operation returning a `T` on success or a `Status` on error.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an errored
/// Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a success value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is forbidden.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() &&
           "Result constructed from OK status");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status; Status::OK() if a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// Borrow the value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  /// Move the value out. Requires ok().
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  /// Borrow the value, or `fallback` on error.
  const T& value_or(const T& fallback) const& {
    return ok() ? std::get<T>(value_) : fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define PGSIM_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::pgsim::Status _pgsim_s = (expr);            \
    if (!_pgsim_s.ok()) return _pgsim_s;          \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success assigns
/// the value to `lhs` (which may include a declaration).
#define PGSIM_ASSIGN_OR_RETURN(lhs, rexpr)        \
  PGSIM_ASSIGN_OR_RETURN_IMPL_(                   \
      PGSIM_CONCAT_(_pgsim_result_, __LINE__), lhs, rexpr)

#define PGSIM_CONCAT_INNER_(a, b) a##b
#define PGSIM_CONCAT_(a, b) PGSIM_CONCAT_INNER_(a, b)
#define PGSIM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace pgsim
