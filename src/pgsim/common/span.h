// Minimal contiguous read-only view, the C++17 stand-in for std::span.
//
// Graph::Neighbors returns one of these over the flat CSR adjacency array:
// two words, trivially copyable, no ownership. Only the read-only surface
// the codebase needs is provided.

#pragma once

#include <cstddef>

namespace pgsim {

/// Non-owning view of `size` consecutive `T`s starting at `data`.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}

  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }
  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T& front() const { return data_[0]; }
  constexpr const T& back() const { return data_[size_ - 1]; }

  /// The view [offset, offset+count), clamped to the span's bounds; count
  /// defaults to "rest of the span".
  constexpr Span subspan(size_t offset, size_t count = size_t(-1)) const {
    if (offset > size_) offset = size_;
    const size_t rest = size_ - offset;
    return Span(data_ + offset, count < rest ? count : rest);
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pgsim
