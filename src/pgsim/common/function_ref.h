// Non-owning callable reference, the C++17 stand-in for std::function_ref.
//
// The VF2 hot path invokes its per-embedding callback millions of times per
// query; std::function costs a potential heap allocation at construction and
// an indirect call that the optimizer cannot see through. FunctionRef is two
// words (object pointer + thunk), never allocates, and lets a lambda-typed
// callback inline into the matcher loop when the compiler instantiates the
// templated core. The referenced callable must outlive the FunctionRef —
// callers pass short-lived lambdas down the stack, never store these.

#pragma once

#include <type_traits>
#include <utility>

namespace pgsim {

template <typename Signature>
class FunctionRef;

/// Lightweight view of any callable with signature R(Args...).
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        thunk_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return thunk_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*thunk_)(void*, Args...);
};

}  // namespace pgsim
