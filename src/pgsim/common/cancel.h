// Cooperative cancellation flag shared between a query's pipeline tasks and
// whoever enforces its deadline (the serving core's deadline thread, a test
// harness, a caller's explicit cancel).
//
// Cancellation points inside the pipeline — FrontStagesImpl stage
// boundaries, the stage-2 pruning loop, every draw of the Karp-Luby sampling
// loop — poll the flag with one relaxed atomic load and unwind
// cooperatively: the query either reports kDeadlineExceeded or, when
// degraded answers are allowed, returns the anytime estimate built from the
// work already done.
//
// The flag is monotonic (never un-cancelled), so relaxed loads are safe: a
// late observation only delays the stop by one polling granule; it can never
// resurrect a cancelled query.

#pragma once

#include <atomic>

namespace pgsim {

class CancelState {
 public:
  CancelState() = default;
  CancelState(const CancelState&) = delete;
  CancelState& operator=(const CancelState&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// One relaxed load — cheap enough for per-draw sampling-loop checks.
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace pgsim
