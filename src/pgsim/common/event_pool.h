// Contiguous pool of fixed-width bitset rows.
//
// The verification hot path (query/verifier.cc) collects hundreds of
// embedding-event edge sets per candidate. Holding them as
// std::vector<EdgeBitset> costs one heap allocation per event and scatters
// the words across the heap; an EventSetPool stores every row back to back
// in one flat word array, so a candidate's whole event list is a single
// allocation that is reused for the next candidate (Reset keeps capacity).
// Rows are raw uint64 word spans; the static helpers provide the set algebra
// the Karp-Luby sampler needs without materializing EdgeBitsets.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgsim {

/// A growable pool of equal-width bitsets in one contiguous word array.
class EventSetPool {
 public:
  /// Empties the pool and fixes the per-row width to cover `num_bits`
  /// indices. Keeps the underlying word storage for reuse.
  void Reset(size_t num_bits) {
    num_bits_ = num_bits;
    words_per_row_ = (num_bits + 63) / 64;
    size_ = 0;
  }

  /// Number of rows currently in the pool.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Addressable indices per row.
  size_t num_bits() const { return num_bits_; }
  /// 64-bit words per row.
  size_t words_per_row() const { return words_per_row_; }

  /// Appends a zeroed row and returns its index.
  size_t AddRow() {
    const size_t needed = (size_ + 1) * words_per_row_;
    if (words_.size() < needed) words_.resize(needed, 0);
    uint64_t* row = words_.data() + size_ * words_per_row_;
    std::fill(row, row + words_per_row_, 0);
    return size_++;
  }

  /// Drops the most recently added row (e.g. a duplicate).
  void PopRow() { --size_; }

  /// Truncates to the first `new_size` rows.
  void Truncate(size_t new_size) { size_ = new_size; }

  /// Overwrites row `dst` with the contents of row `src` (compaction).
  void CopyRow(size_t dst, size_t src) {
    if (dst == src) return;
    std::copy(Row(src), Row(src) + words_per_row_, Row(dst));
  }

  uint64_t* Row(size_t i) { return words_.data() + i * words_per_row_; }
  const uint64_t* Row(size_t i) const {
    return words_.data() + i * words_per_row_;
  }

  void SetBit(size_t row, size_t bit) {
    Row(row)[bit >> 6] |= (1ULL << (bit & 63));
  }
  bool TestBit(size_t row, size_t bit) const {
    return (Row(row)[bit >> 6] >> (bit & 63)) & 1ULL;
  }

  /// Population count of row `i`.
  size_t CountRow(size_t i) const {
    const uint64_t* row = Row(i);
    size_t n = 0;
    for (size_t w = 0; w < words_per_row_; ++w) {
      n += static_cast<size_t>(__builtin_popcountll(row[w]));
    }
    return n;
  }

  /// True iff every bit of `sub` is also set in `sup` (n-word spans).
  static bool ContainsAll(const uint64_t* sup, const uint64_t* sub, size_t n) {
    for (size_t w = 0; w < n; ++w) {
      if ((sub[w] & ~sup[w]) != 0) return false;
    }
    return true;
  }

  /// True iff the two n-word spans are bitwise equal.
  static bool Equal(const uint64_t* a, const uint64_t* b, size_t n) {
    for (size_t w = 0; w < n; ++w) {
      if (a[w] != b[w]) return false;
    }
    return true;
  }

  /// FNV-style hash of an n-word span (matches EdgeBitset::Hash).
  static uint64_t Hash(const uint64_t* row, size_t n) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t w = 0; w < n; ++w) {
      h ^= row[w];
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  /// Allocated word capacity — exposed so tests can pin "steady-state reuse
  /// performs no pool growth".
  size_t word_capacity() const { return words_.capacity(); }

 private:
  size_t num_bits_ = 0;
  size_t words_per_row_ = 0;
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Open-addressing dedup table over an EventSetPool's rows (slot value =
/// row index + 1, 0 = empty; doubles at 75% load). Shared by the verifier's
/// event collector and the VF2 matcher's edge-set dedup — one definition of
/// the probe/grow logic instead of two drifting copies.
class EventRowDedup {
 public:
  /// Empties the table, sized for `expected` rows (>= 64 slots, power of
  /// two). Right-sizes in both directions — shrinking reuses the vector's
  /// capacity, so a one-off huge enumeration does not inflate every later
  /// reset's clear cost.
  void Reset(size_t expected) {
    size_t want = 64;
    while (want < expected * 2) want <<= 1;
    if (slots_.size() == want) {
      std::fill(slots_.begin(), slots_.end(), 0);
    } else {
      slots_.assign(want, 0);
    }
  }

  /// Registers the pool's last row; returns false (and pops it) when an
  /// equal row is already registered.
  bool InsertLastRow(EventSetPool* pool) {
    const size_t row = pool->size() - 1;
    const size_t wpr = pool->words_per_row();
    if ((row + 1) * 4 > slots_.size() * 3) Grow(*pool, row);
    const size_t mask = slots_.size() - 1;
    const uint64_t* words = pool->Row(row);
    size_t pos = EventSetPool::Hash(words, wpr) & mask;
    while (slots_[pos] != 0) {
      const size_t other = slots_[pos] - 1;
      if (EventSetPool::Equal(pool->Row(other), words, wpr)) {
        pool->PopRow();
        return false;
      }
      pos = (pos + 1) & mask;
    }
    slots_[pos] = static_cast<uint32_t>(row) + 1;
    return true;
  }

  /// Reserved bytes (steady-state growth pins).
  size_t CapacityBytes() const { return slots_.capacity() * sizeof(uint32_t); }

 private:
  /// Doubles the table and rehashes the `registered` first rows — NOT the
  /// in-flight last row InsertLastRow is about to probe for (rehashing it
  /// would make the probe find the row itself and drop it as a duplicate).
  void Grow(const EventSetPool& pool, size_t registered) {
    const size_t new_size = slots_.size() * 2;
    slots_.assign(new_size, 0);
    const size_t mask = new_size - 1;
    const size_t wpr = pool.words_per_row();
    for (size_t r = 0; r < registered; ++r) {
      size_t pos = EventSetPool::Hash(pool.Row(r), wpr) & mask;
      while (slots_[pos] != 0) pos = (pos + 1) & mask;
      slots_[pos] = static_cast<uint32_t>(r) + 1;
    }
  }

  std::vector<uint32_t> slots_;
};

}  // namespace pgsim
