// Wall-clock timing helper used by query statistics and the benchmark
// harnesses.

#pragma once

#include <chrono>

namespace pgsim {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  /// Starts (or restarts) the stopwatch.
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pgsim
