#include "pgsim/common/status.h"

namespace pgsim {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pgsim
