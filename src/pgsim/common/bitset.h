// Dynamic fixed-capacity bitset used for edge subsets (possible worlds,
// embeddings, cuts). Graphs in pgsim have a few hundred edges at most, so a
// small inline vector of 64-bit words with set-algebra operations is the
// workhorse representation for "which edges are present".

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgsim {

/// A set of edge (or generic) indices backed by packed 64-bit words.
class EdgeBitset {
 public:
  EdgeBitset() = default;

  /// Creates an empty set with capacity for indices [0, size).
  explicit EdgeBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Number of addressable indices (not the population count).
  size_t size() const { return size_; }

  /// Inserts index `i`.
  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  /// Removes index `i`.
  void Reset(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Sets index `i` to `value`.
  void Assign(size_t i, bool value) { value ? Set(i) : Reset(i); }

  /// Membership test.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Removes all indices.
  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Inserts every index in [0, size()) — the "all candidates alive" start
  /// state of the columnar count-filter sweep. Tail bits beyond size() stay
  /// zero so Count()/ToVector() remain exact.
  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    const size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() = (1ULL << tail) - 1;
    }
  }

  /// Re-initializes to an empty set of capacity `size`, reusing the existing
  /// word storage (the scratch-buffer idiom of the verification hot path).
  void ResetTo(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  /// Replaces the contents with the first ceil(nbits/64) words of `words`,
  /// reusing storage. The caller guarantees no bit at index >= nbits is set.
  void AssignWords(const uint64_t* words, size_t nbits) {
    size_ = nbits;
    words_.assign(words, words + (nbits + 63) / 64);
  }

  /// Raw packed words (bit i of the set is bit i%64 of words()[i/64]).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Intersects word `wi` with `mask` — the columnar filter sweep clears a
  /// whole word's failing bits in one store instead of per-bit Reset calls.
  void AndWordAt(size_t wi, uint64_t mask) { words_[wi] &= mask; }

  /// Population count.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// True iff no index is set.
  bool Empty() const {
    for (uint64_t w : words_) {
      if (w) return false;
    }
    return true;
  }

  /// True iff every index in `other` is also in *this (superset test).
  bool ContainsAll(const EdgeBitset& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((other.words_[i] & ~words_[i]) != 0) return false;
    }
    return true;
  }

  /// True iff *this and `other` share at least one index.
  bool Intersects(const EdgeBitset& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  /// True iff *this and `other` share no index.
  bool DisjointWith(const EdgeBitset& other) const {
    return !Intersects(other);
  }

  /// In-place union with a raw word span (first `nwords` words only).
  void OrWords(const uint64_t* words, size_t nwords) {
    for (size_t i = 0; i < nwords; ++i) words_[i] |= words[i];
  }

  /// In-place union.
  EdgeBitset& operator|=(const EdgeBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// In-place intersection.
  EdgeBitset& operator&=(const EdgeBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// In-place difference (removes `other`'s indices).
  EdgeBitset& Subtract(const EdgeBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  bool operator==(const EdgeBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Lists the set indices in increasing order.
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        out.push_back(static_cast<uint32_t>(wi * 64 + bit));
        w &= w - 1;
      }
    }
    return out;
  }

  /// Builds a set of capacity `size` from explicit indices.
  static EdgeBitset FromIndices(size_t size,
                                const std::vector<uint32_t>& indices) {
    EdgeBitset b(size);
    for (uint32_t i : indices) b.Set(i);
    return b;
  }

  /// FNV-style hash for use in unordered containers.
  size_t Hash() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Hash functor so EdgeBitset can key unordered containers.
struct EdgeBitsetHash {
  size_t operator()(const EdgeBitset& b) const { return b.Hash(); }
};

}  // namespace pgsim
