// Byte-append fingerprint builder.
//
// Serializes a sequence of fixed-width scalars into a byte string whose
// equality is exactly field-wise equality of the appended values — the
// cache-key primitive for "same options" tests (see QueryOptionsFingerprint
// in query/processor.h). Every field is appended at full width (no varint,
// no hashing), so distinct option vectors can never collide; keys stay tens
// of bytes, which an unordered_map hashes once anyway.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace pgsim {

/// Accumulates fixed-width fields into an equality-exact byte string.
class Fingerprint {
 public:
  void AddU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void AddU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void AddBool(bool v) { bytes_.push_back(v ? '\1' : '\0'); }
  /// Doubles are fingerprinted by bit pattern: -0.0 != +0.0 and NaNs with
  /// different payloads differ — stricter than operator==, never wrong for
  /// a cache key (a spurious mismatch only costs a recompute).
  void AddDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    AddU64(bits);
  }
  /// Length-prefixed so variable-size fields can't alias across boundaries.
  void AddBytes(const std::string& s) {
    AddU64(s.size());
    bytes_.append(s);
  }

  const std::string& bytes() const { return bytes_; }

 private:
  void AppendRaw(const void* p, size_t n) {
    bytes_.append(static_cast<const char*>(p), n);
  }

  std::string bytes_;
};

}  // namespace pgsim
