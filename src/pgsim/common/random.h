// Deterministic pseudo-random number generation.
//
// Every randomized component in pgsim (dataset generator, the Algorithm 3 /
// Algorithm 5 Monte-Carlo samplers, the Algorithm 2 randomized rounding) takes
// an explicit seed so that tests and benchmarks are reproducible run-to-run.
// The engine is xoshiro256**, seeded via splitmix64.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pgsim {

/// Fast, high-quality, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial: true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Box–Muller).
  double Gaussian();

  /// Samples an index i with probability weights[i] / sum(weights).
  /// Weights must be non-negative with positive sum; returns weights.size()-1
  /// on floating-point underflow of the tail.
  size_t Discrete(const std::vector<double>& weights);

  /// A Beta(alpha, beta) variate via the ratio-of-Gammas method.
  double Beta(double alpha, double beta);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for parallel-safe sub-streams).
  Rng Fork();

 private:
  double Gamma(double shape);

  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pgsim
