#include "pgsim/graph/mcs.h"

#include <algorithm>
#include <vector>

namespace pgsim {

namespace {

class McsSolver {
 public:
  McsSolver(const Graph& q, const Graph& g, uint32_t give_up_at)
      : q_(q), g_(g), give_up_at_(give_up_at) {
    BuildOrder();
    map_.assign(q_.NumVertices(), kInvalidVertex);
    used_.assign(g_.NumVertices(), false);
    // undecided_[pos] = q edges with at least one endpoint at position >= pos
    // — the optimistic number of edges still winnable at that depth.
    undecided_.assign(order_.size() + 1, 0);
    std::vector<uint32_t> position(q_.NumVertices(), 0);
    for (uint32_t pos = 0; pos < order_.size(); ++pos) {
      position[order_[pos]] = pos;
    }
    for (EdgeId e = 0; e < q_.NumEdges(); ++e) {
      const Edge& edge = q_.GetEdge(e);
      const uint32_t later = std::max(position[edge.u], position[edge.v]);
      // Edge e is decided exactly when the later endpoint is placed.
      for (uint32_t pos = 0; pos <= later; ++pos) ++undecided_[pos];
    }
  }

  uint32_t Solve() {
    Recurse(0, 0);
    return best_;
  }

 private:
  void BuildOrder() {
    // BFS order from the max-degree vertex maximizes early edge decisions.
    const uint32_t n = q_.NumVertices();
    std::vector<bool> placed(n, false);
    order_.reserve(n);
    while (order_.size() < n) {
      VertexId seed = kInvalidVertex;
      for (VertexId v = 0; v < n; ++v) {
        if (!placed[v] &&
            (seed == kInvalidVertex || q_.Degree(v) > q_.Degree(seed))) {
          seed = v;
        }
      }
      placed[seed] = true;
      order_.push_back(seed);
      for (size_t head = order_.size() - 1; head < order_.size(); ++head) {
        for (const AdjEntry& a : q_.Neighbors(order_[head])) {
          if (!placed[a.neighbor]) {
            placed[a.neighbor] = true;
            order_.push_back(a.neighbor);
          }
        }
      }
    }
  }

  bool Done() const { return give_up_at_ != 0 && best_ >= give_up_at_; }

  // Number of q edges gained by mapping q vertex `qv` to g vertex `gv`
  // given the current partial map. Returns -1 on any label clash making the
  // assignment outright invalid (vertex label mismatch handled by caller).
  int GainedEdges(VertexId qv, VertexId gv) const {
    int gained = 0;
    for (const AdjEntry& a : q_.Neighbors(qv)) {
      const VertexId img = map_[a.neighbor];
      if (img == kInvalidVertex) continue;
      const auto ge = g_.FindEdge(std::min(gv, img), std::max(gv, img));
      if (ge.has_value() && g_.EdgeLabel(*ge) == q_.EdgeLabel(a.edge)) {
        ++gained;
      }
    }
    return gained;
  }

  void Recurse(uint32_t pos, uint32_t score) {
    if (Done()) return;
    if (pos == order_.size()) {
      best_ = std::max(best_, score);
      return;
    }
    if (score + undecided_[pos] <= best_) return;  // bound: cannot improve

    const VertexId qv = order_[pos];
    const LabelId ql = q_.VertexLabel(qv);
    for (VertexId gv = 0; gv < g_.NumVertices(); ++gv) {
      if (used_[gv] || g_.VertexLabel(gv) != ql) continue;
      const int gained = GainedEdges(qv, gv);
      map_[qv] = gv;
      used_[gv] = true;
      Recurse(pos + 1, score + static_cast<uint32_t>(gained));
      used_[gv] = false;
      map_[qv] = kInvalidVertex;
      if (Done()) return;
    }
    // Leave qv unmapped: all its incident edges are lost.
    Recurse(pos + 1, score);
  }

  const Graph& q_;
  const Graph& g_;
  const uint32_t give_up_at_;
  std::vector<VertexId> order_;
  std::vector<VertexId> map_;
  std::vector<bool> used_;
  std::vector<uint32_t> undecided_;
  uint32_t best_ = 0;
};

}  // namespace

uint32_t MaxCommonSubgraphEdges(const Graph& q, const Graph& g,
                                uint32_t give_up_at) {
  if (q.NumEdges() == 0) return 0;
  McsSolver solver(q, g, give_up_at);
  const uint32_t result = solver.Solve();
  return give_up_at != 0 ? std::min(result, give_up_at) : result;
}

uint32_t SubgraphDistance(const Graph& q, const Graph& g) {
  return q.NumEdges() - MaxCommonSubgraphEdges(q, g);
}

bool IsSubgraphSimilar(const Graph& q, const Graph& g, uint32_t delta) {
  if (delta >= q.NumEdges()) return true;  // even the empty subgraph suffices
  const uint32_t needed = q.NumEdges() - delta;
  return MaxCommonSubgraphEdges(q, g, needed) >= needed;
}

}  // namespace pgsim
