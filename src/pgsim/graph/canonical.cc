#include "pgsim/graph/canonical.h"

#include <algorithm>
#include <map>

namespace pgsim {

namespace {

// Iterated color refinement: start from vertex labels, refine by sorted
// multisets of (edge label, neighbor color) until stable. Returns a color id
// per vertex where colors are ordered by their first-seen signature, which
// makes the partition itself canonical.
std::vector<uint32_t> RefineColors(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint64_t> color(n);
  for (VertexId v = 0; v < n; ++v) color[v] = g.VertexLabel(v);

  for (uint32_t round = 0; round < n; ++round) {
    // Signature: (own color, sorted neighbor (edge label, color) pairs).
    std::vector<std::vector<uint64_t>> signature(n);
    for (VertexId v = 0; v < n; ++v) {
      auto& sig = signature[v];
      sig.push_back(color[v]);
      std::vector<uint64_t> nbrs;
      for (const AdjEntry& a : g.Neighbors(v)) {
        nbrs.push_back((uint64_t{g.EdgeLabel(a.edge)} << 32) |
                       color[a.neighbor]);
      }
      std::sort(nbrs.begin(), nbrs.end());
      sig.insert(sig.end(), nbrs.begin(), nbrs.end());
    }
    // Map distinct signatures to dense ids in sorted order.
    std::map<std::vector<uint64_t>, uint64_t> ids;
    for (VertexId v = 0; v < n; ++v) ids.emplace(signature[v], 0);
    uint64_t next = 0;
    for (auto& [sig, id] : ids) id = next++;
    bool changed = false;
    for (VertexId v = 0; v < n; ++v) {
      const uint64_t fresh = ids[signature[v]];
      if (fresh != color[v]) changed = true;
      color[v] = fresh;
    }
    if (!changed) break;
  }
  std::vector<uint32_t> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = static_cast<uint32_t>(color[v]);
  return out;
}

// Serialization of g under the ordering `order` (canonical pos -> vertex):
// vertex labels then the upper adjacency triangle with edge labels + 1
// (0 = no edge).
std::string Serialize(const Graph& g, const std::vector<VertexId>& order) {
  std::string out;
  const uint32_t n = g.NumVertices();
  out.reserve(n * 4 + n * n * 2);
  auto append32 = [&out](uint32_t x) {
    out.push_back(static_cast<char>(x >> 24));
    out.push_back(static_cast<char>(x >> 16));
    out.push_back(static_cast<char>(x >> 8));
    out.push_back(static_cast<char>(x));
  };
  for (uint32_t i = 0; i < n; ++i) append32(g.VertexLabel(order[i]));
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      const VertexId u = std::min(order[i], order[j]);
      const VertexId v = std::max(order[i], order[j]);
      const auto e = g.FindEdge(u, v);
      append32(e.has_value() ? g.EdgeLabel(*e) + 1 : 0);
    }
  }
  return out;
}

class CanonicalSearch {
 public:
  CanonicalSearch(const Graph& g, uint64_t max_nodes)
      : g_(g), max_nodes_(max_nodes), colors_(RefineColors(g)) {}

  Result<std::vector<VertexId>> Run() {
    const uint32_t n = g_.NumVertices();
    if (n == 0) return std::vector<VertexId>{};
    used_.assign(n, false);
    order_.clear();
    best_order_.clear();
    Recurse();
    if (exhausted_) {
      return Status::ResourceExhausted("CanonicalCode: node budget exceeded");
    }
    return best_order_;
  }

 private:
  // Prefix comparison of the serialization of `order_` against the best so
  // far: -1 smaller (new best prefix), 0 equal-so-far, +1 larger (prune).
  // For simplicity we compare full serializations at the leaves and rely on
  // the color-class ordering for pruning internal nodes.
  void Recurse() {
    if (exhausted_) return;
    if (++nodes_ > max_nodes_) {
      exhausted_ = true;
      return;
    }
    const uint32_t n = g_.NumVertices();
    if (order_.size() == n) {
      std::string code = Serialize(g_, order_);
      if (best_order_.empty() || code < best_code_) {
        best_code_ = std::move(code);
        best_order_ = order_;
      }
      return;
    }
    // Candidates: unused vertices of the lexicographically smallest
    // remaining color class (the canonical ordering must list color classes
    // in class order, which cuts the search to products of class factorials).
    uint32_t best_color = UINT32_MAX;
    for (VertexId v = 0; v < n; ++v) {
      if (!used_[v]) best_color = std::min(best_color, colors_[v]);
    }
    for (VertexId v = 0; v < n; ++v) {
      if (used_[v] || colors_[v] != best_color) continue;
      used_[v] = true;
      order_.push_back(v);
      Recurse();
      order_.pop_back();
      used_[v] = false;
      if (exhausted_) return;
    }
  }

  const Graph& g_;
  const uint64_t max_nodes_;
  std::vector<uint32_t> colors_;
  std::vector<bool> used_;
  std::vector<VertexId> order_;
  std::string best_code_;
  std::vector<VertexId> best_order_;
  uint64_t nodes_ = 0;
  bool exhausted_ = false;
};

}  // namespace

Result<std::vector<VertexId>> CanonicalOrder(const Graph& g,
                                             const CanonicalOptions& options) {
  CanonicalSearch search(g, options.max_nodes);
  return search.Run();
}

Result<std::string> CanonicalCode(const Graph& g,
                                  const CanonicalOptions& options) {
  PGSIM_ASSIGN_OR_RETURN(const std::vector<VertexId> order,
                         CanonicalOrder(g, options));
  return Serialize(g, order);
}

std::string GraphExactKey(const Graph& g) {
  std::string key;
  key.reserve(8 + 4 * g.NumVertices() + 12 * g.NumEdges());
  const auto append_u32 = [&key](uint32_t v) {
    key.push_back(static_cast<char>(v));
    key.push_back(static_cast<char>(v >> 8));
    key.push_back(static_cast<char>(v >> 16));
    key.push_back(static_cast<char>(v >> 24));
  };
  append_u32(g.NumVertices());
  append_u32(g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) append_u32(g.VertexLabel(v));
  for (const Edge& e : g.Edges()) {
    append_u32(e.u);
    append_u32(e.v);
    append_u32(e.label);
  }
  return key;
}

Result<Graph> Canonicalize(const Graph& g, const CanonicalOptions& options) {
  PGSIM_ASSIGN_OR_RETURN(const std::vector<VertexId> order,
                         CanonicalOrder(g, options));
  std::vector<VertexId> position(g.NumVertices());
  for (uint32_t pos = 0; pos < order.size(); ++pos) position[order[pos]] = pos;
  GraphBuilder builder;
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    builder.AddVertex(g.VertexLabel(order[pos]));
  }
  // Edges sorted by (new u, new v) for a fully deterministic layout.
  std::vector<Edge> edges = g.Edges();
  for (Edge& e : edges) {
    VertexId u = position[e.u], v = position[e.v];
    e.u = std::min(u, v);
    e.v = std::max(u, v);
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  for (const Edge& e : edges) {
    auto r = builder.AddEdge(e.u, e.v, e.label);
    (void)r;
  }
  return builder.Build();
}

}  // namespace pgsim
