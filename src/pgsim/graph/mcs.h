// Maximum common subgraph and subgraph distance (paper Definitions 7–8).
//
// dis(q, g) = |E(q)| - |mcs(q, g)| where mcs is the largest edge subgraph of
// q that is subgraph isomorphic to g. `q ⊆sim g` (subgraph similar) iff
// dis(q, g) <= delta.
//
// The solver is a branch-and-bound over injective partial vertex mappings of
// q into g: each q vertex is either mapped to a label-compatible unused g
// vertex or left unmapped; the score is the number of q edges whose mapped
// endpoints are joined in g by an equal-labeled edge. An optimistic bound
// (score so far + undecided edges) prunes the search.

#pragma once

#include <cstdint>

#include "pgsim/graph/graph.h"

namespace pgsim {

/// Size (edge count) of the maximum common subgraph mcs(q, g).
/// `give_up_at` short-circuits: once a common subgraph of that many edges is
/// found the search stops and returns `give_up_at` (0 = run to optimality).
uint32_t MaxCommonSubgraphEdges(const Graph& q, const Graph& g,
                                uint32_t give_up_at = 0);

/// Subgraph distance dis(q, g) = |E(q)| - |mcs(q, g)| (Definition 8).
uint32_t SubgraphDistance(const Graph& q, const Graph& g);

/// True iff dis(q, g) <= delta, i.e. q is subgraph similar to g.
/// Cheaper than SubgraphDistance: stops as soon as |E(q)| - delta common
/// edges are found.
bool IsSubgraphSimilar(const Graph& q, const Graph& g, uint32_t delta);

}  // namespace pgsim
