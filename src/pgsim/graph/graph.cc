#include "pgsim/graph/graph.h"

#include <algorithm>
#include <sstream>

namespace pgsim {

std::optional<EdgeId> Graph::FindEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return std::nullopt;
  const Span<AdjEntry> adj = Neighbors(u);
  auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const AdjEntry& a, VertexId target) { return a.neighbor < target; });
  if (it != adj.end() && it->neighbor == v) return it->edge;
  return std::nullopt;
}

Span<VertexId> Graph::VerticesWithLabel(LabelId l) const {
  const auto it = std::lower_bound(label_keys_.begin(), label_keys_.end(), l);
  if (it == label_keys_.end() || *it != l) return Span<VertexId>();
  const size_t k = static_cast<size_t>(it - label_keys_.begin());
  return Span<VertexId>(label_vertices_.data() + label_offsets_[k],
                        label_offsets_[k + 1] - label_offsets_[k]);
}

void Graph::BuildLabelIndex() {
  const uint32_t n = NumVertices();
  label_vertices_.resize(n);
  for (VertexId v = 0; v < n; ++v) label_vertices_[v] = v;
  // Stable ordering by (label, id): ids are distinct, so a plain sort on the
  // composite key is deterministic and leaves each bucket ascending by id.
  std::sort(label_vertices_.begin(), label_vertices_.end(),
            [&](VertexId a, VertexId b) {
              if (vertex_labels_[a] != vertex_labels_[b]) {
                return vertex_labels_[a] < vertex_labels_[b];
              }
              return a < b;
            });
  label_keys_.clear();
  label_offsets_.assign(1, 0);
  size_t i = 0;
  while (i < label_vertices_.size()) {
    const LabelId label = vertex_labels_[label_vertices_[i]];
    size_t j = i + 1;
    while (j < label_vertices_.size() &&
           vertex_labels_[label_vertices_[j]] == label) {
      ++j;
    }
    label_keys_.push_back(label);
    label_offsets_.push_back(static_cast<uint32_t>(j));
    i = j;
  }
}

bool Graph::IsConnected() const {
  uint32_t num_components = 0;
  ConnectedComponents(&num_components);
  return num_components <= 1;
}

std::vector<uint32_t> Graph::ConnectedComponents(
    uint32_t* num_components) const {
  std::vector<uint32_t> comp(NumVertices(), 0xFFFFFFFFu);
  uint32_t next = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < NumVertices(); ++s) {
    if (comp[s] != 0xFFFFFFFFu) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const AdjEntry& a : Neighbors(v)) {
        if (comp[a.neighbor] == 0xFFFFFFFFu) {
          comp[a.neighbor] = next;
          stack.push_back(a.neighbor);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  os << "Graph(" << NumVertices() << " vertices, " << NumEdges() << " edges)\n";
  for (VertexId v = 0; v < NumVertices(); ++v) {
    os << "  v" << v << " label=" << vertex_labels_[v] << "\n";
  }
  for (EdgeId e = 0; e < NumEdges(); ++e) {
    os << "  e" << e << " (" << edges_[e].u << "," << edges_[e].v
       << ") label=" << edges_[e].label << "\n";
  }
  return os.str();
}

VertexId GraphBuilder::AddVertex(LabelId label) {
  vertex_labels_.push_back(label);
  return static_cast<VertexId>(vertex_labels_.size() - 1);
}

Result<EdgeId> GraphBuilder::AddEdge(VertexId u, VertexId v, LabelId label) {
  if (u >= vertex_labels_.size() || v >= vertex_labels_.size()) {
    return Status::InvalidArgument("AddEdge: endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("AddEdge: self-loops are not allowed");
  }
  if (u > v) std::swap(u, v);
  const uint64_t key = (uint64_t{u} << 32) | v;
  if (!edge_keys_.insert(key).second) {
    return Status::InvalidArgument("AddEdge: parallel edge (" +
                                   std::to_string(u) + "," +
                                   std::to_string(v) + ")");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, label});
  return id;
}

Graph GraphBuilder::Build() {
  Graph g;
  g.vertex_labels_ = std::move(vertex_labels_);
  g.edges_ = std::move(edges_);

  // Counting sort of the 2m half-edges into the flat CSR arrays.
  const size_t n = g.vertex_labels_.size();
  g.adj_offsets_.assign(n + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.adj_offsets_[e.u + 1];
    ++g.adj_offsets_[e.v + 1];
  }
  for (size_t v = 1; v <= n; ++v) g.adj_offsets_[v] += g.adj_offsets_[v - 1];
  g.adj_entries_.resize(2 * g.edges_.size());
  std::vector<uint32_t> cursor(g.adj_offsets_.begin(),
                               g.adj_offsets_.begin() + n);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adj_entries_[cursor[e.u]++] = AdjEntry{e.v, id};
    g.adj_entries_[cursor[e.v]++] = AdjEntry{e.u, id};
  }
  for (size_t v = 0; v < n; ++v) {
    std::sort(g.adj_entries_.begin() + g.adj_offsets_[v],
              g.adj_entries_.begin() + g.adj_offsets_[v + 1],
              [](const AdjEntry& a, const AdjEntry& b) {
                return a.neighbor < b.neighbor;
              });
  }

  g.BuildLabelIndex();

  vertex_labels_.clear();
  edges_.clear();
  edge_keys_.clear();
  return g;
}

void BuildEdgeSubsetGraph(const Graph& base, const EdgeBitset& present,
                          Graph* out) {
  const size_t n = base.NumVertices();
  out->vertex_labels_.assign(base.VertexLabels().begin(),
                             base.VertexLabels().end());
  // The vertex set and labels match `base`, so the label index does too —
  // copy it (into reused storage) rather than re-sorting per world.
  out->label_keys_.assign(base.label_keys_.begin(), base.label_keys_.end());
  out->label_offsets_.assign(base.label_offsets_.begin(),
                             base.label_offsets_.end());
  out->label_vertices_.assign(base.label_vertices_.begin(),
                              base.label_vertices_.end());
  out->edges_.clear();
  for (EdgeId e = 0; e < base.NumEdges(); ++e) {
    if (present.Test(e)) out->edges_.push_back(base.GetEdge(e));
  }

  // Same counting sort as GraphBuilder::Build, into reused storage; the
  // offsets array doubles as the fill cursor and is shifted back afterwards,
  // so no temporary cursor vector is needed.
  out->adj_offsets_.assign(n + 1, 0);
  for (const Edge& e : out->edges_) {
    ++out->adj_offsets_[e.u + 1];
    ++out->adj_offsets_[e.v + 1];
  }
  for (size_t v = 1; v <= n; ++v) {
    out->adj_offsets_[v] += out->adj_offsets_[v - 1];
  }
  out->adj_entries_.resize(2 * out->edges_.size());
  for (EdgeId id = 0; id < out->edges_.size(); ++id) {
    const Edge& e = out->edges_[id];
    out->adj_entries_[out->adj_offsets_[e.u]++] = AdjEntry{e.v, id};
    out->adj_entries_[out->adj_offsets_[e.v]++] = AdjEntry{e.u, id};
  }
  // adj_offsets_[v] now holds the end of segment v; shift right to restore.
  for (size_t v = n; v > 0; --v) out->adj_offsets_[v] = out->adj_offsets_[v - 1];
  out->adj_offsets_[0] = 0;
  for (size_t v = 0; v < n; ++v) {
    std::sort(out->adj_entries_.begin() + out->adj_offsets_[v],
              out->adj_entries_.begin() + out->adj_offsets_[v + 1],
              [](const AdjEntry& a, const AdjEntry& b) {
                return a.neighbor < b.neighbor;
              });
  }
}

Graph EdgeInducedSubgraph(const Graph& g, const std::vector<EdgeId>& edge_ids,
                          std::vector<VertexId>* vertex_map) {
  std::vector<VertexId> map(g.NumVertices(), kInvalidVertex);
  GraphBuilder builder;
  for (EdgeId e : edge_ids) {
    const Edge& edge = g.GetEdge(e);
    for (VertexId endpoint : {edge.u, edge.v}) {
      if (map[endpoint] == kInvalidVertex) {
        map[endpoint] = builder.AddVertex(g.VertexLabel(endpoint));
      }
    }
  }
  for (EdgeId e : edge_ids) {
    const Edge& edge = g.GetEdge(e);
    auto r = builder.AddEdge(map[edge.u], map[edge.v], edge.label);
    (void)r;  // Duplicate ids in edge_ids would error; callers pass sets.
  }
  if (vertex_map != nullptr) *vertex_map = std::move(map);
  return builder.Build();
}

uint64_t GraphFingerprint(const Graph& g) {
  // Two rounds of Weisfeiler–Lehman-style label refinement, then an
  // order-independent combine. Invariant under isomorphism by construction.
  auto mix = [](uint64_t h, uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
    return h * 0xff51afd7ed558ccdULL;
  };
  std::vector<uint64_t> color(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    color[v] = mix(0x12345678ULL, g.VertexLabel(v));
  }
  for (int round = 0; round < 2; ++round) {
    std::vector<uint64_t> next(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      // Sum of neighbor signatures is order-independent.
      uint64_t acc = 0;
      for (const AdjEntry& a : g.Neighbors(v)) {
        acc += mix(color[a.neighbor], g.EdgeLabel(a.edge) + 1);
      }
      next[v] = mix(color[v], acc);
    }
    color.swap(next);
  }
  uint64_t h = 0xcbf29ce484222325ULL ^ (uint64_t{g.NumVertices()} << 32 |
                                        uint64_t{g.NumEdges()});
  uint64_t sum = 0, xor_acc = 0;
  for (uint64_t c : color) {
    sum += c;
    xor_acc ^= mix(0xabcdef, c);
  }
  return mix(mix(h, sum), xor_acc);
}

namespace {

// Sorts `labels` and run-length-encodes it into ascending (label, count)
// pairs, reusing `out`'s capacity.
void EncodeHistogram(std::vector<LabelId>* labels,
                     std::vector<std::pair<LabelId, uint32_t>>* out) {
  std::sort(labels->begin(), labels->end());
  out->clear();
  size_t i = 0;
  while (i < labels->size()) {
    size_t j = i + 1;
    while (j < labels->size() && (*labels)[j] == (*labels)[i]) ++j;
    out->emplace_back((*labels)[i], static_cast<uint32_t>(j - i));
    i = j;
  }
}

}  // namespace

void AccumulateVertexLabelFrequencies(const Graph& g,
                                      std::vector<uint32_t>* freq) {
  for (LabelId l : g.VertexLabels()) {
    if (l >= freq->size()) freq->resize(l + 1, 0);
    ++(*freq)[l];
  }
}

void BuildLabelHistogram(const Graph& g, LabelHistogram* out) {
  std::vector<LabelId> scratch(g.VertexLabels());
  EncodeHistogram(&scratch, &out->vertex_labels);
  scratch.clear();
  scratch.reserve(g.NumEdges());
  for (const Edge& e : g.Edges()) scratch.push_back(e.label);
  EncodeHistogram(&scratch, &out->edge_labels);
}

namespace {

bool CoversPattern(const std::vector<std::pair<LabelId, uint32_t>>& target,
                   const std::vector<std::pair<LabelId, uint32_t>>& pattern) {
  // Both sides ascend by label: one merge pass.
  size_t ti = 0;
  for (const auto& [label, count] : pattern) {
    while (ti < target.size() && target[ti].first < label) ++ti;
    if (ti == target.size() || target[ti].first != label ||
        target[ti].second < count) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool HistogramCoversPattern(const LabelHistogram& target,
                            const LabelHistogram& pattern) {
  return CoversPattern(target.vertex_labels, pattern.vertex_labels) &&
         CoversPattern(target.edge_labels, pattern.edge_labels);
}

}  // namespace pgsim
