// VF2-style subgraph isomorphism (paper Definition 5, reference [10]),
// rebuilt as a compiled matching engine.
//
// Used pervasively: feature-vs-graph containment when building the PMI,
// feature-vs-relaxed-query tests during probabilistic pruning (Section 3),
// embedding enumeration for SIP bounds (Section 4.1) and for the Algorithm 5
// sampler (Section 5).
//
// Semantics: *monomorphism* — an injective vertex mapping preserving vertex
// labels, and every pattern edge must map to a target edge with equal label
// (extra target edges are allowed; the embedding is a subgraph, not induced).
// Disconnected patterns are supported (relaxed queries can disconnect).
//
// Engine layout:
//   * A MatchPlan is compiled once per pattern (CompileMatchPlan): the
//     matching order, per-position required label / min-degree, and the
//     back-edge constraints with their pattern edge ids. Query-side callers
//     compile each relaxed query's plan once per query (shared through the
//     batch cache) and run it against every candidate, instead of rebuilding
//     the plan per (pattern, target) call.
//   * The matcher itself is iterative (explicit per-position cursors, no
//     recursion) and draws every buffer from a caller-owned Vf2Scratch:
//     map/used arrays, the reused Embedding record, and a pooled edge-set
//     dedup table (EventSetPool + open addressing). Steady-state enumeration
//     performs zero heap allocation per embedding.
//   * Target edge ids are recorded *while* back edges are checked, so
//     reporting an embedding never performs a FindEdge lookup; back-edge
//     checks themselves gallop over the smaller-degree endpoint's sorted
//     adjacency instead of binary-searching a fixed endpoint.
//   * Seed/anchorless positions iterate the target's vertex-by-label CSR
//     bucket (Graph::VerticesWithLabel) instead of all vertices. Ascending
//     id order inside a bucket preserves the reference enumeration order.
//   * Callbacks travel as FunctionRef through a templated core, so the
//     IsSubgraphIsomorphic existence check inlines its (trivial) callback.
//     The std::function signatures below are thin compatibility wrappers.
//
// Enumeration-order contract: a plan compiled with the default (max-degree)
// seed rule enumerates embeddings in exactly the order of the retained
// reference engine (EnumerateEmbeddingsReference), which offline consumers
// (feature mining's greedy disjoint counts, SIP bounds) depend on for
// bit-identical artifacts. Plans compiled with MatchPlanOptions::label_freq
// reorder component seeds rarest-label-first; that changes only the order in
// which embeddings are discovered, never the set.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/event_pool.h"
#include "pgsim/common/function_ref.h"
#include "pgsim/common/span.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"

namespace pgsim {

/// One subgraph-isomorphic image of a pattern inside a target graph.
struct Embedding {
  /// pattern vertex id -> target vertex id.
  std::vector<VertexId> vertex_map;
  /// pattern edge id -> target edge id.
  std::vector<EdgeId> edge_map;
};

/// Per-pattern-vertex candidate sets, precomputed from neighborhood
/// signatures (graph/signature.h) for one (pattern, target) pair. Domains
/// are *sound* restrictions: every vertex removed from a label bucket is
/// provably unable to host its pattern vertex in any monomorphism, so
/// substituting the domain for the bucket changes neither the embedding set
/// nor the enumeration order (segments keep the bucket's ascending-id
/// order). Storage is caller-owned and reused across pairs (Vf2Scratch).
struct CandidateDomains {
  uint32_t num_pattern_vertices = 0;
  uint32_t num_target_vertices = 0;
  /// CSR over pattern vertices: vertex pv's domain is
  /// verts[offsets[pv] .. offsets[pv+1]), ascending target ids.
  std::vector<uint32_t> offsets;
  std::vector<VertexId> verts;
  /// Pattern-major membership mask, member[pv * num_target_vertices + tv]:
  /// one byte probe for the anchored (adjacency-driven) positions.
  std::vector<uint8_t> member;

  size_t CapacityBytes() const {
    return offsets.capacity() * sizeof(uint32_t) +
           verts.capacity() * sizeof(VertexId) + member.capacity();
  }
};

/// Enumeration knobs.
struct Vf2Options {
  /// Stop after this many *distinct edge-set* embeddings (0 = no cap).
  size_t max_embeddings = 0;
  /// If true (paper semantics), embeddings that cover the same target edge
  /// set are reported once: Definition 5 defines the embedding as the
  /// subgraph (V3, E3) of g, so pattern automorphisms do not multiply counts.
  bool dedup_by_edge_set = true;
  /// Optional signature-derived candidate domains for this (pattern, target)
  /// pair: anchorless positions iterate the pattern vertex's domain segment
  /// instead of the full label bucket, and anchored positions reject
  /// non-members with one byte probe. Must have been built for exactly this
  /// pair (num_pattern_vertices/num_target_vertices are asserted). The
  /// embedding set and enumeration order are unchanged.
  const CandidateDomains* domains = nullptr;
};

/// One compiled back-edge constraint of a match position: the candidate must
/// be adjacent to the image of pattern vertex `other` through a target edge
/// labeled `label`; the edge found is recorded as the image of pattern edge
/// `pattern_edge` (each pattern edge appears in exactly one back list — at
/// the position where its later endpoint is placed — so a full assignment
/// fills the whole edge map with no lookups at report time).
struct PlanBackEdge {
  VertexId other;
  LabelId label;
  EdgeId pattern_edge;
};

/// Plan compilation knobs.
struct MatchPlanOptions {
  /// Optional label frequencies of the intended target population, indexed
  /// by LabelId (ids >= size() have frequency 0). When non-null, each
  /// component's seed — and thereby the component order — is chosen
  /// rarest-label-first, with max-degree then smallest-id tie-breaks, so the
  /// matcher's top-level branching starts at the thinnest label bucket.
  /// When null, the legacy max-degree/smallest-id rule applies and the plan
  /// reproduces the reference engine's enumeration order byte for byte.
  const std::vector<uint32_t>* label_freq = nullptr;
};

/// A pattern's matching program, compiled once and reusable against any
/// number of targets (immutable after CompileMatchPlan; safe to share across
/// threads). Matching order is BFS within each component, so every position
/// after its component's seed has at least one previously matched neighbor.
struct MatchPlan {
  uint32_t num_pattern_vertices = 0;
  uint32_t num_pattern_edges = 0;
  /// position -> pattern vertex.
  std::vector<VertexId> order;
  /// position -> required target vertex label.
  std::vector<LabelId> pos_label;
  /// position -> pattern degree (candidates of smaller degree cannot match).
  std::vector<uint32_t> min_degree;
  /// position -> pattern neighbors placed *later* in the order. A candidate
  /// must still have that many unused target neighbors, or the subtree
  /// cannot complete (look-ahead prune: skips only fruitless branches, so
  /// the embedding sequence is unchanged).
  std::vector<uint32_t> min_forward;
  /// Label-aware refinement of min_forward: the later-placed neighbors of a
  /// position, grouped by (neighbor vertex label, connecting edge label)
  /// with multiplicities. A candidate needs `need` distinct unused
  /// neighbors per group (adjacency entries are distinct vertices, so
  /// groups partition them — per-group counting is sound and strictly
  /// stronger than the aggregate). CSR over positions via fwd_offsets.
  struct ForwardNeed {
    LabelId vertex_label;
    LabelId edge_label;
    uint32_t need;
  };
  std::vector<ForwardNeed> fwd;
  std::vector<uint32_t> fwd_offsets;
  /// Back-edge CSR: position p's constraints are
  /// back[back_offsets[p] .. back_offsets[p+1]); the first entry of a
  /// non-empty segment is the anchor whose image's adjacency supplies the
  /// candidate set. Empty segment = seed/anchorless position (candidates
  /// come from the target's label bucket).
  std::vector<PlanBackEdge> back;
  std::vector<uint32_t> back_offsets;
};

/// Compiles the matching plan of `pattern`. Deterministic: equal patterns
/// and options yield identical plans.
MatchPlan CompileMatchPlan(const Graph& pattern,
                           const MatchPlanOptions& options = MatchPlanOptions());

/// Reusable per-thread matcher scratch: the explicit-stack state, the reused
/// Embedding record, and the pooled edge-set dedup table. Vector/pool
/// capacities survive across runs, so a steady-state enumeration loop
/// performs no heap allocation. Not concurrency-safe: one per thread.
struct Vf2Scratch {
  /// pattern vertex -> target vertex (kInvalidVertex when unmapped).
  std::vector<VertexId> map;
  /// target vertex occupancy.
  std::vector<uint8_t> used;
  /// Per-position cursor into the candidate domain.
  std::vector<uint32_t> cursor;
  /// Per-position candidate domain, computed once when the position is
  /// entered (anchored: the anchor image's adjacency span; anchorless: the
  /// target's label bucket) and reused across every backtrack return —
  /// the domain depends only on earlier placements, which are fixed while
  /// the position is active.
  std::vector<const AdjEntry*> dom_adj;
  std::vector<const VertexId*> dom_bucket;
  std::vector<uint32_t> dom_size;
  /// Residual per-group needs for the label-aware look-ahead.
  std::vector<uint32_t> fwd_need;
  /// The report record handed to callbacks (valid only during the call).
  Embedding embedding;
  /// Distinct-edge-set rows seen so far (dedup_by_edge_set).
  EventSetPool seen;
  /// Open-addressing table over `seen` rows.
  EventRowDedup dedup;
  /// Caller-filled candidate domains (BuildCandidateDomains writes here and
  /// Vf2Options::domains points at it); storage only, the engine never
  /// touches it unless the options request domain-restricted iteration.
  CandidateDomains domains;

  /// Total reserved bytes across all buffers — lets tests pin "a second
  /// pass over the same workload performs no scratch growth".
  size_t CapacityBytes() const;
};

/// Runs `plan` against `target`, invoking `callback` for each embedding (the
/// Embedding reference is scratch-owned and valid only during the call);
/// enumeration stops early when the callback returns false. Returns the
/// number of embeddings reported. This is the engine's hot entry point:
/// zero heap allocation once `scratch` has warmed up.
size_t EnumerateEmbeddings(const MatchPlan& plan, const Graph& target,
                           const Vf2Options& options, Vf2Scratch* scratch,
                           FunctionRef<bool(const Embedding&)> callback);

/// Existence check against a compiled plan: stops at the first embedding,
/// skips dedup and report materialization entirely. `domains` optionally
/// restricts candidate iteration (see Vf2Options::domains).
bool IsSubgraphIsomorphic(const MatchPlan& plan, const Graph& target,
                          Vf2Scratch* scratch,
                          const CandidateDomains* domains = nullptr);

/// Plan-based variant of EmbeddingEdgeSets (see below for the truncation
/// contract), drawing matcher state from `*scratch`.
std::vector<EdgeBitset> EmbeddingEdgeSets(const MatchPlan& plan,
                                          const Graph& target,
                                          size_t max_embeddings,
                                          bool* truncated, Vf2Scratch* scratch);

/// True iff `pattern` is subgraph isomorphic to `target` (q ⊆iso g).
bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target);

/// Compatibility wrapper: compiles a default plan, runs it with a local
/// scratch, and forwards to the std::function callback. Per-call plan
/// compilation makes this the wrong entry point for per-candidate loops —
/// compile once and use the plan overload there.
size_t EnumerateEmbeddings(const Graph& pattern, const Graph& target,
                           const Vf2Options& options,
                           const std::function<bool(const Embedding&)>& callback);

/// Convenience: the distinct target-edge sets of all embeddings of `pattern`
/// in `target`, as bitsets over target edge ids, capped at `max_embeddings`
/// (0 = uncapped). If `truncated` is non-null it reports whether matches
/// were genuinely cut off: the engine probes one embedding past the cap, so
/// a pattern with *exactly* max_embeddings embeddings returns them all with
/// truncated == false (inclusive-cap semantics, matching VerifierOptions).
std::vector<EdgeBitset> EmbeddingEdgeSets(const Graph& pattern,
                                          const Graph& target,
                                          size_t max_embeddings,
                                          bool* truncated = nullptr);

/// True iff g1 and g2 are isomorphic (equal sizes + monomorphism suffices).
bool AreIsomorphic(const Graph& g1, const Graph& g2);

/// The pre-compilation recursive engine, retained verbatim as the reference
/// implementation: vf2_engine_test pins the compiled matcher's embedding
/// sets, counts, and (for default plans) enumeration order against it.
/// Allocates per call; not for hot paths.
size_t EnumerateEmbeddingsReference(
    const Graph& pattern, const Graph& target, const Vf2Options& options,
    const std::function<bool(const Embedding&)>& callback);

}  // namespace pgsim
