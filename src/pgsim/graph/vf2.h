// VF2-style subgraph isomorphism (paper Definition 5, reference [10]).
//
// Used pervasively: feature-vs-graph containment when building the PMI,
// feature-vs-relaxed-query tests during probabilistic pruning (Section 3),
// embedding enumeration for SIP bounds (Section 4.1) and for the Algorithm 5
// sampler (Section 5).
//
// Semantics: *monomorphism* — an injective vertex mapping preserving vertex
// labels, and every pattern edge must map to a target edge with equal label
// (extra target edges are allowed; the embedding is a subgraph, not induced).
// Disconnected patterns are supported (relaxed queries can disconnect).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"

namespace pgsim {

/// One subgraph-isomorphic image of a pattern inside a target graph.
struct Embedding {
  /// pattern vertex id -> target vertex id.
  std::vector<VertexId> vertex_map;
  /// pattern edge id -> target edge id.
  std::vector<EdgeId> edge_map;
};

/// Enumeration knobs.
struct Vf2Options {
  /// Stop after this many *distinct edge-set* embeddings (0 = no cap).
  size_t max_embeddings = 0;
  /// If true (paper semantics), embeddings that cover the same target edge
  /// set are reported once: Definition 5 defines the embedding as the
  /// subgraph (V3, E3) of g, so pattern automorphisms do not multiply counts.
  bool dedup_by_edge_set = true;
};

/// True iff `pattern` is subgraph isomorphic to `target` (q ⊆iso g).
bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target);

/// Invokes `callback` for each embedding of `pattern` in `target`;
/// enumeration stops early when the callback returns false.
/// Returns the number of embeddings reported.
size_t EnumerateEmbeddings(const Graph& pattern, const Graph& target,
                           const Vf2Options& options,
                           const std::function<bool(const Embedding&)>& callback);

/// Convenience: the distinct target-edge sets of all embeddings of `pattern`
/// in `target`, as bitsets over target edge ids. If `truncated` is non-null
/// it is set when `max_embeddings` stopped the enumeration early.
std::vector<EdgeBitset> EmbeddingEdgeSets(const Graph& pattern,
                                          const Graph& target,
                                          size_t max_embeddings,
                                          bool* truncated = nullptr);

/// True iff g1 and g2 are isomorphic (equal sizes + monomorphism suffices).
bool AreIsomorphic(const Graph& g1, const Graph& g2);

}  // namespace pgsim
