#include "pgsim/graph/vf2.h"

#include <algorithm>
#include <unordered_set>

namespace pgsim {

namespace {

// ---- Plan compilation ----------------------------------------------------

// Seed choice for the next component: legacy rule is max degree with
// smallest-id tie-break; with label frequencies, rarest target label first,
// then max degree, then smallest id. Both are total orders over distinct
// vertex ids, so plans are deterministic.
VertexId PickSeed(const Graph& pattern, const std::vector<bool>& placed,
                  const std::vector<uint32_t>* label_freq) {
  const uint32_t n = pattern.NumVertices();
  VertexId seed = kInvalidVertex;
  for (VertexId v = 0; v < n; ++v) {
    if (placed[v]) continue;
    if (seed == kInvalidVertex) {
      seed = v;
      continue;
    }
    if (label_freq != nullptr) {
      auto freq = [&](VertexId u) -> uint64_t {
        const LabelId l = pattern.VertexLabel(u);
        return l < label_freq->size() ? (*label_freq)[l] : 0;
      };
      const uint64_t fv = freq(v), fs = freq(seed);
      if (fv != fs) {
        if (fv < fs) seed = v;
        continue;
      }
    }
    if (pattern.Degree(v) > pattern.Degree(seed)) seed = v;
  }
  return seed;
}

// ---- Back-edge lookup ----------------------------------------------------

// The target edge between u and v, or kInvalidEdge. Scans the
// smaller-degree endpoint's sorted adjacency with a gallop (exponential
// probe + binary search) — sub-logarithmic when the match lands early,
// which it usually does on the short list, and never worse than the plain
// binary search over the longer list that Graph::FindEdge would do.
EdgeId FindEdgeGallop(const Graph& target, VertexId u, VertexId v) {
  if (target.Degree(u) > target.Degree(v)) std::swap(u, v);
  const Span<AdjEntry> adj = target.Neighbors(u);
  const size_t n = adj.size();
  if (n == 0) return kInvalidEdge;
  // Exponential probe for the first index with neighbor >= v.
  size_t bound = 1;
  while (bound < n && adj[bound - 1].neighbor < v) bound <<= 1;
  const size_t lo = bound >> 1;
  const size_t hi = std::min(bound, n);
  const AdjEntry* it = std::lower_bound(
      adj.begin() + lo, adj.begin() + hi, v,
      [](const AdjEntry& a, VertexId want) { return a.neighbor < want; });
  if (it != adj.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

// Label-aware look-ahead: every later-placed pattern neighbor of this
// position must map to a distinct unused target neighbor of `cand` carrying
// the right (vertex label, edge label) pair. Groups partition the adjacency
// entries (distinct vertices, one label pair each), so satisfying every
// group's count is necessary for the subtree to complete; failing one dooms
// it. Skips only fruitless branches — the embedding sequence is unchanged.
inline bool HasForwardRoom(const MatchPlan& plan, const Graph& target,
                           VertexId cand, uint32_t pos, Vf2Scratch* s) {
  const uint32_t fo = plan.fwd_offsets[pos];
  const uint32_t fe = plan.fwd_offsets[pos + 1];
  uint32_t remaining = fe - fo;
  s->fwd_need.resize(remaining);
  for (uint32_t k = 0; k < remaining; ++k) {
    s->fwd_need[k] = plan.fwd[fo + k].need;
  }
  uint32_t open = remaining;
  for (const AdjEntry& a : target.Neighbors(cand)) {
    if (s->used[a.neighbor]) continue;
    const LabelId vl = target.VertexLabel(a.neighbor);
    const LabelId el = target.EdgeLabel(a.edge);
    for (uint32_t k = 0; k < remaining; ++k) {
      if (s->fwd_need[k] == 0) continue;
      const MatchPlan::ForwardNeed& fn = plan.fwd[fo + k];
      if (fn.vertex_label != vl || fn.edge_label != el) continue;
      if (--s->fwd_need[k] == 0 && --open == 0) return true;
      break;
    }
  }
  return open == 0;
}

// ---- Iterative matcher core ----------------------------------------------

// Explicit-stack matcher over a compiled plan. Templated on the callback so
// the existence check's trivial lambda inlines; the FunctionRef entry point
// instantiates it once for the generic case. Candidate domains:
//   * anchored positions walk the adjacency of the anchor's image (the
//     cursor indexes that span), checking the anchor edge label inline and
//     the remaining back edges via FindEdgeGallop — recording every matched
//     target edge id into the embedding's edge map as it goes;
//   * anchorless positions walk the target's label bucket (ascending id,
//     exactly the vertices a full scan filtered by label would visit).
template <typename Callback>
size_t RunMatch(const MatchPlan& plan, const Graph& target,
                const Vf2Options& options, Vf2Scratch* s, Callback&& callback) {
  const uint32_t n = static_cast<uint32_t>(plan.order.size());
  if (n == 0) return 0;
  if (n > target.NumVertices() ||
      plan.num_pattern_edges > target.NumEdges()) {
    return 0;
  }
  // Signature-derived domains restrict candidate iteration without changing
  // the embedding set or order: domain segments are ascending-id subsets of
  // the label buckets, and membership is a necessary condition for any
  // completed embedding. A mismatched domain (wrong pair) is a caller bug.
  const CandidateDomains* domains = options.domains;
  if (domains != nullptr &&
      (domains->num_pattern_vertices != plan.num_pattern_vertices ||
       domains->num_target_vertices != target.NumVertices())) {
    domains = nullptr;
  }
  s->map.assign(plan.num_pattern_vertices, kInvalidVertex);
  s->used.assign(target.NumVertices(), 0);
  s->cursor.resize(n);
  s->dom_adj.resize(n);
  s->dom_bucket.resize(n);
  s->dom_size.resize(n);
  Embedding& emb = s->embedding;
  emb.vertex_map.resize(plan.num_pattern_vertices);
  emb.edge_map.resize(plan.num_pattern_edges);
  const bool dedup = options.dedup_by_edge_set;
  if (dedup) {
    s->seen.Reset(target.NumEdges());
    s->dedup.Reset(options.max_embeddings != 0
                       ? std::min(options.max_embeddings, size_t{512})
                       : 0);
  }

  size_t reported = 0;
  uint32_t pos = 0;
  // Computes position `pos`'s candidate domain (called exactly once per
  // entry; backtrack returns reuse the stored span — the domain depends
  // only on earlier placements, which are fixed while `pos` is active).
  auto enter_position = [&](uint32_t p) {
    s->cursor[p] = 0;
    const uint32_t boff = plan.back_offsets[p];
    if (boff != plan.back_offsets[p + 1]) {
      const Span<AdjEntry> adj =
          target.Neighbors(s->map[plan.back[boff].other]);
      s->dom_adj[p] = adj.data();
      s->dom_size[p] = static_cast<uint32_t>(adj.size());
    } else if (domains != nullptr) {
      // Domain segment: the ascending-id subset of the label bucket whose
      // signatures dominate this pattern vertex's.
      const VertexId pv = plan.order[p];
      const uint32_t begin = domains->offsets[pv];
      s->dom_bucket[p] = domains->verts.data() + begin;
      s->dom_size[p] = domains->offsets[pv + 1] - begin;
    } else {
      const Span<VertexId> bucket =
          target.VerticesWithLabel(plan.pos_label[p]);
      s->dom_bucket[p] = bucket.data();
      s->dom_size[p] = static_cast<uint32_t>(bucket.size());
    }
  };
  enter_position(0);
  // Invariant at the top of the loop: positions [0, pos) are placed,
  // position `pos` is not, and cursor[pos] is the next candidate index.
  for (;;) {
    const VertexId pv = plan.order[pos];
    const LabelId pl = plan.pos_label[pos];
    const uint32_t pdeg = plan.min_degree[pos];
    const uint32_t boff = plan.back_offsets[pos];
    const uint32_t bend = plan.back_offsets[pos + 1];
    const uint32_t dom_n = s->dom_size[pos];
    bool placed = false;

    if (boff != bend) {
      const PlanBackEdge& anchor = plan.back[boff];
      const AdjEntry* adj = s->dom_adj[pos];
      const uint8_t* member =
          domains != nullptr
              ? domains->member.data() +
                    size_t{pv} * domains->num_target_vertices
              : nullptr;
      uint32_t& cur = s->cursor[pos];
      while (cur < dom_n) {
        const AdjEntry ta = adj[cur++];
        const VertexId cand = ta.neighbor;
        if (s->used[cand] || target.VertexLabel(cand) != pl) continue;
        if (member != nullptr && member[cand] == 0) continue;
        if (target.Degree(cand) < pdeg) continue;
        if (target.EdgeLabel(ta.edge) != anchor.label) continue;
        if (plan.min_forward[pos] != 0 &&
            !HasForwardRoom(plan, target, cand, pos, s)) {
          continue;
        }
        bool ok = true;
        for (uint32_t b = boff + 1; b < bend; ++b) {
          const PlanBackEdge& be = plan.back[b];
          const EdgeId te = FindEdgeGallop(target, cand, s->map[be.other]);
          if (te == kInvalidEdge || target.EdgeLabel(te) != be.label) {
            ok = false;
            break;
          }
          emb.edge_map[be.pattern_edge] = te;
        }
        if (!ok) continue;
        emb.edge_map[anchor.pattern_edge] = ta.edge;
        s->map[pv] = cand;
        s->used[cand] = 1;
        placed = true;
        break;
      }
    } else {
      const VertexId* bucket = s->dom_bucket[pos];
      uint32_t& cur = s->cursor[pos];
      while (cur < dom_n) {
        const VertexId cand = bucket[cur++];
        if (s->used[cand]) continue;
        if (target.Degree(cand) < pdeg) continue;
        if (plan.min_forward[pos] != 0 &&
            !HasForwardRoom(plan, target, cand, pos, s)) {
          continue;
        }
        s->map[pv] = cand;
        s->used[cand] = 1;
        placed = true;
        break;
      }
    }

    if (placed) {
      if (pos + 1 < n) {
        ++pos;
        enter_position(pos);
        continue;
      }
      // Full assignment: report (duplicates neither count nor report).
      bool fresh = true;
      if (dedup) {
        const size_t row = s->seen.AddRow();
        for (EdgeId e : emb.edge_map) s->seen.SetBit(row, e);
        fresh = s->dedup.InsertLastRow(&s->seen);
      }
      if (fresh) {
        emb.vertex_map.assign(s->map.begin(), s->map.end());
        ++reported;
        if (!callback(emb)) return reported;
        if (options.max_embeddings != 0 &&
            reported >= options.max_embeddings) {
          return reported;
        }
      }
      // Retract this position and keep scanning its candidates.
      s->used[s->map[pv]] = 0;
      s->map[pv] = kInvalidVertex;
    } else {
      // Exhausted: backtrack.
      if (pos == 0) return reported;
      --pos;
      const VertexId prev = plan.order[pos];
      s->used[s->map[prev]] = 0;
      s->map[prev] = kInvalidVertex;
    }
  }
}

}  // namespace

MatchPlan CompileMatchPlan(const Graph& pattern,
                           const MatchPlanOptions& options) {
  const uint32_t n = pattern.NumVertices();
  MatchPlan plan;
  plan.num_pattern_vertices = n;
  plan.num_pattern_edges = pattern.NumEdges();
  plan.order.reserve(n);
  std::vector<bool> placed(n, false);
  std::vector<uint32_t> position(n, 0);

  // BFS from each component's seed, so every vertex after the first of its
  // component has at least one previously matched neighbor.
  while (plan.order.size() < n) {
    const VertexId seed = PickSeed(pattern, placed, options.label_freq);
    std::vector<VertexId> frontier{seed};
    placed[seed] = true;
    position[seed] = static_cast<uint32_t>(plan.order.size());
    plan.order.push_back(seed);
    size_t head = 0;
    while (head < frontier.size()) {
      const VertexId v = frontier[head++];
      for (const AdjEntry& a : pattern.Neighbors(v)) {
        if (placed[a.neighbor]) continue;
        placed[a.neighbor] = true;
        position[a.neighbor] = static_cast<uint32_t>(plan.order.size());
        plan.order.push_back(a.neighbor);
        frontier.push_back(a.neighbor);
      }
    }
  }

  plan.pos_label.resize(n);
  plan.min_degree.resize(n);
  plan.min_forward.resize(n);
  plan.back_offsets.assign(n + 1, 0);
  plan.fwd_offsets.assign(n + 1, 0);
  for (uint32_t pos = 0; pos < n; ++pos) {
    const VertexId pv = plan.order[pos];
    plan.pos_label[pos] = pattern.VertexLabel(pv);
    plan.min_degree[pos] = pattern.Degree(pv);
    uint32_t forward = 0;
    const size_t fwd_begin = plan.fwd.size();
    for (const AdjEntry& a : pattern.Neighbors(pv)) {
      if (position[a.neighbor] < pos) {
        plan.back.push_back(
            PlanBackEdge{a.neighbor, pattern.EdgeLabel(a.edge), a.edge});
      } else {
        ++forward;
        const LabelId vl = pattern.VertexLabel(a.neighbor);
        const LabelId el = pattern.EdgeLabel(a.edge);
        bool merged = false;
        for (size_t k = fwd_begin; k < plan.fwd.size(); ++k) {
          if (plan.fwd[k].vertex_label == vl && plan.fwd[k].edge_label == el) {
            ++plan.fwd[k].need;
            merged = true;
            break;
          }
        }
        if (!merged) {
          plan.fwd.push_back(MatchPlan::ForwardNeed{vl, el, 1});
        }
      }
    }
    // Deterministic group order (adjacency order is already deterministic,
    // but sorting makes the plan independent of neighbor id layout).
    std::sort(plan.fwd.begin() + fwd_begin, plan.fwd.end(),
              [](const MatchPlan::ForwardNeed& a,
                 const MatchPlan::ForwardNeed& b) {
                if (a.vertex_label != b.vertex_label) {
                  return a.vertex_label < b.vertex_label;
                }
                return a.edge_label < b.edge_label;
              });
    plan.min_forward[pos] = forward;
    plan.fwd_offsets[pos + 1] = static_cast<uint32_t>(plan.fwd.size());
    plan.back_offsets[pos + 1] = static_cast<uint32_t>(plan.back.size());
  }
  return plan;
}

size_t Vf2Scratch::CapacityBytes() const {
  return map.capacity() * sizeof(VertexId) + used.capacity() +
         cursor.capacity() * sizeof(uint32_t) +
         dom_adj.capacity() * sizeof(const AdjEntry*) +
         dom_bucket.capacity() * sizeof(const VertexId*) +
         dom_size.capacity() * sizeof(uint32_t) +
         fwd_need.capacity() * sizeof(uint32_t) +
         embedding.vertex_map.capacity() * sizeof(VertexId) +
         embedding.edge_map.capacity() * sizeof(EdgeId) +
         seen.word_capacity() * sizeof(uint64_t) + dedup.CapacityBytes() +
         domains.CapacityBytes();
}

size_t EnumerateEmbeddings(const MatchPlan& plan, const Graph& target,
                           const Vf2Options& options, Vf2Scratch* scratch,
                           FunctionRef<bool(const Embedding&)> callback) {
  return RunMatch(plan, target, options, scratch, callback);
}

bool IsSubgraphIsomorphic(const MatchPlan& plan, const Graph& target,
                          Vf2Scratch* scratch,
                          const CandidateDomains* domains) {
  if (plan.num_pattern_vertices == 0) return true;  // empty pattern maps
  Vf2Options options;
  options.max_embeddings = 1;
  options.dedup_by_edge_set = false;
  options.domains = domains;
  return RunMatch(plan, target, options, scratch,
                  [](const Embedding&) { return false; }) > 0;
}

std::vector<EdgeBitset> EmbeddingEdgeSets(const MatchPlan& plan,
                                          const Graph& target,
                                          size_t max_embeddings,
                                          bool* truncated,
                                          Vf2Scratch* scratch) {
  std::vector<EdgeBitset> out;
  Vf2Options options;
  // Probe one past the inclusive cap so "exactly at the cap" is
  // distinguishable from "cut off"; 0 keeps its "uncapped" meaning (and
  // SIZE_MAX wraps to it, same intent).
  options.max_embeddings = max_embeddings == 0 ? 0 : max_embeddings + 1;
  options.dedup_by_edge_set = true;
  const size_t n = RunMatch(
      plan, target, options, scratch, [&](const Embedding& emb) {
        if (max_embeddings != 0 && out.size() == max_embeddings) {
          return true;  // the probe embedding: proves truncation, not kept
        }
        out.push_back(
            EdgeBitset::FromIndices(target.NumEdges(), emb.edge_map));
        return true;
      });
  if (truncated != nullptr) {
    *truncated = (max_embeddings != 0 && n > max_embeddings);
  }
  return out;
}

bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target) {
  if (pattern.NumVertices() == 0) return true;  // empty pattern trivially maps
  Vf2Scratch scratch;
  return IsSubgraphIsomorphic(CompileMatchPlan(pattern), target, &scratch);
}

size_t EnumerateEmbeddings(
    const Graph& pattern, const Graph& target, const Vf2Options& options,
    const std::function<bool(const Embedding&)>& callback) {
  Vf2Scratch scratch;
  return RunMatch(CompileMatchPlan(pattern), target, options, &scratch,
                  [&](const Embedding& emb) { return callback(emb); });
}

std::vector<EdgeBitset> EmbeddingEdgeSets(const Graph& pattern,
                                          const Graph& target,
                                          size_t max_embeddings,
                                          bool* truncated) {
  Vf2Scratch scratch;
  return EmbeddingEdgeSets(CompileMatchPlan(pattern), target, max_embeddings,
                           truncated, &scratch);
}

bool AreIsomorphic(const Graph& g1, const Graph& g2) {
  if (g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges()) {
    return false;
  }
  // With equal vertex and edge counts, a monomorphism is a full isomorphism.
  return IsSubgraphIsomorphic(g1, g2);
}

// ---- Reference engine (pre-compilation implementation, kept verbatim) ----

namespace {

struct ReferencePlan {
  std::vector<VertexId> order;               // position -> pattern vertex
  std::vector<std::vector<AdjEntry>> back;   // matched pattern neighbors
  std::vector<bool> has_anchor;              // position has matched neighbor
};

ReferencePlan BuildReferencePlan(const Graph& pattern) {
  const uint32_t n = pattern.NumVertices();
  ReferencePlan plan;
  plan.order.reserve(n);
  std::vector<bool> placed(n, false);
  std::vector<uint32_t> position(n, 0);

  while (plan.order.size() < n) {
    // Seed: unplaced vertex of max degree.
    VertexId seed = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (seed == kInvalidVertex || pattern.Degree(v) > pattern.Degree(seed)) {
        seed = v;
      }
    }
    std::vector<VertexId> frontier{seed};
    placed[seed] = true;
    position[seed] = static_cast<uint32_t>(plan.order.size());
    plan.order.push_back(seed);
    size_t head = 0;
    while (head < frontier.size()) {
      const VertexId v = frontier[head++];
      for (const AdjEntry& a : pattern.Neighbors(v)) {
        if (placed[a.neighbor]) continue;
        placed[a.neighbor] = true;
        position[a.neighbor] = static_cast<uint32_t>(plan.order.size());
        plan.order.push_back(a.neighbor);
        frontier.push_back(a.neighbor);
      }
    }
  }

  plan.back.resize(n);
  plan.has_anchor.resize(n, false);
  for (uint32_t pos = 0; pos < n; ++pos) {
    const VertexId pv = plan.order[pos];
    for (const AdjEntry& a : pattern.Neighbors(pv)) {
      if (position[a.neighbor] < pos) {
        plan.back[pos].push_back(a);
        plan.has_anchor[pos] = true;
      }
    }
  }
  return plan;
}

class ReferenceState {
 public:
  ReferenceState(const Graph& pattern, const Graph& target,
                 const Vf2Options& options,
                 const std::function<bool(const Embedding&)>& callback)
      : pattern_(pattern),
        target_(target),
        options_(options),
        callback_(callback),
        plan_(BuildReferencePlan(pattern)),
        map_(pattern.NumVertices(), kInvalidVertex),
        used_(target.NumVertices(), false) {}

  size_t Run() {
    if (pattern_.NumVertices() == 0) return 0;
    if (pattern_.NumVertices() > target_.NumVertices() ||
        pattern_.NumEdges() > target_.NumEdges()) {
      return 0;
    }
    Recurse(0);
    return reported_;
  }

 private:
  // Returns false when enumeration must stop entirely.
  bool Recurse(uint32_t pos) {
    if (pos == plan_.order.size()) return Report();
    const VertexId pv = plan_.order[pos];
    const LabelId pl = pattern_.VertexLabel(pv);
    const uint32_t pdeg = pattern_.Degree(pv);

    if (plan_.has_anchor[pos]) {
      // Candidates: target neighbors of the image of one matched neighbor.
      const AdjEntry& anchor = plan_.back[pos][0];
      const VertexId tv_anchor = map_[anchor.neighbor];
      for (const AdjEntry& ta : target_.Neighbors(tv_anchor)) {
        const VertexId cand = ta.neighbor;
        if (used_[cand] || target_.VertexLabel(cand) != pl) continue;
        if (target_.Degree(cand) < pdeg) continue;
        if (target_.EdgeLabel(ta.edge) != pattern_.EdgeLabel(anchor.edge)) {
          continue;
        }
        if (!CheckBackEdges(pos, cand, /*skip_first=*/true)) continue;
        if (!Descend(pos, pv, cand)) return false;
      }
    } else {
      for (VertexId cand = 0; cand < target_.NumVertices(); ++cand) {
        if (used_[cand] || target_.VertexLabel(cand) != pl) continue;
        if (target_.Degree(cand) < pdeg) continue;
        if (!Descend(pos, pv, cand)) return false;
      }
    }
    return true;
  }

  bool CheckBackEdges(uint32_t pos, VertexId cand, bool skip_first) const {
    const auto& back = plan_.back[pos];
    for (size_t i = skip_first ? 1 : 0; i < back.size(); ++i) {
      const auto te = target_.FindEdge(std::min(cand, map_[back[i].neighbor]),
                                       std::max(cand, map_[back[i].neighbor]));
      if (!te.has_value() ||
          target_.EdgeLabel(*te) != pattern_.EdgeLabel(back[i].edge)) {
        return false;
      }
    }
    return true;
  }

  bool Descend(uint32_t pos, VertexId pv, VertexId cand) {
    map_[pv] = cand;
    used_[cand] = true;
    const bool keep_going = Recurse(pos + 1);
    used_[cand] = false;
    map_[pv] = kInvalidVertex;
    return keep_going;
  }

  bool Report() {
    Embedding emb;
    emb.vertex_map = map_;
    emb.edge_map.resize(pattern_.NumEdges());
    for (EdgeId e = 0; e < pattern_.NumEdges(); ++e) {
      const Edge& pe = pattern_.GetEdge(e);
      const VertexId tu = map_[pe.u];
      const VertexId tv = map_[pe.v];
      emb.edge_map[e] = *target_.FindEdge(std::min(tu, tv), std::max(tu, tv));
    }
    if (options_.dedup_by_edge_set) {
      EdgeBitset key =
          EdgeBitset::FromIndices(target_.NumEdges(), emb.edge_map);
      if (!seen_.insert(std::move(key)).second) return true;  // duplicate
    }
    ++reported_;
    const bool keep_going = callback_(emb);
    if (!keep_going) return false;
    if (options_.max_embeddings != 0 && reported_ >= options_.max_embeddings) {
      return false;
    }
    return true;
  }

  const Graph& pattern_;
  const Graph& target_;
  const Vf2Options& options_;
  const std::function<bool(const Embedding&)>& callback_;
  ReferencePlan plan_;
  std::vector<VertexId> map_;
  std::vector<bool> used_;
  std::unordered_set<EdgeBitset, EdgeBitsetHash> seen_;
  size_t reported_ = 0;
};

}  // namespace

size_t EnumerateEmbeddingsReference(
    const Graph& pattern, const Graph& target, const Vf2Options& options,
    const std::function<bool(const Embedding&)>& callback) {
  ReferenceState state(pattern, target, options, callback);
  return state.Run();
}

}  // namespace pgsim
