#include "pgsim/graph/vf2.h"

#include <algorithm>
#include <unordered_set>

namespace pgsim {

namespace {

// Matching order: BFS from the highest-degree vertex of each component, so
// every vertex after the first of its component has at least one previously
// matched neighbor (keeps the candidate sets small). For each position we
// precompute the pattern neighbors that are already matched at that point.
struct MatchPlan {
  std::vector<VertexId> order;               // position -> pattern vertex
  std::vector<std::vector<AdjEntry>> back;   // matched pattern neighbors
  std::vector<bool> has_anchor;              // position has matched neighbor
};

MatchPlan BuildPlan(const Graph& pattern) {
  const uint32_t n = pattern.NumVertices();
  MatchPlan plan;
  plan.order.reserve(n);
  std::vector<bool> placed(n, false);
  std::vector<uint32_t> position(n, 0);

  while (plan.order.size() < n) {
    // Seed: unplaced vertex of max degree.
    VertexId seed = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (seed == kInvalidVertex || pattern.Degree(v) > pattern.Degree(seed)) {
        seed = v;
      }
    }
    // BFS from the seed, preferring vertices with more placed neighbors.
    std::vector<VertexId> frontier{seed};
    placed[seed] = true;
    position[seed] = static_cast<uint32_t>(plan.order.size());
    plan.order.push_back(seed);
    size_t head = 0;
    while (head < frontier.size()) {
      const VertexId v = frontier[head++];
      for (const AdjEntry& a : pattern.Neighbors(v)) {
        if (placed[a.neighbor]) continue;
        placed[a.neighbor] = true;
        position[a.neighbor] = static_cast<uint32_t>(plan.order.size());
        plan.order.push_back(a.neighbor);
        frontier.push_back(a.neighbor);
      }
    }
  }

  plan.back.resize(n);
  plan.has_anchor.resize(n, false);
  for (uint32_t pos = 0; pos < n; ++pos) {
    const VertexId pv = plan.order[pos];
    for (const AdjEntry& a : pattern.Neighbors(pv)) {
      if (position[a.neighbor] < pos) {
        plan.back[pos].push_back(a);
        plan.has_anchor[pos] = true;
      }
    }
  }
  return plan;
}

class Vf2State {
 public:
  Vf2State(const Graph& pattern, const Graph& target, const Vf2Options& options,
           const std::function<bool(const Embedding&)>& callback)
      : pattern_(pattern),
        target_(target),
        options_(options),
        callback_(callback),
        plan_(BuildPlan(pattern)),
        map_(pattern.NumVertices(), kInvalidVertex),
        used_(target.NumVertices(), false) {}

  size_t Run() {
    if (pattern_.NumVertices() == 0) return 0;
    if (pattern_.NumVertices() > target_.NumVertices() ||
        pattern_.NumEdges() > target_.NumEdges()) {
      return 0;
    }
    Recurse(0);
    return reported_;
  }

 private:
  // Returns false when enumeration must stop entirely.
  bool Recurse(uint32_t pos) {
    if (pos == plan_.order.size()) return Report();
    const VertexId pv = plan_.order[pos];
    const LabelId pl = pattern_.VertexLabel(pv);
    const uint32_t pdeg = pattern_.Degree(pv);

    if (plan_.has_anchor[pos]) {
      // Candidates: target neighbors of the image of one matched neighbor.
      const AdjEntry& anchor = plan_.back[pos][0];
      const VertexId tv_anchor = map_[anchor.neighbor];
      for (const AdjEntry& ta : target_.Neighbors(tv_anchor)) {
        const VertexId cand = ta.neighbor;
        if (used_[cand] || target_.VertexLabel(cand) != pl) continue;
        if (target_.Degree(cand) < pdeg) continue;
        if (target_.EdgeLabel(ta.edge) != pattern_.EdgeLabel(anchor.edge)) {
          continue;
        }
        if (!CheckBackEdges(pos, cand, /*skip_first=*/true)) continue;
        if (!Descend(pos, pv, cand)) return false;
      }
    } else {
      for (VertexId cand = 0; cand < target_.NumVertices(); ++cand) {
        if (used_[cand] || target_.VertexLabel(cand) != pl) continue;
        if (target_.Degree(cand) < pdeg) continue;
        if (!Descend(pos, pv, cand)) return false;
      }
    }
    return true;
  }

  bool CheckBackEdges(uint32_t pos, VertexId cand, bool skip_first) const {
    const auto& back = plan_.back[pos];
    for (size_t i = skip_first ? 1 : 0; i < back.size(); ++i) {
      const auto te = target_.FindEdge(std::min(cand, map_[back[i].neighbor]),
                                       std::max(cand, map_[back[i].neighbor]));
      if (!te.has_value() ||
          target_.EdgeLabel(*te) != pattern_.EdgeLabel(back[i].edge)) {
        return false;
      }
    }
    return true;
  }

  bool Descend(uint32_t pos, VertexId pv, VertexId cand) {
    map_[pv] = cand;
    used_[cand] = true;
    const bool keep_going = Recurse(pos + 1);
    used_[cand] = false;
    map_[pv] = kInvalidVertex;
    return keep_going;
  }

  bool Report() {
    Embedding emb;
    emb.vertex_map = map_;
    emb.edge_map.resize(pattern_.NumEdges());
    for (EdgeId e = 0; e < pattern_.NumEdges(); ++e) {
      const Edge& pe = pattern_.GetEdge(e);
      const VertexId tu = map_[pe.u];
      const VertexId tv = map_[pe.v];
      emb.edge_map[e] = *target_.FindEdge(std::min(tu, tv), std::max(tu, tv));
    }
    if (options_.dedup_by_edge_set) {
      EdgeBitset key =
          EdgeBitset::FromIndices(target_.NumEdges(), emb.edge_map);
      if (!seen_.insert(std::move(key)).second) return true;  // duplicate
    }
    ++reported_;
    const bool keep_going = callback_(emb);
    if (!keep_going) return false;
    if (options_.max_embeddings != 0 && reported_ >= options_.max_embeddings) {
      return false;
    }
    return true;
  }

  const Graph& pattern_;
  const Graph& target_;
  const Vf2Options& options_;
  const std::function<bool(const Embedding&)>& callback_;
  MatchPlan plan_;
  std::vector<VertexId> map_;
  std::vector<bool> used_;
  std::unordered_set<EdgeBitset, EdgeBitsetHash> seen_;
  size_t reported_ = 0;
};

}  // namespace

bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target) {
  if (pattern.NumVertices() == 0) return true;  // empty pattern trivially maps
  bool found = false;
  Vf2Options options;
  options.max_embeddings = 1;
  options.dedup_by_edge_set = false;
  EnumerateEmbeddings(pattern, target, options, [&](const Embedding&) {
    found = true;
    return false;
  });
  return found;
}

size_t EnumerateEmbeddings(
    const Graph& pattern, const Graph& target, const Vf2Options& options,
    const std::function<bool(const Embedding&)>& callback) {
  Vf2State state(pattern, target, options, callback);
  return state.Run();
}

std::vector<EdgeBitset> EmbeddingEdgeSets(const Graph& pattern,
                                          const Graph& target,
                                          size_t max_embeddings,
                                          bool* truncated) {
  std::vector<EdgeBitset> out;
  Vf2Options options;
  options.max_embeddings = max_embeddings;
  options.dedup_by_edge_set = true;
  const size_t n = EnumerateEmbeddings(
      pattern, target, options, [&](const Embedding& emb) {
        out.push_back(
            EdgeBitset::FromIndices(target.NumEdges(), emb.edge_map));
        return true;
      });
  if (truncated != nullptr) {
    *truncated = (max_embeddings != 0 && n >= max_embeddings);
  }
  return out;
}

bool AreIsomorphic(const Graph& g1, const Graph& g2) {
  if (g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges()) {
    return false;
  }
  // With equal vertex and edge counts, a monomorphism is a full isomorphism.
  return IsSubgraphIsomorphic(g1, g2);
}

}  // namespace pgsim
