// Query relaxation (paper Section 3.1).
//
// For a query q and distance threshold delta, the remaining graph set
// U = {rq1, ..., rqa} contains the pairwise non-isomorphic graphs obtained by
// deleting exactly delta edges from q (Lemma 1: Pr(q ⊆sim g) =
// Pr(Brq1 ∨ ... ∨ Brqa); relabelings are subsumed by deletions for
// containment purposes, and insertions never help — footnote 4).
//
// Isolated vertices left behind by edge deletions are dropped: the subgraph
// distance of Definition 8 counts edges only.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"

namespace pgsim {

/// Limits for relaxation enumeration.
struct RelaxationOptions {
  /// Hard cap on C(|E(q)|, delta) enumerated deletion sets; exceeding it is
  /// an OutOfRange error (callers should shrink delta or the query).
  uint64_t max_combinations = 2'000'000;
  /// Hard cap on |U| after isomorphism dedup.
  size_t max_relaxed_graphs = 200'000;
};

/// Generates U: all graphs q-minus-(delta edges), deduplicated by graph
/// isomorphism (fingerprint buckets + exact VF2 check).
/// Requires delta < |E(q)| (a fully deleted query matches everything and
/// should be short-circuited by the caller).
Result<std::vector<Graph>> GenerateRelaxedQueries(
    const Graph& q, uint32_t delta,
    const RelaxationOptions& options = RelaxationOptions());

/// Scratch-reusing variant: clears `*out` (keeping its capacity) and fills it
/// with U. Steady-state query loops (QueryContext) call this to avoid
/// reallocating the outer vector per query.
Status GenerateRelaxedQueriesInto(const Graph& q, uint32_t delta,
                                  const RelaxationOptions& options,
                                  std::vector<Graph>* out);

/// Number of delta-subsets of q's edges (the pre-dedup |U|), saturating at
/// UINT64_MAX on overflow.
uint64_t CountDeletionSets(uint32_t num_edges, uint32_t delta);

}  // namespace pgsim
