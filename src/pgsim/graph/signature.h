// Per-vertex neighborhood signatures and the signature cover test.
//
// A vertex signature summarizes the 1- and 2-hop label neighborhood of a
// vertex in four fixed-width columns:
//
//   * nbr_bits    — 64-bit bitmap over hashed (neighbor vertex label,
//                   connecting edge label) pairs;
//   * hop2_bits   — 64-bit bitmap over the same pairs reached by any walk of
//                   length two (OR of the neighbors' nbr_bits; walks may
//                   return, which is symmetric between pattern and target and
//                   therefore sound);
//   * degree      — the vertex degree;
//   * label_counts — per-label neighbor counts folded into
//                   kSignatureLabelSlots saturating u8 slots.
//
// Soundness: if an injective label-preserving mapping (monomorphism) sends
// pattern vertex pv to target vertex tv, then every pattern walk from pv maps
// to an equal-labeled target walk from tv, so pv's bitmaps are subsets of
// tv's, deg(pv) <= deg(tv), and every count slot dominates (injectivity sends
// distinct pattern neighbors to distinct target neighbors, and saturation
// preserves <=). SignatureDominates therefore never rejects a (pv, tv) pair
// that appears in some embedding — rejections prune provably barren
// candidates only, which is what keeps the matcher's answer set and
// enumeration order bit-identical with signatures on or off.
//
// Two consumers build on the per-pair test:
//   * SignatureCoverTest — "can this pattern embed at all?": every pattern
//     vertex must have at least one dominating data vertex in its label
//     bucket. Used by the offline containment paths (StructuralFilter exact
//     check, FeatureMiner) to skip whole VF2 calls.
//   * BuildCandidateDomains — materializes the surviving bucket subset per
//     pattern vertex (ascending target ids) into CandidateDomains for
//     domain-restricted VF2 (Vf2Options::domains). An empty domain doubles
//     as a cover-test failure.
//
// The database-side columnar storage lives in index/domain_index.h; this
// header owns the per-vertex encoding and the query-side (pattern) build.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/graph/graph.h"
#include "pgsim/graph/vf2.h"

namespace pgsim {

/// Number of saturating per-label neighbor-count slots per vertex.
inline constexpr uint32_t kSignatureLabelSlots = 8;

/// splitmix64-style finalizer: the shared hash behind the bitmap bit and
/// count-slot assignments. Deterministic across platforms and builds — the
/// persisted index (PGSG) depends on it.
inline uint64_t SignatureMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Bitmap bit of a (neighbor vertex label, connecting edge label) pair.
inline uint32_t SignatureBit(LabelId vertex_label, LabelId edge_label) {
  return static_cast<uint32_t>(
      SignatureMix64((uint64_t{vertex_label} << 32) | edge_label) & 63u);
}

/// Count slot of a neighbor vertex label.
inline uint32_t SignatureLabelSlot(LabelId vertex_label) {
  return static_cast<uint32_t>(SignatureMix64(vertex_label) &
                               (kSignatureLabelSlots - 1));
}

/// Borrowed columnar view over one graph's per-vertex signatures
/// (vertex-major; label_counts has kSignatureLabelSlots bytes per vertex).
/// Produced by SignatureIndex::ForGraph and QuerySignature::view.
struct SignatureView {
  const uint64_t* nbr_bits = nullptr;
  const uint64_t* hop2_bits = nullptr;
  const uint32_t* degree = nullptr;
  const uint8_t* label_counts = nullptr;
  uint32_t num_vertices = 0;

  bool empty() const { return nbr_bits == nullptr; }
};

/// Owned signature columns for one pattern (relaxed query, mined feature
/// candidate). Compiled once per pattern and reused across every candidate.
struct QuerySignature {
  std::vector<uint64_t> nbr_bits;
  std::vector<uint64_t> hop2_bits;
  std::vector<uint32_t> degree;
  std::vector<uint8_t> label_counts;
  uint32_t num_vertices = 0;

  SignatureView view() const {
    SignatureView v;
    v.nbr_bits = nbr_bits.data();
    v.hop2_bits = hop2_bits.data();
    v.degree = degree.data();
    v.label_counts = label_counts.data();
    v.num_vertices = num_vertices;
    return v;
  }
};

/// Fills the signature columns of every vertex of `g` into caller-sized
/// arrays (nbr_bits/hop2_bits/degree: one entry per vertex; label_counts:
/// kSignatureLabelSlots per vertex). The shared builder behind both the
/// database index and the query-side compile — byte-identical output for
/// equal graphs by construction.
void BuildVertexSignatures(const Graph& g, uint64_t* nbr_bits,
                           uint64_t* hop2_bits, uint32_t* degree,
                           uint8_t* label_counts);

/// Compiles the owned signature of one pattern graph.
QuerySignature BuildQuerySignature(const Graph& g);

/// True when target vertex `tv` can host pattern vertex `pv` in some
/// monomorphism as far as the signatures can tell. Label equality is the
/// caller's job (both call sites iterate the pattern label's bucket).
inline bool SignatureDominates(const SignatureView& p, uint32_t pv,
                               const SignatureView& t, uint32_t tv) {
  if (t.degree[tv] < p.degree[pv]) return false;
  const uint64_t pb = p.nbr_bits[pv];
  if ((pb & t.nbr_bits[tv]) != pb) return false;
  const uint64_t ph = p.hop2_bits[pv];
  if ((ph & t.hop2_bits[tv]) != ph) return false;
  const uint8_t* pc = p.label_counts + size_t{pv} * kSignatureLabelSlots;
  const uint8_t* tc = t.label_counts + size_t{tv} * kSignatureLabelSlots;
  for (uint32_t s = 0; s < kSignatureLabelSlots; ++s) {
    if (tc[s] < pc[s]) return false;
  }
  return true;
}

/// Existence-only cover test: every pattern vertex must have at least one
/// dominating vertex in its target label bucket. False => no embedding of
/// `pattern` in `target` exists (never the reverse).
bool SignatureCoverTest(const Graph& pattern, const SignatureView& psig,
                        const Graph& target, const SignatureView& tsig);

/// Materializes per-pattern-vertex candidate domains (the dominating subset
/// of each label bucket, ascending target ids) into `*out`, reusing its
/// capacity. Returns false — leaving `*out` unusable — when some pattern
/// vertex has an empty domain (the pair is barren; this subsumes
/// SignatureCoverTest). On success, adds the number of bucket entries pruned
/// across all pattern vertices to `*pruned` when non-null.
bool BuildCandidateDomains(const Graph& pattern, const SignatureView& psig,
                           const Graph& target, const SignatureView& tsig,
                           CandidateDomains* out, uint64_t* pruned);

}  // namespace pgsim
