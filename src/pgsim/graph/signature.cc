#include "pgsim/graph/signature.h"

#include <algorithm>

namespace pgsim {

void BuildVertexSignatures(const Graph& g, uint64_t* nbr_bits,
                           uint64_t* hop2_bits, uint32_t* degree,
                           uint8_t* label_counts) {
  const uint32_t n = g.NumVertices();
  // Pass 1: one-hop pair bitmap, degree, saturating per-label counts.
  for (VertexId v = 0; v < n; ++v) {
    uint64_t bits = 0;
    uint8_t* counts = label_counts + size_t{v} * kSignatureLabelSlots;
    std::fill(counts, counts + kSignatureLabelSlots, uint8_t{0});
    for (const AdjEntry& a : g.Neighbors(v)) {
      const LabelId nl = g.VertexLabel(a.neighbor);
      bits |= uint64_t{1} << SignatureBit(nl, g.EdgeLabel(a.edge));
      uint8_t& c = counts[SignatureLabelSlot(nl)];
      if (c != 0xFF) ++c;
    }
    nbr_bits[v] = bits;
    degree[v] = g.Degree(v);
  }
  // Pass 2: length-two walk bitmap — the OR of the neighbors' one-hop
  // bitmaps. Walks may return to v; that holds symmetrically for pattern and
  // target, so dominance stays sound.
  for (VertexId v = 0; v < n; ++v) {
    uint64_t bits = 0;
    for (const AdjEntry& a : g.Neighbors(v)) bits |= nbr_bits[a.neighbor];
    hop2_bits[v] = bits;
  }
}

QuerySignature BuildQuerySignature(const Graph& g) {
  QuerySignature sig;
  const uint32_t n = g.NumVertices();
  sig.num_vertices = n;
  sig.nbr_bits.resize(n);
  sig.hop2_bits.resize(n);
  sig.degree.resize(n);
  sig.label_counts.resize(size_t{n} * kSignatureLabelSlots);
  BuildVertexSignatures(g, sig.nbr_bits.data(), sig.hop2_bits.data(),
                        sig.degree.data(), sig.label_counts.data());
  return sig;
}

bool SignatureCoverTest(const Graph& pattern, const SignatureView& psig,
                        const Graph& target, const SignatureView& tsig) {
  const uint32_t np = pattern.NumVertices();
  if (np > target.NumVertices()) return false;
  for (VertexId pv = 0; pv < np; ++pv) {
    bool found = false;
    for (VertexId tv : target.VerticesWithLabel(pattern.VertexLabel(pv))) {
      if (SignatureDominates(psig, pv, tsig, tv)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool BuildCandidateDomains(const Graph& pattern, const SignatureView& psig,
                           const Graph& target, const SignatureView& tsig,
                           CandidateDomains* out, uint64_t* pruned) {
  const uint32_t np = pattern.NumVertices();
  const uint32_t nt = target.NumVertices();
  if (np > nt) return false;
  out->num_pattern_vertices = np;
  out->num_target_vertices = nt;
  out->offsets.clear();
  out->offsets.reserve(np + 1);
  out->offsets.push_back(0);
  out->verts.clear();
  out->member.assign(size_t{np} * nt, 0);
  uint64_t local_pruned = 0;
  for (VertexId pv = 0; pv < np; ++pv) {
    const size_t seg_begin = out->verts.size();
    uint8_t* row = out->member.data() + size_t{pv} * nt;
    for (VertexId tv : target.VerticesWithLabel(pattern.VertexLabel(pv))) {
      if (SignatureDominates(psig, pv, tsig, tv)) {
        out->verts.push_back(tv);
        row[tv] = 1;
      } else {
        ++local_pruned;
      }
    }
    if (out->verts.size() == seg_begin) return false;  // barren pair
    out->offsets.push_back(static_cast<uint32_t>(out->verts.size()));
  }
  if (pruned != nullptr) *pruned += local_pruned;
  return true;
}

}  // namespace pgsim
