// Canonical forms for small labeled graphs.
//
// The miner and the relaxation generator deduplicate patterns by
// fingerprint-bucket + exact isomorphism check; that is the right trade-off
// on hot paths. This module provides the stronger primitive — a true
// canonical code such that two graphs are isomorphic IFF their codes are
// equal — for persistent pattern identities (index files, cross-run dedup)
// and as an oracle in tests.
//
// The code is the lexicographically smallest row-major serialization of the
// (vertex label, adjacency-with-edge-labels) matrix over all vertex
// orderings, searched with color-refinement pruning: vertices are first
// partitioned by iterated (label, sorted neighborhood signature) colors and
// only orderings consistent with the partition's lexicographic class order
// are explored. Exponential worst case, fast for the small patterns pgsim
// mines (<= ~12 vertices); guarded by a node budget.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"

namespace pgsim {

/// Limits for the canonical search.
struct CanonicalOptions {
  /// Permutation-search node budget; exceeding it errors (callers fall back
  /// to fingerprint + pairwise isomorphism).
  uint64_t max_nodes = 1'000'000;
};

/// Canonical code of `g`: equal codes <=> isomorphic graphs.
Result<std::string> CanonicalCode(const Graph& g,
                                  const CanonicalOptions& options =
                                      CanonicalOptions());

/// The vertex ordering realizing the canonical code (canonical vertex id ->
/// original vertex id), same search as CanonicalCode.
Result<std::vector<VertexId>> CanonicalOrder(const Graph& g,
                                             const CanonicalOptions& options =
                                                 CanonicalOptions());

/// Relabels `g`'s vertices into canonical order: isomorphic graphs map to
/// byte-identical Graph structures.
Result<Graph> Canonicalize(const Graph& g,
                           const CanonicalOptions& options =
                               CanonicalOptions());

/// Byte-exact structural key of `g` AS LABELED: equal keys <=> identical
/// vertex-label sequences and identical (u, v, label) edge lists. Unlike
/// CanonicalCode this is O(|V| + |E|) and distinguishes isomorphic graphs
/// with different vertex orders — the batch query cache pairs the two
/// (canonical code for class identity, exact key to detect true duplicates
/// whose derived artifacts can be reused verbatim).
std::string GraphExactKey(const Graph& g);

}  // namespace pgsim
