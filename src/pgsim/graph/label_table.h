// Label interning.
//
// Vertex and edge labels (e.g. COG functional annotations in PPI networks)
// are interned into dense 32-bit ids shared across a whole database so graph
// algorithms compare integers, never strings.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pgsim/common/status.h"

namespace pgsim {

/// Dense interned label id. Labels are compared by id everywhere.
using LabelId = uint32_t;

/// Sentinel for "no such label".
inline constexpr LabelId kInvalidLabel = 0xFFFFFFFFu;

/// Bidirectional string<->id interning table, shared per database.
class LabelTable {
 public:
  /// Returns the id for `name`, interning it if new.
  LabelId Intern(const std::string& name);

  /// Returns the id for `name`, or kInvalidLabel if never interned.
  LabelId Lookup(const std::string& name) const;

  /// Returns the string for an id. Requires id < size().
  const std::string& Name(LabelId id) const { return names_[id]; }

  /// Number of distinct labels interned.
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> names_;
};

}  // namespace pgsim
