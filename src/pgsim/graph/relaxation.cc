#include "pgsim/graph/relaxation.h"

#include <algorithm>
#include <unordered_map>

#include "pgsim/graph/vf2.h"

namespace pgsim {

uint64_t CountDeletionSets(uint32_t num_edges, uint32_t delta) {
  if (delta > num_edges) return 0;
  delta = std::min(delta, num_edges - delta);
  uint64_t result = 1;
  for (uint32_t i = 1; i <= delta; ++i) {
    const uint64_t numer = num_edges - delta + i;
    // result * numer / i, watching for overflow.
    if (result > UINT64_MAX / numer) return UINT64_MAX;
    result = result * numer / i;
  }
  return result;
}

Result<std::vector<Graph>> GenerateRelaxedQueries(
    const Graph& q, uint32_t delta, const RelaxationOptions& options) {
  std::vector<Graph> result;
  PGSIM_RETURN_NOT_OK(GenerateRelaxedQueriesInto(q, delta, options, &result));
  return result;
}

Status GenerateRelaxedQueriesInto(const Graph& q, uint32_t delta,
                                  const RelaxationOptions& options,
                                  std::vector<Graph>* out) {
  out->clear();
  if (delta >= q.NumEdges()) {
    return Status::InvalidArgument(
        "GenerateRelaxedQueries: delta must be < |E(q)| (got delta=" +
        std::to_string(delta) + ", |E|=" + std::to_string(q.NumEdges()) + ")");
  }
  const uint64_t combos = CountDeletionSets(q.NumEdges(), delta);
  if (combos > options.max_combinations) {
    return Status::OutOfRange(
        "GenerateRelaxedQueries: C(|E|, delta) = " + std::to_string(combos) +
        " exceeds max_combinations = " +
        std::to_string(options.max_combinations));
  }

  const uint32_t m = q.NumEdges();
  std::vector<Graph>& result = *out;
  // fingerprint -> indices into `result`, for isomorphism dedup.
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;

  // Enumerate all delta-subsets of edge ids (the deleted set) in
  // lexicographic order via the classic combination-advance loop.
  std::vector<uint32_t> deleted(delta);
  for (uint32_t i = 0; i < delta; ++i) deleted[i] = i;

  std::vector<EdgeId> kept;
  kept.reserve(m - delta);
  auto emit = [&]() -> Status {
    kept.clear();
    size_t di = 0;
    for (EdgeId e = 0; e < m; ++e) {
      if (di < deleted.size() && deleted[di] == e) {
        ++di;
      } else {
        kept.push_back(e);
      }
    }
    Graph rq = EdgeInducedSubgraph(q, kept);
    const uint64_t fp = GraphFingerprint(rq);
    auto& bucket = buckets[fp];
    for (size_t idx : bucket) {
      if (AreIsomorphic(result[idx], rq)) return Status::OK();  // duplicate
    }
    if (result.size() >= options.max_relaxed_graphs) {
      return Status::ResourceExhausted(
          "GenerateRelaxedQueries: |U| exceeds max_relaxed_graphs");
    }
    bucket.push_back(result.size());
    result.push_back(std::move(rq));
    return Status::OK();
  };

  if (delta == 0) {
    PGSIM_RETURN_NOT_OK(emit());
    return Status::OK();
  }
  for (;;) {
    PGSIM_RETURN_NOT_OK(emit());
    // Advance the combination.
    int i = static_cast<int>(delta) - 1;
    while (i >= 0 && deleted[i] == m - delta + i) --i;
    if (i < 0) break;
    ++deleted[i];
    for (uint32_t j = i + 1; j < delta; ++j) deleted[j] = deleted[j - 1] + 1;
  }
  return Status::OK();
}

}  // namespace pgsim
