// Binary (de)serialization of graphs plus small stream primitives, used by
// the PMI on-disk format and the dataset snapshot files.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// Little-endian fixed-width primitives.
void WriteU32(std::ostream& os, uint32_t v);
void WriteU64(std::ostream& os, uint64_t v);
void WriteDouble(std::ostream& os, double v);
void WriteString(std::ostream& os, const std::string& s);

Result<uint32_t> ReadU32(std::istream& is);
Result<uint64_t> ReadU64(std::istream& is);
Result<double> ReadDouble(std::istream& is);
Result<std::string> ReadString(std::istream& is);

/// Serializes a graph (vertex labels, then normalized edges).
void WriteGraph(std::ostream& os, const Graph& g);

/// Deserializes a graph written by WriteGraph.
Result<Graph> ReadGraph(std::istream& is);

/// Serialized size in bytes of a graph (for index-size accounting).
size_t GraphByteSize(const Graph& g);

/// Serializes a probabilistic graph: certain graph, then each neighbor edge
/// set (edge ids + the raw JPT entries). Entries are written verbatim, so
/// Write → Read reproduces the graph bit-for-bit — the property WAL replay
/// and snapshot recovery rely on.
void WriteProbabilisticGraph(std::ostream& os, const ProbabilisticGraph& g);

/// Deserializes a probabilistic graph written by WriteProbabilisticGraph.
/// Tables are adopted via JointProbTable::FromNormalizedProbs (no
/// renormalization); the ne sets are re-validated by Create.
Result<ProbabilisticGraph> ReadProbabilisticGraph(std::istream& is);

}  // namespace pgsim
