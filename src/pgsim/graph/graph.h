// Deterministic labeled undirected graph (paper Definition 1).
//
// `Graph` is immutable once built: vertices and edges get dense uint32 ids
// and adjacency lives in one flat CSR layout — `adj_offsets_` (n+1 prefix
// sums) indexing into `adj_entries_` (2m entries, sorted by neighbor within
// each vertex's segment). `Neighbors(v)` is a contiguous Span view, so the
// VF2/MCS inner loops scan cache-line-adjacent memory instead of chasing
// per-vertex vector allocations. Lookups like FindEdge are O(log degree).
// All higher layers (VF2, mining, the probabilistic model, PMI) operate on
// this one representation.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/span.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/label_table.h"

namespace pgsim {

/// Dense vertex id within one graph.
using VertexId = uint32_t;
/// Dense edge id within one graph.
using EdgeId = uint32_t;

/// Sentinel for "no such vertex".
inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;
/// Sentinel for "no such edge".
inline constexpr EdgeId kInvalidEdge = 0xFFFFFFFFu;

/// One undirected labeled edge.
struct Edge {
  VertexId u;      ///< Smaller endpoint id (normalized so u < v).
  VertexId v;      ///< Larger endpoint id.
  LabelId label;   ///< Interned edge label.
};

/// (neighbor, connecting edge) entry of an adjacency list.
struct AdjEntry {
  VertexId neighbor;
  EdgeId edge;
};

/// Immutable labeled undirected graph. Build with GraphBuilder.
class Graph {
 public:
  Graph() = default;

  /// Number of vertices.
  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vertex_labels_.size());
  }
  /// Number of edges. Definition 8's |g| is this count.
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  /// Label of vertex `v`.
  LabelId VertexLabel(VertexId v) const { return vertex_labels_[v]; }
  /// Label of edge `e`.
  LabelId EdgeLabel(EdgeId e) const { return edges_[e].label; }
  /// Endpoints (u < v) and label of edge `e`.
  const Edge& GetEdge(EdgeId e) const { return edges_[e]; }

  /// Sorted adjacency of `v`: a contiguous view into the CSR entry array.
  Span<AdjEntry> Neighbors(VertexId v) const {
    return Span<AdjEntry>(adj_entries_.data() + adj_offsets_[v],
                          adj_offsets_[v + 1] - adj_offsets_[v]);
  }
  /// Degree of `v`.
  uint32_t Degree(VertexId v) const {
    return adj_offsets_[v + 1] - adj_offsets_[v];
  }

  /// CSR offset array (size NumVertices()+1, offsets[n] == 2*NumEdges()).
  const std::vector<uint32_t>& AdjOffsets() const { return adj_offsets_; }
  /// CSR entry array (size 2*NumEdges(), segment-sorted by neighbor).
  const std::vector<AdjEntry>& AdjEntries() const { return adj_entries_; }

  /// Vertices carrying label `l`, ascending by id — a contiguous view into
  /// the vertex-by-label CSR index built at construction. The VF2 matcher
  /// iterates this bucket for seed/anchorless positions instead of scanning
  /// all vertices; ascending-id order makes the bucket scan visit exactly
  /// the vertices a full 0..n scan filtered by label would, in the same
  /// order. Unknown labels yield an empty view.
  Span<VertexId> VerticesWithLabel(LabelId l) const;
  /// Number of vertices carrying label `l` (the bucket size).
  uint32_t LabelFrequency(LabelId l) const {
    return static_cast<uint32_t>(VerticesWithLabel(l).size());
  }
  /// Distinct vertex labels present, ascending (the label index's keys).
  const std::vector<LabelId>& DistinctVertexLabels() const {
    return label_keys_;
  }

  /// The edge id between u and v, if present.
  std::optional<EdgeId> FindEdge(VertexId u, VertexId v) const;

  /// All edges, normalized with u < v, in id order.
  const std::vector<Edge>& Edges() const { return edges_; }
  /// All vertex labels, in id order.
  const std::vector<LabelId>& VertexLabels() const { return vertex_labels_; }

  /// True iff the graph is connected (the empty graph counts as connected).
  bool IsConnected() const;

  /// Connected component id per vertex, components numbered from 0.
  std::vector<uint32_t> ConnectedComponents(uint32_t* num_components) const;

  /// Human-readable dump (for logs/tests), one vertex/edge per line.
  std::string DebugString() const;

 private:
  friend class GraphBuilder;
  friend void BuildEdgeSubsetGraph(const Graph& base, const EdgeBitset& present,
                                   Graph* out);

  /// Rebuilds the vertex-by-label CSR index from vertex_labels_ (called by
  /// the builders after the label array is final).
  void BuildLabelIndex();

  std::vector<LabelId> vertex_labels_;
  std::vector<Edge> edges_;
  // CSR adjacency: entries of vertex v live at
  // adj_entries_[adj_offsets_[v] .. adj_offsets_[v+1]), sorted by neighbor.
  // Size NumVertices()+1 always, so the empty graph holds a single 0.
  std::vector<uint32_t> adj_offsets_ = {0};
  std::vector<AdjEntry> adj_entries_;
  // Vertex-by-label CSR: vertices labeled label_keys_[k] live at
  // label_vertices_[label_offsets_[k] .. label_offsets_[k+1]), ascending id;
  // label_keys_ ascends so lookup is a binary search over distinct labels.
  std::vector<LabelId> label_keys_;
  std::vector<uint32_t> label_offsets_ = {0};
  std::vector<VertexId> label_vertices_;
};

/// Incremental builder producing an immutable Graph.
///
/// Rejects self-loops and parallel edges (probabilistic PPI/road graphs are
/// simple graphs; Definition 1 assumes simple undirected graphs).
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a vertex with the given interned label; returns its id.
  VertexId AddVertex(LabelId label);

  /// Adds an undirected edge; endpoints must exist, no self-loops or
  /// duplicates. Returns the new edge id.
  Result<EdgeId> AddEdge(VertexId u, VertexId v, LabelId label);

  /// Number of vertices added so far.
  uint32_t NumVertices() const {
    return static_cast<uint32_t>(vertex_labels_.size());
  }
  /// Number of edges added so far.
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  /// Finalizes: counting-sorts edges into the flat CSR arrays, sorts each
  /// vertex's segment by neighbor, and moves data into an immutable Graph.
  /// The builder is left empty.
  Graph Build();

 private:
  std::vector<LabelId> vertex_labels_;
  std::vector<Edge> edges_;
  // Normalized (u << 32 | v) keys of present edges, for O(1) duplicate
  // rejection in AddEdge without per-vertex adjacency vectors.
  std::unordered_set<uint64_t> edge_keys_;
};

/// Rebuilds `*out` as the possible-world view of `base`: every vertex of
/// `base` plus exactly the edges whose bit is set in `present` (edge ids
/// renumbered densely in base-id order). Reuses `out`'s vector storage, so
/// the world-enumeration hot loop builds 2^|E| graphs with zero steady-state
/// allocation instead of one GraphBuilder per world.
void BuildEdgeSubsetGraph(const Graph& base, const EdgeBitset& present,
                          Graph* out);

/// The subgraph of `g` induced by `edge_ids`: keeps exactly those edges and
/// the vertices they touch (isolated vertices are dropped, consistent with
/// the edge-based subgraph distance of Definition 8).
///
/// If `vertex_map` is non-null it receives old->new vertex ids
/// (kInvalidVertex for dropped vertices).
Graph EdgeInducedSubgraph(const Graph& g, const std::vector<EdgeId>& edge_ids,
                          std::vector<VertexId>* vertex_map = nullptr);

/// A cheap isomorphism-invariant fingerprint: equal graphs hash equal;
/// unequal hashes imply non-isomorphic. Used to bucket candidates before an
/// exact isomorphism check.
uint64_t GraphFingerprint(const Graph& g);

/// Sorted (label, count) multiset summaries of a graph's vertex and edge
/// labels. A monomorphism maps vertices/edges injectively onto equal labels,
/// so pattern ⊆iso target requires the pattern's histogram to be covered by
/// the target's — a cheap sound guard run before VF2 (it can only skip pairs
/// VF2 would reject, never change an answer).
struct LabelHistogram {
  /// Ascending by label; counts are > 0.
  std::vector<std::pair<LabelId, uint32_t>> vertex_labels;
  std::vector<std::pair<LabelId, uint32_t>> edge_labels;
};

/// Fills `*out` with g's histograms (reusing the vectors' capacity).
void BuildLabelHistogram(const Graph& g, LabelHistogram* out);

/// Adds g's vertex-label counts into `*freq` (indexed by LabelId, grown as
/// needed). Callers aggregate a database's frequencies to feed
/// MatchPlanOptions::label_freq — one shared definition so the filter's
/// standalone seeding and the processor's shared plans cannot diverge.
void AccumulateVertexLabelFrequencies(const Graph& g,
                                      std::vector<uint32_t>* freq);

/// True iff every (label, count) of `pattern` is matched by `target` with at
/// least that count, for vertices and edges. False return proves no
/// monomorphism pattern -> target exists.
bool HistogramCoversPattern(const LabelHistogram& target,
                            const LabelHistogram& pattern);

}  // namespace pgsim
