#include "pgsim/graph/label_table.h"

namespace pgsim {

LabelId LabelTable::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  return id;
}

LabelId LabelTable::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidLabel : it->second;
}

}  // namespace pgsim
