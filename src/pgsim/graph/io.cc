#include "pgsim/graph/io.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pgsim {

namespace {

template <typename T>
void WriteRaw(std::ostream& os, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  os.write(buf, sizeof(T));
}

template <typename T>
Result<T> ReadRaw(std::istream& is) {
  char buf[sizeof(T)];
  is.read(buf, sizeof(T));
  if (!is.good() && !is.eof()) {
    return Status::Internal("stream read failed");
  }
  if (is.gcount() != static_cast<std::streamsize>(sizeof(T))) {
    return Status::DataLoss("unexpected end of stream");
  }
  T v;
  std::memcpy(&v, buf, sizeof(T));
  return v;
}

}  // namespace

void WriteU32(std::ostream& os, uint32_t v) { WriteRaw(os, v); }
void WriteU64(std::ostream& os, uint64_t v) { WriteRaw(os, v); }
void WriteDouble(std::ostream& os, double v) { WriteRaw(os, v); }

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Result<uint32_t> ReadU32(std::istream& is) { return ReadRaw<uint32_t>(is); }
Result<uint64_t> ReadU64(std::istream& is) { return ReadRaw<uint64_t>(is); }
Result<double> ReadDouble(std::istream& is) { return ReadRaw<double>(is); }

Result<std::string> ReadString(std::istream& is) {
  PGSIM_ASSIGN_OR_RETURN(const uint32_t n, ReadU32(is));
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (is.gcount() != static_cast<std::streamsize>(n)) {
    return Status::DataLoss("unexpected end of stream in string");
  }
  return s;
}

void WriteGraph(std::ostream& os, const Graph& g) {
  WriteU32(os, g.NumVertices());
  WriteU32(os, g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    WriteU32(os, g.VertexLabel(v));
  }
  for (const Edge& e : g.Edges()) {
    WriteU32(os, e.u);
    WriteU32(os, e.v);
    WriteU32(os, e.label);
  }
}

Result<Graph> ReadGraph(std::istream& is) {
  PGSIM_ASSIGN_OR_RETURN(const uint32_t num_vertices, ReadU32(is));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t num_edges, ReadU32(is));
  GraphBuilder builder;
  for (uint32_t i = 0; i < num_vertices; ++i) {
    PGSIM_ASSIGN_OR_RETURN(const uint32_t label, ReadU32(is));
    builder.AddVertex(label);
  }
  for (uint32_t i = 0; i < num_edges; ++i) {
    PGSIM_ASSIGN_OR_RETURN(const uint32_t u, ReadU32(is));
    PGSIM_ASSIGN_OR_RETURN(const uint32_t v, ReadU32(is));
    PGSIM_ASSIGN_OR_RETURN(const uint32_t label, ReadU32(is));
    auto edge = builder.AddEdge(u, v, label);
    if (!edge.ok()) return edge.status();
  }
  return builder.Build();
}

size_t GraphByteSize(const Graph& g) {
  return 8 + 4 * size_t{g.NumVertices()} + 12 * size_t{g.NumEdges()};
}

void WriteProbabilisticGraph(std::ostream& os, const ProbabilisticGraph& g) {
  WriteGraph(os, g.certain());
  WriteU32(os, static_cast<uint32_t>(g.ne_sets().size()));
  for (const NeighborEdgeSet& ne : g.ne_sets()) {
    WriteU32(os, static_cast<uint32_t>(ne.edges.size()));
    for (EdgeId e : ne.edges) WriteU32(os, e);
    for (double p : ne.table.probs()) WriteDouble(os, p);
  }
}

Result<ProbabilisticGraph> ReadProbabilisticGraph(std::istream& is) {
  PGSIM_ASSIGN_OR_RETURN(Graph certain, ReadGraph(is));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t num_sets, ReadU32(is));
  std::vector<NeighborEdgeSet> ne_sets;
  ne_sets.reserve(num_sets);
  for (uint32_t i = 0; i < num_sets; ++i) {
    NeighborEdgeSet ne;
    PGSIM_ASSIGN_OR_RETURN(const uint32_t num_edges, ReadU32(is));
    if (num_edges > JointProbTable::kMaxArity) {
      return Status::DataLoss("neighbor edge set arity " +
                              std::to_string(num_edges) +
                              " exceeds kMaxArity; stream is corrupt");
    }
    ne.edges.reserve(num_edges);
    for (uint32_t j = 0; j < num_edges; ++j) {
      PGSIM_ASSIGN_OR_RETURN(const uint32_t e, ReadU32(is));
      ne.edges.push_back(e);
    }
    std::vector<double> probs(size_t{1} << num_edges);
    for (double& p : probs) {
      PGSIM_ASSIGN_OR_RETURN(p, ReadDouble(is));
    }
    PGSIM_ASSIGN_OR_RETURN(ne.table,
                           JointProbTable::FromNormalizedProbs(std::move(probs)));
    ne_sets.push_back(std::move(ne));
  }
  return ProbabilisticGraph::Create(std::move(certain), std::move(ne_sets));
}

}  // namespace pgsim
