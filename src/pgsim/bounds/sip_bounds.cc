#include "pgsim/bounds/sip_bounds.h"

#include <algorithm>
#include <cmath>

#include "pgsim/graph/vf2.h"
#include "pgsim/prob/dnf_exact.h"

namespace pgsim {

namespace {

constexpr double kMaxEventProb = 1.0 - 1e-12;

// Disjointness graph fG: link i-j iff the edge sets are disjoint.
std::vector<std::vector<char>> DisjointnessAdjacency(
    const std::vector<EdgeBitset>& sets) {
  const size_t n = sets.size();
  std::vector<std::vector<char>> adj(n, std::vector<char>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (sets[i].DisjointWith(sets[j])) adj[i][j] = adj[j][i] = 1;
    }
  }
  return adj;
}

std::vector<double> CliqueWeights(const std::vector<double>& probs) {
  std::vector<double> weights(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p = std::clamp(probs[i], 0.0, kMaxEventProb);
    weights[i] = -std::log1p(-p);  // -ln(1 - p) >= 0
  }
  return weights;
}

// One group of Algorithm 3 estimates sharing a world pool: each item i is
// conditioned on all items of the same group that *overlap* it (non-disjoint
// edge sets) being false.
struct EstimateGroup {
  std::vector<EdgeEvent> events;
  std::vector<std::vector<char>> adjacent;       // disjointness graph fG
  std::vector<std::vector<uint32_t>> overlaps;   // conditioning lists
  std::vector<uint64_t> n1, n2;

  void Init(const std::vector<EdgeBitset>& sets, bool all_present) {
    events.clear();
    events.reserve(sets.size());
    for (const EdgeBitset& s : sets) events.push_back(EdgeEvent{s, all_present});
    adjacent = DisjointnessAdjacency(sets);
    overlaps.assign(sets.size(), {});
    for (size_t i = 0; i < sets.size(); ++i) {
      for (size_t j = 0; j < sets.size(); ++j) {
        if (i != j && !adjacent[i][j]) overlaps[i].push_back(j);
      }
    }
    n1.assign(sets.size(), 0);
    n2.assign(sets.size(), 0);
  }

  void Observe(const EdgeBitset& world, std::vector<char>* scratch) {
    scratch->resize(events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      (*scratch)[i] = events[i].Holds(world) ? 1 : 0;
    }
    for (size_t i = 0; i < events.size(); ++i) {
      bool clear = true;
      for (uint32_t j : overlaps[i]) {
        if ((*scratch)[j]) {
          clear = false;
          break;
        }
      }
      if (!clear) continue;
      ++n2[i];
      if ((*scratch)[i]) ++n1[i];
    }
  }

  std::vector<double> Estimates() const {
    std::vector<double> out(events.size(), 0.0);
    for (size_t i = 0; i < events.size(); ++i) {
      if (n2[i] > 0) {
        out[i] = static_cast<double>(n1[i]) / static_cast<double>(n2[i]);
      }
    }
    return out;
  }
};

// Per-feature working state within a batch.
struct FeatureWork {
  bool present = false;            // f ⊆iso gc
  EstimateGroup embeddings;        // lower-bound items
  EstimateGroup cuts;              // upper-bound items
  SipBounds bounds;
};

}  // namespace

std::vector<SipBounds> ComputeSipBoundsBatch(
    const ProbabilisticGraph& g, const std::vector<const Graph*>& features,
    const SipBoundOptions& options, Rng* rng,
    const std::vector<const MatchPlan*>* feature_plans) {
  std::vector<FeatureWork> work(features.size());

  // Phase 1: embeddings + cuts per feature (pure graph work, no sampling).
  Vf2Scratch vf2;
  for (size_t fi = 0; fi < features.size(); ++fi) {
    FeatureWork& w = work[fi];
    bool emb_truncated = false;
    const MatchPlan* plan =
        feature_plans != nullptr ? (*feature_plans)[fi] : nullptr;
    MatchPlan local_plan;
    if (plan == nullptr) {
      local_plan = CompileMatchPlan(*features[fi]);
      plan = &local_plan;
    }
    std::vector<EdgeBitset> embeddings =
        EmbeddingEdgeSets(*plan, g.certain(), options.max_cut_embeddings,
                          &emb_truncated, &vf2);
    w.bounds.num_embeddings = static_cast<uint32_t>(embeddings.size());
    w.bounds.embeddings_truncated = emb_truncated;
    if (embeddings.empty()) {
      w.present = false;
      w.bounds.lower_opt = w.bounds.lower_simple = 0.0;
      w.bounds.upper_opt = w.bounds.upper_simple = 0.0;
      continue;
    }
    w.present = true;

    if (emb_truncated) {
      // Cuts from a partial embedding set would be unsound: UpperB stays 1.
      w.bounds.cuts_truncated = true;
    } else {
      bool cuts_truncated = false;
      std::vector<EdgeBitset> cuts = EnumerateMinimalEmbeddingCuts(
          embeddings, g.NumEdges(), options.cuts, &cuts_truncated);
      w.bounds.num_cuts = static_cast<uint32_t>(cuts.size());
      w.bounds.cuts_truncated = cuts_truncated;
      w.cuts.Init(cuts, /*all_present=*/false);
    }

    if (embeddings.size() > options.max_embeddings) {
      embeddings.resize(options.max_embeddings);
    }
    w.embeddings.Init(embeddings, /*all_present=*/true);
  }

  // Phase 2: one shared world pool feeds every Algorithm 3 estimate.
  const uint64_t m = options.mc.NumSamples();
  std::vector<char> scratch;
  bool any_present = false;
  for (const FeatureWork& w : work) any_present |= w.present;
  if (any_present) {
    EdgeBitset world;
    WorldSampleScratch sample_scratch;
    for (uint64_t s = 0; s < m; ++s) {
      g.SampleWorldInto(rng, &sample_scratch, &world);
      for (FeatureWork& w : work) {
        if (!w.present) continue;
        w.embeddings.Observe(world, &scratch);
        if (!w.cuts.events.empty()) w.cuts.Observe(world, &scratch);
      }
    }
  }

  // Phase 3: clique selection per feature.
  std::vector<SipBounds> results;
  results.reserve(work.size());
  for (FeatureWork& w : work) {
    if (!w.present) {
      results.push_back(w.bounds);
      continue;
    }
    {
      const std::vector<double> weights =
          CliqueWeights(w.embeddings.Estimates());
      const MaxCliqueResult opt =
          MaxWeightClique(w.embeddings.adjacent, weights, options.clique);
      const MaxCliqueResult greedy =
          FirstFitClique(w.embeddings.adjacent, weights);
      w.bounds.lower_opt = 1.0 - std::exp(-opt.weight);
      w.bounds.lower_simple = 1.0 - std::exp(-greedy.weight);
    }
    if (!w.cuts.events.empty()) {
      const std::vector<double> weights = CliqueWeights(w.cuts.Estimates());
      const MaxCliqueResult opt =
          MaxWeightClique(w.cuts.adjacent, weights, options.clique);
      const MaxCliqueResult greedy =
          FirstFitClique(w.cuts.adjacent, weights);
      w.bounds.upper_opt = std::exp(-opt.weight);
      w.bounds.upper_simple = std::exp(-greedy.weight);
    }
    // Monte-Carlo noise can invert the estimated bounds; keep them ordered
    // so downstream pruning stays consistent.
    w.bounds.lower_opt = std::min(w.bounds.lower_opt, w.bounds.upper_opt);
    w.bounds.lower_simple =
        std::min(w.bounds.lower_simple, w.bounds.upper_simple);
    results.push_back(w.bounds);
  }
  return results;
}

SipBounds ComputeSipBounds(const ProbabilisticGraph& g, const Graph& feature,
                           const SipBoundOptions& options, Rng* rng) {
  return ComputeSipBoundsBatch(g, {&feature}, options, rng)[0];
}

Result<double> ExactSubgraphIsomorphismProbability(const ProbabilisticGraph& g,
                                                   const Graph& feature,
                                                   size_t max_embeddings) {
  bool truncated = false;
  std::vector<EdgeBitset> embeddings =
      EmbeddingEdgeSets(feature, g.certain(), max_embeddings, &truncated);
  if (truncated) {
    return Status::ResourceExhausted(
        "ExactSubgraphIsomorphismProbability: embedding cap hit");
  }
  if (embeddings.empty()) return 0.0;
  return ExactDnfProbability(g, embeddings);
}

}  // namespace pgsim
