#include "pgsim/bounds/max_clique.h"

#include <algorithm>
#include <numeric>

namespace pgsim {

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const std::vector<std::vector<char>>& adjacent,
                 const std::vector<double>& weights,
                 const MaxCliqueOptions& options)
      : adjacent_(adjacent), weights_(weights), options_(options) {}

  MaxCliqueResult Run() {
    const size_t n = weights_.size();
    std::vector<uint32_t> candidates(n);
    std::iota(candidates.begin(), candidates.end(), 0);
    // Weight-descending order helps both the greedy seed and the bound.
    std::sort(candidates.begin(), candidates.end(),
              [&](uint32_t a, uint32_t b) { return weights_[a] > weights_[b]; });
    best_ = GreedyWeightClique(adjacent_, weights_);
    std::vector<uint32_t> current;
    Expand(candidates, current, 0.0);
    best_.exact = !budget_exhausted_;
    return best_;
  }

 private:
  // Weighted greedy-coloring bound: partition candidates into independent
  // classes; a clique takes at most one node per class, so the bound is the
  // sum of per-class maximum weights.
  double ColoringBound(const std::vector<uint32_t>& candidates) const {
    double bound = 0.0;
    std::vector<std::vector<uint32_t>> classes;
    for (uint32_t v : candidates) {
      bool placed = false;
      for (auto& cls : classes) {
        bool independent = true;
        for (uint32_t u : cls) {
          if (adjacent_[v][u]) {
            independent = false;
            break;
          }
        }
        if (independent) {
          cls.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) classes.push_back({v});
    }
    for (const auto& cls : classes) {
      double class_max = 0.0;
      for (uint32_t v : cls) class_max = std::max(class_max, weights_[v]);
      bound += class_max;
    }
    return bound;
  }

  void Expand(const std::vector<uint32_t>& candidates,
              std::vector<uint32_t>& current, double current_weight) {
    if (budget_exhausted_) return;
    if (++nodes_ > options_.max_bb_nodes) {
      budget_exhausted_ = true;
      return;
    }
    if (candidates.empty()) {
      if (current_weight > best_.weight) {
        best_.weight = current_weight;
        best_.members = current;
      }
      return;
    }
    if (current_weight + ColoringBound(candidates) <= best_.weight) return;

    std::vector<uint32_t> remaining = candidates;
    while (!remaining.empty()) {
      // Residual sum bound (cheaper than recoloring inside the loop).
      double residual = 0.0;
      for (uint32_t v : remaining) residual += weights_[v];
      if (current_weight + residual <= best_.weight) return;

      const uint32_t v = remaining.front();
      remaining.erase(remaining.begin());

      std::vector<uint32_t> next;
      next.reserve(remaining.size());
      for (uint32_t u : remaining) {
        if (adjacent_[v][u]) next.push_back(u);
      }
      current.push_back(v);
      Expand(next, current, current_weight + weights_[v]);
      current.pop_back();
      if (budget_exhausted_) return;
    }
  }

  const std::vector<std::vector<char>>& adjacent_;
  const std::vector<double>& weights_;
  const MaxCliqueOptions& options_;
  MaxCliqueResult best_;
  uint64_t nodes_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

MaxCliqueResult GreedyWeightClique(
    const std::vector<std::vector<char>>& adjacent,
    const std::vector<double>& weights) {
  const size_t n = weights.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return weights[a] > weights[b]; });
  MaxCliqueResult result;
  result.exact = false;
  for (uint32_t v : order) {
    bool compatible = true;
    for (uint32_t u : result.members) {
      if (!adjacent[v][u]) {
        compatible = false;
        break;
      }
    }
    if (compatible) {
      result.members.push_back(v);
      result.weight += weights[v];
    }
  }
  return result;
}

MaxCliqueResult FirstFitClique(const std::vector<std::vector<char>>& adjacent,
                               const std::vector<double>& weights) {
  MaxCliqueResult result;
  result.exact = false;
  for (uint32_t v = 0; v < weights.size(); ++v) {
    bool compatible = true;
    for (uint32_t u : result.members) {
      if (!adjacent[v][u]) {
        compatible = false;
        break;
      }
    }
    if (compatible) {
      result.members.push_back(v);
      result.weight += weights[v];
    }
  }
  return result;
}

MaxCliqueResult MaxWeightClique(const std::vector<std::vector<char>>& adjacent,
                                const std::vector<double>& weights,
                                const MaxCliqueOptions& options) {
  if (weights.empty()) return MaxCliqueResult{};
  if (weights.size() > options.exact_node_limit) {
    return GreedyWeightClique(adjacent, weights);
  }
  BranchAndBound solver(adjacent, weights, options);
  return solver.Run();
}

}  // namespace pgsim
