// Embedding cuts (paper Section 4.1.2, Theorem 6, Example 7).
//
// An embedding cut of feature f in gc is an edge set whose removal destroys
// every embedding of f; minimal cuts are exactly the minimal transversals
// (hitting sets) of the hypergraph whose hyperedges are the embeddings' edge
// sets. The enumeration engine here is a minimal-hitting-set search; the
// paper's parallel-graph construction cG (Theorem 6) is also provided and the
// equivalence of the two is exercised by tests.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"

namespace pgsim {

/// Caps for the minimal-cut enumeration.
struct CutEnumOptions {
  /// Stop after this many minimal cuts.
  size_t max_cuts = 32;
  /// Ignore cuts with more edges than this (a subset of all minimal cuts
  /// still yields a valid upper bound — Pr(no cut in the subset realized)
  /// only grows as cuts are dropped).
  size_t max_cut_size = 5;
  /// Search-node budget.
  uint64_t max_nodes = 20'000;
};

/// Enumerates (a subset of) the minimal embedding cuts of the hypergraph
/// given by `embeddings` (bitsets over [0, num_edges)). Every returned set
/// intersects every embedding and is minimal with that property. Sets
/// `truncated` when a cap stopped the enumeration.
std::vector<EdgeBitset> EnumerateMinimalEmbeddingCuts(
    const std::vector<EdgeBitset>& embeddings, size_t num_edges,
    const CutEnumOptions& options, bool* truncated = nullptr);

/// The parallel graph cG of Theorem 6 / Figure 8: one s->t line per
/// embedding whose internal edges carry the original edge ids as labels.
struct ParallelGraph {
  /// Node 0 is s, node 1 is t.
  struct PEdge {
    uint32_t a;
    uint32_t b;
    EdgeId label;  ///< original gc edge id; kInvalidEdge for s/t connectors.
  };
  uint32_t num_nodes = 2;
  std::vector<PEdge> edges;
};

/// Builds cG from embedding edge lists (each embedding's edges in any fixed
/// order, as in the paper's random labeling).
ParallelGraph BuildParallelGraph(const std::vector<EdgeBitset>& embeddings);

/// Reference implementation of Theorem 6: enumerates minimal s-t cuts of cG
/// expressed as sets of original edge ids (removing an id removes *all* cG
/// edges carrying it; connector edges are never removable). Exponential in
/// the number of distinct labels — used by tests and examples to validate
/// the hitting-set engine, not on hot paths.
std::vector<EdgeBitset> EnumerateParallelGraphCuts(const ParallelGraph& cg,
                                                   size_t num_edges,
                                                   size_t max_cut_size);

}  // namespace pgsim
