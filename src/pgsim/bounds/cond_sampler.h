// Algorithm 3: Monte-Carlo estimation of Pr(Bfi | COR).
//
// Events are conjunctions over one edge set: an *embedding event* is true
// when all of its edges are present in a sampled world; a *cut event* is true
// when all of its edges are absent (the cut "exists", destroying every
// embedding). The estimator samples possible worlds and returns
//
//   n1/n2 = #(target true ∧ all conditioning events false)
//           / #(all conditioning events false),
//
// the paper's estimate of Pr(target | conditioning events all false). The
// sample count follows the Monte-Carlo bound m = (4 ln(2/ξ)) / τ² cited from
// [26].

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// A conjunction event over one edge subset.
struct EdgeEvent {
  EdgeBitset edges;
  /// true: event holds when all edges are present (embedding Bf).
  /// false: event holds when all edges are absent (cut Bc).
  bool all_present = true;

  /// Evaluates the event on a sampled world.
  bool Holds(const EdgeBitset& world) const {
    return all_present ? world.ContainsAll(edges)
                       : !world.Intersects(edges);
  }
};

/// Accuracy knobs for every Monte-Carlo routine in the library
/// (Algorithm 3 here, Algorithm 5 in the verifier).
struct MonteCarloParams {
  double xi = 0.1;    ///< Confidence parameter ξ in (0, 1).
  double tau = 0.1;   ///< Accuracy parameter τ > 0.
  uint64_t min_samples = 200;
  uint64_t max_samples = 500'000;

  /// m = (4 ln(2/ξ)) / τ², clamped to [min_samples, max_samples].
  uint64_t NumSamples() const;
};

/// Reusable buffers for EstimateConditionalProbability: the sampled-world
/// bitset plus the clique-tree temporaries behind it. Not concurrency-safe.
struct CondSamplerScratch {
  EdgeBitset world;
  WorldSampleScratch sample;
};

/// Algorithm 3. Estimates Pr(target | all `conditioning` events false) by
/// sampling `params.NumSamples()` worlds of `g`. Returns 0 when the
/// conditioning event was never observed (conservative for both bound
/// directions: a zero estimate only loosens the bounds).
double EstimateConditionalProbability(const ProbabilisticGraph& g,
                                      const EdgeEvent& target,
                                      const std::vector<EdgeEvent>& conditioning,
                                      const MonteCarloParams& params, Rng* rng);

/// As above, drawing every temporary from `*scratch` so repeated calls
/// (bound estimation loops, verification) perform no steady-state heap
/// allocation. Identical estimates for identical RNG state.
double EstimateConditionalProbability(const ProbabilisticGraph& g,
                                      const EdgeEvent& target,
                                      const std::vector<EdgeEvent>& conditioning,
                                      const MonteCarloParams& params, Rng* rng,
                                      CondSamplerScratch* scratch);

}  // namespace pgsim
