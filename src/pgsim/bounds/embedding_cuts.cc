#include "pgsim/bounds/embedding_cuts.h"

#include <algorithm>

namespace pgsim {

namespace {

// Recursive minimal-hitting-set enumeration. At each node: pick an un-hit
// embedding, branch on each of its edges; edges tried earlier at the same
// node are excluded from later branches (classic duplicate-avoidance).
// Minimality is guaranteed by requiring every chosen edge to keep a
// "private" embedding that no other chosen edge hits.
class HittingSetEnumerator {
 public:
  HittingSetEnumerator(const std::vector<EdgeBitset>& embeddings,
                       size_t num_edges, const CutEnumOptions& options)
      : embeddings_(embeddings), num_edges_(num_edges), options_(options) {}

  std::vector<EdgeBitset> Run(bool* truncated) {
    chosen_.clear();
    EdgeBitset excluded(num_edges_);
    Recurse(excluded);
    if (truncated != nullptr) *truncated = truncated_;
    return results_;
  }

 private:
  // True iff every chosen edge hits at least one embedding that no other
  // chosen edge hits (i.e., the current partial set is irredundant).
  bool Irredundant() const {
    for (size_t i = 0; i < chosen_.size(); ++i) {
      bool has_private = false;
      for (const EdgeBitset& emb : embeddings_) {
        if (!emb.Test(chosen_[i])) continue;
        bool hit_by_other = false;
        for (size_t j = 0; j < chosen_.size() && !hit_by_other; ++j) {
          if (j != i && emb.Test(chosen_[j])) hit_by_other = true;
        }
        if (!hit_by_other) {
          has_private = true;
          break;
        }
      }
      if (!has_private) return false;
    }
    return true;
  }

  void Recurse(const EdgeBitset& excluded) {
    if (truncated_) return;
    if (++nodes_ > options_.max_nodes) {
      truncated_ = true;
      return;
    }
    // Find an embedding not hit by the current choice, preferring the one
    // with the fewest branchable edges.
    const EdgeBitset* pick = nullptr;
    size_t pick_branches = SIZE_MAX;
    for (const EdgeBitset& emb : embeddings_) {
      bool hit = false;
      for (uint32_t e : chosen_) {
        if (emb.Test(e)) {
          hit = true;
          break;
        }
      }
      if (hit) continue;
      EdgeBitset branchable = emb;
      branchable.Subtract(excluded);
      const size_t count = branchable.Count();
      if (count == 0) return;  // dead branch: cannot hit this embedding
      if (count < pick_branches) {
        pick_branches = count;
        pick = &emb;
      }
    }
    if (pick == nullptr) {
      // Everything hit: chosen_ is a hitting set; emit if irredundant.
      if (Irredundant()) {
        results_.push_back(
            EdgeBitset::FromIndices(num_edges_, chosen_));
        if (results_.size() >= options_.max_cuts) truncated_ = true;
      }
      return;
    }
    if (chosen_.size() >= options_.max_cut_size) return;  // too large

    EdgeBitset branchable = *pick;
    branchable.Subtract(excluded);
    EdgeBitset local_excluded = excluded;
    for (uint32_t e : branchable.ToVector()) {
      chosen_.push_back(e);
      // Quick irredundancy precheck keeps the tree small.
      if (Irredundant()) Recurse(local_excluded);
      chosen_.pop_back();
      if (truncated_) return;
      local_excluded.Set(e);
    }
  }

  const std::vector<EdgeBitset>& embeddings_;
  const size_t num_edges_;
  const CutEnumOptions& options_;
  std::vector<uint32_t> chosen_;
  std::vector<EdgeBitset> results_;
  uint64_t nodes_ = 0;
  bool truncated_ = false;
};

}  // namespace

std::vector<EdgeBitset> EnumerateMinimalEmbeddingCuts(
    const std::vector<EdgeBitset>& embeddings, size_t num_edges,
    const CutEnumOptions& options, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  if (embeddings.empty()) return {};  // nothing to cut
  for (const EdgeBitset& emb : embeddings) {
    if (emb.Empty()) return {};  // an empty embedding can never be destroyed
  }
  HittingSetEnumerator enumerator(embeddings, num_edges, options);
  return enumerator.Run(truncated);
}

ParallelGraph BuildParallelGraph(const std::vector<EdgeBitset>& embeddings) {
  ParallelGraph cg;
  cg.num_nodes = 2;  // s = 0, t = 1
  for (const EdgeBitset& emb : embeddings) {
    const std::vector<uint32_t> edges = emb.ToVector();
    // Line: s - n1 - n2 - ... - nk - t with k = |edges| internal hops.
    uint32_t prev = 0;  // s
    for (size_t i = 0; i < edges.size(); ++i) {
      const uint32_t node = cg.num_nodes++;
      cg.edges.push_back({prev, node,
                          i == 0 ? kInvalidEdge : edges[i - 1]});
      prev = node;
    }
    // Last labeled edge, then connector to t.
    if (!edges.empty()) {
      const uint32_t node = cg.num_nodes++;
      cg.edges.push_back({prev, node, edges.back()});
      cg.edges.push_back({node, 1, kInvalidEdge});
    }
  }
  return cg;
}

namespace {

bool StillConnected(const ParallelGraph& cg, const EdgeBitset& removed) {
  std::vector<char> seen(cg.num_nodes, 0);
  std::vector<uint32_t> stack{0};
  seen[0] = 1;
  std::vector<std::vector<uint32_t>> adj(cg.num_nodes);
  for (size_t i = 0; i < cg.edges.size(); ++i) {
    const auto& e = cg.edges[i];
    if (e.label != kInvalidEdge && removed.Test(e.label)) continue;
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    if (v == 1) return true;
    for (uint32_t nb : adj[v]) {
      if (!seen[nb]) {
        seen[nb] = 1;
        stack.push_back(nb);
      }
    }
  }
  return false;
}

}  // namespace

std::vector<EdgeBitset> EnumerateParallelGraphCuts(const ParallelGraph& cg,
                                                   size_t num_edges,
                                                   size_t max_cut_size) {
  // Labels actually used in cG.
  std::vector<uint32_t> labels;
  {
    EdgeBitset used(num_edges);
    for (const auto& e : cg.edges) {
      if (e.label != kInvalidEdge) used.Set(e.label);
    }
    labels = used.ToVector();
  }
  std::vector<EdgeBitset> cuts;
  // Brute force over label subsets in increasing size: a subset is a minimal
  // cut iff it disconnects s from t and no already-found cut is contained
  // in it (size ordering makes subset-pruning == minimality).
  std::vector<uint32_t> subset;
  const size_t n = labels.size();
  auto enumerate = [&](auto&& self, size_t start, size_t remaining) -> void {
    if (remaining == 0) {
      EdgeBitset candidate(num_edges);
      for (uint32_t idx : subset) candidate.Set(labels[idx]);
      for (const EdgeBitset& c : cuts) {
        if (candidate.ContainsAll(c)) return;  // superset of a smaller cut
      }
      if (!StillConnected(cg, candidate)) cuts.push_back(candidate);
      return;
    }
    for (size_t i = start; i + remaining <= n; ++i) {
      subset.push_back(static_cast<uint32_t>(i));
      self(self, i + 1, remaining - 1);
      subset.pop_back();
    }
  };
  for (size_t size = 1; size <= std::min(max_cut_size, n); ++size) {
    enumerate(enumerate, 0, size);
  }
  return cuts;
}

}  // namespace pgsim
