#include "pgsim/bounds/cond_sampler.h"

#include <algorithm>
#include <cmath>

namespace pgsim {

uint64_t MonteCarloParams::NumSamples() const {
  const double xi_safe = std::clamp(xi, 1e-9, 0.999999);
  const double tau_safe = std::max(tau, 1e-6);
  const double m = 4.0 * std::log(2.0 / xi_safe) / (tau_safe * tau_safe);
  const uint64_t rounded =
      m >= static_cast<double>(max_samples)
          ? max_samples
          : static_cast<uint64_t>(std::llround(std::ceil(m)));
  return std::clamp(rounded, min_samples, max_samples);
}

double EstimateConditionalProbability(
    const ProbabilisticGraph& g, const EdgeEvent& target,
    const std::vector<EdgeEvent>& conditioning, const MonteCarloParams& params,
    Rng* rng) {
  CondSamplerScratch scratch;
  return EstimateConditionalProbability(g, target, conditioning, params, rng,
                                        &scratch);
}

double EstimateConditionalProbability(
    const ProbabilisticGraph& g, const EdgeEvent& target,
    const std::vector<EdgeEvent>& conditioning, const MonteCarloParams& params,
    Rng* rng, CondSamplerScratch* scratch) {
  const uint64_t m = params.NumSamples();
  uint64_t n1 = 0, n2 = 0;
  EdgeBitset& world = scratch->world;
  for (uint64_t i = 0; i < m; ++i) {
    g.SampleWorldInto(rng, &scratch->sample, &world);
    bool conditioning_clear = true;
    for (const EdgeEvent& ev : conditioning) {
      if (ev.Holds(world)) {
        conditioning_clear = false;
        break;
      }
    }
    if (!conditioning_clear) continue;
    ++n2;
    if (target.Holds(world)) ++n1;
  }
  if (n2 == 0) return 0.0;
  return static_cast<double>(n1) / static_cast<double>(n2);
}

}  // namespace pgsim
