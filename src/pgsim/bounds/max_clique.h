// Maximum-weight clique (paper Section 4.1, reference [7] Balas–Xue).
//
// The tightest SIP bounds reduce to max-weight clique on the "disjointness
// graph" fG: nodes are embeddings (or cuts), links join pairwise-disjoint
// ones, node weights are -ln(1 - Pr(Bfi|COR)). This solver is an exact
// branch-and-bound with a weighted greedy-coloring upper bound, falling back
// to a greedy heuristic beyond a size cap.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/status.h"

namespace pgsim {

/// Search knobs.
struct MaxCliqueOptions {
  /// Run the exact branch-and-bound up to this many nodes; larger inputs use
  /// the greedy heuristic (still a valid clique => still a valid bound).
  size_t exact_node_limit = 64;
  /// Branch-and-bound search-node budget; on exhaustion the best clique so
  /// far is returned.
  uint64_t max_bb_nodes = 5'000'000;
};

/// A clique and its total weight.
struct MaxCliqueResult {
  std::vector<uint32_t> members;
  double weight = 0.0;
  bool exact = true;  ///< false when the heuristic/budget path was taken
};

/// Finds a maximum-weight clique of the graph given by a symmetric adjacency
/// matrix (adjacent[i][j] != 0) and non-negative node weights.
MaxCliqueResult MaxWeightClique(const std::vector<std::vector<char>>& adjacent,
                                const std::vector<double>& weights,
                                const MaxCliqueOptions& options =
                                    MaxCliqueOptions());

/// Greedy heuristic clique (weight-descending insertion); seeds the
/// branch-and-bound and serves as the over-limit fallback.
MaxCliqueResult GreedyWeightClique(const std::vector<std::vector<char>>& adjacent,
                                   const std::vector<double>& weights);

/// First-fit clique in index order: the *unoptimized* disjoint family used
/// by the SIPBound (non-OPT) variant of the experiments (Figure 11) — a
/// valid clique with no tightness optimization at all.
MaxCliqueResult FirstFitClique(const std::vector<std::vector<char>>& adjacent,
                               const std::vector<double>& weights);

}  // namespace pgsim
