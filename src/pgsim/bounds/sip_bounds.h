// Lower and upper bounds of the Subgraph Isomorphism Probability
// (paper Section 4.1, Equations 10–20).
//
// For a feature f and probabilistic graph g:
//   LowerB(f) = 1 - prod_{i in IN} (1 - Pr(Bfi | COR_i))   over a family IN
//               of pairwise edge-disjoint embeddings (Eq. 17);
//   UpperB(f) = prod_{i in IN'} (1 - Pr(Bci | COM_i))      over a family IN'
//               of pairwise edge-disjoint minimal embedding cuts (Eq. 20).
//
// Pr(.|.) terms come from the Algorithm 3 sampler; the *tightest* family is
// the max-weight clique of the disjointness graph fG with node weights
// -ln(1 - p) (Section 4.1 "Obtain Tightest Lower Bound"). The non-OPT
// variants of the experiments (SIPBound in Figure 11) use a greedy clique
// instead — both are computed here side by side.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/bounds/cond_sampler.h"
#include "pgsim/bounds/embedding_cuts.h"
#include "pgsim/bounds/max_clique.h"
#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// Knobs for the SIP bound computation.
struct SipBoundOptions {
  /// Cap on embeddings used for the *lower* bound (a subset only loosens it).
  size_t max_embeddings = 48;
  /// Cap on embeddings enumerated to build cuts. The cut construction needs
  /// the FULL embedding set to stay sound; if this cap is hit the upper
  /// bound falls back to 1.
  size_t max_cut_embeddings = 512;
  /// Minimal-cut enumeration caps (a subset of cuts stays sound).
  CutEnumOptions cuts;
  /// Algorithm 3 sampling accuracy.
  MonteCarloParams mc;
  /// Max-weight-clique solver knobs.
  MaxCliqueOptions clique;
};

/// Bounds of Pr(f ⊆iso g), in both tightest (OPT) and greedy flavors.
struct SipBounds {
  double lower_opt = 0.0;     ///< Eq. 17 with max-weight-clique IN.
  double upper_opt = 1.0;     ///< Eq. 20 with max-weight-clique IN'.
  double lower_simple = 0.0;  ///< Eq. 17 with greedy IN (SIPBound variant).
  double upper_simple = 1.0;  ///< Eq. 20 with greedy IN'.
  uint32_t num_embeddings = 0;
  uint32_t num_cuts = 0;
  bool embeddings_truncated = false;
  bool cuts_truncated = false;
};

/// Computes SIP bounds of `feature` against `g`. A feature with no embedding
/// in gc has SIP = 0 and returns all-zero bounds.
SipBounds ComputeSipBounds(const ProbabilisticGraph& g, const Graph& feature,
                           const SipBoundOptions& options, Rng* rng);

/// Computes SIP bounds for many features against one graph, sharing a single
/// Monte-Carlo world pool across all Algorithm 3 estimates (the PMI builder's
/// hot path: identical estimates, ~|features| times fewer sampled worlds).
///
/// `feature_plans`, when non-null, supplies one compiled MatchPlan per entry
/// of `features` (the PMI passes its build-once feature plans); null entries
/// or a null vector fall back to compiling per call. Plans must be
/// default-seeded so the embedding enumeration order — which the bound
/// families depend on — matches the per-call compilation exactly.
std::vector<SipBounds> ComputeSipBoundsBatch(
    const ProbabilisticGraph& g, const std::vector<const Graph*>& features,
    const SipBoundOptions& options, Rng* rng,
    const std::vector<const MatchPlan*>* feature_plans = nullptr);

/// Exact Pr(f ⊆iso g) (Definition 6 / Equation 10) via the exact DNF engine;
/// exponential worst case — ground truth for tests and the Exact baseline.
Result<double> ExactSubgraphIsomorphismProbability(const ProbabilisticGraph& g,
                                                   const Graph& feature,
                                                   size_t max_embeddings = 4096);

}  // namespace pgsim
