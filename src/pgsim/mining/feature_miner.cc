#include "pgsim/mining/feature_miner.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "pgsim/common/thread_pool.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/signature.h"
#include "pgsim/graph/vf2.h"

namespace pgsim {

size_t GreedyDisjointCount(const std::vector<EdgeBitset>& embeddings) {
  std::vector<EdgeBitset> chosen;
  for (const EdgeBitset& e : embeddings) {
    bool disjoint = true;
    for (const EdgeBitset& c : chosen) {
      if (e.Intersects(c)) {
        disjoint = false;
        break;
      }
    }
    if (disjoint) chosen.push_back(e);
  }
  return chosen.size();
}

namespace {

struct Candidate {
  Graph graph;
  uint64_t fingerprint = 0;
  // Indices into the database that *might* support it (parent's support).
  std::vector<uint32_t> parent_support;
};

// Dedup helper: fingerprint buckets + exact isomorphism.
class PatternPool {
 public:
  // Returns true if the pattern was new.
  bool Insert(const Graph& g, uint64_t fp) {
    auto& bucket = buckets_[fp];
    for (const Graph* existing : bucket) {
      if (AreIsomorphic(*existing, g)) return false;
    }
    owned_.push_back(std::make_unique<Graph>(g));
    bucket.push_back(owned_.back().get());
    return true;
  }

 private:
  std::unordered_map<uint64_t, std::vector<const Graph*>> buckets_;
  std::vector<std::unique_ptr<Graph>> owned_;
};

// Builds `base` plus one extra edge. `anchor_map` maps base vertices to data
// vertices of `data`; the new edge is (data_u, data_v) where data_u is the
// image of base vertex `bu`, and data_v either maps back to base vertex `bv`
// (closing edge, bv != kInvalidVertex) or is a fresh vertex with label
// `new_label`.
Graph ExtendPattern(const Graph& base, VertexId bu, VertexId bv,
                    LabelId new_vertex_label, LabelId edge_label) {
  GraphBuilder builder;
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    builder.AddVertex(base.VertexLabel(v));
  }
  for (EdgeId e = 0; e < base.NumEdges(); ++e) {
    const Edge& edge = base.GetEdge(e);
    auto r = builder.AddEdge(edge.u, edge.v, edge.label);
    (void)r;
  }
  if (bv == kInvalidVertex) {
    const VertexId fresh = builder.AddVertex(new_vertex_label);
    auto r = builder.AddEdge(bu, fresh, edge_label);
    (void)r;
  } else {
    auto r = builder.AddEdge(bu, bv, edge_label);
    (void)r;
  }
  return builder.Build();
}

}  // namespace

Result<FeatureSet> MineFeatures(const std::vector<Graph>& database,
                                const FeatureMinerOptions& options) {
  if (database.empty()) {
    return Status::InvalidArgument("MineFeatures: empty database");
  }
  if (options.max_vertices < 2) {
    return Status::InvalidArgument("MineFeatures: max_vertices must be >= 2");
  }
  WallTimer timer;
  FeatureSet out;

  // ---- Level 1: all distinct single-edge patterns, kept unconditionally
  // (Algorithm 4 lines 1-4). ----
  struct EdgePatternKey {
    LabelId lu, lv, le;  // lu <= lv
    bool operator==(const EdgePatternKey& o) const {
      return lu == o.lu && lv == o.lv && le == o.le;
    }
  };
  struct EdgePatternKeyHash {
    size_t operator()(const EdgePatternKey& k) const {
      return (size_t{k.lu} * 1315423911u) ^ (size_t{k.lv} * 2654435761u) ^
             k.le;
    }
  };
  std::unordered_map<EdgePatternKey, std::vector<uint32_t>, EdgePatternKeyHash>
      edge_patterns;
  for (uint32_t gi = 0; gi < database.size(); ++gi) {
    std::unordered_set<size_t> seen_in_graph;
    for (const Edge& e : database[gi].Edges()) {
      LabelId lu = database[gi].VertexLabel(e.u);
      LabelId lv = database[gi].VertexLabel(e.v);
      if (lu > lv) std::swap(lu, lv);
      const EdgePatternKey key{lu, lv, e.label};
      const size_t h = EdgePatternKeyHash{}(key);
      if (!seen_in_graph.insert(h).second) continue;
      edge_patterns[key].push_back(gi);
    }
  }
  for (auto& [key, support] : edge_patterns) {
    GraphBuilder builder;
    const VertexId a = builder.AddVertex(key.lu);
    const VertexId b = builder.AddVertex(key.lv);
    auto r = builder.AddEdge(a, b, key.le);
    (void)r;
    Feature f;
    f.graph = builder.Build();
    std::sort(support.begin(), support.end());
    f.support = std::move(support);
    f.frequency =
        static_cast<double>(f.support.size()) / database.size();
    f.discriminative = 1.0;
    f.level = 1;
    out.features.push_back(std::move(f));
  }
  // Deterministic order regardless of hash iteration.
  std::sort(out.features.begin(), out.features.end(),
            [](const Feature& a, const Feature& b) {
              const Graph &ga = a.graph, &gb = b.graph;
              if (ga.VertexLabel(0) != gb.VertexLabel(0)) {
                return ga.VertexLabel(0) < gb.VertexLabel(0);
              }
              if (ga.VertexLabel(1) != gb.VertexLabel(1)) {
                return ga.VertexLabel(1) < gb.VertexLabel(1);
              }
              return ga.EdgeLabel(0) < gb.EdgeLabel(0);
            });

  // ---- Levels 2+: pattern growth by one edge. ----
  // `frontier` holds pointers into `out.features`; reserve enough capacity
  // up front that no push_back below ever reallocates.
  out.features.reserve(out.features.size() + options.max_features_total + 1);
  std::vector<const Feature*> frontier;
  for (const Feature& f : out.features) frontier.push_back(&f);

  // Compiled match plans parallel to out.features, extended as levels land:
  // Phase B's subfeature tests reuse them across every candidate instead of
  // recompiling per (prior, candidate) pair. Default (max-degree) seeds keep
  // the enumeration order — and thus the mined feature set — bit-identical
  // to the reference engine.
  std::vector<MatchPlan> feature_plans;
  feature_plans.reserve(out.features.capacity());
  for (const Feature& f : out.features) {
    feature_plans.push_back(CompileMatchPlan(f.graph));
  }

  // Signature gate inputs: one per-vertex signature set per database graph
  // (built once, reused by every candidate's support scan) and one per
  // accepted feature (pattern side of the subfeature containment tests).
  // Cover-test failures prove zero embeddings, so gated skips cannot change
  // the mined set — they only shrink isomorphism_tests.
  std::vector<QuerySignature> db_sigs;
  std::vector<QuerySignature> feature_sigs;
  if (options.use_signatures) {
    db_sigs.resize(database.size());
    for (size_t gi = 0; gi < database.size(); ++gi) {
      db_sigs[gi] = BuildQuerySignature(database[gi]);
    }
    feature_sigs.reserve(out.features.capacity());
    for (const Feature& f : out.features) {
      feature_sigs.push_back(BuildQuerySignature(f.graph));
    }
  }

  Vf2Options emb_options;
  emb_options.max_embeddings = options.max_growth_embeddings;
  emb_options.dedup_by_edge_set = true;

  // Worker resolution: each level fans its per-parent enumeration and
  // per-candidate scoring across the pool and merges slots in input order,
  // so the mined feature set is bit-identical at every thread count.
  const ScopedPool scoped_pool(options.num_threads, options.pool);
  ThreadPool* workers = scoped_pool.get();

  for (uint32_t level = 2; !frontier.empty(); ++level) {
    if (out.features.size() >= options.max_features_total) break;

    // Phase A: parents enumerate their extension candidates independently
    // (dedup within the parent; its slot is all it writes), in fixed-size
    // waves. Waves bound peak memory — at most kParentWave parents hold
    // un-merged candidate lists — and let enumeration stop at the level cap
    // with at most one wave of overshoot, while staying thread-count
    // independent: the wave size is a constant, and the cap decision is
    // taken only at wave boundaries after an in-order merge.
    struct ParentCandidates {
      std::vector<Candidate> candidates;
      uint64_t embeddings_examined = 0;
    };
    constexpr size_t kParentWave = 32;
    std::vector<Candidate> candidates;
    PatternPool level_pool;
    for (size_t wave_begin = 0;
         wave_begin < frontier.size() &&
         candidates.size() < options.max_candidates_per_level;
         wave_begin += kParentWave) {
      const size_t wave_size =
          std::min(kParentWave, frontier.size() - wave_begin);
      std::vector<ParentCandidates> per_parent(wave_size);
      ForEachIndex(workers, wave_size, 1, [&](size_t wi) {
        const Feature* parent = frontier[wave_begin + wi];
        ParentCandidates& slot = per_parent[wi];
        PatternPool parent_pool;
        const Graph& pg = parent->graph;
        // One plan + scratch per parent, reused across its support graphs.
        const MatchPlan parent_plan = CompileMatchPlan(pg);
        Vf2Scratch vf2;
        size_t graphs_used = 0;
        for (uint32_t gi : parent->support) {
          if (graphs_used++ >= options.max_growth_graphs) break;
          const Graph& data = database[gi];
          EnumerateEmbeddings(
              parent_plan, data, emb_options, &vf2,
              [&](const Embedding& emb) {
                ++slot.embeddings_examined;
                // Reverse map: data vertex -> pattern vertex.
                std::unordered_map<VertexId, VertexId> reverse;
                for (VertexId pv = 0; pv < pg.NumVertices(); ++pv) {
                  reverse[emb.vertex_map[pv]] = pv;
                }
                std::unordered_set<EdgeId> used_edges(emb.edge_map.begin(),
                                                      emb.edge_map.end());
                for (VertexId pv = 0; pv < pg.NumVertices(); ++pv) {
                  const VertexId dv = emb.vertex_map[pv];
                  for (const AdjEntry& a : data.Neighbors(dv)) {
                    if (used_edges.count(a.edge)) continue;
                    const auto it = reverse.find(a.neighbor);
                    Graph extended;
                    if (it != reverse.end()) {
                      // Closing edge between two mapped vertices; skip if the
                      // pattern already has it (shouldn't: edge not used).
                      if (pv > it->second) continue;  // emit once per pair
                      if (pg.FindEdge(std::min(pv, it->second),
                                      std::max(pv, it->second))
                              .has_value()) {
                        continue;
                      }
                      extended = ExtendPattern(pg, pv, it->second, 0,
                                               data.EdgeLabel(a.edge));
                    } else {
                      if (pg.NumVertices() + 1 > options.max_vertices) continue;
                      extended = ExtendPattern(
                          pg, pv, kInvalidVertex,
                          data.VertexLabel(a.neighbor), data.EdgeLabel(a.edge));
                    }
                    const uint64_t fp = GraphFingerprint(extended);
                    if (parent_pool.Insert(extended, fp)) {
                      Candidate cand;
                      cand.graph = std::move(extended);
                      cand.fingerprint = fp;
                      cand.parent_support = parent->support;
                      slot.candidates.push_back(std::move(cand));
                    }
                  }
                }
                return slot.candidates.size() <
                       options.max_candidates_per_level;
              });
          if (slot.candidates.size() >= options.max_candidates_per_level) {
            break;
          }
        }
      });

      // Merge the wave in parent order with cross-parent dedup and the
      // level cap: the candidate sequence matches what one thread
      // enumerating parent-by-parent would produce.
      for (ParentCandidates& slot : per_parent) {
        out.candidates_examined += slot.embeddings_examined;
        for (Candidate& cand : slot.candidates) {
          if (candidates.size() >= options.max_candidates_per_level) break;
          if (level_pool.Insert(cand.graph, cand.fingerprint)) {
            candidates.push_back(std::move(cand));
          }
        }
      }
    }
    if (candidates.empty()) break;

    // Phase B: score every candidate — support with the alpha disjointness
    // rule, frequency, discriminative score — in parallel. out.features only
    // holds *previous* levels during this phase, so reads are stable.
    struct ScoredCandidate {
      bool pass = false;
      Feature feature;
      uint64_t isomorphism_tests = 0;
    };
    std::vector<ScoredCandidate> scored(candidates.size());
    ForEachIndex(workers, candidates.size(), 1, [&](size_t ci) {
      Candidate& cand = candidates[ci];
      ScoredCandidate& slot = scored[ci];
      // One plan per candidate, reused across its whole parent support (and
      // one scratch for every enumeration/test this candidate runs).
      const MatchPlan cand_plan = CompileMatchPlan(cand.graph);
      const QuerySignature cand_sig =
          options.use_signatures ? BuildQuerySignature(cand.graph)
                                 : QuerySignature{};
      Vf2Scratch vf2;
      // Support and alpha-qualified support.
      std::vector<uint32_t> support;
      size_t alpha_qualified = 0;
      for (uint32_t gi : cand.parent_support) {
        if (options.use_signatures &&
            !SignatureCoverTest(cand.graph, cand_sig.view(), database[gi],
                                db_sigs[gi].view())) {
          continue;  // provably zero embeddings: skip the (uncounted) VF2
        }
        ++slot.isomorphism_tests;
        bool truncated = false;
        const std::vector<EdgeBitset> embeddings =
            EmbeddingEdgeSets(cand_plan, database[gi],
                              options.max_embeddings_per_graph, &truncated,
                              &vf2);
        if (embeddings.empty()) continue;
        support.push_back(gi);
        const size_t disjoint = GreedyDisjointCount(embeddings);
        if (static_cast<double>(disjoint) / embeddings.size() >=
            options.alpha) {
          ++alpha_qualified;
        }
      }
      const double frq =
          static_cast<double>(alpha_qualified) / database.size();
      if (frq < options.beta) return;

      // dis(f): 1 - |Df| / |∩ Df'| over proper subfeatures already in F.
      size_t intersection_size = database.size();
      {
        std::vector<uint32_t> intersection;
        bool first = true;
        for (size_t pi = 0; pi < out.features.size(); ++pi) {
          const Feature& prior = out.features[pi];
          if (prior.graph.NumEdges() >= cand.graph.NumEdges()) continue;
          if (options.use_signatures &&
              !SignatureCoverTest(prior.graph, feature_sigs[pi].view(),
                                  cand.graph, cand_sig.view())) {
            continue;  // cover fail ⟹ prior ⊄ cand: same branch, no VF2
          }
          ++slot.isomorphism_tests;
          if (!IsSubgraphIsomorphic(feature_plans[pi], cand.graph, &vf2)) {
            continue;
          }
          if (first) {
            intersection = prior.support;
            first = false;
          } else {
            std::vector<uint32_t> merged;
            std::set_intersection(intersection.begin(), intersection.end(),
                                  prior.support.begin(), prior.support.end(),
                                  std::back_inserter(merged));
            intersection = std::move(merged);
          }
          if (intersection.empty()) break;
        }
        if (!first) intersection_size = intersection.size();
      }
      const double dis =
          intersection_size == 0
              ? 1.0
              : 1.0 - static_cast<double>(support.size()) / intersection_size;
      if (dis <= options.gamma) return;

      slot.feature.graph = std::move(cand.graph);
      slot.feature.support = std::move(support);
      slot.feature.frequency = frq;
      slot.feature.discriminative = dis;
      slot.feature.level = slot.feature.graph.NumEdges();
      slot.pass = true;
    });

    std::vector<Feature> accepted;
    for (ScoredCandidate& slot : scored) {
      out.isomorphism_tests += slot.isomorphism_tests;
      if (!slot.pass) continue;
      if (out.features.size() + accepted.size() >=
          options.max_features_total) {
        continue;  // budget spent; keep draining counters deterministically
      }
      accepted.push_back(std::move(slot.feature));
    }

    // Beam: keep the most frequent features of this level.
    std::stable_sort(accepted.begin(), accepted.end(),
                     [](const Feature& a, const Feature& b) {
                       return a.frequency > b.frequency;
                     });
    if (accepted.size() > options.max_features_per_level) {
      accepted.resize(options.max_features_per_level);
    }

    frontier.clear();
    for (Feature& f : accepted) {
      out.features.push_back(std::move(f));
      frontier.push_back(&out.features.back());
      feature_plans.push_back(CompileMatchPlan(out.features.back().graph));
      if (options.use_signatures) {
        feature_sigs.push_back(BuildQuerySignature(out.features.back().graph));
      }
    }
  }

  out.mining_seconds = timer.Seconds();
  return out;
}

}  // namespace pgsim
