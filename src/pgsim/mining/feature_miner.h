// Feature generation (paper Algorithm 4, Section 4.2).
//
// Features are small deterministic graphs mined from the certain database
// Dc. Selection follows the paper's two rules — prefer features with many
// pairwise-disjoint embeddings (Rule 1) and small size (Rule 2) — through
// three thresholds:
//
//   frq(f)  = |{g : f ⊆iso gc and |IN|/|Ef| >= alpha}| / |D|  >= beta,
//             where IN is a maximal disjoint embedding family and Ef all
//             embeddings of f in gc;
//   dis(f)  computed from support-list intersections of f's subfeatures
//             (gIndex-style). Note: the paper's printed formula
//             |∩Df'|/|Df| is identically >= 1 (Df ⊆ ∩Df'), which cannot be
//             thresholded by gamma in (0, 1); we implement the evidently
//             intended quantity dis(f) = 1 - |Df| / |∩{Df' : f' ⊂iso f}| —
//             the fraction of subfeature-supporting graphs that f prunes —
//             which is in [0, 1) and shrinks the index as gamma grows,
//             matching Figure 12(d).
//
// Growth is pattern-extension from actual occurrences (an edge adjacent to
// an embedding, or an edge closing a cycle inside one), levelled by edge
// count, capped by maxL vertices. All single-edge features are retained
// unconditionally (Algorithm 4 lines 1–4); they also guarantee that every
// non-empty relaxed query can be covered in the set-cover step.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"

namespace pgsim {

class ThreadPool;

/// Mining thresholds and caps. Defaults mirror the paper's defaults
/// (alpha = beta = gamma = 0.15) at laptop scale.
struct FeatureMinerOptions {
  double alpha = 0.15;        ///< min disjoint-embedding ratio |IN|/|Ef|.
  double beta = 0.15;         ///< min frequency frq(f).
  double gamma = 0.15;        ///< min discriminative score dis(f).
  uint32_t max_vertices = 6;  ///< maxL: feature size cap in vertices.
  /// Embedding-enumeration cap per (feature, graph) when computing |Ef|.
  size_t max_embeddings_per_graph = 64;
  /// Candidate patterns examined per level (growth beam).
  size_t max_candidates_per_level = 4000;
  /// Features kept per level after filtering.
  size_t max_features_per_level = 200;
  /// Total feature budget.
  size_t max_features_total = 600;
  /// Supporting graphs sampled per feature when generating extensions.
  size_t max_growth_graphs = 24;
  /// Embeddings sampled per supporting graph when generating extensions.
  size_t max_growth_embeddings = 8;
  /// Worker threads for candidate enumeration and per-candidate evaluation;
  /// 0 means ThreadPool::DefaultThreads(), 1 runs fully inline. The mined
  /// feature set is bit-identical at every thread count: parallel phases fan
  /// out per-parent / per-candidate work items and merge them in input order.
  uint32_t num_threads = 0;
  /// Caller-owned pool (not owned; must outlive the call). Overrides
  /// num_threads; PMI::Build threads its build pool through here.
  ThreadPool* pool = nullptr;
  /// Run the signature cover test before each containment VF2 call (support
  /// counting and subfeature tests). The test is sound — a failure proves
  /// zero embeddings — so the mined feature set is bit-identical either way;
  /// only `isomorphism_tests` (work actually done) shrinks.
  bool use_signatures = true;
};

/// One mined feature: its graph and support list Df (indices into Dc).
struct Feature {
  Graph graph;
  std::vector<uint32_t> support;  ///< sorted graph indices with f ⊆iso gc.
  double frequency = 0.0;         ///< frq(f).
  double discriminative = 1.0;    ///< dis(f).
  uint32_t level = 1;             ///< edge count at mining time.
};

/// The mined feature set F plus mining statistics.
struct FeatureSet {
  std::vector<Feature> features;
  uint64_t candidates_examined = 0;
  uint64_t isomorphism_tests = 0;
  double mining_seconds = 0.0;
};

/// Mines F from the certain database Dc (Algorithm 4).
Result<FeatureSet> MineFeatures(const std::vector<Graph>& database,
                                const FeatureMinerOptions& options =
                                    FeatureMinerOptions());

/// Size of a maximal pairwise-edge-disjoint embedding family chosen greedily
/// from `embeddings` (the |IN| of Rule 1). Exposed for tests.
size_t GreedyDisjointCount(const std::vector<EdgeBitset>& embeddings);

}  // namespace pgsim
