// Joint probability tables (paper Definition 2, Figure 1).
//
// A JPT assigns a probability to each 0/1 assignment of the edges of one
// neighbor-edge set. Assignments are encoded as bitmasks: bit j is the
// existence indicator of the j-th edge of the set. Tables are dense
// (arity <= kMaxArity) and normalized.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/random.h"
#include "pgsim/common/status.h"

namespace pgsim {

/// Dense joint distribution over up to kMaxArity binary edge variables.
class JointProbTable {
 public:
  /// Largest supported neighbor-edge-set size (tables are 2^arity doubles).
  static constexpr uint32_t kMaxArity = 16;

  JointProbTable() = default;

  /// Builds a table from non-negative weights (size must be a power of two,
  /// 2^arity with arity <= kMaxArity); weights are normalized to sum to 1.
  static Result<JointProbTable> FromWeights(std::vector<double> weights);

  /// Adopts an already-normalized table verbatim — same validation as
  /// FromWeights but NO renormalizing division, so the entries round-trip
  /// bit-for-bit. This is the deserialization constructor: WAL replay and
  /// snapshot loads must reproduce the exact doubles they persisted, and
  /// `w /= total` would perturb the last ulp. Requires the sum to be within
  /// 1e-6 of 1.
  static Result<JointProbTable> FromNormalizedProbs(std::vector<double> probs);

  /// The independent-edges table: Pr(mask) = prod p_i^{b_i} (1-p_i)^{1-b_i}.
  /// Used for the IND baseline model of the experiments (Figure 14).
  static Result<JointProbTable> Independent(
      const std::vector<double>& edge_probs);

  /// Number of edge variables.
  uint32_t arity() const { return arity_; }

  /// Pr(assignment == mask).
  double Prob(uint32_t mask) const { return probs_[mask]; }

  /// Pr(all edges whose bits are set in `subset_mask` are present).
  double MarginalAllPresent(uint32_t subset_mask) const;

  /// Pr(assignment agrees with `value_mask` on the bits of `care_mask`).
  double Marginal(uint32_t care_mask, uint32_t value_mask) const;

  /// Samples an assignment mask from the table.
  uint32_t Sample(Rng* rng) const;

  /// Samples an assignment agreeing with `value_mask` on `care_mask` bits
  /// (conditional distribution). Fails if the condition has zero mass.
  Result<uint32_t> SampleConditioned(Rng* rng, uint32_t care_mask,
                                     uint32_t value_mask) const;

  /// Sum of all entries (1.0 up to rounding for a valid table).
  double TotalMass() const;

  /// Raw table access (size 2^arity).
  const std::vector<double>& probs() const { return probs_; }

 private:
  uint32_t arity_ = 0;
  std::vector<double> probs_;
};

}  // namespace pgsim
