#include "pgsim/prob/clique_tree.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_set>

namespace pgsim {

namespace {

// Union-find for Kruskal.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

size_t SharedCount(const std::vector<uint32_t>& a,
                   const std::vector<uint32_t>& b) {
  size_t n = 0;
  for (uint32_t x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) ++n;
  }
  return n;
}

}  // namespace

Result<CliqueTree> CliqueTree::Build(uint32_t num_vars,
                                     std::vector<CliqueFactor> factors) {
  CliqueTree tree;
  tree.num_vars_ = num_vars;
  tree.nodes_.reserve(factors.size());

  std::vector<char> covered(num_vars, 0);
  for (auto& f : factors) {
    std::unordered_set<uint32_t> dedup(f.vars.begin(), f.vars.end());
    if (dedup.size() != f.vars.size()) {
      return Status::InvalidArgument("CliqueTree: factor has duplicate vars");
    }
    if (f.table.arity() != f.vars.size()) {
      return Status::InvalidArgument(
          "CliqueTree: table arity != number of factor variables");
    }
    for (uint32_t v : f.vars) {
      if (v >= num_vars) {
        return Status::InvalidArgument("CliqueTree: variable id out of range");
      }
      covered[v] = 1;
    }
    Node node;
    node.vars = std::move(f.vars);
    node.table = std::move(f.table);
    tree.nodes_.push_back(std::move(node));
  }
  for (uint32_t v = 0; v < num_vars; ++v) {
    if (!covered[v]) {
      return Status::InvalidArgument("CliqueTree: variable " +
                                     std::to_string(v) +
                                     " is not covered by any factor");
    }
  }

  // Max-weight spanning forest over shared-variable counts (Kruskal).
  const size_t n = tree.nodes_.size();
  struct Candidate {
    size_t a, b, weight;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const size_t w = SharedCount(tree.nodes_[i].vars, tree.nodes_[j].vars);
      if (w > 0) candidates.push_back({i, j, w});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.weight > y.weight;
                   });
  DisjointSets dsu(n);
  std::vector<std::vector<uint32_t>> tree_adj(n);
  for (const Candidate& c : candidates) {
    if (dsu.Union(c.a, c.b)) {
      tree_adj[c.a].push_back(static_cast<uint32_t>(c.b));
      tree_adj[c.b].push_back(static_cast<uint32_t>(c.a));
    }
  }

  // Root each component; record parents and a parents-first order.
  std::vector<char> visited(n, 0);
  for (size_t s = 0; s < n; ++s) {
    if (visited[s]) continue;
    visited[s] = 1;
    tree.roots_.push_back(static_cast<uint32_t>(s));
    tree.topo_order_.push_back(static_cast<uint32_t>(s));
    for (size_t head = tree.topo_order_.size() - 1;
         head < tree.topo_order_.size(); ++head) {
      const uint32_t v = tree.topo_order_[head];
      for (uint32_t nb : tree_adj[v]) {
        if (visited[nb]) continue;
        visited[nb] = 1;
        tree.nodes_[nb].parent = static_cast<int>(v);
        tree.nodes_[v].children.push_back(nb);
        tree.topo_order_.push_back(nb);
      }
    }
  }

  // Separator bit positions.
  for (size_t i = 0; i < n; ++i) {
    Node& node = tree.nodes_[i];
    if (node.parent >= 0) {
      const Node& parent = tree.nodes_[node.parent];
      for (uint32_t pos = 0; pos < node.vars.size(); ++pos) {
        if (std::find(parent.vars.begin(), parent.vars.end(),
                      node.vars[pos]) != parent.vars.end()) {
          node.sep_positions.push_back(pos);
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    Node& node = tree.nodes_[i];
    node.child_sep_positions.resize(node.children.size());
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      const Node& child = tree.nodes_[node.children[ci]];
      for (uint32_t cpos : child.sep_positions) {
        const uint32_t var = child.vars[cpos];
        const auto it = std::find(node.vars.begin(), node.vars.end(), var);
        node.child_sep_positions[ci].push_back(
            static_cast<uint32_t>(it - node.vars.begin()));
      }
    }
  }

  // Running-intersection property: the cliques containing each variable must
  // form a connected subtree of the spanning forest.
  for (uint32_t v = 0; v < num_vars; ++v) {
    std::vector<uint32_t> holders;
    for (uint32_t i = 0; i < n; ++i) {
      if (std::find(tree.nodes_[i].vars.begin(), tree.nodes_[i].vars.end(),
                    v) != tree.nodes_[i].vars.end()) {
        holders.push_back(i);
      }
    }
    if (holders.size() <= 1) continue;
    std::unordered_set<uint32_t> holder_set(holders.begin(), holders.end());
    std::vector<uint32_t> stack{holders[0]};
    std::unordered_set<uint32_t> reached{holders[0]};
    while (!stack.empty()) {
      const uint32_t x = stack.back();
      stack.pop_back();
      for (uint32_t nb : tree_adj[x]) {
        if (holder_set.count(nb) && !reached.count(nb)) {
          reached.insert(nb);
          stack.push_back(nb);
        }
      }
    }
    if (reached.size() != holders.size()) {
      return Status::InvalidArgument(
          "CliqueTree: factors violate the running-intersection property "
          "(variable " +
          std::to_string(v) + ")");
    }
  }

  EdgeBitset empty(num_vars);
  tree.z_ = tree.Partition(empty, empty);
  if (tree.z_ <= 0.0) {
    return Status::InvalidArgument(
        "CliqueTree: partition function is zero (all-zero factors?)");
  }
  return tree;
}

double CliqueTree::NodeWeight(
    uint32_t i, uint32_t mask, const std::vector<std::vector<double>>& messages,
    const EdgeBitset& care, const EdgeBitset& value) const {
  const Node& node = nodes_[i];
  // Evidence consistency.
  for (uint32_t pos = 0; pos < node.vars.size(); ++pos) {
    const uint32_t var = node.vars[pos];
    if (care.size() != 0 && care.Test(var)) {
      const bool want = value.Test(var);
      const bool got = (mask >> pos) & 1U;
      if (want != got) return 0.0;
    }
  }
  double w = node.table.Prob(mask);
  for (size_t ci = 0; ci < node.children.size() && w > 0.0; ++ci) {
    uint32_t sep_mask = 0;
    const auto& positions = node.child_sep_positions[ci];
    for (size_t b = 0; b < positions.size(); ++b) {
      if ((mask >> positions[b]) & 1U) sep_mask |= (1U << b);
    }
    w *= messages[node.children[ci]][sep_mask];
  }
  return w;
}

double CliqueTree::UpwardPass(
    const EdgeBitset& care, const EdgeBitset& value,
    std::vector<std::vector<double>>* messages) const {
  // resize (not assign) so a reused scratch keeps each inner vector's
  // capacity; per-node msg.assign below zeroes exactly what is read.
  messages->resize(nodes_.size());
  // Children before parents.
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const uint32_t i = *it;
    const Node& node = nodes_[i];
    if (node.parent < 0) continue;
    auto& msg = (*messages)[i];
    msg.assign(1ULL << node.sep_positions.size(), 0.0);
    const uint32_t table_size = 1U << node.vars.size();
    for (uint32_t mask = 0; mask < table_size; ++mask) {
      const double w = NodeWeight(i, mask, *messages, care, value);
      if (w == 0.0) continue;
      uint32_t sep_mask = 0;
      for (size_t b = 0; b < node.sep_positions.size(); ++b) {
        if ((mask >> node.sep_positions[b]) & 1U) sep_mask |= (1U << b);
      }
      msg[sep_mask] += w;
    }
  }
  double z = 1.0;
  for (uint32_t root : roots_) {
    double component = 0.0;
    const uint32_t table_size = 1U << nodes_[root].vars.size();
    for (uint32_t mask = 0; mask < table_size; ++mask) {
      component += NodeWeight(root, mask, *messages, care, value);
    }
    z *= component;
  }
  return z;
}

double CliqueTree::Partition(const EdgeBitset& care,
                             const EdgeBitset& value) const {
  std::vector<std::vector<double>> messages;
  return UpwardPass(care, value, &messages);
}

double CliqueTree::Partition(const EdgeBitset& care, const EdgeBitset& value,
                             CliqueTreeScratch* scratch) const {
  return UpwardPass(care, value, &scratch->messages);
}

double CliqueTree::WorldWeight(const EdgeBitset& world) const {
  double w = 1.0;
  for (const Node& node : nodes_) {
    uint32_t mask = 0;
    for (uint32_t pos = 0; pos < node.vars.size(); ++pos) {
      if (world.Test(node.vars[pos])) mask |= (1U << pos);
    }
    w *= node.table.Prob(mask);
    if (w == 0.0) break;
  }
  return w;
}

Result<EdgeBitset> CliqueTree::SampleConditioned(Rng* rng,
                                                 const EdgeBitset& care,
                                                 const EdgeBitset& value) const {
  CliqueTreeScratch scratch;
  EdgeBitset world;
  PGSIM_RETURN_NOT_OK(SampleConditionedInto(rng, care, value, &scratch,
                                            &world));
  return world;
}

Status CliqueTree::SampleConditionedInto(Rng* rng, const EdgeBitset& care,
                                         const EdgeBitset& value,
                                         CliqueTreeScratch* scratch,
                                         EdgeBitset* out) const {
  const double z = UpwardPass(care, value, &scratch->messages);
  if (z <= 0.0) {
    return Status::FailedPrecondition(
        "CliqueTree::SampleConditioned: evidence has zero probability");
  }
  const auto& messages = scratch->messages;

  out->ResetTo(num_vars_);
  EdgeBitset& world = *out;
  EdgeBitset& assigned = scratch->assigned;
  assigned.ResetTo(num_vars_);
  // Parents first: the separator assignment of a child is fixed by the time
  // the child is sampled (forward-filter backward-sample).
  std::vector<double>& weights = scratch->weights;
  for (uint32_t i : topo_order_) {
    const Node& node = nodes_[i];
    const uint32_t table_size = 1U << node.vars.size();
    weights.assign(table_size, 0.0);
    double total = 0.0;
    for (uint32_t mask = 0; mask < table_size; ++mask) {
      // Consistency with variables already assigned (the separator with the
      // parent, plus any overlap handled transitively through RIP).
      bool consistent = true;
      for (uint32_t pos = 0; pos < node.vars.size() && consistent; ++pos) {
        const uint32_t var = node.vars[pos];
        if (assigned.Test(var) &&
            world.Test(var) != (((mask >> pos) & 1U) != 0)) {
          consistent = false;
        }
      }
      if (!consistent) continue;
      const double w = NodeWeight(i, mask, messages, care, value);
      weights[mask] = w;
      total += w;
    }
    if (total <= 0.0) {
      return Status::Internal(
          "CliqueTree::SampleConditioned: zero conditional mass mid-descent");
    }
    double target = rng->UniformDouble() * total;
    uint32_t chosen = table_size - 1;
    for (uint32_t mask = 0; mask < table_size; ++mask) {
      if (weights[mask] <= 0.0) continue;
      target -= weights[mask];
      if (target < 0.0) {
        chosen = mask;
        break;
      }
    }
    for (uint32_t pos = 0; pos < node.vars.size(); ++pos) {
      const uint32_t var = node.vars[pos];
      world.Assign(var, (chosen >> pos) & 1U);
      assigned.Set(var);
    }
  }
  return Status::OK();
}

EdgeBitset CliqueTree::Sample(Rng* rng) const {
  EdgeBitset empty(num_vars_);
  auto result = SampleConditioned(rng, empty, empty);
  // Unconditioned sampling cannot fail (Z > 0 is validated at Build).
  return std::move(result).value();
}

void CliqueTree::SampleInto(Rng* rng, CliqueTreeScratch* scratch,
                            EdgeBitset* world) const {
  // A size-0 care set means "no evidence" (NodeWeight checks care.size()
  // before testing bits), so no per-call evidence bitsets are needed.
  static const EdgeBitset kNoEvidence;
  const Status s =
      SampleConditionedInto(rng, kNoEvidence, kNoEvidence, scratch, world);
  (void)s;  // cannot fail: Z > 0 is validated at Build
}

}  // namespace pgsim
