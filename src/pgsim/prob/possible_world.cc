#include "pgsim/prob/possible_world.h"

#include <string>

namespace pgsim {

Status EnumerateWorlds(
    const ProbabilisticGraph& g,
    const std::function<bool(const EdgeBitset&, double)>& callback,
    const WorldEnumOptions& options) {
  const uint32_t m = g.NumEdges();
  if (m > options.max_edges) {
    return Status::OutOfRange(
        "EnumerateWorlds: graph has " + std::to_string(m) +
        " edges, above the 2^" + std::to_string(options.max_edges) +
        " world enumeration guard");
  }
  const uint64_t num_worlds = 1ULL << m;
  for (uint64_t mask = 0; mask < num_worlds; ++mask) {
    EdgeBitset world(m);
    for (uint32_t e = 0; e < m; ++e) {
      if ((mask >> e) & 1ULL) world.Set(e);
    }
    const double p = g.WorldProbability(world);
    if (options.skip_zero_probability && p == 0.0) continue;
    if (!callback(world, p)) break;
  }
  return Status::OK();
}

Result<double> TotalWorldProbability(const ProbabilisticGraph& g,
                                     const WorldEnumOptions& options) {
  double total = 0.0;
  WorldEnumOptions opts = options;
  opts.skip_zero_probability = false;
  PGSIM_RETURN_NOT_OK(EnumerateWorlds(
      g,
      [&](const EdgeBitset&, double p) {
        total += p;
        return true;
      },
      opts));
  return total;
}

}  // namespace pgsim
