// Exact probability of a monotone DNF of edge-existence events.
//
// Both the subgraph isomorphism probability (Equation 10: SIP =
// Pr(Bf1 ∨ ... ∨ Bf|Ef|), each Bfi = "embedding i's edges all present") and
// the subgraph similarity probability (Equation 22) are probabilities of a
// disjunction of all-present conjunctions. Computing them is #P-complete
// (Theorem 2); this module is the exact (exponential worst case) evaluator
// used as ground truth and as the paper's "Exact" baseline.
//
// Two engines:
//   * Partition model: recursion over ne groups with memoization on the set
//     of still-alive terms — prunes aggressively, handles the paper-scale
//     graphs used in tests/benches.
//   * Any model: Shannon expansion on edge variables, branching with exact
//     conditional probabilities from the clique tree.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/status.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// Limits for the exact evaluators.
struct DnfExactOptions {
  /// Term budget for the memoized partition-model engine (it packs the
  /// alive-term set into 64 bits, so values above 64 are clamped). Beyond
  /// it, evaluation falls back to the Shannon engine (no term cap).
  size_t max_terms = 64;
  /// Node budget for the Shannon-expansion engine; exceeding it errors —
  /// the practical manifestation of Theorem 2's #P-hardness.
  uint64_t max_shannon_nodes = 2'000'000;
};

/// Exact Pr( OR_t [all edges of terms[t] present] ) under g's joint.
/// Terms are bitsets over g's edge ids. An empty term list yields 0; an
/// empty term (no edges) yields 1.
Result<double> ExactDnfProbability(
    const ProbabilisticGraph& g, const std::vector<EdgeBitset>& terms,
    const DnfExactOptions& options = DnfExactOptions());

/// Removes terms that are supersets of other terms (they are absorbed by the
/// disjunction) and duplicate terms. Exposed for tests.
std::vector<EdgeBitset> AbsorbDnfTerms(std::vector<EdgeBitset> terms);

}  // namespace pgsim
