#include "pgsim/prob/dnf_exact.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

namespace pgsim {

std::vector<EdgeBitset> AbsorbDnfTerms(std::vector<EdgeBitset> terms) {
  // Sort by population count: a superset can only absorb into something
  // smaller or equal, so scanning smaller terms first suffices. Equal
  // counts break by content so the output — and every downstream
  // floating-point accumulation order — is a pure function of the term
  // *set*, independent of the order the caller collected it in.
  std::sort(terms.begin(), terms.end(),
            [](const EdgeBitset& a, const EdgeBitset& b) {
              const size_t ca = a.Count(), cb = b.Count();
              if (ca != cb) return ca < cb;
              return a.words() < b.words();
            });
  std::vector<EdgeBitset> kept;
  for (const EdgeBitset& t : terms) {
    bool absorbed = false;
    for (const EdgeBitset& k : kept) {
      if (t.ContainsAll(k)) {  // t ⊇ k: t is implied by k's event
        absorbed = true;
        break;
      }
    }
    if (!absorbed) kept.push_back(t);
  }
  return kept;
}

namespace {

// Partition-model engine: process ne groups in order; a term dies when a
// group assignment misses one of its edges, and is satisfied once its last
// group has been assigned with all of its edges present. Memoized on
// (group index, alive-term mask).
class PartitionDnfSolver {
 public:
  PartitionDnfSolver(const ProbabilisticGraph& g,
                     const std::vector<EdgeBitset>& terms)
      : g_(g), terms_(terms) {
    const auto& ne_sets = g.ne_sets();
    term_last_group_.assign(terms.size(), 0);
    term_group_masks_.assign(
        terms.size(), std::vector<uint32_t>(ne_sets.size(), 0));
    for (size_t t = 0; t < terms.size(); ++t) {
      for (size_t gi = 0; gi < ne_sets.size(); ++gi) {
        uint32_t mask = 0;
        const auto& edges = ne_sets[gi].edges;
        for (size_t j = 0; j < edges.size(); ++j) {
          if (terms[t].Test(edges[j])) mask |= (1U << j);
        }
        term_group_masks_[t][gi] = mask;
        if (mask != 0) term_last_group_[t] = static_cast<uint32_t>(gi);
      }
    }
  }

  double Solve() {
    const uint64_t all_alive =
        terms_.size() == 64 ? ~0ULL : ((1ULL << terms_.size()) - 1);
    return Recurse(0, all_alive);
  }

 private:
  double Recurse(uint32_t group, uint64_t alive) {
    if (alive == 0) return 0.0;
    if (group == g_.ne_sets().size()) return 0.0;
    const auto key = std::make_pair(group, alive);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    const NeighborEdgeSet& ne = g_.ne_sets()[group];
    const uint32_t table_size = 1U << ne.edges.size();
    double total = 0.0;
    for (uint32_t assignment = 0; assignment < table_size; ++assignment) {
      const double p = ne.table.Prob(assignment);
      if (p == 0.0) continue;
      uint64_t next_alive = alive;
      bool satisfied = false;
      for (uint64_t rest = alive; rest != 0; rest &= rest - 1) {
        const int t = __builtin_ctzll(rest);
        const uint32_t need = term_group_masks_[t][group];
        if (need == 0) continue;
        if ((assignment & need) != need) {
          next_alive &= ~(1ULL << t);  // an edge is absent: term dies
        } else if (term_last_group_[t] == group) {
          satisfied = true;  // all groups of t processed, all edges present
          break;
        }
      }
      total += satisfied ? p : p * Recurse(group + 1, next_alive);
    }
    memo_.emplace(key, total);
    return total;
  }

  const ProbabilisticGraph& g_;
  const std::vector<EdgeBitset>& terms_;
  std::vector<uint32_t> term_last_group_;
  // term_group_masks_[t][gi]: bits (in group gi's local order) of term t's
  // edges inside group gi.
  std::vector<std::vector<uint32_t>> term_group_masks_;
  std::map<std::pair<uint32_t, uint64_t>, double> memo_;
};

// Any-model engine: Shannon expansion on edge variables with exact branch
// probabilities from the joint.
class ShannonDnfSolver {
 public:
  ShannonDnfSolver(const ProbabilisticGraph& g,
                   const std::vector<EdgeBitset>& terms, uint64_t max_nodes)
      : g_(g), terms_(terms), max_nodes_(max_nodes) {}

  Result<double> Solve() {
    std::vector<char> alive(terms_.size(), 1);
    EdgeBitset care(g_.NumEdges());
    EdgeBitset value(g_.NumEdges());
    const double p = Recurse(&alive, &care, &value, 1.0);
    if (exhausted_) {
      return Status::ResourceExhausted(
          "ExactDnfProbability: Shannon node budget exceeded");
    }
    return p;
  }

 private:
  // Returns Pr(DNF | current partial assignment). `prefix_prob` is the
  // probability of the partial assignment itself (used only for pruning).
  double Recurse(std::vector<char>* alive, EdgeBitset* care, EdgeBitset* value,
                 double prefix_prob) {
    if (exhausted_ || prefix_prob <= 0.0) return 0.0;
    if (++nodes_ > max_nodes_) {
      exhausted_ = true;
      return 0.0;
    }
    // Terminal checks + pick the branch edge: the most frequent unassigned
    // edge over alive terms.
    std::vector<uint32_t> edge_count(g_.NumEdges(), 0);
    bool any_alive = false;
    EdgeId branch_edge = kInvalidEdge;
    uint32_t best_count = 0;
    for (size_t t = 0; t < terms_.size(); ++t) {
      if (!(*alive)[t]) continue;
      bool fully_assigned_present = true;
      for (uint32_t e : terms_[t].ToVector()) {
        if (!care->Test(e)) {
          fully_assigned_present = false;
          if (++edge_count[e] > best_count) {
            best_count = edge_count[e];
            branch_edge = e;
          }
        }
      }
      if (fully_assigned_present) return 1.0;  // term satisfied
      any_alive = true;
    }
    if (!any_alive) return 0.0;

    // Branch on branch_edge = 1 / 0.
    double result = 0.0;
    const double p_prefix = g_.Probability(*care, *value);
    care->Set(branch_edge);
    for (int bit = 1; bit >= 0; --bit) {
      value->Assign(branch_edge, bit);
      const double p_branch = g_.Probability(*care, *value);
      if (p_branch <= 0.0) continue;
      const double cond = p_branch / p_prefix;
      std::vector<char> next_alive = *alive;
      if (bit == 0) {
        for (size_t t = 0; t < terms_.size(); ++t) {
          if (next_alive[t] && terms_[t].Test(branch_edge)) next_alive[t] = 0;
        }
      }
      result += cond * Recurse(&next_alive, care, value, p_branch);
    }
    care->Reset(branch_edge);
    value->Reset(branch_edge);
    return result;
  }

  const ProbabilisticGraph& g_;
  const std::vector<EdgeBitset>& terms_;
  const uint64_t max_nodes_;
  uint64_t nodes_ = 0;
  bool exhausted_ = false;
};

}  // namespace

Result<double> ExactDnfProbability(const ProbabilisticGraph& g,
                                   const std::vector<EdgeBitset>& terms,
                                   const DnfExactOptions& options) {
  if (terms.empty()) return 0.0;
  std::vector<EdgeBitset> reduced = AbsorbDnfTerms(terms);
  for (const EdgeBitset& t : reduced) {
    if (t.Empty()) return 1.0;  // empty conjunction is always true
  }
  // The memoized partition engine packs the alive-term set into 64 bits;
  // beyond that (or for tree models) the Shannon engine takes over — it has
  // no term cap, only the exponential cost Theorem 2 promises.
  if (g.kind() == JointModelKind::kPartition &&
      reduced.size() <= std::min<size_t>(options.max_terms, 64)) {
    PartitionDnfSolver solver(g, reduced);
    return solver.Solve();
  }
  ShannonDnfSolver solver(g, reduced, options.max_shannon_nodes);
  return solver.Solve();
}

}  // namespace pgsim
