// Probabilistic graph model (paper Definitions 1–4).
//
// A probabilistic graph g = (gc, XE) couples a deterministic labeled graph gc
// with binary existence variables for its edges. Correlations are expressed
// by joint probability tables over *neighbor edge sets* — edges incident to
// one common vertex, or the three edges of a triangle (Definition 1).
//
// Two regimes are supported through one API:
//   * kPartition — the ne sets partition E; Equation 1's plain product of
//     JPTs is the joint distribution, literally.
//   * kTree — ne sets may overlap (Figure 1's JPT1/JPT2 share e3); the joint
//     is the clique-tree-normalized product (see prob/clique_tree.h). For
//     separator-consistent tables the normalizer is 1 and Eq. 1 again holds.
//
// The IND baseline of the experiments (Figure 14) is a partition model with
// singleton ne sets.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/random.h"
#include "pgsim/common/span.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/prob/clique_tree.h"
#include "pgsim/prob/jpt.h"

namespace pgsim {

/// Reusable buffers for the *Into sampling/inference entry points below.
/// One scratch serves any sequence of graphs; not concurrency-safe.
struct WorldSampleScratch {
  CliqueTreeScratch tree;
};

/// One correlated group: a neighbor edge set plus its JPT.
struct NeighborEdgeSet {
  /// Edge ids of gc in this set; bit j of a table mask is edges[j].
  std::vector<EdgeId> edges;
  /// Joint distribution over the 2^|edges| assignments.
  JointProbTable table;
};

/// How the ne sets relate structurally (derived, not chosen, at Create).
enum class JointModelKind {
  kPartition,  ///< ne sets are pairwise disjoint and cover E.
  kTree,       ///< ne sets overlap; clique-tree factorization.
};

/// Validation and construction knobs.
struct ProbGraphOptions {
  /// Enforce Definition 1's neighbor-edge condition on every ne set
  /// (common incident vertex, or exactly three edges forming a triangle).
  bool validate_neighbor_property = true;
};

/// An uncertain graph with correlated edge existence.
class ProbabilisticGraph {
 public:
  ProbabilisticGraph() = default;

  /// Validates the ne sets (coverage, arity, neighbor property, junction
  /// structure) and prepares the inference engine.
  static Result<ProbabilisticGraph> Create(
      Graph certain, std::vector<NeighborEdgeSet> ne_sets,
      const ProbGraphOptions& options = ProbGraphOptions());

  /// The certain graph gc (all uncertainty removed; used by Theorem 1).
  const Graph& certain() const { return certain_; }

  /// The correlated groups with their JPTs.
  const std::vector<NeighborEdgeSet>& ne_sets() const { return ne_sets_; }

  /// Structural regime of this graph's ne sets.
  JointModelKind kind() const { return kind_; }

  /// Number of edges of gc (== number of existence variables).
  uint32_t NumEdges() const { return certain_.NumEdges(); }

  /// Pr(g => g'): normalized probability of the possible world whose present
  /// edges are exactly `world` (Definition 3 / Equation 1).
  double WorldProbability(const EdgeBitset& world) const;

  /// Exact Pr(all edges in `edges` are present).
  double MarginalAllPresent(const EdgeBitset& edges) const;

  /// Exact Pr(edges in `care` take the values given by `value`).
  double Probability(const EdgeBitset& care, const EdgeBitset& value) const;

  /// As Probability, drawing clique-tree temporaries from `*scratch`
  /// (partition models never allocate; tree models reuse the buffers).
  double Probability(const EdgeBitset& care, const EdgeBitset& value,
                     WorldSampleScratch* scratch) const;

  /// Exact Pr(all edges in `edges` are present), scratch-reusing variant.
  double MarginalAllPresent(const EdgeBitset& edges,
                            WorldSampleScratch* scratch) const {
    return Probability(edges, edges, scratch);
  }

  /// Exact existence marginal of one edge.
  double EdgeMarginal(EdgeId e) const;

  /// Samples a possible world (the "Sample each neighbor edge set ne of g
  /// according to Pr(x_ne)" step of Algorithm 3).
  EdgeBitset SampleWorld(Rng* rng) const;

  /// Samples a possible world conditioned on `care` edges taking `value`
  /// bits; fails when the condition has zero probability.
  Result<EdgeBitset> SampleWorldConditioned(Rng* rng, const EdgeBitset& care,
                                            const EdgeBitset& value) const;

  /// As SampleWorld, writing into `*world` (storage reused; identical draw
  /// sequence, so estimators built on either variant agree bit-for-bit).
  void SampleWorldInto(Rng* rng, WorldSampleScratch* scratch,
                       EdgeBitset* world) const;

  /// Support-restricted conditional sampling (the Karp-Luby hot path):
  /// samples a world conditioned on every edge of `condition` being
  /// *present*, drawing only the ne sets whose indices appear in `active`.
  /// Edges of skipped ne sets are reported absent; that is sound whenever
  /// the caller only inspects edges covered by `active` (the verifier passes
  /// every ne set intersecting the union of event supports — edges outside
  /// it cannot affect any event). Requires `active` to cover every edge of
  /// `condition`. Tree models ignore `active`: correlations cross ne-set
  /// boundaries there, so the full clique-tree conditional sampler runs
  /// (still into reused storage). Fails when the condition has zero mass.
  Status SampleWorldConditionedAllPresentInto(Rng* rng,
                                              const EdgeBitset& condition,
                                              Span<const uint32_t> active,
                                              WorldSampleScratch* scratch,
                                              EdgeBitset* world) const;

  /// The underlying exact-inference engine (tests, advanced callers).
  const CliqueTree& inference() const { return tree_; }

 private:
  Graph certain_;
  std::vector<NeighborEdgeSet> ne_sets_;
  JointModelKind kind_ = JointModelKind::kPartition;
  CliqueTree tree_;
};

/// Builds the IND (independent-edges) counterpart of `g`: same gc, singleton
/// ne sets carrying each edge's exact marginal under `g`'s joint. This is the
/// "multiply probabilities of edges in each neighbor edge set" baseline the
/// paper compares against in Figure 14.
Result<ProbabilisticGraph> ToIndependentModel(const ProbabilisticGraph& g);

}  // namespace pgsim
