#include "pgsim/prob/jpt.h"

#include <cmath>
#include <string>

namespace pgsim {

Result<JointProbTable> JointProbTable::FromWeights(
    std::vector<double> weights) {
  if (weights.empty() || (weights.size() & (weights.size() - 1)) != 0) {
    return Status::InvalidArgument(
        "JPT weights size must be a power of two, got " +
        std::to_string(weights.size()));
  }
  uint32_t arity = 0;
  while ((1ULL << arity) < weights.size()) ++arity;
  if (arity > kMaxArity) {
    return Status::OutOfRange("JPT arity " + std::to_string(arity) +
                              " exceeds kMaxArity");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("JPT weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("JPT weights must have positive sum");
  }
  for (double& w : weights) w /= total;
  JointProbTable t;
  t.arity_ = arity;
  t.probs_ = std::move(weights);
  return t;
}

Result<JointProbTable> JointProbTable::FromNormalizedProbs(
    std::vector<double> probs) {
  if (probs.empty() || (probs.size() & (probs.size() - 1)) != 0) {
    return Status::InvalidArgument(
        "JPT probs size must be a power of two, got " +
        std::to_string(probs.size()));
  }
  uint32_t arity = 0;
  while ((1ULL << arity) < probs.size()) ++arity;
  if (arity > kMaxArity) {
    return Status::OutOfRange("JPT arity " + std::to_string(arity) +
                              " exceeds kMaxArity");
  }
  double total = 0.0;
  for (double p : probs) {
    if (p < 0.0 || !std::isfinite(p)) {
      return Status::InvalidArgument("JPT probs must be finite and >= 0");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        "JPT probs must already sum to 1 (got sum " + std::to_string(total) +
        "); use FromWeights to renormalize");
  }
  JointProbTable t;
  t.arity_ = arity;
  t.probs_ = std::move(probs);
  return t;
}

Result<JointProbTable> JointProbTable::Independent(
    const std::vector<double>& edge_probs) {
  if (edge_probs.size() > kMaxArity) {
    return Status::OutOfRange("Independent JPT arity exceeds kMaxArity");
  }
  for (double p : edge_probs) {
    if (p < 0.0 || p > 1.0 || !std::isfinite(p)) {
      return Status::InvalidArgument("edge probability must be in [0, 1]");
    }
  }
  const uint32_t arity = static_cast<uint32_t>(edge_probs.size());
  std::vector<double> probs(1ULL << arity, 1.0);
  for (uint32_t mask = 0; mask < probs.size(); ++mask) {
    double p = 1.0;
    for (uint32_t j = 0; j < arity; ++j) {
      p *= ((mask >> j) & 1U) ? edge_probs[j] : (1.0 - edge_probs[j]);
    }
    probs[mask] = p;
  }
  JointProbTable t;
  t.arity_ = arity;
  t.probs_ = std::move(probs);
  return t;
}

double JointProbTable::MarginalAllPresent(uint32_t subset_mask) const {
  return Marginal(subset_mask, subset_mask);
}

double JointProbTable::Marginal(uint32_t care_mask,
                                uint32_t value_mask) const {
  double total = 0.0;
  for (uint32_t mask = 0; mask < probs_.size(); ++mask) {
    if ((mask & care_mask) == (value_mask & care_mask)) total += probs_[mask];
  }
  return total;
}

uint32_t JointProbTable::Sample(Rng* rng) const {
  double target = rng->UniformDouble();
  for (uint32_t mask = 0; mask < probs_.size(); ++mask) {
    target -= probs_[mask];
    if (target < 0.0) return mask;
  }
  return static_cast<uint32_t>(probs_.size() - 1);
}

Result<uint32_t> JointProbTable::SampleConditioned(Rng* rng,
                                                   uint32_t care_mask,
                                                   uint32_t value_mask) const {
  const double mass = Marginal(care_mask, value_mask);
  if (mass <= 0.0) {
    return Status::FailedPrecondition(
        "SampleConditioned: conditioning event has zero probability");
  }
  double target = rng->UniformDouble() * mass;
  uint32_t last_valid = 0;
  bool seen = false;
  for (uint32_t mask = 0; mask < probs_.size(); ++mask) {
    if ((mask & care_mask) != (value_mask & care_mask)) continue;
    last_valid = mask;
    seen = true;
    target -= probs_[mask];
    if (target < 0.0) return mask;
  }
  (void)seen;
  return last_valid;  // floating-point tail underflow
}

double JointProbTable::TotalMass() const {
  double total = 0.0;
  for (double p : probs_) total += p;
  return total;
}

}  // namespace pgsim
