// Possible-world enumeration (paper Definition 3, Figure 2).
//
// Exhaustive enumeration is exponential in |E| and exists for two purposes:
// ground truth in tests, and the paper's "Exact ... scans the probabilistic
// graph databases one by one" baseline at small scale.

#pragma once

#include <cstdint>
#include <functional>

#include "pgsim/common/bitset.h"
#include "pgsim/common/status.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// Enumeration guard rails.
struct WorldEnumOptions {
  /// Refuse graphs with more edges than this (2^max_edges worlds).
  uint32_t max_edges = 24;
  /// Skip worlds of probability exactly zero.
  bool skip_zero_probability = true;
};

/// Invokes `callback(world, Pr(g => world))` for every possible world of `g`.
/// The callback returns false to stop early.
Status EnumerateWorlds(
    const ProbabilisticGraph& g,
    const std::function<bool(const EdgeBitset&, double)>& callback,
    const WorldEnumOptions& options = WorldEnumOptions());

/// Sum of Pr(g => g') over all worlds (should be 1; exposed for tests).
Result<double> TotalWorldProbability(
    const ProbabilisticGraph& g,
    const WorldEnumOptions& options = WorldEnumOptions());

}  // namespace pgsim
