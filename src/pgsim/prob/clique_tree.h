// Clique-tree (junction tree) inference over neighbor-edge-set factors.
//
// This is the inference substrate the paper leans on: Equation 1 multiplies
// per-neighbor-edge-set JPTs, Definition 4 assumes conditional independence
// given separators, and the verification step uses "the junction tree
// algorithm to calculate Pr(Bfi)" [17].
//
// A CliqueTree is built from factors (variable set + dense table). Factor
// variable sets may overlap; the intersection structure must satisfy the
// running-intersection property (automatically true for disjoint factors,
// i.e., the partition model). The joint distribution is
//
//     Pr(x) = (1/Z) * prod_i table_i(x | vars_i)
//
// with Z the partition function (Z == 1 when the factors are a consistent
// clique-tree factorization, e.g. disjoint normalized JPTs).
//
// Supported queries (all exact, cost O(sum_i 2^{arity_i})):
//   * Z with arbitrary per-variable evidence  -> marginals of edge events
//   * conditional sampling given evidence     -> possible worlds
//   * pointwise joint probability of a world  -> Eq. 1 weights

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/prob/jpt.h"

namespace pgsim {

/// One factor: a dense joint table over a small set of global variable ids.
struct CliqueFactor {
  /// Global variable (edge) ids; bit j of a table mask corresponds to
  /// vars[j]. Must be duplicate-free.
  std::vector<uint32_t> vars;
  /// Table over 2^vars.size() assignments.
  JointProbTable table;
};

/// Reusable buffers for the scratch-taking inference entry points. One
/// scratch serves any sequence of trees (buffers resize with capacity
/// reuse); it must not be shared by two concurrent calls.
struct CliqueTreeScratch {
  /// Upward messages, one per node (inner vectors keep their capacity).
  std::vector<std::vector<double>> messages;
  /// Per-mask weights of the node being sampled.
  std::vector<double> weights;
  /// Variables already assigned during top-down sampling.
  EdgeBitset assigned;
};

/// Exact inference engine over a set of small overlapping factors.
class CliqueTree {
 public:
  /// Builds the tree: max-weight spanning forest over shared-variable counts,
  /// then validates the running-intersection property and that every
  /// variable in [0, num_vars) is covered by at least one factor.
  static Result<CliqueTree> Build(uint32_t num_vars,
                                  std::vector<CliqueFactor> factors);

  /// Number of global variables.
  uint32_t num_vars() const { return num_vars_; }

  /// Partition function with evidence: sums prod_i table_i over assignments
  /// that agree with `value` on the variables set in `care`.
  /// Pass empty bitsets (or care with no bits) for the unconditioned Z.
  double Partition(const EdgeBitset& care, const EdgeBitset& value) const;

  /// As Partition, drawing all temporaries from `*scratch` (steady-state
  /// allocation-free — the verifier's per-event marginal loop).
  double Partition(const EdgeBitset& care, const EdgeBitset& value,
                   CliqueTreeScratch* scratch) const;

  /// Cached unconditioned partition function Z.
  double Z() const { return z_; }

  /// Pr(variables in `care` take the values in `value`) under the normalized
  /// joint = Partition(care, value) / Z.
  double Probability(const EdgeBitset& care, const EdgeBitset& value) const {
    return Partition(care, value) / z_;
  }

  /// Unnormalized weight of a fully specified world: prod_i table_i(x).
  double WorldWeight(const EdgeBitset& world) const;

  /// Normalized probability of a fully specified world.
  double WorldProbability(const EdgeBitset& world) const {
    return WorldWeight(world) / z_;
  }

  /// Samples a full assignment conditioned on the evidence; fails when the
  /// evidence has zero probability.
  Result<EdgeBitset> SampleConditioned(Rng* rng, const EdgeBitset& care,
                                       const EdgeBitset& value) const;

  /// As SampleConditioned, writing into `*world` (storage reused) and
  /// drawing all temporaries from `*scratch`. Identical draw sequence.
  Status SampleConditionedInto(Rng* rng, const EdgeBitset& care,
                               const EdgeBitset& value,
                               CliqueTreeScratch* scratch,
                               EdgeBitset* world) const;

  /// Samples a full assignment from the joint.
  EdgeBitset Sample(Rng* rng) const;

  /// As Sample, into reusable storage. Identical draw sequence.
  void SampleInto(Rng* rng, CliqueTreeScratch* scratch,
                  EdgeBitset* world) const;

 private:
  struct Node {
    std::vector<uint32_t> vars;        // global ids, bit order of the table
    JointProbTable table;
    int parent = -1;                   // -1 for roots
    std::vector<uint32_t> children;
    // Positions (bit indices) within this node's vars of the separator
    // shared with the parent; empty for roots.
    std::vector<uint32_t> sep_positions;
    // For each child c: positions within THIS node's vars of the child's
    // separator variables, aligned with the child's own sep_positions order.
    std::vector<std::vector<uint32_t>> child_sep_positions;
  };

  // Computes all upward messages under the given evidence.
  // messages[i] has size 2^|sep_i| (single 1.0 entry for roots, unused).
  // Returns the partition function.
  double UpwardPass(const EdgeBitset& care, const EdgeBitset& value,
                    std::vector<std::vector<double>>* messages) const;

  // Node weight of `mask` at node i including children messages + evidence.
  double NodeWeight(uint32_t i, uint32_t mask,
                    const std::vector<std::vector<double>>& messages,
                    const EdgeBitset& care, const EdgeBitset& value) const;

  uint32_t num_vars_ = 0;
  std::vector<Node> nodes_;
  std::vector<uint32_t> topo_order_;  // parents before children
  std::vector<uint32_t> roots_;
  double z_ = 1.0;
};

}  // namespace pgsim
