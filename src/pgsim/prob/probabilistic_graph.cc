#include "pgsim/prob/probabilistic_graph.h"

#include <algorithm>
#include <string>

namespace pgsim {

namespace {

// Definition 1: a neighbor edge set shares a common incident vertex, or is
// exactly a triangle.
bool IsNeighborEdgeSet(const Graph& g, const std::vector<EdgeId>& edges) {
  if (edges.size() <= 1) return true;
  // Common vertex?
  const Edge& first = g.GetEdge(edges[0]);
  for (VertexId candidate : {first.u, first.v}) {
    bool all = true;
    for (EdgeId e : edges) {
      const Edge& edge = g.GetEdge(e);
      if (edge.u != candidate && edge.v != candidate) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  // Triangle?
  if (edges.size() == 3) {
    std::vector<VertexId> vertices;
    for (EdgeId e : edges) {
      vertices.push_back(g.GetEdge(e).u);
      vertices.push_back(g.GetEdge(e).v);
    }
    std::sort(vertices.begin(), vertices.end());
    vertices.erase(std::unique(vertices.begin(), vertices.end()),
                   vertices.end());
    if (vertices.size() == 3) return true;  // 3 edges on 3 vertices = triangle
  }
  return false;
}

}  // namespace

Result<ProbabilisticGraph> ProbabilisticGraph::Create(
    Graph certain, std::vector<NeighborEdgeSet> ne_sets,
    const ProbGraphOptions& options) {
  const uint32_t num_edges = certain.NumEdges();
  std::vector<uint32_t> cover_count(num_edges, 0);
  for (const NeighborEdgeSet& ne : ne_sets) {
    if (ne.edges.empty()) {
      return Status::InvalidArgument("ne set must contain at least one edge");
    }
    if (ne.table.arity() != ne.edges.size()) {
      return Status::InvalidArgument(
          "ne set JPT arity does not match its edge count");
    }
    for (EdgeId e : ne.edges) {
      if (e >= num_edges) {
        return Status::InvalidArgument("ne set references unknown edge id " +
                                       std::to_string(e));
      }
      ++cover_count[e];
    }
    if (options.validate_neighbor_property &&
        !IsNeighborEdgeSet(certain, ne.edges)) {
      return Status::InvalidArgument(
          "edge set is not a neighbor edge set (no common vertex, not a "
          "triangle)");
    }
  }
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (cover_count[e] == 0) {
      return Status::InvalidArgument("edge " + std::to_string(e) +
                                     " is not covered by any ne set");
    }
  }

  ProbabilisticGraph g;
  g.kind_ = JointModelKind::kPartition;
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (cover_count[e] > 1) {
      g.kind_ = JointModelKind::kTree;
      break;
    }
  }

  std::vector<CliqueFactor> factors;
  factors.reserve(ne_sets.size());
  for (const NeighborEdgeSet& ne : ne_sets) {
    CliqueFactor f;
    f.vars.assign(ne.edges.begin(), ne.edges.end());
    f.table = ne.table;
    factors.push_back(std::move(f));
  }
  PGSIM_ASSIGN_OR_RETURN(g.tree_,
                         CliqueTree::Build(num_edges, std::move(factors)));
  g.certain_ = std::move(certain);
  g.ne_sets_ = std::move(ne_sets);
  return g;
}

double ProbabilisticGraph::WorldProbability(const EdgeBitset& world) const {
  if (kind_ == JointModelKind::kPartition) {
    // Equation 1, literally: the product of per-ne-set JPT rows.
    double p = 1.0;
    for (const NeighborEdgeSet& ne : ne_sets_) {
      uint32_t mask = 0;
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        if (world.Test(ne.edges[j])) mask |= (1U << j);
      }
      p *= ne.table.Prob(mask);
      if (p == 0.0) return 0.0;
    }
    return p;
  }
  return tree_.WorldProbability(world);
}

double ProbabilisticGraph::MarginalAllPresent(const EdgeBitset& edges) const {
  return Probability(edges, edges);
}

double ProbabilisticGraph::Probability(const EdgeBitset& care,
                                       const EdgeBitset& value) const {
  if (kind_ == JointModelKind::kPartition) {
    double p = 1.0;
    for (const NeighborEdgeSet& ne : ne_sets_) {
      uint32_t care_mask = 0, value_mask = 0;
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        if (care.Test(ne.edges[j])) {
          care_mask |= (1U << j);
          if (value.Test(ne.edges[j])) value_mask |= (1U << j);
        }
      }
      if (care_mask == 0) continue;
      p *= ne.table.Marginal(care_mask, value_mask);
      if (p == 0.0) return 0.0;
    }
    return p;
  }
  return tree_.Probability(care, value);
}

double ProbabilisticGraph::Probability(const EdgeBitset& care,
                                       const EdgeBitset& value,
                                       WorldSampleScratch* scratch) const {
  if (kind_ == JointModelKind::kPartition) return Probability(care, value);
  return tree_.Partition(care, value, &scratch->tree) / tree_.Z();
}

double ProbabilisticGraph::EdgeMarginal(EdgeId e) const {
  EdgeBitset care(NumEdges());
  care.Set(e);
  return Probability(care, care);
}

EdgeBitset ProbabilisticGraph::SampleWorld(Rng* rng) const {
  if (kind_ == JointModelKind::kPartition) {
    EdgeBitset world(NumEdges());
    for (const NeighborEdgeSet& ne : ne_sets_) {
      const uint32_t mask = ne.table.Sample(rng);
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        if ((mask >> j) & 1U) world.Set(ne.edges[j]);
      }
    }
    return world;
  }
  return tree_.Sample(rng);
}

Result<EdgeBitset> ProbabilisticGraph::SampleWorldConditioned(
    Rng* rng, const EdgeBitset& care, const EdgeBitset& value) const {
  if (kind_ == JointModelKind::kPartition) {
    EdgeBitset world(NumEdges());
    for (const NeighborEdgeSet& ne : ne_sets_) {
      uint32_t care_mask = 0, value_mask = 0;
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        if (care.Test(ne.edges[j])) {
          care_mask |= (1U << j);
          if (value.Test(ne.edges[j])) value_mask |= (1U << j);
        }
      }
      PGSIM_ASSIGN_OR_RETURN(
          const uint32_t mask,
          ne.table.SampleConditioned(rng, care_mask, value_mask));
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        if ((mask >> j) & 1U) world.Set(ne.edges[j]);
      }
    }
    return world;
  }
  return tree_.SampleConditioned(rng, care, value);
}

void ProbabilisticGraph::SampleWorldInto(Rng* rng, WorldSampleScratch* scratch,
                                         EdgeBitset* world) const {
  if (kind_ == JointModelKind::kPartition) {
    world->ResetTo(NumEdges());
    for (const NeighborEdgeSet& ne : ne_sets_) {
      const uint32_t mask = ne.table.Sample(rng);
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        if ((mask >> j) & 1U) world->Set(ne.edges[j]);
      }
    }
    return;
  }
  tree_.SampleInto(rng, &scratch->tree, world);
}

Status ProbabilisticGraph::SampleWorldConditionedAllPresentInto(
    Rng* rng, const EdgeBitset& condition, Span<const uint32_t> active,
    WorldSampleScratch* scratch, EdgeBitset* world) const {
  if (kind_ == JointModelKind::kPartition) {
    world->ResetTo(NumEdges());
    for (uint32_t ni : active) {
      const NeighborEdgeSet& ne = ne_sets_[ni];
      uint32_t care_mask = 0;
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        if (condition.Test(ne.edges[j])) care_mask |= (1U << j);
      }
      PGSIM_ASSIGN_OR_RETURN(
          const uint32_t mask,
          ne.table.SampleConditioned(rng, care_mask, care_mask));
      for (size_t j = 0; j < ne.edges.size(); ++j) {
        if ((mask >> j) & 1U) world->Set(ne.edges[j]);
      }
    }
    return Status::OK();
  }
  return tree_.SampleConditionedInto(rng, condition, condition,
                                     &scratch->tree, world);
}

Result<ProbabilisticGraph> ToIndependentModel(const ProbabilisticGraph& g) {
  std::vector<NeighborEdgeSet> singleton_sets;
  singleton_sets.reserve(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    NeighborEdgeSet ne;
    ne.edges = {e};
    PGSIM_ASSIGN_OR_RETURN(ne.table,
                           JointProbTable::Independent({g.EdgeMarginal(e)}));
    singleton_sets.push_back(std::move(ne));
  }
  return ProbabilisticGraph::Create(g.certain(), std::move(singleton_sets));
}

}  // namespace pgsim
