#include "pgsim/query/batch_cache.h"

#include <utility>

#include "pgsim/graph/canonical.h"

namespace pgsim {

BatchQueryCache::Lookup BatchQueryCache::Find(const Graph& q) {
  Lookup lk;
  Result<std::string> code = CanonicalCode(q);
  if (!code.ok()) {
    // Canonical search over budget: run the query cold rather than risk a
    // fingerprint-grade key producing a false class hit.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.uncacheable;
    return lk;
  }
  lk.cacheable = true;
  lk.canonical_key = std::move(code).value();
  lk.exact_key = GraphExactKey(q);

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = classes_.find(lk.canonical_key);
  if (it != classes_.end()) {
    if (it->second.exact_key == lk.exact_key) {
      lk.relaxed = it->second.relaxed;
      lk.prepared = it->second.prepared;
      lk.plans = it->second.plans;
      lk.sigs = it->second.sigs;
    }
    lk.counts = it->second.counts;
  }
  lk.relaxed != nullptr ? ++stats_.relax_hits : ++stats_.relax_misses;
  lk.counts != nullptr ? ++stats_.counts_hits : ++stats_.counts_misses;
  lk.prepared != nullptr ? ++stats_.prepared_hits : ++stats_.prepared_misses;
  lk.plans != nullptr ? ++stats_.plans_hits : ++stats_.plans_misses;
  lk.sigs != nullptr ? ++stats_.sigs_hits : ++stats_.sigs_misses;
  return lk;
}

void BatchQueryCache::StoreRelaxed(
    const Lookup& lk, std::shared_ptr<const std::vector<Graph>> relaxed) {
  if (!lk.cacheable) return;
  std::lock_guard<std::mutex> lock(mu_);
  ClassEntry& entry = classes_[lk.canonical_key];
  if (entry.relaxed == nullptr) {
    entry.exact_key = lk.exact_key;
    entry.relaxed = std::move(relaxed);
  }
}

void BatchQueryCache::StoreCounts(
    const Lookup& lk, std::shared_ptr<const QueryFeatureCounts> counts) {
  if (!lk.cacheable) return;
  std::lock_guard<std::mutex> lock(mu_);
  ClassEntry& entry = classes_[lk.canonical_key];
  if (entry.counts == nullptr) entry.counts = std::move(counts);
}

void BatchQueryCache::StorePrepared(
    const Lookup& lk, std::shared_ptr<const PreparedQueryRelations> prepared) {
  if (!lk.cacheable) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = classes_.find(lk.canonical_key);
  if (it == classes_.end() || it->second.exact_key != lk.exact_key) return;
  if (it->second.prepared == nullptr) it->second.prepared = std::move(prepared);
}

void BatchQueryCache::StorePlans(
    const Lookup& lk, std::shared_ptr<const std::vector<MatchPlan>> plans) {
  if (!lk.cacheable) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = classes_.find(lk.canonical_key);
  if (it == classes_.end() || it->second.exact_key != lk.exact_key) return;
  if (it->second.plans == nullptr) it->second.plans = std::move(plans);
}

void BatchQueryCache::StoreSigs(
    const Lookup& lk,
    std::shared_ptr<const std::vector<QuerySignature>> sigs) {
  if (!lk.cacheable) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = classes_.find(lk.canonical_key);
  if (it == classes_.end() || it->second.exact_key != lk.exact_key) return;
  if (it->second.sigs == nullptr) it->second.sigs = std::move(sigs);
}

BatchCacheStats BatchQueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pgsim
