#include "pgsim/query/quadratic_program.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pgsim {

double LsimObjective(const std::vector<QpWeightedSet>& sets,
                     const std::vector<size_t>& selection) {
  double sum_l = 0.0, sum_u = 0.0;
  for (size_t i : selection) {
    sum_l += sets[i].wl;
    sum_u += sets[i].wu;
  }
  return std::max(0.0, sum_l - sum_u * sum_u);
}

namespace {

// The solver core both public entry points call. `wl(i)`/`wu(i)`/`id(i)`
// read set i's weights/id; `elems(i)` returns its element range as a
// (begin, end) pointer pair. Every accumulation visits sets in index order
// and elements in span order, so equal inputs produce bit-identical results
// and identical RNG draw sequences regardless of the backing layout.
template <typename WlFn, typename WuFn, typename IdFn, typename ElemsFn>
void LsimCore(size_t universe_size, size_t n, WlFn wl, WuFn wu, IdFn id,
              ElemsFn elems, const LsimOptions& options, Rng* rng,
              LsimScratch* s, LsimResult* result) {
  result->lsim = 0.0;
  result->chosen_ids.clear();
  result->covered = false;
  result->relaxed_objective = 0.0;
  if (n == 0) return;

  // element -> sets containing it, as a CSR (stable: set indices ascend
  // within each element's segment, matching push_back insertion order).
  s->elem_offsets.assign(universe_size + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto [begin, end] = elems(i);
    for (const uint32_t* e = begin; e != end; ++e) {
      if (*e < universe_size) ++s->elem_offsets[*e + 1];
    }
  }
  for (size_t e = 0; e < universe_size; ++e) {
    s->elem_offsets[e + 1] += s->elem_offsets[e];
  }
  s->elem_cursor.assign(s->elem_offsets.begin(), s->elem_offsets.end() - 1);
  s->elem_sets.resize(s->elem_offsets[universe_size]);
  for (size_t i = 0; i < n; ++i) {
    const auto [begin, end] = elems(i);
    for (const uint32_t* e = begin; e != end; ++e) {
      if (*e < universe_size) {
        s->elem_sets[s->elem_cursor[*e]++] = static_cast<uint32_t>(i);
      }
    }
  }

  const auto relaxed_objective = [&](const std::vector<double>& x) {
    double sum_l = 0.0, sum_u = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum_l += x[i] * wl(i);
      sum_u += x[i] * wu(i);
    }
    return sum_l - sum_u * sum_u;
  };

  // Cyclic projection sweeps onto the box [0,1]^n intersected with the cover
  // half-spaces sum_{s ∋ e} x_s >= 1 (for coverable elements only).
  const auto project_feasible = [&](std::vector<double>* x) {
    for (int sweep = 0; sweep < options.projection_sweeps; ++sweep) {
      for (double& v : *x) v = std::clamp(v, 0.0, 1.0);
      bool violated = false;
      for (size_t e = 0; e < universe_size; ++e) {
        const uint32_t begin = s->elem_offsets[e];
        const uint32_t end = s->elem_offsets[e + 1];
        if (begin == end) continue;
        double total = 0.0;
        for (uint32_t k = begin; k < end; ++k) total += (*x)[s->elem_sets[k]];
        if (total < 1.0) {
          violated = true;
          const double correction =
              (1.0 - total) / static_cast<double>(end - begin);
          for (uint32_t k = begin; k < end; ++k) {
            (*x)[s->elem_sets[k]] += correction;
          }
        }
      }
      if (!violated) {
        for (double& v : *x) v = std::clamp(v, 0.0, 1.0);
        break;
      }
    }
  };

  // ---- Relaxed QP: projected gradient ascent from the feasible point 1. ----
  s->x.assign(n, 1.0);
  s->best_x.assign(n, 1.0);
  double best_relaxed = relaxed_objective(s->x);
  double sum_wu_sq = 0.0;
  for (size_t i = 0; i < n; ++i) sum_wu_sq += wu(i) * wu(i);
  const double lipschitz = std::max(1e-9, 2.0 * sum_wu_sq);
  const double step = 1.0 / lipschitz;

  for (int it = 0; it < options.gradient_iterations; ++it) {
    double sum_u = 0.0;
    for (size_t i = 0; i < n; ++i) sum_u += s->x[i] * wu(i);
    for (size_t i = 0; i < n; ++i) {
      const double grad = wl(i) - 2.0 * sum_u * wu(i);
      s->x[i] += step * grad;
    }
    project_feasible(&s->x);
    const double obj = relaxed_objective(s->x);
    if (obj > best_relaxed) {
      best_relaxed = obj;
      s->best_x = s->x;
    }
  }
  result->relaxed_objective = best_relaxed;

  // ---- Algorithm 2: randomized rounding, 2 ln|U| rounds. ----
  const int rounds = static_cast<int>(std::ceil(
      options.rounding_factor *
      std::log(static_cast<double>(std::max<size_t>(2, universe_size)))));
  s->picked.assign(n, 0);
  for (int k = 0; k < rounds; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!s->picked[i] && rng->Bernoulli(s->best_x[i])) s->picked[i] = 1;
    }
  }
  s->rounded.clear();
  for (size_t i = 0; i < n; ++i) {
    if (s->picked[i]) s->rounded.push_back(static_cast<uint32_t>(i));
  }

  // ---- Deterministic fallbacks (any selection is a valid lower bound). ----
  // Greedy: add sets in decreasing wl while the objective improves.
  s->order.resize(n);
  for (size_t i = 0; i < n; ++i) s->order[i] = static_cast<uint32_t>(i);
  std::sort(s->order.begin(), s->order.end(), [&](uint32_t a, uint32_t b) {
    return wl(a) - wu(a) * wu(a) > wl(b) - wu(b) * wu(b);
  });
  s->greedy.clear();
  double greedy_l = 0.0, greedy_u = 0.0;
  for (uint32_t i : s->order) {
    const double new_l = greedy_l + wl(i);
    const double new_u = greedy_u + wu(i);
    if (new_l - new_u * new_u > greedy_l - greedy_u * greedy_u) {
      s->greedy.push_back(i);
      greedy_l = new_l;
      greedy_u = new_u;
    }
  }
  // Best single set.
  s->single.clear();
  if (!s->order.empty()) s->single.push_back(s->order.front());

  const auto selection_value = [&](const std::vector<uint32_t>& sel) {
    double sum_l = 0.0, sum_u = 0.0;
    for (uint32_t i : sel) {
      sum_l += wl(i);
      sum_u += wu(i);
    }
    return std::max(0.0, sum_l - sum_u * sum_u);
  };

  const std::vector<uint32_t>* best_sel = &s->rounded;
  double best_value = selection_value(s->rounded);
  for (const auto* sel : {&s->greedy, &s->single}) {
    const double value = selection_value(*sel);
    if (value > best_value) {
      best_value = value;
      best_sel = sel;
    }
  }
  result->lsim = best_value;
  for (uint32_t i : *best_sel) {
    result->chosen_ids.push_back(id(i));
  }

  // Coverage of the winning selection: an element is coverable iff some set
  // contains it (empty CSR segment <=> not coverable).
  s->chosen_mask.assign(n, 0);
  for (uint32_t i : *best_sel) s->chosen_mask[i] = 1;
  s->covered.assign(universe_size, 0);
  for (size_t i = 0; i < n; ++i) {
    if (!s->chosen_mask[i]) continue;
    const auto [begin, end] = elems(i);
    for (const uint32_t* e = begin; e != end; ++e) {
      if (*e < universe_size) s->covered[*e] = 1;
    }
  }
  bool covers = true;
  for (size_t e = 0; e < universe_size; ++e) {
    const bool coverable = s->elem_offsets[e + 1] > s->elem_offsets[e];
    if (coverable && !s->covered[e]) {
      covers = false;
      break;
    }
  }
  result->covered = covers;
}

}  // namespace

LsimResult SolveTightestLsim(size_t universe_size,
                             const std::vector<QpWeightedSet>& sets,
                             const LsimOptions& options, Rng* rng) {
  LsimResult result;
  LsimScratch scratch;
  LsimCore(
      universe_size, sets.size(), [&](size_t i) { return sets[i].wl; },
      [&](size_t i) { return sets[i].wu; },
      [&](size_t i) { return sets[i].id; },
      [&](size_t i) {
        return std::make_pair(sets[i].elements.data(),
                              sets[i].elements.data() + sets[i].elements.size());
      },
      options, rng, &scratch, &result);
  return result;
}

void SolveTightestLsim(size_t universe_size, const QpWeightedSetsView& sets,
                       const LsimOptions& options, Rng* rng,
                       LsimScratch* scratch, LsimResult* result) {
  LsimCore(
      universe_size, sets.num_sets, [&](size_t i) { return sets.wl[i]; },
      [&](size_t i) { return sets.wu[i]; }, [&](size_t i) { return sets.ids[i]; },
      [&](size_t i) {
        return std::make_pair(sets.elements + sets.span_begin[i],
                              sets.elements + sets.span_end[i]);
      },
      options, rng, scratch, result);
}

}  // namespace pgsim
