#include "pgsim/query/quadratic_program.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace pgsim {

double LsimObjective(const std::vector<QpWeightedSet>& sets,
                     const std::vector<size_t>& selection) {
  double sum_l = 0.0, sum_u = 0.0;
  for (size_t i : selection) {
    sum_l += sets[i].wl;
    sum_u += sets[i].wu;
  }
  return std::max(0.0, sum_l - sum_u * sum_u);
}

namespace {

// Objective of the relaxed program at x (no clamping).
double RelaxedObjective(const std::vector<QpWeightedSet>& sets,
                        const std::vector<double>& x) {
  double sum_l = 0.0, sum_u = 0.0;
  for (size_t i = 0; i < sets.size(); ++i) {
    sum_l += x[i] * sets[i].wl;
    sum_u += x[i] * sets[i].wu;
  }
  return sum_l - sum_u * sum_u;
}

// Cyclic projection sweeps onto the box [0,1]^n intersected with the cover
// half-spaces sum_{s ∋ e} x_s >= 1 (for coverable elements only).
void ProjectFeasible(const std::vector<std::vector<uint32_t>>& element_sets,
                     int sweeps, std::vector<double>* x) {
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (double& v : *x) v = std::clamp(v, 0.0, 1.0);
    bool violated = false;
    for (const auto& members : element_sets) {
      if (members.empty()) continue;
      double total = 0.0;
      for (uint32_t s : members) total += (*x)[s];
      if (total < 1.0) {
        violated = true;
        const double correction =
            (1.0 - total) / static_cast<double>(members.size());
        for (uint32_t s : members) (*x)[s] += correction;
      }
    }
    if (!violated) {
      for (double& v : *x) v = std::clamp(v, 0.0, 1.0);
      break;
    }
  }
}

bool Covers(size_t universe_size, const std::vector<QpWeightedSet>& sets,
            const std::vector<char>& picked) {
  std::vector<char> covered(universe_size, 0);
  for (size_t i = 0; i < sets.size(); ++i) {
    if (!picked[i]) continue;
    for (uint32_t e : sets[i].elements) {
      if (e < universe_size) covered[e] = 1;
    }
  }
  for (size_t e = 0; e < universe_size; ++e) {
    // Elements contained in no set at all cannot count against coverage.
    bool coverable = false;
    for (const auto& s : sets) {
      for (uint32_t x : s.elements) {
        if (x == e) {
          coverable = true;
          break;
        }
      }
      if (coverable) break;
    }
    if (coverable && !covered[e]) return false;
  }
  return true;
}

}  // namespace

LsimResult SolveTightestLsim(size_t universe_size,
                             const std::vector<QpWeightedSet>& sets,
                             const LsimOptions& options, Rng* rng) {
  LsimResult result;
  if (sets.empty()) return result;
  const size_t n = sets.size();

  // element -> sets containing it.
  std::vector<std::vector<uint32_t>> element_sets(universe_size);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t e : sets[i].elements) {
      if (e < universe_size) {
        element_sets[e].push_back(static_cast<uint32_t>(i));
      }
    }
  }

  // ---- Relaxed QP: projected gradient ascent from the feasible point 1. ----
  std::vector<double> x(n, 1.0);
  std::vector<double> best_x = x;
  double best_relaxed = RelaxedObjective(sets, x);
  double sum_wu_sq = 0.0;
  for (const auto& s : sets) sum_wu_sq += s.wu * s.wu;
  const double lipschitz = std::max(1e-9, 2.0 * sum_wu_sq);
  const double step = 1.0 / lipschitz;

  for (int it = 0; it < options.gradient_iterations; ++it) {
    double sum_u = 0.0;
    for (size_t i = 0; i < n; ++i) sum_u += x[i] * sets[i].wu;
    for (size_t i = 0; i < n; ++i) {
      const double grad = sets[i].wl - 2.0 * sum_u * sets[i].wu;
      x[i] += step * grad;
    }
    ProjectFeasible(element_sets, options.projection_sweeps, &x);
    const double obj = RelaxedObjective(sets, x);
    if (obj > best_relaxed) {
      best_relaxed = obj;
      best_x = x;
    }
  }
  result.relaxed_objective = best_relaxed;

  // ---- Algorithm 2: randomized rounding, 2 ln|U| rounds. ----
  const int rounds = static_cast<int>(std::ceil(
      options.rounding_factor *
      std::log(static_cast<double>(std::max<size_t>(2, universe_size)))));
  std::vector<char> picked(n, 0);
  for (int k = 0; k < rounds; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!picked[i] && rng->Bernoulli(best_x[i])) picked[i] = 1;
    }
  }
  std::vector<size_t> rounded;
  for (size_t i = 0; i < n; ++i) {
    if (picked[i]) rounded.push_back(i);
  }

  // ---- Deterministic fallbacks (any selection is a valid lower bound). ----
  // Greedy: add sets in decreasing wl while the objective improves.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sets[a].wl - sets[a].wu * sets[a].wu >
           sets[b].wl - sets[b].wu * sets[b].wu;
  });
  std::vector<size_t> greedy;
  double greedy_l = 0.0, greedy_u = 0.0;
  for (size_t i : order) {
    const double new_l = greedy_l + sets[i].wl;
    const double new_u = greedy_u + sets[i].wu;
    if (new_l - new_u * new_u > greedy_l - greedy_u * greedy_u) {
      greedy.push_back(i);
      greedy_l = new_l;
      greedy_u = new_u;
    }
  }
  // Best single set.
  std::vector<size_t> single;
  if (!order.empty()) single.push_back(order.front());

  const std::vector<size_t>* best_sel = &rounded;
  double best_value = LsimObjective(sets, rounded);
  for (const auto* sel : {&greedy, &single}) {
    const double value = LsimObjective(sets, *sel);
    if (value > best_value) {
      best_value = value;
      best_sel = sel;
    }
  }
  result.lsim = best_value;
  for (size_t i : *best_sel) {
    result.chosen_ids.push_back(sets[i].id);
  }
  std::vector<char> chosen_mask(n, 0);
  for (size_t i : *best_sel) chosen_mask[i] = 1;
  result.covered = Covers(universe_size, sets, chosen_mask);
  return result;
}

}  // namespace pgsim
