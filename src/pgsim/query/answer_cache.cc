#include "pgsim/query/answer_cache.h"

#include <utility>

#include "pgsim/common/fingerprint.h"

namespace pgsim {

AnswerCache::Probe AnswerCache::Find(const Graph& q,
                                     const std::string& options_fingerprint,
                                     uint64_t epoch) {
  Probe probe;
  // Canonicalize outside the lock — it is the expensive part of a probe.
  Result<std::string> code = CanonicalCode(q, options_.canonical);
  if (!code.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.uncacheable;
    return probe;  // cacheable == false
  }
  probe.cacheable = true;
  {
    Fingerprint key;
    key.AddBytes(*code);
    key.AddBytes(options_fingerprint);
    probe.key = key.bytes();
  }
  probe.exact_key = GraphExactKey(q);

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(probe.key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return probe;
  }
  Entry& entry = it->second;
  if (entry.epoch != epoch) {
    // The index mutated since this answer was computed; the entry can never
    // become valid again (epochs are monotone), so drop it now.
    ++stats_.stale;
    ++stats_.misses;
    lru_.erase(entry.lru_it);
    entries_.erase(it);
    return probe;
  }
  if (entry.exact_key != probe.exact_key) {
    // Same isomorphism class + options, different vertex labeling: sampled
    // verdicts may differ, so serving it would break bit-identity with the
    // uncached pipeline. Keep the entry (its own query may return).
    ++stats_.conflicts;
    ++stats_.misses;
    return probe;
  }
  ++stats_.hits;
  probe.hit = true;
  probe.answers = entry.answers;
  lru_.splice(lru_.begin(), lru_, entry.lru_it);  // touch
  return probe;
}

void AnswerCache::Store(const Probe& probe, uint64_t epoch,
                        std::vector<uint32_t> answers) {
  if (!probe.cacheable || probe.hit) return;
  auto shared = std::make_shared<const std::vector<uint32_t>>(
      std::move(answers));
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(probe.key);
  if (it != entries_.end()) {
    // Another worker (or an exact-key conflict) already owns the slot;
    // refresh it — last writer wins, and both writers computed under the
    // same epoch or the stale check will catch the difference on probe.
    it->second.exact_key = probe.exact_key;
    it->second.epoch = epoch;
    it->second.answers = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(probe.key);
  Entry entry;
  entry.exact_key = probe.exact_key;
  entry.epoch = epoch;
  entry.answers = std::move(shared);
  entry.lru_it = lru_.begin();
  entries_.emplace(probe.key, std::move(entry));
  while (entries_.size() > options_.max_entries && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

AnswerCacheStats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace pgsim
