#include "pgsim/query/top_k.h"

#include <algorithm>

namespace pgsim {

Result<TopKResult> TopKQuery(const std::vector<ProbabilisticGraph>& db,
                             const ProbabilisticMatrixIndex& pmi,
                             const StructuralFilter* filter, const Graph& q,
                             const TopKOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("TopKQuery: k must be positive");
  }
  if (options.delta >= q.NumEdges()) {
    return Status::InvalidArgument(
        "TopKQuery: delta must be < |E(q)| (SSP would be 1 everywhere)");
  }
  TopKResult result;
  PGSIM_ASSIGN_OR_RETURN(
      const std::vector<Graph> relaxed,
      GenerateRelaxedQueries(q, options.delta, options.relax));

  // Stage 1: structural candidates (graphs failing it have SSP = 0).
  std::vector<uint32_t> sc_q;
  if (filter != nullptr) {
    sc_q = filter->Filter(q, relaxed, options.delta, nullptr);
  } else {
    sc_q.resize(db.size());
    for (uint32_t i = 0; i < db.size(); ++i) sc_q[i] = i;
  }
  result.structural_candidates = sc_q.size();

  // Stage 2: order candidates by their Usim upper bound, descending.
  Rng rng(options.seed);
  ProbabilisticPruner pruner(&pmi, options.pruner);
  pruner.PrepareQuery(relaxed);
  struct Scheduled {
    uint32_t graph_id;
    double usim;
  };
  std::vector<Scheduled> schedule;
  schedule.reserve(sc_q.size());
  PrunerScratch pruner_scratch;  // one scratch serves the whole sweep
  for (uint32_t gi : sc_q) {
    const PruneDecision d = pruner.Bounds(gi, &rng, &pruner_scratch);
    schedule.push_back({gi, d.usim});
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Scheduled& a, const Scheduled& b) {
                     return a.usim > b.usim;
                   });

  // Stage 3: verify in bound order with early termination — once the k-th
  // best verified probability is at least the next upper bound, no
  // unverified candidate can enter the top k. One scratch serves the whole
  // bound-ordered loop (zero steady-state verifier allocation).
  VerifierScratch verifier_scratch;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Scheduled& s = schedule[i];
    if (result.entries.size() >= options.k) {
      const double kth = result.entries.back().ssp;
      if (s.usim + options.bound_slack <= kth) {
        result.skipped_by_bound = schedule.size() - i;
        break;
      }
    }
    Result<double> ssp =
        options.exact_verification
            ? ExactSubgraphSimilarityProbability(db[s.graph_id], relaxed,
                                                 options.verifier,
                                                 &verifier_scratch)
            : SampleSubgraphSimilarityProbability(db[s.graph_id], relaxed,
                                                  options.verifier, &rng,
                                                  &verifier_scratch);
    ++result.verified;
    if (!ssp.ok()) continue;
    TopKEntry entry;
    entry.graph_id = s.graph_id;
    entry.ssp = ssp.value();
    entry.usim = s.usim;
    // Insert in descending-ssp order, trim to k.
    auto pos = std::upper_bound(
        result.entries.begin(), result.entries.end(), entry,
        [](const TopKEntry& a, const TopKEntry& b) { return a.ssp > b.ssp; });
    result.entries.insert(pos, entry);
    if (result.entries.size() > options.k) result.entries.pop_back();
  }
  return result;
}

}  // namespace pgsim
