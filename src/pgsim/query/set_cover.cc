#include "pgsim/query/set_cover.h"

#include <limits>
#include <utility>

namespace pgsim {

namespace {

// The one greedy core both public entry points call. `weight(i)` and `id(i)`
// read set i's weight/id; `elems(i)` returns its element range as a
// (begin, end) pointer pair. Identical inputs produce identical selections
// regardless of the backing layout: the loop visits sets in index order and
// ties resolve to the lowest index (strict < on gamma).
template <typename WeightFn, typename IdFn, typename ElemsFn>
void GreedyCore(size_t universe_size, size_t num_sets, WeightFn weight,
                IdFn id, ElemsFn elems, std::vector<char>* covered_buf,
                std::vector<char>* used_buf, SetCoverResult* result) {
  result->chosen_ids.clear();
  result->total_weight = 0.0;
  covered_buf->assign(universe_size, 0);
  used_buf->assign(num_sets, 0);
  std::vector<char>& covered = *covered_buf;
  std::vector<char>& used = *used_buf;
  size_t num_covered = 0;

  while (num_covered < universe_size) {
    // gamma(s) = w(s) / |s - A|; pick the minimizer (Algorithm 1 line 3-4).
    double best_gamma = std::numeric_limits<double>::infinity();
    size_t best_index = num_sets;
    size_t best_new = 0;
    for (size_t i = 0; i < num_sets; ++i) {
      if (used[i]) continue;
      size_t fresh = 0;
      const auto [begin, end] = elems(i);
      for (const uint32_t* e = begin; e != end; ++e) {
        if (*e < universe_size && !covered[*e]) ++fresh;
      }
      if (fresh == 0) continue;
      const double gamma = weight(i) / static_cast<double>(fresh);
      if (gamma < best_gamma) {
        best_gamma = gamma;
        best_index = i;
        best_new = fresh;
      }
    }
    if (best_index == num_sets) break;  // nothing adds coverage
    used[best_index] = 1;
    result->chosen_ids.push_back(id(best_index));
    result->total_weight += weight(best_index);
    num_covered += best_new;
    const auto [begin, end] = elems(best_index);
    for (const uint32_t* e = begin; e != end; ++e) {
      if (*e < universe_size) covered[*e] = 1;
    }
  }
  result->covered = (num_covered == universe_size);
  result->num_uncovered = static_cast<uint32_t>(universe_size - num_covered);
}

}  // namespace

SetCoverResult GreedyWeightedSetCover(size_t universe_size,
                                      const std::vector<WeightedSet>& sets) {
  SetCoverResult result;
  std::vector<char> covered;
  std::vector<char> used;
  GreedyCore(
      universe_size, sets.size(), [&](size_t i) { return sets[i].weight; },
      [&](size_t i) { return sets[i].id; },
      [&](size_t i) {
        return std::make_pair(sets[i].elements.data(),
                              sets[i].elements.data() + sets[i].elements.size());
      },
      &covered, &used, &result);
  return result;
}

void GreedyWeightedSetCover(size_t universe_size, const WeightedSetsView& sets,
                            SetCoverScratch* scratch, SetCoverResult* result) {
  GreedyCore(
      universe_size, sets.num_sets, [&](size_t i) { return sets.weights[i]; },
      [&](size_t i) { return sets.ids[i]; },
      [&](size_t i) {
        return std::make_pair(sets.elements + sets.span_begin[i],
                              sets.elements + sets.span_end[i]);
      },
      &scratch->covered, &scratch->used, result);
}

}  // namespace pgsim
