#include "pgsim/query/set_cover.h"

#include <limits>

namespace pgsim {

SetCoverResult GreedyWeightedSetCover(size_t universe_size,
                                      const std::vector<WeightedSet>& sets) {
  SetCoverResult result;
  std::vector<char> covered(universe_size, 0);
  size_t num_covered = 0;
  std::vector<char> used(sets.size(), 0);

  while (num_covered < universe_size) {
    // gamma(s) = w(s) / |s - A|; pick the minimizer (Algorithm 1 line 3-4).
    double best_gamma = std::numeric_limits<double>::infinity();
    size_t best_index = sets.size();
    size_t best_new = 0;
    for (size_t i = 0; i < sets.size(); ++i) {
      if (used[i]) continue;
      size_t fresh = 0;
      for (uint32_t e : sets[i].elements) {
        if (e < universe_size && !covered[e]) ++fresh;
      }
      if (fresh == 0) continue;
      const double gamma = sets[i].weight / static_cast<double>(fresh);
      if (gamma < best_gamma) {
        best_gamma = gamma;
        best_index = i;
        best_new = fresh;
      }
    }
    if (best_index == sets.size()) break;  // nothing adds coverage
    used[best_index] = 1;
    result.chosen_ids.push_back(sets[best_index].id);
    result.total_weight += sets[best_index].weight;
    num_covered += best_new;
    for (uint32_t e : sets[best_index].elements) {
      if (e < universe_size) covered[e] = 1;
    }
  }
  result.covered = (num_covered == universe_size);
  result.num_uncovered = static_cast<uint32_t>(universe_size - num_covered);
  return result;
}

}  // namespace pgsim
