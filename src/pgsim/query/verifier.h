// Verification (paper Section 5): computing the Subgraph Similarity
// Probability of a candidate graph.
//
// Exact: SSP = Pr(Bf1 ∨ ... ∨ Bfm) (Equation 22) over the embeddings of all
// relaxed queries — evaluated by the exact monotone-DNF engine (exponential
// worst case, the paper's "Exact" baseline), or, for tiny graphs, by world
// enumeration straight from Definition 9 (tests' ground truth).
//
// SMP (Algorithm 5): Karp–Luby coverage sampling. m embedding events with
// exact marginals Pr(Bfi) from the joint model, V = sum_i Pr(Bfi); each
// round samples i ∝ Pr(Bfi)/V, then a world conditioned on Bfi = 1, and
// counts rounds where no earlier event holds. The unbiased estimator is
// V * Cnt / N (the paper's pseudocode prints Cnt/N with V computed on line 1
// but unused; V * Cnt / N is the estimator its Monte-Carlo citation [26]
// prescribes, and the one implemented here).

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/bounds/cond_sampler.h"
#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/prob/dnf_exact.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// Verification knobs.
struct VerifierOptions {
  /// Algorithm 5 sample count parameters: N = 4 ln(2/ξ) / τ².
  MonteCarloParams mc;
  /// Adaptive stopping (extension, not in the paper): instead of the fixed
  /// N, sample until the canonical-hit count reaches
  /// ceil(1 + 4(e-2) ln(2/ξ) / τ²) or mc.max_samples draws — the first
  /// stage of the Dagum-Karp-Luby-Ross optimal approximation scheme. Cheap
  /// when the SSP is large, automatically thorough when it is tiny.
  bool adaptive = false;
  /// Cap on embeddings enumerated per relaxed query.
  size_t max_embeddings_per_rq = 512;
  /// Cap on the total event count m.
  size_t max_total_embeddings = 4096;
  /// Exact-engine limits.
  DnfExactOptions exact;
};

/// Collects the deduplicated embedding edge sets of every relaxed query in
/// `relaxed` inside gc (the Bf events of Equation 22). Fails when a cap is
/// hit (the exact engine would be unsound on a partial list; SMP callers
/// may treat the failure as "fall back to exact bounds").
Result<std::vector<EdgeBitset>> CollectSimilarityEvents(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options);

/// Exact SSP via the monotone-DNF engine (Equation 22).
Result<double> ExactSspFromEvents(const ProbabilisticGraph& g,
                                  const std::vector<EdgeBitset>& events,
                                  const VerifierOptions& options);

/// Exact SSP of q against g (relaxes q internally). Exponential worst case.
Result<double> ExactSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options = VerifierOptions());

/// Definition 9 evaluated literally by possible-world enumeration + subgraph
/// distance per world. Tiny graphs only; tests' ground truth.
Result<double> ExactSspByWorldEnumeration(const ProbabilisticGraph& g,
                                          const Graph& q, uint32_t delta,
                                          uint32_t max_edges = 18);

/// Algorithm 5 (SMP). Returns the estimated SSP in [0, 1].
Result<double> SampleSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, Rng* rng);

}  // namespace pgsim
