// Verification (paper Section 5): computing the Subgraph Similarity
// Probability of a candidate graph.
//
// Exact: SSP = Pr(Bf1 ∨ ... ∨ Bfm) (Equation 22) over the embeddings of all
// relaxed queries — evaluated by the exact monotone-DNF engine (exponential
// worst case, the paper's "Exact" baseline), or, for tiny graphs, by world
// enumeration straight from Definition 9 (tests' ground truth).
//
// SMP (Algorithm 5): Karp–Luby coverage sampling. m embedding events with
// exact marginals Pr(Bfi) from the joint model, V = sum_i Pr(Bfi); each
// round samples i ∝ Pr(Bfi)/V, then a world conditioned on Bfi = 1, and
// counts rounds where no earlier event holds. The unbiased estimator is
// V * Cnt / N (the paper's pseudocode prints Cnt/N with V computed on line 1
// but unused; V * Cnt / N is the estimator its Monte-Carlo citation [26]
// prescribes, and the one implemented here).
//
// Engine layout (this file's scratch-threaded entry points):
//   * Events live in a contiguous EventSetPool inside a caller-owned
//     VerifierScratch; marginal/cumulative/world/index buffers are all
//     reused across candidates, so steady-state verification performs no
//     heap allocation in this layer (VF2 enumeration keeps its own small
//     per-call state).
//   * Sampling is support-restricted: conditioned worlds draw only the ne
//     sets intersecting the union of event supports — edges outside it
//     cannot affect any event, so the estimator distribution is unchanged
//     while draws per round shrink to the support size.
//   * The Karp–Luby canonicity check runs in descending-marginal event
//     order with a per-edge inverted index: each round marks the events
//     killed by the support edges absent from the sampled world and scans
//     the (likeliest-first) earlier events for a survivor.
//
// Any fixed event order yields an unbiased estimator, but the order (and
// the support restriction) changes which RNG draws happen when — estimates
// differ draw-by-draw from the pre-scratch engine while concentrating on
// the same SSP. Determinism contract: equal (graph, relaxed, options, RNG
// state) produce bit-identical estimates, with or without a reused scratch,
// and independent of the VF2 plan variant that enumerated the events: the
// sampling order sorts by descending marginal with row-content tie-breaks,
// so it is a pure function of the (deduplicated) event set and the model,
// not of event insertion order.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/bounds/cond_sampler.h"
#include "pgsim/common/cancel.h"
#include "pgsim/common/event_pool.h"
#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/signature.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/prob/dnf_exact.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// Verification knobs.
struct VerifierOptions {
  /// Algorithm 5 sample count parameters: N = 4 ln(2/ξ) / τ².
  MonteCarloParams mc;
  /// Adaptive stopping (extension, not in the paper): instead of the fixed
  /// N, sample until the canonical-hit count reaches
  /// ceil(1 + 4(e-2) ln(2/ξ) / τ²) or mc.max_samples draws — the first
  /// stage of the Dagum-Karp-Luby-Ross optimal approximation scheme. Cheap
  /// when the SSP is large, automatically thorough when it is tiny.
  bool adaptive = false;
  /// Cap on embeddings enumerated per relaxed query, inclusive: a relaxed
  /// query with exactly this many embeddings is fine; one more errors.
  /// 0 = uncapped.
  size_t max_embeddings_per_rq = 512;
  /// Cap on the total event count m (deduplicated across relaxed queries),
  /// inclusive: collection errors only when event m+1 would be inserted.
  size_t max_total_embeddings = 4096;
  /// Exact-engine limits.
  DnfExactOptions exact;
};

/// Reusable per-thread scratch for the verification engine. Owns the event
/// pool and every buffer the collector/sampler/exact paths fill per
/// candidate; repeated calls reuse all capacity (PoolCapacityWords() is
/// stable once the largest candidate has been seen). Not concurrency-safe:
/// one scratch per verifying thread.
struct VerifierScratch {
  /// Collected (then absorbed) event supports, one row per event.
  EventSetPool events;
  /// The same rows permuted into descending-marginal order — the canonicity
  /// scan walks them contiguously.
  EventSetPool sorted_events;
  /// Open-addressing dedup table over event rows.
  EventRowDedup dedup;
  /// Pr(Bfi) per pool row.
  std::vector<double> marginals;
  /// Event rows in descending-marginal order.
  std::vector<uint32_t> order;
  /// Cumulative marginals over `order` (the i ∝ Pr(Bfi)/V distribution).
  std::vector<double> cumulative;
  /// Per-edge CSR inverted index: edge -> ascending sorted-event positions.
  std::vector<uint32_t> inv_offsets;
  std::vector<uint32_t> inv_entries;
  /// Canonicity marking: dead_stamp[p] == stamp means sorted event p is
  /// killed by an absent support edge in the current round.
  std::vector<uint32_t> dead_stamp;
  uint32_t stamp = 0;
  /// Union of event supports / sampled world / per-event bitset views.
  EdgeBitset support;
  EdgeBitset world;
  EdgeBitset tmp;
  /// ne-set indices intersecting the support (partition models).
  std::vector<uint32_t> active_ne;
  /// Clique-tree buffers (tree models).
  WorldSampleScratch sample;
  /// Exact-engine event materialization (element capacity reused).
  std::vector<EdgeBitset> exact_events;

  /// VF2 matcher state for embedding collection (map/used/cursor arrays,
  /// reused Embedding, pooled edge-set dedup).
  Vf2Scratch vf2;
  /// Per-relaxed-query plans compiled locally when the caller supplies none
  /// (the processor passes its per-query shared plan set instead, so this
  /// fallback only pays on standalone verifier calls). Compilation is lazy:
  /// a relaxed query rejected by the signature gate never compiles a plan.
  std::vector<MatchPlan> rq_plans;

  /// Signature-gate telemetry, reset at every CollectSimilarityEvents call
  /// (the caller accumulates across candidates): (rq, candidate) pairs
  /// rejected outright, label-bucket vertices pruned from surviving pairs'
  /// domains, matcher invocations skipped, and fallback plans actually
  /// compiled (audits the lazy compile above).
  uint64_t sig_pairs_rejected = 0;
  uint64_t domain_candidates_pruned = 0;
  uint64_t vf2_calls_avoided = 0;
  uint64_t rq_plans_compiled = 0;

  /// Partition-model sampling plan, rebuilt per candidate (see verifier.cc:
  /// per active ne set an unconditional compact CDF with per-entry OR-masks,
  /// plus per-event overrides for the ne sets the event conditions). The
  /// per-draw loop then touches nothing but these flat arrays.
  std::vector<uint64_t> world_words;   ///< sampled world, one word per 64 edges
  std::vector<uint32_t> plan_step_off; ///< per active ne: entry range begin
  std::vector<double> plan_prob;       ///< per entry: assignment probability
  std::vector<uint64_t> plan_bits;     ///< per entry: wpr OR-mask words
  std::vector<uint32_t> ov_row_off;    ///< per event row: override range
  std::vector<uint32_t> ov_active;     ///< per override: active-ne position
  std::vector<uint32_t> ov_entry_off;  ///< per override: entry range begin
  std::vector<double> ov_mass;         ///< per override: conditional mass
  std::vector<double> ov_prob;         ///< override entries: probability
  std::vector<uint64_t> ov_bits;       ///< override entries: OR-mask words

  /// Allocated words in the event pool — lets tests pin "the second pass
  /// over a workload performs no pool growth".
  size_t PoolCapacityWords() const { return events.word_capacity(); }
};

/// Collects the deduplicated embedding edge sets of every relaxed query in
/// `relaxed` inside gc (the Bf events of Equation 22) into
/// `scratch->events`. Fails when a cap is hit (the exact engine would be
/// unsound on a partial list; SMP callers may treat the failure as "fall
/// back to exact bounds"); the pool contents are unspecified on error.
///
/// A signature gate for one (query, candidate) pairing: the candidate
/// graph's signature view plus one compiled QuerySignature per relaxed
/// query (same order as `relaxed`). When supplied, every relaxed query runs
/// the cover test against the candidate before its matcher call — barren
/// pairs contribute no embeddings by construction, so skipping them leaves
/// the event pool, and therefore every probability downstream, bit-identical
/// — and survivors enumerate against signature-built candidate domains.
struct SignatureGate {
  SignatureView target;
  const std::vector<QuerySignature>* rq = nullptr;
};

/// `plans`, when non-null, supplies one compiled MatchPlan per relaxed
/// query (same order as `relaxed`) — the query pipeline compiles them once
/// per query and reuses them for every candidate. When null, plans are
/// compiled into the scratch per call, lazily: only for relaxed queries the
/// signature gate (if any) lets through. `gate`, when non-null, prunes and
/// domain-seeds as described on SignatureGate.
Status CollectSimilarityEvents(const ProbabilisticGraph& g,
                               const std::vector<Graph>& relaxed,
                               const VerifierOptions& options,
                               VerifierScratch* scratch,
                               const std::vector<MatchPlan>* plans = nullptr,
                               const SignatureGate* gate = nullptr);

/// Legacy materializing wrapper around the scratch-based collector.
Result<std::vector<EdgeBitset>> CollectSimilarityEvents(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options);

/// Exact SSP via the monotone-DNF engine (Equation 22) over the events in
/// `scratch->events` (as left by CollectSimilarityEvents).
Result<double> ExactSspFromEvents(const ProbabilisticGraph& g,
                                  const VerifierOptions& options,
                                  VerifierScratch* scratch);

/// Exact SSP over an explicit event list.
Result<double> ExactSspFromEvents(const ProbabilisticGraph& g,
                                  const std::vector<EdgeBitset>& events,
                                  const VerifierOptions& options);

/// Exact SSP of q against g (relaxes q internally). Exponential worst case.
Result<double> ExactSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options = VerifierOptions());

/// As above, drawing all event storage from `*scratch`; `plans` and `gate`
/// as in CollectSimilarityEvents.
Result<double> ExactSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, VerifierScratch* scratch,
    const std::vector<MatchPlan>* plans = nullptr,
    const SignatureGate* gate = nullptr);

/// Definition 9 evaluated literally by possible-world enumeration + subgraph
/// distance per world. Tiny graphs only; tests' ground truth.
Result<double> ExactSspByWorldEnumeration(const ProbabilisticGraph& g,
                                          const Graph& q, uint32_t delta,
                                          uint32_t max_edges = 18);

/// Algorithm 5 (SMP). Returns the estimated SSP in [0, 1].
Result<double> SampleSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, Rng* rng);

/// As above, drawing every event/marginal/world buffer from `*scratch` —
/// the zero-allocation steady-state hot path QueryProcessor runs. `plans`
/// as in CollectSimilarityEvents; event *sets* (and therefore the sampled
/// estimate's distribution and, absent exact marginal ties, its draws) are
/// independent of the plan variant used to enumerate them.
Result<double> SampleSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, Rng* rng, VerifierScratch* scratch,
    const std::vector<MatchPlan>* plans = nullptr,
    const SignatureGate* gate = nullptr);

/// Cooperative-cancellation controls for the anytime sampler.
struct SampleControl {
  /// Polled once per draw (one relaxed load); null = never cancelled.
  const CancelState* cancel = nullptr;
  /// Deterministic test hook: stop before draw `cancel_after_draws + 1`
  /// regardless of `cancel`. 0 = disabled. Because it counts *this
  /// candidate's* draws (per-candidate RNGs are pre-forked sequentially),
  /// the partial outcome is byte-identical across runs and scheduler widths.
  uint64_t cancel_after_draws = 0;
};

/// What the anytime sampler knew when it stopped — complete or cancelled.
struct SampleOutcome {
  /// The running Karp-Luby estimate v * cnt / drawn, clamped to [0, 1].
  double estimate = 0.0;
  /// Hoeffding confidence interval at level 1 - xi around `estimate`:
  /// half-width v * sqrt(ln(2/xi) / (2 * drawn)). Before the first draw the
  /// only known bounds are [0, min(v, 1)] (union bound), or [0, 1] when
  /// cancellation struck before the events were even collected.
  double lo = 0.0;
  double hi = 1.0;
  /// Draws taken and canonical hits among them.
  uint64_t drawn = 0;
  uint64_t hits = 0;
  /// False iff the sampler stopped at a cancellation point.
  bool completed = true;
};

/// The anytime form of Algorithm 5: identical draw-for-draw to
/// SampleSubgraphSimilarityProbability (which wraps it with a null control),
/// but stoppable at every draw, returning the partial estimate plus its
/// confidence interval instead of an error. Event-collection failures (caps)
/// still surface as errors — there is no partial answer without events.
Result<SampleOutcome> SampleSubgraphSimilarityProbabilityAnytime(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, Rng* rng, VerifierScratch* scratch,
    const std::vector<MatchPlan>* plans = nullptr,
    const SampleControl& control = SampleControl{},
    const SignatureGate* gate = nullptr);

}  // namespace pgsim
