// End-to-end T-PS query processing (paper Section 1.2):
// structural pruning -> probabilistic pruning -> verification.
//
// QueryProcessor owns nothing: it composes a database, an optional PMI and
// an optional structural filter into the three-stage pipeline and reports
// per-stage statistics (the quantities plotted in Figures 9–13). Queries can
// run one at a time (Query, optionally with a caller-owned QueryContext for
// allocation reuse) or as a batch (QueryBatch) under one of two schedulers:
//
//   - Scheduler::kChunked: the original chunked parallel-for — workers
//     claim `chunk_size` whole queries at a time from an atomic cursor.
//     Cheap and predictable, but one pathological query stalls its chunk.
//   - Scheduler::kStealing (default): each query decomposes into a
//     front-stages task (relaxation -> filter -> pruning) plus per-candidate
//     verification tasks on a work-stealing TaskScheduler, so stages 1–2 of
//     query B run while query A verifies, and a hot query's candidates are
//     stolen by idle workers.
//
// Answers are bit-identical across both schedulers, any worker count, and
// any task grain: each query reruns its pipeline from QueryOptions::seed,
// stage-3 candidates draw from sequentially pre-forked per-candidate RNGs,
// and verdicts are merged in candidate order (golden_pipeline_test pins
// this).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "pgsim/common/cancel.h"
#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/common/thread_pool.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/index/domain_index.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/answer_cache.h"
#include "pgsim/query/prob_pruner.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/query/verifier.h"

namespace pgsim {

class BatchQueryCache;
class DurableDatabase;
class TaskScheduler;
struct QueryContext;

/// One T-PS query's parameters and pipeline switches.
struct QueryOptions {
  uint32_t delta = 2;      ///< subgraph distance threshold δ
  double epsilon = 0.5;    ///< probability threshold ε
  RelaxationOptions relax;
  ProbPrunerOptions pruner;
  VerifierOptions verifier;
  StructuralFilterOptions structural;
  bool use_structural_filter = true;
  bool use_probabilistic_pruning = true;
  /// Verification engine for surviving candidates.
  enum class VerifyMode { kSample, kExact };
  VerifyMode verify_mode = VerifyMode::kSample;
  /// Intra-query verification parallelism for the single-query Query()
  /// entry point and the chunked batch scheduler: stage 3 fans the
  /// surviving candidates across this many threads (1 = inline on the
  /// calling thread, 0 = all hardware threads). Every candidate draws from
  /// its own RNG, pre-forked sequentially in candidate order, and verdicts
  /// are merged in candidate order — answers are byte-identical at every
  /// setting. The stealing batch scheduler subsumes this knob (candidates
  /// become scheduler tasks that any idle worker steals) and ignores it.
  uint32_t verify_threads = 1;
  /// Neighborhood-signature gating ahead of stage 3 (and the structural
  /// filter's exact check): barren (rq, candidate) pairs are rejected before
  /// their VF2 call and survivors enumerate against signature-built
  /// candidate domains. Prunes provably fruitless work only — answers are
  /// bit-identical on or off, so (like verify_threads) the knob is excluded
  /// from the options fingerprint. Ignored when the processor has no
  /// signature index.
  bool use_signatures = true;
  uint64_t seed = 7;       ///< randomized pruning/verification seed
};

/// Equality-exact byte fingerprint of every QueryOptions field that can
/// change a query's ANSWER SET (delta, epsilon, relaxation caps, pruner
/// config, verifier config, structural knobs, stage switches, verify mode,
/// seed). Execution-only knobs (verify_threads, thread/pool settings) are
/// excluded — answers are bit-identical across them by the determinism
/// doctrine, so they must not fragment the answer-cache key space.
std::string QueryOptionsFingerprint(const QueryOptions& options);

/// Per-stage counters and timings of one query run.
///
/// Counter fields (`database_size` .. `answers`) are deterministic: equal
/// for the same (query, options, index) regardless of batching, scheduler,
/// thread count, or cache hits — with one documented exception: on a cache
/// hit `structural_detail.isomorphism_tests` omits the tests the cache
/// skipped. `isomorphism_tests` counts VF2 invocations actually executed;
/// pairs dismissed by the pre-VF2 label-multiset/size guard are not counted
/// (see StructuralFilterStats), so the value shrank when the guard landed
/// while every survivor set stayed identical.
/// `*_seconds` fields are wall-clock measurements and vary run to run.
/// Under the stealing scheduler `verify_seconds` spans front-stages-end to
/// last-verdict wall clock (candidate tasks may queue behind other queries'
/// work), and `queue_wait_seconds` reports how long the query waited from
/// batch admission to the start of its front stages.
/// Offline index-build timings live with the index itself: PmiStats
/// (mining/bounds/total seconds, build_threads) and
/// StructuralFilterBuildStats (seconds, counted_pairs, build_threads).
struct QueryStats {
  size_t database_size = 0;
  size_t num_relaxed_queries = 0;      ///< |U| after isomorphism dedup
  size_t structural_candidates = 0;    ///< |SCq|
  size_t pruned_by_upper = 0;          ///< Pruning 1 hits
  size_t accepted_by_lower = 0;        ///< Pruning 2 hits
  size_t verification_candidates = 0;  ///< graphs sent to the verifier
  size_t verification_failures = 0;    ///< verifier errors (kept as answers=no)
  size_t cancelled_candidates = 0;     ///< candidates stopped at a
                                       ///< cancellation point (their anytime
                                       ///< intervals live in QueryJob)
  size_t answers = 0;
  bool relax_cache_hit = false;   ///< U reused from the batch cache
  bool counts_cache_hit = false;  ///< feature counts reused from the cache
  bool prepared_cache_hit = false; ///< pruner relations reused from the cache
  bool answer_cache_hit = false;   ///< whole answer set served from the
                                   ///< cross-batch AnswerCache (stage
                                   ///< counters below the probe stay 0)
  double relax_seconds = 0.0;      ///< relaxation stage (≈0 on a cache hit)
  double structural_seconds = 0.0; ///< stage 1 wall clock
  double prob_seconds = 0.0;       ///< stage 2 wall clock
  double verify_seconds = 0.0;     ///< stage 3 wall clock
  double cache_seconds = 0.0;      ///< canonicalization + cache probe time
  double queue_wait_seconds = 0.0; ///< admission -> front-stages start
                                   ///< (stealing batch scheduler only)
  double total_seconds = 0.0;      ///< whole pipeline wall clock
  /// Signature-gate work avoidance (0 with signatures off or no index).
  /// Deterministic like the counter fields above; spans the structural
  /// filter's exact check and stage 3.
  size_t sig_pairs_rejected = 0;       ///< (rq, candidate) pairs refuted
  size_t domain_candidates_pruned = 0; ///< bucket vertices pruned from domains
  size_t vf2_calls_avoided = 0;        ///< matcher invocations skipped
  StructuralFilterStats structural_detail;
};

/// Decomposed per-query pipeline state: the unit the task-graph execution
/// path schedules. One query becomes a front-stages task (relaxation ->
/// match plans -> structural filter -> probabilistic pruning, which also
/// pre-forks the per-candidate verification RNGs in candidate order) plus
/// ceil(|to_verify| / task_grain) verification tasks that any worker may
/// execute; the last one to finish merges verdicts in candidate order.
/// Everything order-sensitive therefore lives here — the job must outlive
/// the worker that started it — while reusable *scratch* (filter/pruner/
/// verifier temporaries) stays in the executing worker's QueryContext.
/// Sequential Query() reuses the job embedded in its QueryContext, so its
/// steady-state allocation behavior is unchanged.
struct QueryJob {
  const Graph* query = nullptr;

  /// Relaxation set U: either a cache-shared hold or local storage.
  std::shared_ptr<const std::vector<Graph>> relaxed_hold;
  std::vector<Graph> relaxed_storage;
  const std::vector<Graph>* relaxed = nullptr;
  /// Compiled per-rq match plans (same sharing scheme).
  std::shared_ptr<const std::vector<MatchPlan>> plans_hold;
  std::vector<MatchPlan> plans_storage;
  const std::vector<MatchPlan>* rq_plans = nullptr;
  /// Compiled per-rq vertex signatures (same sharing scheme; null when
  /// signatures are off or the processor has no index).
  std::shared_ptr<const std::vector<QuerySignature>> sigs_hold;
  std::vector<QuerySignature> sigs_storage;
  const std::vector<QuerySignature>* rq_sigs = nullptr;

  std::vector<uint32_t> structural_candidates;  ///< stage 1 output SCq
  std::vector<uint32_t> to_verify;              ///< stage 2 output
  std::vector<uint32_t> answers;                ///< accumulated answer ids
  /// Per-candidate RNGs, pre-forked sequentially in candidate order so
  /// verification answers are identical under any schedule.
  std::vector<Rng> verify_rngs;
  /// Per-candidate verdicts, merged in candidate order by FinishQuery.
  std::vector<uint8_t> verdicts;

  /// Cooperative cancellation token (not owned; null = never cancelled),
  /// wired from QueryContext by RunFrontStages. Polled at the front-stage
  /// checkpoints and every draw of the sampling loop.
  const CancelState* cancel = nullptr;
  /// Deterministic test hook: per-candidate sampling-draw budget
  /// (SampleControl::cancel_after_draws). 0 = disabled.
  uint64_t cancel_after_draws = 0;
  /// Set (relaxed; distinct tasks may race to set it true) once any
  /// cancellation point fired — the pipeline unwound early, the answer set
  /// is partial, and `intervals` carries the anytime state. FinishQuery
  /// never stores a cancelled result in the answer cache.
  std::atomic<bool> cancelled{false};
  /// Per-candidate anytime outcomes, parallel to to_verify. Meaningful at
  /// index k iff verdicts[k] is "cancelled": the confidence interval from
  /// the samples candidate k drew before stopping (default-initialized
  /// [0, 1] when it never started).
  std::vector<SampleOutcome> intervals;

  /// Stage-3 signature-gate tallies, accumulated by concurrent verification
  /// workers and merged into `stats` by FinishQuery (the filter exact
  /// check's share arrives via structural_detail instead).
  std::atomic<uint64_t> sig_pairs_rejected{0};
  std::atomic<uint64_t> domain_candidates_pruned{0};
  std::atomic<uint64_t> vf2_calls_avoided{0};

  QueryStats stats;
  Status status = Status::OK();
  WallTimer total_timer;
  WallTimer verify_timer;

  /// Cross-batch answer cache wiring, captured at probe time so FinishQuery
  /// (which may run on a different worker under the stealing scheduler) can
  /// fill the slot the probe addressed, under the epoch the answer was
  /// computed at.
  AnswerCache* answer_cache = nullptr;
  AnswerCache::Probe answer_probe;
  uint64_t answer_epoch = 0;

  /// Clears (capacity-preserving) all per-query state.
  void Clear() {
    query = nullptr;
    relaxed_hold.reset();
    relaxed_storage.clear();
    relaxed = nullptr;
    plans_hold.reset();
    plans_storage.clear();
    rq_plans = nullptr;
    sigs_hold.reset();
    sigs_storage.clear();
    rq_sigs = nullptr;
    structural_candidates.clear();
    to_verify.clear();
    answers.clear();
    verify_rngs.clear();
    verdicts.clear();
    cancel = nullptr;
    cancel_after_draws = 0;
    cancelled.store(false, std::memory_order_relaxed);
    intervals.clear();
    sig_pairs_rejected.store(0, std::memory_order_relaxed);
    domain_candidates_pruned.store(0, std::memory_order_relaxed);
    vf2_calls_avoided.store(0, std::memory_order_relaxed);
    stats = QueryStats();
    status = Status::OK();
    answer_cache = nullptr;
    answer_probe = AnswerCache::Probe();
    answer_epoch = 0;
  }
};

/// Per-thread reusable query scratch.
///
/// A QueryContext owns every *reusable* temporary the three-stage pipeline
/// fills per query (filter/pruner/verifier scratch, RNG, and an embedded
/// QueryJob for the sequential path). QueryProcessor::Query clears them
/// between runs instead of reallocating, so a steady-state query loop
/// performs near-zero heap allocation in the processor itself. The chunked
/// batch path keeps one context per worker rank; the stealing path keeps
/// one per scheduler worker (owned by the TaskScheduler, so a thread
/// reuses its scratch across stolen tasks and across batches). A context
/// must not be shared by two queries running concurrently.
struct QueryContext {
  Rng rng;
  /// Optional batch-scoped artifact cache (not owned). QueryBatch points
  /// every worker context at one shared cache; Reset() deliberately leaves
  /// it attached. Callers wiring it manually must keep QueryOptions fixed
  /// across all queries probing the same cache (see batch_cache.h).
  BatchQueryCache* cache = nullptr;
  /// Optional cross-batch answer cache (not owned; see answer_cache.h).
  /// When set, `answer_fingerprint` must point at the QueryOptions
  /// fingerprint of the options being run (QueryOptionsFingerprint) and
  /// `answer_epoch` must hold the processor's epoch() — QueryBatch wires
  /// all three from BatchOptions::answer_cache; manual Query() callers do
  /// the same by hand.
  AnswerCache* answer_cache = nullptr;
  const std::string* answer_fingerprint = nullptr;
  uint64_t answer_epoch = 0;
  /// Cooperative cancellation wiring (not owned), copied into the job by
  /// RunFrontStages. The serving core points these at the submitting
  /// ticket's token before running a query's front stages; batch/sequential
  /// callers leave them null/0 (never cancelled — bit-identical answers).
  const CancelState* cancel = nullptr;
  uint64_t cancel_after_draws = 0;
  /// Per-query pipeline state for the sequential Query() path (batch
  /// schedulers use per-query jobs that outlive the worker instead).
  QueryJob job;
  /// Stage 1 temporaries.
  StructuralFilterScratch filter_scratch;
  /// Stage 2 temporaries: the pruner's columnar evaluate path draws every
  /// per-candidate buffer from here (zero steady-state allocation).
  PrunerScratch pruner_scratch;
  /// Stage 3 scratch: the sequential verification path and every stolen
  /// verification task executed by this context's worker use this.
  VerifierScratch verifier_scratch;
  /// Per-rank scratches for intra-query parallel verification
  /// (QueryOptions::verify_threads > 1 on the Query()/chunked path).
  std::vector<VerifierScratch> verify_scratches;

  /// The lazily built pool for intra-query parallel verification. Returns
  /// null when `threads` <= 1 (run inline); otherwise a pool of exactly
  /// `threads` workers, kept across queries and rebuilt only when the
  /// requested width changes.
  ThreadPool* VerifyPool(uint32_t threads) {
    if (threads <= 1) return nullptr;
    if (verify_pool_ == nullptr || verify_pool_->size() != threads) {
      verify_pool_ = std::make_unique<ThreadPool>(threads);
    }
    return verify_pool_.get();
  }

  /// Reseeds the RNG (per-query state is cleared by the pipeline itself).
  void Reset(uint64_t seed) { rng = Rng(seed); }

 private:
  std::unique_ptr<ThreadPool> verify_pool_;
};

/// Batch execution knobs.
struct BatchOptions {
  /// How QueryBatch distributes work across workers (see the file comment).
  /// Answers are bit-identical under either scheduler.
  enum class Scheduler { kChunked, kStealing };
  Scheduler scheduler = Scheduler::kStealing;
  /// Worker threads; 0 means ThreadPool::DefaultThreads(). 1 runs the batch
  /// inline on the calling thread (no pool). Ignored when `pool` or
  /// `stealer` is set.
  uint32_t num_threads = 0;
  /// Chunked scheduler: queries claimed per atomic grab; balances atomic
  /// traffic against skewed per-query cost. (The stealing scheduler always
  /// admits queries one at a time — balancing skew is its job.)
  uint32_t chunk_size = 4;
  /// Stealing scheduler: stage-3 verification candidates per spawned task.
  /// 1 (default) exposes maximum steal parallelism; raise it if per-task
  /// overhead ever shows up on very cheap candidates. 0 behaves as 1.
  uint32_t task_grain = 1;
  /// Caller-owned pool to run on (not owned; must outlive the call). Server
  /// loops issuing many batches set this to avoid per-batch thread spawns;
  /// when null, QueryBatch builds a transient pool of `num_threads`.
  ThreadPool* pool = nullptr;
  /// Caller-owned work-stealing scheduler (not owned; must outlive the
  /// call). Wins over `pool`/`num_threads` when set and `scheduler` is
  /// kStealing. Reusing one scheduler across batches also reuses its
  /// per-worker QueryContext scratch (no per-batch warm-up allocation).
  TaskScheduler* stealer = nullptr;
  /// Share relaxation sets and per-query feature embedding counts across
  /// the batch through a BatchQueryCache keyed by canonical query form.
  /// Answers are bit-identical with the cache on or off (see batch_cache.h
  /// for the proof sketch); disable only to measure the cold path.
  bool enable_cache = true;
  /// Caller-owned cross-batch answer cache (not owned; must outlive the
  /// call). When set, every query probes it before the pipeline and fills
  /// it after; entries are invalidated exactly by the processor's mutation
  /// epoch (see answer_cache.h). Answers are bit-identical with the cache
  /// on or off. Unlike the batch-scoped cache above it survives across
  /// QueryBatch calls — that is its point — so a serving loop keeps one
  /// AnswerCache next to its TaskScheduler.
  AnswerCache* answer_cache = nullptr;
};

/// Aggregated counters over one QueryBatch call. Cache counters come from
/// the batch's BatchQueryCache (all zero when BatchOptions::enable_cache is
/// false). Per tier, hits + misses (the probe count) is deterministic; the
/// hit/miss split is only deterministic at num_threads == 1 — concurrent
/// workers can both miss on the same class before either store lands, so
/// parallel batches may report fewer hits than sequential ones. Answers are
/// unaffected either way (a miss just recomputes the identical artifact).
/// Scheduler counters (`tasks_*`, `steal_attempts`, `max_queue_depth`,
/// `overlapped_verify_tasks`, `sum_queue_wait_seconds`) are nonzero only
/// under the stealing scheduler and vary run to run with the steal
/// schedule; `overlapped_verify_tasks` counts verification tasks that ran
/// while some other query's front stages were in flight — direct evidence
/// of stage-level pipelining.
struct BatchStats {
  size_t num_queries = 0;
  size_t failed_queries = 0;          ///< queries whose pipeline errored
  size_t total_answers = 0;
  size_t structural_candidates = 0;   ///< summed |SCq|
  size_t pruned_by_upper = 0;
  size_t accepted_by_lower = 0;
  size_t verification_candidates = 0;
  size_t relax_cache_hits = 0;        ///< relaxation sets reused (duplicates)
  size_t relax_cache_misses = 0;
  size_t counts_cache_hits = 0;       ///< feature counts reused (iso classes)
  size_t counts_cache_misses = 0;
  size_t prepared_cache_hits = 0;     ///< pruner relations reused (duplicates)
  size_t prepared_cache_misses = 0;
  size_t plans_cache_hits = 0;        ///< rq match-plan sets reused (dups)
  size_t plans_cache_misses = 0;
  size_t sigs_cache_hits = 0;         ///< rq signature sets reused (dups)
  size_t sigs_cache_misses = 0;
  size_t cache_uncacheable = 0;       ///< canonical code over budget
  /// Summed per-query signature-gate counters (see QueryStats).
  size_t sig_pairs_rejected = 0;
  size_t domain_candidates_pruned = 0;
  size_t vf2_calls_avoided = 0;
  /// Cross-batch AnswerCache counter deltas over this batch (all zero when
  /// BatchOptions::answer_cache is null). hits are whole queries whose
  /// answer set was served without running the pipeline; stale counts
  /// entries dropped because the index epoch moved.
  size_t answer_cache_hits = 0;
  size_t answer_cache_misses = 0;
  size_t answer_cache_stale = 0;
  size_t answer_cache_evictions = 0;
  uint32_t threads_used = 0;          ///< threads that actually ran (1 when
                                      ///< the inline fallback was taken)
  size_t tasks_executed = 0;          ///< scheduler tasks (front + verify)
  size_t tasks_stolen = 0;            ///< tasks run by a non-spawning worker
  size_t steal_attempts = 0;          ///< victim probes (incl. unsuccessful)
  size_t max_queue_depth = 0;         ///< deepest worker deque observed
  size_t overlapped_verify_tasks = 0; ///< verify tasks overlapping another
                                      ///< query's front stages
  double sum_queue_wait_seconds = 0.0; ///< summed per-query admission waits
  double wall_seconds = 0.0;          ///< batch wall clock
  double sum_query_seconds = 0.0;     ///< summed per-query total_seconds
  double cache_seconds = 0.0;         ///< summed per-query cache_seconds
};

/// One query's slot in a QueryBatch result, in input order.
struct BatchQueryResult {
  Status status = Status::OK();
  std::vector<uint32_t> answers;      ///< valid iff status.ok(); sorted
  QueryStats stats;
};

/// Three-stage T-PS query pipeline plus the Exact-scan baseline.
///
/// Live database contract (mirrors index/pmi.h): a processor constructed
/// over NON-const structures additionally serves AddGraph/RemoveGraph/
/// Compact, which thread the mutation through every serving structure
/// incrementally — database vector, PMI column, filter column, label
/// frequencies — and bump the mutation epoch(). Queries and mutations
/// synchronize on an internal reader/writer lock: any number of concurrent
/// Query/QueryBatch/ExactScan calls run against a frozen index state, and a
/// mutation waits for in-flight queries, applies atomically, then lets
/// queries resume (maintenance_test exercises this under TSan). Graph ids
/// are stable under RemoveGraph (tombstones); only Compact() renumbers.
class QueryProcessor {
 public:
  /// `pmi` and/or `structural` may be null; the corresponding stage is then
  /// skipped regardless of QueryOptions. Aggregates the database's vertex
  /// label frequencies once — every query's relaxed-query match plans are
  /// compiled against them (rarest-label-first seed ordering). A processor
  /// built through this overload is read-only: AddGraph/RemoveGraph error.
  ///
  /// `signatures`, when non-null, is the caller's neighborhood-signature
  /// index (not owned; DurableDatabase passes its loaded one). When null the
  /// processor builds and owns one from the database — the signature gate is
  /// always available, QueryOptions::use_signatures picks per query whether
  /// it runs.
  QueryProcessor(const std::vector<ProbabilisticGraph>* database,
                 const ProbabilisticMatrixIndex* pmi,
                 const StructuralFilter* structural,
                 const SignatureIndex* signatures = nullptr);

  /// Mutable overload: same serving behavior, plus the mutation API below
  /// operates on the caller's structures in place. The caller must not
  /// mutate them directly while this processor exists. A caller-supplied
  /// `signatures` is maintained in place by AddGraph/RemoveGraph/Compact;
  /// when null the processor maintains its own.
  QueryProcessor(std::vector<ProbabilisticGraph>* database,
                 ProbabilisticMatrixIndex* pmi, StructuralFilter* structural,
                 SignatureIndex* signatures = nullptr);

  /// Recovers a crash-consistent database from `dir` (convenience forwarder
  /// for DurableDatabase::Open, storage/durable_db.h): loads the last
  /// checksummed snapshot generation and replays the write-ahead log tail.
  /// The returned database's processor() serves queries and its mutation
  /// API is durable. Defined in storage/durable_db.cc.
  static Result<std::unique_ptr<DurableDatabase>> Open(const std::string& dir);

  /// Runs the full pipeline; returns answer graph ids (sorted).
  Result<std::vector<uint32_t>> Query(const Graph& q,
                                      const QueryOptions& options,
                                      QueryStats* stats = nullptr) const;

  /// As above, drawing all scratch from `*ctx` (reset internally). Repeated
  /// calls with the same context reuse its capacity.
  Result<std::vector<uint32_t>> Query(const Graph& q,
                                      const QueryOptions& options,
                                      QueryContext* ctx,
                                      QueryStats* stats = nullptr) const;

  /// Runs `queries` under the configured batch scheduler. Results are in
  /// input order and bit-identical to sequential Query(queries[i], options)
  /// calls — under either scheduler, at any worker count and task grain:
  /// every query reruns the pipeline from the same options.seed regardless
  /// of which worker claims which task.
  std::vector<BatchQueryResult> QueryBatch(
      const std::vector<Graph>& queries, const QueryOptions& options,
      const BatchOptions& batch = BatchOptions(),
      BatchStats* batch_stats = nullptr) const;

  /// The paper's Exact baseline: computes the exact SSP of every database
  /// graph, no filtering. Exponential per graph.
  Result<std::vector<uint32_t>> ExactScan(const Graph& q,
                                          const QueryOptions& options,
                                          QueryStats* stats = nullptr) const;

  // ---- Live mutation API (mutable-ctor processors only). ----

  /// Appends `graph` as a new database member and threads it through every
  /// serving structure incrementally: PMI column (bounds computed under
  /// `seed` with the PMI's remembered SIP options), filter column (feature
  /// containment reused from the PMI's decision), label frequencies, alive
  /// set. Blocks until in-flight queries drain; bumps epoch(). Returns the
  /// new graph id.
  Result<uint32_t> AddGraph(const ProbabilisticGraph& graph, uint64_t seed);

  /// Tombstones `graph_id` in every serving structure. Ids are STABLE (no
  /// shift); the graph stops appearing in any answer set from the next
  /// query on. Bumps epoch(). When tombstones exceed the auto-compaction
  /// threshold (>= 16 and >= half the columns), a Compact() runs
  /// immediately after under the same lock.
  Status RemoveGraph(uint32_t graph_id);

  /// Reclaims tombstoned columns in the database vector, PMI, and filter,
  /// renumbering alive ids downward in order (all three renumber
  /// identically). Bumps epoch(); callers holding graph ids must re-derive
  /// them. No-op without tombstones.
  void Compact();

  /// Monotonically increasing mutation counter: bumped by every AddGraph/
  /// RemoveGraph/Compact. The AnswerCache invalidates on inequality.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Database members not tombstoned.
  uint32_t num_alive() const {
    return num_alive_.load(std::memory_order_acquire);
  }

 private:
  friend struct StealingBatchRunner;  // task bodies (processor.cc)
  friend class ServingCore;  // admission-queue frontend (serving/)

  /// Stage 0–2 of the decomposed pipeline: cache probe, relaxation, match
  /// plans, structural filter, probabilistic pruning, and the sequential
  /// pre-fork of per-candidate verification RNGs. Fills `*job`; on return
  /// job->status reflects any pipeline error, job->to_verify holds the
  /// candidates awaiting VerifyCandidate, and job->verify_timer is running.
  void RunFrontStages(const Graph& q, const QueryOptions& options,
                      QueryContext* ctx, QueryJob* job) const;

  /// Verifies candidate `k` of `job` (writes job->verdicts[k]); safe to
  /// call concurrently for distinct `k` with distinct scratches.
  void VerifyCandidate(const QueryOptions& options, QueryJob* job, size_t k,
                       VerifierScratch* scratch) const;

  /// Merges verdicts in candidate order, sorts answers, finalizes stats.
  void FinishQuery(QueryJob* job) const;

  Status FrontStagesImpl(const Graph& q, const QueryOptions& options,
                         QueryContext* ctx, QueryJob* job) const;

  /// Query() without the serving lock — the body every locked entry point
  /// calls (public Query takes the shared lock; QueryBatch holds it for the
  /// whole batch, so its workers must not re-acquire).
  Result<std::vector<uint32_t>> QueryImpl(const Graph& q,
                                          const QueryOptions& options,
                                          QueryContext* ctx,
                                          QueryStats* stats) const;

  /// Answer-cache hookup for one batch: the cache, the options fingerprint
  /// (computed once per batch), and the epoch the batch serves at.
  struct AnswerCacheWiring {
    AnswerCache* cache = nullptr;
    const std::string* fingerprint = nullptr;
    uint64_t epoch = 0;
  };

  std::vector<BatchQueryResult> QueryBatchChunked(
      const std::vector<Graph>& queries, const QueryOptions& options,
      const BatchOptions& batch, BatchQueryCache* cache,
      const AnswerCacheWiring& answers, uint32_t num_threads,
      uint32_t* threads_used) const;

  std::vector<BatchQueryResult> QueryBatchStealing(
      const std::vector<Graph>& queries, const QueryOptions& options,
      const BatchOptions& batch, BatchQueryCache* cache,
      const AnswerCacheWiring& answers, uint32_t num_threads,
      const WallTimer& batch_timer, uint32_t* threads_used,
      BatchStats* batch_stats) const;

  /// Compact() body; caller holds the unique serving lock.
  void CompactLocked();

  const std::vector<ProbabilisticGraph>* database_;
  const ProbabilisticMatrixIndex* pmi_;
  const StructuralFilter* structural_;
  /// Non-null only for mutable-ctor processors (same objects as the const
  /// pointers above); the mutation API requires them.
  std::vector<ProbabilisticGraph>* mutable_database_ = nullptr;
  ProbabilisticMatrixIndex* mutable_pmi_ = nullptr;
  StructuralFilter* mutable_structural_ = nullptr;
  /// Neighborhood-signature index: `sigs_` is the serving pointer (owned or
  /// caller-supplied), `mutable_sigs_` its writable alias for the mutation
  /// API. Tombstones and Compact renumbering track the PMI exactly.
  std::unique_ptr<SignatureIndex> owned_sigs_;
  const SignatureIndex* sigs_ = nullptr;
  SignatureIndex* mutable_sigs_ = nullptr;
  /// Vertex-label frequencies summed over the database (index = LabelId):
  /// the MatchPlanOptions::label_freq input for per-query plan compilation.
  /// Maintained exactly under AddGraph/RemoveGraph — an add→remove round
  /// trip restores it byte-identically, which the add→remove answer
  /// bit-identity pin depends on (plans compile against these frequencies).
  std::vector<uint32_t> db_label_freq_;
  /// Per-database-member alive bytes (1 = serving): the tombstone view used
  /// by the paths that enumerate the whole database (delta shortcut,
  /// filter-disabled stage 1, ExactScan). Stage-1-filtered queries get the
  /// same exclusion from the filter's live mask.
  std::vector<uint8_t> alive_;
  std::atomic<uint32_t> num_alive_{0};
  std::atomic<uint64_t> epoch_{0};
  /// Reader/writer serving lock: queries shared, mutations exclusive.
  mutable std::shared_mutex live_mu_;
};

}  // namespace pgsim
