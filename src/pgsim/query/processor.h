// End-to-end T-PS query processing (paper Section 1.2):
// structural pruning -> probabilistic pruning -> verification.
//
// QueryProcessor owns nothing: it composes a database, an optional PMI and
// an optional structural filter into the three-stage pipeline and reports
// per-stage statistics (the quantities plotted in Figures 9–13). Queries can
// run one at a time (Query, optionally with a caller-owned QueryContext for
// allocation reuse) or as a batch fanned across a thread pool in chunks
// (QueryBatch), with identical answers either way: each query is seeded
// independently from QueryOptions::seed.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/prob_pruner.h"
#include "pgsim/query/query_context.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/query/verifier.h"

namespace pgsim {

class ThreadPool;

/// One T-PS query's parameters and pipeline switches.
struct QueryOptions {
  uint32_t delta = 2;      ///< subgraph distance threshold δ
  double epsilon = 0.5;    ///< probability threshold ε
  RelaxationOptions relax;
  ProbPrunerOptions pruner;
  VerifierOptions verifier;
  StructuralFilterOptions structural;
  bool use_structural_filter = true;
  bool use_probabilistic_pruning = true;
  /// Verification engine for surviving candidates.
  enum class VerifyMode { kSample, kExact };
  VerifyMode verify_mode = VerifyMode::kSample;
  /// Intra-query verification parallelism: stage 3 fans the surviving
  /// candidates across this many threads (1 = inline on the calling thread,
  /// 0 = all hardware threads). Every candidate draws from its own RNG,
  /// pre-forked sequentially in candidate order, and verdicts are merged in
  /// candidate order — answers are byte-identical at every setting. Composes
  /// multiplicatively with BatchOptions::num_threads (each batch worker owns
  /// a verify pool of this width), so batch servers usually keep it at 1 and
  /// latency-sensitive single-query callers raise it.
  uint32_t verify_threads = 1;
  uint64_t seed = 7;       ///< randomized pruning/verification seed
};

/// Per-stage counters and timings of one query run.
///
/// Counter fields (`database_size` .. `answers`) are deterministic: equal
/// for the same (query, options, index) regardless of batching, thread
/// count, or cache hits — with one documented exception: on a cache hit
/// `structural_detail.isomorphism_tests` omits the tests the cache skipped.
/// `isomorphism_tests` counts VF2 invocations actually executed; pairs
/// dismissed by the pre-VF2 label-multiset/size guard are not counted (see
/// StructuralFilterStats), so the value shrank when the guard landed while
/// every survivor set stayed identical.
/// `*_seconds` fields are wall-clock measurements and vary run to run.
/// Offline index-build timings live with the index itself: PmiStats
/// (mining/bounds/total seconds, build_threads) and
/// StructuralFilterBuildStats (seconds, counted_pairs, build_threads).
struct QueryStats {
  size_t database_size = 0;
  size_t num_relaxed_queries = 0;      ///< |U| after isomorphism dedup
  size_t structural_candidates = 0;    ///< |SCq|
  size_t pruned_by_upper = 0;          ///< Pruning 1 hits
  size_t accepted_by_lower = 0;        ///< Pruning 2 hits
  size_t verification_candidates = 0;  ///< graphs sent to the verifier
  size_t verification_failures = 0;    ///< verifier errors (kept as answers=no)
  size_t answers = 0;
  bool relax_cache_hit = false;   ///< U reused from the batch cache
  bool counts_cache_hit = false;  ///< feature counts reused from the cache
  bool prepared_cache_hit = false; ///< pruner relations reused from the cache
  double relax_seconds = 0.0;      ///< relaxation stage (≈0 on a cache hit)
  double structural_seconds = 0.0; ///< stage 1 wall clock
  double prob_seconds = 0.0;       ///< stage 2 wall clock
  double verify_seconds = 0.0;     ///< stage 3 wall clock
  double cache_seconds = 0.0;      ///< canonicalization + cache probe time
  double total_seconds = 0.0;      ///< whole pipeline wall clock
  StructuralFilterStats structural_detail;
};

/// Batch execution knobs.
struct BatchOptions {
  /// Worker threads; 0 means ThreadPool::DefaultThreads(). 1 runs the batch
  /// inline on the calling thread (no pool). Ignored when `pool` is set.
  uint32_t num_threads = 0;
  /// Queries claimed per atomic grab; balances atomic traffic against skewed
  /// per-query cost.
  uint32_t chunk_size = 4;
  /// Caller-owned pool to run on (not owned; must outlive the call). Server
  /// loops issuing many batches set this to avoid per-batch thread spawns;
  /// when null, QueryBatch builds a transient pool of `num_threads`.
  ThreadPool* pool = nullptr;
  /// Share relaxation sets and per-query feature embedding counts across
  /// the batch through a BatchQueryCache keyed by canonical query form.
  /// Answers are bit-identical with the cache on or off (see batch_cache.h
  /// for the proof sketch); disable only to measure the cold path.
  bool enable_cache = true;
};

/// Aggregated counters over one QueryBatch call. Cache counters come from
/// the batch's BatchQueryCache (all zero when BatchOptions::enable_cache is
/// false). Per tier, hits + misses (the probe count) is deterministic; the
/// hit/miss split is only deterministic at num_threads == 1 — concurrent
/// workers can both miss on the same class before either store lands, so
/// parallel batches may report fewer hits than sequential ones. Answers are
/// unaffected either way (a miss just recomputes the identical artifact).
struct BatchStats {
  size_t num_queries = 0;
  size_t failed_queries = 0;          ///< queries whose pipeline errored
  size_t total_answers = 0;
  size_t structural_candidates = 0;   ///< summed |SCq|
  size_t pruned_by_upper = 0;
  size_t accepted_by_lower = 0;
  size_t verification_candidates = 0;
  size_t relax_cache_hits = 0;        ///< relaxation sets reused (duplicates)
  size_t relax_cache_misses = 0;
  size_t counts_cache_hits = 0;       ///< feature counts reused (iso classes)
  size_t counts_cache_misses = 0;
  size_t prepared_cache_hits = 0;     ///< pruner relations reused (duplicates)
  size_t prepared_cache_misses = 0;
  size_t plans_cache_hits = 0;        ///< rq match-plan sets reused (dups)
  size_t plans_cache_misses = 0;
  size_t cache_uncacheable = 0;       ///< canonical code over budget
  uint32_t threads_used = 0;          ///< threads that actually ran (1 when
                                      ///< the inline fallback was taken)
  double wall_seconds = 0.0;          ///< batch wall clock
  double sum_query_seconds = 0.0;     ///< summed per-query total_seconds
  double cache_seconds = 0.0;         ///< summed per-query cache_seconds
};

/// One query's slot in a QueryBatch result, in input order.
struct BatchQueryResult {
  Status status = Status::OK();
  std::vector<uint32_t> answers;      ///< valid iff status.ok(); sorted
  QueryStats stats;
};

/// Three-stage T-PS query pipeline plus the Exact-scan baseline.
class QueryProcessor {
 public:
  /// `pmi` and/or `structural` may be null; the corresponding stage is then
  /// skipped regardless of QueryOptions. Aggregates the database's vertex
  /// label frequencies once — every query's relaxed-query match plans are
  /// compiled against them (rarest-label-first seed ordering).
  QueryProcessor(const std::vector<ProbabilisticGraph>* database,
                 const ProbabilisticMatrixIndex* pmi,
                 const StructuralFilter* structural);

  /// Runs the full pipeline; returns answer graph ids (sorted).
  Result<std::vector<uint32_t>> Query(const Graph& q,
                                      const QueryOptions& options,
                                      QueryStats* stats = nullptr) const;

  /// As above, drawing all scratch from `*ctx` (reset internally). Repeated
  /// calls with the same context reuse its capacity.
  Result<std::vector<uint32_t>> Query(const Graph& q,
                                      const QueryOptions& options,
                                      QueryContext* ctx,
                                      QueryStats* stats = nullptr) const;

  /// Runs `queries` across a thread pool in chunks, one QueryContext per
  /// worker. Results are in input order and bit-identical to sequential
  /// Query(queries[i], options) calls: every query reruns the pipeline from
  /// the same options.seed regardless of which worker claims it.
  std::vector<BatchQueryResult> QueryBatch(
      const std::vector<Graph>& queries, const QueryOptions& options,
      const BatchOptions& batch = BatchOptions(),
      BatchStats* batch_stats = nullptr) const;

  /// The paper's Exact baseline: computes the exact SSP of every database
  /// graph, no filtering. Exponential per graph.
  Result<std::vector<uint32_t>> ExactScan(const Graph& q,
                                          const QueryOptions& options,
                                          QueryStats* stats = nullptr) const;

 private:
  const std::vector<ProbabilisticGraph>* database_;
  const ProbabilisticMatrixIndex* pmi_;
  const StructuralFilter* structural_;
  /// Vertex-label frequencies summed over the database (index = LabelId):
  /// the MatchPlanOptions::label_freq input for per-query plan compilation.
  std::vector<uint32_t> db_label_freq_;
};

}  // namespace pgsim
