#include "pgsim/query/prob_pruner.h"

#include <algorithm>

#include "pgsim/graph/vf2.h"

namespace pgsim {

namespace {

// Flattens per-feature (or per-rq) element lists into ids + CSR pools.
void FlattenNonEmpty(const std::vector<std::vector<uint32_t>>& lists,
                     std::vector<uint32_t>* ids,
                     std::vector<uint32_t>* offsets,
                     std::vector<uint32_t>* elems) {
  ids->clear();
  offsets->assign(1, 0);
  elems->clear();
  for (uint32_t i = 0; i < lists.size(); ++i) {
    if (lists[i].empty()) continue;
    ids->push_back(i);
    elems->insert(elems->end(), lists[i].begin(), lists[i].end());
    offsets->push_back(static_cast<uint32_t>(elems->size()));
  }
}

// Flattens all lists (including empty ones) into a dense CSR.
void FlattenDense(const std::vector<std::vector<uint32_t>>& lists,
                  std::vector<uint32_t>* offsets,
                  std::vector<uint32_t>* elems) {
  offsets->assign(1, 0);
  elems->clear();
  for (const auto& list : lists) {
    elems->insert(elems->end(), list.begin(), list.end());
    offsets->push_back(static_cast<uint32_t>(elems->size()));
  }
}

template <typename T>
size_t VecCapBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

size_t PrunerScratch::CapacityBytes() const {
  size_t bytes = VecCapBytes(usim_weights) + VecCapBytes(lsim_sel_ids) +
                 VecCapBytes(lsim_sel_wl) + VecCapBytes(lsim_sel_wu) +
                 VecCapBytes(lsim_sel_begin) + VecCapBytes(lsim_sel_end) +
                 VecCapBytes(chosen);
  bytes += VecCapBytes(cover.covered) + VecCapBytes(cover.used) +
           VecCapBytes(cover_result.chosen_ids);
  bytes += VecCapBytes(lsim.elem_offsets) + VecCapBytes(lsim.elem_cursor) +
           VecCapBytes(lsim.elem_sets) + VecCapBytes(lsim.x) +
           VecCapBytes(lsim.best_x) + VecCapBytes(lsim.picked) +
           VecCapBytes(lsim.chosen_mask) + VecCapBytes(lsim.covered) +
           VecCapBytes(lsim.order) + VecCapBytes(lsim.rounded) +
           VecCapBytes(lsim.greedy) + VecCapBytes(lsim.single);
  bytes += VecCapBytes(lsim_result.chosen_ids);
  return bytes;
}

void ProbabilisticPruner::PrepareQuery(const std::vector<Graph>& relaxed,
                                       const std::vector<MatchPlan>* rq_plans) {
  const auto& features = pmi_->features();
  const auto& feature_plans = pmi_->feature_plans();
  auto prepared = std::make_shared<PreparedQueryRelations>();
  prepared->universe_size = relaxed.size();
  prepared->feature_sub_rqs.assign(features.size(), {});
  prepared->feature_super_rqs.assign(features.size(), {});
  prepared->rq_sub_features.assign(relaxed.size(), {});
  prepared->rq_super_features.assign(relaxed.size(), {});
  prepare_iso_tests_ = 0;

  // Relaxed-query plans: the processor's shared per-query set when given,
  // else compiled here — either way one plan per rq for the whole |F| x |U|
  // sweep (the pre-plan engine recompiled per executed test).
  std::vector<MatchPlan> local_plans;
  if (rq_plans == nullptr) {
    local_plans.reserve(relaxed.size());
    for (const Graph& rq : relaxed) {
      local_plans.push_back(CompileMatchPlan(rq));
    }
    rq_plans = &local_plans;
  }
  Vf2Scratch vf2;

  // Label-multiset guard inputs: a VF2 monomorphism needs the pattern's
  // vertex/edge label multiset covered by the target's, so pairs failing
  // the histogram check are skipped without a (counted) VF2 test.
  std::vector<LabelHistogram> feature_hist(features.size());
  for (uint32_t fi = 0; fi < features.size(); ++fi) {
    BuildLabelHistogram(features[fi].graph, &feature_hist[fi]);
  }
  std::vector<LabelHistogram> rq_hist(relaxed.size());
  for (uint32_t ri = 0; ri < relaxed.size(); ++ri) {
    BuildLabelHistogram(relaxed[ri], &rq_hist[ri]);
  }

  for (uint32_t fi = 0; fi < features.size(); ++fi) {
    const Graph& f = features[fi].graph;
    for (uint32_t ri = 0; ri < relaxed.size(); ++ri) {
      const Graph& rq = relaxed[ri];
      if (f.NumEdges() <= rq.NumEdges() &&
          f.NumVertices() <= rq.NumVertices() &&
          HistogramCoversPattern(rq_hist[ri], feature_hist[fi])) {
        ++prepare_iso_tests_;
        if (IsSubgraphIsomorphic(feature_plans[fi], rq, &vf2)) {
          prepared->feature_sub_rqs[fi].push_back(ri);
          prepared->rq_sub_features[ri].push_back(fi);
        }
      }
      if (rq.NumEdges() <= f.NumEdges() &&
          rq.NumVertices() <= f.NumVertices() &&
          HistogramCoversPattern(feature_hist[fi], rq_hist[ri])) {
        ++prepare_iso_tests_;
        if (IsSubgraphIsomorphic((*rq_plans)[ri], f, &vf2)) {
          prepared->feature_super_rqs[fi].push_back(ri);
          prepared->rq_super_features[ri].push_back(fi);
        }
      }
    }
  }

  // Compile the bound program: the candidate-invariant flattened views the
  // columnar evaluate path executes.
  BoundProgram& bp = prepared->program;
  FlattenNonEmpty(prepared->feature_sub_rqs, &bp.usim_ids, &bp.usim_offsets,
                  &bp.usim_elems);
  FlattenNonEmpty(prepared->feature_super_rqs, &bp.lsim_ids, &bp.lsim_offsets,
                  &bp.lsim_elems);
  FlattenDense(prepared->rq_sub_features, &bp.rq_sub_offsets,
               &bp.rq_sub_elems);
  FlattenDense(prepared->rq_super_features, &bp.rq_super_offsets,
               &bp.rq_super_elems);
  prepared_ = std::move(prepared);
}

void ProbabilisticPruner::PrepareFromCache(
    std::shared_ptr<const PreparedQueryRelations> prepared) {
  prepared_ = std::move(prepared);
  prepare_iso_tests_ = 0;
}

PruneDecision ProbabilisticPruner::Bounds(uint32_t graph_id, Rng* rng) const {
  // Historical contract: prune_epsilon 2.0 makes the Pruning-1 branch fire
  // unconditionally (usim <= 1 < 2), so lsim reports 0 and only usim is
  // meaningful — which is all the top-k scheduler consumes. Kept as-is
  // because computing Lsim here would consume extra RNG draws and shift
  // every downstream draw sequence (top-k verification sampling).
  PruneDecision decision = EvaluateReference(graph_id, 2.0, -1.0, rng);
  decision.outcome = PruneOutcome::kCandidate;
  return decision;
}

PruneDecision ProbabilisticPruner::Bounds(uint32_t graph_id, Rng* rng,
                                          PrunerScratch* scratch) const {
  // Same historical contract as the reference overload above.
  PruneDecision decision = EvaluateColumnar(graph_id, 2.0, -1.0, rng, scratch);
  decision.outcome = PruneOutcome::kCandidate;
  return decision;
}

PruneDecision ProbabilisticPruner::Evaluate(uint32_t graph_id, double epsilon,
                                            Rng* rng) const {
  return EvaluateReference(graph_id, epsilon, epsilon, rng);
}

PruneDecision ProbabilisticPruner::Evaluate(uint32_t graph_id, double epsilon,
                                            Rng* rng,
                                            PrunerScratch* scratch) const {
  return EvaluateColumnar(graph_id, epsilon, epsilon, rng, scratch);
}

PruneDecision ProbabilisticPruner::EvaluateReference(uint32_t graph_id,
                                                     double prune_epsilon,
                                                     double accept_epsilon,
                                                     Rng* rng) const {
  PruneDecision decision;
  // One Lookup per feature: the fetched entry carries both bound flavors.
  const auto upper_of = [&](uint32_t feature_id) -> double {
    PmiEntry e;
    if (!pmi_->Lookup(graph_id, feature_id, &e)) {
      return 0.0;  // f not ⊆iso gc: SIP = 0 (paper's <0>)
    }
    return options_.sip_variant == SipVariant::kOpt ? e.upper_opt
                                                    : e.upper_simple;
  };

  // ---- Pruning 1: Usim(q). ----
  double usim = 0.0;
  if (options_.selection == BoundSelection::kOptimized) {
    std::vector<WeightedSet> sets;
    sets.reserve(prepared_->feature_sub_rqs.size());
    for (uint32_t fi = 0; fi < prepared_->feature_sub_rqs.size(); ++fi) {
      if (prepared_->feature_sub_rqs[fi].empty()) continue;
      WeightedSet s;
      s.id = fi;
      s.elements = prepared_->feature_sub_rqs[fi];
      s.weight = upper_of(fi);
      sets.push_back(std::move(s));
    }
    const SetCoverResult cover =
        GreedyWeightedSetCover(prepared_->universe_size, sets);
    // Uncovered relaxed queries contribute the trivial bound Pr(Brq) <= 1.
    usim = cover.total_weight + static_cast<double>(cover.num_uncovered);
  } else {
    // SSPBound: "for each rqi, we randomly find two features satisfying
    // conditions in PMI" (Section 6) — take the better of the two picks;
    // any single qualifying feature gives a valid per-rq bound.
    for (uint32_t ri = 0; ri < prepared_->universe_size; ++ri) {
      const auto& candidates = prepared_->rq_sub_features[ri];
      if (candidates.empty()) {
        usim += 1.0;
        continue;
      }
      const uint32_t first = candidates[rng->Uniform(candidates.size())];
      const uint32_t second = candidates[rng->Uniform(candidates.size())];
      usim += std::min(upper_of(first), upper_of(second));
    }
  }
  decision.usim = std::min(usim, 1.0);
  if (decision.usim < prune_epsilon) {
    decision.outcome = PruneOutcome::kPruned;
    return decision;
  }

  // ---- Pruning 2: Lsim(q). ----
  double lsim = 0.0;
  if (options_.selection == BoundSelection::kOptimized) {
    std::vector<QpWeightedSet> sets;
    for (uint32_t fi = 0; fi < prepared_->feature_super_rqs.size(); ++fi) {
      if (prepared_->feature_super_rqs[fi].empty()) continue;
      PmiEntry e;
      if (!pmi_->Lookup(graph_id, fi, &e)) continue;  // SIP = 0: no weight
      QpWeightedSet s;
      s.id = fi;
      s.elements = prepared_->feature_super_rqs[fi];
      if (options_.sip_variant == SipVariant::kOpt) {
        s.wl = e.lower_opt;
        s.wu = e.upper_opt;
      } else {
        s.wl = e.lower_simple;
        s.wu = e.upper_simple;
      }
      sets.push_back(std::move(s));
    }
    if (!sets.empty()) {
      const LsimResult r = SolveTightestLsim(prepared_->universe_size, sets,
                                             options_.lsim, rng);
      lsim = r.lsim;
    }
  } else {
    // Random f² per rq (SSPBound flavor); duplicates collapse.
    std::vector<uint32_t> chosen;
    for (uint32_t ri = 0; ri < prepared_->universe_size; ++ri) {
      const auto& candidates = prepared_->rq_super_features[ri];
      if (candidates.empty()) continue;
      chosen.push_back(candidates[rng->Uniform(candidates.size())]);
    }
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    double sum_l = 0.0, sum_u = 0.0;
    for (uint32_t fi : chosen) {
      PmiEntry e;
      if (!pmi_->Lookup(graph_id, fi, &e)) continue;
      if (options_.sip_variant == SipVariant::kOpt) {
        sum_l += e.lower_opt;
        sum_u += e.upper_opt;
      } else {
        sum_l += e.lower_simple;
        sum_u += e.upper_simple;
      }
    }
    lsim = std::max(0.0, sum_l - sum_u * sum_u);
  }
  decision.lsim = std::max(0.0, std::min(lsim, 1.0));
  if (accept_epsilon >= 0.0 && decision.lsim >= accept_epsilon) {
    decision.outcome = PruneOutcome::kAccepted;
    return decision;
  }
  decision.outcome = PruneOutcome::kCandidate;
  return decision;
}

PruneDecision ProbabilisticPruner::EvaluateColumnar(
    uint32_t graph_id, double prune_epsilon, double accept_epsilon, Rng* rng,
    PrunerScratch* scratch) const {
  PruneDecision decision;
  const BoundProgram& bp = prepared_->program;
  // Graph-major matrices: this candidate's cells are the contiguous block
  // [base, base + num_features), so the per-feature gathers below stay in
  // one cache-resident stripe.
  const size_t base =
      static_cast<size_t>(graph_id) * pmi_->num_features();
  const bool opt = options_.sip_variant == SipVariant::kOpt;
  const float* lower =
      (opt ? pmi_->flat_lower_opt() : pmi_->flat_lower_simple()).data() + base;
  const float* upper =
      (opt ? pmi_->flat_upper_opt() : pmi_->flat_upper_simple()).data() + base;
  const uint8_t* present = pmi_->flat_present().data() + base;
  // Absent cells hold 0.0f, matching the reference path's "SIP = 0" default,
  // so Usim weights gather without a presence branch.
  const auto upper_of = [&](uint32_t feature_id) -> double {
    return upper[feature_id];
  };

  // ---- Pruning 1: Usim(q). ----
  double usim = 0.0;
  if (options_.selection == BoundSelection::kOptimized) {
    scratch->usim_weights.clear();
    for (uint32_t fi : bp.usim_ids) {
      scratch->usim_weights.push_back(upper_of(fi));
    }
    WeightedSetsView view;
    view.num_sets = bp.usim_ids.size();
    view.ids = bp.usim_ids.data();
    view.weights = scratch->usim_weights.data();
    view.elements = bp.usim_elems.data();
    view.span_begin = bp.usim_offsets.data();
    view.span_end = bp.usim_offsets.data() + 1;
    GreedyWeightedSetCover(prepared_->universe_size, view, &scratch->cover,
                           &scratch->cover_result);
    usim = scratch->cover_result.total_weight +
           static_cast<double>(scratch->cover_result.num_uncovered);
  } else {
    for (uint32_t ri = 0; ri < prepared_->universe_size; ++ri) {
      const uint32_t begin = bp.rq_sub_offsets[ri];
      const uint32_t end = bp.rq_sub_offsets[ri + 1];
      if (begin == end) {
        usim += 1.0;
        continue;
      }
      const uint32_t first =
          bp.rq_sub_elems[begin + rng->Uniform(end - begin)];
      const uint32_t second =
          bp.rq_sub_elems[begin + rng->Uniform(end - begin)];
      usim += std::min(upper_of(first), upper_of(second));
    }
  }
  decision.usim = std::min(usim, 1.0);
  if (decision.usim < prune_epsilon) {
    decision.outcome = PruneOutcome::kPruned;
    return decision;
  }

  // ---- Pruning 2: Lsim(q). ----
  double lsim = 0.0;
  if (options_.selection == BoundSelection::kOptimized) {
    scratch->lsim_sel_ids.clear();
    scratch->lsim_sel_wl.clear();
    scratch->lsim_sel_wu.clear();
    scratch->lsim_sel_begin.clear();
    scratch->lsim_sel_end.clear();
    for (size_t k = 0; k < bp.lsim_ids.size(); ++k) {
      const uint32_t fi = bp.lsim_ids[k];
      const size_t idx = fi;
      if (present[idx] == 0) continue;  // SIP = 0: contributes nothing
      scratch->lsim_sel_ids.push_back(fi);
      scratch->lsim_sel_wl.push_back(lower[idx]);
      scratch->lsim_sel_wu.push_back(upper[idx]);
      scratch->lsim_sel_begin.push_back(bp.lsim_offsets[k]);
      scratch->lsim_sel_end.push_back(bp.lsim_offsets[k + 1]);
    }
    if (!scratch->lsim_sel_ids.empty()) {
      QpWeightedSetsView view;
      view.num_sets = scratch->lsim_sel_ids.size();
      view.ids = scratch->lsim_sel_ids.data();
      view.wl = scratch->lsim_sel_wl.data();
      view.wu = scratch->lsim_sel_wu.data();
      view.elements = bp.lsim_elems.data();
      view.span_begin = scratch->lsim_sel_begin.data();
      view.span_end = scratch->lsim_sel_end.data();
      SolveTightestLsim(prepared_->universe_size, view, options_.lsim, rng,
                        &scratch->lsim, &scratch->lsim_result);
      lsim = scratch->lsim_result.lsim;
    }
  } else {
    auto& chosen = scratch->chosen;
    chosen.clear();
    for (uint32_t ri = 0; ri < prepared_->universe_size; ++ri) {
      const uint32_t begin = bp.rq_super_offsets[ri];
      const uint32_t end = bp.rq_super_offsets[ri + 1];
      if (begin == end) continue;
      chosen.push_back(bp.rq_super_elems[begin + rng->Uniform(end - begin)]);
    }
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    double sum_l = 0.0, sum_u = 0.0;
    for (uint32_t fi : chosen) {
      // Absent cells are (0, 0): adding them matches the reference skip.
      sum_l += lower[fi];
      sum_u += upper[fi];
    }
    lsim = std::max(0.0, sum_l - sum_u * sum_u);
  }
  decision.lsim = std::max(0.0, std::min(lsim, 1.0));
  if (accept_epsilon >= 0.0 && decision.lsim >= accept_epsilon) {
    decision.outcome = PruneOutcome::kAccepted;
    return decision;
  }
  decision.outcome = PruneOutcome::kCandidate;
  return decision;
}

}  // namespace pgsim
