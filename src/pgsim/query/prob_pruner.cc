#include "pgsim/query/prob_pruner.h"

#include <algorithm>

#include "pgsim/graph/vf2.h"

namespace pgsim {

void ProbabilisticPruner::PrepareQuery(const std::vector<Graph>& relaxed) {
  const auto& features = pmi_->features();
  auto prepared = std::make_shared<PreparedQueryRelations>();
  prepared->universe_size = relaxed.size();
  prepared->feature_sub_rqs.assign(features.size(), {});
  prepared->feature_super_rqs.assign(features.size(), {});
  prepared->rq_sub_features.assign(relaxed.size(), {});
  prepared->rq_super_features.assign(relaxed.size(), {});
  prepare_iso_tests_ = 0;

  for (uint32_t fi = 0; fi < features.size(); ++fi) {
    const Graph& f = features[fi].graph;
    for (uint32_t ri = 0; ri < relaxed.size(); ++ri) {
      const Graph& rq = relaxed[ri];
      if (f.NumEdges() <= rq.NumEdges() && f.NumVertices() <= rq.NumVertices()) {
        ++prepare_iso_tests_;
        if (IsSubgraphIsomorphic(f, rq)) {
          prepared->feature_sub_rqs[fi].push_back(ri);
          prepared->rq_sub_features[ri].push_back(fi);
        }
      }
      if (rq.NumEdges() <= f.NumEdges() && rq.NumVertices() <= f.NumVertices()) {
        ++prepare_iso_tests_;
        if (IsSubgraphIsomorphic(rq, f)) {
          prepared->feature_super_rqs[fi].push_back(ri);
          prepared->rq_super_features[ri].push_back(fi);
        }
      }
    }
  }
  prepared_ = std::move(prepared);
}

void ProbabilisticPruner::PrepareFromCache(
    std::shared_ptr<const PreparedQueryRelations> prepared) {
  prepared_ = std::move(prepared);
  prepare_iso_tests_ = 0;
}

PruneDecision ProbabilisticPruner::Bounds(uint32_t graph_id, Rng* rng) const {
  // Epsilon 2.0 can never prune (usim <= 1), -1.0 can never accept: both
  // bounds get computed, no outcome short-circuits.
  PruneDecision decision = EvaluateImpl(graph_id, 2.0, -1.0, rng);
  decision.outcome = PruneOutcome::kCandidate;
  return decision;
}

PruneDecision ProbabilisticPruner::Evaluate(uint32_t graph_id, double epsilon,
                                            Rng* rng) const {
  return EvaluateImpl(graph_id, epsilon, epsilon, rng);
}

PruneDecision ProbabilisticPruner::EvaluateImpl(uint32_t graph_id,
                                                double prune_epsilon,
                                                double accept_epsilon,
                                                Rng* rng) const {
  PruneDecision decision;
  const auto upper_of = [&](uint32_t feature_id) -> double {
    const PmiEntry* e = pmi_->Lookup(graph_id, feature_id);
    if (e == nullptr) return 0.0;  // f not ⊆iso gc: SIP = 0 (paper's <0>)
    return options_.sip_variant == SipVariant::kOpt ? e->upper_opt
                                                    : e->upper_simple;
  };
  const auto lower_of = [&](uint32_t feature_id) -> double {
    const PmiEntry* e = pmi_->Lookup(graph_id, feature_id);
    if (e == nullptr) return 0.0;
    return options_.sip_variant == SipVariant::kOpt ? e->lower_opt
                                                    : e->lower_simple;
  };

  // ---- Pruning 1: Usim(q). ----
  double usim = 0.0;
  if (options_.selection == BoundSelection::kOptimized) {
    std::vector<WeightedSet> sets;
    sets.reserve(prepared_->feature_sub_rqs.size());
    for (uint32_t fi = 0; fi < prepared_->feature_sub_rqs.size(); ++fi) {
      if (prepared_->feature_sub_rqs[fi].empty()) continue;
      WeightedSet s;
      s.id = fi;
      s.elements = prepared_->feature_sub_rqs[fi];
      s.weight = upper_of(fi);
      sets.push_back(std::move(s));
    }
    const SetCoverResult cover =
        GreedyWeightedSetCover(prepared_->universe_size, sets);
    // Uncovered relaxed queries contribute the trivial bound Pr(Brq) <= 1.
    usim = cover.total_weight + static_cast<double>(cover.num_uncovered);
  } else {
    // SSPBound: "for each rqi, we randomly find two features satisfying
    // conditions in PMI" (Section 6) — take the better of the two picks;
    // any single qualifying feature gives a valid per-rq bound.
    for (uint32_t ri = 0; ri < prepared_->universe_size; ++ri) {
      const auto& candidates = prepared_->rq_sub_features[ri];
      if (candidates.empty()) {
        usim += 1.0;
        continue;
      }
      const uint32_t first = candidates[rng->Uniform(candidates.size())];
      const uint32_t second = candidates[rng->Uniform(candidates.size())];
      usim += std::min(upper_of(first), upper_of(second));
    }
  }
  decision.usim = std::min(usim, 1.0);
  if (decision.usim < prune_epsilon) {
    decision.outcome = PruneOutcome::kPruned;
    return decision;
  }

  // ---- Pruning 2: Lsim(q). ----
  double lsim = 0.0;
  if (options_.selection == BoundSelection::kOptimized) {
    std::vector<QpWeightedSet> sets;
    for (uint32_t fi = 0; fi < prepared_->feature_super_rqs.size(); ++fi) {
      if (prepared_->feature_super_rqs[fi].empty()) continue;
      const PmiEntry* e = pmi_->Lookup(graph_id, fi);
      if (e == nullptr) continue;  // SIP = 0: contributes nothing
      QpWeightedSet s;
      s.id = fi;
      s.elements = prepared_->feature_super_rqs[fi];
      s.wl = lower_of(fi);
      s.wu = upper_of(fi);
      sets.push_back(std::move(s));
    }
    if (!sets.empty()) {
      const LsimResult r = SolveTightestLsim(prepared_->universe_size, sets,
                                             options_.lsim, rng);
      lsim = r.lsim;
    }
  } else {
    // Random f² per rq (SSPBound flavor); duplicates collapse.
    std::vector<uint32_t> chosen;
    for (uint32_t ri = 0; ri < prepared_->universe_size; ++ri) {
      const auto& candidates = prepared_->rq_super_features[ri];
      if (candidates.empty()) continue;
      chosen.push_back(candidates[rng->Uniform(candidates.size())]);
    }
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    double sum_l = 0.0, sum_u = 0.0;
    for (uint32_t fi : chosen) {
      sum_l += lower_of(fi);
      sum_u += upper_of(fi);
    }
    lsim = std::max(0.0, sum_l - sum_u * sum_u);
  }
  decision.lsim = std::max(0.0, std::min(lsim, 1.0));
  if (accept_epsilon >= 0.0 && decision.lsim >= accept_epsilon) {
    decision.outcome = PruneOutcome::kAccepted;
    return decision;
  }
  decision.outcome = PruneOutcome::kCandidate;
  return decision;
}

}  // namespace pgsim
