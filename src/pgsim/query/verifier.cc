#include "pgsim/query/verifier.h"

#include <algorithm>
#include <cmath>

#include "pgsim/graph/mcs.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/prob/possible_world.h"

namespace pgsim {

namespace {

// In-pool equivalent of AbsorbDnfTerms: drops every event that is a strict
// superset of another (rows are deduplicated, so ContainsAll of a different
// row means strict). Marks first, compacts after — compacting inline would
// overwrite rows still being compared. Keeps first-seen order; the sampler
// re-orders by marginal anyway and the union is unchanged.
void AbsorbPoolEvents(EventSetPool* events, std::vector<uint32_t>* absorbed) {
  const size_t wpr = events->words_per_row();
  const size_t m = events->size();
  absorbed->assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      // i ⊋ j: event i is implied by event j.
      if (j != i &&
          EventSetPool::ContainsAll(events->Row(i), events->Row(j), wpr) &&
          !EventSetPool::Equal(events->Row(i), events->Row(j), wpr)) {
        (*absorbed)[i] = 1;
        break;
      }
    }
  }
  size_t kept = 0;
  for (size_t i = 0; i < m; ++i) {
    if ((*absorbed)[i]) continue;
    events->CopyRow(kept, i);
    ++kept;
  }
  events->Truncate(kept);
}

// Calls fn(bit_index) for every set bit of the n-word span.
template <typename Fn>
void ForEachBit(const uint64_t* words, size_t n, Fn&& fn) {
  for (size_t wi = 0; wi < n; ++wi) {
    uint64_t w = words[wi];
    while (w) {
      fn(wi * 64 + static_cast<size_t>(__builtin_ctzll(w)));
      w &= w - 1;
    }
  }
}

}  // namespace

Status CollectSimilarityEvents(const ProbabilisticGraph& g,
                               const std::vector<Graph>& relaxed,
                               const VerifierOptions& options,
                               VerifierScratch* scratch,
                               const std::vector<MatchPlan>* plans,
                               const SignatureGate* gate) {
  scratch->sig_pairs_rejected = 0;
  scratch->domain_candidates_pruned = 0;
  scratch->vf2_calls_avoided = 0;
  scratch->rq_plans_compiled = 0;
  // The pipeline hands in plans compiled once per query; a standalone call
  // compiles them here, into reused scratch storage, lazily — only when a
  // relaxed query actually reaches the matcher, so a signature rejection
  // skips the compile too (an empty `order` marks an uncompiled slot; every
  // relaxed query is non-empty, so a compiled plan never has one).
  const bool lazy_plans = plans == nullptr;
  if (lazy_plans) {
    scratch->rq_plans.clear();
    scratch->rq_plans.resize(relaxed.size());
    plans = &scratch->rq_plans;
  }
  EventSetPool& events = scratch->events;
  events.Reset(g.NumEdges());
  scratch->dedup.Reset(std::min(options.max_total_embeddings, size_t{512}));
  Status failure = Status::OK();
  Vf2Options vf2;
  // Enumerate one past the inclusive cap so "exactly at the cap" is
  // distinguishable from "truncated"; 0 keeps its historical "uncapped"
  // meaning (and SIZE_MAX wraps to it, same intent).
  vf2.max_embeddings = options.max_embeddings_per_rq == 0
                           ? 0
                           : options.max_embeddings_per_rq + 1;
  vf2.dedup_by_edge_set = true;
  for (size_t ri = 0; ri < relaxed.size(); ++ri) {
    vf2.domains = nullptr;
    if (gate != nullptr) {
      // Cover test + domain build in one pass: a barren pair contributes no
      // embeddings, so skipping it leaves the event pool bit-identical.
      if (!BuildCandidateDomains(relaxed[ri], (*gate->rq)[ri].view(),
                                 g.certain(), gate->target,
                                 &scratch->vf2.domains,
                                 &scratch->domain_candidates_pruned)) {
        ++scratch->sig_pairs_rejected;
        ++scratch->vf2_calls_avoided;
        continue;
      }
      vf2.domains = &scratch->vf2.domains;
    }
    if (lazy_plans && scratch->rq_plans[ri].order.empty()) {
      scratch->rq_plans[ri] = CompileMatchPlan(relaxed[ri]);
      ++scratch->rq_plans_compiled;
    }
    const size_t n = EnumerateEmbeddings(
        (*plans)[ri], g.certain(), vf2, &scratch->vf2,
        [&](const Embedding& emb) {
          const size_t row = events.AddRow();
          for (EdgeId e : emb.edge_map) events.SetBit(row, e);
          if (!scratch->dedup.InsertLastRow(&events)) {
            return true;  // duplicate event
          }
          if (events.size() > options.max_total_embeddings) {
            // Inclusive total cap: exactly max_total_embeddings distinct
            // events are allowed; inserting the (max+1)-th is the error.
            failure = Status::ResourceExhausted(
                "CollectSimilarityEvents: total embedding cap hit");
            return false;
          }
          return true;
        });
    if (!failure.ok()) return failure;
    if (options.max_embeddings_per_rq != 0 &&
        n > options.max_embeddings_per_rq) {
      return Status::ResourceExhausted(
          "CollectSimilarityEvents: per-rq embedding cap hit");
    }
  }
  return Status::OK();
}

Result<std::vector<EdgeBitset>> CollectSimilarityEvents(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options) {
  VerifierScratch scratch;
  PGSIM_RETURN_NOT_OK(CollectSimilarityEvents(g, relaxed, options, &scratch));
  std::vector<EdgeBitset> events(scratch.events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].AssignWords(scratch.events.Row(i), g.NumEdges());
  }
  return events;
}

Result<double> ExactSspFromEvents(const ProbabilisticGraph& g,
                                  const VerifierOptions& options,
                                  VerifierScratch* scratch) {
  const size_t m = scratch->events.size();
  if (m == 0) return 0.0;
  scratch->exact_events.resize(m);
  for (size_t i = 0; i < m; ++i) {
    scratch->exact_events[i].AssignWords(scratch->events.Row(i),
                                         g.NumEdges());
  }
  return ExactDnfProbability(g, scratch->exact_events, options.exact);
}

Result<double> ExactSspFromEvents(const ProbabilisticGraph& g,
                                  const std::vector<EdgeBitset>& events,
                                  const VerifierOptions& options) {
  if (events.empty()) return 0.0;
  return ExactDnfProbability(g, events, options.exact);
}

Result<double> ExactSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options) {
  VerifierScratch scratch;
  return ExactSubgraphSimilarityProbability(g, relaxed, options, &scratch);
}

Result<double> ExactSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, VerifierScratch* scratch,
    const std::vector<MatchPlan>* plans, const SignatureGate* gate) {
  PGSIM_RETURN_NOT_OK(
      CollectSimilarityEvents(g, relaxed, options, scratch, plans, gate));
  return ExactSspFromEvents(g, options, scratch);
}

Result<double> ExactSspByWorldEnumeration(const ProbabilisticGraph& g,
                                          const Graph& q, uint32_t delta,
                                          uint32_t max_edges) {
  WorldEnumOptions world_options;
  world_options.max_edges = max_edges;
  double total = 0.0;
  // One world-view graph reused across all 2^|E| worlds: BuildEdgeSubsetGraph
  // refills its CSR storage instead of running a GraphBuilder per world.
  Graph world_graph;
  PGSIM_RETURN_NOT_OK(EnumerateWorlds(
      g,
      [&](const EdgeBitset& world, double p) {
        BuildEdgeSubsetGraph(g.certain(), world, &world_graph);
        if (IsSubgraphSimilar(q, world_graph, delta)) total += p;
        return true;
      },
      world_options));
  return total;
}

Result<double> SampleSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, Rng* rng) {
  VerifierScratch scratch;
  return SampleSubgraphSimilarityProbability(g, relaxed, options, rng,
                                             &scratch);
}

Result<double> SampleSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, Rng* rng, VerifierScratch* scratch,
    const std::vector<MatchPlan>* plans, const SignatureGate* gate) {
  PGSIM_ASSIGN_OR_RETURN(
      SampleOutcome out,
      SampleSubgraphSimilarityProbabilityAnytime(
          g, relaxed, options, rng, scratch, plans, SampleControl{}, gate));
  return out.estimate;
}

namespace {

// Outcome of a run that never drew: before the first draw the union bound
// Pr(∨Bfi) <= min(V, 1) is all we know; before event collection, nothing.
SampleOutcome UndrawOutcome(double v_upper, bool completed) {
  SampleOutcome out;
  out.estimate = 0.0;
  out.lo = 0.0;
  out.hi = v_upper;
  out.completed = completed;
  return out;
}

}  // namespace

Result<SampleOutcome> SampleSubgraphSimilarityProbabilityAnytime(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, Rng* rng, VerifierScratch* scratch,
    const std::vector<MatchPlan>* plans, const SampleControl& control,
    const SignatureGate* gate) {
  if (control.cancel != nullptr && control.cancel->IsCancelled()) {
    // Clear the gate telemetry CollectSimilarityEvents would have reset, so
    // callers accumulating after a cancelled run don't re-read the previous
    // candidate's counts.
    scratch->sig_pairs_rejected = 0;
    scratch->domain_candidates_pruned = 0;
    scratch->vf2_calls_avoided = 0;
    scratch->rq_plans_compiled = 0;
    return UndrawOutcome(1.0, /*completed=*/false);
  }
  PGSIM_RETURN_NOT_OK(
      CollectSimilarityEvents(g, relaxed, options, scratch, plans, gate));
  EventSetPool& events = scratch->events;
  if (events.empty()) {
    // No embedding of any relaxed query: the SSP is exactly 0.
    SampleOutcome out;
    out.hi = 0.0;
    return out;
  }
  // Absorption shrinks the event list without changing the union.
  AbsorbPoolEvents(&events, &scratch->dead_stamp);

  const size_t num_edges = g.NumEdges();
  const size_t wpr = events.words_per_row();
  const size_t m = events.size();
  const bool partition = g.kind() == JointModelKind::kPartition;

  // Union of event supports: edges outside it cannot affect any event, so
  // sampling is restricted to the ne sets that intersect it.
  EdgeBitset& support = scratch->support;
  support.ResetTo(num_edges);
  for (size_t i = 0; i < m; ++i) support.OrWords(events.Row(i), wpr);
  std::vector<uint32_t>& active_ne = scratch->active_ne;
  active_ne.clear();
  const auto& ne_sets = g.ne_sets();
  for (size_t ni = 0; ni < ne_sets.size(); ++ni) {
    for (EdgeId e : ne_sets[ni].edges) {
      if (support.Test(e)) {
        active_ne.push_back(static_cast<uint32_t>(ni));
        break;
      }
    }
  }
  const size_t num_active = active_ne.size();

  // Exact marginals Pr(Bfi) via the joint model ("junction tree" step).
  // Partition models get them as a byproduct of compiling the sampling plan
  // below (the product of each event's conditional ne-set masses).
  std::vector<double>& marginals = scratch->marginals;
  marginals.resize(m);
  if (partition) {
    // ---- Compile the per-candidate sampling plan. ----
    // One unconditional step per active ne set: its dense probability table
    // plus, per assignment, the world words to OR in. Per event, override
    // steps for the ne sets the event intersects: only the assignments
    // consistent with "event edges present", with their total mass. The
    // per-draw loop below then runs straight over these flat arrays — no
    // care-mask recomputation, no per-draw marginal rescan.
    std::vector<uint32_t>& step_off = scratch->plan_step_off;
    std::vector<double>& plan_prob = scratch->plan_prob;
    std::vector<uint64_t>& plan_bits = scratch->plan_bits;
    step_off.assign(num_active + 1, 0);
    plan_prob.clear();
    plan_bits.clear();
    for (size_t ai = 0; ai < num_active; ++ai) {
      const NeighborEdgeSet& ne = ne_sets[active_ne[ai]];
      const uint32_t table_size = 1U << ne.table.arity();
      step_off[ai] = static_cast<uint32_t>(plan_prob.size());
      for (uint32_t mask = 0; mask < table_size; ++mask) {
        plan_prob.push_back(ne.table.Prob(mask));
        const size_t base = plan_bits.size();
        plan_bits.resize(base + wpr, 0);
        for (size_t j = 0; j < ne.edges.size(); ++j) {
          if ((mask >> j) & 1U) {
            plan_bits[base + (ne.edges[j] >> 6)] |=
                (1ULL << (ne.edges[j] & 63));
          }
        }
      }
    }
    step_off[num_active] = static_cast<uint32_t>(plan_prob.size());

    std::vector<uint32_t>& ov_row_off = scratch->ov_row_off;
    std::vector<uint32_t>& ov_active = scratch->ov_active;
    std::vector<uint32_t>& ov_entry_off = scratch->ov_entry_off;
    std::vector<double>& ov_mass = scratch->ov_mass;
    std::vector<double>& ov_prob = scratch->ov_prob;
    std::vector<uint64_t>& ov_bits = scratch->ov_bits;
    ov_row_off.assign(m + 1, 0);
    ov_active.clear();
    ov_entry_off.clear();
    ov_mass.clear();
    ov_prob.clear();
    ov_bits.clear();
    for (size_t i = 0; i < m; ++i) {
      const uint64_t* row = events.Row(i);
      double marginal = 1.0;
      for (size_t ai = 0; ai < num_active; ++ai) {
        const NeighborEdgeSet& ne = ne_sets[active_ne[ai]];
        uint32_t care = 0;
        for (size_t j = 0; j < ne.edges.size(); ++j) {
          if ((row[ne.edges[j] >> 6] >> (ne.edges[j] & 63)) & 1ULL) {
            care |= (1U << j);
          }
        }
        if (care == 0) continue;  // unconditioned: the global step applies
        ov_active.push_back(static_cast<uint32_t>(ai));
        ov_entry_off.push_back(static_cast<uint32_t>(ov_prob.size()));
        const uint32_t table_size = 1U << ne.table.arity();
        double mass = 0.0;
        for (uint32_t mask = 0; mask < table_size; ++mask) {
          if ((mask & care) != care) continue;  // an event edge absent
          const double p = ne.table.Prob(mask);
          ov_prob.push_back(p);
          mass += p;
          const size_t base = ov_bits.size();
          ov_bits.resize(base + wpr, 0);
          for (size_t j = 0; j < ne.edges.size(); ++j) {
            if ((mask >> j) & 1U) {
              ov_bits[base + (ne.edges[j] >> 6)] |=
                  (1ULL << (ne.edges[j] & 63));
            }
          }
        }
        ov_mass.push_back(mass);
        marginal *= mass;
      }
      ov_row_off[i + 1] = static_cast<uint32_t>(ov_active.size());
      marginals[i] = marginal;
    }
    ov_entry_off.push_back(static_cast<uint32_t>(ov_prob.size()));
  } else {
    for (size_t i = 0; i < m; ++i) {
      scratch->tmp.AssignWords(events.Row(i), num_edges);
      marginals[i] = g.MarginalAllPresent(scratch->tmp, &scratch->sample);
    }
  }

  // Descending-marginal order: likely events come first, so the most
  // frequently drawn event sits at position 0 — where canonicity is free.
  // Exact marginal ties (possible under hand-set uniform probabilities)
  // break by row content, not insertion order — rows are deduplicated, so
  // this is a total order and the draw sequence is a pure function of the
  // event *set* and the model, independent of the enumeration order the
  // compiled match plans produced the events in.
  std::vector<uint32_t>& order = scratch->order;
  order.resize(m);
  for (size_t i = 0; i < m; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (marginals[a] != marginals[b]) return marginals[a] > marginals[b];
    const uint64_t* ra = events.Row(a);
    const uint64_t* rb = events.Row(b);
    return std::lexicographical_compare(ra, ra + wpr, rb, rb + wpr);
  });

  // Cumulative distribution for i ∝ Pr(Bfi)/V, in sorted order. V itself is
  // the cumulative tail, so it too is summed in sorted order — insertion
  // order must not leak into any floating-point result.
  std::vector<double>& cumulative = scratch->cumulative;
  cumulative.resize(m);
  double acc = 0.0;
  for (size_t p = 0; p < m; ++p) {
    acc += marginals[order[p]];
    cumulative[p] = acc;
  }
  const double v = acc;
  if (v <= 0.0) {
    // Every event has zero marginal: the SSP is exactly 0.
    SampleOutcome out;
    out.hi = 0.0;
    return out;
  }

  // Contiguous copy of the rows in sorted order: the canonicity scan walks
  // events[0..pos) back to back instead of hopping through `order`.
  EventSetPool& sorted = scratch->sorted_events;
  sorted.Reset(num_edges);
  for (size_t p = 0; p < m; ++p) {
    const size_t r = sorted.AddRow();
    std::copy(events.Row(order[p]), events.Row(order[p]) + wpr,
              sorted.Row(r));
  }

  // Per-edge inverted index: edge -> ascending sorted-event positions. A
  // round marks the events killed by each absent support edge; an earlier
  // event that survives marking holds, making the round non-canonical.
  std::vector<uint32_t>& inv_offsets = scratch->inv_offsets;
  std::vector<uint32_t>& inv_entries = scratch->inv_entries;
  inv_offsets.assign(num_edges + 1, 0);
  size_t total_bits = 0;
  for (size_t p = 0; p < m; ++p) {
    ForEachBit(sorted.Row(p), wpr, [&](size_t e) {
      ++inv_offsets[e + 1];
      ++total_bits;
    });
  }
  for (size_t e = 1; e <= num_edges; ++e) inv_offsets[e] += inv_offsets[e - 1];
  inv_entries.resize(total_bits);
  for (size_t p = 0; p < m; ++p) {  // ascending p => ascending per-edge lists
    ForEachBit(sorted.Row(p), wpr, [&](size_t e) {
      inv_entries[inv_offsets[e]++] = static_cast<uint32_t>(p);
    });
  }
  for (size_t e = num_edges; e > 0; --e) inv_offsets[e] = inv_offsets[e - 1];
  inv_offsets[0] = 0;

  scratch->dead_stamp.assign(m, 0);
  scratch->stamp = 0;

  // Fixed-N (Algorithm 5) or adaptive stopping (DKLR extension): adaptive
  // runs until `target_hits` canonical hits or mc.max_samples draws.
  const uint64_t fixed_n = options.mc.NumSamples();
  const uint64_t target_hits =
      options.adaptive
          ? 1 + static_cast<uint64_t>(std::ceil(
                    4.0 * (M_E - 2.0) *
                    std::log(2.0 / std::clamp(options.mc.xi, 1e-9, 0.999)) /
                    (options.mc.tau * options.mc.tau)))
          : 0;
  const Span<const uint32_t> active(active_ne.data(), active_ne.size());
  std::vector<uint64_t>& world_words = scratch->world_words;
  // Canonicity strategy: direct superset scans win while a row is a couple
  // of words; the inverted index wins once rows get wide enough that each
  // ContainsAll costs more than touching the few absent-edge incidences.
  const bool narrow_rows = wpr <= 2;
  uint64_t cnt = 0;
  uint64_t drawn = 0;
  bool completed = true;
  for (;;) {
    // Cancellation point: one relaxed load per draw (plus the deterministic
    // after-N-draws test hook). Checked before the stopping rule so a
    // cancelled run stops without consuming another RNG draw — the partial
    // state is a pure function of (seed, draws taken).
    if ((control.cancel_after_draws != 0 &&
         drawn >= control.cancel_after_draws) ||
        (control.cancel != nullptr && control.cancel->IsCancelled())) {
      completed = false;
      break;
    }
    if (options.adaptive) {
      if (cnt >= target_hits || drawn >= options.mc.max_samples) break;
    } else if (drawn >= fixed_n) {
      break;
    }
    ++drawn;
    // Line 4: choose i with probability Pr(Bfi)/V.
    const double target = rng->UniformDouble() * v;
    const size_t found = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), target) -
        cumulative.begin());
    const size_t pos = std::min(found, m - 1);
    const uint32_t row = order[pos];
    if (marginals[row] <= 0.0) continue;
    // Position 0 has no earlier events: the round is canonical whatever
    // world would be drawn, so skip sampling it. Descending-marginal order
    // makes this the most probable — and now cheapest — case.
    if (pos == 0) {
      ++cnt;
      continue;
    }
    // Line 5: sample a world conditioned on Bf = 1, support-restricted.
    const uint64_t* world;
    if (partition) {
      // Run the precompiled plan: per active ne set one uniform draw, a
      // compact CDF scan, and an OR of the chosen assignment's words.
      world_words.assign(wpr, 0);
      size_t ov = scratch->ov_row_off[row];
      const size_t ov_end = scratch->ov_row_off[row + 1];
      for (size_t ai = 0; ai < num_active; ++ai) {
        const double* probs;
        const uint64_t* bits;
        size_t n;
        double mass;
        if (ov < ov_end && scratch->ov_active[ov] == ai) {
          const uint32_t b = scratch->ov_entry_off[ov];
          n = scratch->ov_entry_off[ov + 1] - b;
          probs = scratch->ov_prob.data() + b;
          bits = scratch->ov_bits.data() + size_t{b} * wpr;
          mass = scratch->ov_mass[ov];
          ++ov;
        } else {
          const uint32_t b = scratch->plan_step_off[ai];
          n = scratch->plan_step_off[ai + 1] - b;
          probs = scratch->plan_prob.data() + b;
          bits = scratch->plan_bits.data() + size_t{b} * wpr;
          mass = 1.0;
        }
        double t = rng->UniformDouble() * mass;
        size_t chosen = n - 1;  // floating-point tail underflow
        for (size_t e2 = 0; e2 < n; ++e2) {
          t -= probs[e2];
          if (t < 0.0) {
            chosen = e2;
            break;
          }
        }
        const uint64_t* bw = bits + chosen * wpr;
        for (size_t w = 0; w < wpr; ++w) world_words[w] |= bw[w];
      }
      world = world_words.data();
    } else {
      scratch->tmp.AssignWords(events.Row(row), num_edges);
      const Status sampled = g.SampleWorldConditionedAllPresentInto(
          rng, scratch->tmp, active, &scratch->sample, &scratch->world);
      if (!sampled.ok()) continue;  // zero-mass condition: contributes nothing
      world = scratch->world.words().data();
    }
    // Line 6: count iff no earlier event also holds (Karp–Luby canonicity).
    if (narrow_rows) {
      // Narrow rows: a superset test is one or two word ops, so scan the
      // earlier (likelier-to-hold, thanks to the marginal sort) events
      // directly and exit at the first holder.
      bool canonical = true;
      for (size_t p = 0; p < pos; ++p) {
        if (EventSetPool::ContainsAll(world, sorted.Row(p), wpr)) {
          canonical = false;  // event p holds
          break;
        }
      }
      if (canonical) ++cnt;
    } else {
      // Wide rows: consult the per-edge inverted index instead — only the
      // events whose support intersects an absent support edge are touched.
      // Mark those dead; the round is canonical iff all `pos` earlier
      // events die.
      const uint32_t stamp = ++scratch->stamp;
      const std::vector<uint64_t>& support_words = support.words();
      size_t dead_below = 0;
      for (size_t wi = 0; wi < wpr; ++wi) {
        uint64_t absent = support_words[wi] & ~world[wi];
        while (absent) {
          const size_t e =
              wi * 64 + static_cast<size_t>(__builtin_ctzll(absent));
          absent &= absent - 1;
          const uint32_t begin = inv_offsets[e];
          const uint32_t end = inv_offsets[e + 1];
          for (uint32_t k = begin; k < end; ++k) {
            const uint32_t p = inv_entries[k];
            if (p >= pos) break;  // ascending lists: later events irrelevant
            if (scratch->dead_stamp[p] != stamp) {
              scratch->dead_stamp[p] = stamp;
              ++dead_below;
            }
          }
        }
      }
      if (dead_below == pos) ++cnt;  // no earlier event survived
    }
  }
  if (drawn == 0) return UndrawOutcome(std::min(v, 1.0), completed);
  SampleOutcome out;
  out.drawn = drawn;
  out.hits = cnt;
  out.completed = completed;
  out.estimate = std::clamp(
      v * static_cast<double>(cnt) / static_cast<double>(drawn), 0.0, 1.0);
  // Hoeffding at level 1 - xi: each round's indicator is bounded by [0, 1]
  // and scaled by v, so the half-width is v * sqrt(ln(2/xi) / (2 * drawn)).
  const double half_width =
      v * std::sqrt(std::log(2.0 / std::clamp(options.mc.xi, 1e-9, 0.999)) /
                    (2.0 * static_cast<double>(drawn)));
  out.lo = std::max(out.estimate - half_width, 0.0);
  out.hi = std::min({out.estimate + half_width, v, 1.0});
  return out;
}

}  // namespace pgsim
