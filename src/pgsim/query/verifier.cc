#include "pgsim/query/verifier.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "pgsim/graph/mcs.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/prob/possible_world.h"

namespace pgsim {

Result<std::vector<EdgeBitset>> CollectSimilarityEvents(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options) {
  std::vector<EdgeBitset> events;
  std::unordered_set<EdgeBitset, EdgeBitsetHash> seen;
  for (const Graph& rq : relaxed) {
    bool truncated = false;
    const auto embeddings = EmbeddingEdgeSets(
        rq, g.certain(), options.max_embeddings_per_rq, &truncated);
    if (truncated) {
      return Status::ResourceExhausted(
          "CollectSimilarityEvents: per-rq embedding cap hit");
    }
    for (const EdgeBitset& emb : embeddings) {
      if (seen.insert(emb).second) {
        events.push_back(emb);
        if (events.size() > options.max_total_embeddings) {
          return Status::ResourceExhausted(
              "CollectSimilarityEvents: total embedding cap hit");
        }
      }
    }
  }
  return events;
}

Result<double> ExactSspFromEvents(const ProbabilisticGraph& g,
                                  const std::vector<EdgeBitset>& events,
                                  const VerifierOptions& options) {
  if (events.empty()) return 0.0;
  return ExactDnfProbability(g, events, options.exact);
}

Result<double> ExactSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options) {
  PGSIM_ASSIGN_OR_RETURN(const std::vector<EdgeBitset> events,
                         CollectSimilarityEvents(g, relaxed, options));
  return ExactSspFromEvents(g, events, options);
}

Result<double> ExactSspByWorldEnumeration(const ProbabilisticGraph& g,
                                          const Graph& q, uint32_t delta,
                                          uint32_t max_edges) {
  WorldEnumOptions world_options;
  world_options.max_edges = max_edges;
  double total = 0.0;
  PGSIM_RETURN_NOT_OK(EnumerateWorlds(
      g,
      [&](const EdgeBitset& world, double p) {
        // Build the possible world graph: all vertices, present edges.
        GraphBuilder builder;
        for (VertexId v = 0; v < g.certain().NumVertices(); ++v) {
          builder.AddVertex(g.certain().VertexLabel(v));
        }
        for (uint32_t e : world.ToVector()) {
          const Edge& edge = g.certain().GetEdge(e);
          auto r = builder.AddEdge(edge.u, edge.v, edge.label);
          (void)r;
        }
        const Graph world_graph = builder.Build();
        if (IsSubgraphSimilar(q, world_graph, delta)) total += p;
        return true;
      },
      world_options));
  return total;
}

Result<double> SampleSubgraphSimilarityProbability(
    const ProbabilisticGraph& g, const std::vector<Graph>& relaxed,
    const VerifierOptions& options, Rng* rng) {
  PGSIM_ASSIGN_OR_RETURN(std::vector<EdgeBitset> events,
                         CollectSimilarityEvents(g, relaxed, options));
  if (events.empty()) return 0.0;
  // Absorption shrinks the event list without changing the union.
  events = AbsorbDnfTerms(std::move(events));

  // Exact marginals Pr(Bfi) via the joint model ("junction tree" step).
  const size_t m = events.size();
  std::vector<double> marginals(m);
  double v = 0.0;
  for (size_t i = 0; i < m; ++i) {
    marginals[i] = g.MarginalAllPresent(events[i]);
    v += marginals[i];
  }
  if (v <= 0.0) return 0.0;

  // Cumulative distribution for i ∝ Pr(Bfi)/V.
  std::vector<double> cumulative(m);
  double acc = 0.0;
  for (size_t i = 0; i < m; ++i) {
    acc += marginals[i];
    cumulative[i] = acc;
  }

  // Fixed-N (Algorithm 5) or adaptive stopping (DKLR extension): adaptive
  // runs until `target_hits` canonical hits or mc.max_samples draws.
  const uint64_t fixed_n = options.mc.NumSamples();
  const uint64_t target_hits =
      options.adaptive
          ? 1 + static_cast<uint64_t>(std::ceil(
                    4.0 * (M_E - 2.0) *
                    std::log(2.0 / std::clamp(options.mc.xi, 1e-9, 0.999)) /
                    (options.mc.tau * options.mc.tau)))
          : 0;
  uint64_t cnt = 0;
  uint64_t drawn = 0;
  for (;;) {
    if (options.adaptive) {
      if (cnt >= target_hits || drawn >= options.mc.max_samples) break;
    } else if (drawn >= fixed_n) {
      break;
    }
    ++drawn;
    // Line 4: choose i with probability Pr(Bfi)/V.
    const double target = rng->UniformDouble() * v;
    const size_t i = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), target) -
        cumulative.begin());
    const size_t idx = std::min(i, m - 1);
    if (marginals[idx] <= 0.0) continue;
    // Line 5: sample a world conditioned on Bf_idx = 1.
    auto world = g.SampleWorldConditioned(rng, events[idx], events[idx]);
    if (!world.ok()) continue;  // zero-mass condition: contributes nothing
    // Line 6: count iff no earlier event also holds (Karp–Luby canonicity).
    bool canonical = true;
    for (size_t j = 0; j < idx; ++j) {
      if (world.value().ContainsAll(events[j])) {
        canonical = false;
        break;
      }
    }
    if (canonical) ++cnt;
  }
  if (drawn == 0) return 0.0;
  const double estimate =
      v * static_cast<double>(cnt) / static_cast<double>(drawn);
  return std::clamp(estimate, 0.0, 1.0);
}

}  // namespace pgsim
