// Batch-scoped memoization of per-query derived artifacts.
//
// Workloads repeat structure: many queries in one batch are byte-identical
// or isomorphic to each other. The expensive per-query computations that
// precede any per-graph work — the relaxation set U (edge-deletion
// enumeration + isomorphism dedup), the per-query feature embedding counts
// feeding the structural filter thresholds, and the pruner's feature/rq
// relations (a VF2 test per (feature, rq) pair) together with the compiled
// bound program that rides inside PreparedQueryRelations — are pure
// functions of the query, so QueryProcessor::QueryBatch shares them across
// the batch through this cache.
//
// Keying is two-tier, chosen so that a cache hit is *provably* bit-identical
// to a fresh computation (QueryBatch's answers must not depend on the cache
// or on which worker populated it):
//
//   - class key: CanonicalCode(q). Feature embedding counts are invariant
//     under vertex relabeling, so any query of the class may reuse them.
//   - exact key: GraphExactKey(q). The relaxation set's *order* depends on
//     q's concrete edge order, and downstream stages (set cover ties, the
//     shared verification RNG stream) are order-sensitive — so U, and the
//     pruner relations derived from U, are reused only for byte-identical
//     duplicates, where GenerateRelaxedQueries is deterministic and
//     reproduces the cached value exactly.
//
// Entries are immutable once stored (shared_ptr<const ...>); the first
// completion to publish wins and later equal stores are dropped, so
// concurrent workers racing on the same class still read one consistent
// value. The publish order is whatever the batch scheduler produces —
// chunk order under the chunked parallel-for, arbitrary task-completion
// order under the work-stealing scheduler — and is immaterial by the
// determinism argument above: every store of a given key carries the same
// bytes. The cache assumes one QueryOptions for all queries probing it —
// true by construction for a QueryBatch call, which owns the cache's
// lifetime.

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pgsim/graph/graph.h"
#include "pgsim/graph/signature.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/query/prob_pruner.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {

/// Hit/miss counters, snapshot via BatchQueryCache::stats(). A "probe" is
/// one Find() call for a cacheable query; counts_*/prepared_* counters track
/// probes even when the corresponding stage later skips storing (filter or
/// probabilistic pruning disabled).
struct BatchCacheStats {
  size_t relax_hits = 0;      ///< relaxation sets reused (exact duplicates)
  size_t relax_misses = 0;
  size_t counts_hits = 0;     ///< feature-count sets reused (iso class hits)
  size_t counts_misses = 0;
  size_t prepared_hits = 0;   ///< pruner relations reused (exact duplicates)
  size_t prepared_misses = 0;
  size_t plans_hits = 0;      ///< rq match-plan sets reused (exact duplicates)
  size_t plans_misses = 0;
  size_t sigs_hits = 0;       ///< rq signature sets reused (exact duplicates)
  size_t sigs_misses = 0;     ///< probes counted even with signatures off
  size_t uncacheable = 0;     ///< canonical code over budget; query ran cold
};

/// Thread-safe per-batch artifact cache. See the file comment for the
/// determinism contract.
class BatchQueryCache {
 public:
  /// One probe's outcome: keys plus whatever artifacts were already cached.
  struct Lookup {
    bool cacheable = false;    ///< false when CanonicalCode failed
    std::string canonical_key;
    std::string exact_key;
    /// Non-null on a relaxation hit (byte-identical query seen before).
    std::shared_ptr<const std::vector<Graph>> relaxed;
    /// Non-null on a feature-count hit (isomorphic query seen before).
    std::shared_ptr<const QueryFeatureCounts> counts;
    /// Non-null on a pruner-relations hit (byte-identical query; the
    /// relations are a function of U, which is reused under the same key).
    std::shared_ptr<const PreparedQueryRelations> prepared;
    /// Non-null on a match-plan hit: one compiled MatchPlan per relaxed
    /// query, in U's order — a pure function of U (plus the processor's
    /// fixed database label frequencies), so exact-key semantics apply as
    /// for `relaxed`.
    std::shared_ptr<const std::vector<MatchPlan>> plans;
    /// Non-null on a query-signature hit: one QuerySignature per relaxed
    /// query, in U's order — a pure function of U, so exact-key semantics
    /// apply as for `relaxed`.
    std::shared_ptr<const std::vector<QuerySignature>> sigs;
  };

  /// Computes both keys of `q`, probes the cache, and bumps counters.
  Lookup Find(const Graph& q);

  /// Publishes a freshly computed relaxation set for lk's exact form.
  /// First store per class wins; equal later stores are dropped.
  void StoreRelaxed(const Lookup& lk,
                    std::shared_ptr<const std::vector<Graph>> relaxed);

  /// Publishes freshly computed feature counts for lk's isomorphism class.
  void StoreCounts(const Lookup& lk,
                   std::shared_ptr<const QueryFeatureCounts> counts);

  /// Publishes pruner relations for lk's exact form. Dropped unless the
  /// class entry's stored relaxation variant is lk's exact form (the
  /// relations must describe the exact U that relax-tier hits will reuse).
  void StorePrepared(const Lookup& lk,
                     std::shared_ptr<const PreparedQueryRelations> prepared);

  /// Publishes the compiled relaxed-query match plans for lk's exact form
  /// (same gating as StorePrepared: the plans must describe the exact U
  /// that relax-tier hits will reuse).
  void StorePlans(const Lookup& lk,
                  std::shared_ptr<const std::vector<MatchPlan>> plans);

  /// Publishes the relaxed-query vertex signatures for lk's exact form
  /// (same gating as StorePlans: the signatures must describe the exact U
  /// that relax-tier hits will reuse).
  void StoreSigs(const Lookup& lk,
                 std::shared_ptr<const std::vector<QuerySignature>> sigs);

  /// Counter snapshot (consistent under the cache mutex).
  BatchCacheStats stats() const;

 private:
  struct ClassEntry {
    /// Exact key of the variant whose relaxation set (and pruner relations)
    /// are stored; isomorphic queries with a different vertex order miss
    /// those tiers.
    std::string exact_key;
    std::shared_ptr<const std::vector<Graph>> relaxed;
    std::shared_ptr<const QueryFeatureCounts> counts;
    std::shared_ptr<const PreparedQueryRelations> prepared;
    std::shared_ptr<const std::vector<MatchPlan>> plans;
    std::shared_ptr<const std::vector<QuerySignature>> sigs;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, ClassEntry> classes_;
  BatchCacheStats stats_;
};

}  // namespace pgsim
