// Tightest Lsim(q) via relaxed quadratic programming + randomized rounding
// (paper Section 3.2.2, Definition 11, Equation 9, Algorithm 2, Theorem 5).
//
// Candidate sets s_f = {rq : rq ⊆iso f} carry pair weights
// (wL, wU) = (LowerB(f), UpperB(f)). For a selection C,
//
//   Lsim(C) = sum_{C} wL - (sum_{C} wU)^2
//
// (the paper's double sum over ordered pairs of C) is a valid lower bound of
// Pr(q ⊆sim g) by Theorem 4 for ANY C — coverage of U only drives tightness.
// Equation 9's 0/1 program is relaxed to x in [0,1]^n, which makes the
// objective concave (the quadratic term is rank-1), solved here by projected
// gradient ascent with cyclic projections onto {box ∩ cover half-spaces},
// then rounded by Algorithm 2: 2 ln|U| rounds picking each set with
// probability x*_s. The returned bound is the best of the rounded selection,
// a deterministic greedy selection, and the best single set — all valid.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pgsim/common/random.h"

namespace pgsim {

/// One candidate set with pair weights (wL = LowerB(f), wU = UpperB(f)).
struct QpWeightedSet {
  uint32_t id = 0;
  std::vector<uint32_t> elements;
  double wl = 0.0;
  double wu = 0.0;
};

/// Solver knobs.
struct LsimOptions {
  int gradient_iterations = 120;
  int projection_sweeps = 25;
  /// Rounding rounds = ceil(rounding_factor * ln(max(2, |U|))) (Alg 2: 2ln|U|).
  double rounding_factor = 2.0;
};

/// Outcome of the Lsim computation.
struct LsimResult {
  double lsim = 0.0;                 ///< best lower bound found (>= 0)
  std::vector<uint32_t> chosen_ids;  ///< selection achieving it
  bool covered = false;              ///< selection covers U?
  double relaxed_objective = 0.0;    ///< QP(I), an upper bound on Eq. 9
};

/// Computes the tightest Lsim(q) over the candidate sets.
LsimResult SolveTightestLsim(size_t universe_size,
                             const std::vector<QpWeightedSet>& sets,
                             const LsimOptions& options, Rng* rng);

/// Lsim value of an explicit selection (Definition 11's objective, clamped
/// at 0). Exposed for tests and for the random-selection SSPBound variant.
double LsimObjective(const std::vector<QpWeightedSet>& sets,
                     const std::vector<size_t>& selection);

}  // namespace pgsim
