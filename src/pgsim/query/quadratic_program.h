// Tightest Lsim(q) via relaxed quadratic programming + randomized rounding
// (paper Section 3.2.2, Definition 11, Equation 9, Algorithm 2, Theorem 5).
//
// Candidate sets s_f = {rq : rq ⊆iso f} carry pair weights
// (wL, wU) = (LowerB(f), UpperB(f)). For a selection C,
//
//   Lsim(C) = sum_{C} wL - (sum_{C} wU)^2
//
// (the paper's double sum over ordered pairs of C) is a valid lower bound of
// Pr(q ⊆sim g) by Theorem 4 for ANY C — coverage of U only drives tightness.
// Equation 9's 0/1 program is relaxed to x in [0,1]^n, which makes the
// objective concave (the quadratic term is rank-1), solved here by projected
// gradient ascent with cyclic projections onto {box ∩ cover half-spaces},
// then rounded by Algorithm 2: 2 ln|U| rounds picking each set with
// probability x*_s. The returned bound is the best of the rounded selection,
// a deterministic greedy selection, and the best single set — all valid.
//
// Two entry points share one solver core (identical floating-point operation
// order, identical RNG draw sequence): the original vector-of-sets API, and
// a columnar view + scratch API used by the pruner's allocation-free
// per-candidate path.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pgsim/common/random.h"

namespace pgsim {

/// One candidate set with pair weights (wL = LowerB(f), wU = UpperB(f)).
struct QpWeightedSet {
  uint32_t id = 0;
  std::vector<uint32_t> elements;
  double wl = 0.0;
  double wu = 0.0;
};

/// Non-owning columnar view: set i has id ids[i], weights (wl[i], wu[i]),
/// and elements elements[span_begin[i] .. span_end[i]).
struct QpWeightedSetsView {
  size_t num_sets = 0;
  const uint32_t* ids = nullptr;
  const double* wl = nullptr;
  const double* wu = nullptr;
  const uint32_t* elements = nullptr;
  const uint32_t* span_begin = nullptr;
  const uint32_t* span_end = nullptr;
};

/// Solver knobs.
struct LsimOptions {
  int gradient_iterations = 120;
  int projection_sweeps = 25;
  /// Rounding rounds = ceil(rounding_factor * ln(max(2, |U|))) (Alg 2: 2ln|U|).
  double rounding_factor = 2.0;
};

/// Reusable solver buffers for the scratch-taking overload; capacities
/// survive across calls so a steady-state Lsim loop allocates nothing.
struct LsimScratch {
  std::vector<uint32_t> elem_offsets;  ///< element -> sets CSR (universe+1)
  std::vector<uint32_t> elem_cursor;
  std::vector<uint32_t> elem_sets;
  std::vector<double> x;
  std::vector<double> best_x;
  std::vector<char> picked;
  std::vector<char> chosen_mask;
  std::vector<char> covered;
  std::vector<uint32_t> order;
  std::vector<uint32_t> rounded;
  std::vector<uint32_t> greedy;
  std::vector<uint32_t> single;
};

/// Outcome of the Lsim computation.
struct LsimResult {
  double lsim = 0.0;                 ///< best lower bound found (>= 0)
  std::vector<uint32_t> chosen_ids;  ///< selection achieving it
  bool covered = false;              ///< selection covers U?
  double relaxed_objective = 0.0;    ///< QP(I), an upper bound on Eq. 9
};

/// Computes the tightest Lsim(q) over the candidate sets.
LsimResult SolveTightestLsim(size_t universe_size,
                             const std::vector<QpWeightedSet>& sets,
                             const LsimOptions& options, Rng* rng);

/// Scratch-taking columnar overload: same solver, same floating-point
/// operation order, same RNG draw sequence as the vector overload for equal
/// inputs; reuses `*scratch` and `*result` capacity (allocation-free in
/// steady state).
void SolveTightestLsim(size_t universe_size, const QpWeightedSetsView& sets,
                       const LsimOptions& options, Rng* rng,
                       LsimScratch* scratch, LsimResult* result);

/// Lsim value of an explicit selection (Definition 11's objective, clamped
/// at 0). Exposed for tests and for the random-selection SSPBound variant.
double LsimObjective(const std::vector<QpWeightedSet>& sets,
                     const std::vector<size_t>& selection);

}  // namespace pgsim
