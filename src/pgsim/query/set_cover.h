// Tightest Usim(q) via greedy weighted set cover (paper Section 3.2.1,
// Definition 10, Algorithm 1).
//
// Universe: the relaxed queries U = {rq1..rqa}. One candidate set per
// feature f: s_f = {rq : rq ⊇iso f} with weight UpperB(f). A cover C gives
// Usim(q) = sum of chosen weights, an upper bound of Pr(q ⊆sim g)
// (Theorem 3); the greedy is within ln|U| of the optimum [12].
//
// Two entry points share one greedy core (identical selections): the
// original vector-of-sets API, and a columnar view + scratch API used by the
// pruner's allocation-free per-candidate path.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgsim {

/// One candidate set with its weight.
struct WeightedSet {
  uint32_t id = 0;                  ///< caller's id (e.g. feature id)
  std::vector<uint32_t> elements;   ///< universe element indices
  double weight = 0.0;
};

/// Non-owning columnar view of weighted sets: set i has id ids[i], weight
/// weights[i], and elements elements[span_begin[i] .. span_end[i]). The
/// backing arrays belong to the caller (e.g. a compiled bound program plus
/// per-candidate gathered weights).
struct WeightedSetsView {
  size_t num_sets = 0;
  const uint32_t* ids = nullptr;
  const double* weights = nullptr;
  const uint32_t* elements = nullptr;
  const uint32_t* span_begin = nullptr;
  const uint32_t* span_end = nullptr;
};

/// Reusable buffers for the scratch-taking overload; capacities survive
/// across calls so a steady-state cover loop allocates nothing.
struct SetCoverScratch {
  std::vector<char> covered;
  std::vector<char> used;
};

/// Greedy cover outcome.
struct SetCoverResult {
  std::vector<uint32_t> chosen_ids;  ///< ids of the selected sets
  double total_weight = 0.0;         ///< sum of selected weights
  bool covered = false;              ///< all universe elements covered?
  uint32_t num_uncovered = 0;        ///< elements no set contains
};

/// Algorithm 1: repeatedly picks the set minimizing weight / newly-covered
/// count until the universe is covered or no set adds coverage.
SetCoverResult GreedyWeightedSetCover(size_t universe_size,
                                      const std::vector<WeightedSet>& sets);

/// Scratch-taking columnar overload: same greedy, same tie-breaking, same
/// selection as the vector overload for equal inputs; reuses `*scratch` and
/// `*result` capacity (allocation-free in steady state).
void GreedyWeightedSetCover(size_t universe_size, const WeightedSetsView& sets,
                            SetCoverScratch* scratch, SetCoverResult* result);

}  // namespace pgsim
