// Tightest Usim(q) via greedy weighted set cover (paper Section 3.2.1,
// Definition 10, Algorithm 1).
//
// Universe: the relaxed queries U = {rq1..rqa}. One candidate set per
// feature f: s_f = {rq : rq ⊇iso f} with weight UpperB(f). A cover C gives
// Usim(q) = sum of chosen weights, an upper bound of Pr(q ⊆sim g)
// (Theorem 3); the greedy is within ln|U| of the optimum [12].

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgsim {

/// One candidate set with its weight.
struct WeightedSet {
  uint32_t id = 0;                  ///< caller's id (e.g. feature id)
  std::vector<uint32_t> elements;   ///< universe element indices
  double weight = 0.0;
};

/// Greedy cover outcome.
struct SetCoverResult {
  std::vector<uint32_t> chosen_ids;  ///< ids of the selected sets
  double total_weight = 0.0;         ///< sum of selected weights
  bool covered = false;              ///< all universe elements covered?
  uint32_t num_uncovered = 0;        ///< elements no set contains
};

/// Algorithm 1: repeatedly picks the set minimizing weight / newly-covered
/// count until the universe is covered or no set adds coverage.
SetCoverResult GreedyWeightedSetCover(size_t universe_size,
                                      const std::vector<WeightedSet>& sets);

}  // namespace pgsim
