// Probabilistic pruning (paper Section 3, Theorems 3–4).
//
// For each candidate graph g surviving structural pruning, the pruner reads
// Dg (g's PMI column) and derives bounds of Pr(q ⊆sim g):
//
//   Pruning 1 (Theorem 3): Usim(q) = sum of UpperB(f¹) over a cover of
//     U = {rq1..rqa} by features f¹ ⊆iso rq. If Usim < ε, prune g.
//   Pruning 2 (Theorem 4): Lsim(q) = sum LowerB(f²) - (sum UpperB(f²))²
//     over features f² ⊇iso rq. If Lsim >= ε, g is an answer outright.
//
// Two selection policies implement the paper's experimental variants:
//   kOptimized — Algorithm 1 set cover for Usim, Algorithm 2 QP/rounding for
//     Lsim (OPT-SSPBound);
//   kRandom — one random qualifying feature per rq (SSPBound).
// Orthogonally, SipVariant picks which PMI bound flavor feeds the weights
// (OPT-SIPBound vs SIPBound, Figure 11).
//
// Evaluation has two implementations with bit-identical decisions and RNG
// draw sequences:
//   * the reference path (Evaluate/Bounds without a scratch) builds
//     per-candidate WeightedSet/QpWeightedSet vectors — simple, allocating,
//     kept as the baseline the equivalence tests compare against;
//   * the columnar path (Evaluate/Bounds with a PrunerScratch) executes the
//     "bound program" compiled once per query by PrepareQuery — flattened
//     qualifying-feature lists and element spans — gathering per-candidate
//     weights from the PMI's flat feature-major matrices into reusable
//     scratch. Zero heap allocation per candidate in steady state.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/quadratic_program.h"
#include "pgsim/query/set_cover.h"

namespace pgsim {

/// How f¹/f² features are chosen per relaxed query.
enum class BoundSelection {
  kOptimized,  ///< Algorithm 1 + Algorithm 2 (OPT-SSPBound)
  kRandom,     ///< arbitrary qualifying feature (SSPBound)
};

/// Which SIP bound flavor of the PMI entry feeds the weights.
enum class SipVariant {
  kOpt,     ///< max-weight-clique bounds (OPT-SIPBound)
  kSimple,  ///< greedy bounds (SIPBound)
};

/// Pruner configuration.
struct ProbPrunerOptions {
  BoundSelection selection = BoundSelection::kOptimized;
  SipVariant sip_variant = SipVariant::kOpt;
  LsimOptions lsim;
};

/// Per-graph pruning verdict.
enum class PruneOutcome {
  kPruned,     ///< Usim < ε: g cannot be an answer.
  kAccepted,   ///< Lsim >= ε: g is an answer without verification.
  kCandidate,  ///< bounds straddle ε: verification required.
};

/// Verdict plus the bounds that produced it.
struct PruneDecision {
  PruneOutcome outcome = PruneOutcome::kCandidate;
  double usim = 1.0;
  double lsim = 0.0;
};

/// The candidate-invariant half of EvaluateImpl, flattened: qualifying
/// feature-id lists and their rq-element spans in one contiguous pool per
/// bound, plus per-rq CSRs for the kRandom selection. Compiled by
/// PrepareQuery as a pure function of the feature/rq relations, so it rides
/// along when the relations are shared through the batch cache.
struct BoundProgram {
  /// Features with >= 1 sub-rq (f usable as f¹), ascending feature id; set k
  /// covers rq elements usim_elems[usim_offsets[k] .. usim_offsets[k+1]).
  std::vector<uint32_t> usim_ids;
  std::vector<uint32_t> usim_offsets;  ///< usim_ids.size() + 1
  std::vector<uint32_t> usim_elems;
  /// Features with >= 1 super-rq (f usable as f²), ascending feature id.
  std::vector<uint32_t> lsim_ids;
  std::vector<uint32_t> lsim_offsets;  ///< lsim_ids.size() + 1
  std::vector<uint32_t> lsim_elems;
  /// Per-rq qualifying features for kRandom (CSRs over rq index).
  std::vector<uint32_t> rq_sub_offsets;  ///< universe_size + 1
  std::vector<uint32_t> rq_sub_elems;
  std::vector<uint32_t> rq_super_offsets;
  std::vector<uint32_t> rq_super_elems;
};

/// The query-level feature relations PrepareQuery derives from the relaxed
/// set U — a pure function of (U, PMI feature set), immutable once built.
/// The batch cache shares these across byte-identical queries (whose cached
/// U is the same vector, so the relations are identical by construction);
/// they are order-sensitive in U, so never reuse across merely isomorphic
/// queries.
struct PreparedQueryRelations {
  size_t universe_size = 0;  ///< |U|
  /// Per feature: rq indices with f ⊆iso rq (f usable as f¹).
  std::vector<std::vector<uint32_t>> feature_sub_rqs;
  /// Per feature: rq indices with rq ⊆iso f (f usable as f²).
  std::vector<std::vector<uint32_t>> feature_super_rqs;
  /// Per rq: features usable as f¹ (inverse of feature_sub_rqs).
  std::vector<std::vector<uint32_t>> rq_sub_features;
  /// Per rq: features usable as f² (inverse of feature_super_rqs).
  std::vector<std::vector<uint32_t>> rq_super_features;
  /// Columnar compilation of the above for the fast evaluate path.
  BoundProgram program;
};

/// Reusable per-thread scratch for the columnar evaluate path. Vector
/// capacities survive across candidates, so a steady-state pruning sweep
/// performs zero heap allocation. Owned by QueryContext; a
/// default-constructed one works standalone too.
struct PrunerScratch {
  std::vector<double> usim_weights;    ///< gathered UpperB per usim set
  std::vector<uint32_t> lsim_sel_ids;  ///< present-in-column f² features
  std::vector<double> lsim_sel_wl;
  std::vector<double> lsim_sel_wu;
  std::vector<uint32_t> lsim_sel_begin;  ///< element spans into lsim_elems
  std::vector<uint32_t> lsim_sel_end;
  std::vector<uint32_t> chosen;  ///< kRandom f² picks before dedup
  SetCoverScratch cover;
  SetCoverResult cover_result;
  LsimScratch lsim;
  LsimResult lsim_result;

  /// Total reserved capacity in bytes across all buffers — the no-growth
  /// steady-state pin mirrors verifier_engine_test's pool check.
  size_t CapacityBytes() const;
};

/// Evaluates pruning conditions against a PMI.
class ProbabilisticPruner {
 public:
  ProbabilisticPruner(const ProbabilisticMatrixIndex* pmi,
                      const ProbPrunerOptions& options)
      : pmi_(pmi), options_(options) {}

  /// Computes the query-level feature relations (f ⊆iso rq and rq ⊆iso f)
  /// once — they are shared by every graph of the database — and compiles
  /// the bound program. A label-multiset/size guard skips VF2 tests that
  /// provably cannot match; prepare_isomorphism_tests() counts only the VF2
  /// tests actually executed. Feature-side match plans come precompiled
  /// from the PMI; `rq_plans`, when non-null, supplies one compiled plan
  /// per relaxed query (the processor's per-query shared set) — otherwise
  /// plans are compiled here, once per rq rather than once per (f, rq).
  void PrepareQuery(const std::vector<Graph>& relaxed,
                    const std::vector<MatchPlan>* rq_plans = nullptr);

  /// Adopts relations computed by a previous PrepareQuery over an identical
  /// relaxed set (the batch cache's exact-duplicate tier) — skips every VF2
  /// test; prepare_isomorphism_tests() reports 0.
  void PrepareFromCache(std::shared_ptr<const PreparedQueryRelations> prepared);

  /// Shares the current relations for caching (valid after PrepareQuery /
  /// PrepareFromCache; null before).
  std::shared_ptr<const PreparedQueryRelations> SharePrepared() const {
    return prepared_;
  }

  /// Applies Pruning 1 and Pruning 2 to one graph column. Short-circuits:
  /// when Pruning 1 fires, Lsim is not computed (decision.lsim stays 0).
  /// This overload is the allocating reference implementation.
  PruneDecision Evaluate(uint32_t graph_id, double epsilon, Rng* rng) const;

  /// Columnar fast path: bit-identical decision and RNG draw sequence to the
  /// reference overload, drawing all temporaries from `*scratch` (zero
  /// steady-state allocation per candidate).
  PruneDecision Evaluate(uint32_t graph_id, double epsilon, Rng* rng,
                         PrunerScratch* scratch) const;

  /// Usim for ranking (top-k scheduling, diagnostics): the outcome field is
  /// meaningless and lsim reports 0 (see the .cc note on the historical
  /// short-circuit, preserved to keep RNG draw sequences stable).
  /// Reference path.
  PruneDecision Bounds(uint32_t graph_id, Rng* rng) const;

  /// Columnar fast path of Bounds (same contract as the Evaluate overload).
  PruneDecision Bounds(uint32_t graph_id, Rng* rng,
                       PrunerScratch* scratch) const;

  /// VF2 tests executed in PrepareQuery (statistics). Pairs skipped by the
  /// label-multiset/size guard are not counted: the counter reports work
  /// done, not pairs considered.
  uint64_t prepare_isomorphism_tests() const { return prepare_iso_tests_; }

 private:
  PruneDecision EvaluateReference(uint32_t graph_id, double prune_epsilon,
                                  double accept_epsilon, Rng* rng) const;
  PruneDecision EvaluateColumnar(uint32_t graph_id, double prune_epsilon,
                                 double accept_epsilon, Rng* rng,
                                 PrunerScratch* scratch) const;

  const ProbabilisticMatrixIndex* pmi_;
  ProbPrunerOptions options_;
  /// Immutable once set; shared with the batch cache via SharePrepared().
  std::shared_ptr<const PreparedQueryRelations> prepared_;
  uint64_t prepare_iso_tests_ = 0;
};

}  // namespace pgsim
