// Forwarding header: QueryContext now lives in pgsim/query/processor.h.
//
// The context moved when QueryBatch gained its work-stealing scheduler —
// per-query pipeline state was split out of the context into QueryJob (the
// schedulable unit, embedded in both QueryContext and the batch runner's
// per-query jobs), which made QueryContext and QueryProcessor mutually
// entangled enough that one header owning both is the honest layout. This
// shim keeps existing `#include "pgsim/query/query_context.h"` sites
// working.

#pragma once

#include "pgsim/query/processor.h"
