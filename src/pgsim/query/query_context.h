// Per-thread reusable query scratch.
//
// A QueryContext owns every container the three-stage T-PS pipeline fills
// per query (relaxed query set, candidate lists, filter temporaries, RNG).
// QueryProcessor::Query clears them between runs instead of reallocating, so
// a steady-state query loop performs near-zero heap allocation in the
// processor itself; QueryBatch keeps one context per worker rank. A context
// must not be shared by two queries running concurrently.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/random.h"
#include "pgsim/graph/graph.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {

class BatchQueryCache;

/// Reusable scratch threaded through QueryProcessor's pipeline stages.
struct QueryContext {
  Rng rng;
  /// Optional batch-scoped artifact cache (not owned). QueryBatch points
  /// every worker context at one shared cache; Reset() deliberately leaves
  /// it attached. Callers wiring it manually must keep QueryOptions fixed
  /// across all queries probing the same cache (see batch_cache.h).
  BatchQueryCache* cache = nullptr;
  /// Relaxation output U = {rq1..rqa}.
  std::vector<Graph> relaxed;
  /// Stage 1 output SCq.
  std::vector<uint32_t> structural_candidates;
  /// Stage 2 output: candidates needing verification.
  std::vector<uint32_t> to_verify;
  /// Accumulated answer ids.
  std::vector<uint32_t> answers;
  /// Stage 1 temporaries.
  StructuralFilterScratch filter_scratch;

  /// Reseeds the RNG and clears (capacity-preserving) all per-query state.
  void Reset(uint64_t seed) {
    rng = Rng(seed);
    relaxed.clear();
    structural_candidates.clear();
    to_verify.clear();
    answers.clear();
  }
};

}  // namespace pgsim
