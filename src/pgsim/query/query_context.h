// Per-thread reusable query scratch.
//
// A QueryContext owns every container the three-stage T-PS pipeline fills
// per query (relaxed query set, candidate lists, filter temporaries,
// verifier scratch, RNG). QueryProcessor::Query clears them between runs
// instead of reallocating, so a steady-state query loop performs near-zero
// heap allocation in the processor itself; QueryBatch keeps one context per
// worker rank. A context must not be shared by two queries running
// concurrently.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pgsim/common/random.h"
#include "pgsim/common/thread_pool.h"
#include "pgsim/graph/graph.h"
#include "pgsim/query/prob_pruner.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/query/verifier.h"

namespace pgsim {

class BatchQueryCache;

/// Reusable scratch threaded through QueryProcessor's pipeline stages.
struct QueryContext {
  Rng rng;
  /// Optional batch-scoped artifact cache (not owned). QueryBatch points
  /// every worker context at one shared cache; Reset() deliberately leaves
  /// it attached. Callers wiring it manually must keep QueryOptions fixed
  /// across all queries probing the same cache (see batch_cache.h).
  BatchQueryCache* cache = nullptr;
  /// Relaxation output U = {rq1..rqa}.
  std::vector<Graph> relaxed;
  /// Compiled match plans for U (uncacheable-query fallback storage; the
  /// cacheable path holds them in a shared_ptr published to the cache).
  std::vector<MatchPlan> rq_plans;
  /// Stage 1 output SCq.
  std::vector<uint32_t> structural_candidates;
  /// Stage 2 output: candidates needing verification.
  std::vector<uint32_t> to_verify;
  /// Accumulated answer ids.
  std::vector<uint32_t> answers;
  /// Stage 1 temporaries.
  StructuralFilterScratch filter_scratch;
  /// Stage 2 temporaries: the pruner's columnar evaluate path draws every
  /// per-candidate buffer from here (zero steady-state allocation).
  PrunerScratch pruner_scratch;
  /// Stage 3 scratch for the sequential verification path (and rank 0 of
  /// the parallel path uses verify_scratches[0] instead).
  VerifierScratch verifier_scratch;
  /// Per-rank scratches for intra-query parallel verification.
  std::vector<VerifierScratch> verify_scratches;
  /// Per-candidate RNGs, pre-forked sequentially in candidate order so
  /// verification answers are identical at every verify_threads setting.
  std::vector<Rng> verify_rngs;
  /// Per-candidate verdicts, merged in candidate order after the fan-out.
  std::vector<uint8_t> verify_verdicts;

  /// The lazily built pool for intra-query parallel verification. Returns
  /// null when `threads` <= 1 (run inline); otherwise a pool of exactly
  /// `threads` workers, kept across queries and rebuilt only when the
  /// requested width changes.
  ThreadPool* VerifyPool(uint32_t threads) {
    if (threads <= 1) return nullptr;
    if (verify_pool_ == nullptr || verify_pool_->size() != threads) {
      verify_pool_ = std::make_unique<ThreadPool>(threads);
    }
    return verify_pool_.get();
  }

  /// Reseeds the RNG and clears (capacity-preserving) all per-query state.
  void Reset(uint64_t seed) {
    rng = Rng(seed);
    relaxed.clear();
    rq_plans.clear();
    structural_candidates.clear();
    to_verify.clear();
    answers.clear();
    verify_rngs.clear();
    verify_verdicts.clear();
  }

 private:
  std::unique_ptr<ThreadPool> verify_pool_;
};

}  // namespace pgsim
