// Structural pruning (paper Theorem 1, Section 1.2, reference [38]).
//
// Stage 1 of the pipeline: if q is not subgraph similar to the certain graph
// gc, then Pr(q ⊆sim g) = 0 and g can be dropped outright. Following [38]
// (Grafil), a feature-count filter avoids pairwise similarity computation:
//
//   If some rq (q minus delta edges) embeds in gc, then for every feature f,
//       count_f(gc) >= count_f(q) - delta * maxPerEdge_f(q),
//   where count_f(.) is the number of distinct embeddings of f and
//   maxPerEdge_f(q) bounds how many embeddings one edge deletion can destroy.
//
// Graphs failing the inequality for any feature are pruned (provably sound);
// survivors are optionally checked exactly by testing rq ⊆iso gc over the
// relaxed query set U, yielding SCq = {g : q ⊆sim gc} as in the paper.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/mining/feature_miner.h"

namespace pgsim {

class ThreadPool;

/// Build/query knobs.
struct StructuralFilterOptions {
  /// Saturating embedding-count cap per (feature, graph); saturated counts
  /// are treated as "unknown, never prune" to stay sound.
  uint32_t max_count = 64;
  /// Embedding cap when counting features inside the query.
  uint32_t max_query_count = 256;
  /// Run the exact rq ⊆iso gc check on filter survivors (gives exactly SCq).
  bool exact_check = true;
  /// Worker threads for Build()'s per-graph count table; 0 means
  /// ThreadPool::DefaultThreads(), 1 builds inline. Every cell is written by
  /// exactly one worker, so the table is bit-identical at any thread count.
  uint32_t num_threads = 0;
  /// Caller-owned pool for Build() (not owned; must outlive the call).
  /// Overrides num_threads.
  ThreadPool* pool = nullptr;
};

/// Per-query stage statistics.
struct StructuralFilterStats {
  size_t count_filter_survivors = 0;
  size_t exact_survivors = 0;
  uint64_t isomorphism_tests = 0;
  double seconds = 0.0;
};

/// Build()-time statistics.
struct StructuralFilterBuildStats {
  double seconds = 0.0;
  size_t counted_pairs = 0;    ///< (feature, graph) cells filled
  uint32_t build_threads = 1;  ///< effective worker count
};

/// Iso-invariant per-query feature embedding statistics — the expensive half
/// of Filter(). Every field is invariant under relabeling of q's vertices
/// (embedding counts and the per-edge maximum are properties of the
/// isomorphism class), so a BatchQueryCache may reuse one query's counts for
/// any isomorphic query and still produce bit-identical thresholds.
struct QueryFeatureCounts {
  struct Entry {
    uint32_t feature;       ///< feature index into the filter's feature set
    uint32_t count;         ///< distinct embeddings of the feature in q
    uint32_t max_per_edge;  ///< max embeddings any single query edge touches
  };
  std::vector<Entry> entries;  ///< ascending feature index
};

/// Reusable per-thread scratch for Filter: vector capacities survive across
/// queries so a steady-state filter pass allocates nothing. Owned by
/// QueryContext; a default-constructed one works standalone too.
struct StructuralFilterScratch {
  /// (feature index, required count) pruning thresholds for this query.
  std::vector<std::pair<size_t, uint32_t>> thresholds;
  /// Per-query-edge embedding-hit counts.
  std::vector<uint32_t> per_edge;
  /// Survivors of the exact rq ⊆iso gc check.
  std::vector<uint32_t> exact;
  /// Per-query feature counts when no precomputed ones are supplied.
  QueryFeatureCounts counts;
};

/// Precomputed per-graph feature-embedding counts + the exact checker.
class StructuralFilter {
 public:
  /// Counts each feature's embeddings (saturating at options.max_count) in
  /// every certain graph of its support.
  static StructuralFilter Build(const std::vector<Graph>& certain_db,
                                const std::vector<Feature>& features,
                                const StructuralFilterOptions& options =
                                    StructuralFilterOptions());

  /// Returns SCq as database indices: graphs that pass the count filter and
  /// (when exact_check) actually satisfy q ⊆sim gc, decided by testing the
  /// relaxed queries `relaxed` against gc with VF2.
  std::vector<uint32_t> Filter(const Graph& q,
                               const std::vector<Graph>& relaxed,
                               uint32_t delta,
                               StructuralFilterStats* stats = nullptr) const;

  /// Scratch-reusing variant: clears `*survivors` (keeping capacity) and
  /// fills it with SCq, drawing temporaries from `*scratch`.
  ///
  /// `precomputed` short-circuits the per-feature embedding counting with
  /// counts from a previous (identical or isomorphic) query — the pruning
  /// thresholds derived from them are bit-identical to a fresh computation.
  /// When `computed_counts` is non-null and the counts were computed here,
  /// they are copied out so the caller can cache them.
  void Filter(const Graph& q, const std::vector<Graph>& relaxed,
              uint32_t delta, std::vector<uint32_t>* survivors,
              StructuralFilterScratch* scratch,
              StructuralFilterStats* stats = nullptr,
              const QueryFeatureCounts* precomputed = nullptr,
              QueryFeatureCounts* computed_counts = nullptr) const;

  /// Counts each indexed feature's embeddings in `q` (the iso-invariant
  /// expensive half of Filter); `isomorphism_tests`, when non-null, is
  /// incremented per feature tested.
  QueryFeatureCounts ComputeQueryCounts(
      const Graph& q, uint64_t* isomorphism_tests = nullptr) const;

  /// Number of graphs indexed.
  size_t num_graphs() const { return counts_.size(); }

  /// The raw per-graph saturating count table (tests/diagnostics; row order
  /// is database order, column order is feature order).
  const std::vector<std::vector<uint16_t>>& counts() const { return counts_; }

  /// Build statistics.
  const StructuralFilterBuildStats& build_stats() const {
    return build_stats_;
  }

 private:
  void CountQueryFeatures(const Graph& q, std::vector<uint32_t>* per_edge,
                          uint64_t* isomorphism_tests,
                          QueryFeatureCounts* out) const;

  StructuralFilterOptions options_;
  StructuralFilterBuildStats build_stats_;
  // Pointers to the caller's graphs/features — element pointers, stable
  // under moves of this filter and of the owning containers' *objects*
  // (callers must keep the containers alive and unmodified).
  std::vector<const Graph*> graphs_;
  std::vector<const Graph*> feature_graphs_;
  // counts_[graph][feature] saturating at options_.max_count.
  std::vector<std::vector<uint16_t>> counts_;
};

}  // namespace pgsim
