// Structural pruning (paper Theorem 1, Section 1.2, reference [38]).
//
// Stage 1 of the pipeline: if q is not subgraph similar to the certain graph
// gc, then Pr(q ⊆sim g) = 0 and g can be dropped outright. Following [38]
// (Grafil), a feature-count filter avoids pairwise similarity computation:
//
//   If some rq (q minus delta edges) embeds in gc, then for every feature f,
//       count_f(gc) >= count_f(q) - delta * maxPerEdge_f(q),
//   where count_f(.) is the number of distinct embeddings of f and
//   maxPerEdge_f(q) bounds how many embeddings one edge deletion can destroy.
//
// Graphs failing the inequality for any feature are pruned (provably sound);
// survivors are optionally checked exactly by testing rq ⊆iso gc over the
// relaxed query set U, yielding SCq = {g : q ⊆sim gc} as in the paper.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/mining/feature_miner.h"

namespace pgsim {

/// Build/query knobs.
struct StructuralFilterOptions {
  /// Saturating embedding-count cap per (feature, graph); saturated counts
  /// are treated as "unknown, never prune" to stay sound.
  uint32_t max_count = 64;
  /// Embedding cap when counting features inside the query.
  uint32_t max_query_count = 256;
  /// Run the exact rq ⊆iso gc check on filter survivors (gives exactly SCq).
  bool exact_check = true;
};

/// Per-query stage statistics.
struct StructuralFilterStats {
  size_t count_filter_survivors = 0;
  size_t exact_survivors = 0;
  uint64_t isomorphism_tests = 0;
  double seconds = 0.0;
};

/// Reusable per-thread scratch for Filter: vector capacities survive across
/// queries so a steady-state filter pass allocates nothing. Owned by
/// QueryContext; a default-constructed one works standalone too.
struct StructuralFilterScratch {
  /// (feature index, required count) pruning thresholds for this query.
  std::vector<std::pair<size_t, uint32_t>> thresholds;
  /// Per-query-edge embedding-hit counts.
  std::vector<uint32_t> per_edge;
  /// Survivors of the exact rq ⊆iso gc check.
  std::vector<uint32_t> exact;
};

/// Precomputed per-graph feature-embedding counts + the exact checker.
class StructuralFilter {
 public:
  /// Counts each feature's embeddings (saturating at options.max_count) in
  /// every certain graph of its support.
  static StructuralFilter Build(const std::vector<Graph>& certain_db,
                                const std::vector<Feature>& features,
                                const StructuralFilterOptions& options =
                                    StructuralFilterOptions());

  /// Returns SCq as database indices: graphs that pass the count filter and
  /// (when exact_check) actually satisfy q ⊆sim gc, decided by testing the
  /// relaxed queries `relaxed` against gc with VF2.
  std::vector<uint32_t> Filter(const Graph& q,
                               const std::vector<Graph>& relaxed,
                               uint32_t delta,
                               StructuralFilterStats* stats = nullptr) const;

  /// Scratch-reusing variant: clears `*survivors` (keeping capacity) and
  /// fills it with SCq, drawing temporaries from `*scratch`.
  void Filter(const Graph& q, const std::vector<Graph>& relaxed,
              uint32_t delta, std::vector<uint32_t>* survivors,
              StructuralFilterScratch* scratch,
              StructuralFilterStats* stats = nullptr) const;

  /// Number of graphs indexed.
  size_t num_graphs() const { return counts_.size(); }

 private:
  StructuralFilterOptions options_;
  // Pointers to the caller's graphs/features — element pointers, stable
  // under moves of this filter and of the owning containers' *objects*
  // (callers must keep the containers alive and unmodified).
  std::vector<const Graph*> graphs_;
  std::vector<const Graph*> feature_graphs_;
  // counts_[graph][feature] saturating at options_.max_count.
  std::vector<std::vector<uint16_t>> counts_;
};

}  // namespace pgsim
