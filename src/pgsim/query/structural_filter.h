// Structural pruning (paper Theorem 1, Section 1.2, reference [38]).
//
// Stage 1 of the pipeline: if q is not subgraph similar to the certain graph
// gc, then Pr(q ⊆sim g) = 0 and g can be dropped outright. Following [38]
// (Grafil), a feature-count filter avoids pairwise similarity computation:
//
//   If some rq (q minus delta edges) embeds in gc, then for every feature f,
//       count_f(gc) >= count_f(q) - delta * maxPerEdge_f(q),
//   where count_f(.) is the number of distinct embeddings of f and
//   maxPerEdge_f(q) bounds how many embeddings one edge deletion can destroy.
//
// Graphs failing the inequality for any feature are pruned (provably sound);
// survivors are optionally checked exactly by testing rq ⊆iso gc over the
// relaxed query set U, yielding SCq = {g : q ⊆sim gc} as in the paper.
//
// Counts live in one contiguous feature-major uint16 matrix
// (counts()[feature * col_capacity() + graph]), so each query threshold is a
// contiguous row sweep narrowing a survivor bitset — thresholds run
// most-selective-first for early shrinkage. The survivor set is identical to
// the per-graph formulation (a graph survives iff it passes every
// threshold); only the memory access order changed.
//
// Live maintenance mirrors the PMI contract (see index/pmi.h): AddGraph
// appends a column in place — the matrix over-allocates its row stride
// (col_capacity() >= num_graphs()) with amortized doubling, so an append
// re-strides only when capacity is exhausted — and RemoveGraph tombstones a
// column without shifting ids (a live mask seeds every sweep, so dead
// columns can never survive, even for threshold-free queries). Compact()
// reclaims tombstones and renumbers; callers coordinate it with the PMI's
// Compact() so both structures renumber identically.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "pgsim/common/bitset.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/signature.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/domain_index.h"
#include "pgsim/mining/feature_miner.h"

namespace pgsim {

class ThreadPool;

/// Build/query knobs.
struct StructuralFilterOptions {
  /// Saturating embedding-count cap per (feature, graph); saturated counts
  /// are treated as "unknown, never prune" to stay sound.
  uint32_t max_count = 64;
  /// Embedding cap when counting features inside the query.
  uint32_t max_query_count = 256;
  /// Run the exact rq ⊆iso gc check on filter survivors (gives exactly SCq).
  bool exact_check = true;
  /// Worker threads for Build()'s per-graph count table; 0 means
  /// ThreadPool::DefaultThreads(), 1 builds inline. Every cell is written by
  /// exactly one worker, so the table is bit-identical at any thread count.
  uint32_t num_threads = 0;
  /// Caller-owned pool for Build() (not owned; must outlive the call).
  /// Overrides num_threads.
  ThreadPool* pool = nullptr;
};

/// Per-query stage statistics.
///
/// `isomorphism_tests` counts VF2 invocations actually executed (query
/// feature counting + the exact check). Pairs dismissed by the cheap
/// label-multiset/size guard before VF2 are NOT counted: the counter
/// reports work done, not pairs considered — so guard improvements shrink
/// it without changing any survivor set.
struct StructuralFilterStats {
  size_t count_filter_survivors = 0;
  size_t exact_survivors = 0;
  uint64_t isomorphism_tests = 0;
  /// (gi, rq) exact-check pairs dismissed by the signature cover test before
  /// VF2 (each is one isomorphism test avoided). Zero when the caller passes
  /// no signature index.
  uint64_t sig_pairs_rejected = 0;
  /// Candidate vertices removed from signature-built VF2 domains for pairs
  /// that survived the cover test.
  uint64_t domain_candidates_pruned = 0;
  double seconds = 0.0;
};

/// Build()-time statistics.
struct StructuralFilterBuildStats {
  double seconds = 0.0;
  size_t counted_pairs = 0;    ///< (feature, graph) cells filled
  uint32_t build_threads = 1;  ///< effective worker count
};

/// Iso-invariant per-query feature embedding statistics — the expensive half
/// of Filter(). Every field is invariant under relabeling of q's vertices
/// (embedding counts and the per-edge maximum are properties of the
/// isomorphism class), so a BatchQueryCache may reuse one query's counts for
/// any isomorphic query and still produce bit-identical thresholds.
struct QueryFeatureCounts {
  struct Entry {
    uint32_t feature;       ///< feature index into the filter's feature set
    uint32_t count;         ///< distinct embeddings of the feature in q
    uint32_t max_per_edge;  ///< max embeddings any single query edge touches
  };
  std::vector<Entry> entries;  ///< ascending feature index
};

/// Reusable per-thread scratch for Filter: vector capacities survive across
/// queries so a steady-state filter pass allocates nothing. Owned by
/// QueryContext; a default-constructed one works standalone too.
struct StructuralFilterScratch {
  /// (feature index, required count) pruning thresholds for this query.
  std::vector<std::pair<size_t, uint32_t>> thresholds;
  /// Per-query-edge embedding-hit counts.
  std::vector<uint32_t> per_edge;
  /// Survivor bitset narrowed by the per-threshold row sweeps.
  EdgeBitset alive;
  /// Relaxed-query visit order for the exact check (ascending edge count).
  std::vector<uint32_t> rq_order;
  /// Per-relaxed-query label histograms for the pre-VF2 guard.
  std::vector<LabelHistogram> rq_hist;
  /// Per-query feature counts when no precomputed ones are supplied.
  QueryFeatureCounts counts;
  /// VF2 matcher state (query feature counting + the exact check).
  Vf2Scratch vf2;
  /// Relaxed-query plans compiled locally when the caller passes none.
  std::vector<MatchPlan> rq_plans;
};

/// Precomputed per-graph feature-embedding counts + the exact checker.
class StructuralFilter {
 public:
  /// Counts each feature's embeddings (saturating at options.max_count) in
  /// every certain graph of its support.
  static StructuralFilter Build(const std::vector<Graph>& certain_db,
                                const std::vector<Feature>& features,
                                const StructuralFilterOptions& options =
                                    StructuralFilterOptions());

  /// Returns SCq as database indices: graphs that pass the count filter and
  /// (when exact_check) actually satisfy q ⊆sim gc, decided by testing the
  /// relaxed queries `relaxed` against gc with VF2.
  std::vector<uint32_t> Filter(const Graph& q,
                               const std::vector<Graph>& relaxed,
                               uint32_t delta,
                               StructuralFilterStats* stats = nullptr) const;

  /// Scratch-reusing variant: clears `*survivors` (keeping capacity) and
  /// fills it with SCq, drawing temporaries from `*scratch`.
  ///
  /// `precomputed` short-circuits the per-feature embedding counting with
  /// counts from a previous (identical or isomorphic) query — the pruning
  /// thresholds derived from them are bit-identical to a fresh computation.
  /// When `computed_counts` is non-null and the counts were computed here,
  /// they are copied out so the caller can cache them.
  ///
  /// `rq_plans`, when non-null, supplies one compiled MatchPlan per relaxed
  /// query for the exact check (the processor's per-query shared set);
  /// otherwise plans are compiled into the scratch — once per query, reused
  /// across every surviving candidate.
  ///
  /// `sigs` + `rq_sigs` (both or neither) arm the signature cover test in
  /// the exact check: barren (gi, rq) pairs skip VF2 entirely and survivors
  /// run VF2 over signature-built candidate domains. The cover test is
  /// sound, so the survivor set is bit-identical with or without them.
  /// `sigs` must index the same graph ids this filter was built over;
  /// `rq_sigs` holds one QuerySignature per relaxed query, in U's order.
  void Filter(const Graph& q, const std::vector<Graph>& relaxed,
              uint32_t delta, std::vector<uint32_t>* survivors,
              StructuralFilterScratch* scratch,
              StructuralFilterStats* stats = nullptr,
              const QueryFeatureCounts* precomputed = nullptr,
              QueryFeatureCounts* computed_counts = nullptr,
              const std::vector<MatchPlan>* rq_plans = nullptr,
              const SignatureIndex* sigs = nullptr,
              const std::vector<QuerySignature>* rq_sigs = nullptr) const;

  /// Counts each indexed feature's embeddings in `q` (the iso-invariant
  /// expensive half of Filter); `isomorphism_tests`, when non-null, is
  /// incremented per feature tested.
  QueryFeatureCounts ComputeQueryCounts(
      const Graph& q, uint64_t* isomorphism_tests = nullptr) const;

  /// Number of graph columns, INCLUDING tombstoned ones (the valid graph-id
  /// range is [0, num_graphs())).
  size_t num_graphs() const { return num_graphs_; }

  /// Columns still serving.
  size_t num_alive() const { return num_alive_; }

  /// False for tombstoned or out-of-range ids.
  bool IsAlive(uint32_t graph_id) const {
    return graph_id < num_graphs_ && live_mask_.Test(graph_id);
  }

  /// Number of feature rows.
  size_t num_features() const { return feature_graphs_.size(); }

  /// Row stride of counts(): >= num_graphs(); Build() sets it exactly equal,
  /// AddGraph grows it by doubling.
  size_t col_capacity() const { return col_capacity_; }

  /// The raw saturating count matrix, feature-major:
  /// counts()[feature * col_capacity() + graph] (tests/diagnostics).
  const std::vector<uint16_t>& counts() const { return counts_; }

  /// One cell of the count matrix (0xFFFF = saturated/unknown).
  uint16_t CountAt(uint32_t feature, uint32_t graph) const {
    return counts_[static_cast<size_t>(feature) * col_capacity_ + graph];
  }

  /// Build statistics.
  const StructuralFilterBuildStats& build_stats() const {
    return build_stats_;
  }

  /// Persists the filter state that is NOT derivable from (certain_db,
  /// features) alone — the count matrix, live mask, and filtering options —
  /// as a versioned, checksummed "PGSF" file (per-section CRC32C + whole-
  /// file footer), installed atomically. Counts are written at stride
  /// num_graphs(), so Save -> Load -> Save is byte-identical.
  Status Save(const std::string& path) const;

  /// Restores a filter saved by Save(), rebinding it to `certain_db` and
  /// `features` (which must match the database the filter was saved over:
  /// sizes are validated, and the usual Build() aliasing contract applies —
  /// both containers must stay alive and unmodified). Match plans, label
  /// frequencies, and label histograms are recomputed deterministically.
  /// Any torn, truncated, or bit-flipped file is rejected with
  /// Status::DataLoss.
  static Result<StructuralFilter> Load(const std::string& path,
                                       const std::vector<Graph>& certain_db,
                                       const std::vector<Feature>& features);

  /// Incremental maintenance: appends a graph column in place. The filter
  /// COPIES `gc` into stable internal storage (the Build() aliasing caveat
  /// does not apply to added graphs). `contained_features`, when non-null,
  /// lists the features known to embed in gc (PMI::AddGraph's `contained`
  /// out-param) so only those cells are counted; when null every feature is
  /// tested. Returns the new graph id == previous num_graphs().
  uint32_t AddGraph(const Graph& gc,
                    const std::vector<uint32_t>* contained_features = nullptr);

  /// Incremental maintenance: tombstones a column. Ids are STABLE (no
  /// shift); the column's cells are zeroed and its live bit cleared, so no
  /// query — even one with zero pruning thresholds — can emit it.
  Status RemoveGraph(uint32_t graph_id);

  /// Reclaims tombstoned columns, renumbering alive ids downward in order —
  /// the same renumbering PMI::Compact() performs, so a caller compacting
  /// both keeps ids aligned. Storage owned for removed added graphs is NOT
  /// released (deque addresses must stay stable); it is bounded by the
  /// number of removed adds. No-op when there are no tombstones.
  void Compact();

  /// Pre-grows the column stride so the next `extra` AddGraph calls skip the
  /// re-stride entirely.
  void ReserveGraphCapacity(size_t extra);

 private:
  void CountQueryFeatures(const Graph& q, std::vector<uint32_t>* per_edge,
                          uint64_t* isomorphism_tests, Vf2Scratch* vf2,
                          QueryFeatureCounts* out) const;

  /// Grows col_capacity_ to at least `capacity`, re-striding every feature
  /// row (the amortized half of AddGraph).
  void GrowCapacity(size_t capacity);

  StructuralFilterOptions options_;
  StructuralFilterBuildStats build_stats_;
  // Pointers to the caller's graphs/features — element pointers, stable
  // under moves of this filter and of the owning containers' *objects*
  // (callers must keep the containers alive and unmodified). Graphs
  // appended by AddGraph instead point into owned_graphs_.
  std::vector<const Graph*> graphs_;
  std::vector<const Graph*> feature_graphs_;
  // Stable-address storage for graphs added after Build() (deque: growth
  // never moves existing elements, so graphs_ pointers stay valid).
  std::deque<Graph> owned_graphs_;
  // Compiled match plans, one per feature, built once at Build() and reused
  // for every count (build-time and query-time).
  std::vector<MatchPlan> feature_plans_;
  // Database-aggregate vertex-label frequencies (index = LabelId): seed
  // ordering input for relaxed-query plans compiled for the exact check.
  // Maintained exactly under AddGraph/RemoveGraph (dead graphs subtracted).
  std::vector<uint32_t> label_freq_;
  uint32_t num_graphs_ = 0;
  uint32_t num_alive_ = 0;
  // Row stride of counts_ (>= num_graphs_; slack makes AddGraph in-place).
  size_t col_capacity_ = 0;
  // Feature-major count matrix: counts_[feature * col_capacity_ + graph],
  // saturating at options_.max_count (0xFFFF = saturated).
  std::vector<uint16_t> counts_;
  // Bit g set iff column g is alive; seeds every sweep's survivor bitset so
  // tombstoned columns never surface. Capacity tracks col_capacity_.
  EdgeBitset live_mask_;
  // Per-graph label histograms for the exact check's pre-VF2 guard.
  std::vector<LabelHistogram> graph_hist_;
};

}  // namespace pgsim
