// Cross-batch answer cache, invalidated by index epoch.
//
// The BatchQueryCache (batch_cache.h) shares *intermediate* artifacts within
// one QueryBatch call; this cache completes the story by remembering *final
// answer sets* across batches — the hot case being a serving loop that sees
// the same queries again and again between database mutations.
//
// Keying follows the determinism doctrine of batch_cache.h, tier 2: a cache
// hit must return byte-identical answers to a fresh pipeline run. Sampled
// verification draws from RNG streams seeded by the query's exact byte
// layout position in the pipeline, so two isomorphic-but-differently-labeled
// queries may legitimately produce different sampled verdicts near the
// epsilon boundary. Entries are therefore bucketed by canonical class +
// options fingerprint (CanonicalCode is the persistent identity, and the
// options fingerprint covers every answer-affecting knob), but a hit
// additionally requires the stored GraphExactKey to match — a canonical
// match with a different exact key is counted as a `conflict` and treated
// as a miss, never served.
//
// Invalidation is exact, not heuristic: every entry records the index epoch
// it was computed under (see ProbabilisticMatrixIndex::epoch and
// QueryProcessor::epoch — every AddGraph/RemoveGraph/Compact bumps it). A
// probe under a different epoch drops the entry and counts `stale`; the
// cache can therefore never serve answers that predate a mutation, which
// answer_cache_test pins.
//
// Thread safety: all methods are safe for concurrent callers (one mutex; the
// critical sections are map/list pointer shuffles — canonicalization and key
// construction happen outside the lock). Answer vectors are handed out as
// shared_ptr-to-const, so an eviction never invalidates a reader.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pgsim/graph/canonical.h"
#include "pgsim/graph/graph.h"

namespace pgsim {

struct AnswerCacheOptions {
  /// Entry capacity; least-recently-probed entries evict beyond it.
  size_t max_entries = 1024;
  /// Canonicalization budget (queries over it are uncacheable, not errors).
  CanonicalOptions canonical;
};

/// Monotonic counters (never reset by eviction).
struct AnswerCacheStats {
  uint64_t hits = 0;         ///< served from cache (exact key + epoch match)
  uint64_t misses = 0;       ///< cacheable probe, no servable entry
  uint64_t stale = 0;        ///< entry dropped: epoch mismatch (⊆ misses)
  uint64_t conflicts = 0;    ///< entry kept: exact-key mismatch (⊆ misses)
  uint64_t evictions = 0;    ///< entries dropped by LRU capacity
  uint64_t uncacheable = 0;  ///< canonicalization over budget
};

/// Epoch-versioned LRU map: (canonical query, options fingerprint) → answers.
class AnswerCache {
 public:
  explicit AnswerCache(const AnswerCacheOptions& options = AnswerCacheOptions())
      : options_(options) {}

  /// One probe's outcome; also the handle Store() needs to fill the slot
  /// after a miss (so the canonical code is computed once per query).
  struct Probe {
    bool cacheable = false;  ///< false: canonical code over budget
    bool hit = false;
    std::shared_ptr<const std::vector<uint32_t>> answers;  ///< set iff hit
    std::string key;        ///< canonical code + options fingerprint
    std::string exact_key;  ///< GraphExactKey(q)
  };

  /// Probes for `q` under `options_fingerprint` at index epoch `epoch`.
  Probe Find(const Graph& q, const std::string& options_fingerprint,
             uint64_t epoch);

  /// Fills the slot a missed Probe addressed (no-op for uncacheable probes
  /// and for hits). `epoch` must be the epoch the answers were computed
  /// under — i.e. captured while holding the processor's serving lock.
  void Store(const Probe& probe, uint64_t epoch,
             std::vector<uint32_t> answers);

  AnswerCacheStats stats() const;

  size_t size() const;

  /// Drops every entry (counters keep accumulating).
  void Clear();

 private:
  struct Entry {
    std::string exact_key;
    uint64_t epoch = 0;
    std::shared_ptr<const std::vector<uint32_t>> answers;
    std::list<std::string>::iterator lru_it;  ///< position in lru_
  };

  AnswerCacheOptions options_;
  mutable std::mutex mu_;
  // Most-recently-probed at the front; values are keys into entries_.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> entries_;
  AnswerCacheStats stats_;
};

}  // namespace pgsim
