#include "pgsim/query/processor.h"

#include <algorithm>
#include <memory>

#include "pgsim/common/thread_pool.h"
#include "pgsim/common/timer.h"
#include "pgsim/query/batch_cache.h"

namespace pgsim {

QueryProcessor::QueryProcessor(const std::vector<ProbabilisticGraph>* database,
                               const ProbabilisticMatrixIndex* pmi,
                               const StructuralFilter* structural)
    : database_(database), pmi_(pmi), structural_(structural) {
  if (database_ != nullptr) {
    for (const ProbabilisticGraph& g : *database_) {
      AccumulateVertexLabelFrequencies(g.certain(), &db_label_freq_);
    }
  }
}

Result<std::vector<uint32_t>> QueryProcessor::Query(
    const Graph& q, const QueryOptions& options, QueryStats* stats) const {
  QueryContext ctx;
  return Query(q, options, &ctx, stats);
}

Result<std::vector<uint32_t>> QueryProcessor::Query(
    const Graph& q, const QueryOptions& options, QueryContext* ctx,
    QueryStats* stats) const {
  WallTimer total_timer;
  QueryStats local;
  const auto& db = *database_;
  local.database_size = db.size();
  ctx->Reset(options.seed);

  std::vector<uint32_t>& answers = ctx->answers;

  if (options.delta >= q.NumEdges()) {
    // dis(q, g') <= |E(q)| <= delta for every world: SSP = 1 everywhere.
    answers.resize(db.size());
    for (uint32_t i = 0; i < db.size(); ++i) answers[i] = i;
    local.answers = answers.size();
    local.total_seconds = total_timer.Seconds();
    if (stats != nullptr) *stats = local;
    return answers;
  }

  // ---- Batch cache probe (canonical + exact keys). ----
  BatchQueryCache::Lookup cached;
  if (ctx->cache != nullptr) {
    WallTimer cache_timer;
    cached = ctx->cache->Find(q);
    local.cache_seconds = cache_timer.Seconds();
  }

  // ---- Relaxation: U = {rq1..rqa}. ----
  // A cache hit substitutes the memoized set (byte-identical to what this
  // query would generate — see batch_cache.h); a cacheable miss generates
  // into a shared vector and publishes it for the rest of the batch.
  WallTimer relax_timer;
  const std::vector<Graph>* relaxed = &ctx->relaxed;
  std::shared_ptr<const std::vector<Graph>> relaxed_hold;
  if (cached.relaxed != nullptr) {
    local.relax_cache_hit = true;
    relaxed_hold = cached.relaxed;
    relaxed = relaxed_hold.get();
  } else if (cached.cacheable) {
    auto generated = std::make_shared<std::vector<Graph>>();
    PGSIM_RETURN_NOT_OK(GenerateRelaxedQueriesInto(q, options.delta,
                                                   options.relax,
                                                   generated.get()));
    relaxed_hold = std::move(generated);
    relaxed = relaxed_hold.get();
    ctx->cache->StoreRelaxed(cached, relaxed_hold);
  } else {
    PGSIM_RETURN_NOT_OK(GenerateRelaxedQueriesInto(q, options.delta,
                                                   options.relax,
                                                   &ctx->relaxed));
  }
  local.num_relaxed_queries = relaxed->size();
  local.relax_seconds = relax_timer.Seconds();

  // ---- Relaxed-query match plans. ----
  // One compiled MatchPlan per rq, seeded rarest-database-label-first,
  // shared by the filter's exact check, the pruner's PrepareQuery, and
  // every stage-3 candidate — and reused across byte-identical queries
  // through the batch cache (a pure function of U + the processor's fixed
  // label frequencies, so the exact-key tier applies).
  const std::vector<MatchPlan>* rq_plans = nullptr;
  std::shared_ptr<const std::vector<MatchPlan>> plans_hold;
  if (cached.plans != nullptr) {
    plans_hold = cached.plans;
    rq_plans = plans_hold.get();
  } else {
    MatchPlanOptions plan_options;
    plan_options.label_freq = &db_label_freq_;
    ctx->rq_plans.clear();
    ctx->rq_plans.reserve(relaxed->size());
    for (const Graph& rq : *relaxed) {
      ctx->rq_plans.push_back(CompileMatchPlan(rq, plan_options));
    }
    if (cached.cacheable) {
      plans_hold = std::make_shared<const std::vector<MatchPlan>>(
          std::move(ctx->rq_plans));
      ctx->rq_plans.clear();
      rq_plans = plans_hold.get();
      ctx->cache->StorePlans(cached, plans_hold);
    } else {
      rq_plans = &ctx->rq_plans;
    }
  }

  // ---- Stage 1: structural pruning (Theorem 1). ----
  WallTimer structural_timer;
  std::vector<uint32_t>& sc_q = ctx->structural_candidates;
  if (options.use_structural_filter && structural_ != nullptr) {
    const QueryFeatureCounts* counts = cached.counts.get();
    local.counts_cache_hit = counts != nullptr;
    std::shared_ptr<QueryFeatureCounts> computed;
    if (cached.cacheable && counts == nullptr) {
      computed = std::make_shared<QueryFeatureCounts>();
    }
    structural_->Filter(q, *relaxed, options.delta, &sc_q,
                        &ctx->filter_scratch, &local.structural_detail, counts,
                        computed.get(), rq_plans);
    if (computed != nullptr) {
      ctx->cache->StoreCounts(cached, std::move(computed));
    }
  } else {
    sc_q.resize(db.size());
    for (uint32_t i = 0; i < db.size(); ++i) sc_q[i] = i;
  }
  local.structural_candidates = sc_q.size();
  local.structural_seconds = structural_timer.Seconds();

  // ---- Stage 2: probabilistic pruning (Theorems 3-4). ----
  WallTimer prob_timer;
  Rng& rng = ctx->rng;
  std::vector<uint32_t>& to_verify = ctx->to_verify;
  if (options.use_probabilistic_pruning && pmi_ != nullptr) {
    ProbabilisticPruner pruner(pmi_, options.pruner);
    if (cached.prepared != nullptr) {
      local.prepared_cache_hit = true;
      pruner.PrepareFromCache(cached.prepared);
    } else {
      pruner.PrepareQuery(*relaxed, rq_plans);
      if (cached.cacheable) {
        ctx->cache->StorePrepared(cached, pruner.SharePrepared());
      }
    }
    for (uint32_t gi : sc_q) {
      const PruneDecision d =
          pruner.Evaluate(gi, options.epsilon, &rng, &ctx->pruner_scratch);
      switch (d.outcome) {
        case PruneOutcome::kPruned:
          ++local.pruned_by_upper;
          break;
        case PruneOutcome::kAccepted:
          ++local.accepted_by_lower;
          answers.push_back(gi);
          break;
        case PruneOutcome::kCandidate:
          to_verify.push_back(gi);
          break;
      }
    }
  } else {
    to_verify = sc_q;
  }
  local.verification_candidates = to_verify.size();
  local.prob_seconds = prob_timer.Seconds();

  // ---- Stage 3: verification (Section 5). ----
  // Candidates verify independently: each one gets a sequentially pre-forked
  // RNG (so draws do not depend on which thread claims it) and a per-rank
  // VerifierScratch, and verdicts are merged in candidate order. Answers are
  // therefore byte-identical at every verify_threads setting.
  WallTimer verify_timer;
  std::vector<Rng>& verify_rngs = ctx->verify_rngs;
  for (size_t k = 0; k < to_verify.size(); ++k) {
    verify_rngs.push_back(rng.Fork());
  }
  enum : uint8_t { kVerifyFailed = 0, kVerifyReject = 1, kVerifyAccept = 2 };
  std::vector<uint8_t>& verdicts = ctx->verify_verdicts;
  verdicts.assign(to_verify.size(), kVerifyFailed);
  auto verify_one = [&](size_t k, VerifierScratch* scratch) {
    const uint32_t gi = to_verify[k];
    const Result<double> ssp =
        options.verify_mode == QueryOptions::VerifyMode::kExact
            ? ExactSubgraphSimilarityProbability(
                  db[gi], *relaxed, options.verifier, scratch, rq_plans)
            : SampleSubgraphSimilarityProbability(
                  db[gi], *relaxed, options.verifier, &verify_rngs[k],
                  scratch, rq_plans);
    if (!ssp.ok()) {
      verdicts[k] = kVerifyFailed;
    } else {
      verdicts[k] =
          ssp.value() >= options.epsilon ? kVerifyAccept : kVerifyReject;
    }
  };
  const uint32_t verify_threads = options.verify_threads == 0
                                      ? ThreadPool::DefaultThreads()
                                      : options.verify_threads;
  ThreadPool* verify_pool =
      to_verify.size() > 1 ? ctx->VerifyPool(verify_threads) : nullptr;
  if (verify_pool == nullptr) {
    for (size_t k = 0; k < to_verify.size(); ++k) {
      verify_one(k, &ctx->verifier_scratch);
    }
  } else {
    ctx->verify_scratches.resize(verify_pool->size());
    verify_pool->ParallelFor(
        to_verify.size(), /*chunk=*/1,
        [&](uint32_t rank, size_t begin, size_t end) {
          for (size_t k = begin; k < end; ++k) {
            verify_one(k, &ctx->verify_scratches[rank]);
          }
        });
  }
  for (size_t k = 0; k < to_verify.size(); ++k) {
    switch (verdicts[k]) {
      case kVerifyFailed:
        ++local.verification_failures;
        break;
      case kVerifyAccept:
        answers.push_back(to_verify[k]);
        break;
      default:
        break;
    }
  }
  local.verify_seconds = verify_timer.Seconds();

  std::sort(answers.begin(), answers.end());
  local.answers = answers.size();
  local.total_seconds = total_timer.Seconds();
  if (stats != nullptr) *stats = local;
  return answers;
}

std::vector<BatchQueryResult> QueryProcessor::QueryBatch(
    const std::vector<Graph>& queries, const QueryOptions& options,
    const BatchOptions& batch, BatchStats* batch_stats) const {
  WallTimer wall_timer;
  const uint32_t num_threads =
      ThreadPool::ResolveThreads(batch.num_threads, batch.pool);
  std::vector<BatchQueryResult> results(queries.size());

  // Each slot is written by exactly one worker; each worker reruns the
  // pipeline from options.seed, so answers match sequential Query exactly.
  auto run_one = [&](QueryContext* ctx, size_t qi) {
    BatchQueryResult& slot = results[qi];
    auto answers = Query(queries[qi], options, ctx, &slot.stats);
    if (answers.ok()) {
      slot.answers = std::move(answers).value();
    } else {
      slot.status = answers.status();
    }
  };

  // One artifact cache for the whole batch (see batch_cache.h): workers
  // share relaxation sets and feature counts; answers stay bit-identical.
  std::unique_ptr<BatchQueryCache> cache;
  if (batch.enable_cache) cache = std::make_unique<BatchQueryCache>();

  uint32_t threads_used = num_threads;
  if (batch.pool == nullptr && (num_threads <= 1 || queries.size() <= 1)) {
    threads_used = 1;
    QueryContext ctx;
    ctx.cache = cache.get();
    for (size_t qi = 0; qi < queries.size(); ++qi) run_one(&ctx, qi);
  } else {
    // Use the caller's pool when provided; otherwise spawn a transient one.
    std::unique_ptr<ThreadPool> owned;
    ThreadPool* pool = batch.pool;
    if (pool == nullptr) {
      owned = std::make_unique<ThreadPool>(num_threads);
      pool = owned.get();
    }
    std::vector<QueryContext> contexts(pool->size());
    for (QueryContext& ctx : contexts) ctx.cache = cache.get();
    pool->ParallelFor(queries.size(), batch.chunk_size,
                      [&](uint32_t rank, size_t begin, size_t end) {
                        for (size_t qi = begin; qi < end; ++qi) {
                          run_one(&contexts[rank], qi);
                        }
                      });
  }

  if (batch_stats != nullptr) {
    BatchStats agg;
    agg.num_queries = queries.size();
    agg.threads_used = threads_used;
    for (const BatchQueryResult& r : results) {
      if (!r.status.ok()) {
        ++agg.failed_queries;
        continue;
      }
      agg.total_answers += r.answers.size();
      agg.structural_candidates += r.stats.structural_candidates;
      agg.pruned_by_upper += r.stats.pruned_by_upper;
      agg.accepted_by_lower += r.stats.accepted_by_lower;
      agg.verification_candidates += r.stats.verification_candidates;
      agg.sum_query_seconds += r.stats.total_seconds;
      agg.cache_seconds += r.stats.cache_seconds;
    }
    if (cache != nullptr) {
      const BatchCacheStats cache_stats = cache->stats();
      agg.relax_cache_hits = cache_stats.relax_hits;
      agg.relax_cache_misses = cache_stats.relax_misses;
      agg.counts_cache_hits = cache_stats.counts_hits;
      agg.counts_cache_misses = cache_stats.counts_misses;
      agg.prepared_cache_hits = cache_stats.prepared_hits;
      agg.prepared_cache_misses = cache_stats.prepared_misses;
      agg.plans_cache_hits = cache_stats.plans_hits;
      agg.plans_cache_misses = cache_stats.plans_misses;
      agg.cache_uncacheable = cache_stats.uncacheable;
    }
    agg.wall_seconds = wall_timer.Seconds();
    *batch_stats = agg;
  }
  return results;
}

Result<std::vector<uint32_t>> QueryProcessor::ExactScan(
    const Graph& q, const QueryOptions& options, QueryStats* stats) const {
  WallTimer total_timer;
  QueryStats local;
  const auto& db = *database_;
  local.database_size = db.size();

  if (options.delta >= q.NumEdges()) {
    std::vector<uint32_t> all(db.size());
    for (uint32_t i = 0; i < db.size(); ++i) all[i] = i;
    local.answers = all.size();
    local.total_seconds = total_timer.Seconds();
    if (stats != nullptr) *stats = local;
    return all;
  }

  WallTimer relax_timer;
  PGSIM_ASSIGN_OR_RETURN(
      const std::vector<Graph> relaxed,
      GenerateRelaxedQueries(q, options.delta, options.relax));
  local.num_relaxed_queries = relaxed.size();
  local.relax_seconds = relax_timer.Seconds();

  std::vector<uint32_t> answers;
  WallTimer verify_timer;
  for (uint32_t gi = 0; gi < db.size(); ++gi) {
    ++local.verification_candidates;
    const Result<double> ssp =
        ExactSubgraphSimilarityProbability(db[gi], relaxed, options.verifier);
    if (!ssp.ok()) {
      ++local.verification_failures;
      continue;
    }
    if (ssp.value() >= options.epsilon) answers.push_back(gi);
  }
  local.verify_seconds = verify_timer.Seconds();
  local.answers = answers.size();
  local.total_seconds = total_timer.Seconds();
  if (stats != nullptr) *stats = local;
  return answers;
}

}  // namespace pgsim
