#include "pgsim/query/processor.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "pgsim/common/fingerprint.h"
#include "pgsim/common/task_scheduler.h"
#include "pgsim/query/batch_cache.h"

namespace pgsim {

namespace {

// Per-candidate verdict codes (QueryJob::verdicts).
constexpr uint8_t kVerifyFailed = 0;
constexpr uint8_t kVerifyReject = 1;
constexpr uint8_t kVerifyAccept = 2;
constexpr uint8_t kVerifyCancelled = 3;  ///< stopped at a cancellation point;
                                         ///< job->intervals[k] holds the
                                         ///< anytime [lo, hi]

}  // namespace

std::string QueryOptionsFingerprint(const QueryOptions& options) {
  Fingerprint fp;
  fp.AddU32(options.delta);
  fp.AddDouble(options.epsilon);
  fp.AddU64(options.relax.max_combinations);
  fp.AddU64(options.relax.max_relaxed_graphs);
  fp.AddU32(static_cast<uint32_t>(options.pruner.selection));
  fp.AddU32(static_cast<uint32_t>(options.pruner.sip_variant));
  fp.AddU32(static_cast<uint32_t>(options.pruner.lsim.gradient_iterations));
  fp.AddU32(static_cast<uint32_t>(options.pruner.lsim.projection_sweeps));
  fp.AddDouble(options.pruner.lsim.rounding_factor);
  fp.AddDouble(options.verifier.mc.xi);
  fp.AddDouble(options.verifier.mc.tau);
  fp.AddU64(options.verifier.mc.min_samples);
  fp.AddU64(options.verifier.mc.max_samples);
  fp.AddBool(options.verifier.adaptive);
  fp.AddU64(options.verifier.max_embeddings_per_rq);
  fp.AddU64(options.verifier.max_total_embeddings);
  fp.AddU64(options.verifier.exact.max_terms);
  fp.AddU64(options.verifier.exact.max_shannon_nodes);
  fp.AddU32(options.structural.max_count);
  fp.AddU32(options.structural.max_query_count);
  fp.AddBool(options.structural.exact_check);
  fp.AddBool(options.use_structural_filter);
  fp.AddBool(options.use_probabilistic_pruning);
  fp.AddU32(static_cast<uint32_t>(options.verify_mode));
  fp.AddU64(options.seed);
  return fp.bytes();
}

QueryProcessor::QueryProcessor(const std::vector<ProbabilisticGraph>* database,
                               const ProbabilisticMatrixIndex* pmi,
                               const StructuralFilter* structural,
                               const SignatureIndex* signatures)
    : database_(database), pmi_(pmi), structural_(structural) {
  if (database_ != nullptr) {
    for (const ProbabilisticGraph& g : *database_) {
      AccumulateVertexLabelFrequencies(g.certain(), &db_label_freq_);
    }
    // Alive view: everything serves, unless the PMI was loaded/mutated with
    // tombstones and aligns with the database — then inherit its view (and
    // its epoch), so a Save/Load'd mutated index keeps excluding removed
    // graphs.
    alive_.assign(database_->size(), 1);
    uint32_t alive_count = static_cast<uint32_t>(database_->size());
    if (pmi_ != nullptr && pmi_->num_graphs() == database_->size()) {
      for (uint32_t gi = 0; gi < pmi_->num_graphs(); ++gi) {
        if (!pmi_->IsAlive(gi)) {
          alive_[gi] = 0;
          --alive_count;
        }
      }
      // Dead graphs' labels must not steer plan seed ordering.
      for (uint32_t gi = 0; gi < pmi_->num_graphs(); ++gi) {
        if (alive_[gi]) continue;
        for (LabelId l : (*database_)[gi].certain().VertexLabels()) {
          --db_label_freq_[l];
        }
      }
    }
    num_alive_.store(alive_count, std::memory_order_release);
  }
  if (pmi_ != nullptr) {
    epoch_.store(pmi_->epoch(), std::memory_order_release);
  }
  // Signature index: serve the caller's, or build an owned one over the
  // database (cheap — one adjacency pass per graph) and inherit the same
  // tombstone view as above so Compact renumbering stays aligned.
  if (signatures != nullptr) {
    sigs_ = signatures;
  } else if (database_ != nullptr) {
    owned_sigs_ = std::make_unique<SignatureIndex>(
        SignatureIndex::Build(*database_));
    for (uint32_t gi = 0; gi < alive_.size(); ++gi) {
      if (alive_[gi] == 0) (void)owned_sigs_->RemoveGraph(gi);
    }
    sigs_ = owned_sigs_.get();
  }
}

QueryProcessor::QueryProcessor(std::vector<ProbabilisticGraph>* database,
                               ProbabilisticMatrixIndex* pmi,
                               StructuralFilter* structural,
                               SignatureIndex* signatures)
    : QueryProcessor(
          static_cast<const std::vector<ProbabilisticGraph>*>(database),
          static_cast<const ProbabilisticMatrixIndex*>(pmi),
          static_cast<const StructuralFilter*>(structural),
          static_cast<const SignatureIndex*>(signatures)) {
  mutable_database_ = database;
  mutable_pmi_ = pmi;
  mutable_structural_ = structural;
  mutable_sigs_ = signatures != nullptr ? signatures : owned_sigs_.get();
}

// ---------------------------------------------------------------------------
// Live mutation API. Each call takes the serving lock exclusively: it waits
// for in-flight queries, applies the mutation to every structure, bumps the
// epoch, and returns — queries admitted afterwards see the new state
// atomically, and the answer cache drops pre-mutation entries on epoch
// mismatch.
// ---------------------------------------------------------------------------

Result<uint32_t> QueryProcessor::AddGraph(const ProbabilisticGraph& graph,
                                          uint64_t seed) {
  if (mutable_database_ == nullptr) {
    return Status::InvalidArgument(
        "AddGraph: processor was built over const structures (read-only)");
  }
  std::unique_lock<std::shared_mutex> lock(live_mu_);
  const uint32_t graph_id = static_cast<uint32_t>(mutable_database_->size());
  std::vector<uint32_t> contained;
  if (mutable_pmi_ != nullptr) {
    PGSIM_ASSIGN_OR_RETURN(
        const uint32_t pmi_id,
        mutable_pmi_->AddGraph(graph, mutable_pmi_->sip_options(), seed,
                               &contained));
    if (pmi_id != graph_id) {
      return Status::Internal("AddGraph: PMI and database ids diverged");
    }
  }
  if (mutable_structural_ != nullptr) {
    const uint32_t filter_id = mutable_structural_->AddGraph(
        graph.certain(), mutable_pmi_ != nullptr ? &contained : nullptr);
    if (filter_id != graph_id) {
      return Status::Internal("AddGraph: filter and database ids diverged");
    }
  }
  if (mutable_sigs_ != nullptr) {
    const uint32_t sig_id = mutable_sigs_->AddGraph(graph.certain());
    if (sig_id != graph_id) {
      return Status::Internal(
          "AddGraph: signature index and database ids diverged");
    }
  }
  mutable_database_->push_back(graph);
  AccumulateVertexLabelFrequencies(graph.certain(), &db_label_freq_);
  alive_.push_back(1);
  num_alive_.fetch_add(1, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  return graph_id;
}

Status QueryProcessor::RemoveGraph(uint32_t graph_id) {
  if (mutable_database_ == nullptr) {
    return Status::InvalidArgument(
        "RemoveGraph: processor was built over const structures (read-only)");
  }
  std::unique_lock<std::shared_mutex> lock(live_mu_);
  if (graph_id >= alive_.size() || alive_[graph_id] == 0) {
    return Status::InvalidArgument(
        "RemoveGraph: graph id out of range or already removed");
  }
  if (mutable_pmi_ != nullptr) {
    PGSIM_RETURN_NOT_OK(mutable_pmi_->RemoveGraph(graph_id));
  }
  if (mutable_structural_ != nullptr) {
    PGSIM_RETURN_NOT_OK(mutable_structural_->RemoveGraph(graph_id));
  }
  if (mutable_sigs_ != nullptr) {
    PGSIM_RETURN_NOT_OK(mutable_sigs_->RemoveGraph(graph_id));
  }
  // Exact label-frequency rollback: an add→remove round trip restores the
  // frequencies byte-identically, so compiled plans — and therefore every
  // answer — match the pre-mutation state bit for bit.
  for (LabelId l : (*mutable_database_)[graph_id].certain().VertexLabels()) {
    --db_label_freq_[l];
  }
  alive_[graph_id] = 0;
  num_alive_.fetch_sub(1, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  // Auto-compaction: reclaim once tombstones dominate. The extra epoch bump
  // from CompactLocked() is correct — compaction renumbers ids.
  const size_t tombstones =
      alive_.size() - num_alive_.load(std::memory_order_relaxed);
  if (tombstones >= 16 && tombstones * 2 >= alive_.size()) {
    CompactLocked();
  }
  return Status::OK();
}

void QueryProcessor::Compact() {
  if (mutable_database_ == nullptr) return;
  std::unique_lock<std::shared_mutex> lock(live_mu_);
  CompactLocked();
}

void QueryProcessor::CompactLocked() {
  const uint32_t alive_count = num_alive_.load(std::memory_order_relaxed);
  if (alive_count == alive_.size()) return;
  if (mutable_pmi_ != nullptr) mutable_pmi_->Compact();
  if (mutable_structural_ != nullptr) mutable_structural_->Compact();
  if (mutable_sigs_ != nullptr) mutable_sigs_->Compact();
  // All three structures renumber identically: alive ids shift down by the
  // number of dead slots below them.
  auto& db = *mutable_database_;
  size_t write = 0;
  for (size_t read = 0; read < db.size(); ++read) {
    if (alive_[read] == 0) continue;
    if (write != read) db[write] = std::move(db[read]);
    ++write;
  }
  db.resize(write);
  alive_.assign(write, 1);
  num_alive_.store(static_cast<uint32_t>(write), std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Decomposed pipeline stages. Sequential Query(), the chunked batch path
// (through Query()) and the stealing batch path all execute exactly these —
// one code path for the order-sensitive work is what keeps answers
// bit-identical across schedulers.
// ---------------------------------------------------------------------------

Status QueryProcessor::FrontStagesImpl(const Graph& q,
                                       const QueryOptions& options,
                                       QueryContext* ctx,
                                       QueryJob* job) const {
  const auto& db = *database_;
  QueryStats& local = job->stats;
  local.database_size = db.size();

  if (options.delta >= q.NumEdges()) {
    // dis(q, g') <= |E(q)| <= delta for every world: SSP = 1 for every
    // graph that is still alive.
    for (uint32_t i = 0; i < db.size(); ++i) {
      if (alive_[i]) job->answers.push_back(i);
    }
    return Status::OK();
  }

  // ---- Cross-batch answer cache probe (see answer_cache.h). ----
  // A hit returns the whole answer set computed under this exact epoch +
  // options fingerprint; every stage below is skipped. The wiring is copied
  // into the job so FinishQuery can fill the slot after a miss.
  if (ctx->answer_cache != nullptr && ctx->answer_fingerprint != nullptr) {
    WallTimer cache_timer;
    job->answer_cache = ctx->answer_cache;
    job->answer_epoch = ctx->answer_epoch;
    job->answer_probe =
        ctx->answer_cache->Find(q, *ctx->answer_fingerprint, ctx->answer_epoch);
    local.cache_seconds += cache_timer.Seconds();
    if (job->answer_probe.hit) {
      job->answers = *job->answer_probe.answers;
      local.answer_cache_hit = true;
      return Status::OK();
    }
  }

  // Cancellation points: one relaxed load at every stage boundary (and per
  // candidate inside the stage-2 loop / per draw inside the sampler). A
  // query cancelled before its candidates are known unwinds with whatever
  // partial state exists; FinishQuery reports it as cancelled and never
  // caches it. The answer-cache probe above deliberately runs first — a hit
  // is exact and effectively free, so even an expired query serves it.
  const CancelState* cancel = job->cancel;
  const auto cancelled_now = [&]() {
    if (cancel == nullptr || !cancel->IsCancelled()) return false;
    job->cancelled.store(true, std::memory_order_relaxed);
    return true;
  };
  if (cancelled_now()) return Status::OK();

  // ---- Batch cache probe (canonical + exact keys). ----
  BatchQueryCache::Lookup cached;
  if (ctx->cache != nullptr) {
    WallTimer cache_timer;
    cached = ctx->cache->Find(q);
    local.cache_seconds += cache_timer.Seconds();
  }

  // ---- Relaxation: U = {rq1..rqa}. ----
  // A cache hit substitutes the memoized set (byte-identical to what this
  // query would generate — see batch_cache.h); a cacheable miss generates
  // into a shared vector and publishes it for the rest of the batch.
  WallTimer relax_timer;
  if (cached.relaxed != nullptr) {
    local.relax_cache_hit = true;
    job->relaxed_hold = cached.relaxed;
    job->relaxed = job->relaxed_hold.get();
  } else if (cached.cacheable) {
    auto generated = std::make_shared<std::vector<Graph>>();
    PGSIM_RETURN_NOT_OK(GenerateRelaxedQueriesInto(q, options.delta,
                                                   options.relax,
                                                   generated.get()));
    job->relaxed_hold = std::move(generated);
    job->relaxed = job->relaxed_hold.get();
    ctx->cache->StoreRelaxed(cached, job->relaxed_hold);
  } else {
    PGSIM_RETURN_NOT_OK(GenerateRelaxedQueriesInto(q, options.delta,
                                                   options.relax,
                                                   &job->relaxed_storage));
    job->relaxed = &job->relaxed_storage;
  }
  const std::vector<Graph>& relaxed = *job->relaxed;
  local.num_relaxed_queries = relaxed.size();
  local.relax_seconds = relax_timer.Seconds();
  if (cancelled_now()) return Status::OK();

  // ---- Relaxed-query match plans. ----
  // One compiled MatchPlan per rq, seeded rarest-database-label-first,
  // shared by the filter's exact check, the pruner's PrepareQuery, and
  // every stage-3 candidate — and reused across byte-identical queries
  // through the batch cache (a pure function of U + the processor's fixed
  // label frequencies, so the exact-key tier applies).
  if (cached.plans != nullptr) {
    job->plans_hold = cached.plans;
    job->rq_plans = job->plans_hold.get();
  } else {
    MatchPlanOptions plan_options;
    plan_options.label_freq = &db_label_freq_;
    job->plans_storage.clear();
    job->plans_storage.reserve(relaxed.size());
    for (const Graph& rq : relaxed) {
      job->plans_storage.push_back(CompileMatchPlan(rq, plan_options));
    }
    if (cached.cacheable) {
      job->plans_hold = std::make_shared<const std::vector<MatchPlan>>(
          std::move(job->plans_storage));
      job->plans_storage.clear();
      job->rq_plans = job->plans_hold.get();
      ctx->cache->StorePlans(cached, job->plans_hold);
    } else {
      job->rq_plans = &job->plans_storage;
    }
  }

  // ---- Relaxed-query vertex signatures (the gate's pattern side). ----
  // One QuerySignature per rq, compiled once per query and reused for every
  // candidate by the filter exact check and stage 3. A pure function of U's
  // exact form, so the exact-key cache tier applies (same sharing scheme as
  // the plans above). job->rq_sigs stays null with signatures off — every
  // downstream gate keys off that.
  if (options.use_signatures && sigs_ != nullptr) {
    if (cached.sigs != nullptr) {
      job->sigs_hold = cached.sigs;
      job->rq_sigs = job->sigs_hold.get();
    } else {
      job->sigs_storage.clear();
      job->sigs_storage.reserve(relaxed.size());
      for (const Graph& rq : relaxed) {
        job->sigs_storage.push_back(BuildQuerySignature(rq));
      }
      if (cached.cacheable) {
        job->sigs_hold = std::make_shared<const std::vector<QuerySignature>>(
            std::move(job->sigs_storage));
        job->sigs_storage.clear();
        job->rq_sigs = job->sigs_hold.get();
        ctx->cache->StoreSigs(cached, job->sigs_hold);
      } else {
        job->rq_sigs = &job->sigs_storage;
      }
    }
  }

  // ---- Stage 1: structural pruning (Theorem 1). ----
  WallTimer structural_timer;
  std::vector<uint32_t>& sc_q = job->structural_candidates;
  if (options.use_structural_filter && structural_ != nullptr) {
    const QueryFeatureCounts* counts = cached.counts.get();
    local.counts_cache_hit = counts != nullptr;
    std::shared_ptr<QueryFeatureCounts> computed;
    if (cached.cacheable && counts == nullptr) {
      computed = std::make_shared<QueryFeatureCounts>();
    }
    structural_->Filter(q, relaxed, options.delta, &sc_q,
                        &ctx->filter_scratch, &local.structural_detail, counts,
                        computed.get(), job->rq_plans,
                        job->rq_sigs != nullptr ? sigs_ : nullptr,
                        job->rq_sigs);
    if (computed != nullptr) {
      ctx->cache->StoreCounts(cached, std::move(computed));
    }
    // The exact check's signature rejections are whole VF2 calls avoided.
    local.sig_pairs_rejected += local.structural_detail.sig_pairs_rejected;
    local.domain_candidates_pruned +=
        local.structural_detail.domain_candidates_pruned;
    local.vf2_calls_avoided += local.structural_detail.sig_pairs_rejected;
  } else {
    for (uint32_t i = 0; i < db.size(); ++i) {
      if (alive_[i]) sc_q.push_back(i);
    }
  }
  local.structural_candidates = sc_q.size();
  local.structural_seconds = structural_timer.Seconds();
  if (cancelled_now()) return Status::OK();

  // ---- Stage 2: probabilistic pruning (Theorems 3-4). ----
  WallTimer prob_timer;
  Rng& rng = ctx->rng;
  std::vector<uint32_t>& to_verify = job->to_verify;
  if (options.use_probabilistic_pruning && pmi_ != nullptr) {
    ProbabilisticPruner pruner(pmi_, options.pruner);
    if (cached.prepared != nullptr) {
      local.prepared_cache_hit = true;
      pruner.PrepareFromCache(cached.prepared);
    } else {
      pruner.PrepareQuery(relaxed, job->rq_plans);
      if (cached.cacheable) {
        ctx->cache->StorePrepared(cached, pruner.SharePrepared());
      }
    }
    for (size_t ci = 0; ci < sc_q.size(); ++ci) {
      if (cancelled_now()) {
        // The unpruned tail goes to verification anyway: each of those
        // candidates' verify tasks observes the cancel immediately and
        // records the unknown [0, 1] interval, so every structural
        // candidate is accounted for in the degraded answer.
        to_verify.insert(to_verify.end(), sc_q.begin() + ci, sc_q.end());
        break;
      }
      const uint32_t gi = sc_q[ci];
      const PruneDecision d =
          pruner.Evaluate(gi, options.epsilon, &rng, &ctx->pruner_scratch);
      switch (d.outcome) {
        case PruneOutcome::kPruned:
          ++local.pruned_by_upper;
          break;
        case PruneOutcome::kAccepted:
          ++local.accepted_by_lower;
          job->answers.push_back(gi);
          break;
        case PruneOutcome::kCandidate:
          to_verify.push_back(gi);
          break;
      }
    }
  } else {
    to_verify = sc_q;
  }
  local.verification_candidates = to_verify.size();
  local.prob_seconds = prob_timer.Seconds();

  // ---- Stage 3 setup: pre-fork per-candidate RNGs. ----
  // Sequential forks in candidate order pin every candidate's random draws
  // before any verification runs, so verdicts are independent of which
  // worker (or steal schedule) executes each candidate.
  job->verify_rngs.reserve(to_verify.size());
  for (size_t k = 0; k < to_verify.size(); ++k) {
    job->verify_rngs.push_back(rng.Fork());
  }
  job->verdicts.assign(to_verify.size(), kVerifyFailed);
  job->intervals.assign(to_verify.size(), SampleOutcome());
  return Status::OK();
}

void QueryProcessor::RunFrontStages(const Graph& q,
                                    const QueryOptions& options,
                                    QueryContext* ctx, QueryJob* job) const {
  job->Clear();
  job->query = &q;
  job->cancel = ctx->cancel;
  job->cancel_after_draws = ctx->cancel_after_draws;
  job->total_timer.Restart();
  ctx->Reset(options.seed);
  job->status = FrontStagesImpl(q, options, ctx, job);
  job->verify_timer.Restart();
}

void QueryProcessor::VerifyCandidate(const QueryOptions& options,
                                     QueryJob* job, size_t k,
                                     VerifierScratch* scratch) const {
  const auto& db = *database_;
  const uint32_t gi = job->to_verify[k];
  // Signature gate: present only when FrontStagesImpl compiled rq signatures
  // (use_signatures on and an index exists). The gate never changes the
  // similarity events, so verdicts are identical with it on or off.
  SignatureGate gate;
  const SignatureGate* gate_ptr = nullptr;
  if (job->rq_sigs != nullptr && sigs_ != nullptr) {
    gate.target = sigs_->ForGraph(gi);
    gate.rq = job->rq_sigs;
    gate_ptr = &gate;
  }
  const auto accumulate_gate_counters = [job, scratch] {
    job->sig_pairs_rejected.fetch_add(scratch->sig_pairs_rejected,
                                      std::memory_order_relaxed);
    job->domain_candidates_pruned.fetch_add(scratch->domain_candidates_pruned,
                                            std::memory_order_relaxed);
    job->vf2_calls_avoided.fetch_add(scratch->vf2_calls_avoided,
                                     std::memory_order_relaxed);
  };
  if (options.verify_mode == QueryOptions::VerifyMode::kExact) {
    // The exact DNF engine has no internal cancellation points; honor the
    // token at candidate granularity.
    if (job->cancel != nullptr && job->cancel->IsCancelled()) {
      job->verdicts[k] = kVerifyCancelled;
      job->intervals[k].completed = false;  // nothing known: [0, 1]
      job->cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    const Result<double> ssp = ExactSubgraphSimilarityProbability(
        db[gi], *job->relaxed, options.verifier, scratch, job->rq_plans,
        gate_ptr);
    accumulate_gate_counters();
    if (!ssp.ok()) {
      job->verdicts[k] = kVerifyFailed;
    } else {
      job->verdicts[k] =
          ssp.value() >= options.epsilon ? kVerifyAccept : kVerifyReject;
    }
    return;
  }
  SampleControl control;
  control.cancel = job->cancel;
  control.cancel_after_draws = job->cancel_after_draws;
  const Result<SampleOutcome> out = SampleSubgraphSimilarityProbabilityAnytime(
      db[gi], *job->relaxed, options.verifier, &job->verify_rngs[k], scratch,
      job->rq_plans, control, gate_ptr);
  accumulate_gate_counters();
  if (!out.ok()) {
    job->verdicts[k] = kVerifyFailed;
  } else if (!out->completed) {
    job->verdicts[k] = kVerifyCancelled;
    job->intervals[k] = *out;
    job->cancelled.store(true, std::memory_order_relaxed);
  } else {
    job->verdicts[k] =
        out->estimate >= options.epsilon ? kVerifyAccept : kVerifyReject;
  }
}

void QueryProcessor::FinishQuery(QueryJob* job) const {
  QueryStats& local = job->stats;
  if (job->status.ok()) {
    for (size_t k = 0; k < job->to_verify.size(); ++k) {
      switch (job->verdicts[k]) {
        case kVerifyFailed:
          ++local.verification_failures;
          break;
        case kVerifyAccept:
          job->answers.push_back(job->to_verify[k]);
          break;
        case kVerifyCancelled:
          ++local.cancelled_candidates;
          break;
        default:
          break;
      }
    }
    std::sort(job->answers.begin(), job->answers.end());
    local.answers = job->answers.size();
  }
  // The filter's share of the signature counters was folded in at stage 1;
  // stage 3's share was accumulated per-candidate into the job atomics.
  local.sig_pairs_rejected +=
      job->sig_pairs_rejected.load(std::memory_order_relaxed);
  local.domain_candidates_pruned +=
      job->domain_candidates_pruned.load(std::memory_order_relaxed);
  local.vf2_calls_avoided +=
      job->vf2_calls_avoided.load(std::memory_order_relaxed);
  local.verify_seconds = job->verify_timer.Seconds();
  local.total_seconds = job->total_timer.Seconds();
  // Fill the answer-cache slot this query's probe addressed (no-op on a hit
  // or an uncacheable probe). The epoch was captured under the serving lock
  // the answers were computed at, so a concurrent mutation can never store
  // pre-mutation answers under a post-mutation epoch. A cancelled run never
  // stores: its answer set is partial (a degraded interval answer must not
  // be served later as an exact one).
  if (job->status.ok() && job->answer_cache != nullptr &&
      !job->cancelled.load(std::memory_order_relaxed) &&
      job->answer_probe.cacheable && !job->answer_probe.hit) {
    job->answer_cache->Store(job->answer_probe, job->answer_epoch,
                             job->answers);
  }
}

// ---------------------------------------------------------------------------
// Sequential entry points. The public overloads take the serving lock shared
// (so mutations wait for them and vice versa); QueryImpl is the lock-free
// body the batch schedulers call under the batch-held shared lock — a worker
// re-acquiring the same shared_mutex would be UB.
// ---------------------------------------------------------------------------

Result<std::vector<uint32_t>> QueryProcessor::Query(
    const Graph& q, const QueryOptions& options, QueryStats* stats) const {
  QueryContext ctx;
  return Query(q, options, &ctx, stats);
}

Result<std::vector<uint32_t>> QueryProcessor::Query(
    const Graph& q, const QueryOptions& options, QueryContext* ctx,
    QueryStats* stats) const {
  std::shared_lock<std::shared_mutex> lock(live_mu_);
  return QueryImpl(q, options, ctx, stats);
}

Result<std::vector<uint32_t>> QueryProcessor::QueryImpl(
    const Graph& q, const QueryOptions& options, QueryContext* ctx,
    QueryStats* stats) const {
  QueryJob& job = ctx->job;
  RunFrontStages(q, options, ctx, &job);
  if (!job.status.ok()) return job.status;

  // ---- Stage 3: verification (Section 5). ----
  // Candidates verify independently against pre-forked RNGs and per-rank
  // scratch; verdicts merge in candidate order (FinishQuery). Answers are
  // therefore byte-identical at every verify_threads setting.
  const size_t n = job.to_verify.size();
  const uint32_t verify_threads = options.verify_threads == 0
                                      ? ThreadPool::DefaultThreads()
                                      : options.verify_threads;
  ThreadPool* verify_pool = n > 1 ? ctx->VerifyPool(verify_threads) : nullptr;
  if (verify_pool == nullptr) {
    for (size_t k = 0; k < n; ++k) {
      VerifyCandidate(options, &job, k, &ctx->verifier_scratch);
    }
  } else {
    ctx->verify_scratches.resize(verify_pool->size());
    verify_pool->ParallelFor(n, /*chunk=*/1,
                             [&](uint32_t rank, size_t begin, size_t end) {
                               for (size_t k = begin; k < end; ++k) {
                                 VerifyCandidate(options, &job, k,
                                                 &ctx->verify_scratches[rank]);
                               }
                             });
  }

  FinishQuery(&job);
  if (stats != nullptr) *stats = job.stats;
  return job.answers;
}

// ---------------------------------------------------------------------------
// Stealing batch runner: one query -> a front-stages root task + ceil(n /
// task_grain) verification tasks. The root runs stages 0-2 on whichever
// worker claims it, then spawns the verification range tasks onto that
// worker's own deque (newest-first, so the spawning worker proceeds with
// warm caches while idle workers steal from the other end). The last
// verification task to finish — whoever executes it — merges verdicts and
// publishes the result slot.
// ---------------------------------------------------------------------------

struct StealingBatchRunner {
  struct Job {
    QueryJob job;
    std::atomic<uint32_t> remaining{0};  ///< outstanding verification tasks
    StealingBatchRunner* run = nullptr;
    uint32_t qi = 0;
  };

  explicit StealingBatchRunner(size_t num_queries) : jobs(num_queries) {}

  static void QueryTask(void* ctx, uint32_t worker, uint32_t /*a*/,
                        uint32_t /*b*/) {
    Job* j = static_cast<Job*>(ctx);
    StealingBatchRunner* run = j->run;
    QueryContext* qctx = run->sched->WorkerState<QueryContext>(worker);
    qctx->cache = run->cache;
    qctx->answer_cache = run->answer_cache;
    qctx->answer_fingerprint = run->answer_fp;
    qctx->answer_epoch = run->answer_epoch;
    const double queue_wait = run->batch_timer->Seconds();
    run->front_inflight.fetch_add(1, std::memory_order_relaxed);
    run->proc->RunFrontStages((*run->queries)[j->qi], *run->options, qctx,
                              &j->job);
    run->front_inflight.fetch_sub(1, std::memory_order_relaxed);
    j->job.stats.queue_wait_seconds = queue_wait;

    const size_t n = j->job.to_verify.size();
    if (!j->job.status.ok() || n == 0) {
      run->Finish(j);
      return;
    }
    const size_t grain = run->task_grain == 0 ? 1 : run->task_grain;
    const size_t num_tasks = (n + grain - 1) / grain;
    j->remaining.store(static_cast<uint32_t>(num_tasks),
                       std::memory_order_relaxed);
    // Reverse spawn order: the owner pops its deque LIFO, so candidate 0's
    // range runs next on this worker while thieves steal from the tail.
    for (size_t t = num_tasks; t-- > 0;) {
      TaskScheduler::Task task;
      task.fn = &VerifyTask;
      task.ctx = j;
      task.a = static_cast<uint32_t>(t * grain);
      task.b = static_cast<uint32_t>(std::min(n, (t + 1) * grain));
      run->sched->Spawn(worker, task);
    }
  }

  static void VerifyTask(void* ctx, uint32_t worker, uint32_t a, uint32_t b) {
    Job* j = static_cast<Job*>(ctx);
    StealingBatchRunner* run = j->run;
    if (run->front_inflight.load(std::memory_order_relaxed) > 0) {
      // Stage-level pipelining observed: some other query is still in its
      // front stages while this verification unit runs.
      run->overlapped_verify.fetch_add(1, std::memory_order_relaxed);
    }
    QueryContext* qctx = run->sched->WorkerState<QueryContext>(worker);
    for (uint32_t k = a; k < b; ++k) {
      run->proc->VerifyCandidate(*run->options, &j->job, k,
                                 &qctx->verifier_scratch);
    }
    // acq_rel: the last finisher must observe every other task's verdict
    // writes before merging.
    if (j->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      run->Finish(j);
    }
  }

  void Finish(Job* j) {
    proc->FinishQuery(&j->job);
    BatchQueryResult& slot = (*results)[j->qi];
    if (j->job.status.ok()) {
      slot.stats = j->job.stats;
      slot.answers = std::move(j->job.answers);
    } else {
      slot.status = j->job.status;
    }
  }

  const QueryProcessor* proc = nullptr;
  const std::vector<Graph>* queries = nullptr;
  const QueryOptions* options = nullptr;
  std::vector<BatchQueryResult>* results = nullptr;
  BatchQueryCache* cache = nullptr;
  AnswerCache* answer_cache = nullptr;
  const std::string* answer_fp = nullptr;
  uint64_t answer_epoch = 0;
  TaskScheduler* sched = nullptr;
  size_t task_grain = 1;
  const WallTimer* batch_timer = nullptr;
  std::vector<Job> jobs;
  std::atomic<uint32_t> front_inflight{0};
  std::atomic<uint64_t> overlapped_verify{0};
};

std::vector<BatchQueryResult> QueryProcessor::QueryBatchStealing(
    const std::vector<Graph>& queries, const QueryOptions& options,
    const BatchOptions& batch, BatchQueryCache* cache,
    const AnswerCacheWiring& answers, uint32_t num_threads,
    const WallTimer& batch_timer, uint32_t* threads_used,
    BatchStats* batch_stats) const {
  std::unique_ptr<TaskScheduler> owned;
  TaskScheduler* sched = batch.stealer;
  if (sched == nullptr) {
    owned = batch.pool != nullptr
                ? std::make_unique<TaskScheduler>(batch.pool)
                : std::make_unique<TaskScheduler>(num_threads);
    sched = owned.get();
  }
  *threads_used = sched->num_workers();

  std::vector<BatchQueryResult> results(queries.size());
  StealingBatchRunner run(queries.size());
  run.proc = this;
  run.queries = &queries;
  run.options = &options;
  run.results = &results;
  run.cache = cache;
  run.answer_cache = answers.cache;
  run.answer_fp = answers.fingerprint;
  run.answer_epoch = answers.epoch;
  run.sched = sched;
  run.task_grain = batch.task_grain;
  run.batch_timer = &batch_timer;

  std::vector<TaskScheduler::Task> roots(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    run.jobs[qi].run = &run;
    run.jobs[qi].qi = static_cast<uint32_t>(qi);
    roots[qi].fn = &StealingBatchRunner::QueryTask;
    roots[qi].ctx = &run.jobs[qi];
  }
  const SchedulerRunStats sched_stats = sched->Run(roots, /*root_chunk=*/1);

  if (batch_stats != nullptr) {
    batch_stats->tasks_executed = sched_stats.tasks_executed;
    batch_stats->tasks_stolen = sched_stats.tasks_stolen;
    batch_stats->steal_attempts = sched_stats.steal_attempts;
    batch_stats->max_queue_depth = sched_stats.max_queue_depth;
    batch_stats->overlapped_verify_tasks =
        run.overlapped_verify.load(std::memory_order_relaxed);
  }
  return results;
}

// ---------------------------------------------------------------------------
// Chunked batch runner (the original parallel-for path).
// ---------------------------------------------------------------------------

std::vector<BatchQueryResult> QueryProcessor::QueryBatchChunked(
    const std::vector<Graph>& queries, const QueryOptions& options,
    const BatchOptions& batch, BatchQueryCache* cache,
    const AnswerCacheWiring& answers, uint32_t num_threads,
    uint32_t* threads_used) const {
  std::vector<BatchQueryResult> results(queries.size());

  const auto wire = [&](QueryContext* ctx) {
    ctx->cache = cache;
    ctx->answer_cache = answers.cache;
    ctx->answer_fingerprint = answers.fingerprint;
    ctx->answer_epoch = answers.epoch;
  };

  // Each slot is written by exactly one worker; each worker reruns the
  // pipeline from options.seed, so answers match sequential Query exactly.
  // QueryImpl, not Query: the batch already holds the serving lock.
  auto run_one = [&](QueryContext* ctx, size_t qi) {
    BatchQueryResult& slot = results[qi];
    auto query_answers = QueryImpl(queries[qi], options, ctx, &slot.stats);
    if (query_answers.ok()) {
      slot.answers = std::move(query_answers).value();
    } else {
      slot.status = query_answers.status();
    }
  };

  *threads_used = num_threads;
  if (batch.pool == nullptr && (num_threads <= 1 || queries.size() <= 1)) {
    *threads_used = 1;
    QueryContext ctx;
    wire(&ctx);
    for (size_t qi = 0; qi < queries.size(); ++qi) run_one(&ctx, qi);
  } else {
    // Use the caller's pool when provided; otherwise spawn a transient one.
    std::unique_ptr<ThreadPool> owned;
    ThreadPool* pool = batch.pool;
    if (pool == nullptr) {
      owned = std::make_unique<ThreadPool>(num_threads);
      pool = owned.get();
    }
    std::vector<QueryContext> contexts(pool->size());
    for (QueryContext& ctx : contexts) wire(&ctx);
    pool->ParallelFor(queries.size(), batch.chunk_size,
                      [&](uint32_t rank, size_t begin, size_t end) {
                        for (size_t qi = begin; qi < end; ++qi) {
                          run_one(&contexts[rank], qi);
                        }
                      });
  }
  return results;
}

std::vector<BatchQueryResult> QueryProcessor::QueryBatch(
    const std::vector<Graph>& queries, const QueryOptions& options,
    const BatchOptions& batch, BatchStats* batch_stats) const {
  WallTimer wall_timer;
  // One shared serving lock for the WHOLE batch: every worker sees the same
  // frozen index state (and the same epoch), and a mutation either waits for
  // the batch or the batch sees it completely.
  std::shared_lock<std::shared_mutex> serving_lock(live_mu_);
  const uint32_t num_threads =
      ThreadPool::ResolveThreads(batch.num_threads, batch.pool);

  // One artifact cache for the whole batch (see batch_cache.h): workers
  // share relaxation sets and feature counts; answers stay bit-identical.
  std::unique_ptr<BatchQueryCache> cache;
  if (batch.enable_cache) cache = std::make_unique<BatchQueryCache>();

  // Cross-batch answer cache wiring: fingerprint once per batch, epoch read
  // under the serving lock above (it cannot move until the batch finishes).
  AnswerCacheWiring answers;
  std::string answer_fingerprint;
  AnswerCacheStats answer_before;
  if (batch.answer_cache != nullptr) {
    answer_fingerprint = QueryOptionsFingerprint(options);
    answers.cache = batch.answer_cache;
    answers.fingerprint = &answer_fingerprint;
    answers.epoch = epoch();
    answer_before = batch.answer_cache->stats();
  }

  // The stealing scheduler needs either an execution vehicle worth sharing
  // (a caller scheduler/pool) or genuine batch parallelism; a 1-thread,
  // no-pool batch runs the plain inline chunked path — answers are
  // bit-identical either way, so this is purely an overhead call.
  const bool use_stealing =
      batch.scheduler == BatchOptions::Scheduler::kStealing &&
      (batch.stealer != nullptr || batch.pool != nullptr ||
       (num_threads > 1 && queries.size() > 1));

  uint32_t threads_used = num_threads;
  BatchStats sched_counters;
  std::vector<BatchQueryResult> results =
      use_stealing
          ? QueryBatchStealing(queries, options, batch, cache.get(), answers,
                               num_threads, wall_timer, &threads_used,
                               &sched_counters)
          : QueryBatchChunked(queries, options, batch, cache.get(), answers,
                              num_threads, &threads_used);

  if (batch_stats != nullptr) {
    BatchStats agg;
    agg.num_queries = queries.size();
    agg.threads_used = threads_used;
    agg.tasks_executed = sched_counters.tasks_executed;
    agg.tasks_stolen = sched_counters.tasks_stolen;
    agg.steal_attempts = sched_counters.steal_attempts;
    agg.max_queue_depth = sched_counters.max_queue_depth;
    agg.overlapped_verify_tasks = sched_counters.overlapped_verify_tasks;
    for (const BatchQueryResult& r : results) {
      if (!r.status.ok()) {
        ++agg.failed_queries;
        continue;
      }
      agg.total_answers += r.answers.size();
      agg.structural_candidates += r.stats.structural_candidates;
      agg.pruned_by_upper += r.stats.pruned_by_upper;
      agg.accepted_by_lower += r.stats.accepted_by_lower;
      agg.verification_candidates += r.stats.verification_candidates;
      agg.sig_pairs_rejected += r.stats.sig_pairs_rejected;
      agg.domain_candidates_pruned += r.stats.domain_candidates_pruned;
      agg.vf2_calls_avoided += r.stats.vf2_calls_avoided;
      agg.sum_queue_wait_seconds += r.stats.queue_wait_seconds;
      agg.sum_query_seconds += r.stats.total_seconds;
      agg.cache_seconds += r.stats.cache_seconds;
    }
    if (cache != nullptr) {
      const BatchCacheStats cache_stats = cache->stats();
      agg.relax_cache_hits = cache_stats.relax_hits;
      agg.relax_cache_misses = cache_stats.relax_misses;
      agg.counts_cache_hits = cache_stats.counts_hits;
      agg.counts_cache_misses = cache_stats.counts_misses;
      agg.prepared_cache_hits = cache_stats.prepared_hits;
      agg.prepared_cache_misses = cache_stats.prepared_misses;
      agg.plans_cache_hits = cache_stats.plans_hits;
      agg.plans_cache_misses = cache_stats.plans_misses;
      agg.sigs_cache_hits = cache_stats.sigs_hits;
      agg.sigs_cache_misses = cache_stats.sigs_misses;
      agg.cache_uncacheable = cache_stats.uncacheable;
    }
    if (batch.answer_cache != nullptr) {
      const AnswerCacheStats after = batch.answer_cache->stats();
      agg.answer_cache_hits = after.hits - answer_before.hits;
      agg.answer_cache_misses = after.misses - answer_before.misses;
      agg.answer_cache_stale = after.stale - answer_before.stale;
      agg.answer_cache_evictions = after.evictions - answer_before.evictions;
    }
    agg.wall_seconds = wall_timer.Seconds();
    *batch_stats = agg;
  }
  return results;
}

Result<std::vector<uint32_t>> QueryProcessor::ExactScan(
    const Graph& q, const QueryOptions& options, QueryStats* stats) const {
  WallTimer total_timer;
  std::shared_lock<std::shared_mutex> lock(live_mu_);
  QueryStats local;
  const auto& db = *database_;
  local.database_size = db.size();

  if (options.delta >= q.NumEdges()) {
    std::vector<uint32_t> all;
    for (uint32_t i = 0; i < db.size(); ++i) {
      if (alive_[i]) all.push_back(i);
    }
    local.answers = all.size();
    local.total_seconds = total_timer.Seconds();
    if (stats != nullptr) *stats = local;
    return all;
  }

  WallTimer relax_timer;
  PGSIM_ASSIGN_OR_RETURN(
      const std::vector<Graph> relaxed,
      GenerateRelaxedQueries(q, options.delta, options.relax));
  local.num_relaxed_queries = relaxed.size();
  local.relax_seconds = relax_timer.Seconds();

  std::vector<uint32_t> answers;
  WallTimer verify_timer;
  for (uint32_t gi = 0; gi < db.size(); ++gi) {
    if (!alive_[gi]) continue;
    ++local.verification_candidates;
    const Result<double> ssp =
        ExactSubgraphSimilarityProbability(db[gi], relaxed, options.verifier);
    if (!ssp.ok()) {
      ++local.verification_failures;
      continue;
    }
    if (ssp.value() >= options.epsilon) answers.push_back(gi);
  }
  local.verify_seconds = verify_timer.Seconds();
  local.answers = answers.size();
  local.total_seconds = total_timer.Seconds();
  if (stats != nullptr) *stats = local;
  return answers;
}

}  // namespace pgsim
