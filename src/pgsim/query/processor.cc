#include "pgsim/query/processor.h"

#include <algorithm>

#include "pgsim/common/timer.h"

namespace pgsim {

Result<std::vector<uint32_t>> QueryProcessor::Query(
    const Graph& q, const QueryOptions& options, QueryStats* stats) const {
  WallTimer total_timer;
  QueryStats local;
  const auto& db = *database_;
  local.database_size = db.size();

  std::vector<uint32_t> answers;

  if (options.delta >= q.NumEdges()) {
    // dis(q, g') <= |E(q)| <= delta for every world: SSP = 1 everywhere.
    answers.resize(db.size());
    for (uint32_t i = 0; i < db.size(); ++i) answers[i] = i;
    local.answers = answers.size();
    local.total_seconds = total_timer.Seconds();
    if (stats != nullptr) *stats = local;
    return answers;
  }

  // ---- Relaxation: U = {rq1..rqa}. ----
  WallTimer relax_timer;
  PGSIM_ASSIGN_OR_RETURN(
      const std::vector<Graph> relaxed,
      GenerateRelaxedQueries(q, options.delta, options.relax));
  local.num_relaxed_queries = relaxed.size();
  local.relax_seconds = relax_timer.Seconds();

  // ---- Stage 1: structural pruning (Theorem 1). ----
  WallTimer structural_timer;
  std::vector<uint32_t> sc_q;
  if (options.use_structural_filter && structural_ != nullptr) {
    sc_q = structural_->Filter(q, relaxed, options.delta,
                               &local.structural_detail);
  } else {
    sc_q.resize(db.size());
    for (uint32_t i = 0; i < db.size(); ++i) sc_q[i] = i;
  }
  local.structural_candidates = sc_q.size();
  local.structural_seconds = structural_timer.Seconds();

  // ---- Stage 2: probabilistic pruning (Theorems 3-4). ----
  WallTimer prob_timer;
  Rng rng(options.seed);
  std::vector<uint32_t> to_verify;
  if (options.use_probabilistic_pruning && pmi_ != nullptr) {
    ProbabilisticPruner pruner(pmi_, options.pruner);
    pruner.PrepareQuery(relaxed);
    for (uint32_t gi : sc_q) {
      const PruneDecision d = pruner.Evaluate(gi, options.epsilon, &rng);
      switch (d.outcome) {
        case PruneOutcome::kPruned:
          ++local.pruned_by_upper;
          break;
        case PruneOutcome::kAccepted:
          ++local.accepted_by_lower;
          answers.push_back(gi);
          break;
        case PruneOutcome::kCandidate:
          to_verify.push_back(gi);
          break;
      }
    }
  } else {
    to_verify = sc_q;
  }
  local.verification_candidates = to_verify.size();
  local.prob_seconds = prob_timer.Seconds();

  // ---- Stage 3: verification (Section 5). ----
  WallTimer verify_timer;
  for (uint32_t gi : to_verify) {
    Result<double> ssp =
        options.verify_mode == QueryOptions::VerifyMode::kExact
            ? ExactSubgraphSimilarityProbability(db[gi], relaxed,
                                                 options.verifier)
            : SampleSubgraphSimilarityProbability(db[gi], relaxed,
                                                  options.verifier, &rng);
    if (!ssp.ok()) {
      ++local.verification_failures;
      continue;
    }
    if (ssp.value() >= options.epsilon) answers.push_back(gi);
  }
  local.verify_seconds = verify_timer.Seconds();

  std::sort(answers.begin(), answers.end());
  local.answers = answers.size();
  local.total_seconds = total_timer.Seconds();
  if (stats != nullptr) *stats = local;
  return answers;
}

Result<std::vector<uint32_t>> QueryProcessor::ExactScan(
    const Graph& q, const QueryOptions& options, QueryStats* stats) const {
  WallTimer total_timer;
  QueryStats local;
  const auto& db = *database_;
  local.database_size = db.size();

  if (options.delta >= q.NumEdges()) {
    std::vector<uint32_t> all(db.size());
    for (uint32_t i = 0; i < db.size(); ++i) all[i] = i;
    local.answers = all.size();
    local.total_seconds = total_timer.Seconds();
    if (stats != nullptr) *stats = local;
    return all;
  }

  WallTimer relax_timer;
  PGSIM_ASSIGN_OR_RETURN(
      const std::vector<Graph> relaxed,
      GenerateRelaxedQueries(q, options.delta, options.relax));
  local.num_relaxed_queries = relaxed.size();
  local.relax_seconds = relax_timer.Seconds();

  std::vector<uint32_t> answers;
  WallTimer verify_timer;
  for (uint32_t gi = 0; gi < db.size(); ++gi) {
    ++local.verification_candidates;
    const Result<double> ssp =
        ExactSubgraphSimilarityProbability(db[gi], relaxed, options.verifier);
    if (!ssp.ok()) {
      ++local.verification_failures;
      continue;
    }
    if (ssp.value() >= options.epsilon) answers.push_back(gi);
  }
  local.verify_seconds = verify_timer.Seconds();
  local.answers = answers.size();
  local.total_seconds = total_timer.Seconds();
  if (stats != nullptr) *stats = local;
  return answers;
}

}  // namespace pgsim
