#include "pgsim/query/structural_filter.h"

#include <algorithm>
#include <memory>

#include "pgsim/common/thread_pool.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/vf2.h"

namespace pgsim {

StructuralFilter StructuralFilter::Build(
    const std::vector<Graph>& certain_db, const std::vector<Feature>& features,
    const StructuralFilterOptions& options) {
  WallTimer timer;
  StructuralFilter filter;
  filter.options_ = options;
  filter.graphs_.reserve(certain_db.size());
  for (const Graph& g : certain_db) filter.graphs_.push_back(&g);
  filter.feature_graphs_.reserve(features.size());
  for (const Feature& f : features) filter.feature_graphs_.push_back(&f.graph);
  filter.counts_.assign(certain_db.size(),
                        std::vector<uint16_t>(features.size(), 0));

  // Invert support lists so each worker owns one graph row outright; cell
  // values are pure functions of (feature, graph), so the table is
  // bit-identical at any thread count.
  std::vector<std::vector<uint32_t>> features_of_graph(certain_db.size());
  size_t counted_pairs = 0;
  for (size_t fi = 0; fi < features.size(); ++fi) {
    for (uint32_t gi : features[fi].support) {
      features_of_graph[gi].push_back(static_cast<uint32_t>(fi));
      ++counted_pairs;
    }
  }

  const ScopedPool pool(options.num_threads, options.pool);
  ForEachIndex(pool.get(), certain_db.size(), 4, [&](size_t gi) {
    for (uint32_t fi : features_of_graph[gi]) {
      bool truncated = false;
      const auto embeddings =
          EmbeddingEdgeSets(features[fi].graph, certain_db[gi],
                            options.max_count, &truncated);
      filter.counts_[gi][fi] =
          truncated ? static_cast<uint16_t>(0xFFFF)
                    : static_cast<uint16_t>(embeddings.size());
    }
  });
  filter.build_stats_.build_threads = pool.threads();
  filter.build_stats_.counted_pairs = counted_pairs;
  filter.build_stats_.seconds = timer.Seconds();
  return filter;
}

std::vector<uint32_t> StructuralFilter::Filter(
    const Graph& q, const std::vector<Graph>& relaxed, uint32_t delta,
    StructuralFilterStats* stats) const {
  std::vector<uint32_t> survivors;
  StructuralFilterScratch scratch;
  Filter(q, relaxed, delta, &survivors, &scratch, stats);
  return survivors;
}

void StructuralFilter::CountQueryFeatures(const Graph& q,
                                          std::vector<uint32_t>* per_edge,
                                          uint64_t* isomorphism_tests,
                                          QueryFeatureCounts* out) const {
  out->entries.clear();
  for (size_t fi = 0; fi < feature_graphs_.size(); ++fi) {
    const Graph& feature = *feature_graphs_[fi];
    if (feature.NumEdges() > q.NumEdges()) continue;
    bool truncated = false;
    const auto embeddings =
        EmbeddingEdgeSets(feature, q, options_.max_query_count, &truncated);
    if (isomorphism_tests != nullptr) ++*isomorphism_tests;
    if (truncated || embeddings.empty()) continue;
    per_edge->assign(q.NumEdges(), 0);
    for (const EdgeBitset& emb : embeddings) {
      for (uint32_t e : emb.ToVector()) ++(*per_edge)[e];
    }
    QueryFeatureCounts::Entry entry;
    entry.feature = static_cast<uint32_t>(fi);
    entry.count = static_cast<uint32_t>(embeddings.size());
    entry.max_per_edge = *std::max_element(per_edge->begin(), per_edge->end());
    out->entries.push_back(entry);
  }
}

QueryFeatureCounts StructuralFilter::ComputeQueryCounts(
    const Graph& q, uint64_t* isomorphism_tests) const {
  QueryFeatureCounts counts;
  std::vector<uint32_t> per_edge;
  CountQueryFeatures(q, &per_edge, isomorphism_tests, &counts);
  return counts;
}

void StructuralFilter::Filter(const Graph& q, const std::vector<Graph>& relaxed,
                              uint32_t delta, std::vector<uint32_t>* survivors,
                              StructuralFilterScratch* scratch,
                              StructuralFilterStats* stats,
                              const QueryFeatureCounts* precomputed,
                              QueryFeatureCounts* computed_counts) const {
  WallTimer timer;
  StructuralFilterStats local;

  // Per-feature thresholds from the query: needed = count_f(q) - delta *
  // maxPerEdge_f(q); only features with needed >= 1 can prune. The counts
  // either come in precomputed (batch cache hit) or are counted here.
  const QueryFeatureCounts* counts = precomputed;
  if (counts == nullptr) {
    CountQueryFeatures(q, &scratch->per_edge, &local.isomorphism_tests,
                       &scratch->counts);
    counts = &scratch->counts;
    if (computed_counts != nullptr) *computed_counts = scratch->counts;
  }
  auto& thresholds = scratch->thresholds;
  thresholds.clear();
  for (const QueryFeatureCounts::Entry& entry : counts->entries) {
    const uint64_t destroyed = uint64_t{delta} * entry.max_per_edge;
    if (entry.count > destroyed) {
      thresholds.emplace_back(entry.feature,
                              static_cast<uint32_t>(entry.count - destroyed));
    }
  }

  survivors->clear();
  for (uint32_t gi = 0; gi < graphs_.size(); ++gi) {
    bool pruned = false;
    for (const auto& [feature, needed] : thresholds) {
      const uint16_t have = counts_[gi][feature];
      if (have == 0xFFFF) continue;  // saturated: unknown, cannot prune
      if (have < needed) {
        pruned = true;
        break;
      }
    }
    if (!pruned) survivors->push_back(gi);
  }
  local.count_filter_survivors = survivors->size();

  if (options_.exact_check) {
    auto& exact = scratch->exact;
    exact.clear();
    for (uint32_t gi : *survivors) {
      bool similar = false;
      for (const Graph& rq : relaxed) {
        ++local.isomorphism_tests;
        if (IsSubgraphIsomorphic(rq, *graphs_[gi])) {
          similar = true;
          break;
        }
      }
      if (similar) exact.push_back(gi);
    }
    survivors->swap(exact);
  }
  local.exact_survivors = survivors->size();
  local.seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
}

}  // namespace pgsim
