#include "pgsim/query/structural_filter.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "pgsim/common/thread_pool.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/io.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/storage/io_util.h"

namespace pgsim {

namespace {

// One threshold's sweep over a full 64-cell word of the feature-major count
// row: returns the pass mask (bit g set iff cell[g] >= needed). The
// saturation rule is folded into the compare — `needed` is pre-clamped to
// 0xFFFF, and a saturated cell (0xFFFF) always satisfies have >= needed, so
// "unknown, never prune" holds without a second test.
#if defined(__SSE2__)
inline uint64_t PassMask64(const uint16_t* cell, uint16_t needed) {
  // Unsigned 16-bit compare via the sign-bias trick (SSE2 compares are
  // signed); 8 lanes x 2 loads -> packs -> movemask yields 16 pass bits.
  const __m128i bias = _mm_set1_epi16(static_cast<short>(0x8000));
  const __m128i nd =
      _mm_set1_epi16(static_cast<short>(needed ^ 0x8000));
  uint64_t pass = 0;
  for (int c = 0; c < 4; ++c) {
    const __m128i a = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cell + c * 16)),
        bias);
    const __m128i b = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cell + c * 16 + 8)),
        bias);
    const uint32_t fail = static_cast<uint32_t>(_mm_movemask_epi8(
        _mm_packs_epi16(_mm_cmplt_epi16(a, nd), _mm_cmplt_epi16(b, nd))));
    pass |= uint64_t{static_cast<uint16_t>(~fail)} << (c * 16);
  }
  return pass;
}
#else
inline uint64_t PassMask64(const uint16_t* cell, uint16_t needed) {
  // 8x8 chunking keeps the reduction narrow enough for SLP vectorization.
  uint64_t pass = 0;
  for (int c = 0; c < 8; ++c) {
    uint8_t m = 0;
    for (int b = 0; b < 8; ++b) {
      m |= static_cast<uint8_t>(cell[c * 8 + b] >= needed) << b;
    }
    pass |= uint64_t{m} << (c * 8);
  }
  return pass;
}
#endif

}  // namespace

StructuralFilter StructuralFilter::Build(
    const std::vector<Graph>& certain_db, const std::vector<Feature>& features,
    const StructuralFilterOptions& options) {
  WallTimer timer;
  StructuralFilter filter;
  filter.options_ = options;
  filter.graphs_.reserve(certain_db.size());
  for (const Graph& g : certain_db) filter.graphs_.push_back(&g);
  filter.feature_graphs_.reserve(features.size());
  for (const Feature& f : features) filter.feature_graphs_.push_back(&f.graph);
  filter.num_graphs_ = static_cast<uint32_t>(certain_db.size());
  filter.num_alive_ = filter.num_graphs_;
  // Stride == num_graphs exactly: no padding, so counts() of two builds of
  // the same database compare equal; AddGraph grows the stride on demand.
  filter.col_capacity_ = certain_db.size();
  filter.counts_.assign(features.size() * certain_db.size(), 0);
  filter.live_mask_.ResetTo(certain_db.size());
  filter.live_mask_.SetAll();

  // Compile each feature's match plan once; build-time counting and every
  // query-time CountQueryFeatures run these instead of recompiling.
  filter.feature_plans_.reserve(features.size());
  for (const Feature& f : features) {
    filter.feature_plans_.push_back(CompileMatchPlan(f.graph));
  }
  // Database-aggregate label frequencies: the exact check compiles relaxed
  // queries' plans against them so seed positions start at the rarest label
  // across the candidate population.
  for (const Graph& g : certain_db) {
    AccumulateVertexLabelFrequencies(g, &filter.label_freq_);
  }

  // Invert support lists so each worker owns one graph's cells outright
  // (fixed column of every feature row); cell values are pure functions of
  // (feature, graph), so the matrix is bit-identical at any thread count.
  std::vector<std::vector<uint32_t>> features_of_graph(certain_db.size());
  size_t counted_pairs = 0;
  for (size_t fi = 0; fi < features.size(); ++fi) {
    for (uint32_t gi : features[fi].support) {
      features_of_graph[gi].push_back(static_cast<uint32_t>(fi));
      ++counted_pairs;
    }
  }

  const ScopedPool pool(options.num_threads, options.pool);
  ForEachIndex(pool.get(), certain_db.size(), 4, [&](size_t gi) {
    Vf2Scratch vf2;  // reused across this graph's features
    for (uint32_t fi : features_of_graph[gi]) {
      bool truncated = false;
      const auto embeddings =
          EmbeddingEdgeSets(filter.feature_plans_[fi], certain_db[gi],
                            options.max_count, &truncated, &vf2);
      filter.counts_[static_cast<size_t>(fi) * certain_db.size() + gi] =
          truncated ? static_cast<uint16_t>(0xFFFF)
                    : static_cast<uint16_t>(embeddings.size());
    }
  });

  // Per-graph label histograms feed the exact check's pre-VF2 guard; a
  // count-only filter never reads them.
  if (options.exact_check) {
    filter.graph_hist_.resize(certain_db.size());
    for (size_t gi = 0; gi < certain_db.size(); ++gi) {
      BuildLabelHistogram(certain_db[gi], &filter.graph_hist_[gi]);
    }
  }

  filter.build_stats_.build_threads = pool.threads();
  filter.build_stats_.counted_pairs = counted_pairs;
  filter.build_stats_.seconds = timer.Seconds();
  return filter;
}

std::vector<uint32_t> StructuralFilter::Filter(
    const Graph& q, const std::vector<Graph>& relaxed, uint32_t delta,
    StructuralFilterStats* stats) const {
  std::vector<uint32_t> survivors;
  StructuralFilterScratch scratch;
  Filter(q, relaxed, delta, &survivors, &scratch, stats);
  return survivors;
}

void StructuralFilter::CountQueryFeatures(const Graph& q,
                                          std::vector<uint32_t>* per_edge,
                                          uint64_t* isomorphism_tests,
                                          Vf2Scratch* vf2,
                                          QueryFeatureCounts* out) const {
  out->entries.clear();
  for (size_t fi = 0; fi < feature_graphs_.size(); ++fi) {
    const Graph& feature = *feature_graphs_[fi];
    if (feature.NumEdges() > q.NumEdges()) continue;
    bool truncated = false;
    const auto embeddings = EmbeddingEdgeSets(
        feature_plans_[fi], q, options_.max_query_count, &truncated, vf2);
    if (isomorphism_tests != nullptr) ++*isomorphism_tests;
    if (truncated || embeddings.empty()) continue;
    per_edge->assign(q.NumEdges(), 0);
    for (const EdgeBitset& emb : embeddings) {
      for (uint32_t e : emb.ToVector()) ++(*per_edge)[e];
    }
    QueryFeatureCounts::Entry entry;
    entry.feature = static_cast<uint32_t>(fi);
    entry.count = static_cast<uint32_t>(embeddings.size());
    entry.max_per_edge = *std::max_element(per_edge->begin(), per_edge->end());
    out->entries.push_back(entry);
  }
}

QueryFeatureCounts StructuralFilter::ComputeQueryCounts(
    const Graph& q, uint64_t* isomorphism_tests) const {
  QueryFeatureCounts counts;
  std::vector<uint32_t> per_edge;
  Vf2Scratch vf2;
  CountQueryFeatures(q, &per_edge, isomorphism_tests, &vf2, &counts);
  return counts;
}

void StructuralFilter::Filter(const Graph& q, const std::vector<Graph>& relaxed,
                              uint32_t delta, std::vector<uint32_t>* survivors,
                              StructuralFilterScratch* scratch,
                              StructuralFilterStats* stats,
                              const QueryFeatureCounts* precomputed,
                              QueryFeatureCounts* computed_counts,
                              const std::vector<MatchPlan>* rq_plans,
                              const SignatureIndex* sigs,
                              const std::vector<QuerySignature>* rq_sigs)
    const {
  WallTimer timer;
  StructuralFilterStats local;
  // The gate needs both sides; half-armed callers run unguarded.
  const bool use_sigs = sigs != nullptr && rq_sigs != nullptr;

  // Per-feature thresholds from the query: needed = count_f(q) - delta *
  // maxPerEdge_f(q); only features with needed >= 1 can prune. The counts
  // either come in precomputed (batch cache hit) or are counted here.
  const QueryFeatureCounts* counts = precomputed;
  if (counts == nullptr) {
    CountQueryFeatures(q, &scratch->per_edge, &local.isomorphism_tests,
                       &scratch->vf2, &scratch->counts);
    counts = &scratch->counts;
    if (computed_counts != nullptr) *computed_counts = scratch->counts;
  }
  auto& thresholds = scratch->thresholds;
  thresholds.clear();
  for (const QueryFeatureCounts::Entry& entry : counts->entries) {
    const uint64_t destroyed = uint64_t{delta} * entry.max_per_edge;
    if (entry.count > destroyed) {
      thresholds.emplace_back(entry.feature,
                              static_cast<uint32_t>(entry.count - destroyed));
    }
  }
  // Most-selective-first: a higher required count prunes more graphs, so
  // sweeping those rows first shrinks the survivor bitset early. Pure
  // heuristic — the survivor set is the intersection over all thresholds
  // and does not depend on the order.
  std::sort(thresholds.begin(), thresholds.end(),
            [](const std::pair<size_t, uint32_t>& a,
               const std::pair<size_t, uint32_t>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  // Columnar count filter: one contiguous feature row per threshold,
  // visiting only still-alive graphs. The sweep starts from the live mask —
  // not all-ones — so tombstoned columns are out even when the query yields
  // no thresholds at all.
  EdgeBitset& alive = scratch->alive;
  alive.AssignWords(live_mask_.words().data(), num_graphs_);
  for (const auto& [feature, needed] : thresholds) {
    const uint16_t* row = counts_.data() + feature * col_capacity_;
    // Clamping folds the saturation rule into one unsigned compare:
    // have < min(needed, 0xFFFF) is exactly (have != 0xFFFF && have <
    // needed) — a saturated 0xFFFF cell never fails it ("unknown, never
    // prune", soundness), and a needed beyond the uint16 range kills every
    // unsaturated cell just as the unclamped comparison would.
    const uint16_t needed16 =
        needed > 0xFFFF ? static_cast<uint16_t>(0xFFFF)
                        : static_cast<uint16_t>(needed);
    const auto& words = alive.words();
    const size_t full_words = num_graphs_ / 64;
    uint64_t any_alive = 0;
    for (size_t wi = 0; wi < full_words; ++wi) {
      if (words[wi] == 0) continue;
      alive.AndWordAt(wi, PassMask64(row + wi * 64, needed16));
      any_alive |= words[wi];
    }
    for (uint32_t gi = static_cast<uint32_t>(full_words * 64);
         gi < num_graphs_; ++gi) {
      if (row[gi] < needed16) alive.Reset(gi);
    }
    if (!words.empty()) any_alive |= words.back();
    if (any_alive == 0) break;  // everything pruned; later rows can't revive
  }
  survivors->clear();
  {
    const auto& words = alive.words();
    for (size_t wi = 0; wi < words.size(); ++wi) {
      uint64_t w = words[wi];
      while (w != 0) {
        survivors->push_back(
            static_cast<uint32_t>(wi * 64 + __builtin_ctzll(w)));
        w &= w - 1;
      }
    }
  }
  local.count_filter_survivors = survivors->size();

  if (options_.exact_check) {
    // Any rq hit certifies q ⊆sim gc, so visit relaxed queries in ascending
    // edge order: smaller patterns embed more often and test cheaper, and
    // the order cannot change which graphs survive. A size +
    // label-multiset guard skips (uncounted) VF2 tests that provably fail.
    auto& order = scratch->rq_order;
    order.resize(relaxed.size());
    for (uint32_t ri = 0; ri < relaxed.size(); ++ri) order[ri] = ri;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return relaxed[a].NumEdges() < relaxed[b].NumEdges();
                     });
    auto& rq_hist = scratch->rq_hist;
    rq_hist.resize(relaxed.size());
    for (uint32_t ri = 0; ri < relaxed.size(); ++ri) {
      BuildLabelHistogram(relaxed[ri], &rq_hist[ri]);
    }
    // One compiled plan per rq for the whole survivor sweep: passed in by
    // the processor, or compiled here (seeded rarest-database-label-first —
    // the hit/miss answer per (rq, gc) pair is plan-independent, so the
    // survivor set cannot change).
    if (rq_plans == nullptr) {
      scratch->rq_plans.clear();
      scratch->rq_plans.reserve(relaxed.size());
      MatchPlanOptions plan_options;
      plan_options.label_freq = &label_freq_;
      for (const Graph& rq : relaxed) {
        scratch->rq_plans.push_back(CompileMatchPlan(rq, plan_options));
      }
      rq_plans = &scratch->rq_plans;
    }

    // Compact survivors in place: read index scans the count-filter output,
    // write index keeps exact hits (both ascend, so order is preserved).
    size_t kept = 0;
    for (size_t read = 0; read < survivors->size(); ++read) {
      const uint32_t gi = (*survivors)[read];
      const Graph& gc = *graphs_[gi];
      bool similar = false;
      for (uint32_t ri : order) {
        const Graph& rq = relaxed[ri];
        if (rq.NumEdges() > gc.NumEdges() ||
            rq.NumVertices() > gc.NumVertices()) {
          continue;
        }
        if (!HistogramCoversPattern(graph_hist_[gi], rq_hist[ri])) continue;
        // Signature gate: a cover-test failure proves rq cannot embed, so
        // skipping the (uncounted) VF2 call cannot change the survivor set;
        // a pass yields candidate domains that VF2 consumes as a sound,
        // order-preserving narrowing of its per-position iteration.
        const CandidateDomains* domains = nullptr;
        if (use_sigs) {
          if (!BuildCandidateDomains(rq, (*rq_sigs)[ri].view(), gc,
                                     sigs->ForGraph(gi), &scratch->vf2.domains,
                                     &local.domain_candidates_pruned)) {
            ++local.sig_pairs_rejected;
            continue;
          }
          domains = &scratch->vf2.domains;
        }
        ++local.isomorphism_tests;
        if (IsSubgraphIsomorphic((*rq_plans)[ri], gc, &scratch->vf2,
                                 domains)) {
          similar = true;
          break;
        }
      }
      if (similar) (*survivors)[kept++] = gi;
    }
    survivors->resize(kept);
  }
  local.exact_survivors = survivors->size();
  local.seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
}

void StructuralFilter::GrowCapacity(size_t capacity) {
  if (capacity <= col_capacity_) return;
  const size_t num_features = feature_graphs_.size();
  std::vector<uint16_t> grown(num_features * capacity, 0);
  for (size_t fi = 0; fi < num_features; ++fi) {
    std::copy_n(counts_.begin() + fi * col_capacity_, num_graphs_,
                grown.begin() + fi * capacity);
  }
  counts_ = std::move(grown);
  // Re-seat the live mask at the new capacity, keeping its bits.
  const std::vector<uint64_t> live_words = live_mask_.words();
  live_mask_.ResetTo(capacity);
  live_mask_.OrWords(live_words.data(), live_words.size());
  col_capacity_ = capacity;
}

void StructuralFilter::ReserveGraphCapacity(size_t extra) {
  GrowCapacity(num_graphs_ + extra);
}

uint32_t StructuralFilter::AddGraph(
    const Graph& gc, const std::vector<uint32_t>* contained_features) {
  if (num_graphs_ >= col_capacity_) {
    // Amortized doubling keeps the per-add re-stride cost O(1) features-rows
    // on average; a fresh Build() starts with zero slack.
    GrowCapacity(std::max<size_t>(16, col_capacity_ * 2));
  }
  const uint32_t graph_id = num_graphs_;
  owned_graphs_.push_back(gc);
  const Graph& owned = owned_graphs_.back();
  graphs_.push_back(&owned);
  AccumulateVertexLabelFrequencies(owned, &label_freq_);
  if (options_.exact_check) {
    graph_hist_.emplace_back();
    BuildLabelHistogram(owned, &graph_hist_.back());
  }
  Vf2Scratch vf2;
  const auto count_cell = [&](uint32_t fi) {
    const Graph& feature = *feature_graphs_[fi];
    if (feature.NumEdges() > owned.NumEdges()) return;
    bool truncated = false;
    const auto embeddings = EmbeddingEdgeSets(feature_plans_[fi], owned,
                                              options_.max_count, &truncated,
                                              &vf2);
    counts_[static_cast<size_t>(fi) * col_capacity_ + graph_id] =
        truncated ? static_cast<uint16_t>(0xFFFF)
                  : static_cast<uint16_t>(embeddings.size());
  };
  if (contained_features != nullptr) {
    // The PMI already decided containment; only those cells can be nonzero.
    for (uint32_t fi : *contained_features) count_cell(fi);
  } else {
    for (uint32_t fi = 0; fi < feature_graphs_.size(); ++fi) count_cell(fi);
  }
  live_mask_.Set(graph_id);
  ++num_graphs_;
  ++num_alive_;
  return graph_id;
}

Status StructuralFilter::RemoveGraph(uint32_t graph_id) {
  if (graph_id >= num_graphs_) {
    return Status::InvalidArgument(
        "StructuralFilter::RemoveGraph: graph id out of range");
  }
  if (!live_mask_.Test(graph_id)) {
    return Status::InvalidArgument(
        "StructuralFilter::RemoveGraph: graph already removed");
  }
  for (size_t fi = 0; fi < feature_graphs_.size(); ++fi) {
    counts_[fi * col_capacity_ + graph_id] = 0;
  }
  // graphs_[graph_id] stays valid (needed here for the exact label-frequency
  // subtraction, and graph ids are stable until Compact()).
  for (LabelId l : graphs_[graph_id]->VertexLabels()) --label_freq_[l];
  live_mask_.Reset(graph_id);
  --num_alive_;
  return Status::OK();
}

namespace {
// "PGSF": structural-filter snapshot, checksummed-section container.
constexpr uint32_t kFilterMagic = 0x50475346u;
constexpr uint32_t kFilterVersion = 1;
}  // namespace

Status StructuralFilter::Save(const std::string& path) const {
  SnapshotWriter writer(kFilterMagic, kFilterVersion);

  std::ostringstream header;
  WriteU32(header, num_graphs_);
  WriteU32(header, num_alive_);
  WriteU32(header, static_cast<uint32_t>(feature_graphs_.size()));
  WriteU32(header, options_.max_count);
  WriteU32(header, options_.max_query_count);
  header.put(options_.exact_check ? '\1' : '\0');
  writer.AddSection(header.str());

  // Count matrix at stride num_graphs_ (capacity slack is a memory-layout
  // detail, not state), feature-major, raw little-endian u16 cells.
  std::string cells;
  cells.reserve(2 * size_t{num_graphs_} * feature_graphs_.size());
  for (size_t fi = 0; fi < feature_graphs_.size(); ++fi) {
    const uint16_t* row = counts_.data() + fi * col_capacity_;
    for (uint32_t gi = 0; gi < num_graphs_; ++gi) {
      const uint16_t c = row[gi];
      cells.push_back(static_cast<char>(c & 0xFF));
      cells.push_back(static_cast<char>(c >> 8));
    }
  }
  writer.AddSection(cells);

  std::string live(num_graphs_, '\0');
  for (uint32_t gi = 0; gi < num_graphs_; ++gi) {
    if (live_mask_.Test(gi)) live[gi] = '\1';
  }
  writer.AddSection(live);

  return writer.Commit(path, "snapshot.filter");
}

Result<StructuralFilter> StructuralFilter::Load(
    const std::string& path, const std::vector<Graph>& certain_db,
    const std::vector<Feature>& features) {
  PGSIM_ASSIGN_OR_RETURN(SnapshotReader snap,
                         SnapshotReader::Open(path, kFilterMagic));
  if (snap.version() != kFilterVersion) {
    return Status::InvalidArgument(
        "StructuralFilter::Load: unsupported version " +
        std::to_string(snap.version()));
  }
  if (snap.num_sections() != 3) {
    return Status::DataLoss("StructuralFilter::Load: expected 3 sections in " +
                            path);
  }

  const std::string& header = snap.section(0);
  std::istringstream hs(header);
  PGSIM_ASSIGN_OR_RETURN(const uint32_t num_graphs, ReadU32(hs));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t num_alive, ReadU32(hs));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t num_features, ReadU32(hs));
  StructuralFilter filter;
  PGSIM_ASSIGN_OR_RETURN(filter.options_.max_count, ReadU32(hs));
  PGSIM_ASSIGN_OR_RETURN(filter.options_.max_query_count, ReadU32(hs));
  const int exact_byte = hs.get();
  if (exact_byte == std::char_traits<char>::eof()) {
    return Status::DataLoss("StructuralFilter::Load: truncated header in " +
                            path);
  }
  filter.options_.exact_check = exact_byte != 0;

  if (num_graphs != certain_db.size()) {
    return Status::InvalidArgument(
        "StructuralFilter::Load: file has " + std::to_string(num_graphs) +
        " graphs but certain_db has " + std::to_string(certain_db.size()));
  }
  if (num_features != features.size()) {
    return Status::InvalidArgument(
        "StructuralFilter::Load: file has " + std::to_string(num_features) +
        " features but " + std::to_string(features.size()) + " were given");
  }

  const std::string& cells = snap.section(1);
  if (cells.size() != 2 * size_t{num_graphs} * num_features) {
    return Status::DataLoss(
        "StructuralFilter::Load: count matrix has wrong size in " + path);
  }
  const std::string& live = snap.section(2);
  if (live.size() != num_graphs) {
    return Status::DataLoss(
        "StructuralFilter::Load: live mask has wrong size in " + path);
  }

  filter.num_graphs_ = num_graphs;
  filter.col_capacity_ = num_graphs;
  filter.graphs_.reserve(num_graphs);
  for (const Graph& g : certain_db) filter.graphs_.push_back(&g);
  filter.feature_graphs_.reserve(num_features);
  for (const Feature& f : features) filter.feature_graphs_.push_back(&f.graph);
  filter.feature_plans_.reserve(num_features);
  for (const Feature& f : features) {
    filter.feature_plans_.push_back(CompileMatchPlan(f.graph));
  }

  filter.counts_.resize(size_t{num_features} * num_graphs);
  for (size_t k = 0; k < filter.counts_.size(); ++k) {
    filter.counts_[k] =
        static_cast<uint16_t>(static_cast<uint8_t>(cells[2 * k])) |
        static_cast<uint16_t>(static_cast<uint8_t>(cells[2 * k + 1])) << 8;
  }

  filter.live_mask_.ResetTo(num_graphs);
  filter.num_alive_ = 0;
  for (uint32_t gi = 0; gi < num_graphs; ++gi) {
    if (live[gi] != '\0') {
      filter.live_mask_.Set(gi);
      ++filter.num_alive_;
    }
  }
  if (filter.num_alive_ != num_alive) {
    return Status::DataLoss(
        "StructuralFilter::Load: live mask disagrees with header in " + path);
  }

  // label_freq_ aggregates ALIVE graphs only (RemoveGraph subtracts), while
  // graph_hist_ keeps one entry per column, dead or not (Build fills all,
  // RemoveGraph leaves them — the live mask excludes dead columns upstream).
  for (uint32_t gi = 0; gi < num_graphs; ++gi) {
    if (live[gi] != '\0') {
      AccumulateVertexLabelFrequencies(certain_db[gi], &filter.label_freq_);
    }
  }
  if (filter.options_.exact_check) {
    filter.graph_hist_.resize(num_graphs);
    for (uint32_t gi = 0; gi < num_graphs; ++gi) {
      BuildLabelHistogram(certain_db[gi], &filter.graph_hist_[gi]);
    }
  }
  return filter;
}

void StructuralFilter::Compact() {
  if (num_alive_ == num_graphs_) return;
  const std::vector<uint32_t> live = live_mask_.ToVector();  // ascending
  const size_t num_features = feature_graphs_.size();
  std::vector<uint16_t> packed(num_features * live.size(), 0);
  for (size_t fi = 0; fi < num_features; ++fi) {
    const uint16_t* row = counts_.data() + fi * col_capacity_;
    uint16_t* out = packed.data() + fi * live.size();
    for (size_t k = 0; k < live.size(); ++k) out[k] = row[live[k]];
  }
  counts_ = std::move(packed);
  std::vector<const Graph*> packed_graphs;
  packed_graphs.reserve(live.size());
  for (uint32_t gi : live) packed_graphs.push_back(graphs_[gi]);
  graphs_ = std::move(packed_graphs);
  if (!graph_hist_.empty()) {
    std::vector<LabelHistogram> packed_hist;
    packed_hist.reserve(live.size());
    for (uint32_t gi : live) packed_hist.push_back(std::move(graph_hist_[gi]));
    graph_hist_ = std::move(packed_hist);
  }
  num_graphs_ = static_cast<uint32_t>(live.size());
  num_alive_ = num_graphs_;
  col_capacity_ = live.size();
  live_mask_.ResetTo(num_graphs_);
  live_mask_.SetAll();
}

}  // namespace pgsim
