// Top-k probabilistic subgraph similarity search.
//
// A natural extension of the paper's threshold queries: instead of a fixed
// probability threshold epsilon, return the k database graphs with the
// highest Pr(q ⊆sim g). The PMI bounds drive the search: candidates are
// verified in decreasing order of their Usim upper bound, and the scan stops
// as soon as the next candidate's upper bound cannot beat the current k-th
// best estimate — the standard upper-bound-ordered top-k early termination.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/prob_pruner.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/query/verifier.h"

namespace pgsim {

/// Top-k query parameters.
struct TopKOptions {
  uint32_t k = 10;
  uint32_t delta = 2;
  RelaxationOptions relax;
  ProbPrunerOptions pruner;
  VerifierOptions verifier;
  uint64_t seed = 7;
  /// Use exact SSP instead of the Algorithm 5 sampler for ranking.
  bool exact_verification = false;
  /// The PMI upper bounds carry Monte-Carlo noise; early termination only
  /// fires when usim + bound_slack <= current k-th best, trading a little
  /// extra verification for robustness against noisy bounds.
  double bound_slack = 0.02;
};

/// One ranked answer.
struct TopKEntry {
  uint32_t graph_id = 0;
  double ssp = 0.0;     ///< estimated (or exact) similarity probability
  double usim = 1.0;    ///< the upper bound that scheduled it
};

/// Result plus work counters.
struct TopKResult {
  std::vector<TopKEntry> entries;    ///< descending by ssp, size <= k
  size_t structural_candidates = 0;
  size_t verified = 0;               ///< candidates actually verified
  size_t skipped_by_bound = 0;       ///< candidates cut by early termination
};

/// Runs the top-k query. `filter` may be null (no structural stage).
Result<TopKResult> TopKQuery(const std::vector<ProbabilisticGraph>& db,
                             const ProbabilisticMatrixIndex& pmi,
                             const StructuralFilter* filter, const Graph& q,
                             const TopKOptions& options);

}  // namespace pgsim
