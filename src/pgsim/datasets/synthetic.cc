#include "pgsim/datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pgsim {

namespace {

// Zipf-ish label sampler: label k with weight 1/(k+1).
LabelId SampleLabel(uint32_t num_labels, Rng* rng) {
  std::vector<double> weights(num_labels);
  for (uint32_t k = 0; k < num_labels; ++k) weights[k] = 1.0 / (k + 1.0);
  return static_cast<LabelId>(rng->Discrete(weights));
}

// Connected random topology: spanning tree + degree-biased extra edges.
Graph GenerateTopology(uint32_t num_vertices, uint32_t target_edges,
                       uint32_t num_vertex_labels, uint32_t num_edge_labels,
                       Rng* rng) {
  GraphBuilder builder;
  for (uint32_t v = 0; v < num_vertices; ++v) {
    builder.AddVertex(SampleLabel(num_vertex_labels, rng));
  }
  std::vector<uint32_t> degree(num_vertices, 0);
  auto edge_label = [&]() -> LabelId {
    return num_edge_labels <= 1
               ? 0
               : static_cast<LabelId>(rng->Uniform(num_edge_labels));
  };
  // Spanning tree: attach vertex v to a degree-biased earlier vertex.
  for (uint32_t v = 1; v < num_vertices; ++v) {
    std::vector<double> weights(v);
    for (uint32_t u = 0; u < v; ++u) weights[u] = degree[u] + 1.0;
    const uint32_t u = static_cast<uint32_t>(rng->Discrete(weights));
    auto r = builder.AddEdge(u, v, edge_label());
    (void)r;
    ++degree[u];
    ++degree[v];
  }
  // Extra edges, degree-biased endpoints, rejecting duplicates.
  uint32_t added = num_vertices - 1;
  uint32_t attempts = 0;
  const uint32_t max_attempts = target_edges * 20 + 100;
  while (added < target_edges && attempts++ < max_attempts) {
    std::vector<double> weights(num_vertices);
    for (uint32_t u = 0; u < num_vertices; ++u) weights[u] = degree[u] + 1.0;
    const uint32_t a = static_cast<uint32_t>(rng->Discrete(weights));
    const uint32_t b = static_cast<uint32_t>(rng->Discrete(weights));
    if (a == b) continue;
    auto r = builder.AddEdge(a, b, edge_label());
    if (r.ok()) {
      ++degree[a];
      ++degree[b];
      ++added;
    }
  }
  return builder.Build();
}

// Per-assignment weight under the Section 6 max rule.
std::vector<double> MaxRuleWeights(const std::vector<double>& edge_probs) {
  const uint32_t k = static_cast<uint32_t>(edge_probs.size());
  std::vector<double> weights(1ULL << k);
  for (uint32_t mask = 0; mask < weights.size(); ++mask) {
    double best = 0.0;
    for (uint32_t j = 0; j < k; ++j) {
      const double pr_xi =
          ((mask >> j) & 1U) ? edge_probs[j] : 1.0 - edge_probs[j];
      best = std::max(best, pr_xi);
    }
    weights[mask] = best;
  }
  return weights;
}

std::vector<double> ComonotoneWeights(const std::vector<double>& edge_probs,
                                      double lambda) {
  const uint32_t k = static_cast<uint32_t>(edge_probs.size());
  const double mean =
      std::accumulate(edge_probs.begin(), edge_probs.end(), 0.0) / k;
  std::vector<double> weights(1ULL << k, 0.0);
  for (uint32_t mask = 0; mask < weights.size(); ++mask) {
    double independent = 1.0;
    for (uint32_t j = 0; j < k; ++j) {
      independent *=
          ((mask >> j) & 1U) ? edge_probs[j] : 1.0 - edge_probs[j];
    }
    weights[mask] = (1.0 - lambda) * independent;
  }
  weights[(1U << k) - 1] += lambda * mean;        // all present
  weights[0] += lambda * (1.0 - mean);            // all absent
  return weights;
}

Result<JointProbTable> BuildJpt(const std::vector<double>& edge_probs,
                                const SyntheticOptions& options) {
  switch (options.jpt_rule) {
    case JptRule::kPaperMax:
      return JointProbTable::FromWeights(MaxRuleWeights(edge_probs));
    case JptRule::kIndependent:
      return JointProbTable::Independent(edge_probs);
    case JptRule::kComonotone:
      return JointProbTable::FromWeights(
          ComonotoneWeights(edge_probs, options.comonotone_lambda));
  }
  return Status::Internal("unknown JptRule");
}

}  // namespace

Result<ProbabilisticGraph> AttachProbabilities(const Graph& certain,
                                               const SyntheticOptions& options,
                                               Rng* rng) {
  const uint32_t m = certain.NumEdges();
  // Per-edge marginal-ish probabilities, Beta around the target mean.
  const double mean = std::clamp(options.mean_edge_prob, 0.01, 0.99);
  const double a = mean * options.beta_concentration;
  const double b = (1.0 - mean) * options.beta_concentration;
  std::vector<double> edge_prob(m);
  for (EdgeId e = 0; e < m; ++e) {
    edge_prob[e] = std::clamp(rng->Beta(a, b), 0.02, 0.98);
  }

  // Vertex-anchored partition into neighbor edge sets: visit vertices in
  // random order; group up to max_ne_size of the vertex's unassigned
  // incident edges (they share that vertex, hence are neighbor edges).
  std::vector<char> assigned(m, 0);
  std::vector<std::vector<EdgeId>> groups;
  std::vector<VertexId> vertex_order(certain.NumVertices());
  std::iota(vertex_order.begin(), vertex_order.end(), 0);
  rng->Shuffle(&vertex_order);
  if (options.group_hubs_first) {
    std::stable_sort(vertex_order.begin(), vertex_order.end(),
                     [&certain](VertexId a, VertexId b) {
                       return certain.Degree(a) > certain.Degree(b);
                     });
  }
  for (VertexId v : vertex_order) {
    std::vector<EdgeId> pool;
    for (const AdjEntry& adj : certain.Neighbors(v)) {
      if (!assigned[adj.edge]) pool.push_back(adj.edge);
    }
    rng->Shuffle(&pool);
    size_t i = 0;
    while (i < pool.size()) {
      const size_t take =
          std::min<size_t>(options.max_ne_size, pool.size() - i);
      std::vector<EdgeId> group(pool.begin() + i, pool.begin() + i + take);
      for (EdgeId e : group) assigned[e] = 1;
      groups.push_back(std::move(group));
      i += take;
    }
  }

  // Optional overlap (kTree model): extend a group by one edge of an
  // adjacent group, keeping the sharing structure a forest so the clique
  // tree's running-intersection property holds.
  if (options.overlap_fraction > 0.0 && groups.size() >= 2) {
    // Union-find over groups to keep overlaps acyclic.
    std::vector<uint32_t> parent(groups.size());
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](uint32_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    // Map: edge -> owning group.
    std::vector<uint32_t> owner(m, 0);
    for (uint32_t gi = 0; gi < groups.size(); ++gi) {
      for (EdgeId e : groups[gi]) owner[e] = gi;
    }
    for (uint32_t gi = 0; gi < groups.size(); ++gi) {
      if (!rng->Bernoulli(options.overlap_fraction)) continue;
      if (groups[gi].size() >= options.max_ne_size + 1) continue;
      // A candidate shared edge: incident (at a common vertex) to one of our
      // edges but owned by another group.
      for (EdgeId e : std::vector<EdgeId>(groups[gi])) {
        const Edge& edge = certain.GetEdge(e);
        bool extended = false;
        for (VertexId endpoint : {edge.u, edge.v}) {
          for (const AdjEntry& adj : certain.Neighbors(endpoint)) {
            const uint32_t other = owner[adj.edge];
            if (other == gi) continue;
            // All edges of the extended group must share `endpoint`; check.
            bool common = true;
            for (EdgeId mine : groups[gi]) {
              const Edge& me = certain.GetEdge(mine);
              if (me.u != endpoint && me.v != endpoint) {
                common = false;
                break;
              }
            }
            if (!common) continue;
            if (find(gi) == find(other)) continue;  // would close a cycle
            groups[gi].push_back(adj.edge);
            parent[find(gi)] = find(other);
            extended = true;
            break;
          }
          if (extended) break;
        }
        if (extended) break;
      }
    }
  }

  std::vector<NeighborEdgeSet> ne_sets;
  ne_sets.reserve(groups.size());
  for (const auto& group : groups) {
    std::vector<double> probs;
    probs.reserve(group.size());
    for (EdgeId e : group) probs.push_back(edge_prob[e]);
    NeighborEdgeSet ne;
    ne.edges = group;
    PGSIM_ASSIGN_OR_RETURN(ne.table, BuildJpt(probs, options));
    ne_sets.push_back(std::move(ne));
  }
  return ProbabilisticGraph::Create(certain, std::move(ne_sets));
}

Result<ProbabilisticGraph> GenerateGraph(const SyntheticOptions& options,
                                         Rng* rng) {
  // Vertex count jitters ±25% around the average.
  const uint32_t lo = std::max<uint32_t>(4, options.avg_vertices * 3 / 4);
  const uint32_t hi = std::max<uint32_t>(lo + 1, options.avg_vertices * 5 / 4);
  const uint32_t n = static_cast<uint32_t>(rng->UniformInt(lo, hi));
  const uint32_t target_edges = std::max<uint32_t>(
      n - 1, static_cast<uint32_t>(std::llround(n * options.edge_factor)));
  const Graph topology =
      GenerateTopology(n, target_edges, options.num_vertex_labels,
                       options.num_edge_labels, rng);
  return AttachProbabilities(topology, options, rng);
}

Result<std::vector<ProbabilisticGraph>> GenerateDatabase(
    const SyntheticOptions& options) {
  Rng rng(options.seed);
  std::vector<ProbabilisticGraph> db;
  db.reserve(options.num_graphs);
  for (size_t i = 0; i < options.num_graphs; ++i) {
    Rng graph_rng = rng.Fork();
    PGSIM_ASSIGN_OR_RETURN(ProbabilisticGraph g,
                           GenerateGraph(options, &graph_rng));
    db.push_back(std::move(g));
  }
  return db;
}

Result<FamilyDatabase> GenerateFamilyDatabase(const FamilyOptions& options) {
  Rng rng(options.base.seed);
  FamilyDatabase out;
  for (uint32_t family = 0; family < options.num_families; ++family) {
    Rng seed_rng = rng.Fork();
    const uint32_t lo = std::max<uint32_t>(4, options.base.avg_vertices * 3 / 4);
    const uint32_t hi = std::max<uint32_t>(lo + 1,
                                           options.base.avg_vertices * 5 / 4);
    const uint32_t n = static_cast<uint32_t>(seed_rng.UniformInt(lo, hi));
    const uint32_t target_edges = std::max<uint32_t>(
        n - 1,
        static_cast<uint32_t>(std::llround(n * options.base.edge_factor)));
    const Graph seed = GenerateTopology(n, target_edges,
                                        options.base.num_vertex_labels,
                                        options.base.num_edge_labels,
                                        &seed_rng);
    out.seeds.push_back(seed);

    for (size_t member = 0; member < options.graphs_per_family; ++member) {
      Rng member_rng = rng.Fork();
      // Noisy copy: relabel vertices, drop edges, add edges.
      GraphBuilder builder;
      for (VertexId v = 0; v < seed.NumVertices(); ++v) {
        LabelId label = seed.VertexLabel(v);
        if (member_rng.Bernoulli(options.vertex_relabel_prob)) {
          label = SampleLabel(options.base.num_vertex_labels, &member_rng);
        }
        builder.AddVertex(label);
      }
      for (const Edge& e : seed.Edges()) {
        if (member_rng.Bernoulli(options.edge_drop_prob)) continue;
        auto r = builder.AddEdge(e.u, e.v, e.label);
        (void)r;
      }
      const uint32_t extra = static_cast<uint32_t>(
          std::llround(seed.NumEdges() * options.edge_add_factor));
      for (uint32_t i = 0; i < extra; ++i) {
        const VertexId a =
            static_cast<VertexId>(member_rng.Uniform(seed.NumVertices()));
        const VertexId b =
            static_cast<VertexId>(member_rng.Uniform(seed.NumVertices()));
        if (a == b) continue;
        auto r = builder.AddEdge(a, b, 0);
        (void)r;  // duplicates silently skipped
      }
      const Graph certain = builder.Build();
      PGSIM_ASSIGN_OR_RETURN(
          ProbabilisticGraph g,
          AttachProbabilities(certain, options.base, &member_rng));
      out.graphs.push_back(std::move(g));
      out.family_of.push_back(family);
    }
  }
  return out;
}

Result<Graph> ExtractQuery(const Graph& source, uint32_t num_edges, Rng* rng) {
  if (source.NumEdges() < num_edges) {
    return Status::InvalidArgument(
        "ExtractQuery: source graph has too few edges");
  }
  // Random edge-BFS: start from a random edge, repeatedly add a random edge
  // adjacent to the collected subgraph.
  std::vector<EdgeId> chosen;
  EdgeBitset chosen_set(source.NumEdges());
  std::vector<char> vertex_in(source.NumVertices(), 0);
  const EdgeId first = static_cast<EdgeId>(rng->Uniform(source.NumEdges()));
  chosen.push_back(first);
  chosen_set.Set(first);
  vertex_in[source.GetEdge(first).u] = 1;
  vertex_in[source.GetEdge(first).v] = 1;
  while (chosen.size() < num_edges) {
    std::vector<EdgeId> frontier;
    for (VertexId v = 0; v < source.NumVertices(); ++v) {
      if (!vertex_in[v]) continue;
      for (const AdjEntry& adj : source.Neighbors(v)) {
        if (!chosen_set.Test(adj.edge)) frontier.push_back(adj.edge);
      }
    }
    if (frontier.empty()) {
      return Status::FailedPrecondition(
          "ExtractQuery: connected component exhausted before reaching the "
          "requested size");
    }
    const EdgeId pick = frontier[rng->Uniform(frontier.size())];
    chosen.push_back(pick);
    chosen_set.Set(pick);
    vertex_in[source.GetEdge(pick).u] = 1;
    vertex_in[source.GetEdge(pick).v] = 1;
  }
  return EdgeInducedSubgraph(source, chosen);
}

Result<Graph> ExtractStarQuery(const Graph& source, uint32_t num_edges,
                               Rng* rng) {
  std::vector<VertexId> centers;
  for (VertexId v = 0; v < source.NumVertices(); ++v) {
    if (source.Degree(v) >= num_edges) centers.push_back(v);
  }
  if (centers.empty()) {
    return Status::FailedPrecondition(
        "ExtractStarQuery: no vertex has the requested degree");
  }
  const VertexId center = centers[rng->Uniform(centers.size())];
  std::vector<EdgeId> incident;
  for (const AdjEntry& adj : source.Neighbors(center)) {
    incident.push_back(adj.edge);
  }
  rng->Shuffle(&incident);
  incident.resize(num_edges);
  return EdgeInducedSubgraph(source, incident);
}

Result<std::vector<Graph>> GenerateQueries(
    const std::vector<ProbabilisticGraph>& database, uint32_t num_edges,
    size_t count, uint64_t seed) {
  if (database.empty()) {
    return Status::InvalidArgument("GenerateQueries: empty database");
  }
  Rng rng(seed);
  std::vector<Graph> queries;
  queries.reserve(count);
  size_t attempts = 0;
  while (queries.size() < count && attempts++ < count * 50) {
    const size_t gi = rng.Uniform(database.size());
    auto q = ExtractQuery(database[gi].certain(), num_edges, &rng);
    if (q.ok()) queries.push_back(std::move(q).value());
  }
  if (queries.size() < count) {
    return Status::ResourceExhausted(
        "GenerateQueries: could not extract enough queries (graphs too "
        "small?)");
  }
  return queries;
}

}  // namespace pgsim
