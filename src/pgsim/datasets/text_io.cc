#include "pgsim/datasets/text_io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace pgsim {

namespace {

std::string LabelName(const LabelTable& labels, LabelId id) {
  // Unknown ids serialize as their number so round-tripping never fails.
  if (id < labels.size()) return labels.Name(id);
  return "label" + std::to_string(id);
}

Status WriteOneGraph(std::ostream& os, const ProbabilisticGraph& g,
                     const LabelTable& labels, size_t id) {
  os << "graph " << id << "\n";
  const Graph& gc = g.certain();
  for (VertexId v = 0; v < gc.NumVertices(); ++v) {
    os << "v " << LabelName(labels, gc.VertexLabel(v)) << "\n";
  }
  for (const Edge& e : gc.Edges()) {
    os << "e " << e.u << " " << e.v << " " << LabelName(labels, e.label)
       << "\n";
  }
  for (const NeighborEdgeSet& ne : g.ne_sets()) {
    os << "ne";
    for (EdgeId e : ne.edges) os << " " << e;
    os << "\nt";
    char buf[32];
    for (double p : ne.table.probs()) {
      std::snprintf(buf, sizeof(buf), " %.17g", p);
      os << buf;
    }
    os << "\n";
  }
  os << "end\n";
  return Status::OK();
}

// Tokenized line reader skipping comments/blanks.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  // Next non-empty, non-comment line split on whitespace; empty at EOF.
  std::vector<std::string> Next() {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_number_;
      const size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      std::istringstream ss(line);
      std::vector<std::string> tokens;
      std::string token;
      while (ss >> token) tokens.push_back(token);
      if (!tokens.empty()) return tokens;
    }
    return {};
  }

  size_t line_number() const { return line_number_; }

 private:
  std::istream& is_;
  size_t line_number_ = 0;
};

Status ParseError(const LineReader& reader, const std::string& what) {
  return Status::InvalidArgument("text_io: line " +
                                 std::to_string(reader.line_number()) + ": " +
                                 what);
}

// Strict non-negative integer parse. std::stoul would throw on garbage and
// silently wrap negatives ("-1" becomes 4294967295), so every digit is
// checked before conversion.
Result<uint32_t> ParseU32Token(const std::string& tok,
                               const std::string& what) {
  if (tok.empty() || tok.size() > 10) {
    return Status::InvalidArgument(what + " '" + tok +
                                   "' is not a non-negative integer");
  }
  uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(what + " '" + tok +
                                     "' is not a non-negative integer");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  if (v > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(what + " '" + tok + "' is out of range");
  }
  return static_cast<uint32_t>(v);
}

// Strict finite non-negative double parse (a probability weight). std::stod
// throws on garbage and accepts trailing junk / "nan" / "-0.5"; none of
// those may reach the JPT.
Result<double> ParseWeightToken(const std::string& tok) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("probability '" + tok +
                                   "' is not a number");
  }
  if (!std::isfinite(v) || v < 0.0) {
    return Status::InvalidArgument("probability '" + tok +
                                   "' must be finite and non-negative");
  }
  return v;
}

}  // namespace

Status SaveDatabaseText(const std::string& path,
                        const std::vector<ProbabilisticGraph>& db,
                        const LabelTable& labels) {
  std::ofstream os(path);
  if (!os) return Status::NotFound("SaveDatabaseText: cannot open " + path);
  os << "pgsimdb 1\n";
  os << "# " << db.size() << " probabilistic graphs\n";
  for (size_t i = 0; i < db.size(); ++i) {
    PGSIM_RETURN_NOT_OK(WriteOneGraph(os, db[i], labels, i));
  }
  if (!os.good()) return Status::Internal("SaveDatabaseText: write failure");
  return Status::OK();
}

Result<TextDatabase> LoadDatabaseText(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("LoadDatabaseText: cannot open " + path);
  LineReader reader(is);

  auto header = reader.Next();
  if (header.size() != 2 || header[0] != "pgsimdb" || header[1] != "1") {
    return ParseError(reader, "expected header 'pgsimdb 1'");
  }

  TextDatabase out;
  std::vector<std::string> tokens = reader.Next();
  while (!tokens.empty()) {
    if (tokens[0] != "graph") {
      return ParseError(reader, "expected 'graph <id>', got '" + tokens[0] +
                                    "'");
    }
    GraphBuilder builder;
    std::vector<NeighborEdgeSet> ne_sets;
    std::vector<EdgeId> pending_ne;  // awaiting its table line
    for (tokens = reader.Next(); !tokens.empty() && tokens[0] != "end";
         tokens = reader.Next()) {
      const std::string& kind = tokens[0];
      if (kind == "v") {
        if (tokens.size() != 2) return ParseError(reader, "v <label>");
        builder.AddVertex(out.labels.Intern(tokens[1]));
      } else if (kind == "e") {
        if (tokens.size() != 4) {
          return ParseError(reader, "e <u> <v> <label>");
        }
        auto u = ParseU32Token(tokens[1], "vertex id");
        if (!u.ok()) return ParseError(reader, u.status().message());
        auto v = ParseU32Token(tokens[2], "vertex id");
        if (!v.ok()) return ParseError(reader, v.status().message());
        auto e = builder.AddEdge(static_cast<VertexId>(*u),
                                 static_cast<VertexId>(*v),
                                 out.labels.Intern(tokens[3]));
        if (!e.ok()) return ParseError(reader, e.status().message());
      } else if (kind == "ne") {
        if (!pending_ne.empty()) {
          return ParseError(reader, "ne without a following table line");
        }
        if (tokens.size() < 2) return ParseError(reader, "ne <edge-id>...");
        for (size_t i = 1; i < tokens.size(); ++i) {
          auto id = ParseU32Token(tokens[i], "edge id");
          if (!id.ok()) return ParseError(reader, id.status().message());
          pending_ne.push_back(static_cast<EdgeId>(*id));
        }
      } else if (kind == "t") {
        if (pending_ne.empty()) {
          return ParseError(reader, "table line without a preceding ne");
        }
        std::vector<double> weights;
        for (size_t i = 1; i < tokens.size(); ++i) {
          auto w = ParseWeightToken(tokens[i]);
          if (!w.ok()) return ParseError(reader, w.status().message());
          weights.push_back(*w);
        }
        auto table = JointProbTable::FromWeights(std::move(weights));
        if (!table.ok()) return ParseError(reader, table.status().message());
        if (table->arity() != pending_ne.size()) {
          return ParseError(reader, "table arity does not match ne size");
        }
        NeighborEdgeSet ne;
        ne.edges = std::move(pending_ne);
        pending_ne.clear();
        ne.table = std::move(table).value();
        ne_sets.push_back(std::move(ne));
      } else {
        return ParseError(reader, "unknown record '" + kind + "'");
      }
    }
    if (tokens.empty()) {
      return ParseError(reader, "unexpected EOF, missing 'end'");
    }
    if (!pending_ne.empty()) {
      return ParseError(reader, "ne without a table at graph end");
    }
    auto graph = ProbabilisticGraph::Create(builder.Build(),
                                            std::move(ne_sets));
    if (!graph.ok()) return ParseError(reader, graph.status().message());
    out.graphs.push_back(std::move(graph).value());
    tokens = reader.Next();
  }
  return out;
}

Status SaveQueriesText(const std::string& path,
                       const std::vector<Graph>& queries,
                       const LabelTable& labels) {
  std::ofstream os(path);
  if (!os) return Status::NotFound("SaveQueriesText: cannot open " + path);
  os << "pgsimq 1\n";
  for (size_t i = 0; i < queries.size(); ++i) {
    os << "query " << i << "\n";
    for (VertexId v = 0; v < queries[i].NumVertices(); ++v) {
      os << "v " << LabelName(labels, queries[i].VertexLabel(v)) << "\n";
    }
    for (const Edge& e : queries[i].Edges()) {
      os << "e " << e.u << " " << e.v << " " << LabelName(labels, e.label)
         << "\n";
    }
    os << "end\n";
  }
  if (!os.good()) return Status::Internal("SaveQueriesText: write failure");
  return Status::OK();
}

Result<std::vector<Graph>> LoadQueriesText(const std::string& path,
                                           LabelTable* labels) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("LoadQueriesText: cannot open " + path);
  LineReader reader(is);
  auto header = reader.Next();
  if (header.size() != 2 || header[0] != "pgsimq" || header[1] != "1") {
    return ParseError(reader, "expected header 'pgsimq 1'");
  }
  std::vector<Graph> out;
  std::vector<std::string> tokens = reader.Next();
  while (!tokens.empty()) {
    if (tokens[0] != "query") {
      return ParseError(reader, "expected 'query <id>'");
    }
    GraphBuilder builder;
    for (tokens = reader.Next(); !tokens.empty() && tokens[0] != "end";
         tokens = reader.Next()) {
      if (tokens[0] == "v" && tokens.size() == 2) {
        builder.AddVertex(labels->Intern(tokens[1]));
      } else if (tokens[0] == "e" && tokens.size() == 4) {
        auto u = ParseU32Token(tokens[1], "vertex id");
        if (!u.ok()) return ParseError(reader, u.status().message());
        auto v = ParseU32Token(tokens[2], "vertex id");
        if (!v.ok()) return ParseError(reader, v.status().message());
        auto e = builder.AddEdge(static_cast<VertexId>(*u),
                                 static_cast<VertexId>(*v),
                                 labels->Intern(tokens[3]));
        if (!e.ok()) return ParseError(reader, e.status().message());
      } else {
        return ParseError(reader, "unknown record in query");
      }
    }
    if (tokens.empty()) {
      return ParseError(reader, "unexpected EOF, missing 'end'");
    }
    out.push_back(builder.Build());
    tokens = reader.Next();
  }
  return out;
}

}  // namespace pgsim
