// Database statistics: the quantities the paper reports about its dataset
// (graph sizes, mean edge existence probability, label distribution,
// neighbor-edge-set structure) computed for any probabilistic graph
// database. Used by the CLI's `stats` command, by tests validating the
// synthetic generator against the paper's numbers, and handy when importing
// external data.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// Aggregate statistics of one database.
struct DatabaseStats {
  size_t num_graphs = 0;
  double avg_vertices = 0.0;
  double avg_edges = 0.0;
  uint32_t max_vertices = 0;
  uint32_t max_edges = 0;
  double mean_edge_probability = 0.0;  ///< average exact edge marginal
  double avg_ne_set_size = 0.0;        ///< mean neighbor-edge-set arity
  uint32_t max_ne_set_size = 0;
  size_t tree_model_graphs = 0;        ///< graphs with overlapping ne sets
  size_t connected_graphs = 0;
  /// Vertex-label histogram (index = label id), database-wide.
  std::vector<size_t> vertex_label_counts;
  /// Degree histogram (index = degree, truncated at 32).
  std::vector<size_t> degree_histogram;
};

/// Computes statistics over `db` (single pass; exact marginals per edge).
DatabaseStats ComputeDatabaseStats(const std::vector<ProbabilisticGraph>& db);

/// Multi-line human-readable rendering.
std::string FormatDatabaseStats(const DatabaseStats& stats);

}  // namespace pgsim
