// Human-readable text format for probabilistic graph databases and query
// workloads, so downstream users can feed their own data (e.g. STRING
// exports) into pgsim without touching C++.
//
// Database format (# starts a comment line, blank lines ignored):
//
//   pgsimdb 1
//   graph <id>
//   v <vertex-label>                      # one per vertex, ids are 0-based
//   e <u> <v> <edge-label>                # one per edge, ids are 0-based
//   ne <edge-id>...                       # one neighbor edge set
//   t <p0> <p1> ... <p_{2^k - 1}>         # its JPT, row for each assignment
//                                         #   bit j of the row index = ne's
//                                         #   j-th edge present
//   end
//   graph <id> ...
//
// Query workload format:
//
//   pgsimq 1
//   query <id>
//   v <vertex-label>
//   e <u> <v> <edge-label>
//   end
//
// Labels are arbitrary whitespace-free strings interned into a LabelTable
// shared by the whole file.

#pragma once

#include <string>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/graph/label_table.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// A database parsed from text: graphs plus the shared label table.
struct TextDatabase {
  std::vector<ProbabilisticGraph> graphs;
  LabelTable labels;
};

/// Writes `db` in the text format. `labels` must cover every label id used.
Status SaveDatabaseText(const std::string& path,
                        const std::vector<ProbabilisticGraph>& db,
                        const LabelTable& labels);

/// Parses a database file written by SaveDatabaseText (or by hand).
Result<TextDatabase> LoadDatabaseText(const std::string& path);

/// Writes a query workload (deterministic graphs).
Status SaveQueriesText(const std::string& path,
                       const std::vector<Graph>& queries,
                       const LabelTable& labels);

/// Parses a query workload; labels are interned into `labels` (must be the
/// database's table so ids line up).
Result<std::vector<Graph>> LoadQueriesText(const std::string& path,
                                           LabelTable* labels);

}  // namespace pgsim
