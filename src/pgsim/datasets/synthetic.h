// Synthetic probabilistic graph datasets (paper Section 6 substitute).
//
// The paper evaluates on 5K PPI networks from STRING/BioGRID (avg 385
// vertices / 612 edges, mean edge probability 0.383, COG vertex labels) and
// builds each neighbor-edge-set JPT with the rule
//     Pr(x_ne) = max_{1<=i<=|ne|} Pr(x_i),   then normalized,
// where Pr(x_i) = p_i if x_i = 1 else 1 - p_i ("neighbor PPIs are dominated
// by the strongest interaction").
//
// This module generates databases with the same shape at configurable scale:
// connected power-law-ish labeled graphs, Beta-distributed edge
// probabilities with mean 0.383, vertex-anchored neighbor-edge partitions,
// and exactly that max-rule JPT (plus alternatives: independent tables and a
// comonotone mixture with tunable correlation strength). Organism families
// (a seed graph per family, perturbed copies as members) stand in for the
// STRING organism ground truth used by Figure 14.

#pragma once

#include <cstdint>
#include <vector>

#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// How each neighbor-edge-set JPT is constructed from per-edge marginals.
enum class JptRule {
  kPaperMax,    ///< the Section 6 rule: weight = max_i Pr(x_i), normalized
  kIndependent, ///< product of marginals (no correlation)
  kComonotone,  ///< lambda * (all-present/all-absent) + (1-lambda) * product
};

/// Generator parameters (defaults are laptop-scale; the paper-scale values
/// are in comments).
struct SyntheticOptions {
  size_t num_graphs = 100;        ///< paper: 5000
  uint32_t avg_vertices = 28;     ///< paper: 385
  double edge_factor = 1.55;      ///< |E| ~ factor * |V|; paper: 612/385
  uint32_t num_vertex_labels = 20;///< COG-ish label alphabet
  uint32_t num_edge_labels = 1;   ///< PPI edges are unlabeled
  double mean_edge_prob = 0.383;  ///< paper's reported average
  double beta_concentration = 6.0;///< Beta(a,b) sharpness around the mean
  uint32_t max_ne_size = 3;       ///< neighbor-edge-set arity cap
  JptRule jpt_rule = JptRule::kPaperMax;
  double comonotone_lambda = 0.6; ///< used by kComonotone
  /// Fraction of adjacent ne-set pairs extended to overlap by one shared
  /// edge (> 0 exercises the kTree clique-tree model).
  double overlap_fraction = 0.0;
  /// Group edges at high-degree vertices first (instead of random vertex
  /// order): hub interactions share one correlated ne set, the "neighbor
  /// PPIs dominated by the strongest interaction" structure of Section 6.
  bool group_hubs_first = false;
  uint64_t seed = 1;
};

/// Generates `options.num_graphs` independent probabilistic graphs.
Result<std::vector<ProbabilisticGraph>> GenerateDatabase(
    const SyntheticOptions& options);

/// Generates one probabilistic graph (the building block of the above).
Result<ProbabilisticGraph> GenerateGraph(const SyntheticOptions& options,
                                         Rng* rng);

/// Builds the neighbor-edge partition and JPTs for an existing certain graph
/// with freshly drawn edge probabilities.
Result<ProbabilisticGraph> AttachProbabilities(const Graph& certain,
                                               const SyntheticOptions& options,
                                               Rng* rng);

/// Organism-family database for the Figure 14 quality experiment.
struct FamilyOptions {
  uint32_t num_families = 8;
  size_t graphs_per_family = 12;
  double vertex_relabel_prob = 0.08;  ///< per-vertex label noise in a copy
  double edge_drop_prob = 0.08;       ///< per-edge removal noise
  double edge_add_factor = 0.05;      ///< added noise edges ~ factor * |E|
  SyntheticOptions base;              ///< topology/probability parameters
};

/// A database with family ground truth.
struct FamilyDatabase {
  std::vector<ProbabilisticGraph> graphs;
  std::vector<uint32_t> family_of;  ///< family id per graph
  std::vector<Graph> seeds;         ///< one seed certain graph per family
};

/// Generates families: one random seed graph each, members are noisy copies.
Result<FamilyDatabase> GenerateFamilyDatabase(const FamilyOptions& options);

/// Extracts a connected `num_edges`-edge query subgraph from `source` by a
/// random edge-BFS (the paper's "extracted from corresponding deterministic
/// graphs randomly"). Fails if the source has fewer edges.
Result<Graph> ExtractQuery(const Graph& source, uint32_t num_edges, Rng* rng);

/// Extracts a star query: `num_edges` edges incident to one (randomly
/// chosen, sufficiently high-degree) center vertex. Hub motifs are the
/// paper's correlated-neighborhood scenario — all query edges typically fall
/// into one neighbor-edge set, where the COR/IND gap is maximal.
Result<Graph> ExtractStarQuery(const Graph& source, uint32_t num_edges,
                               Rng* rng);

/// Convenience: `count` queries of `num_edges` edges drawn from random
/// database graphs.
Result<std::vector<Graph>> GenerateQueries(
    const std::vector<ProbabilisticGraph>& database, uint32_t num_edges,
    size_t count, uint64_t seed);

}  // namespace pgsim
