#include "pgsim/datasets/stats.h"

#include <algorithm>
#include <sstream>

namespace pgsim {

DatabaseStats ComputeDatabaseStats(const std::vector<ProbabilisticGraph>& db) {
  DatabaseStats stats;
  stats.num_graphs = db.size();
  if (db.empty()) return stats;

  size_t total_vertices = 0, total_edges = 0, total_ne = 0, total_ne_size = 0;
  double prob_sum = 0.0;
  size_t prob_count = 0;
  stats.degree_histogram.assign(33, 0);
  for (const ProbabilisticGraph& g : db) {
    const Graph& gc = g.certain();
    total_vertices += gc.NumVertices();
    total_edges += gc.NumEdges();
    stats.max_vertices = std::max(stats.max_vertices, gc.NumVertices());
    stats.max_edges = std::max(stats.max_edges, gc.NumEdges());
    if (gc.IsConnected()) ++stats.connected_graphs;
    if (g.kind() == JointModelKind::kTree) ++stats.tree_model_graphs;
    for (VertexId v = 0; v < gc.NumVertices(); ++v) {
      const LabelId label = gc.VertexLabel(v);
      if (label >= stats.vertex_label_counts.size()) {
        stats.vertex_label_counts.resize(label + 1, 0);
      }
      ++stats.vertex_label_counts[label];
      ++stats.degree_histogram[std::min<uint32_t>(gc.Degree(v), 32)];
    }
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      prob_sum += g.EdgeMarginal(e);
      ++prob_count;
    }
    for (const NeighborEdgeSet& ne : g.ne_sets()) {
      ++total_ne;
      total_ne_size += ne.edges.size();
      stats.max_ne_set_size = std::max<uint32_t>(
          stats.max_ne_set_size, static_cast<uint32_t>(ne.edges.size()));
    }
  }
  stats.avg_vertices = static_cast<double>(total_vertices) / db.size();
  stats.avg_edges = static_cast<double>(total_edges) / db.size();
  stats.mean_edge_probability =
      prob_count == 0 ? 0.0 : prob_sum / static_cast<double>(prob_count);
  stats.avg_ne_set_size =
      total_ne == 0 ? 0.0
                    : static_cast<double>(total_ne_size) /
                          static_cast<double>(total_ne);
  return stats;
}

std::string FormatDatabaseStats(const DatabaseStats& stats) {
  std::ostringstream os;
  os << "graphs                : " << stats.num_graphs << "\n";
  os << "avg |V| / |E|         : " << stats.avg_vertices << " / "
     << stats.avg_edges << "\n";
  os << "max |V| / |E|         : " << stats.max_vertices << " / "
     << stats.max_edges << "\n";
  os << "mean edge probability : " << stats.mean_edge_probability << "\n";
  os << "avg / max ne-set size : " << stats.avg_ne_set_size << " / "
     << stats.max_ne_set_size << "\n";
  os << "connected graphs      : " << stats.connected_graphs << "\n";
  os << "tree-model graphs     : " << stats.tree_model_graphs << "\n";
  os << "distinct vertex labels: " << stats.vertex_label_counts.size()
     << "\n";
  return os.str();
}

}  // namespace pgsim
