#include "pgsim/index/domain_index.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "pgsim/common/thread_pool.h"
#include "pgsim/graph/io.h"
#include "pgsim/storage/io_util.h"

namespace pgsim {

namespace {

constexpr uint32_t kSigMagic = 0x50475347u;  // "PGSG"
constexpr uint32_t kSigVersion = 1;

// Raw little-endian column packing, matching the filter's cell encoding.
void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t ParseU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t ParseU64(const char* p) {
  return uint64_t{ParseU32(p)} | uint64_t{ParseU32(p + 4)} << 32;
}

}  // namespace

SignatureIndex SignatureIndex::Build(
    const std::vector<ProbabilisticGraph>& database) {
  return Build(database, BuildOptions());
}

SignatureIndex SignatureIndex::Build(
    const std::vector<ProbabilisticGraph>& database,
    const BuildOptions& options) {
  SignatureIndex idx;
  const size_t n = database.size();
  idx.offsets_.resize(n + 1);
  idx.offsets_[0] = 0;
  for (size_t gi = 0; gi < n; ++gi) {
    idx.offsets_[gi + 1] =
        idx.offsets_[gi] + database[gi].certain().NumVertices();
  }
  const uint32_t total = idx.offsets_[n];
  idx.nbr_bits_.resize(total);
  idx.hop2_bits_.resize(total);
  idx.degree_.resize(total);
  idx.label_counts_.resize(size_t{total} * kSignatureLabelSlots);
  idx.alive_.assign(n, 1);
  idx.num_alive_ = n;

  // Workers own disjoint pre-sized slices: byte-identical at any width.
  const ScopedPool pool(options.num_threads, options.pool);
  ForEachIndex(pool.get(), n, 4, [&](size_t gi) {
    const uint32_t begin = idx.offsets_[gi];
    BuildVertexSignatures(
        database[gi].certain(), idx.nbr_bits_.data() + begin,
        idx.hop2_bits_.data() + begin, idx.degree_.data() + begin,
        idx.label_counts_.data() + size_t{begin} * kSignatureLabelSlots);
  });
  return idx;
}

uint32_t SignatureIndex::AddGraph(const Graph& certain) {
  const uint32_t id = static_cast<uint32_t>(num_graphs());
  const uint32_t begin = offsets_.back();
  const uint32_t nv = certain.NumVertices();
  nbr_bits_.resize(begin + nv);
  hop2_bits_.resize(begin + nv);
  degree_.resize(begin + nv);
  label_counts_.resize(size_t{begin + nv} * kSignatureLabelSlots);
  BuildVertexSignatures(certain, nbr_bits_.data() + begin,
                        hop2_bits_.data() + begin, degree_.data() + begin,
                        label_counts_.data() +
                            size_t{begin} * kSignatureLabelSlots);
  offsets_.push_back(begin + nv);
  alive_.push_back(1);
  ++num_alive_;
  return id;
}

Status SignatureIndex::RemoveGraph(uint32_t graph_id) {
  if (graph_id >= num_graphs()) {
    return Status::InvalidArgument(
        "SignatureIndex::RemoveGraph: graph id out of range");
  }
  if (alive_[graph_id] == 0) {
    return Status::InvalidArgument(
        "SignatureIndex::RemoveGraph: graph already removed");
  }
  // Tombstone only: the slice stays readable until Compact so ForGraph on a
  // dead id (e.g. a racing stats reader) is still well-formed.
  alive_[graph_id] = 0;
  --num_alive_;
  return Status::OK();
}

void SignatureIndex::Compact() {
  const size_t n = num_graphs();
  std::vector<uint32_t> offsets = {0};
  offsets.reserve(num_alive_ + 1);
  std::vector<uint64_t> nbr, hop2;
  std::vector<uint32_t> deg;
  std::vector<uint8_t> counts;
  for (uint32_t gi = 0; gi < n; ++gi) {
    if (alive_[gi] == 0) continue;
    const uint32_t begin = offsets_[gi];
    const uint32_t end = offsets_[gi + 1];
    nbr.insert(nbr.end(), nbr_bits_.begin() + begin, nbr_bits_.begin() + end);
    hop2.insert(hop2.end(), hop2_bits_.begin() + begin,
                hop2_bits_.begin() + end);
    deg.insert(deg.end(), degree_.begin() + begin, degree_.begin() + end);
    counts.insert(counts.end(),
                  label_counts_.begin() + size_t{begin} * kSignatureLabelSlots,
                  label_counts_.begin() + size_t{end} * kSignatureLabelSlots);
    offsets.push_back(static_cast<uint32_t>(nbr.size()));
  }
  offsets_ = std::move(offsets);
  nbr_bits_ = std::move(nbr);
  hop2_bits_ = std::move(hop2);
  degree_ = std::move(deg);
  label_counts_ = std::move(counts);
  alive_.assign(num_alive_, 1);
}

Status SignatureIndex::Save(const std::string& path, uint64_t epoch) const {
  SnapshotWriter writer(kSigMagic, kSigVersion);
  const uint32_t n = static_cast<uint32_t>(num_graphs());
  const uint32_t total = offsets_.back();

  std::ostringstream header;
  WriteU32(header, n);
  WriteU32(header, static_cast<uint32_t>(num_alive_));
  WriteU32(header, total);
  WriteU64(header, epoch);
  writer.AddSection(header.str());

  std::string offsets;
  offsets.reserve(4 * (size_t{n} + 1));
  for (uint32_t o : offsets_) AppendU32(&offsets, o);
  writer.AddSection(offsets);

  std::string alive(n, '\0');
  for (uint32_t gi = 0; gi < n; ++gi) {
    if (alive_[gi] != 0) alive[gi] = '\1';
  }
  writer.AddSection(alive);

  std::string nbr;
  nbr.reserve(8 * size_t{total});
  for (uint64_t b : nbr_bits_) AppendU64(&nbr, b);
  writer.AddSection(nbr);

  std::string hop2;
  hop2.reserve(8 * size_t{total});
  for (uint64_t b : hop2_bits_) AppendU64(&hop2, b);
  writer.AddSection(hop2);

  std::string deg;
  deg.reserve(4 * size_t{total});
  for (uint32_t d : degree_) AppendU32(&deg, d);
  writer.AddSection(deg);

  writer.AddSection(std::string(
      reinterpret_cast<const char*>(label_counts_.data()),
      label_counts_.size()));

  return writer.Commit(path, "snapshot.sig");
}

Result<SignatureIndex> SignatureIndex::Load(const std::string& path) {
  PGSIM_ASSIGN_OR_RETURN(SnapshotReader snap,
                         SnapshotReader::Open(path, kSigMagic));
  if (snap.version() != kSigVersion) {
    return Status::InvalidArgument(
        "SignatureIndex::Load: unsupported version " +
        std::to_string(snap.version()));
  }
  if (snap.num_sections() != 7) {
    return Status::DataLoss("SignatureIndex::Load: expected 7 sections in " +
                            path);
  }

  std::istringstream hs(snap.section(0));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t n, ReadU32(hs));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t num_alive, ReadU32(hs));
  PGSIM_ASSIGN_OR_RETURN(const uint32_t total, ReadU32(hs));
  SignatureIndex idx;
  PGSIM_ASSIGN_OR_RETURN(idx.saved_epoch_, ReadU64(hs));

  const std::string& offsets = snap.section(1);
  if (offsets.size() != 4 * (size_t{n} + 1)) {
    return Status::DataLoss(
        "SignatureIndex::Load: offsets section has wrong size in " + path);
  }
  idx.offsets_.resize(size_t{n} + 1);
  for (size_t i = 0; i <= n; ++i) {
    idx.offsets_[i] = ParseU32(offsets.data() + 4 * i);
  }
  if (idx.offsets_[0] != 0 || idx.offsets_[n] != total ||
      !std::is_sorted(idx.offsets_.begin(), idx.offsets_.end())) {
    return Status::DataLoss(
        "SignatureIndex::Load: inconsistent offsets in " + path);
  }

  const std::string& alive = snap.section(2);
  if (alive.size() != n) {
    return Status::DataLoss(
        "SignatureIndex::Load: alive mask has wrong size in " + path);
  }
  idx.alive_.assign(n, 0);
  idx.num_alive_ = 0;
  for (uint32_t gi = 0; gi < n; ++gi) {
    if (alive[gi] != '\0') {
      idx.alive_[gi] = 1;
      ++idx.num_alive_;
    }
  }
  if (idx.num_alive_ != num_alive) {
    return Status::DataLoss(
        "SignatureIndex::Load: alive mask disagrees with header in " + path);
  }

  const std::string& nbr = snap.section(3);
  const std::string& hop2 = snap.section(4);
  const std::string& deg = snap.section(5);
  const std::string& counts = snap.section(6);
  if (nbr.size() != 8 * size_t{total} || hop2.size() != 8 * size_t{total} ||
      deg.size() != 4 * size_t{total} ||
      counts.size() != size_t{total} * kSignatureLabelSlots) {
    return Status::DataLoss(
        "SignatureIndex::Load: column section has wrong size in " + path);
  }
  idx.nbr_bits_.resize(total);
  idx.hop2_bits_.resize(total);
  idx.degree_.resize(total);
  for (size_t i = 0; i < total; ++i) {
    idx.nbr_bits_[i] = ParseU64(nbr.data() + 8 * i);
    idx.hop2_bits_[i] = ParseU64(hop2.data() + 8 * i);
    idx.degree_[i] = ParseU32(deg.data() + 4 * i);
  }
  idx.label_counts_.assign(counts.begin(), counts.end());
  return idx;
}

}  // namespace pgsim
