#include "pgsim/index/pmi.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>

#include "pgsim/common/thread_pool.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/io.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/storage/io_util.h"

namespace pgsim {

namespace {
constexpr uint32_t kPmiMagic1 = 0x504d4931;  // "PMI1": pre-epoch format
constexpr uint32_t kPmiMagic2 = 0x504d4932;  // "PMI2": + epoch/tombstones
// "PMI3": checksummed sections, atomic install, sip options persisted.
constexpr uint32_t kPmiMagic3 = 0x504d4933;
constexpr uint32_t kPmi3Version = 1;
}  // namespace

void ProbabilisticMatrixIndex::RebuildFeaturePlans() {
  feature_plans_.clear();
  feature_plans_.reserve(features_.size());
  for (const Feature& f : features_) {
    feature_plans_.push_back(CompileMatchPlan(f.graph));
  }
}

void ProbabilisticMatrixIndex::SetColumns(
    std::vector<std::vector<PmiEntry>>&& columns) {
  num_graphs_ = static_cast<uint32_t>(columns.size());
  num_alive_ = num_graphs_;
  alive_.assign(num_graphs_, 1);
  const size_t cells = features_.size() * static_cast<size_t>(num_graphs_);
  col_offsets_.assign(1, 0);
  col_offsets_.reserve(columns.size() + 1);
  col_features_.clear();
  lower_opt_.assign(cells, 0.0f);
  upper_opt_.assign(cells, 0.0f);
  lower_simple_.assign(cells, 0.0f);
  upper_simple_.assign(cells, 0.0f);
  present_.assign(cells, 0);
  stats_.num_entries = 0;
  for (uint32_t gi = 0; gi < columns.size(); ++gi) {
    for (const PmiEntry& e : columns[gi]) {
      const size_t idx = Flat(e.feature_id, gi);
      lower_opt_[idx] = e.lower_opt;
      upper_opt_[idx] = e.upper_opt;
      lower_simple_[idx] = e.lower_simple;
      upper_simple_[idx] = e.upper_simple;
      present_[idx] = 1;
      col_features_.push_back(e.feature_id);
    }
    col_offsets_.push_back(static_cast<uint32_t>(col_features_.size()));
    stats_.num_entries += columns[gi].size();
  }
}

void ProbabilisticMatrixIndex::RecomputeFrequencies() {
  const double denom = num_alive_ > 0 ? static_cast<double>(num_alive_) : 1.0;
  for (Feature& f : features_) {
    f.frequency = static_cast<double>(f.support.size()) / denom;
  }
}

PmiMaintenance ProbabilisticMatrixIndex::maintenance() const {
  PmiMaintenance m;
  m.epoch = epoch_;
  m.num_alive = num_alive_;
  m.num_tombstones = num_graphs_ - num_alive_;
  m.adds_since_build = adds_since_build_;
  m.removes_since_build = removes_since_build_;
  double min_freq = features_.empty() ? 0.0 : 1.0;
  for (const Feature& f : features_) min_freq = std::min(min_freq, f.frequency);
  m.min_feature_frequency = min_freq;
  m.remine_advised = !features_.empty() &&
                     (adds_since_build_ + removes_since_build_) > 0 &&
                     min_freq < beta_watermark_;
  return m;
}

std::vector<PmiEntry> ProbabilisticMatrixIndex::EntriesFor(
    uint32_t graph_id) const {
  std::vector<PmiEntry> entries;
  if (!IsAlive(graph_id)) return entries;  // tombstoned: no entries
  entries.reserve(col_offsets_[graph_id + 1] - col_offsets_[graph_id]);
  for (uint32_t k = col_offsets_[graph_id]; k < col_offsets_[graph_id + 1];
       ++k) {
    const uint32_t fi = col_features_[k];
    const size_t idx = Flat(fi, graph_id);
    PmiEntry e;
    e.feature_id = fi;
    e.lower_opt = lower_opt_[idx];
    e.upper_opt = upper_opt_[idx];
    e.lower_simple = lower_simple_[idx];
    e.upper_simple = upper_simple_[idx];
    entries.push_back(e);
  }
  return entries;
}

bool ProbabilisticMatrixIndex::Lookup(uint32_t graph_id, uint32_t feature_id,
                                      PmiEntry* out) const {
  if (graph_id >= num_graphs_ || feature_id >= features_.size()) return false;
  const size_t idx = Flat(feature_id, graph_id);
  if (present_[idx] == 0) return false;
  out->feature_id = feature_id;
  out->lower_opt = lower_opt_[idx];
  out->upper_opt = upper_opt_[idx];
  out->lower_simple = lower_simple_[idx];
  out->upper_simple = upper_simple_[idx];
  return true;
}

Result<ProbabilisticMatrixIndex> ProbabilisticMatrixIndex::Build(
    const std::vector<ProbabilisticGraph>& database,
    const PmiBuildOptions& options) {
  WallTimer total_timer;
  ProbabilisticMatrixIndex index;
  index.sip_options_ = options.sip;
  index.beta_watermark_ = options.miner.beta;

  // One pool serves the whole offline pipeline: candidate mining fan-out,
  // then the per-graph bound columns. 1 thread builds fully inline; the
  // index is bit-identical at every thread count (see parallel_build_test).
  const ScopedPool scoped_pool(options.num_threads, options.pool);
  ThreadPool* pool = scoped_pool.get();
  index.stats_.build_threads = scoped_pool.threads();

  std::vector<Graph> certain;
  certain.reserve(database.size());
  for (const ProbabilisticGraph& g : database) certain.push_back(g.certain());

  WallTimer mining_timer;
  FeatureMinerOptions miner_options = options.miner;
  if (miner_options.pool == nullptr && miner_options.num_threads == 0) {
    // Inherit the build pool only when the miner's own threading was left
    // at the default; an explicit miner.num_threads wins.
    miner_options.pool = pool;
    miner_options.num_threads = scoped_pool.threads();
  }
  PGSIM_ASSIGN_OR_RETURN(FeatureSet mined,
                         MineFeatures(certain, miner_options));
  index.stats_.mining_seconds = mining_timer.Seconds();
  index.features_ = std::move(mined.features);
  index.RebuildFeaturePlans();

  // Invert support lists: features present per graph.
  std::vector<std::vector<uint32_t>> features_of_graph(database.size());
  for (uint32_t fi = 0; fi < index.features_.size(); ++fi) {
    for (uint32_t gi : index.features_[fi].support) {
      features_of_graph[gi].push_back(fi);
    }
  }

  WallTimer bounds_timer;
  // Fork one RNG per non-empty column sequentially, in graph order — the
  // exact fork sequence of a sequential build — then fill columns in
  // parallel. Each task touches only its own column/RNG slot.
  Rng rng(options.seed);
  std::vector<std::vector<PmiEntry>> columns(database.size());
  std::vector<Rng> column_rngs(database.size(), Rng(0));
  for (uint32_t gi = 0; gi < database.size(); ++gi) {
    if (!features_of_graph[gi].empty()) column_rngs[gi] = rng.Fork();
  }
  ForEachIndex(pool, database.size(), 1, [&](size_t gi) {
    const std::vector<uint32_t>& feature_ids = features_of_graph[gi];
    if (feature_ids.empty()) return;
    std::vector<const Graph*> feature_graphs;
    std::vector<const MatchPlan*> feature_plans;
    feature_graphs.reserve(feature_ids.size());
    feature_plans.reserve(feature_ids.size());
    for (uint32_t fi : feature_ids) {
      feature_graphs.push_back(&index.features_[fi].graph);
      feature_plans.push_back(&index.feature_plans_[fi]);
    }
    const std::vector<SipBounds> bounds =
        ComputeSipBoundsBatch(database[gi], feature_graphs, options.sip,
                              &column_rngs[gi], &feature_plans);
    auto& column = columns[gi];
    column.reserve(feature_ids.size());
    for (size_t k = 0; k < feature_ids.size(); ++k) {
      // Mining support says f ⊆iso gc, so embeddings must exist; guard
      // against truncation artifacts anyway.
      PmiEntry entry;
      entry.feature_id = feature_ids[k];
      entry.lower_opt = static_cast<float>(bounds[k].lower_opt);
      entry.upper_opt = static_cast<float>(bounds[k].upper_opt);
      entry.lower_simple = static_cast<float>(bounds[k].lower_simple);
      entry.upper_simple = static_cast<float>(bounds[k].upper_simple);
      column.push_back(entry);
    }
    std::sort(column.begin(), column.end(),
              [](const PmiEntry& a, const PmiEntry& b) {
                return a.feature_id < b.feature_id;
              });
  });
  index.SetColumns(std::move(columns));
  index.stats_.bounds_seconds = bounds_timer.Seconds();
  index.stats_.total_seconds = total_timer.Seconds();
  index.stats_.num_features = index.features_.size();
  index.stats_.size_bytes = index.SizeBytes();
  return index;
}

Result<uint32_t> ProbabilisticMatrixIndex::AddGraph(
    const ProbabilisticGraph& graph, const SipBoundOptions& sip, uint64_t seed,
    std::vector<uint32_t>* contained) {
  const uint32_t graph_id = num_graphs_;
  const size_t num_features = features_.size();
  // Which existing features occur in the new graph's certain graph?
  std::vector<uint32_t> feature_ids;
  std::vector<const Graph*> feature_graphs;
  std::vector<const MatchPlan*> plan_ptrs;
  Vf2Scratch vf2;
  for (uint32_t fi = 0; fi < num_features; ++fi) {
    if (IsSubgraphIsomorphic(feature_plans_[fi], graph.certain(), &vf2)) {
      feature_ids.push_back(fi);
      feature_graphs.push_back(&features_[fi].graph);
      plan_ptrs.push_back(&feature_plans_[fi]);
    }
  }
  Rng rng(seed);
  const std::vector<SipBounds> bounds =
      ComputeSipBoundsBatch(graph, feature_graphs, sip, &rng, &plan_ptrs);

  // Append one num_features-cell block per matrix in place; graph-major
  // layout means no existing cell moves, so the cost is O(|F|) regardless
  // of how many columns already exist (BM_Pmi_AddGraph pins this).
  const size_t new_cells = (static_cast<size_t>(graph_id) + 1) * num_features;
  lower_opt_.resize(new_cells, 0.0f);
  upper_opt_.resize(new_cells, 0.0f);
  lower_simple_.resize(new_cells, 0.0f);
  upper_simple_.resize(new_cells, 0.0f);
  present_.resize(new_cells, 0);
  for (size_t k = 0; k < feature_ids.size(); ++k) {
    const size_t idx = Flat(feature_ids[k], graph_id);
    lower_opt_[idx] = static_cast<float>(bounds[k].lower_opt);
    upper_opt_[idx] = static_cast<float>(bounds[k].upper_opt);
    lower_simple_[idx] = static_cast<float>(bounds[k].lower_simple);
    upper_simple_[idx] = static_cast<float>(bounds[k].upper_simple);
    present_[idx] = 1;
    // graph_id exceeds every existing id, so the append keeps support sorted.
    features_[feature_ids[k]].support.push_back(graph_id);
  }
  // feature_ids was filled in ascending fi order: already CSR-sorted.
  col_features_.insert(col_features_.end(), feature_ids.begin(),
                       feature_ids.end());
  col_offsets_.push_back(static_cast<uint32_t>(col_features_.size()));
  alive_.push_back(1);
  ++num_graphs_;
  ++num_alive_;
  stats_.num_entries += feature_ids.size();
  ++epoch_;
  ++adds_since_build_;
  RecomputeFrequencies();
  stats_.size_bytes = SizeBytes();
  if (contained != nullptr) *contained = std::move(feature_ids);
  return graph_id;
}

Status ProbabilisticMatrixIndex::RemoveGraph(uint32_t graph_id) {
  if (graph_id >= num_graphs_) {
    return Status::InvalidArgument("RemoveGraph: graph id out of range");
  }
  if (alive_[graph_id] == 0) {
    return Status::InvalidArgument("RemoveGraph: graph already removed");
  }
  // Tombstone: clear the column's contiguous cell block so Lookup/Contains
  // report absent, drop the id from support lists, and mark it dead. Every
  // other graph id is untouched — ids are stable until Compact().
  const size_t num_features = features_.size();
  const size_t base = static_cast<size_t>(graph_id) * num_features;
  std::fill_n(lower_opt_.begin() + base, num_features, 0.0f);
  std::fill_n(upper_opt_.begin() + base, num_features, 0.0f);
  std::fill_n(lower_simple_.begin() + base, num_features, 0.0f);
  std::fill_n(upper_simple_.begin() + base, num_features, 0.0f);
  std::fill_n(present_.begin() + base, num_features, 0);
  // The CSR range [col_offsets_[g], col_offsets_[g+1]) goes stale here;
  // EntriesFor/Save skip dead columns, Compact() rebuilds the CSR.
  stats_.num_entries -= col_offsets_[graph_id + 1] - col_offsets_[graph_id];
  for (Feature& f : features_) {
    const auto it =
        std::lower_bound(f.support.begin(), f.support.end(), graph_id);
    if (it != f.support.end() && *it == graph_id) f.support.erase(it);
  }
  alive_[graph_id] = 0;
  --num_alive_;
  ++epoch_;
  ++removes_since_build_;
  RecomputeFrequencies();
  stats_.size_bytes = SizeBytes();
  return Status::OK();
}

void ProbabilisticMatrixIndex::Compact() {
  if (num_alive_ == num_graphs_) return;  // nothing to reclaim, epoch keeps
  // Old id -> new id for alive columns, in order: the only id renumbering
  // the index ever performs, and it bumps the epoch.
  std::vector<uint32_t> remap(num_graphs_, 0);
  std::vector<std::vector<PmiEntry>> columns;
  columns.reserve(num_alive_);
  for (uint32_t gi = 0; gi < num_graphs_; ++gi) {
    if (alive_[gi] == 0) continue;
    remap[gi] = static_cast<uint32_t>(columns.size());
    columns.push_back(EntriesFor(gi));
  }
  SetColumns(std::move(columns));
  for (Feature& f : features_) {
    for (uint32_t& gi : f.support) gi = remap[gi];
  }
  ++epoch_;
  stats_.size_bytes = SizeBytes();
}

size_t ProbabilisticMatrixIndex::SizeBytes() const {
  // PMI3 container: header + 3 section frames + footer, plus the feature
  // section's two leading counts.
  size_t bytes = 48;
  for (const Feature& f : features_) {
    bytes += GraphByteSize(f.graph) + 4 * f.support.size() + 24;
  }
  for (uint32_t gi = 0; gi < num_graphs_; ++gi) {
    const size_t column_size =
        IsAlive(gi) ? col_offsets_[gi + 1] - col_offsets_[gi] : 0;
    bytes += 4 + column_size * (4 + 4 * sizeof(float));
  }
  // Trailer: epoch + alive bytes + beta watermark + add/remove counts +
  // the 11 persisted sip-option scalars.
  bytes += 8 + num_graphs_ + 8 + 16 + 88;
  return bytes;
}

Status ProbabilisticMatrixIndex::Save(const std::string& path) const {
  // PMI3: three checksummed sections (features, columns, trailer) inside the
  // footer-checksummed snapshot container, installed atomically. Failpoint
  // sites live under "snapshot.pmi.*".
  SnapshotWriter writer(kPmiMagic3, kPmi3Version);

  std::ostringstream feat;
  WriteU32(feat, static_cast<uint32_t>(features_.size()));
  WriteU32(feat, num_graphs_);
  for (const Feature& f : features_) {
    WriteGraph(feat, f.graph);
    WriteU32(feat, static_cast<uint32_t>(f.support.size()));
    for (uint32_t gi : f.support) WriteU32(feat, gi);
    WriteDouble(feat, f.frequency);
    WriteDouble(feat, f.discriminative);
    WriteU32(feat, f.level);
  }
  writer.AddSection(feat.str());

  std::ostringstream cols;
  for (uint32_t gi = 0; gi < num_graphs_; ++gi) {
    // A tombstoned column serializes as empty; its alive byte in the trailer
    // is what distinguishes it from a live graph with no features.
    const std::vector<PmiEntry> column = EntriesFor(gi);
    WriteU32(cols, static_cast<uint32_t>(column.size()));
    for (const PmiEntry& e : column) {
      WriteU32(cols, e.feature_id);
      WriteDouble(cols, e.lower_opt);
      WriteDouble(cols, e.upper_opt);
      WriteDouble(cols, e.lower_simple);
      WriteDouble(cols, e.upper_simple);
    }
  }
  writer.AddSection(cols.str());

  std::ostringstream tr;
  WriteU64(tr, epoch_);
  for (uint32_t gi = 0; gi < num_graphs_; ++gi) {
    tr.put(alive_[gi] ? '\1' : '\0');
  }
  WriteDouble(tr, beta_watermark_);
  WriteU64(tr, adds_since_build_);
  WriteU64(tr, removes_since_build_);
  // Sip options — PMI1/PMI2 lost these across Load; PMI3 persists them so a
  // recovered server keeps adding graphs with the build-time knobs.
  WriteU64(tr, sip_options_.max_embeddings);
  WriteU64(tr, sip_options_.max_cut_embeddings);
  WriteU64(tr, sip_options_.cuts.max_cuts);
  WriteU64(tr, sip_options_.cuts.max_cut_size);
  WriteU64(tr, sip_options_.cuts.max_nodes);
  WriteDouble(tr, sip_options_.mc.xi);
  WriteDouble(tr, sip_options_.mc.tau);
  WriteU64(tr, sip_options_.mc.min_samples);
  WriteU64(tr, sip_options_.mc.max_samples);
  WriteU64(tr, sip_options_.clique.exact_node_limit);
  WriteU64(tr, sip_options_.clique.max_bb_nodes);
  writer.AddSection(tr.str());

  return writer.Commit(path, "snapshot.pmi");
}

Result<ProbabilisticMatrixIndex> ProbabilisticMatrixIndex::Load(
    const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return Status::NotFound("PMI Load: cannot open " + path);
  PGSIM_ASSIGN_OR_RETURN(const uint32_t magic, ReadU32(probe));
  if (magic != kPmiMagic1 && magic != kPmiMagic2 && magic != kPmiMagic3) {
    return Status::InvalidArgument("PMI Load: bad magic in " + path);
  }
  probe.close();

  ProbabilisticMatrixIndex index;

  // Shared body parsers — the feature and column encodings are identical in
  // every format version; only the framing around them changed.
  auto read_features = [&index, &path](std::istream& is,
                                       uint32_t num_features) -> Status {
    index.features_.reserve(num_features);
    for (uint32_t fi = 0; fi < num_features; ++fi) {
      Feature f;
      PGSIM_ASSIGN_OR_RETURN(f.graph, ReadGraph(is));
      PGSIM_ASSIGN_OR_RETURN(const uint32_t support_size, ReadU32(is));
      f.support.reserve(support_size);
      for (uint32_t i = 0; i < support_size; ++i) {
        PGSIM_ASSIGN_OR_RETURN(const uint32_t gi, ReadU32(is));
        f.support.push_back(gi);
      }
      PGSIM_ASSIGN_OR_RETURN(f.frequency, ReadDouble(is));
      PGSIM_ASSIGN_OR_RETURN(f.discriminative, ReadDouble(is));
      PGSIM_ASSIGN_OR_RETURN(f.level, ReadU32(is));
      index.features_.push_back(std::move(f));
    }
    (void)path;
    return Status::OK();
  };
  auto read_columns =
      [&path](std::istream& is, uint32_t num_features, uint32_t num_graphs,
              std::vector<std::vector<PmiEntry>>* columns) -> Status {
    columns->resize(num_graphs);
    for (uint32_t gi = 0; gi < num_graphs; ++gi) {
      PGSIM_ASSIGN_OR_RETURN(const uint32_t column_size, ReadU32(is));
      auto& column = (*columns)[gi];
      column.reserve(column_size);
      for (uint32_t k = 0; k < column_size; ++k) {
        PmiEntry e;
        PGSIM_ASSIGN_OR_RETURN(e.feature_id, ReadU32(is));
        if (e.feature_id >= num_features) {
          // The columnar rebuild indexes flat matrices by feature id, so a
          // malformed file must fail here rather than write out of range.
          return Status::InvalidArgument(
              "PMI Load: feature id out of range in " + path);
        }
        PGSIM_ASSIGN_OR_RETURN(const double lo, ReadDouble(is));
        PGSIM_ASSIGN_OR_RETURN(const double uo, ReadDouble(is));
        PGSIM_ASSIGN_OR_RETURN(const double ls, ReadDouble(is));
        PGSIM_ASSIGN_OR_RETURN(const double us, ReadDouble(is));
        e.lower_opt = static_cast<float>(lo);
        e.upper_opt = static_cast<float>(uo);
        e.lower_simple = static_cast<float>(ls);
        e.upper_simple = static_cast<float>(us);
        column.push_back(e);
      }
    }
    return Status::OK();
  };
  auto read_alive = [&index, &path](std::istream& is,
                                    uint32_t num_graphs) -> Status {
    for (uint32_t gi = 0; gi < num_graphs; ++gi) {
      const int byte = is.get();
      if (byte == std::char_traits<char>::eof()) {
        return Status::DataLoss("PMI Load: truncated alive bytes in " + path);
      }
      if (byte == 0) {
        // The serialized column was already empty; just mark it dead.
        index.alive_[gi] = 0;
        --index.num_alive_;
      }
    }
    return Status::OK();
  };

  if (magic == kPmiMagic3) {
    PGSIM_ASSIGN_OR_RETURN(SnapshotReader snap,
                           SnapshotReader::Open(path, kPmiMagic3));
    if (snap.version() != kPmi3Version) {
      return Status::InvalidArgument("PMI Load: unsupported PMI3 version " +
                                     std::to_string(snap.version()));
    }
    if (snap.num_sections() != 3) {
      return Status::DataLoss("PMI Load: expected 3 sections, got " +
                              std::to_string(snap.num_sections()));
    }
    std::istringstream feat(snap.section(0));
    PGSIM_ASSIGN_OR_RETURN(const uint32_t num_features, ReadU32(feat));
    PGSIM_ASSIGN_OR_RETURN(const uint32_t num_graphs, ReadU32(feat));
    PGSIM_RETURN_NOT_OK(read_features(feat, num_features));

    std::istringstream cols(snap.section(1));
    std::vector<std::vector<PmiEntry>> columns;
    PGSIM_RETURN_NOT_OK(read_columns(cols, num_features, num_graphs, &columns));
    index.RebuildFeaturePlans();
    index.SetColumns(std::move(columns));

    std::istringstream tr(snap.section(2));
    PGSIM_ASSIGN_OR_RETURN(index.epoch_, ReadU64(tr));
    PGSIM_RETURN_NOT_OK(read_alive(tr, num_graphs));
    PGSIM_ASSIGN_OR_RETURN(index.beta_watermark_, ReadDouble(tr));
    PGSIM_ASSIGN_OR_RETURN(index.adds_since_build_, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(index.removes_since_build_, ReadU64(tr));
    SipBoundOptions sip;
    PGSIM_ASSIGN_OR_RETURN(sip.max_embeddings, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.max_cut_embeddings, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.cuts.max_cuts, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.cuts.max_cut_size, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.cuts.max_nodes, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.mc.xi, ReadDouble(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.mc.tau, ReadDouble(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.mc.min_samples, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.mc.max_samples, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.clique.exact_node_limit, ReadU64(tr));
    PGSIM_ASSIGN_OR_RETURN(sip.clique.max_bb_nodes, ReadU64(tr));
    index.sip_options_ = sip;
  } else {
    std::ifstream is(path, std::ios::binary);
    if (!is) return Status::NotFound("PMI Load: cannot open " + path);
    PGSIM_ASSIGN_OR_RETURN(const uint32_t again, ReadU32(is));
    (void)again;
    PGSIM_ASSIGN_OR_RETURN(const uint32_t num_features, ReadU32(is));
    PGSIM_ASSIGN_OR_RETURN(const uint32_t num_graphs, ReadU32(is));
    PGSIM_RETURN_NOT_OK(read_features(is, num_features));
    std::vector<std::vector<PmiEntry>> columns;
    PGSIM_RETURN_NOT_OK(read_columns(is, num_features, num_graphs, &columns));
    index.RebuildFeaturePlans();
    index.SetColumns(std::move(columns));
    if (magic == kPmiMagic2) {
      PGSIM_ASSIGN_OR_RETURN(index.epoch_, ReadU64(is));
      PGSIM_RETURN_NOT_OK(read_alive(is, num_graphs));
      PGSIM_ASSIGN_OR_RETURN(index.beta_watermark_, ReadDouble(is));
      PGSIM_ASSIGN_OR_RETURN(index.adds_since_build_, ReadU64(is));
      PGSIM_ASSIGN_OR_RETURN(index.removes_since_build_, ReadU64(is));
    }
    // PMI1 files predate epochs: everything alive, epoch 0 (SetColumns set
    // the alive state already). Neither legacy format carries sip options;
    // they stay at defaults (callers should re-set them).
  }
  index.stats_.num_features = index.features_.size();
  index.stats_.size_bytes = index.SizeBytes();
  return index;
}

}  // namespace pgsim
