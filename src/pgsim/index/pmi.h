// Probabilistic Matrix Index — PMI (paper Section 3.1, Figure 4, Section 4).
//
// Rows are mined features, columns are the probabilistic graphs of the
// database. Entry (f, g) stores tight lower/upper bounds of the subgraph
// isomorphism probability Pr(f ⊆iso g); a missing entry encodes the paper's
// <0> (f is not subgraph isomorphic to gc, so SIP is exactly 0).
//
// Each entry carries the bounds in both flavors exercised by the paper's
// experiments: OPT (max-weight-clique selection, feeding OPT-SIPBound) and
// simple (greedy selection, feeding SIPBound, Figure 11's ablation).
//
// Storage is columnar: the four bound flavors live in flat feature-major
// float matrices (`flat_*()[feature * num_graphs() + graph] `) with absent
// cells holding 0.0f — the paper's <0> — plus a parallel presence byte
// matrix, so the pruner's per-candidate reads are direct indexed loads
// instead of per-feature binary searches. The sparse per-graph views
// (EntriesFor) and the serialized format are materialized from / rebuilt
// into this columnar storage; Save/Load stay byte-compatible with the
// pre-columnar format.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgsim/bounds/sip_bounds.h"
#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/mining/feature_miner.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// One PMI cell: SIP bounds of feature `feature_id` against one graph.
struct PmiEntry {
  uint32_t feature_id = 0;
  float lower_opt = 0.0f;
  float upper_opt = 1.0f;
  float lower_simple = 0.0f;
  float upper_simple = 1.0f;
};

/// Build configuration.
struct PmiBuildOptions {
  FeatureMinerOptions miner;
  SipBoundOptions sip;
  uint64_t seed = 42;  ///< Seed for the Algorithm 3 samplers.
  /// Worker threads for the whole offline pipeline (feature mining + the
  /// per-graph SIP bound columns); 0 means ThreadPool::DefaultThreads(),
  /// 1 builds fully inline. The build pool is forwarded to the miner only
  /// when miner.num_threads and miner.pool are both left at their defaults;
  /// an explicit miner setting wins. The built index is bit-identical at
  /// every thread count: per-graph RNGs are forked sequentially up front
  /// and every parallel phase merges per-item slots in input order.
  uint32_t num_threads = 0;
  /// Caller-owned pool to build on (not owned; must outlive the call).
  /// Overrides num_threads.
  ThreadPool* pool = nullptr;
};

/// Build-time statistics (Figure 12(c)/(d) report these).
struct PmiStats {
  double mining_seconds = 0.0;
  double bounds_seconds = 0.0;
  double total_seconds = 0.0;
  size_t num_features = 0;
  size_t num_entries = 0;
  size_t size_bytes = 0;       ///< serialized index size
  uint32_t build_threads = 1;  ///< effective worker count of Build()
};

/// The feature-by-graph matrix of SIP bounds.
class ProbabilisticMatrixIndex {
 public:
  ProbabilisticMatrixIndex() = default;

  /// Mines features from the certain database and fills the matrix by
  /// running the Section 4.1 bound machinery per (feature, graph) pair.
  static Result<ProbabilisticMatrixIndex> Build(
      const std::vector<ProbabilisticGraph>& database,
      const PmiBuildOptions& options = PmiBuildOptions());

  /// Indexed features (row headers).
  const std::vector<Feature>& features() const { return features_; }

  /// Compiled VF2 match plans, one per feature, built once with the index
  /// (features are immutable afterwards). The pruner's PrepareQuery runs
  /// these against every relaxed query instead of recompiling a plan per
  /// (feature, rq) test.
  const std::vector<MatchPlan>& feature_plans() const {
    return feature_plans_;
  }

  /// Number of graph columns.
  uint32_t num_graphs() const { return num_graphs_; }

  /// Dg: the entries of graph `graph_id`, sorted by feature id, materialized
  /// from the columnar storage. Features not listed have SIP = 0.
  std::vector<PmiEntry> EntriesFor(uint32_t graph_id) const;

  /// True iff the (graph, feature) cell is present (f ⊆iso gc). Ids out of
  /// range are absent by definition (matching the old sparse search).
  bool Contains(uint32_t graph_id, uint32_t feature_id) const {
    return graph_id < num_graphs_ && feature_id < features_.size() &&
           present_[Flat(feature_id, graph_id)] != 0;
  }

  /// Direct columnar lookup: fills `*out` and returns true when the cell is
  /// present, returns false (leaving `*out` untouched) for the paper's <0>
  /// and for out-of-range ids.
  bool Lookup(uint32_t graph_id, uint32_t feature_id, PmiEntry* out) const;

  /// Flat feature-major bound matrices, one float per (feature, graph) cell
  /// at index `feature * num_graphs() + graph`; absent cells are 0.0f. These
  /// back the pruner's allocation-free per-candidate gathers.
  const std::vector<float>& flat_lower_opt() const { return lower_opt_; }
  const std::vector<float>& flat_upper_opt() const { return upper_opt_; }
  const std::vector<float>& flat_lower_simple() const { return lower_simple_; }
  const std::vector<float>& flat_upper_simple() const { return upper_simple_; }
  /// Presence bytes (1 = entry exists), same feature-major indexing.
  const std::vector<uint8_t>& flat_present() const { return present_; }

  /// Build statistics.
  const PmiStats& stats() const { return stats_; }

  /// Serialized size in bytes (features + the sparse per-graph entry
  /// format Save() writes). NOT the resident footprint: in memory the four
  /// bound flavors + presence live as dense feature-major matrices
  /// (~17 bytes per (feature, graph) cell), which dwarfs this number on
  /// sparse databases.
  size_t SizeBytes() const;

  /// Persists the index (features, matrix, stats) to a binary file.
  Status Save(const std::string& path) const;

  /// Restores an index saved by Save().
  static Result<ProbabilisticMatrixIndex> Load(const std::string& path);

  /// Incremental maintenance: appends a new graph column (bounds computed
  /// against the existing feature set; features are NOT re-mined — re-run
  /// Build() periodically if the data distribution drifts). Returns the new
  /// graph id. Rebuilds the feature-major matrices (O(|F| * |D|)).
  Result<uint32_t> AddGraph(const ProbabilisticGraph& graph,
                            const SipBoundOptions& sip, uint64_t seed);

  /// Incremental maintenance: drops a graph column. Ids above `graph_id`
  /// shift down by one (mirroring erasing the graph from the database
  /// vector); feature support lists are updated accordingly. Rebuilds the
  /// feature-major matrices (O(|F| * |D|)).
  Status RemoveGraph(uint32_t graph_id);

 private:
  size_t Flat(uint32_t feature_id, uint32_t graph_id) const {
    return static_cast<size_t>(feature_id) * num_graphs_ + graph_id;
  }

  /// Rebuilds the columnar storage from sparse feature-sorted columns.
  void SetColumns(std::vector<std::vector<PmiEntry>>&& columns);

  /// Recompiles feature_plans_ from features_ (Build/Load call this once
  /// the feature set is final).
  void RebuildFeaturePlans();

  std::vector<Feature> features_;
  std::vector<MatchPlan> feature_plans_;
  uint32_t num_graphs_ = 0;
  // Per-graph sorted feature-id lists (CSR) — the sparse structure backing
  // EntriesFor and the serialized format.
  std::vector<uint32_t> col_offsets_ = {0};
  std::vector<uint32_t> col_features_;
  // Feature-major flat matrices; absent cells 0.0f / present byte 0.
  std::vector<float> lower_opt_;
  std::vector<float> upper_opt_;
  std::vector<float> lower_simple_;
  std::vector<float> upper_simple_;
  std::vector<uint8_t> present_;
  PmiStats stats_;
};

}  // namespace pgsim
