// Probabilistic Matrix Index — PMI (paper Section 3.1, Figure 4, Section 4).
//
// Rows are mined features, columns are the probabilistic graphs of the
// database. Entry (f, g) stores tight lower/upper bounds of the subgraph
// isomorphism probability Pr(f ⊆iso g); a missing entry encodes the paper's
// <0> (f is not subgraph isomorphic to gc, so SIP is exactly 0).
//
// Each entry carries the bounds in both flavors exercised by the paper's
// experiments: OPT (max-weight-clique selection, feeding OPT-SIPBound) and
// simple (greedy selection, feeding SIPBound, Figure 11's ablation).
//
// Storage is columnar: the four bound flavors live in flat graph-major
// float matrices (`flat_*()[graph * num_features() + feature]`) with absent
// cells holding 0.0f — the paper's <0> — plus a parallel presence byte
// matrix, so the pruner's per-candidate reads (one graph, many features)
// are contiguous indexed loads. Graph-major layout also makes the index
// update-friendly: AddGraph appends one num_features()-cell block per
// matrix in place — O(|F|) per add, independent of the database size —
// because the feature set (the stride) is immutable after Build/Load.
//
// Live maintenance contract (see also QueryProcessor's mutation API):
//   - Graph ids are STABLE under RemoveGraph: removal tombstones the column
//     (IsAlive(g) turns false, Lookup/EntriesFor report empty) without
//     shifting any other id. Compact() reclaims tombstoned columns and is
//     the only operation that renumbers ids.
//   - Every mutation (AddGraph, RemoveGraph, Compact) bumps a monotonically
//     increasing `epoch()`. Any caller-side artifact derived from graph ids
//     or index contents (cached verdicts, answer caches) must be considered
//     stale when the epoch it was computed under differs from the current
//     one.
//   - Feature::frequency is recomputed on every mutation as
//     |support| / num_alive() (support lists hold only alive ids). Mining's
//     alpha-disjointness refinement of the numerator is a build-time
//     construct; after the first mutation, frequency reports plain support
//     frequency (documented drift; `maintenance().remine_advised` raises a
//     flag when any feature falls below the mining beta watermark).
// The sparse per-graph views (EntriesFor) and the serialized format are
// materialized from / rebuilt into the columnar storage. Save() writes the
// checksummed PMI3 container (per-section CRC32C + whole-file footer,
// atomic temp+rename install); Load() verifies every checksum — corruption
// is Status::DataLoss, never a silently wrong index — and still accepts the
// legacy "PMI2" and pre-epoch "PMI1" stream formats.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgsim/bounds/sip_bounds.h"
#include "pgsim/common/random.h"
#include "pgsim/common/status.h"
#include "pgsim/graph/graph.h"
#include "pgsim/mining/feature_miner.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

/// One PMI cell: SIP bounds of feature `feature_id` against one graph.
struct PmiEntry {
  uint32_t feature_id = 0;
  float lower_opt = 0.0f;
  float upper_opt = 1.0f;
  float lower_simple = 0.0f;
  float upper_simple = 1.0f;
};

/// Build configuration.
struct PmiBuildOptions {
  FeatureMinerOptions miner;
  SipBoundOptions sip;
  uint64_t seed = 42;  ///< Seed for the Algorithm 3 samplers.
  /// Worker threads for the whole offline pipeline (feature mining + the
  /// per-graph SIP bound columns); 0 means ThreadPool::DefaultThreads(),
  /// 1 builds fully inline. The build pool is forwarded to the miner only
  /// when miner.num_threads and miner.pool are both left at their defaults;
  /// an explicit miner setting wins. The built index is bit-identical at
  /// every thread count: per-graph RNGs are forked sequentially up front
  /// and every parallel phase merges per-item slots in input order.
  uint32_t num_threads = 0;
  /// Caller-owned pool to build on (not owned; must outlive the call).
  /// Overrides num_threads.
  ThreadPool* pool = nullptr;
};

/// Build-time statistics (Figure 12(c)/(d) report these).
struct PmiStats {
  double mining_seconds = 0.0;
  double bounds_seconds = 0.0;
  double total_seconds = 0.0;
  size_t num_features = 0;
  size_t num_entries = 0;
  size_t size_bytes = 0;       ///< serialized index size
  uint32_t build_threads = 1;  ///< effective worker count of Build()
};

/// Live-maintenance snapshot (see the header comment's contract).
struct PmiMaintenance {
  uint64_t epoch = 0;            ///< bumped by every mutation
  uint32_t num_alive = 0;        ///< columns not tombstoned
  uint32_t num_tombstones = 0;   ///< removed-but-unreclaimed columns
  uint64_t adds_since_build = 0;
  uint64_t removes_since_build = 0;
  double min_feature_frequency = 0.0;  ///< over the current feature set
  /// True when some feature's maintained frequency dropped below the mining
  /// beta recorded at Build() — the distribution drifted past what the
  /// mined feature set was selected for; schedule a full re-mine.
  bool remine_advised = false;
};

/// The feature-by-graph matrix of SIP bounds.
class ProbabilisticMatrixIndex {
 public:
  ProbabilisticMatrixIndex() = default;

  /// Mines features from the certain database and fills the matrix by
  /// running the Section 4.1 bound machinery per (feature, graph) pair.
  static Result<ProbabilisticMatrixIndex> Build(
      const std::vector<ProbabilisticGraph>& database,
      const PmiBuildOptions& options = PmiBuildOptions());

  /// Indexed features (row headers).
  const std::vector<Feature>& features() const { return features_; }

  /// Compiled VF2 match plans, one per feature, built once with the index
  /// (features are immutable afterwards). The pruner's PrepareQuery runs
  /// these against every relaxed query instead of recompiling a plan per
  /// (feature, rq) test.
  const std::vector<MatchPlan>& feature_plans() const {
    return feature_plans_;
  }

  /// Number of graph columns, INCLUDING tombstoned ones (column slots; the
  /// valid graph-id range is [0, num_graphs())).
  uint32_t num_graphs() const { return num_graphs_; }

  /// Number of feature rows — also the graph-major matrix stride.
  uint32_t num_features() const {
    return static_cast<uint32_t>(features_.size());
  }

  /// Columns still serving (num_graphs() minus tombstones).
  uint32_t num_alive() const { return num_alive_; }

  /// Tombstoned columns awaiting Compact().
  uint32_t num_tombstones() const { return num_graphs_ - num_alive_; }

  /// False for tombstoned or out-of-range ids.
  bool IsAlive(uint32_t graph_id) const {
    return graph_id < num_graphs_ && alive_[graph_id] != 0;
  }

  /// Monotonically increasing mutation counter; equal epochs guarantee the
  /// index (ids, columns, features) has not changed in between.
  uint64_t epoch() const { return epoch_; }

  /// Maintenance snapshot (epoch, tombstones, frequency watermark).
  PmiMaintenance maintenance() const;

  /// Dg: the entries of graph `graph_id`, sorted by feature id, materialized
  /// from the columnar storage. Features not listed have SIP = 0; a
  /// tombstoned column has no entries.
  std::vector<PmiEntry> EntriesFor(uint32_t graph_id) const;

  /// True iff the (graph, feature) cell is present (f ⊆iso gc). Ids out of
  /// range — and tombstoned columns, whose cells are cleared on removal —
  /// are absent by definition.
  bool Contains(uint32_t graph_id, uint32_t feature_id) const {
    return graph_id < num_graphs_ && feature_id < features_.size() &&
           present_[Flat(feature_id, graph_id)] != 0;
  }

  /// Direct columnar lookup: fills `*out` and returns true when the cell is
  /// present, returns false (leaving `*out` untouched) for the paper's <0>
  /// and for out-of-range ids.
  bool Lookup(uint32_t graph_id, uint32_t feature_id, PmiEntry* out) const;

  /// Flat graph-major bound matrices, one float per (graph, feature) cell
  /// at index `graph * num_features() + feature`; absent cells are 0.0f.
  /// These back the pruner's allocation-free per-candidate gathers (one
  /// contiguous block per candidate graph).
  const std::vector<float>& flat_lower_opt() const { return lower_opt_; }
  const std::vector<float>& flat_upper_opt() const { return upper_opt_; }
  const std::vector<float>& flat_lower_simple() const { return lower_simple_; }
  const std::vector<float>& flat_upper_simple() const { return upper_simple_; }
  /// Presence bytes (1 = entry exists), same graph-major indexing.
  const std::vector<uint8_t>& flat_present() const { return present_; }

  /// Build statistics.
  const PmiStats& stats() const { return stats_; }

  /// SIP-bound options remembered from Build() and reused by AddGraph when
  /// the caller passes none. PMI3 files persist them, so Load() restores the
  /// build-time knobs; only legacy PMI1/PMI2 loads reset them to defaults
  /// (those callers should re-set them before mutating).
  const SipBoundOptions& sip_options() const { return sip_options_; }
  void set_sip_options(const SipBoundOptions& sip) { sip_options_ = sip; }

  /// Serialized size in bytes (features + the sparse per-graph entry
  /// format Save() writes). NOT the resident footprint: in memory the four
  /// bound flavors + presence live as dense graph-major matrices
  /// (~17 bytes per (feature, graph) cell), which dwarfs this number on
  /// sparse databases.
  size_t SizeBytes() const;

  /// Persists the index (features, matrix, stats, epoch, tombstones, sip
  /// options) as a checksummed PMI3 file, installed atomically (temp +
  /// fsync + rename — a crash leaves the old file intact). A mutated index
  /// round-trips exactly: Save -> Load -> Save produces byte-identical
  /// files.
  Status Save(const std::string& path) const;

  /// Restores an index saved by Save(); also accepts legacy PMI2 and
  /// pre-epoch PMI1 files. Any torn, truncated, or bit-flipped PMI3 file is
  /// rejected with Status::DataLoss (checksums are verified before any
  /// section is parsed).
  static Result<ProbabilisticMatrixIndex> Load(const std::string& path);

  /// Incremental maintenance: appends a new graph column in place —
  /// O(|F|) matrix work plus the per-contained-feature bound computation,
  /// independent of the database size (BM_Pmi_AddGraph pins this). Bounds
  /// are computed against the existing feature set; features are NOT
  /// re-mined (watch maintenance().remine_advised). Returns the new graph
  /// id and bumps the epoch. `contained`, when non-null, receives the
  /// feature ids embedded in the new graph (callers forward it to
  /// StructuralFilter::AddGraph to skip recomputing containment).
  Result<uint32_t> AddGraph(const ProbabilisticGraph& graph,
                            const SipBoundOptions& sip, uint64_t seed,
                            std::vector<uint32_t>* contained = nullptr);

  /// Incremental maintenance: tombstones a graph column. All other graph
  /// ids are STABLE (no shift); the column's cells are cleared, support
  /// lists drop the id, frequencies are recomputed, and the epoch bumps.
  /// Removing an already-tombstoned or out-of-range id errors.
  Status RemoveGraph(uint32_t graph_id);

  /// Reclaims tombstoned columns: alive columns are renumbered downward in
  /// order (new id = old id - tombstones below it), matrices shrink, and
  /// the epoch bumps. Callers holding graph ids must re-derive them — the
  /// epoch bump is the invalidation signal. No-op (and no epoch bump) when
  /// there are no tombstones.
  void Compact();

 private:
  size_t Flat(uint32_t feature_id, uint32_t graph_id) const {
    return static_cast<size_t>(graph_id) * features_.size() + feature_id;
  }

  /// Rebuilds the columnar storage from sparse feature-sorted columns.
  void SetColumns(std::vector<std::vector<PmiEntry>>&& columns);

  /// Recompiles feature_plans_ from features_ (Build/Load call this once
  /// the feature set is final).
  void RebuildFeaturePlans();

  /// Recomputes every feature's maintained frequency (|support| /
  /// num_alive_) after a mutation.
  void RecomputeFrequencies();

  std::vector<Feature> features_;
  std::vector<MatchPlan> feature_plans_;
  uint32_t num_graphs_ = 0;
  uint32_t num_alive_ = 0;
  // Per-graph sorted feature-id lists (CSR) — the sparse structure backing
  // EntriesFor and the serialized format. A tombstoned column keeps its
  // (now-ignored) CSR range until Compact().
  std::vector<uint32_t> col_offsets_ = {0};
  std::vector<uint32_t> col_features_;
  // Graph-major flat matrices; absent cells 0.0f / present byte 0.
  std::vector<float> lower_opt_;
  std::vector<float> upper_opt_;
  std::vector<float> lower_simple_;
  std::vector<float> upper_simple_;
  std::vector<uint8_t> present_;
  // Tombstone bytes, one per column (1 = alive).
  std::vector<uint8_t> alive_;
  uint64_t epoch_ = 0;
  uint64_t adds_since_build_ = 0;
  uint64_t removes_since_build_ = 0;
  // Mining beta recorded at Build(): the re-mine watermark.
  double beta_watermark_ = 0.0;
  SipBoundOptions sip_options_;
  PmiStats stats_;
};

}  // namespace pgsim
