// SignatureIndex: the database-side neighborhood-signature store.
//
// One flat, vertex-major columnar block per signature column (nbr_bits /
// hop2_bits / degree / label_counts — see graph/signature.h for the
// per-vertex encoding), with a CSR of per-graph vertex offsets on top.
// ForGraph(gi) hands the verifier a borrowed SignatureView over graph gi's
// slice; the query side pairs it with a compiled QuerySignature to run the
// cover test and build candidate domains before each stage-3 VF2 call.
//
// Lifecycle mirrors the other serving structures:
//   * Build — parallel over graphs (each worker owns disjoint pre-sized
//     slices, so the arrays are byte-identical at any thread count);
//   * AddGraph appends a column, RemoveGraph tombstones in place (stable
//     ids), Compact packs alive graphs ascending — the same renumbering
//     PMI::Compact and StructuralFilter::Compact perform, so a caller
//     compacting all three keeps ids aligned;
//   * Save/Load — checksummed PGSG snapshot container (storage/io_util):
//     truncation or bit flips surface as DataLoss, never as garbage
//     signatures. The epoch stamped at Save time lets DurableDatabase
//     cross-check the file against its MANIFEST.
//
// The index prunes only (never affects answers), so a missing or
// version-skewed file is recoverable by rebuilding from the database —
// DurableDatabase does exactly that for pre-signature snapshot directories.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgsim/common/status.h"
#include "pgsim/graph/signature.h"
#include "pgsim/prob/probabilistic_graph.h"

namespace pgsim {

class ThreadPool;

class SignatureIndex {
 public:
  struct BuildOptions {
    /// Worker threads for the per-graph build; 0 = hardware concurrency,
    /// 1 = inline. Ignored when `pool` is set.
    uint32_t num_threads = 1;
    /// Optional external pool (not owned).
    ThreadPool* pool = nullptr;
  };

  SignatureIndex() = default;

  /// Builds signatures for every graph's certain part. Byte-identical output
  /// at any thread count. (Two overloads, not a default argument: a nested
  /// class with member initializers cannot default-construct as a default
  /// argument inside its enclosing class.)
  static SignatureIndex Build(const std::vector<ProbabilisticGraph>& database,
                              const BuildOptions& options);
  static SignatureIndex Build(const std::vector<ProbabilisticGraph>& database);

  size_t num_graphs() const { return offsets_.size() - 1; }
  size_t num_alive() const { return num_alive_; }
  bool IsAlive(uint32_t graph_id) const {
    return graph_id < alive_.size() && alive_[graph_id] != 0;
  }
  /// The epoch recorded in the snapshot this index was loaded from (0 for a
  /// fresh build).
  uint64_t saved_epoch() const { return saved_epoch_; }

  /// Borrowed view over graph `graph_id`'s signature slice. Valid until the
  /// next mutation of the index.
  SignatureView ForGraph(uint32_t graph_id) const {
    SignatureView v;
    const uint32_t begin = offsets_[graph_id];
    v.nbr_bits = nbr_bits_.data() + begin;
    v.hop2_bits = hop2_bits_.data() + begin;
    v.degree = degree_.data() + begin;
    v.label_counts = label_counts_.data() + size_t{begin} * kSignatureLabelSlots;
    v.num_vertices = offsets_[graph_id + 1] - begin;
    return v;
  }

  /// Appends one graph's signatures; returns its id (== previous
  /// num_graphs()).
  uint32_t AddGraph(const Graph& certain);

  /// Tombstones a graph in place (id stays valid, signatures kept until
  /// Compact so ForGraph on a dead id is still well-formed).
  Status RemoveGraph(uint32_t graph_id);

  /// Reclaims tombstoned columns: alive graphs are packed ascending, the
  /// same renumbering the PMI and filter Compact perform.
  void Compact();

  /// Persists the index as a PGSG container, stamped with `epoch` (the
  /// owning processor's mutation epoch at snapshot time).
  Status Save(const std::string& path, uint64_t epoch) const;

  /// Restores an index saved by Save(). Corruption => DataLoss; a missing
  /// file => NotFound (callers rebuild instead).
  static Result<SignatureIndex> Load(const std::string& path);

 private:
  /// Per-graph vertex offsets into the flat columns (size num_graphs + 1).
  std::vector<uint32_t> offsets_ = {0};
  std::vector<uint64_t> nbr_bits_;
  std::vector<uint64_t> hop2_bits_;
  std::vector<uint32_t> degree_;
  std::vector<uint8_t> label_counts_;
  std::vector<uint8_t> alive_;
  size_t num_alive_ = 0;
  uint64_t saved_epoch_ = 0;
};

}  // namespace pgsim
