// Figure 10 reproduction: candidate set size (a) and pruning time (b) as a
// function of the probability threshold epsilon, for three pruners:
//
//   Structure      — deterministic structural pruning only (|SCq|);
//   SSPBound       — probabilistic pruning with random feature choices;
//   OPT-SSPBound   — Algorithm 1 set cover + Algorithm 2 QP (tightest).
//
// Paper shape: Structure is flat (probabilities don't affect it); both
// probabilistic pruners shrink as epsilon grows; OPT-SSPBound dominates
// SSPBound on candidates while paying slightly more pruning time.
//
// Flags: --db, --queries, --seed, --delta, --qsize.

#include <cstdio>

#include "bench_util.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/relaxation.h"

using namespace pgsim;
using namespace pgsim::bench;

namespace {

struct Measure {
  double candidates = 0.0;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const size_t db_size = args.GetInt("db", 80 * args.GetInt("scale", 1));
  const size_t num_queries = args.GetInt("queries", 6);
  const uint64_t seed = args.GetInt("seed", 42);
  const uint32_t delta = args.GetInt("delta", 1);
  const uint32_t qsize = args.GetInt("qsize", 6);

  std::printf("== Figure 10: scalability to probability threshold ==\n");
  std::printf("db=%zu queries/point=%zu delta=%u qsize=%u\n\n", db_size,
              num_queries, delta, qsize);

  Setup setup = BuildSetup(db_size, seed);

  // One fixed workload shared by every (epsilon, pruner) combination.
  const std::vector<Graph> queries =
      GenerateQueries(setup.db, qsize, num_queries, seed + 7).value();

  Table cand_table({"epsilon", "Structure", "SSPBound", "OPT-SSPBound"});
  Table time_table({"epsilon", "Structure_ms", "SSPBound_ms",
                    "OPT-SSPBound_ms"});

  for (double epsilon : {0.3, 0.4, 0.5, 0.6, 0.7}) {
    Measure structure, random_bound, opt_bound;
    Rng rng(seed + 23);  // evaluation randomness only
    size_t measured = 0;
    for (const Graph& q_graph : queries) {
      const Graph* q = &q_graph;
      auto relaxed = GenerateRelaxedQueries(*q, delta);
      if (!relaxed.ok()) continue;
      ++measured;

      WallTimer structural_timer;
      const auto sc_q = setup.filter.Filter(*q, *relaxed, delta, nullptr);
      structure.seconds += structural_timer.Seconds();
      structure.candidates += sc_q.size();

      for (BoundSelection selection :
           {BoundSelection::kRandom, BoundSelection::kOptimized}) {
        Measure& m = selection == BoundSelection::kRandom ? random_bound
                                                          : opt_bound;
        ProbPrunerOptions options;
        options.selection = selection;
        options.sip_variant = SipVariant::kOpt;
        ProbabilisticPruner pruner(&setup.pmi, options);
        WallTimer timer;
        pruner.PrepareQuery(*relaxed);
        PrunerScratch pruner_scratch;
        size_t survivors = 0;
        for (uint32_t gi : sc_q) {
          if (pruner.Evaluate(gi, epsilon, &rng, &pruner_scratch).outcome ==
              PruneOutcome::kCandidate) {
            ++survivors;
          }
        }
        m.seconds += timer.Seconds();
        m.candidates += survivors;
      }
    }
    const double denom = measured == 0 ? 1.0 : static_cast<double>(measured);
    cand_table.AddRow({Fmt(epsilon, 1), Fmt(structure.candidates / denom, 1),
                       Fmt(random_bound.candidates / denom, 1),
                       Fmt(opt_bound.candidates / denom, 1)});
    time_table.AddRow({Fmt(epsilon, 1), FmtMs(structure.seconds / denom),
                       FmtMs(random_bound.seconds / denom),
                       FmtMs(opt_bound.seconds / denom)});
  }

  std::printf("--- (a) candidate size ---\n");
  cand_table.Print();
  std::printf("\n--- (b) pruning time ---\n");
  time_table.Print();
  std::printf(
      "\nExpected shape: Structure flat; SSPBound/OPT-SSPBound decrease "
      "with epsilon; OPT-SSPBound <= SSPBound on candidates.\n");
  return 0;
}
