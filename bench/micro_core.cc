// Micro-benchmarks of pgsim's core operations (google-benchmark), including
// the DESIGN.md ablations: hitting-set vs parallel-graph cut enumeration,
// and partition vs clique-tree world sampling.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "pgsim/bounds/cond_sampler.h"
#include "pgsim/bounds/embedding_cuts.h"
#include "pgsim/bounds/max_clique.h"
#include "pgsim/bounds/sip_bounds.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/mcs.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/graph/signature.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/domain_index.h"
#include "pgsim/prob/dnf_exact.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/quadratic_program.h"
#include "pgsim/query/set_cover.h"
#include "pgsim/query/top_k.h"
#include "pgsim/query/verifier.h"
#include "pgsim/storage/wal.h"

namespace {

using namespace pgsim;

ProbabilisticGraph MakeBenchGraph(uint64_t seed, uint32_t vertices,
                                  double overlap = 0.0) {
  SyntheticOptions options;
  options.num_graphs = 1;
  options.avg_vertices = vertices;
  options.edge_factor = 1.5;
  options.num_vertex_labels = 5;
  options.overlap_fraction = overlap;
  options.seed = seed;
  Rng rng(seed);
  return GenerateGraph(options, &rng).value();
}

Graph MakeQuery(const Graph& source, uint32_t edges, uint64_t seed) {
  Rng rng(seed);
  return ExtractQuery(source, edges, &rng).value();
}

void BM_Vf2_FirstEmbedding(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(1, 24);
  const Graph q =
      MakeQuery(g.certain(), static_cast<uint32_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSubgraphIsomorphic(q, g.certain()));
  }
}
BENCHMARK(BM_Vf2_FirstEmbedding)->Arg(4)->Arg(8)->Arg(12);

void BM_Vf2_AllEmbeddings(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(3, 24);
  const Graph q = MakeQuery(g.certain(), 3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmbeddingEdgeSets(q, g.certain(), 0));
  }
}
BENCHMARK(BM_Vf2_AllEmbeddings);

// ---- Compiled matching engine: one pattern against many targets, the
// verifier/filter access shape. BM_Vf2_Enumerate runs the plan+scratch hot
// path (plan compiled once, zero steady-state allocation);
// BM_Vf2_EnumerateReference runs the retained pre-PR recursive engine on
// the identical workload — the before/after pair recorded in BENCH_5.json.
struct Vf2Fixture {
  std::vector<Graph> targets;
  Graph pattern;
};

const Vf2Fixture& GetVf2Fixture() {
  static const Vf2Fixture* fixture = [] {
    auto* f = new Vf2Fixture();
    SyntheticOptions options;
    options.num_graphs = 64;
    options.avg_vertices = 22;
    options.edge_factor = 1.5;
    options.num_vertex_labels = 4;
    options.seed = 60;
    auto db = GenerateDatabase(options).value();
    for (const auto& g : db) f->targets.push_back(g.certain());
    Rng rng(61);
    f->pattern = ExtractQuery(f->targets[0], 4, &rng).value();
    return f;
  }();
  return *fixture;
}

void BM_Vf2_Enumerate(benchmark::State& state) {
  const Vf2Fixture& f = GetVf2Fixture();
  const MatchPlan plan = CompileMatchPlan(f.pattern);
  Vf2Scratch scratch;
  Vf2Options options;
  size_t total = 0;
  for (auto _ : state) {
    for (const Graph& t : f.targets) {
      total += EnumerateEmbeddings(plan, t, options, &scratch,
                                   [](const Embedding&) { return true; });
    }
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(int64_t(state.iterations()) * f.targets.size());
  state.counters["embeddings"] =
      static_cast<double>(total) / std::max<int64_t>(1, state.iterations());
}
BENCHMARK(BM_Vf2_Enumerate);

void BM_Vf2_EnumerateReference(benchmark::State& state) {
  const Vf2Fixture& f = GetVf2Fixture();
  Vf2Options options;
  size_t total = 0;
  for (auto _ : state) {
    for (const Graph& t : f.targets) {
      total += EnumerateEmbeddingsReference(
          f.pattern, t, options, [](const Embedding&) { return true; });
    }
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(int64_t(state.iterations()) * f.targets.size());
  state.counters["embeddings"] =
      static_cast<double>(total) / std::max<int64_t>(1, state.iterations());
}
BENCHMARK(BM_Vf2_EnumerateReference);

void BM_Vf2_PlanCompile(benchmark::State& state) {
  const Vf2Fixture& f = GetVf2Fixture();
  const Graph q =
      MakeQuery(f.targets[0], static_cast<uint32_t>(state.range(0)), 62);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompileMatchPlan(q));
  }
}
BENCHMARK(BM_Vf2_PlanCompile)->Arg(4)->Arg(8)->Arg(12);

// ---- Signature gate (PR 10): the cover test that rejects barren
// (pattern, target) pairs before VF2, and the matched before/after pair for
// domain-seeded matching — BM_Vf2_DomainSeeded/0 runs the plain compiled
// matcher over a label-diverse database, /1 runs the identical workload
// through BuildCandidateDomains + domain-restricted matching (the stage-3
// shape with signatures on). Recorded in BENCH_10.json.
struct SignatureFixture {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> targets;
  Graph pattern;
  MatchPlan plan;
  SignatureIndex sigs;
  QuerySignature pattern_sig;
};

const SignatureFixture& GetSignatureFixture() {
  static const SignatureFixture* fixture = [] {
    auto* f = new SignatureFixture();
    SyntheticOptions options;
    options.num_graphs = 64;
    options.avg_vertices = 22;
    options.edge_factor = 1.5;
    options.num_vertex_labels = 10;  // label-diverse: the gate's home turf
    options.seed = 70;
    f->db = GenerateDatabase(options).value();
    for (const auto& g : f->db) f->targets.push_back(g.certain());
    Rng rng(71);
    f->pattern = ExtractQuery(f->targets[0], 5, &rng).value();
    f->plan = CompileMatchPlan(f->pattern);
    f->sigs = SignatureIndex::Build(f->db);
    f->pattern_sig = BuildQuerySignature(f->pattern);
    return f;
  }();
  return *fixture;
}

void BM_Signature_CoverTest(benchmark::State& state) {
  const SignatureFixture& f = GetSignatureFixture();
  size_t covered = 0, pairs = 0;
  for (auto _ : state) {
    for (uint32_t gi = 0; gi < f.targets.size(); ++gi) {
      covered += SignatureCoverTest(f.pattern, f.pattern_sig.view(),
                                    f.targets[gi], f.sigs.ForGraph(gi));
      ++pairs;
    }
  }
  benchmark::DoNotOptimize(covered);
  state.SetItemsProcessed(int64_t(state.iterations()) * f.targets.size());
  state.counters["cover_rate"] =
      pairs == 0 ? 0.0 : static_cast<double>(covered) / pairs;
}
BENCHMARK(BM_Signature_CoverTest);

void BM_Vf2_DomainSeeded(benchmark::State& state) {
  const SignatureFixture& f = GetSignatureFixture();
  const bool use_domains = state.range(0) != 0;
  Vf2Scratch scratch;
  size_t matched = 0, vf2_calls = 0;
  for (auto _ : state) {
    for (uint32_t gi = 0; gi < f.targets.size(); ++gi) {
      if (use_domains) {
        uint64_t pruned = 0;
        if (!BuildCandidateDomains(f.pattern, f.pattern_sig.view(),
                                   f.targets[gi], f.sigs.ForGraph(gi),
                                   &scratch.domains, &pruned)) {
          continue;  // barren pair: the matcher never runs
        }
        ++vf2_calls;
        matched += IsSubgraphIsomorphic(f.plan, f.targets[gi], &scratch,
                                        &scratch.domains);
      } else {
        ++vf2_calls;
        matched += IsSubgraphIsomorphic(f.plan, f.targets[gi], &scratch);
      }
    }
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(int64_t(state.iterations()) * f.targets.size());
  state.counters["vf2_calls_per_iter"] =
      static_cast<double>(vf2_calls) /
      std::max<int64_t>(1, state.iterations());
}
BENCHMARK(BM_Vf2_DomainSeeded)->Arg(0)->Arg(1);

void BM_Mcs_SubgraphDistance(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(5, 14);
  const Graph q = MakeQuery(g.certain(), 5, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubgraphDistance(q, g.certain()));
  }
}
BENCHMARK(BM_Mcs_SubgraphDistance);

void BM_Relaxation_GenerateU(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(7, 20);
  const Graph q =
      MakeQuery(g.certain(), static_cast<uint32_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateRelaxedQueries(q, 2));
  }
}
BENCHMARK(BM_Relaxation_GenerateU)->Arg(6)->Arg(10);

void BM_WorldSample_Partition(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(9, 30);
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.SampleWorld(&rng));
  }
}
BENCHMARK(BM_WorldSample_Partition);

void BM_WorldSample_CliqueTree(benchmark::State& state) {
  // Ablation partner of BM_WorldSample_Partition: overlapping ne sets force
  // the clique-tree sampler.
  const ProbabilisticGraph g = MakeBenchGraph(9, 30, /*overlap=*/0.5);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.SampleWorld(&rng));
  }
}
BENCHMARK(BM_WorldSample_CliqueTree);

void BM_DnfExact_Partition(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(13, 16);
  const Graph q = MakeQuery(g.certain(), 4, 14);
  const auto relaxed = GenerateRelaxedQueries(q, 1).value();
  VerifierOptions options;
  const auto events = CollectSimilarityEvents(g, relaxed, options).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactDnfProbability(g, events));
  }
}
BENCHMARK(BM_DnfExact_Partition);

void BM_CondSampler_Algorithm3(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(15, 20);
  const Graph f = MakeQuery(g.certain(), 2, 16);
  const auto embeddings = EmbeddingEdgeSets(f, g.certain(), 64);
  EdgeEvent target{embeddings[0], true};
  std::vector<EdgeEvent> conditioning;
  for (size_t i = 1; i < embeddings.size() && i < 8; ++i) {
    conditioning.push_back(EdgeEvent{embeddings[i], true});
  }
  MonteCarloParams params;
  params.min_samples = 500;
  params.max_samples = 500;
  Rng rng(17);
  CondSamplerScratch scratch;  // steady-state: world buffer reused per call
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateConditionalProbability(
        g, target, conditioning, params, &rng, &scratch));
  }
}
BENCHMARK(BM_CondSampler_Algorithm3);

void BM_Cuts_HittingSet(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(19, 22);
  const Graph f = MakeQuery(g.certain(), 2, 20);
  const auto embeddings = EmbeddingEdgeSets(f, g.certain(), 512);
  CutEnumOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EnumerateMinimalEmbeddingCuts(embeddings, g.NumEdges(), options));
  }
}
BENCHMARK(BM_Cuts_HittingSet);

void BM_Cuts_ParallelGraph(benchmark::State& state) {
  // Ablation partner of BM_Cuts_HittingSet: Theorem 6's cG formulation
  // (exponential label-subset search; reference implementation).
  const ProbabilisticGraph g = MakeBenchGraph(19, 22);
  const Graph f = MakeQuery(g.certain(), 2, 20);
  auto embeddings = EmbeddingEdgeSets(f, g.certain(), 512);
  if (embeddings.size() > 4) embeddings.resize(4);  // keep tractable
  const ParallelGraph cg = BuildParallelGraph(embeddings);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateParallelGraphCuts(cg, g.NumEdges(), 4));
  }
}
BENCHMARK(BM_Cuts_ParallelGraph);

void BM_MaxWeightClique(benchmark::State& state) {
  Rng rng(23);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<char>> adj(n, std::vector<char>(n, 0));
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = rng.UniformDouble();
    for (size_t j = i + 1; j < n; ++j) {
      adj[i][j] = adj[j][i] = rng.Bernoulli(0.4);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightClique(adj, weights));
  }
}
BENCHMARK(BM_MaxWeightClique)->Arg(16)->Arg(32);

void BM_SipBounds_Full(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(29, 18);
  const Graph f = MakeQuery(g.certain(), 3, 30);
  SipBoundOptions options;
  options.mc.min_samples = 300;
  options.mc.max_samples = 300;
  Rng rng(31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSipBounds(g, f, options, &rng));
  }
}
BENCHMARK(BM_SipBounds_Full);

void BM_SetCover_Greedy(benchmark::State& state) {
  Rng rng(37);
  std::vector<WeightedSet> sets;
  const size_t universe = 40;
  for (uint32_t i = 0; i < 120; ++i) {
    WeightedSet s;
    s.id = i;
    s.weight = rng.UniformDouble();
    for (uint32_t e = 0; e < universe; ++e) {
      if (rng.Bernoulli(0.15)) s.elements.push_back(e);
    }
    sets.push_back(std::move(s));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyWeightedSetCover(universe, sets));
  }
}
BENCHMARK(BM_SetCover_Greedy);

void BM_Lsim_QpSolve(benchmark::State& state) {
  Rng seed_rng(41);
  std::vector<QpWeightedSet> sets;
  const size_t universe = 20;
  for (uint32_t i = 0; i < 40; ++i) {
    QpWeightedSet s;
    s.id = i;
    s.wl = seed_rng.UniformDouble() * 0.4;
    s.wu = s.wl + seed_rng.UniformDouble() * 0.2;
    for (uint32_t e = 0; e < universe; ++e) {
      if (seed_rng.Bernoulli(0.2)) s.elements.push_back(e);
    }
    sets.push_back(std::move(s));
  }
  Rng rng(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveTightestLsim(universe, sets, LsimOptions(), &rng));
  }
}
BENCHMARK(BM_Lsim_QpSolve);

void BM_Verify_Smp(benchmark::State& state) {
  const ProbabilisticGraph g = MakeBenchGraph(47, 18);
  const Graph q = MakeQuery(g.certain(), 5, 48);
  const auto relaxed = GenerateRelaxedQueries(q, 1).value();
  VerifierOptions options;
  options.mc.min_samples = 2000;
  options.mc.max_samples = 2000;
  Rng rng(49);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SampleSubgraphSimilarityProbability(g, relaxed, options, &rng));
  }
}
BENCHMARK(BM_Verify_Smp);

void BM_Verify_SmpAdaptive(benchmark::State& state) {
  // Ablation partner of BM_Verify_Smp: the DKLR stopping rule stops as soon
  // as enough canonical hits accumulate — early for high-SSP candidates
  // (delta = 2 here makes the union probability large), at the cap for
  // low-SSP ones.
  const ProbabilisticGraph g = MakeBenchGraph(47, 18);
  const Graph q = MakeQuery(g.certain(), 5, 48);
  const auto relaxed = GenerateRelaxedQueries(q, 2).value();
  VerifierOptions options;
  options.adaptive = true;
  options.mc.xi = 0.1;
  options.mc.tau = 0.15;
  options.mc.max_samples = 2000;
  Rng rng(49);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SampleSubgraphSimilarityProbability(g, relaxed, options, &rng));
  }
}
BENCHMARK(BM_Verify_SmpAdaptive);

// ---- Verification engine (PR 3): the fig09 verification workload ----
// ---- (Section-6 generator defaults, one qsize-8 query at delta=2,   ----
// ---- candidates from the full filter chain) driven through the      ----
// ---- scratch-threaded collector and the support-restricted          ----
// ---- Karp-Luby sampler at 1, 4, and all hardware threads.           ----

struct VerifierFixture {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
  std::vector<Graph> relaxed;
  std::vector<uint32_t> to_verify;
  VerifierOptions verifier;
};

const VerifierFixture& GetVerifierFixture() {
  static const VerifierFixture* fixture = [] {
    auto* f = new VerifierFixture();
    SyntheticOptions dataset;
    dataset.num_graphs = 60;
    dataset.avg_vertices = 14;
    dataset.edge_factor = 1.5;
    dataset.num_vertex_labels = 6;
    dataset.mean_edge_prob = 0.383;
    dataset.seed = 42;
    f->db = GenerateDatabase(dataset).value();
    PmiBuildOptions build;
    build.miner.alpha = 0.15;
    build.miner.beta = 0.15;
    build.miner.gamma = -1.0;
    build.miner.max_vertices = 4;
    build.sip.mc.min_samples = 600;
    build.sip.mc.max_samples = 600;
    f->pmi = ProbabilisticMatrixIndex::Build(f->db, build).value();
    for (const auto& g : f->db) f->certain.push_back(g.certain());
    f->filter = StructuralFilter::Build(f->certain, f->pmi.features());
    Rng rng(43);
    Graph q;
    for (;;) {
      auto candidate =
          ExtractQuery(f->certain[rng.Uniform(f->certain.size())], 8, &rng);
      if (candidate.ok()) {
        q = std::move(candidate).value();
        break;
      }
    }
    f->relaxed = GenerateRelaxedQueries(q, 2).value();
    const auto sc_q = f->filter.Filter(q, f->relaxed, 2, nullptr);
    ProbabilisticPruner pruner(&f->pmi, ProbPrunerOptions());
    pruner.PrepareQuery(f->relaxed);
    f->verifier.mc.min_samples = 3000;
    f->verifier.mc.max_samples = 3000;
    for (uint32_t gi : sc_q) {
      if (pruner.Evaluate(gi, 0.15, &rng).outcome != PruneOutcome::kCandidate) {
        continue;
      }
      // Keep only candidates the sampler can actually verify.
      VerifierScratch scratch;
      if (CollectSimilarityEvents(f->db[gi], f->relaxed, f->verifier, &scratch)
              .ok()) {
        f->to_verify.push_back(gi);
      }
    }
    return f;
  }();
  return *fixture;
}

void BM_Verifier_CollectEvents(benchmark::State& state) {
  // Mirrors stage 3's production shape: the processor compiles one plan per
  // relaxed query up front (shared through the batch cache) and every
  // candidate's collection reuses them.
  const VerifierFixture& f = GetVerifierFixture();
  std::vector<MatchPlan> plans;
  plans.reserve(f.relaxed.size());
  for (const Graph& rq : f.relaxed) plans.push_back(CompileMatchPlan(rq));
  VerifierScratch scratch;
  for (auto _ : state) {
    for (uint32_t gi : f.to_verify) {
      benchmark::DoNotOptimize(CollectSimilarityEvents(
          f.db[gi], f.relaxed, f.verifier, &scratch, &plans));
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * f.to_verify.size());
  state.counters["candidates"] = static_cast<double>(f.to_verify.size());
}
BENCHMARK(BM_Verifier_CollectEvents);

void BM_Verifier_SampleSsp(benchmark::State& state) {
  // One iteration = stage 3 of one query: per-candidate RNGs pre-forked
  // sequentially, candidates fanned across the pool with one scratch per
  // rank. Identical SSP estimates at every thread count (ssp_sum pins it).
  const VerifierFixture& f = GetVerifierFixture();
  const uint32_t threads = state.range(0) == 0
                               ? ThreadPool::DefaultThreads()
                               : static_cast<uint32_t>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  std::vector<VerifierScratch> scratches(threads);
  std::vector<Rng> rngs;
  std::vector<double> ssp(f.to_verify.size());
  double checksum = 0.0;
  for (auto _ : state) {
    Rng base(49);
    rngs.clear();
    for (size_t k = 0; k < f.to_verify.size(); ++k) rngs.push_back(base.Fork());
    auto verify_one = [&](size_t k, VerifierScratch* scratch) {
      auto r = SampleSubgraphSimilarityProbability(
          f.db[f.to_verify[k]], f.relaxed, f.verifier, &rngs[k], scratch);
      ssp[k] = r.ok() ? *r : 0.0;
    };
    if (pool == nullptr) {
      for (size_t k = 0; k < f.to_verify.size(); ++k) {
        verify_one(k, &scratches[0]);
      }
    } else {
      pool->ParallelFor(f.to_verify.size(), 1,
                        [&](uint32_t rank, size_t begin, size_t end) {
                          for (size_t k = begin; k < end; ++k) {
                            verify_one(k, &scratches[rank]);
                          }
                        });
    }
    for (double s : ssp) checksum += s;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * f.to_verify.size());
  state.counters["candidates"] = static_cast<double>(f.to_verify.size());
  state.counters["ssp_sum"] =
      checksum / std::max<int64_t>(1, state.iterations());
}
BENCHMARK(BM_Verifier_SampleSsp)
    ->Arg(1)
    ->Arg(4)
    ->Arg(0)  // 0 = all hardware threads
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TopK_Query(benchmark::State& state) {
  SyntheticOptions dataset;
  dataset.num_graphs = 30;
  dataset.avg_vertices = 12;
  dataset.num_vertex_labels = 5;
  dataset.seed = 53;
  const auto db = GenerateDatabase(dataset).value();
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 500;
  build.sip.mc.max_samples = 500;
  const auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  Rng qrng(54);
  const Graph q = ExtractQuery(db[0].certain(), 5, &qrng).value();
  TopKOptions options;
  options.k = 5;
  options.delta = 1;
  options.verifier.mc.min_samples = 1000;
  options.verifier.mc.max_samples = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopKQuery(db, pmi, nullptr, q, options));
  }
}
BENCHMARK(BM_TopK_Query);

// ---- Adjacency layout ablation: flat CSR scan vs the pre-refactor ----
// ---- vector-of-vectors layout rebuilt from the same graph.          ----

Graph MakeScanGraph() {
  SyntheticOptions options;
  options.num_graphs = 1;
  options.avg_vertices = 2000;
  options.edge_factor = 4.0;
  options.num_vertex_labels = 8;
  options.seed = 61;
  Rng rng(61);
  return GenerateGraph(options, &rng).value().certain();
}

void BM_Adjacency_ScanCsr(benchmark::State& state) {
  const Graph g = MakeScanGraph();
  for (auto _ : state) {
    uint64_t acc = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (const AdjEntry& a : g.Neighbors(v)) {
        acc += a.neighbor + g.EdgeLabel(a.edge);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 2 * g.NumEdges());
}
BENCHMARK(BM_Adjacency_ScanCsr);

void BM_Adjacency_ScanNestedVectors(benchmark::State& state) {
  // The seed repo's layout: one heap-allocated vector per vertex.
  const Graph g = MakeScanGraph();
  std::vector<std::vector<AdjEntry>> nested(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto adj = g.Neighbors(v);
    nested[v].assign(adj.begin(), adj.end());
  }
  for (auto _ : state) {
    uint64_t acc = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (const AdjEntry& a : nested[v]) {
        acc += a.neighbor + g.EdgeLabel(a.edge);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 2 * g.NumEdges());
}
BENCHMARK(BM_Adjacency_ScanNestedVectors);

// ---- Batch throughput: QueryBatch at 1, 4, and hardware threads. ----

struct BatchFixture {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
  std::vector<Graph> queries;
};

const BatchFixture& GetBatchFixture() {
  static const BatchFixture* fixture = [] {
    auto* f = new BatchFixture();
    SyntheticOptions dataset;
    dataset.num_graphs = 60;
    dataset.avg_vertices = 12;
    dataset.num_vertex_labels = 5;
    dataset.seed = 67;
    f->db = GenerateDatabase(dataset).value();
    PmiBuildOptions build;
    build.miner.beta = 0.2;
    build.miner.gamma = -1.0;
    build.miner.max_vertices = 3;
    build.sip.mc.min_samples = 300;
    build.sip.mc.max_samples = 300;
    f->pmi = ProbabilisticMatrixIndex::Build(f->db, build).value();
    for (const auto& g : f->db) f->certain.push_back(g.certain());
    f->filter = StructuralFilter::Build(f->certain, f->pmi.features());
    Rng qrng(68);
    for (int i = 0; i < 24; ++i) {
      const auto& source = f->db[qrng.Uniform(f->db.size())].certain();
      f->queries.push_back(ExtractQuery(source, 5, &qrng).value());
    }
    return f;
  }();
  return *fixture;
}

void BM_QueryBatch_Throughput(benchmark::State& state) {
  const BatchFixture& f = GetBatchFixture();
  const QueryProcessor processor(&f.db, &f.pmi, &f.filter);
  QueryOptions options;
  options.delta = 1;
  options.verifier.mc.min_samples = 500;
  options.verifier.mc.max_samples = 500;
  BatchOptions batch;
  batch.num_threads = static_cast<uint32_t>(state.range(0));
  size_t answers = 0;
  for (auto _ : state) {
    BatchStats stats;
    const auto results =
        processor.QueryBatch(f.queries, options, batch, &stats);
    answers += stats.total_answers;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * f.queries.size());
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_QueryBatch_Throughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(0)  // 0 = all hardware threads
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Cold start: the full offline pipeline (mine -> PMI -> filter) at ----
// ---- 1, 4, and hardware threads. The built index is bit-identical at  ----
// ---- every thread count (parallel_build_test), so this isolates pure  ----
// ---- build speedup.                                                   ----

const std::vector<ProbabilisticGraph>& GetColdStartDatabase() {
  static const std::vector<ProbabilisticGraph>* db = [] {
    SyntheticOptions dataset;
    dataset.num_graphs = 40;
    dataset.avg_vertices = 14;
    dataset.num_vertex_labels = 5;
    dataset.seed = 71;
    return new std::vector<ProbabilisticGraph>(
        GenerateDatabase(dataset).value());
  }();
  return *db;
}

void BM_ColdStart_IndexBuild(benchmark::State& state) {
  const auto& db = GetColdStartDatabase();
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 4;
  build.sip.mc.min_samples = 300;
  build.sip.mc.max_samples = 300;
  build.num_threads = static_cast<uint32_t>(state.range(0));
  StructuralFilterOptions filter_options;
  filter_options.num_threads = build.num_threads;
  double mining_seconds = 0.0, bounds_seconds = 0.0;
  for (auto _ : state) {
    const auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
    const auto filter =
        StructuralFilter::Build(certain, pmi.features(), filter_options);
    mining_seconds += pmi.stats().mining_seconds;
    bounds_seconds += pmi.stats().bounds_seconds;
    benchmark::DoNotOptimize(filter.num_graphs());
  }
  state.counters["mining_s"] = mining_seconds / state.iterations();
  state.counters["bounds_s"] = bounds_seconds / state.iterations();
}
BENCHMARK(BM_ColdStart_IndexBuild)
    ->Arg(1)
    ->Arg(4)
    ->Arg(0)  // 0 = all hardware threads
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Batch cache: a workload-shaped batch (each query duplicated 4x,  ----
// ---- as repeated user queries are) with the relaxation/feature-count  ----
// ---- cache on vs off. Answers are bit-identical either way.           ----

void BM_QueryBatch_RelaxationCache(benchmark::State& state) {
  const BatchFixture& f = GetBatchFixture();
  const QueryProcessor processor(&f.db, &f.pmi, &f.filter);
  // 8-edge queries at delta=2 make the cached stages (C(8,2) deletion sets
  // with VF2 dedup + per-feature embedding counting) the dominant per-query
  // cost; light verification sampling keeps the uncachable tail small so
  // the measurement isolates what the cache can save.
  Rng qrng(69);
  std::vector<Graph> repeated;
  while (repeated.size() < 96) {
    const auto& source = f.db[qrng.Uniform(f.db.size())].certain();
    auto q = ExtractQuery(source, 8, &qrng);
    if (!q.ok()) continue;
    for (int copy = 0; copy < 4; ++copy) repeated.push_back(*q);
  }
  QueryOptions options;
  options.delta = 2;
  options.verifier.mc.min_samples = 50;
  options.verifier.mc.max_samples = 50;
  BatchOptions batch;
  batch.num_threads = 1;
  batch.enable_cache = state.range(0) != 0;
  size_t hits = 0;
  for (auto _ : state) {
    BatchStats stats;
    const auto results =
        processor.QueryBatch(repeated, options, batch, &stats);
    hits += stats.relax_cache_hits;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * repeated.size());
  state.counters["relax_hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_QueryBatch_RelaxationCache)
    ->Arg(0)  // cache off (cold path baseline)
    ->Arg(1)  // cache on
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Skewed batch (PR 6): mostly-cheap queries plus a few pathological  ----
// ---- ones, under the chunked vs work-stealing batch schedulers. Small   ----
// ---- queries are the expensive ones here — nearly every database graph  ----
// ---- survives the structural filter, so each drags dozens of Karp-Luby  ----
// ---- verifications behind it — and they sit adjacent at the front of    ----
// ---- the batch, so under the chunked scheduler one worker's chunk       ----
// ---- swallows all of them while the rest of the pool drains the cheap   ----
// ---- tail and idles. The stealing scheduler splits the hot queries'     ----
// ---- candidates across idle workers. Answers are bit-identical.         ----

const std::vector<Graph>& GetSkewedQueries() {
  static const std::vector<Graph>* queries = [] {
    const BatchFixture& f = GetBatchFixture();
    auto* qs = new std::vector<Graph>();
    Rng qrng(70);
    // 3 pathological queries: 3-edge extracts match most of the database.
    while (qs->size() < 3) {
      const auto& source = f.db[qrng.Uniform(f.db.size())].certain();
      auto q = ExtractQuery(source, 3, &qrng);
      if (q.ok()) qs->push_back(std::move(q).value());
    }
    // 21 cheap queries: 7-edge extracts keep few verification candidates.
    while (qs->size() < 24) {
      const auto& source = f.db[qrng.Uniform(f.db.size())].certain();
      auto q = ExtractQuery(source, 7, &qrng);
      if (q.ok()) qs->push_back(std::move(q).value());
    }
    return qs;
  }();
  return *queries;
}

void BM_QueryBatch_Skew(benchmark::State& state) {
  const BatchFixture& f = GetBatchFixture();
  const std::vector<Graph>& queries = GetSkewedQueries();
  const QueryProcessor processor(&f.db, &f.pmi, &f.filter);
  QueryOptions options;
  options.delta = 1;
  options.verifier.mc.min_samples = 1000;
  options.verifier.mc.max_samples = 1000;
  BatchOptions batch;
  batch.scheduler = state.range(0) != 0 ? BatchOptions::Scheduler::kStealing
                                        : BatchOptions::Scheduler::kChunked;
  batch.num_threads = static_cast<uint32_t>(state.range(1));
  size_t answers = 0;
  size_t stolen = 0;
  for (auto _ : state) {
    BatchStats stats;
    const auto results =
        processor.QueryBatch(queries, options, batch, &stats);
    answers += stats.total_answers;
    stolen += stats.tasks_stolen;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * queries.size());
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["stolen"] = static_cast<double>(stolen);
}
BENCHMARK(BM_QueryBatch_Skew)
    ->Args({0, 1})  // chunked, 1 thread
    ->Args({0, 4})  // chunked, 4 threads
    ->Args({0, 0})  // chunked, all hardware threads
    ->Args({1, 1})  // stealing, 1 thread
    ->Args({1, 4})  // stealing, 4 threads
    ->Args({1, 0})  // stealing, all hardware threads
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- ThreadPool submission wake-up cost (PR 6 satellite): a burst of   ----
// ---- trivial tasks via one Submit per task (a futex notify each) vs a  ----
// ---- single SubmitMany (one lock, one notify_all).                     ----

void BM_ThreadPool_SubmitBurst(benchmark::State& state) {
  ThreadPool pool(4);
  constexpr int kBurst = 64;
  std::atomic<int> sink{0};
  for (auto _ : state) {
    if (state.range(0) == 0) {
      for (int i = 0; i < kBurst; ++i) {
        pool.Submit([&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
      }
    } else {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(kBurst);
      for (int i = 0; i < kBurst; ++i) {
        tasks.push_back(
            [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.SubmitMany(std::move(tasks));
    }
    pool.Wait();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kBurst);
  state.counters["ran"] = static_cast<double>(sink.load());
}
BENCHMARK(BM_ThreadPool_SubmitBurst)
    ->Arg(0)  // per-task Submit + notify_one
    ->Arg(1)  // bulk SubmitMany + one notify_all
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// ---- Live-database maintenance (PR 7): one AddGraph/RemoveGraph round   ----
// ---- trip on indexes of different sizes. AddGraph appends a column in   ----
// ---- place (feature containment + SIP bounds for the new graph only),   ----
// ---- so per-add cost must be independent of the database size — the     ----
// ---- regression this bench pins is the old rematerialize-all-columns    ----
// ---- path, whose cost scaled O(num_graphs x features). Compaction of    ----
// ---- the accumulated tombstones runs outside the timed region.          ----

ProbabilisticMatrixIndex& GetMaintenancePmi(size_t num_graphs) {
  static auto* cache = new std::map<size_t, ProbabilisticMatrixIndex*>();
  auto it = cache->find(num_graphs);
  if (it == cache->end()) {
    SyntheticOptions dataset;
    dataset.num_graphs = num_graphs;
    dataset.avg_vertices = 12;
    dataset.num_vertex_labels = 5;
    dataset.seed = 90;
    auto db = GenerateDatabase(dataset).value();
    PmiBuildOptions build;
    build.miner.beta = 0.2;
    build.miner.gamma = -1.0;
    build.miner.max_vertices = 3;
    build.sip.mc.min_samples = 300;
    build.sip.mc.max_samples = 300;
    auto* pmi = new ProbabilisticMatrixIndex(
        ProbabilisticMatrixIndex::Build(db, build).value());
    it = cache->emplace(num_graphs, pmi).first;
  }
  return *it->second;
}

void BM_Pmi_AddGraph(benchmark::State& state) {
  ProbabilisticMatrixIndex& pmi =
      GetMaintenancePmi(static_cast<size_t>(state.range(0)));
  const ProbabilisticGraph extra = MakeBenchGraph(91, 12);
  const SipBoundOptions sip = pmi.sip_options();
  int since_compact = 0;
  for (auto _ : state) {
    auto id = pmi.AddGraph(extra, sip, 7);
    benchmark::DoNotOptimize(id);
    if (id.ok()) {
      const Status removed = pmi.RemoveGraph(*id);
      benchmark::DoNotOptimize(removed.ok());
    }
    if (++since_compact == 64) {
      state.PauseTiming();
      pmi.Compact();
      since_compact = 0;
      state.ResumeTiming();
    }
  }
  pmi.Compact();
  state.SetItemsProcessed(state.iterations());
  state.counters["features"] = static_cast<double>(pmi.num_features());
  state.counters["graphs"] = static_cast<double>(pmi.num_graphs());
}
BENCHMARK(BM_Pmi_AddGraph)
    ->Arg(64)   // small index
    ->Arg(512)  // 8x the graphs: per-add time must stay flat
    ->Unit(benchmark::kMicrosecond);

// ---- Cross-batch answer cache (PR 7): the same 24-query batch served    ----
// ---- cold (full pipeline every pass) vs warm (every answer from the     ----
// ---- AnswerCache after the first pass) — the serving-loop speedup the   ----
// ---- cache exists for. Answers are bit-identical in both modes.         ----

void BM_AnswerCache_HitRate(benchmark::State& state) {
  const BatchFixture& f = GetBatchFixture();
  const QueryProcessor processor(&f.db, &f.pmi, &f.filter);
  QueryOptions options;
  options.delta = 1;
  options.verifier.mc.min_samples = 300;
  options.verifier.mc.max_samples = 300;
  BatchOptions batch;
  batch.num_threads = 1;
  AnswerCache cache;
  if (state.range(0) != 0) {
    batch.answer_cache = &cache;
    // Warm pass outside the timed region: fills every slot.
    processor.QueryBatch(f.queries, options, batch);
  }
  size_t hits = 0;
  for (auto _ : state) {
    BatchStats stats;
    const auto results = processor.QueryBatch(f.queries, options, batch, &stats);
    hits += stats.answer_cache_hits;
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * f.queries.size());
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_AnswerCache_HitRate)
    ->Arg(0)  // cold: no answer cache
    ->Arg(1)  // warm: every query served from the cache
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- Columnar filter/prune engine (PR 4): a fig10-style workload       ----
// ---- (Section-6 generator defaults, qsize-6 queries at delta=1) driven ----
// ---- through stage 1's count scan and stage 2's per-candidate bound    ----
// ---- evaluation — the two loops the feature-major layouts accelerate.  ----

struct FilterPrunerFixture {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter count_filter;  // exact_check off
  std::vector<Graph> queries;
  std::vector<std::vector<Graph>> relaxed;  // per query
  std::vector<std::vector<uint32_t>> sc_q;  // per query survivors
};

const FilterPrunerFixture& GetFilterPrunerFixture() {
  static const FilterPrunerFixture* fixture = [] {
    auto* f = new FilterPrunerFixture();
    SyntheticOptions dataset;
    dataset.num_graphs = 150;
    dataset.avg_vertices = 12;
    dataset.edge_factor = 1.4;
    dataset.num_vertex_labels = 5;
    dataset.seed = 81;
    f->db = GenerateDatabase(dataset).value();
    PmiBuildOptions build;
    build.miner.beta = 0.15;
    build.miner.gamma = -1.0;
    build.miner.max_vertices = 4;
    build.sip.mc.min_samples = 200;
    build.sip.mc.max_samples = 200;
    f->pmi = ProbabilisticMatrixIndex::Build(f->db, build).value();
    for (const auto& g : f->db) f->certain.push_back(g.certain());
    StructuralFilterOptions filter_options;
    filter_options.exact_check = false;
    f->count_filter =
        StructuralFilter::Build(f->certain, f->pmi.features(), filter_options);
    Rng qrng(82);
    while (f->queries.size() < 8) {
      auto q = ExtractQuery(f->certain[qrng.Uniform(f->certain.size())], 6,
                            &qrng);
      if (!q.ok()) continue;
      auto relaxed = GenerateRelaxedQueries(*q, 1);
      if (!relaxed.ok()) continue;
      f->queries.push_back(std::move(q).value());
      f->relaxed.push_back(std::move(relaxed).value());
      f->sc_q.push_back(f->count_filter.Filter(f->queries.back(),
                                               f->relaxed.back(), 1));
    }
    return f;
  }();
  return *fixture;
}

// The count scan's own fixture scales the database to the regime the
// columnar layout targets (the filter sweeps the whole database per
// query). Features are hand-built single-edge / 2-path label patterns with
// VF2-computed support — the same structures the miner emits, minus the
// mining cost, so the 4000-graph fixture builds in seconds.
struct FilterScanFixture {
  std::vector<Graph> certain;
  std::vector<Feature> features;
  StructuralFilter filter;  // exact_check off: isolates the scan
  std::vector<Graph> queries;
  std::vector<QueryFeatureCounts> query_counts;
  std::vector<Graph> empty_relaxed;  // unused when exact_check is off
};

const FilterScanFixture& GetFilterScanFixture() {
  static const FilterScanFixture* fixture = [] {
    auto* f = new FilterScanFixture();
    SyntheticOptions dataset;
    dataset.num_graphs = 4000;
    dataset.avg_vertices = 12;
    dataset.edge_factor = 1.4;
    dataset.num_vertex_labels = 5;
    dataset.seed = 91;
    const auto db = GenerateDatabase(dataset).value();
    for (const auto& g : db) f->certain.push_back(g.certain());
    const uint32_t labels = dataset.num_vertex_labels;
    std::vector<Graph> patterns;
    for (uint32_t a = 0; a < labels; ++a) {
      for (uint32_t b = a; b < labels; ++b) {
        GraphBuilder builder;
        const VertexId u = builder.AddVertex(a);
        const VertexId v = builder.AddVertex(b);
        (void)builder.AddEdge(u, v, 0);
        patterns.push_back(builder.Build());
      }
    }
    for (uint32_t a = 0; a < labels; ++a) {
      for (uint32_t b = 0; b < labels; ++b) {
        for (uint32_t c = a; c < labels; ++c) {
          GraphBuilder builder;
          const VertexId u = builder.AddVertex(a);
          const VertexId m = builder.AddVertex(b);
          const VertexId v = builder.AddVertex(c);
          (void)builder.AddEdge(u, m, 0);
          (void)builder.AddEdge(m, v, 0);
          patterns.push_back(builder.Build());
        }
      }
    }
    for (Graph& pattern : patterns) {
      Feature feature;
      feature.graph = std::move(pattern);
      for (uint32_t gi = 0; gi < f->certain.size(); ++gi) {
        if (IsSubgraphIsomorphic(feature.graph, f->certain[gi])) {
          feature.support.push_back(gi);
        }
      }
      if (!feature.support.empty()) f->features.push_back(std::move(feature));
    }
    StructuralFilterOptions filter_options;
    filter_options.exact_check = false;
    f->filter =
        StructuralFilter::Build(f->certain, f->features, filter_options);
    Rng qrng(92);
    while (f->queries.size() < 8) {
      auto q = ExtractQuery(f->certain[qrng.Uniform(f->certain.size())], 6,
                            &qrng);
      if (!q.ok()) continue;
      f->queries.push_back(std::move(q).value());
      f->query_counts.push_back(
          f->filter.ComputeQueryCounts(f->queries.back()));
    }
    return f;
  }();
  return *fixture;
}

void BM_Filter_CountScan(benchmark::State& state) {
  // One iteration = stage 1's count filter for every fixture query, with
  // the per-query feature counts precomputed (a batch-cache hit), so the
  // measurement isolates the database-wide threshold sweep itself.
  const FilterScanFixture& f = GetFilterScanFixture();
  StructuralFilterScratch scratch;
  std::vector<uint32_t> survivors;
  size_t total = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < f.queries.size(); ++i) {
      f.filter.Filter(f.queries[i], f.empty_relaxed, 1, &survivors, &scratch,
                      nullptr, &f.query_counts[i], nullptr);
      total += survivors.size();
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * f.queries.size() *
                          f.certain.size());
  state.counters["survivors"] =
      static_cast<double>(total) / std::max<int64_t>(1, state.iterations());
}
BENCHMARK(BM_Filter_CountScan);

void BM_Pruner_Evaluate(benchmark::State& state) {
  // One iteration = stage 2 for every fixture query: prepared relations,
  // then one bound evaluation per structural candidate. The scratch keeps
  // the per-candidate path allocation-free.
  const FilterPrunerFixture& f = GetFilterPrunerFixture();
  std::vector<ProbabilisticPruner> pruners;
  for (size_t i = 0; i < f.queries.size(); ++i) {
    pruners.emplace_back(&f.pmi, ProbPrunerOptions());
    pruners.back().PrepareQuery(f.relaxed[i]);
  }
  PrunerScratch scratch;
  size_t candidates = 0, pruned = 0;
  for (auto _ : state) {
    Rng rng(83);
    for (size_t i = 0; i < f.queries.size(); ++i) {
      for (uint32_t gi : f.sc_q[i]) {
        ++candidates;
        const PruneDecision d = pruners[i].Evaluate(gi, 0.4, &rng, &scratch);
        pruned += d.outcome == PruneOutcome::kPruned;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(candidates));
  state.counters["pruned_frac"] =
      candidates == 0 ? 0.0
                      : static_cast<double>(pruned) /
                            static_cast<double>(candidates);
}
BENCHMARK(BM_Pruner_Evaluate);

void BM_Wal_Append(benchmark::State& state) {
  // One iteration = one durable mutation record: encode, single write(),
  // fsync. Arg is the payload kind: 0 = RemoveGraph (12-byte payload, the
  // fsync floor), 1 = AddGraph of a ~12-vertex probabilistic graph (the
  // realistic live-insert record).
  const std::string path = "/tmp/pgsim_bench_wal.log";
  std::remove(path.c_str());
  std::vector<WalRecord> records;
  auto wal = WriteAheadLog::Open(path, &records).value();
  const ProbabilisticGraph graph = MakeBenchGraph(901, 12);
  uint64_t epoch = 0;
  for (auto _ : state) {
    if (state.range(0) == 0) {
      benchmark::DoNotOptimize(wal->AppendRemoveGraph(epoch++, 3));
    } else {
      benchmark::DoNotOptimize(wal->AppendAddGraph(epoch++, 7, graph));
    }
    // Keep the log from growing unboundedly across iterations.
    if (wal->SizeBytes() > (64u << 20)) {
      if (!wal->Reset().ok()) state.SkipWithError("wal reset failed");
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["log_bytes"] = static_cast<double>(wal->SizeBytes());
  wal.reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_Wal_Append)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_Wal_RecoverReplay(benchmark::State& state) {
  // One iteration = Open() over a log of `Arg` intact records: scan, CRC
  // verification, decode. The cost bound on crash-recovery startup per
  // record.
  const std::string path = "/tmp/pgsim_bench_wal_recover.log";
  std::remove(path.c_str());
  {
    std::vector<WalRecord> records;
    auto wal = WriteAheadLog::Open(path, &records).value();
    const ProbabilisticGraph graph = MakeBenchGraph(907, 10);
    for (int64_t i = 0; i < state.range(0); ++i) {
      if (!wal->AppendAddGraph(static_cast<uint64_t>(i), 7, graph).ok()) {
        state.SkipWithError("append failed");
        return;
      }
    }
  }
  size_t replayed = 0;
  for (auto _ : state) {
    std::vector<WalRecord> records;
    auto wal = WriteAheadLog::Open(path, &records);
    if (!wal.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    replayed += records.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(replayed));
  std::remove(path.c_str());
}
BENCHMARK(BM_Wal_RecoverReplay)->Arg(64)->Arg(512);

}  // namespace

// Expanded BENCHMARK_MAIN with one extra context key: the JSON's standard
// "library_build_type" describes the *benchmark library* (Debian ships
// libbenchmark without NDEBUG, so it always reads "debug" there);
// "pgsim_build_type" records how this binary and libpgsim were compiled —
// the value that matters when reading BENCH_*.json timings.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("pgsim_build_type", "release");
#else
  benchmark::AddCustomContext("pgsim_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
