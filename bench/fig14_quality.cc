// Figure 14 reproduction: answer quality of the correlated model (COR)
// against the independent-edge model (IND) on organism-family ground truth.
//
// Queries are extracted from a family's seed graph; a returned graph is
// "correct" when it belongs to the same family. IND replaces every ne-set
// JPT by the product of its marginals (the paper's baseline).
//
// Paper shape: precision/recall fall as epsilon grows; COR dominates IND
// decisively (COR > 85%, IND < 60% at large epsilon).
//
// Flags: --families, --per_family, --queries, --seed, --qsize, --delta.

#include <cstdio>

#include "bench_util.h"
#include "pgsim/query/processor.h"

using namespace pgsim;
using namespace pgsim::bench;

namespace {

struct Quality {
  double precision = 0.0;
  double recall = 0.0;
};

Quality MeasureQuality(const std::vector<ProbabilisticGraph>& db,
                       const std::vector<uint32_t>& family_of,
                       const ProbabilisticMatrixIndex& pmi,
                       const StructuralFilter& filter,
                       const std::vector<Graph>& seeds,
                       const std::vector<uint32_t>& query_families,
                       const std::vector<Graph>& queries, double epsilon,
                       uint32_t delta) {
  const QueryProcessor processor(&db, &pmi, &filter);
  QueryOptions options;
  options.delta = delta;
  options.epsilon = epsilon;
  options.verifier.mc.max_samples = 8'000;

  size_t tp = 0, returned = 0, relevant = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const uint32_t family = query_families[qi];
    auto answers = processor.Query(queries[qi], options);
    if (!answers.ok()) continue;
    for (uint32_t gi : answers.value()) {
      ++returned;
      if (family_of[gi] == family) ++tp;
    }
    for (uint32_t gi = 0; gi < family_of.size(); ++gi) {
      if (family_of[gi] == family) ++relevant;
    }
  }
  Quality q;
  q.precision = returned == 0 ? 0.0 : 100.0 * tp / returned;
  q.recall = relevant == 0 ? 0.0 : 100.0 * tp / relevant;
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const uint32_t families = args.GetInt("families", 6);
  const size_t per_family =
      args.GetInt("per_family", 8 * args.GetInt("scale", 1));
  const size_t num_queries = args.GetInt("queries", 8);
  const uint64_t seed = args.GetInt("seed", 42);
  const uint32_t qsize = args.GetInt("qsize", 4);
  const uint32_t delta = args.GetInt("delta", 0);
  const double mean_p = args.GetDouble("mean_p", 0.65);
  const double lambda = args.GetDouble("lambda", 0.95);

  std::printf("== Figure 14: query quality, COR vs IND ==\n");
  std::printf("families=%u per_family=%zu queries=%zu qsize=%u delta=%u\n\n",
              families, per_family, num_queries, qsize, delta);

  FamilyOptions family_options;
  family_options.num_families = families;
  family_options.graphs_per_family = per_family;
  family_options.vertex_relabel_prob = 0.03;
  family_options.edge_drop_prob = 0.03;
  family_options.base = DefaultDataset(0, seed);
  family_options.base.jpt_rule = JptRule::kComonotone;
  family_options.base.comonotone_lambda = lambda;
  // Moderate marginals with strong positive correlation: whole motifs
  // survive together under COR, while the IND baseline multiplies the
  // marginals away — the regime where Figure 14's separation appears.
  family_options.base.mean_edge_prob = mean_p;
  family_options.base.num_vertex_labels = args.GetInt("labels", 12);
  // Hub interactions are grouped (and correlated) at their center vertex.
  family_options.base.max_ne_size = 4;
  family_options.base.group_hubs_first = true;
  auto fdb = GenerateFamilyDatabase(family_options).value();

  // IND database: same graphs, product-of-marginals JPTs.
  std::vector<ProbabilisticGraph> ind_db;
  ind_db.reserve(fdb.graphs.size());
  for (const auto& g : fdb.graphs) {
    ind_db.push_back(ToIndependentModel(g).value());
  }

  // Shared query workload drawn from the family seeds.
  Rng rng(seed + 19);
  std::vector<Graph> queries;
  std::vector<uint32_t> query_families;
  size_t attempts = 0;
  while (queries.size() < num_queries && attempts++ < num_queries * 30) {
    const uint32_t family = static_cast<uint32_t>(rng.Uniform(families));
    // Hub motifs: the correlated-neighborhood queries the paper's PPI
    // scenario motivates; fall back to edge-BFS when no hub is large enough.
    auto q = ExtractStarQuery(fdb.seeds[family], qsize, &rng);
    if (!q.ok()) q = ExtractQuery(fdb.seeds[family], qsize, &rng);
    if (!q.ok()) continue;
    queries.push_back(std::move(q).value());
    query_families.push_back(family);
  }

  const PmiBuildOptions build = DefaultPmiBuild();
  auto cor_pmi = ProbabilisticMatrixIndex::Build(fdb.graphs, build).value();
  auto ind_pmi = ProbabilisticMatrixIndex::Build(ind_db, build).value();
  std::vector<Graph> certain;
  for (const auto& g : fdb.graphs) certain.push_back(g.certain());
  const StructuralFilter cor_filter =
      StructuralFilter::Build(certain, cor_pmi.features());
  const StructuralFilter ind_filter =
      StructuralFilter::Build(certain, ind_pmi.features());

  Table table({"epsilon", "COR-Precision", "COR-Recall", "IND-Precision",
               "IND-Recall"});
  for (double epsilon : {0.3, 0.4, 0.5, 0.6, 0.7}) {
    const Quality cor =
        MeasureQuality(fdb.graphs, fdb.family_of, cor_pmi, cor_filter,
                       fdb.seeds, query_families, queries, epsilon, delta);
    const Quality ind =
        MeasureQuality(ind_db, fdb.family_of, ind_pmi, ind_filter, fdb.seeds,
                       query_families, queries, epsilon, delta);
    table.AddRow({Fmt(epsilon, 1), Fmt(cor.precision, 1), Fmt(cor.recall, 1),
                  Fmt(ind.precision, 1), Fmt(ind.recall, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: both models' precision/recall fall with epsilon; "
      "COR dominates IND.\n");
  return 0;
}
