// Figure 13 reproduction: total query processing time vs database size,
// PMI (the full pipeline: Structure + OPT-SSPBound + SMP) against the Exact
// baseline that computes every graph's exact SSP.
//
// Paper shape: PMI stays near-flat (seconds); Exact grows drastically and
// becomes intractable quickly (the paper stops plotting past 1000 s).
//
// Flags: --queries, --seed, --qsize, --delta, --epsilon, --scale,
//        --exact_cutoff_s (skip Exact once a previous size exceeded this).

#include <cstdio>

#include "bench_util.h"
#include "pgsim/common/timer.h"

using namespace pgsim;
using namespace pgsim::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const int64_t scale = args.GetInt("scale", 1);
  const size_t num_queries = args.GetInt("queries", 2);
  const uint64_t seed = args.GetInt("seed", 42);
  const uint32_t qsize = args.GetInt("qsize", 6);
  const uint32_t delta = args.GetInt("delta", 2);
  const double epsilon = args.GetDouble("epsilon", 0.2);
  const double exact_cutoff = args.GetDouble("exact_cutoff_s", 120.0);

  std::printf("== Figure 13: total query time vs database size ==\n");
  std::printf("queries/point=%zu qsize=%u delta=%u epsilon=%.2f\n\n",
              num_queries, qsize, delta, epsilon);

  Table table({"db_size", "PMI_s", "Exact_s", "PMI_answers",
               "Exact_answers"});
  bool exact_enabled = true;
  // Denser, label-poor graphs: exact SSP cost is driven by the number of
  // (overlapping) embeddings, which is where Theorem 2's #P-hardness bites.
  auto dataset_for = [&](size_t n) {
    SyntheticOptions d = DefaultDataset(n, seed);
    d.num_vertex_labels = 3;
    d.edge_factor = 1.8;
    d.avg_vertices = 16;
    return d;
  };
  // The generator is seeded per graph, so smaller databases are prefixes of
  // larger ones: one workload drawn from the common prefix is comparable
  // across every size.
  std::vector<Graph> queries;
  {
    auto prefix_db = GenerateDatabase(dataset_for(20 * scale)).value();
    queries = GenerateQueries(prefix_db, qsize, num_queries, seed + 17)
                  .value();
  }
  for (size_t db_size : {20, 40, 80, 120, 160}) {
    const size_t scaled = db_size * scale;
    Setup setup = BuildSetupFromDataset(dataset_for(scaled));
    const QueryProcessor processor(&setup.db, &setup.pmi, &setup.filter);

    QueryOptions options;
    options.delta = delta;
    options.epsilon = epsilon;
    options.verifier.mc.max_samples = 10'000;

    double pmi_seconds = 0.0, exact_seconds = 0.0;
    size_t pmi_answers = 0, exact_answers = 0;
    size_t measured = 0;
    bool exact_measured = false;
    for (const Graph& q_graph : queries) {
      const Graph* q = &q_graph;
      ++measured;
      {
        WallTimer timer;
        auto answers = processor.Query(*q, options);
        pmi_seconds += timer.Seconds();
        if (answers.ok()) pmi_answers += answers->size();
      }
      if (exact_enabled) {
        WallTimer timer;
        auto answers = processor.ExactScan(*q, options);
        exact_seconds += timer.Seconds();
        exact_measured = true;
        if (answers.ok()) exact_answers += answers->size();
      }
    }
    const double denom = measured == 0 ? 1.0 : static_cast<double>(measured);
    table.AddRow({std::to_string(scaled), Fmt(pmi_seconds / denom, 3),
                  exact_measured ? Fmt(exact_seconds / denom, 3)
                                 : std::string("(skipped)"),
                  Fmt(pmi_answers / denom, 1),
                  exact_measured ? Fmt(exact_answers / denom, 1)
                                 : std::string("-")});
    if (exact_enabled && exact_seconds / denom > exact_cutoff) {
      exact_enabled = false;  // the paper stops plotting Exact similarly
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: PMI stays near-flat; Exact grows steeply with "
      "database size (the paper's Exact exceeds 1000 s by 6k graphs).\n");
  return 0;
}
