// Figure 12 reproduction: impact of the feature-generation parameters on
// the probabilistic pruners and the index.
//
//   (a) candidates vs maxL (feature size cap);
//   (b) candidates vs alpha (disjoint-embedding ratio threshold);
//   (c) index building time vs beta (frequency threshold);
//   (d) index size vs gamma (discriminative threshold).
//
// Paper shape: more/larger features help until bounds loosen (candidates
// grow with maxL); alpha has a sweet spot; index cost falls as beta/gamma
// grow (fewer features survive).
//
// Flags: --db, --queries, --seed, --qsize, --delta, --epsilon.

#include <cstdio>

#include "bench_util.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/relaxation.h"

using namespace pgsim;
using namespace pgsim::bench;

namespace {

struct PointResult {
  double structure = 0.0;
  double ssp = 0.0;       // SSPBound candidates
  double opt_ssp = 0.0;   // OPT-SSPBound candidates
  double build_seconds = 0.0;
  double index_kb = 0.0;
};

PointResult MeasurePoint(const std::vector<ProbabilisticGraph>& db,
                         const std::vector<Graph>& certain,
                         const PmiBuildOptions& build, size_t num_queries,
                         uint32_t qsize, uint32_t delta, double epsilon,
                         uint64_t seed) {
  PointResult out;
  WallTimer build_timer;
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  out.build_seconds = build_timer.Seconds();
  out.index_kb = pmi.SizeBytes() / 1024.0;
  const StructuralFilter filter =
      StructuralFilter::Build(certain, pmi.features());

  Rng query_rng(seed + 13);
  Rng rng(seed + 31);
  size_t measured = 0;
  for (size_t qi = 0; qi < num_queries; ++qi) {
    auto q = ExtractQuery(certain[query_rng.Uniform(certain.size())], qsize,
                          &query_rng);
    if (!q.ok()) continue;
    auto relaxed = GenerateRelaxedQueries(*q, delta);
    if (!relaxed.ok()) continue;
    ++measured;
    const auto sc_q = filter.Filter(*q, *relaxed, delta, nullptr);
    out.structure += sc_q.size();
    for (BoundSelection selection :
         {BoundSelection::kRandom, BoundSelection::kOptimized}) {
      ProbPrunerOptions options;
      options.selection = selection;
      ProbabilisticPruner pruner(&pmi, options);
      pruner.PrepareQuery(*relaxed);
      PrunerScratch pruner_scratch;
      size_t survivors = 0;
      for (uint32_t gi : sc_q) {
        if (pruner.Evaluate(gi, epsilon, &rng, &pruner_scratch).outcome ==
            PruneOutcome::kCandidate) {
          ++survivors;
        }
      }
      (selection == BoundSelection::kRandom ? out.ssp : out.opt_ssp) +=
          survivors;
    }
  }
  const double denom = measured == 0 ? 1.0 : static_cast<double>(measured);
  out.structure /= denom;
  out.ssp /= denom;
  out.opt_ssp /= denom;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const size_t db_size = args.GetInt("db", 60 * args.GetInt("scale", 1));
  const size_t num_queries = args.GetInt("queries", 6);
  const uint64_t seed = args.GetInt("seed", 42);
  const uint32_t qsize = args.GetInt("qsize", 5);
  const uint32_t delta = args.GetInt("delta", 1);
  const double epsilon = args.GetDouble("epsilon", 0.4);

  std::printf("== Figure 12: impact of feature-generation parameters ==\n");
  std::printf("db=%zu queries/point=%zu qsize=%u delta=%u epsilon=%.2f\n\n",
              db_size, num_queries, qsize, delta, epsilon);

  const auto db = GenerateDatabase(DefaultDataset(db_size, seed)).value();
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());

  // (a) maxL sweep.
  {
    Table table({"maxL", "Structure", "SSPBound", "OPT-SSPBound"});
    for (uint32_t max_l : {2u, 3u, 4u, 5u, 6u}) {
      PmiBuildOptions build = DefaultPmiBuild();
      build.miner.max_vertices = max_l;
      const PointResult r = MeasurePoint(db, certain, build, num_queries,
                                         qsize, delta, epsilon, seed);
      table.AddRow({std::to_string(max_l), Fmt(r.structure, 1), Fmt(r.ssp, 1),
                    Fmt(r.opt_ssp, 1)});
    }
    std::printf("--- (a) candidates vs maxL ---\n");
    table.Print();
  }

  // (b) alpha sweep.
  {
    Table table({"alpha", "Structure", "SIPBound", "OPT-SIPBound"});
    for (double alpha : {0.05, 0.10, 0.15, 0.20, 0.25}) {
      PmiBuildOptions build = DefaultPmiBuild();
      build.miner.alpha = alpha;
      const PointResult r = MeasurePoint(db, certain, build, num_queries,
                                         qsize, delta, epsilon, seed);
      table.AddRow({Fmt(alpha, 2), Fmt(r.structure, 1), Fmt(r.ssp, 1),
                    Fmt(r.opt_ssp, 1)});
    }
    std::printf("\n--- (b) candidates vs alpha ---\n");
    table.Print();
  }

  // (c) beta sweep: index building time.
  {
    Table table({"beta", "Structure_s", "OPT-SIPBound_build_s"});
    for (double beta : {0.05, 0.10, 0.15, 0.20, 0.25}) {
      PmiBuildOptions build = DefaultPmiBuild();
      build.miner.beta = beta;
      WallTimer structural_timer;
      auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
      const StructuralFilter filter =
          StructuralFilter::Build(certain, pmi.features());
      const double total = structural_timer.Seconds();
      table.AddRow({Fmt(beta, 2),
                    Fmt(total - pmi.stats().bounds_seconds, 2),
                    Fmt(pmi.stats().total_seconds, 2)});
    }
    std::printf("\n--- (c) index building time vs beta ---\n");
    table.Print();
  }

  // (d) gamma sweep: index size.
  {
    Table table({"gamma", "num_features", "index_KB"});
    for (double gamma : {0.05, 0.10, 0.15, 0.20, 0.25}) {
      PmiBuildOptions build = DefaultPmiBuild();
      build.miner.gamma = gamma;
      auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
      table.AddRow({Fmt(gamma, 2), std::to_string(pmi.features().size()),
                    Fmt(pmi.SizeBytes() / 1024.0, 1)});
    }
    std::printf("\n--- (d) index size vs gamma ---\n");
    table.Print();
  }

  std::printf(
      "\nExpected shape (laptop scale, see EXPERIMENTS.md): candidates fall "
      "steeply from maxL=2 and saturate around maxL=4 (feature size drives "
      "pruning power); alpha is flat at this scale; build time and index "
      "size fall as beta/gamma grow.\n");
  return 0;
}
