// Serving-core benchmarks (google-benchmark): admission throughput through
// the wave dispatcher, the latency cost of a deadline that actually fires,
// and submit-side behavior under deliberate overload (shedding). Recorded
// as BENCH_9.json by the release-perf-smoke CI job.

#include <benchmark/benchmark.h>

#include <vector>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"
#include "pgsim/serving/serving_core.h"

namespace {

using namespace pgsim;

struct ServingFixture {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
  std::unique_ptr<QueryProcessor> processor;
};

const ServingFixture& GetServingFixture() {
  static ServingFixture* fixture = [] {
    auto* f = new ServingFixture();
    SyntheticOptions gen;
    gen.num_graphs = 24;
    gen.avg_vertices = 9;
    gen.num_vertex_labels = 4;
    gen.seed = 4242;
    f->db = GenerateDatabase(gen).value();
    PmiBuildOptions build;
    build.miner.beta = 0.2;
    build.miner.gamma = -1.0;
    build.miner.max_vertices = 3;
    build.sip.mc.min_samples = 2000;
    build.sip.mc.max_samples = 2000;
    f->pmi = ProbabilisticMatrixIndex::Build(f->db, build).value();
    for (const auto& g : f->db) f->certain.push_back(g.certain());
    f->filter = StructuralFilter::Build(f->certain, f->pmi.features(),
                                        StructuralFilterOptions());
    f->processor =
        std::make_unique<QueryProcessor>(&f->db, &f->pmi, &f->filter);
    return f;
  }();
  return *fixture;
}

QueryOptions BenchQueryOptions() {
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.3;
  options.seed = 11;
  return options;
}

// One iteration = a burst of queries submitted through the admission queue
// and drained to resolution. Arg = scheduler width. The end-to-end cost of
// the serving path (ticketing, queue, waves, pipeline) per query.
void BM_Admission_Throughput(benchmark::State& state) {
  const ServingFixture& f = GetServingFixture();
  constexpr size_t kBurst = 16;
  ServingOptions so;
  so.num_threads = static_cast<uint32_t>(state.range(0));
  so.max_queue = 1024;  // never shed: this measures the committed path
  so.query = BenchQueryOptions();
  ServingCore core(f.processor.get(), so);
  std::vector<QueryTicket> tickets(kBurst);
  size_t queries = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < kBurst; ++i) {
      tickets[i] = core.Submit(f.certain[i % f.certain.size()]);
    }
    for (auto& t : tickets) benchmark::DoNotOptimize(t.Wait().status.ok());
    queries += kBurst;
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
  state.counters["waves"] = static_cast<double>(core.stats().waves);
}
BENCHMARK(BM_Admission_Throughput)->Arg(1)->Arg(4)->UseRealTime()->Unit(benchmark::kMicrosecond);

// One iteration = one query whose deadline is engineered to fire (the
// deterministic cancel point cuts every candidate at its first draw, the
// 1ms wall deadline backstops queries with no sampling work). Measures the
// unwind latency: how long a doomed query holds serving resources past
// Submit. deadline_frac counts how many resolutions were degraded/deadline
// (vs completed exact before any cancellation point).
void BM_Deadline_HitLatency(benchmark::State& state) {
  const ServingFixture& f = GetServingFixture();
  ServingOptions so;
  so.num_threads = 2;
  so.max_queue = 1024;
  so.query = BenchQueryOptions();
  ServingCore core(f.processor.get(), so);
  SubmitOptions opts;
  opts.deadline_ms = 1;
  opts.allow_degraded = true;
  opts.cancel_after_draws = 1;
  size_t cut = 0, total = 0;
  size_t qi = 0;
  for (auto _ : state) {
    QueryTicket t = core.Submit(f.certain[qi++ % f.certain.size()], opts);
    const ServeResult& r = t.Wait();
    cut += r.degraded ||
           r.status.code() == StatusCode::kDeadlineExceeded;
    ++total;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["deadline_frac"] =
      total == 0 ? 0.0 : static_cast<double>(cut) / static_cast<double>(total);
}
BENCHMARK(BM_Deadline_HitLatency)->UseRealTime()->Unit(benchmark::kMicrosecond);

// One iteration = a burst of 4x queue capacity fired at a tiny queue, then
// drained. Measures the submit path under overload, where most tickets
// resolve kUnavailable at Submit itself; shed_frac reports how many.
void BM_Shedding_Overload(benchmark::State& state) {
  const ServingFixture& f = GetServingFixture();
  ServingOptions so;
  so.num_threads = 2;
  so.max_queue = 8;
  so.query = BenchQueryOptions();
  ServingCore core(f.processor.get(), so);
  constexpr size_t kBurst = 32;
  std::vector<QueryTicket> tickets(kBurst);
  size_t shed = 0, total = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < kBurst; ++i) {
      SubmitOptions opts;
      opts.priority = static_cast<int>(i % 3);
      tickets[i] = core.Submit(f.certain[i % f.certain.size()], opts);
    }
    for (auto& t : tickets) {
      shed += t.Wait().status.code() == StatusCode::kUnavailable;
      ++total;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["shed_frac"] =
      total == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(total);
}
BENCHMARK(BM_Shedding_Overload)->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
