// Figure 11 reproduction: candidate set size (a) and pruning time (b) as a
// function of the subgraph distance threshold delta, comparing the SIP-bound
// flavors that feed the probabilistic pruner:
//
//   Structure     — deterministic structural pruning only;
//   SIPBound      — PMI entries from greedy disjoint families;
//   OPT-SIPBound  — PMI entries from max-weight cliques (tightest bounds).
//
// Paper shape: all series grow with delta (more relaxed queries -> more
// matches); both SIP flavors prune far below Structure; OPT-SIPBound is
// tighter but costs more time.
//
// Flags: --db, --queries, --seed, --qsize, --epsilon, --max_delta.

#include <cstdio>

#include "bench_util.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/relaxation.h"

using namespace pgsim;
using namespace pgsim::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const size_t db_size = args.GetInt("db", 80 * args.GetInt("scale", 1));
  const size_t num_queries = args.GetInt("queries", 6);
  const uint64_t seed = args.GetInt("seed", 42);
  const uint32_t qsize = args.GetInt("qsize", 7);
  const double epsilon = args.GetDouble("epsilon", 0.5);
  const uint32_t max_delta = args.GetInt("max_delta", 3);

  std::printf("== Figure 11: scalability to subgraph distance threshold ==\n");
  std::printf("db=%zu queries/point=%zu qsize=%u epsilon=%.2f\n\n", db_size,
              num_queries, qsize, epsilon);

  Setup setup = BuildSetup(db_size, seed);

  Table cand_table({"delta", "Structure", "SIPBound", "OPT-SIPBound"});
  Table time_table({"delta", "Structure_ms", "SIPBound_ms",
                    "OPT-SIPBound_ms"});

  // One fixed workload shared by every (delta, variant) combination.
  const std::vector<Graph> queries =
      GenerateQueries(setup.db, qsize, num_queries, seed + 11).value();

  for (uint32_t delta = 1; delta <= max_delta; ++delta) {
    double structure_cand = 0, structure_sec = 0;
    double simple_cand = 0, simple_sec = 0;
    double opt_cand = 0, opt_sec = 0;
    Rng rng(seed + 29);  // evaluation randomness only
    size_t measured = 0;
    for (const Graph& q_graph : queries) {
      const Graph* q = &q_graph;
      auto relaxed = GenerateRelaxedQueries(*q, delta);
      if (!relaxed.ok()) continue;
      ++measured;

      WallTimer structural_timer;
      const auto sc_q = setup.filter.Filter(*q, *relaxed, delta, nullptr);
      structure_sec += structural_timer.Seconds();
      structure_cand += sc_q.size();

      for (SipVariant variant : {SipVariant::kSimple, SipVariant::kOpt}) {
        ProbPrunerOptions options;
        options.selection = BoundSelection::kOptimized;
        options.sip_variant = variant;
        ProbabilisticPruner pruner(&setup.pmi, options);
        WallTimer timer;
        pruner.PrepareQuery(*relaxed);
        PrunerScratch pruner_scratch;
        size_t survivors = 0;
        for (uint32_t gi : sc_q) {
          if (pruner.Evaluate(gi, epsilon, &rng, &pruner_scratch).outcome ==
              PruneOutcome::kCandidate) {
            ++survivors;
          }
        }
        const double sec = timer.Seconds();
        if (variant == SipVariant::kSimple) {
          simple_sec += sec;
          simple_cand += survivors;
        } else {
          opt_sec += sec;
          opt_cand += survivors;
        }
      }
    }
    const double denom = measured == 0 ? 1.0 : static_cast<double>(measured);
    cand_table.AddRow({std::to_string(delta), Fmt(structure_cand / denom, 1),
                       Fmt(simple_cand / denom, 1), Fmt(opt_cand / denom, 1)});
    time_table.AddRow({std::to_string(delta), FmtMs(structure_sec / denom),
                       FmtMs(simple_sec / denom), FmtMs(opt_sec / denom)});
  }

  std::printf("--- (a) candidate size ---\n");
  cand_table.Print();
  std::printf("\n--- (b) pruning time ---\n");
  time_table.Print();
  std::printf(
      "\nExpected shape: all series grow with delta; OPT-SIPBound <= "
      "SIPBound <= Structure on candidates.\n");
  return 0;
}
