// Signature-favorable workload (PR 10): a label-diverse database queried
// with low-selectivity patterns — the regime where most (rq, candidate)
// pairs are barren and the neighborhood-signature gate should convert them
// from executed VF2 calls into rejected cover tests.
//
// Runs the identical query set with QueryOptions::use_signatures off then
// on, asserts the answer sets are bit-identical, and reports per-setting
// stage-1/stage-3 wall time plus the gate counters. The headline numbers —
// stage-3 speedup and the fraction of would-be matcher calls avoided — are
// the ones recorded in BENCH_10.json.
//
// Flags: --db, --queries, --seed, --delta, --epsilon, --labels, --qsize,
//        --repeat (measured passes; wall times are summed across them),
//        --samples (per-candidate SMP draw budget; the default is small so
//        stage 3 is matcher-bound — the workload this bench pins is the
//        event-collection VF2 cost, not the draw loop, which is identical
//        with signatures on and off).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "pgsim/query/processor.h"

using namespace pgsim;
using namespace pgsim::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const size_t db_size = args.GetInt("db", 200 * args.GetInt("scale", 1));
  const size_t num_queries = args.GetInt("queries", 12);
  const uint64_t seed = args.GetInt("seed", 42);
  const uint32_t delta = args.GetInt("delta", 3);
  const double epsilon = args.GetDouble("epsilon", 0.3);
  const uint32_t labels = args.GetInt("labels", 10);
  const uint32_t qsize = args.GetInt("qsize", 10);
  const int repeat = static_cast<int>(args.GetInt("repeat", 3));
  const uint32_t samples = args.GetInt("samples", 200);

  std::printf("== Signature workload: label-diverse db, low selectivity ==\n");
  std::printf("db=%zu labels=%u queries=%zu qsize=%u delta=%u epsilon=%.2f\n\n",
              db_size, labels, num_queries, qsize, delta, epsilon);

  SyntheticOptions dataset = DefaultDataset(db_size, seed);
  dataset.num_vertex_labels = labels;
  dataset.avg_vertices = static_cast<uint32_t>(args.GetInt("vertices", 14));
  dataset.edge_factor = args.GetDouble("edge-factor", 1.5);
  Setup setup = BuildSetupFromDataset(dataset);
  // By default the filter/pruner stages are skipped so every database graph
  // reaches stage 3 — the verification-bound regime where almost every
  // (rq, candidate) pair is barren and the signature gate has the most
  // matcher work to avoid. --pipeline-full=1 runs the normal three-stage
  // pipeline (the gate then also rides the stage-1 exact check).
  const bool full_pipeline = args.GetInt("pipeline-full", 0) != 0;
  const QueryProcessor processor(&setup.db,
                                 full_pipeline ? &setup.pmi : nullptr,
                                 full_pipeline ? &setup.filter : nullptr);

  // Low selectivity: extract each query from one source graph, so against
  // the other label-diverse graphs almost every pair is barren.
  Rng rng(seed + 1);
  std::vector<Graph> queries;
  while (queries.size() < num_queries) {
    auto q = ExtractQuery(setup.certain[rng.Uniform(setup.certain.size())],
                          qsize, &rng);
    if (q.ok()) queries.push_back(std::move(q).value());
  }

  struct Run {
    double structural_seconds = 0.0;
    double verify_seconds = 0.0;
    size_t vf2_executed = 0;  // stage-1 exact-check matcher calls executed
    size_t vf2_avoided = 0;
    size_t pairs_rejected = 0;
    size_t domain_pruned = 0;
    size_t answers = 0;
    size_t stage3_pairs = 0;  // verification candidates x |U|
  };
  std::vector<std::vector<uint32_t>> baseline_answers;
  Run runs[2];
  for (const bool use_signatures : {false, true}) {
    Run& run = runs[use_signatures ? 1 : 0];
    QueryOptions options;
    options.delta = delta;
    options.epsilon = epsilon;
    options.use_signatures = use_signatures;
    options.verifier.mc.min_samples = samples;
    options.verifier.mc.max_samples = samples;
    for (int pass = 0; pass < repeat; ++pass) {
      std::vector<std::vector<uint32_t>> answers;
      for (const Graph& q : queries) {
        QueryStats stats;
        auto result = processor.Query(q, options, &stats);
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        run.structural_seconds += stats.structural_seconds;
        run.verify_seconds += stats.verify_seconds;
        run.vf2_executed += stats.structural_detail.isomorphism_tests;
        run.vf2_avoided += stats.vf2_calls_avoided;
        run.pairs_rejected += stats.sig_pairs_rejected;
        run.domain_pruned += stats.domain_candidates_pruned;
        run.answers += result->size();
        run.stage3_pairs += stats.verification_candidates * stats.num_relaxed_queries;
        answers.push_back(std::move(result).value());
      }
      if (baseline_answers.empty()) {
        baseline_answers = std::move(answers);
      } else if (answers != baseline_answers) {
        std::fprintf(stderr,
                     "FAIL: answers differ (signatures=%d pass=%d)\n",
                     use_signatures ? 1 : 0, pass);
        return 1;
      }
    }
  }

  Table table({"signatures", "stage1_ms", "stage3_ms", "vf2_exec",
               "vf2_avoided", "pairs_rejected", "domain_pruned", "answers"});
  for (int i = 0; i < 2; ++i) {
    table.AddRow({i == 0 ? "off" : "on", FmtMs(runs[i].structural_seconds),
                  FmtMs(runs[i].verify_seconds),
                  std::to_string(runs[i].vf2_executed),
                  std::to_string(runs[i].vf2_avoided),
                  std::to_string(runs[i].pairs_rejected),
                  std::to_string(runs[i].domain_pruned),
                  std::to_string(runs[i].answers)});
  }
  table.Print();

  const double stage3_speedup =
      runs[1].verify_seconds <= 0.0
          ? 0.0
          : runs[0].verify_seconds / runs[1].verify_seconds;
  // Fraction of stage-3 (rq, candidate) matcher calls the gate eliminated
  // (plus any stage-1 exact-check calls when --pipeline-full=1; with the
  // default verification-bound pipeline stage3_pairs is the whole matcher
  // workload).
  const double avoided_ratio =
      runs[1].stage3_pairs == 0
          ? 0.0
          : static_cast<double>(runs[1].vf2_avoided) /
                static_cast<double>(runs[1].stage3_pairs);
  std::printf("\nanswers bit-identical: yes\n");
  std::printf("stage3_speedup: %.2fx (off %.2f ms / on %.2f ms)\n",
              stage3_speedup, runs[0].verify_seconds * 1e3,
              runs[1].verify_seconds * 1e3);
  std::printf("vf2_calls_avoided_ratio: %.2f\n", avoided_ratio);
  std::printf(
      "\nExpected shape: most pairs rejected by the cover test; stage3 "
      "speedup >= 1.5x on this workload.\n");
  return 0;
}
