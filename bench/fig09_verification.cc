// Figure 9 reproduction: verification efficiency and quality vs query size.
//
//   (a) average verification time per query: Exact vs SMP (Algorithm 5);
//   (b) SMP answer quality (precision/recall against Exact answers).
//
// Paper shape: SMP stays flat and fast (< 3 s there) while Exact blows up
// with query size; SMP precision and recall both exceed 90%.
//
// Flags: --db, --queries, --seed, --delta, --epsilon, --max_qsize.

#include <cstdio>

#include "bench_util.h"
#include "pgsim/common/timer.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/query/verifier.h"

using namespace pgsim;
using namespace pgsim::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const size_t db_size =
      args.GetInt("db", 60 * args.GetInt("scale", 1));
  const size_t num_queries = args.GetInt("queries", 5);
  const uint64_t seed = args.GetInt("seed", 42);
  const uint32_t delta = args.GetInt("delta", 2);
  const double epsilon = args.GetDouble("epsilon", 0.15);
  const uint32_t max_qsize = args.GetInt("max_qsize", 12);

  std::printf("== Figure 9: verification (Exact vs SMP) ==\n");
  std::printf("db=%zu queries/point=%zu delta=%u epsilon=%.2f\n\n", db_size,
              num_queries, delta, epsilon);

  Setup setup = BuildSetup(db_size, seed);
  const QueryProcessor processor(&setup.db, &setup.pmi, &setup.filter);

  VerifierOptions smp_options;
  smp_options.mc.xi = 0.05;
  smp_options.mc.tau = 0.05;
  smp_options.mc.max_samples = 20'000;

  Table table({"qsize", "exact_ms/cand", "smp_ms/cand", "precision_%",
               "recall_%", "candidates"});
  Rng rng(seed + 1);
  for (uint32_t qsize = 4; qsize <= max_qsize; qsize += 2) {
    double exact_seconds = 0.0, smp_seconds = 0.0;
    size_t tp = 0, smp_positive = 0, exact_positive = 0, candidates = 0;
    size_t measured = 0;
    for (size_t qi = 0; qi < num_queries; ++qi) {
      auto q = ExtractQuery(
          setup.certain[rng.Uniform(setup.certain.size())], qsize, &rng);
      if (!q.ok()) continue;
      auto relaxed = GenerateRelaxedQueries(*q, delta);
      if (!relaxed.ok()) continue;

      // Candidates from the full filter chain (structural + probabilistic).
      QueryOptions options;
      options.delta = delta;
      options.epsilon = epsilon;
      QueryStats stats;
      ProbabilisticPruner pruner(&setup.pmi, options.pruner);
      const auto sc_q =
          setup.filter.Filter(*q, *relaxed, delta, nullptr);
      pruner.PrepareQuery(*relaxed);
      PrunerScratch pruner_scratch;
      std::vector<uint32_t> to_verify;
      for (uint32_t gi : sc_q) {
        if (pruner.Evaluate(gi, epsilon, &rng, &pruner_scratch).outcome ==
            PruneOutcome::kCandidate) {
          to_verify.push_back(gi);
        }
      }
      candidates += to_verify.size();
      ++measured;

      for (uint32_t gi : to_verify) {
        WallTimer exact_timer;
        auto exact = ExactSubgraphSimilarityProbability(setup.db[gi],
                                                        *relaxed);
        exact_seconds += exact_timer.Seconds();
        WallTimer smp_timer;
        auto smp = SampleSubgraphSimilarityProbability(
            setup.db[gi], *relaxed, smp_options, &rng);
        smp_seconds += smp_timer.Seconds();
        if (!exact.ok() || !smp.ok()) continue;
        const bool exact_in = *exact >= epsilon;
        const bool smp_in = *smp >= epsilon;
        exact_positive += exact_in;
        smp_positive += smp_in;
        tp += exact_in && smp_in;
      }
    }
    const double precision =
        smp_positive == 0 ? 100.0 : 100.0 * tp / smp_positive;
    const double recall =
        exact_positive == 0 ? 100.0 : 100.0 * tp / exact_positive;
    const double denom = measured == 0 ? 1.0 : static_cast<double>(measured);
    // Per-candidate verification cost: the curve the paper plots (their
    // candidate sets also shrink with query size; the per-verification
    // explosion is the point).
    const double per_cand =
        candidates == 0 ? 1.0 : static_cast<double>(candidates);
    table.AddRow({"q" + std::to_string(qsize),
                  FmtMs(exact_seconds / per_cand),
                  FmtMs(smp_seconds / per_cand), Fmt(precision, 1),
                  Fmt(recall, 1), Fmt(candidates / denom, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: exact_ms grows steeply with qsize; smp_ms stays "
      "flat; precision/recall > 90%%.\n");
  return 0;
}
