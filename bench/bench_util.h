// Shared helpers for the figure-reproduction benchmark binaries: a tiny
// --key=value flag parser, an aligned table printer, and the standard
// experimental setup (database + PMI + structural filter) mirroring the
// paper's Section 6 defaults at laptop scale.
//
// Every binary accepts:
//   --scale=N      multiplies the database size (default 1)
//   --db=N         database size override
//   --queries=N    queries per measured point
//   --seed=N       master seed
// plus per-binary knobs documented in their headers.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim::bench {

/// Minimal --key=value argument parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        kv_.emplace_back(arg + 2, "1");
      } else {
        kv_.emplace_back(std::string(arg + 2, eq - arg - 2), eq + 1);
      }
    }
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return std::atoll(v.c_str());
    }
    return fallback;
  }

  double GetDouble(const std::string& key, double fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return std::atof(v.c_str());
    }
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Aligned fixed-width table printer (the "figure series" output).
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int digits = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

inline std::string FmtMs(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e3);
  return buf;
}

/// The standard bench setup: database, mined PMI, structural filter.
struct Setup {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> certain;
  ProbabilisticMatrixIndex pmi;
  StructuralFilter filter;
};

/// Default generator parameters scaled from the paper's PPI statistics.
inline SyntheticOptions DefaultDataset(size_t db_size, uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = db_size;
  options.avg_vertices = 14;
  options.edge_factor = 1.5;
  options.num_vertex_labels = 6;
  options.mean_edge_prob = 0.383;
  options.seed = seed;
  return options;
}

/// Default PMI build parameters (Section 6 defaults, scaled).
inline PmiBuildOptions DefaultPmiBuild() {
  PmiBuildOptions build;
  build.miner.alpha = 0.15;
  build.miner.beta = 0.15;
  build.miner.gamma = -1.0;  // keep all frequent features
  build.miner.max_vertices = 4;
  build.sip.mc.xi = 0.1;
  build.sip.mc.tau = 0.1;
  build.sip.mc.min_samples = 600;
  build.sip.mc.max_samples = 1500;
  return build;
}

inline Setup BuildSetupFromDataset(const SyntheticOptions& dataset,
                                   const PmiBuildOptions& build =
                                       DefaultPmiBuild()) {
  Setup s;
  s.db = GenerateDatabase(dataset).value();
  for (const auto& g : s.db) s.certain.push_back(g.certain());
  s.pmi = ProbabilisticMatrixIndex::Build(s.db, build).value();
  s.filter = StructuralFilter::Build(s.certain, s.pmi.features());
  return s;
}

inline Setup BuildSetup(size_t db_size, uint64_t seed,
                        const PmiBuildOptions& build = DefaultPmiBuild()) {
  return BuildSetupFromDataset(DefaultDataset(db_size, seed), build);
}

}  // namespace pgsim::bench
