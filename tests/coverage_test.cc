// Coverage for remaining behavioral corners: similarity-event collection
// semantics, processor failure accounting and threshold extremes, the
// random-selection Lsim path, and Figure-1/Example-1 style end-to-end
// checks on hand-built graphs.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/verifier.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::RandomGraph;
using ::pgsim::testing::RandomProbGraph;

TEST(SimilarityEventsTest, DeduplicatesAcrossRelaxedQueries) {
  // q = path of 3 (2 edges); delta = 1 gives two single-edge relaxations
  // whose embeddings into a path target overlap heavily; the event list
  // must contain each distinct edge set exactly once.
  Rng rng(7001);
  const Graph target = MakePath(5);
  const ProbabilisticGraph pg = RandomProbGraph(target, &rng);
  const Graph q = MakePath(3);
  auto relaxed = GenerateRelaxedQueries(q, 1);
  ASSERT_TRUE(relaxed.ok());
  VerifierOptions options;
  auto events = CollectSimilarityEvents(pg, *relaxed, options);
  ASSERT_TRUE(events.ok());
  for (size_t i = 0; i < events->size(); ++i) {
    for (size_t j = i + 1; j < events->size(); ++j) {
      EXPECT_FALSE((*events)[i] == (*events)[j]) << i << "," << j;
    }
  }
  // A path of 5 has 4 single-edge subgraphs: exactly 4 events.
  EXPECT_EQ(events->size(), 4u);
}

TEST(SimilarityEventsTest, EventsAreActualEmbeddings) {
  Rng rng(7003);
  const Graph g = RandomGraph(&rng, 7, 4, 2);
  const ProbabilisticGraph pg = RandomProbGraph(g, &rng);
  const Graph q = RandomGraph(&rng, 4, 1, 2);
  if (q.NumEdges() < 2) GTEST_SKIP();
  auto relaxed = GenerateRelaxedQueries(q, 1);
  ASSERT_TRUE(relaxed.ok());
  VerifierOptions options;
  auto events = CollectSimilarityEvents(pg, *relaxed, options);
  ASSERT_TRUE(events.ok());
  // Every event's edge set, taken as a subgraph, contains some rq.
  for (const EdgeBitset& event : *events) {
    const Graph sub = EdgeInducedSubgraph(g, event.ToVector());
    bool matches_some_rq = false;
    for (const Graph& rq : *relaxed) {
      if (AreIsomorphic(rq, sub)) {
        matches_some_rq = true;
        break;
      }
    }
    EXPECT_TRUE(matches_some_rq);
  }
}

TEST(ProcessorEdgeTest, EpsilonOneStillWellDefined) {
  SyntheticOptions options;
  options.num_graphs = 6;
  options.avg_vertices = 8;
  options.seed = 7007;
  auto db = GenerateDatabase(options).value();
  const QueryProcessor processor(&db, nullptr, nullptr);
  Rng rng(3);
  auto q = ExtractQuery(db[0].certain(), 3, &rng);
  ASSERT_TRUE(q.ok());
  QueryOptions qo;
  qo.delta = 1;
  qo.epsilon = 1.0;
  qo.verify_mode = QueryOptions::VerifyMode::kExact;
  auto answers = processor.Query(*q, qo);
  ASSERT_TRUE(answers.ok());
  // Only graphs with SSP exactly 1 qualify; verify the claim per answer.
  auto relaxed = GenerateRelaxedQueries(*q, 1).value();
  for (uint32_t gi : answers.value()) {
    auto ssp = ExactSubgraphSimilarityProbability(db[gi], relaxed);
    ASSERT_TRUE(ssp.ok());
    EXPECT_GE(*ssp, 1.0 - 1e-12);
  }
}

TEST(ProcessorEdgeTest, VerificationFailuresAreCountedNotFatal) {
  SyntheticOptions options;
  options.num_graphs = 6;
  options.avg_vertices = 10;
  options.edge_factor = 1.7;
  options.num_vertex_labels = 2;  // embedding-rich
  options.seed = 7011;
  auto db = GenerateDatabase(options).value();
  const QueryProcessor processor(&db, nullptr, nullptr);
  Rng rng(5);
  auto q = ExtractQuery(db[0].certain(), 4, &rng);
  ASSERT_TRUE(q.ok());
  QueryOptions qo;
  qo.delta = 2;
  qo.epsilon = 0.3;
  qo.verify_mode = QueryOptions::VerifyMode::kSample;
  // Absurdly small caps force CollectSimilarityEvents failures.
  qo.verifier.max_embeddings_per_rq = 1;
  qo.verifier.max_total_embeddings = 1;
  QueryStats stats;
  auto answers = processor.Query(*q, qo, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_GT(stats.verification_failures, 0u);
}

TEST(PrunerRandomLsimTest, RandomSelectionLsimIsValidLowerBound) {
  SyntheticOptions options;
  options.num_graphs = 8;
  options.avg_vertices = 8;
  options.num_vertex_labels = 3;
  options.seed = 7013;
  auto db = GenerateDatabase(options).value();
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 6000;
  build.sip.mc.max_samples = 6000;
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  ProbPrunerOptions po;
  po.selection = BoundSelection::kRandom;
  ProbabilisticPruner pruner(&pmi, po);
  Rng rng(11);
  auto q = ExtractQuery(db[1].certain(), 4, &rng);
  ASSERT_TRUE(q.ok());
  auto relaxed = GenerateRelaxedQueries(*q, 1).value();
  pruner.PrepareQuery(relaxed);
  for (uint32_t gi = 0; gi < db.size(); ++gi) {
    auto exact = ExactSubgraphSimilarityProbability(db[gi], relaxed);
    if (!exact.ok()) continue;
    const PruneDecision d = pruner.Bounds(gi, &rng);
    EXPECT_LE(d.lsim, *exact + 0.1) << "graph " << gi;
    EXPECT_GE(d.usim, *exact - 0.1) << "graph " << gi;
  }
}

TEST(EndToEndHandCaseTest, TwoGraphDatabaseWithKnownProbabilities) {
  // Database of two one-edge graphs: Pr(edge) = 0.9 and 0.2. Query = that
  // edge, delta = 0. At epsilon = 0.5 exactly one graph qualifies.
  auto make = [](double p) {
    GraphBuilder builder;
    const VertexId a = builder.AddVertex(1);
    const VertexId b = builder.AddVertex(2);
    auto e = builder.AddEdge(a, b, 0);
    EXPECT_TRUE(e.ok());
    NeighborEdgeSet ne;
    ne.edges = {0};
    ne.table = JointProbTable::Independent({p}).value();
    return ProbabilisticGraph::Create(builder.Build(), {ne}).value();
  };
  std::vector<ProbabilisticGraph> db{make(0.9), make(0.2)};
  const QueryProcessor processor(&db, nullptr, nullptr);
  const Graph q = MakeGraph({1, 2}, {{0, 1, 0}});
  QueryOptions qo;
  qo.delta = 0;
  qo.epsilon = 0.5;
  qo.verify_mode = QueryOptions::VerifyMode::kExact;
  auto answers = processor.Query(q, qo);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (std::vector<uint32_t>{0}));

  qo.epsilon = 0.1;
  answers = processor.Query(q, qo);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
}

TEST(EndToEndHandCaseTest, CorrelationChangesTheAnswer) {
  // Two edges at a shared vertex, each with marginal 0.5. Query needs both.
  // Comonotone: Pr(both) = 0.5; independent: 0.25. At epsilon = 0.4 the
  // correlated graph qualifies, the independent one does not — the paper's
  // core message in four lines of data.
  GraphBuilder builder;
  const VertexId a = builder.AddVertex(1);
  const VertexId b = builder.AddVertex(2);
  const VertexId c = builder.AddVertex(3);
  ASSERT_TRUE(builder.AddEdge(a, b, 0).ok());
  ASSERT_TRUE(builder.AddEdge(a, c, 0).ok());
  const Graph certain = builder.Build();

  NeighborEdgeSet correlated;
  correlated.edges = {0, 1};
  correlated.table =
      JointProbTable::FromWeights({0.5, 0.0, 0.0, 0.5}).value();
  NeighborEdgeSet independent;
  independent.edges = {0, 1};
  independent.table = JointProbTable::Independent({0.5, 0.5}).value();

  std::vector<ProbabilisticGraph> db{
      ProbabilisticGraph::Create(certain, {correlated}).value(),
      ProbabilisticGraph::Create(certain, {independent}).value()};
  const QueryProcessor processor(&db, nullptr, nullptr);
  QueryOptions qo;
  qo.delta = 0;
  qo.epsilon = 0.4;
  qo.verify_mode = QueryOptions::VerifyMode::kExact;
  auto answers = processor.Query(certain, qo);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, (std::vector<uint32_t>{0}));
}

}  // namespace
}  // namespace pgsim
