// Tests for the feature miner (Algorithm 4): support exactness, level-1
// completeness, threshold effects, and the disjoint-embedding rule.

#include <gtest/gtest.h>

#include "pgsim/graph/vf2.h"
#include "pgsim/mining/feature_miner.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::MakeTriangle;
using ::pgsim::testing::RandomGraph;

TEST(GreedyDisjointTest, CountsDisjointFamilies) {
  std::vector<EdgeBitset> embeddings{
      EdgeBitset::FromIndices(8, {0, 1}), EdgeBitset::FromIndices(8, {1, 2}),
      EdgeBitset::FromIndices(8, {3, 4}), EdgeBitset::FromIndices(8, {4, 5})};
  // Greedy picks {0,1}, skips {1,2}, picks {3,4}, skips {4,5}.
  EXPECT_EQ(GreedyDisjointCount(embeddings), 2u);
  EXPECT_EQ(GreedyDisjointCount({}), 0u);
}

TEST(FeatureMinerTest, RejectsEmptyDatabase) {
  EXPECT_FALSE(MineFeatures({}).ok());
}

TEST(FeatureMinerTest, SingleEdgeFeaturesAlwaysPresent) {
  // DB with two distinct edge patterns: (0)-(1) and (0)-(2).
  const std::vector<Graph> db{MakeGraph({0, 1}, {{0, 1, 0}}),
                              MakeGraph({0, 2}, {{0, 1, 0}}),
                              MakeGraph({0, 1, 2}, {{0, 1, 0}, {0, 2, 0}})};
  FeatureMinerOptions options;
  options.beta = 0.99;  // high frequency bar must NOT evict level-1 features
  auto mined = MineFeatures(db, options);
  ASSERT_TRUE(mined.ok());
  size_t single_edge = 0;
  for (const Feature& f : mined->features) {
    if (f.graph.NumEdges() == 1) ++single_edge;
  }
  EXPECT_EQ(single_edge, 2u);  // the two distinct labeled edges
}

TEST(FeatureMinerTest, SupportListsAreExact) {
  const std::vector<Graph> db{MakePath(3), MakeTriangle(0, 0, 0),
                              MakeGraph({1, 1}, {{0, 1, 0}})};
  auto mined = MineFeatures(db);
  ASSERT_TRUE(mined.ok());
  for (const Feature& f : mined->features) {
    for (uint32_t gi = 0; gi < db.size(); ++gi) {
      const bool in_support =
          std::find(f.support.begin(), f.support.end(), gi) !=
          f.support.end();
      EXPECT_EQ(in_support, IsSubgraphIsomorphic(f.graph, db[gi]))
          << "feature with " << f.graph.NumEdges() << " edges vs graph "
          << gi;
    }
  }
}

TEST(FeatureMinerTest, GrowsMultiEdgeFeatures) {
  // Ten copies of the same triangle-rich graph: the 2-edge path (all labels
  // 0) is frequent in every graph and should be mined at level 2.
  std::vector<Graph> db;
  Rng rng(801);
  for (int i = 0; i < 10; ++i) db.push_back(RandomGraph(&rng, 6, 4, 1));
  FeatureMinerOptions options;
  options.alpha = 0.0;   // no disjointness requirement
  options.beta = 0.5;
  options.gamma = -1.0;  // disable the discriminative filter
  options.max_vertices = 3;
  auto mined = MineFeatures(db, options);
  ASSERT_TRUE(mined.ok());
  bool has_multi_edge = false;
  for (const Feature& f : mined->features) {
    if (f.graph.NumEdges() >= 2) has_multi_edge = true;
  }
  EXPECT_TRUE(has_multi_edge);
}

TEST(FeatureMinerTest, FeaturesAreUniqueUpToIsomorphism) {
  std::vector<Graph> db;
  Rng rng(803);
  for (int i = 0; i < 8; ++i) db.push_back(RandomGraph(&rng, 6, 4, 2));
  FeatureMinerOptions options;
  options.alpha = 0.0;
  options.beta = 0.3;
  options.gamma = -1.0;
  auto mined = MineFeatures(db, options);
  ASSERT_TRUE(mined.ok());
  for (size_t i = 0; i < mined->features.size(); ++i) {
    for (size_t j = i + 1; j < mined->features.size(); ++j) {
      EXPECT_FALSE(AreIsomorphic(mined->features[i].graph,
                                 mined->features[j].graph))
          << "features " << i << " and " << j << " are isomorphic";
    }
  }
}

TEST(FeatureMinerTest, HigherBetaYieldsFewerMultiEdgeFeatures) {
  std::vector<Graph> db;
  Rng rng(807);
  for (int i = 0; i < 12; ++i) db.push_back(RandomGraph(&rng, 7, 4, 2));
  FeatureMinerOptions low, high;
  low.alpha = high.alpha = 0.0;
  low.gamma = high.gamma = -1.0;
  low.beta = 0.1;
  high.beta = 0.9;
  auto mined_low = MineFeatures(db, low);
  auto mined_high = MineFeatures(db, high);
  ASSERT_TRUE(mined_low.ok());
  ASSERT_TRUE(mined_high.ok());
  auto multi = [](const FeatureSet& fs) {
    size_t n = 0;
    for (const Feature& f : fs.features) n += f.graph.NumEdges() >= 2;
    return n;
  };
  EXPECT_GE(multi(*mined_low), multi(*mined_high));
}

TEST(FeatureMinerTest, MaxVerticesCapsFeatureSize) {
  std::vector<Graph> db;
  Rng rng(809);
  for (int i = 0; i < 8; ++i) db.push_back(RandomGraph(&rng, 8, 6, 1));
  FeatureMinerOptions options;
  options.alpha = 0.0;
  options.beta = 0.2;
  options.gamma = -1.0;
  options.max_vertices = 3;
  auto mined = MineFeatures(db, options);
  ASSERT_TRUE(mined.ok());
  for (const Feature& f : mined->features) {
    EXPECT_LE(f.graph.NumVertices(), 3u);
  }
}

TEST(FeatureMinerTest, TotalBudgetRespected) {
  std::vector<Graph> db;
  Rng rng(811);
  for (int i = 0; i < 10; ++i) db.push_back(RandomGraph(&rng, 8, 6, 3));
  FeatureMinerOptions options;
  options.alpha = 0.0;
  options.beta = 0.1;
  options.gamma = -1.0;
  options.max_features_total = 20;
  auto mined = MineFeatures(db, options);
  ASSERT_TRUE(mined.ok());
  // Level-1 features are unconditional; growth must stop at the budget.
  size_t multi_edge = 0;
  for (const Feature& f : mined->features) multi_edge += f.graph.NumEdges() > 1;
  EXPECT_LE(mined->features.size(), options.max_features_total + 40);
}

}  // namespace
}  // namespace pgsim
