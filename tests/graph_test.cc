// Tests for the graph core: builder validation, adjacency, subgraphs,
// components, fingerprints, and binary I/O.

#include <sstream>

#include <gtest/gtest.h>

#include "pgsim/graph/graph.h"
#include "pgsim/graph/io.h"
#include "pgsim/graph/label_table.h"
#include "test_util.h"

namespace pgsim {
namespace {

using ::pgsim::testing::MakeGraph;
using ::pgsim::testing::MakePath;
using ::pgsim::testing::RandomGraph;

TEST(LabelTableTest, InternIsIdempotent) {
  LabelTable table;
  const LabelId a = table.Intern("protein_kinase");
  const LabelId b = table.Intern("transporter");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("protein_kinase"), a);
  EXPECT_EQ(table.Name(a), "protein_kinase");
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Lookup("nope"), kInvalidLabel);
  EXPECT_EQ(table.Lookup("transporter"), b);
}

TEST(GraphBuilderTest, BuildsNormalizedEdges) {
  GraphBuilder builder;
  const VertexId a = builder.AddVertex(1);
  const VertexId b = builder.AddVertex(2);
  auto e = builder.AddEdge(b, a, 7);  // reversed endpoints
  ASSERT_TRUE(e.ok());
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.GetEdge(0).u, a);  // normalized u < v
  EXPECT_EQ(g.GetEdge(0).v, b);
  EXPECT_EQ(g.EdgeLabel(0), 7u);
  EXPECT_EQ(g.VertexLabel(a), 1u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder builder;
  const VertexId a = builder.AddVertex(0);
  auto e = builder.AddEdge(a, a, 0);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsParallelEdge) {
  GraphBuilder builder;
  const VertexId a = builder.AddVertex(0);
  const VertexId b = builder.AddVertex(0);
  ASSERT_TRUE(builder.AddEdge(a, b, 0).ok());
  EXPECT_FALSE(builder.AddEdge(a, b, 1).ok());
  EXPECT_FALSE(builder.AddEdge(b, a, 0).ok());
}

TEST(GraphBuilderTest, RejectsUnknownEndpoint) {
  GraphBuilder builder;
  builder.AddVertex(0);
  EXPECT_FALSE(builder.AddEdge(0, 5, 0).ok());
}

TEST(GraphTest, FindEdgeBothDirections) {
  const Graph g = MakePath(4);
  EXPECT_TRUE(g.FindEdge(0, 1).has_value());
  EXPECT_TRUE(g.FindEdge(1, 0).has_value());
  EXPECT_FALSE(g.FindEdge(0, 2).has_value());
  EXPECT_FALSE(g.FindEdge(0, 99).has_value());
}

TEST(GraphTest, AdjacencySortedAndDegrees) {
  const Graph g = MakeGraph({0, 0, 0, 0},
                            {{0, 3, 0}, {0, 1, 0}, {0, 2, 0}, {2, 3, 0}});
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(1), 1u);
  const auto& adj = g.Neighbors(0);
  for (size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LT(adj[i - 1].neighbor, adj[i].neighbor);
  }
}

TEST(GraphTest, ConnectedComponents) {
  // Two components: a path 0-1-2 and an isolated edge 3-4, plus vertex 5.
  const Graph g = MakeGraph({0, 0, 0, 0, 0, 0},
                            {{0, 1, 0}, {1, 2, 0}, {3, 4, 0}});
  uint32_t n = 0;
  const auto comp = g.ConnectedComponents(&n);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_FALSE(g.IsConnected());
  EXPECT_TRUE(MakePath(5).IsConnected());
}

TEST(GraphTest, EdgeInducedSubgraphDropsIsolatedVertices) {
  const Graph g = MakePath(5);  // edges 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4)
  std::vector<VertexId> map;
  const Graph sub = EdgeInducedSubgraph(g, {0, 3}, &map);
  EXPECT_EQ(sub.NumEdges(), 2u);
  EXPECT_EQ(sub.NumVertices(), 4u);  // vertex 2 dropped
  EXPECT_EQ(map[2], kInvalidVertex);
  EXPECT_NE(map[0], kInvalidVertex);
  EXPECT_FALSE(sub.IsConnected());
}

TEST(GraphTest, EdgeInducedSubgraphPreservesLabels) {
  const Graph g = MakeGraph({5, 6, 7}, {{0, 1, 9}, {1, 2, 8}});
  const Graph sub = EdgeInducedSubgraph(g, {1});
  ASSERT_EQ(sub.NumEdges(), 1u);
  EXPECT_EQ(sub.EdgeLabel(0), 8u);
  // The two kept vertices carry labels 6 and 7 (in some order).
  std::vector<LabelId> labels{sub.VertexLabel(0), sub.VertexLabel(1)};
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels, (std::vector<LabelId>{6, 7}));
}

TEST(GraphFingerprintTest, InvariantUnderVertexPermutation) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = RandomGraph(&rng, 7, 4, 3);
    // Random permutation of vertex ids.
    std::vector<VertexId> perm(g.NumVertices());
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(&perm);
    GraphBuilder builder;
    std::vector<VertexId> inverse(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) inverse[perm[v]] = v;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      builder.AddVertex(g.VertexLabel(inverse[v]));
    }
    for (const Edge& e : g.Edges()) {
      auto r = builder.AddEdge(perm[e.u], perm[e.v], e.label);
      (void)r;
    }
    const Graph permuted = builder.Build();
    EXPECT_EQ(GraphFingerprint(g), GraphFingerprint(permuted));
  }
}

TEST(GraphFingerprintTest, DistinguishesLabels) {
  const Graph a = MakeGraph({0, 1}, {{0, 1, 0}});
  const Graph b = MakeGraph({0, 2}, {{0, 1, 0}});
  const Graph c = MakeGraph({0, 1}, {{0, 1, 3}});
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(b));
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(c));
}

TEST(GraphIoTest, PrimitivesRoundTrip) {
  std::stringstream ss;
  WriteU32(ss, 0xdeadbeef);
  WriteU64(ss, 0x123456789abcdef0ULL);
  WriteDouble(ss, 0.383);
  WriteString(ss, "pgsim");
  EXPECT_EQ(ReadU32(ss).value(), 0xdeadbeefu);
  EXPECT_EQ(ReadU64(ss).value(), 0x123456789abcdef0ULL);
  EXPECT_DOUBLE_EQ(ReadDouble(ss).value(), 0.383);
  EXPECT_EQ(ReadString(ss).value(), "pgsim");
}

TEST(GraphIoTest, ReadPastEndFails) {
  std::stringstream ss;
  WriteU32(ss, 1);
  ASSERT_TRUE(ReadU32(ss).ok());
  EXPECT_FALSE(ReadU32(ss).ok());
}

TEST(GraphIoTest, GraphRoundTrip) {
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = RandomGraph(&rng, 8, 5, 4);
    std::stringstream ss;
    WriteGraph(ss, g);
    auto back = ReadGraph(ss);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->NumVertices(), g.NumVertices());
    EXPECT_EQ(back->NumEdges(), g.NumEdges());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(back->VertexLabel(v), g.VertexLabel(v));
    }
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      EXPECT_EQ(back->GetEdge(e).u, g.GetEdge(e).u);
      EXPECT_EQ(back->GetEdge(e).v, g.GetEdge(e).v);
      EXPECT_EQ(back->GetEdge(e).label, g.GetEdge(e).label);
    }
  }
}

TEST(GraphIoTest, ByteSizeMatchesSerializedLength) {
  Rng rng(41);
  const Graph g = RandomGraph(&rng, 6, 3, 2);
  std::stringstream ss;
  WriteGraph(ss, g);
  EXPECT_EQ(ss.str().size(), GraphByteSize(g));
}

// ---- CSR layout invariants. ----

void CheckCsrInvariants(const Graph& g) {
  const auto& offsets = g.AdjOffsets();
  const auto& entries = g.AdjEntries();
  ASSERT_EQ(offsets.size(), g.NumVertices() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), 2 * g.NumEdges());
  EXPECT_EQ(entries.size(), 2 * g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    // Offsets are monotone and agree with Degree/Neighbors.
    ASSERT_LE(offsets[v], offsets[v + 1]);
    const auto adj = g.Neighbors(v);
    EXPECT_EQ(adj.size(), g.Degree(v));
    EXPECT_EQ(adj.data(), entries.data() + offsets[v]);
    // Strictly sorted neighbor views (simple graph: no duplicates).
    for (size_t i = 1; i < adj.size(); ++i) {
      EXPECT_LT(adj[i - 1].neighbor, adj[i].neighbor);
    }
    // Every entry names a real reverse edge.
    for (const AdjEntry& a : adj) {
      const Edge& e = g.GetEdge(a.edge);
      EXPECT_TRUE((e.u == v && e.v == a.neighbor) ||
                  (e.v == v && e.u == a.neighbor));
    }
  }
}

TEST(GraphCsrTest, InvariantsHoldOnRandomGraphs) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = RandomGraph(&rng, 2 + rng.Uniform(20), rng.Uniform(12), 3);
    CheckCsrInvariants(g);
  }
}

TEST(GraphCsrTest, InvariantsHoldOnDegenerateGraphs) {
  CheckCsrInvariants(Graph());  // empty
  GraphBuilder isolated;
  isolated.AddVertex(0);
  isolated.AddVertex(1);
  isolated.AddVertex(2);
  const Graph g = isolated.Build();  // vertices, no edges
  CheckCsrInvariants(g);
  EXPECT_EQ(g.Degree(1), 0u);
  EXPECT_TRUE(g.Neighbors(1).empty());
}

TEST(GraphCsrTest, RoundTripsBuilderInput) {
  // Every builder edge must appear in both endpoints' neighbor views with
  // the correct edge id, and nowhere else (entry count == 2m).
  GraphBuilder builder;
  for (int i = 0; i < 6; ++i) builder.AddVertex(static_cast<LabelId>(i % 2));
  const std::vector<std::pair<VertexId, VertexId>> input = {
      {5, 0}, {1, 4}, {0, 3}, {2, 5}, {0, 1}, {3, 4}};
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_TRUE(
        builder.AddEdge(input[i].first, input[i].second, LabelId(i)).ok());
  }
  const Graph g = builder.Build();
  CheckCsrInvariants(g);
  ASSERT_EQ(g.NumEdges(), input.size());
  for (EdgeId id = 0; id < input.size(); ++id) {
    VertexId u = input[id].first, v = input[id].second;
    if (u > v) std::swap(u, v);
    EXPECT_EQ(g.GetEdge(id).u, u);
    EXPECT_EQ(g.GetEdge(id).v, v);
    EXPECT_EQ(g.EdgeLabel(id), id);
    ASSERT_TRUE(g.FindEdge(u, v).has_value());
    EXPECT_EQ(*g.FindEdge(u, v), id);
    EXPECT_EQ(*g.FindEdge(v, u), id);
    bool u_sees_v = false, v_sees_u = false;
    for (const AdjEntry& a : g.Neighbors(u)) {
      if (a.neighbor == v && a.edge == id) u_sees_v = true;
    }
    for (const AdjEntry& a : g.Neighbors(v)) {
      if (a.neighbor == u && a.edge == id) v_sees_u = true;
    }
    EXPECT_TRUE(u_sees_v);
    EXPECT_TRUE(v_sees_u);
  }
}

}  // namespace
}  // namespace pgsim
