// Tests for Algorithm 2 (tightest Lsim): objective evaluation, relaxed-QP
// upper bounding, rounding validity, and comparison against brute-force
// best selections on small instances.

#include <gtest/gtest.h>

#include "pgsim/query/quadratic_program.h"

namespace pgsim {
namespace {

QpWeightedSet Make(uint32_t id, std::vector<uint32_t> elements, double wl,
                   double wu) {
  QpWeightedSet s;
  s.id = id;
  s.elements = std::move(elements);
  s.wl = wl;
  s.wu = wu;
  return s;
}

// Best Definition 11 objective over all subsets (small n only).
double BruteForceBest(const std::vector<QpWeightedSet>& sets) {
  const size_t n = sets.size();
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1U << n); ++mask) {
    std::vector<size_t> selection;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1U) selection.push_back(i);
    }
    best = std::max(best, LsimObjective(sets, selection));
  }
  return best;
}

TEST(LsimObjectiveTest, MatchesDefinition11) {
  const std::vector<QpWeightedSet> sets{Make(0, {0}, 0.3, 0.4),
                                        Make(1, {1}, 0.2, 0.1)};
  // sum wl - (sum wu)^2 = 0.5 - 0.25 = 0.25.
  EXPECT_NEAR(LsimObjective(sets, {0, 1}), 0.25, 1e-12);
  // Single set: 0.3 - 0.16 = 0.14.
  EXPECT_NEAR(LsimObjective(sets, {0}), 0.14, 1e-12);
  // Clamped at zero when the quadratic term dominates.
  const std::vector<QpWeightedSet> heavy{Make(0, {0}, 0.1, 0.9)};
  EXPECT_DOUBLE_EQ(LsimObjective(heavy, {0}), 0.0);
}

TEST(LsimSolverTest, EmptySetsGiveZero) {
  Rng rng(901);
  const auto result = SolveTightestLsim(3, {}, LsimOptions(), &rng);
  EXPECT_DOUBLE_EQ(result.lsim, 0.0);
  EXPECT_TRUE(result.chosen_ids.empty());
}

TEST(LsimSolverTest, PaperExample4) {
  // Figure 6: s1 = {rq1} with (wL, wU) = (0.28, 0.36); s2 = {rq1, rq2, rq3}
  // with (0.08, 0.15). The paper assigns Lsim = 0.31, which is
  // 0.28 + 0.08 - (0.36 + 0.15)^2 = 0.0999... rounded? Both sets:
  // 0.36 - 0.2601 = 0.0999; s1 alone: 0.28 - 0.1296 = 0.1504;
  // s2 alone: 0.08 - 0.0225 = 0.0575. Our solver returns the best
  // achievable objective (0.1504 from s1 alone).
  const std::vector<QpWeightedSet> sets{Make(1, {0}, 0.28, 0.36),
                                        Make(2, {0, 1, 2}, 0.08, 0.15)};
  Rng rng(903);
  const auto result = SolveTightestLsim(3, sets, LsimOptions(), &rng);
  EXPECT_NEAR(result.lsim, BruteForceBest(sets), 1e-9);
}

TEST(LsimSolverTest, RelaxedObjectiveUpperBoundsDiscrete) {
  Rng rng(907);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.Uniform(5);
    const size_t universe = 1 + rng.Uniform(4);
    std::vector<QpWeightedSet> sets;
    for (size_t i = 0; i < n; ++i) {
      std::vector<uint32_t> elements;
      for (uint32_t e = 0; e < universe; ++e) {
        if (rng.Bernoulli(0.6)) elements.push_back(e);
      }
      sets.push_back(Make(static_cast<uint32_t>(i), elements,
                          rng.UniformDouble() * 0.5,
                          rng.UniformDouble() * 0.5));
    }
    const auto result = SolveTightestLsim(universe, sets, LsimOptions(), &rng);
    // Feasible integral solutions that satisfy coverage are feasible for the
    // relaxation, so QP(I) upper-bounds the best *covering* selection; and
    // the solver's returned lsim is always a realizable objective.
    EXPECT_GE(result.lsim, 0.0);
    // The returned lsim equals the objective of the returned selection.
    std::vector<size_t> selection;
    for (uint32_t id : result.chosen_ids) {
      for (size_t i = 0; i < sets.size(); ++i) {
        if (sets[i].id == id) selection.push_back(i);
      }
    }
    EXPECT_NEAR(result.lsim, LsimObjective(sets, selection), 1e-9);
  }
}

TEST(LsimSolverTest, FindsNearBruteForceBest) {
  Rng rng(911);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t n = 2 + rng.Uniform(5);
    std::vector<QpWeightedSet> sets;
    for (size_t i = 0; i < n; ++i) {
      sets.push_back(Make(static_cast<uint32_t>(i),
                          {static_cast<uint32_t>(i % 3)},
                          rng.UniformDouble() * 0.4,
                          rng.UniformDouble() * 0.4));
    }
    const auto result = SolveTightestLsim(3, sets, LsimOptions(), &rng);
    const double best = BruteForceBest(sets);
    // The greedy fallback considers sets in decreasing marginal order and
    // the rounding adds randomization; on these small instances we ask for
    // at least 60% of the brute-force best (typically it is equal).
    EXPECT_GE(result.lsim, 0.6 * best - 1e-9)
        << "trial=" << trial << " best=" << best << " got=" << result.lsim;
  }
}

TEST(LsimSolverTest, CoverageFlagAccurate) {
  // One set covering everything.
  const std::vector<QpWeightedSet> cover_all{Make(0, {0, 1}, 0.5, 0.1)};
  Rng rng(919);
  const auto r1 = SolveTightestLsim(2, cover_all, LsimOptions(), &rng);
  EXPECT_TRUE(r1.covered);
  // Universe element 1 is in no set: coverage ignores uncoverable elements,
  // element 0 must still be covered by the chosen selection (it is, since
  // choosing the only set maximizes the objective here).
  const std::vector<QpWeightedSet> partial{Make(0, {0}, 0.5, 0.1)};
  const auto r2 = SolveTightestLsim(2, partial, LsimOptions(), &rng);
  EXPECT_TRUE(r2.covered);
}

}  // namespace
}  // namespace pgsim
