// Tests for probabilistic pruning (Theorems 3-4): the Usim/Lsim bounds must
// bracket the exact SSP (within Monte-Carlo slack on the PMI entries), and
// pruning decisions must be consistent with exact answers.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/relaxation.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/prob_pruner.h"
#include "pgsim/query/verifier.h"

namespace pgsim {
namespace {

struct Fixture {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
};

Fixture MakeFixture(uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = 10;
  options.avg_vertices = 8;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 3;
  options.seed = seed;
  Fixture fx;
  fx.db = GenerateDatabase(options).value();
  PmiBuildOptions build;
  build.miner.alpha = 0.0;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 8000;
  build.sip.mc.max_samples = 8000;
  fx.pmi = ProbabilisticMatrixIndex::Build(fx.db, build).value();
  return fx;
}

class PrunerBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrunerBoundsTest, UsimAndLsimBracketExactSsp) {
  Fixture fx = MakeFixture(GetParam());
  ProbPrunerOptions options;
  ProbabilisticPruner pruner(&fx.pmi, options);
  Rng rng(GetParam() + 1);
  // Monte-Carlo slack on the SIP estimates propagates into Usim/Lsim.
  const double slack = 0.1;
  for (int trial = 0; trial < 3; ++trial) {
    auto q = ExtractQuery(fx.db[rng.Uniform(fx.db.size())].certain(), 4,
                          &rng);
    ASSERT_TRUE(q.ok());
    const uint32_t delta = 1;
    auto relaxed = GenerateRelaxedQueries(*q, delta);
    ASSERT_TRUE(relaxed.ok());
    pruner.PrepareQuery(*relaxed);
    for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
      auto exact = ExactSubgraphSimilarityProbability(fx.db[gi], *relaxed);
      if (!exact.ok()) continue;
      // Evaluate with epsilon 2.0 so no branch short-circuits and we get
      // both bounds back.
      const PruneDecision d = pruner.Evaluate(gi, 2.0, &rng);
      EXPECT_GE(d.usim, *exact - slack)
          << "graph " << gi << " exact=" << *exact;
      EXPECT_LE(d.lsim, *exact + slack)
          << "graph " << gi << " exact=" << *exact;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrunerBoundsTest,
                         ::testing::Values(1401ULL, 1403ULL, 1409ULL));

TEST(PrunerDecisionTest, OutcomesPartitionTheCandidates) {
  Fixture fx = MakeFixture(1411);
  ProbPrunerOptions options;
  ProbabilisticPruner pruner(&fx.pmi, options);
  Rng rng(31);
  auto q = ExtractQuery(fx.db[0].certain(), 4, &rng);
  ASSERT_TRUE(q.ok());
  auto relaxed = GenerateRelaxedQueries(*q, 1);
  ASSERT_TRUE(relaxed.ok());
  pruner.PrepareQuery(*relaxed);
  for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
    const PruneDecision d = pruner.Evaluate(gi, 0.5, &rng);
    switch (d.outcome) {
      case PruneOutcome::kPruned:
        EXPECT_LT(d.usim, 0.5);
        break;
      case PruneOutcome::kAccepted:
        EXPECT_GE(d.lsim, 0.5);
        break;
      case PruneOutcome::kCandidate:
        EXPECT_GE(d.usim, 0.5);
        EXPECT_LT(d.lsim, 0.5);
        break;
    }
    EXPECT_GE(d.usim, 0.0);
    EXPECT_LE(d.usim, 1.0);
    EXPECT_GE(d.lsim, 0.0);
    EXPECT_LE(d.lsim, 1.0);
  }
}

TEST(PrunerVariantTest, OptimizedUsimNoLooserThanRandom) {
  // Algorithm 1's cover is a minimization; a random per-rq choice can only
  // be >= on average. Check it holds in aggregate.
  Fixture fx = MakeFixture(1423);
  ProbPrunerOptions opt_options;
  opt_options.selection = BoundSelection::kOptimized;
  ProbPrunerOptions rnd_options;
  rnd_options.selection = BoundSelection::kRandom;
  ProbabilisticPruner opt(&fx.pmi, opt_options);
  ProbabilisticPruner rnd(&fx.pmi, rnd_options);
  Rng rng(37);
  auto q = ExtractQuery(fx.db[1].certain(), 4, &rng);
  ASSERT_TRUE(q.ok());
  auto relaxed = GenerateRelaxedQueries(*q, 1);
  ASSERT_TRUE(relaxed.ok());
  opt.PrepareQuery(*relaxed);
  rnd.PrepareQuery(*relaxed);
  double opt_total = 0.0, rnd_total = 0.0;
  for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
    opt_total += opt.Evaluate(gi, 2.0, &rng).usim;
    rnd_total += rnd.Evaluate(gi, 2.0, &rng).usim;
  }
  EXPECT_LE(opt_total, rnd_total + 1e-9);
}

TEST(PrunerVariantTest, SipVariantSelectsDifferentEntries) {
  Fixture fx = MakeFixture(1427);
  ProbPrunerOptions opt_options;
  opt_options.sip_variant = SipVariant::kOpt;
  ProbPrunerOptions simple_options;
  simple_options.sip_variant = SipVariant::kSimple;
  ProbabilisticPruner opt(&fx.pmi, opt_options);
  ProbabilisticPruner simple(&fx.pmi, simple_options);
  Rng rng(41);
  auto q = ExtractQuery(fx.db[2].certain(), 4, &rng);
  ASSERT_TRUE(q.ok());
  auto relaxed = GenerateRelaxedQueries(*q, 1);
  ASSERT_TRUE(relaxed.ok());
  opt.PrepareQuery(*relaxed);
  simple.PrepareQuery(*relaxed);
  // OPT SIP upper bounds are tighter (<=), so OPT Usim <= simple Usim.
  double opt_total = 0.0, simple_total = 0.0;
  for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
    opt_total += opt.Evaluate(gi, 2.0, &rng).usim;
    simple_total += simple.Evaluate(gi, 2.0, &rng).usim;
  }
  EXPECT_LE(opt_total, simple_total + 1e-9);
}

}  // namespace
}  // namespace pgsim
