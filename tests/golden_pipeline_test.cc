// End-to-end golden test of the full offline + online pipeline over a seeded
// synthetic database: mine -> build PMI -> build StructuralFilter -> relax ->
// filter -> prune -> verify. The answer sets below were produced by this
// exact configuration and are pinned so refactors of the offline phase (or
// of batching/caching) cannot silently change results. Every stage is
// deterministic by construction — seeded RNGs, order-preserving parallel
// merges — so these values are stable across thread counts and cache modes.
//
// If a change legitimately alters them (e.g. a new mining rule), re-pin by
// rerunning this configuration and updating kGolden* — and say so in the
// commit message; these numbers are the pipeline's contract.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

constexpr size_t kGoldenNumFeatures = 93;
constexpr size_t kGoldenNumEntries = 690;

struct GoldenQuery {
  std::vector<uint32_t> answers;
  size_t structural_candidates;
  size_t verification_candidates;
  size_t num_relaxed_queries;
};

// Re-pinned for PR 3's verification engine: stage 3 now pre-forks one RNG
// per candidate (instead of drawing candidates sequentially from the query
// RNG) and the Karp-Luby sampler is support-restricted with a
// descending-marginal event order and a draw-free position-0 shortcut, so
// the draw sequence — and one near-threshold verdict (query 4 gained graph
// 3) — legitimately changed. The estimates still concentrate on the same
// SSPs (verifier_engine_test pins sampled-vs-exact agreement).
const std::vector<GoldenQuery>& GoldenQueries() {
  static const std::vector<GoldenQuery> golden{
      {{2, 3, 6, 8, 13, 18}, 10, 7, 4},
      {{}, 7, 2, 3},
      {{0, 2, 3, 4, 5, 8, 16}, 13, 10, 4},
      {{13}, 9, 9, 4},
      {{0, 2, 3, 4, 5, 8, 16}, 13, 10, 4},
      {{10}, 3, 2, 4},
  };
  return golden;
}

TEST(GoldenPipelineTest, FullPipelineAnswersArePinned) {
  SyntheticOptions dataset;
  dataset.num_graphs = 20;
  dataset.avg_vertices = 9;
  dataset.edge_factor = 1.4;
  dataset.num_vertex_labels = 3;
  dataset.seed = 4100;
  const auto db = GenerateDatabase(dataset).value();
  std::vector<Graph> certain;
  for (const auto& g : db) certain.push_back(g.certain());

  PmiBuildOptions build;
  build.miner.alpha = 0.0;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 4;
  build.sip.mc.min_samples = 400;
  build.sip.mc.max_samples = 400;
  const auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  EXPECT_EQ(pmi.stats().num_features, kGoldenNumFeatures);
  EXPECT_EQ(pmi.stats().num_entries, kGoldenNumEntries);
  const auto filter = StructuralFilter::Build(certain, pmi.features());

  Rng qrng(4101);
  std::vector<Graph> queries;
  while (queries.size() < GoldenQueries().size()) {
    auto q = ExtractQuery(certain[qrng.Uniform(certain.size())], 4, &qrng);
    if (q.ok()) queries.push_back(std::move(q).value());
  }

  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.4;
  options.verifier.mc.min_samples = 400;
  options.verifier.mc.max_samples = 400;
  const QueryProcessor processor(&db, &pmi, &filter);

  // The pinned values must hold however the batch is executed — including
  // with stage 3 fanned across an intra-query verification pool, under
  // either batch scheduler (the work-stealing task graph must reproduce the
  // chunked parallel-for's answers bit for bit at any steal schedule), and
  // with the signature gate on or off (its cover test is sound, so skipped
  // matcher calls can never change an answer or a pinned candidate count).
  for (const bool use_signatures : {true, false}) {
  for (const bool enable_cache : {true, false}) {
    for (const uint32_t threads : {1u, 4u}) {
      for (const uint32_t verify_threads : {1u, 3u}) {
      for (const auto scheduler : {BatchOptions::Scheduler::kChunked,
                                   BatchOptions::Scheduler::kStealing}) {
      BatchOptions batch;
      batch.num_threads = threads;
      batch.enable_cache = enable_cache;
      batch.scheduler = scheduler;
      options.verify_threads = verify_threads;
      options.use_signatures = use_signatures;
      const auto results = processor.QueryBatch(queries, options, batch);
      ASSERT_EQ(results.size(), GoldenQueries().size());
      for (size_t i = 0; i < results.size(); ++i) {
        const GoldenQuery& golden = GoldenQueries()[i];
        ASSERT_TRUE(results[i].status.ok()) << "query " << i;
        EXPECT_EQ(results[i].answers, golden.answers)
            << "query " << i << " threads=" << threads
            << " cache=" << enable_cache
            << " verify_threads=" << verify_threads << " stealing="
            << (scheduler == BatchOptions::Scheduler::kStealing)
            << " signatures=" << use_signatures;
        EXPECT_EQ(results[i].stats.structural_candidates,
                  golden.structural_candidates)
            << i;
        EXPECT_EQ(results[i].stats.verification_candidates,
                  golden.verification_candidates)
            << i;
        EXPECT_EQ(results[i].stats.num_relaxed_queries,
                  golden.num_relaxed_queries)
            << i;
      }
      }
      }
    }
  }
  }
}

}  // namespace
}  // namespace pgsim
