// Tests for incremental PMI maintenance (AddGraph/RemoveGraph), database
// statistics, and the Theorem 5 randomized-rounding coverage guarantee.

#include <gtest/gtest.h>

#include "pgsim/datasets/stats.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/quadratic_program.h"

namespace pgsim {
namespace {

std::vector<ProbabilisticGraph> SmallDatabase(uint64_t seed, size_t n) {
  SyntheticOptions options;
  options.num_graphs = n;
  options.avg_vertices = 9;
  options.num_vertex_labels = 4;
  options.seed = seed;
  return GenerateDatabase(options).value();
}

PmiBuildOptions FastBuild() {
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 2000;
  build.sip.mc.max_samples = 2000;
  return build;
}

TEST(PmiMaintenanceTest, AddGraphCreatesConsistentColumn) {
  auto db = SmallDatabase(6001, 8);
  auto extra = SmallDatabase(6007, 2);
  const PmiBuildOptions build = FastBuild();
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  const uint32_t before = pmi.num_graphs();

  auto id = pmi.AddGraph(extra[0], build.sip, 77);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, before);
  EXPECT_EQ(pmi.num_graphs(), before + 1);

  // Entries exist exactly for features contained in the new graph.
  for (uint32_t fi = 0; fi < pmi.features().size(); ++fi) {
    const bool present = IsSubgraphIsomorphic(pmi.features()[fi].graph,
                                              extra[0].certain());
    EXPECT_EQ(pmi.Contains(*id, fi), present) << "feature " << fi;
    // Support lists were extended.
    const auto& support = pmi.features()[fi].support;
    const bool in_support =
        std::find(support.begin(), support.end(), *id) != support.end();
    EXPECT_EQ(in_support, present);
  }
  // Bounds are ordered.
  for (const PmiEntry& e : pmi.EntriesFor(*id)) {
    EXPECT_LE(e.lower_opt, e.upper_opt + 1e-6f);
  }
}

TEST(PmiMaintenanceTest, AddedColumnMatchesFreshBuildStructure) {
  auto db = SmallDatabase(6011, 8);
  const PmiBuildOptions build = FastBuild();
  // Build on the first 7 graphs, add the 8th incrementally.
  std::vector<ProbabilisticGraph> prefix(db.begin(), db.end() - 1);
  auto incremental = ProbabilisticMatrixIndex::Build(prefix, build).value();
  ASSERT_TRUE(incremental.AddGraph(db.back(), build.sip, 5).ok());
  // Fresh build on all 8 (same miner inputs up to the extra graph changing
  // support counts; compare the presence pattern of the last column against
  // feature containment, which must hold in both).
  for (uint32_t fi = 0; fi < incremental.features().size(); ++fi) {
    const bool present = IsSubgraphIsomorphic(
        incremental.features()[fi].graph, db.back().certain());
    EXPECT_EQ(incremental.Contains(7, fi), present);
  }
}

TEST(PmiMaintenanceTest, RemoveGraphShiftsIdsAndSupports) {
  auto db = SmallDatabase(6013, 6);
  const PmiBuildOptions build = FastBuild();
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  // Snapshot column 4 (it will become column 3 after removing 2).
  const std::vector<PmiEntry> snapshot = pmi.EntriesFor(4);
  ASSERT_TRUE(pmi.RemoveGraph(2).ok());
  EXPECT_EQ(pmi.num_graphs(), 5u);
  const std::vector<PmiEntry>& shifted = pmi.EntriesFor(3);
  ASSERT_EQ(shifted.size(), snapshot.size());
  for (size_t k = 0; k < snapshot.size(); ++k) {
    EXPECT_EQ(shifted[k].feature_id, snapshot[k].feature_id);
    EXPECT_FLOAT_EQ(shifted[k].lower_opt, snapshot[k].lower_opt);
  }
  // Support lists no longer mention the last old id (5) and stay sorted
  // within range.
  for (const Feature& f : pmi.features()) {
    for (uint32_t gi : f.support) {
      EXPECT_LT(gi, 5u);
    }
  }
  EXPECT_FALSE(pmi.RemoveGraph(99).ok());
}

TEST(DatabaseStatsTest, MatchesHandComputedValues) {
  auto db = SmallDatabase(6017, 10);
  const DatabaseStats stats = ComputeDatabaseStats(db);
  EXPECT_EQ(stats.num_graphs, 10u);
  double expect_vertices = 0;
  for (const auto& g : db) expect_vertices += g.certain().NumVertices();
  EXPECT_NEAR(stats.avg_vertices, expect_vertices / 10.0, 1e-9);
  EXPECT_GE(stats.max_vertices, stats.avg_vertices);
  EXPECT_EQ(stats.connected_graphs, 10u);  // generator makes connected graphs
  EXPECT_EQ(stats.tree_model_graphs, 0u);  // default partition model
  EXPECT_GT(stats.mean_edge_probability, 0.2);
  EXPECT_LT(stats.mean_edge_probability, 0.8);
  size_t total_labels = 0;
  for (size_t c : stats.vertex_label_counts) total_labels += c;
  EXPECT_EQ(static_cast<double>(total_labels), expect_vertices);
  // Degree histogram covers every vertex too.
  size_t total_degrees = 0;
  for (size_t c : stats.degree_histogram) total_degrees += c;
  EXPECT_EQ(static_cast<double>(total_degrees), expect_vertices);
  // Formatting contains the headline numbers.
  const std::string text = FormatDatabaseStats(stats);
  EXPECT_NE(text.find("graphs"), std::string::npos);
  EXPECT_NE(text.find("mean edge probability"), std::string::npos);
}

TEST(DatabaseStatsTest, EmptyDatabase) {
  const DatabaseStats stats = ComputeDatabaseStats({});
  EXPECT_EQ(stats.num_graphs, 0u);
  EXPECT_EQ(stats.avg_vertices, 0.0);
}

TEST(RoundingCoverageTest, Theorem5CoverageHoldsEmpirically) {
  // Theorem 5: after 2 ln|U| rounds of rounding with the relaxed optimum,
  // all elements are covered with probability >= 1 - 1/|U|. Our solver also
  // takes deterministic fallbacks, so coverage can only improve; check the
  // empirical coverage rate across seeds on instances where full coverage
  // is achievable and beneficial (wl >> wu so the objective rewards picks).
  const size_t universe = 8;
  std::vector<QpWeightedSet> sets;
  Rng gen(6043);
  for (uint32_t i = 0; i < 16; ++i) {
    QpWeightedSet s;
    s.id = i;
    s.wl = 0.2 + 0.1 * gen.UniformDouble();
    s.wu = 0.05 * gen.UniformDouble();
    for (uint32_t e = 0; e < universe; ++e) {
      if (gen.Bernoulli(0.4)) s.elements.push_back(e);
    }
    sets.push_back(std::move(s));
  }
  // Ensure every element is coverable.
  for (uint32_t e = 0; e < universe; ++e) {
    sets[e % sets.size()].elements.push_back(e);
  }
  size_t covered_runs = 0;
  const int runs = 40;
  for (int r = 0; r < runs; ++r) {
    Rng rng(7000 + r);
    const LsimResult result =
        SolveTightestLsim(universe, sets, LsimOptions(), &rng);
    covered_runs += result.covered;
  }
  // Theorem 5 bound: >= 1 - 1/8 = 87.5% of runs.
  EXPECT_GE(covered_runs, static_cast<size_t>(runs * 0.875));
}

}  // namespace
}  // namespace pgsim
