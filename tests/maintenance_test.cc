// Tests for live-database maintenance: incremental PMI AddGraph/RemoveGraph
// with stable ids + tombstones, frequency recomputation, compaction,
// persistence round-trips after mutation, the QueryProcessor mutation API
// (add→remove answer bit-identity, mutated-vs-fresh-rebuild equivalence,
// mutation under concurrent query load), plus database statistics and the
// Theorem 5 randomized-rounding coverage guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "pgsim/datasets/stats.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/graph/vf2.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/processor.h"
#include "pgsim/query/quadratic_program.h"
#include "pgsim/query/structural_filter.h"

namespace pgsim {
namespace {

std::vector<ProbabilisticGraph> SmallDatabase(uint64_t seed, size_t n) {
  SyntheticOptions options;
  options.num_graphs = n;
  options.avg_vertices = 9;
  options.num_vertex_labels = 4;
  options.seed = seed;
  return GenerateDatabase(options).value();
}

PmiBuildOptions FastBuild() {
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 2000;
  build.sip.mc.max_samples = 2000;
  return build;
}

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(PmiMaintenanceTest, AddGraphCreatesConsistentColumn) {
  auto db = SmallDatabase(6001, 8);
  auto extra = SmallDatabase(6007, 2);
  const PmiBuildOptions build = FastBuild();
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  const uint32_t before = pmi.num_graphs();
  const uint64_t epoch_before = pmi.epoch();

  auto id = pmi.AddGraph(extra[0], build.sip, 77);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, before);
  EXPECT_EQ(pmi.num_graphs(), before + 1);
  EXPECT_EQ(pmi.num_alive(), before + 1);
  EXPECT_GT(pmi.epoch(), epoch_before);
  EXPECT_TRUE(pmi.IsAlive(*id));

  // Entries exist exactly for features contained in the new graph.
  for (uint32_t fi = 0; fi < pmi.features().size(); ++fi) {
    const bool present = IsSubgraphIsomorphic(pmi.features()[fi].graph,
                                              extra[0].certain());
    EXPECT_EQ(pmi.Contains(*id, fi), present) << "feature " << fi;
    // Support lists were extended.
    const auto& support = pmi.features()[fi].support;
    const bool in_support =
        std::find(support.begin(), support.end(), *id) != support.end();
    EXPECT_EQ(in_support, present);
  }
  // Bounds are ordered.
  for (const PmiEntry& e : pmi.EntriesFor(*id)) {
    EXPECT_LE(e.lower_opt, e.upper_opt + 1e-6f);
  }
}

TEST(PmiMaintenanceTest, AddedColumnMatchesFreshBuildStructure) {
  auto db = SmallDatabase(6011, 8);
  const PmiBuildOptions build = FastBuild();
  // Build on the first 7 graphs, add the 8th incrementally.
  std::vector<ProbabilisticGraph> prefix(db.begin(), db.end() - 1);
  auto incremental = ProbabilisticMatrixIndex::Build(prefix, build).value();
  ASSERT_TRUE(incremental.AddGraph(db.back(), build.sip, 5).ok());
  // Fresh build on all 8 (same miner inputs up to the extra graph changing
  // support counts; compare the presence pattern of the last column against
  // feature containment, which must hold in both).
  for (uint32_t fi = 0; fi < incremental.features().size(); ++fi) {
    const bool present = IsSubgraphIsomorphic(
        incremental.features()[fi].graph, db.back().certain());
    EXPECT_EQ(incremental.Contains(7, fi), present);
  }
}

TEST(PmiMaintenanceTest, RemoveGraphTombstonesWithStableIds) {
  auto db = SmallDatabase(6013, 6);
  const PmiBuildOptions build = FastBuild();
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  // Snapshot columns 4 and 5: removing 2 must NOT shift them.
  const std::vector<PmiEntry> col4 = pmi.EntriesFor(4);
  const std::vector<PmiEntry> col5 = pmi.EntriesFor(5);
  const uint64_t epoch_before = pmi.epoch();

  ASSERT_TRUE(pmi.RemoveGraph(2).ok());
  EXPECT_EQ(pmi.num_graphs(), 6u);  // columns persist as tombstones
  EXPECT_EQ(pmi.num_alive(), 5u);
  EXPECT_FALSE(pmi.IsAlive(2));
  EXPECT_GT(pmi.epoch(), epoch_before);

  // Ids are stable: surviving columns read back unchanged.
  const std::vector<PmiEntry> after4 = pmi.EntriesFor(4);
  const std::vector<PmiEntry> after5 = pmi.EntriesFor(5);
  ASSERT_EQ(after4.size(), col4.size());
  ASSERT_EQ(after5.size(), col5.size());
  for (size_t k = 0; k < col4.size(); ++k) {
    EXPECT_EQ(after4[k].feature_id, col4[k].feature_id);
    EXPECT_FLOAT_EQ(after4[k].lower_opt, col4[k].lower_opt);
    EXPECT_FLOAT_EQ(after4[k].upper_opt, col4[k].upper_opt);
  }
  // The tombstoned column serves nothing.
  EXPECT_TRUE(pmi.EntriesFor(2).empty());
  // Support lists dropped exactly id 2.
  for (const Feature& f : pmi.features()) {
    for (uint32_t gi : f.support) {
      EXPECT_NE(gi, 2u);
      EXPECT_LT(gi, 6u);
    }
  }
  // Double-remove and out-of-range are rejected.
  EXPECT_FALSE(pmi.RemoveGraph(2).ok());
  EXPECT_FALSE(pmi.RemoveGraph(99).ok());
}

TEST(PmiMaintenanceTest, FrequencyRecomputedOnEveryMutation) {
  auto db = SmallDatabase(6019, 8);
  auto extra = SmallDatabase(6023, 1);
  const PmiBuildOptions build = FastBuild();
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();

  // Maintained contract: frequency == |support| / num_alive after every
  // mutation (mining's alpha-disjoint numerator is build-time only).
  ASSERT_TRUE(pmi.AddGraph(extra[0], build.sip, 3).ok());
  for (const Feature& f : pmi.features()) {
    EXPECT_NEAR(f.frequency,
                static_cast<double>(f.support.size()) / pmi.num_alive(), 1e-12);
  }
  ASSERT_TRUE(pmi.RemoveGraph(0).ok());
  for (const Feature& f : pmi.features()) {
    EXPECT_NEAR(f.frequency,
                static_cast<double>(f.support.size()) / pmi.num_alive(), 1e-12);
  }
  // The maintenance report reflects the mutations.
  const PmiMaintenance m = pmi.maintenance();
  EXPECT_EQ(m.adds_since_build, 1u);
  EXPECT_EQ(m.removes_since_build, 1u);
  EXPECT_EQ(m.num_alive, pmi.num_alive());
  EXPECT_EQ(m.num_tombstones, 1u);
}

TEST(PmiMaintenanceTest, CompactReclaimsTombstones) {
  auto db = SmallDatabase(6029, 6);
  const PmiBuildOptions build = FastBuild();
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  const std::vector<PmiEntry> col3 = pmi.EntriesFor(3);
  const std::vector<PmiEntry> col5 = pmi.EntriesFor(5);

  ASSERT_TRUE(pmi.RemoveGraph(1).ok());
  ASSERT_TRUE(pmi.RemoveGraph(4).ok());
  pmi.Compact();
  EXPECT_EQ(pmi.num_graphs(), 4u);
  EXPECT_EQ(pmi.num_alive(), 4u);
  // Renumbering: old 3 -> 2, old 5 -> 3 (alive ids shift down in order).
  const std::vector<PmiEntry> new2 = pmi.EntriesFor(2);
  const std::vector<PmiEntry> new3 = pmi.EntriesFor(3);
  ASSERT_EQ(new2.size(), col3.size());
  ASSERT_EQ(new3.size(), col5.size());
  for (size_t k = 0; k < col3.size(); ++k) {
    EXPECT_EQ(new2[k].feature_id, col3[k].feature_id);
    EXPECT_FLOAT_EQ(new2[k].upper_opt, col3[k].upper_opt);
  }
  for (size_t k = 0; k < col5.size(); ++k) {
    EXPECT_EQ(new3[k].feature_id, col5[k].feature_id);
    EXPECT_FLOAT_EQ(new3[k].upper_opt, col5[k].upper_opt);
  }
}

TEST(PmiMaintenanceTest, SaveLoadRoundTripAfterMutation) {
  auto db = SmallDatabase(6031, 7);
  auto extra = SmallDatabase(6037, 1);
  const PmiBuildOptions build = FastBuild();
  auto pmi = ProbabilisticMatrixIndex::Build(db, build).value();
  ASSERT_TRUE(pmi.AddGraph(extra[0], build.sip, 11).ok());
  ASSERT_TRUE(pmi.RemoveGraph(3).ok());

  const std::string path1 = testing::TempDir() + "/pgsim_maint_1.pmi";
  const std::string path2 = testing::TempDir() + "/pgsim_maint_2.pmi";
  ASSERT_TRUE(pmi.Save(path1).ok());
  auto loaded = ProbabilisticMatrixIndex::Load(path1);
  ASSERT_TRUE(loaded.ok());

  // The loaded index preserves the mutated state exactly...
  EXPECT_EQ(loaded->num_graphs(), pmi.num_graphs());
  EXPECT_EQ(loaded->num_alive(), pmi.num_alive());
  EXPECT_EQ(loaded->epoch(), pmi.epoch());
  EXPECT_FALSE(loaded->IsAlive(3));
  for (uint32_t gi = 0; gi < pmi.num_graphs(); ++gi) {
    const auto a = pmi.EntriesFor(gi);
    const auto b = loaded->EntriesFor(gi);
    ASSERT_EQ(a.size(), b.size()) << "column " << gi;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].feature_id, b[k].feature_id);
      EXPECT_FLOAT_EQ(a[k].lower_opt, b[k].lower_opt);
      EXPECT_FLOAT_EQ(a[k].upper_opt, b[k].upper_opt);
      EXPECT_FLOAT_EQ(a[k].lower_simple, b[k].lower_simple);
      EXPECT_FLOAT_EQ(a[k].upper_simple, b[k].upper_simple);
    }
  }
  // ...and re-saving reproduces the file byte for byte.
  ASSERT_TRUE(loaded->Save(path2).ok());
  EXPECT_EQ(Slurp(path1), Slurp(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

// ---------------------------------------------------------------------------
// QueryProcessor live-mutation pins.
// ---------------------------------------------------------------------------

struct LiveSetup {
  std::vector<ProbabilisticGraph> db;
  ProbabilisticMatrixIndex pmi;
  std::vector<Graph> certain;
  StructuralFilter filter;
};

LiveSetup BuildLive(uint64_t seed, size_t n) {
  LiveSetup s;
  s.db = SmallDatabase(seed, n);
  s.pmi = ProbabilisticMatrixIndex::Build(s.db, FastBuild()).value();
  for (const auto& g : s.db) s.certain.push_back(g.certain());
  StructuralFilterOptions fo;
  fo.exact_check = true;
  s.filter = StructuralFilter::Build(s.certain, s.pmi.features(), fo);
  return s;
}

QueryOptions LiveQueryOptions() {
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.3;
  options.seed = 17;
  return options;
}

TEST(ProcessorMaintenanceTest, AddRemoveRoundTripIsAnswerIdentical) {
  LiveSetup s = BuildLive(6043, 8);
  auto extra = SmallDatabase(6047, 1);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  const QueryOptions options = LiveQueryOptions();
  const std::vector<Graph> queries = {s.db[1].certain(), s.db[5].certain()};

  std::vector<std::vector<uint32_t>> before;
  for (const Graph& q : queries) {
    before.push_back(processor.Query(q, options).value());
  }
  const uint64_t epoch0 = processor.epoch();

  // Add a graph, then remove it again: ids are stable, so every serving
  // structure returns to an answer-equivalent state — the golden answers
  // must come back bit-identical.
  auto id = processor.AddGraph(extra[0], /*seed=*/23);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 8u);
  EXPECT_EQ(processor.num_alive(), 9u);
  ASSERT_TRUE(processor.RemoveGraph(*id).ok());
  EXPECT_EQ(processor.num_alive(), 8u);
  EXPECT_GT(processor.epoch(), epoch0);

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(processor.Query(queries[qi], options).value(), before[qi])
        << "query " << qi;
  }
}

TEST(ProcessorMaintenanceTest, MutatedIndexMatchesFreshRebuild) {
  // Exact verification: the answer set depends only on which graphs are
  // alive, not on the (seed-dependent) incremental bound values — so a
  // mutated index must agree with an index rebuilt from scratch over the
  // same final database.
  auto base = SmallDatabase(6053, 7);
  auto extra = SmallDatabase(6059, 2);

  LiveSetup mutated = BuildLive(6053, 7);
  QueryProcessor live(&mutated.db, &mutated.pmi, &mutated.filter);
  ASSERT_TRUE(live.AddGraph(extra[0], 31).ok());
  ASSERT_TRUE(live.AddGraph(extra[1], 37).ok());
  ASSERT_TRUE(live.RemoveGraph(2).ok());

  // Fresh rebuild over the same final membership (ids shift: the fresh
  // database drops graph 2, so compact the live one to align numbering).
  live.Compact();
  std::vector<ProbabilisticGraph> fresh_db;
  for (size_t gi = 0; gi < base.size(); ++gi) {
    if (gi != 2) fresh_db.push_back(base[gi]);
  }
  fresh_db.push_back(extra[0]);
  fresh_db.push_back(extra[1]);
  auto fresh_pmi = ProbabilisticMatrixIndex::Build(fresh_db, FastBuild()).value();
  std::vector<Graph> fresh_certain;
  for (const auto& g : fresh_db) fresh_certain.push_back(g.certain());
  StructuralFilterOptions fo;
  fo.exact_check = true;
  StructuralFilter fresh_filter =
      StructuralFilter::Build(fresh_certain, fresh_pmi.features(), fo);
  const QueryProcessor fresh(&fresh_db, &fresh_pmi, &fresh_filter);

  QueryOptions options = LiveQueryOptions();
  options.verify_mode = QueryOptions::VerifyMode::kExact;
  const std::vector<Graph> queries = {base[0].certain(), base[4].certain(),
                                      extra[0].certain()};
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(live.Query(queries[qi], options).value(),
              fresh.Query(queries[qi], options).value())
        << "query " << qi;
  }
}

TEST(ProcessorMaintenanceTest, AutoCompactionAfterManyRemovals) {
  LiveSetup s = BuildLive(6067, 40);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  // Remove 20 of 40: the threshold (>= 16 tombstones and >= half) triggers
  // auto-compaction, shrinking every structure in lockstep.
  for (uint32_t gi = 0; gi < 20; ++gi) {
    ASSERT_TRUE(processor.RemoveGraph(gi).ok());
  }
  EXPECT_EQ(processor.num_alive(), 20u);
  EXPECT_EQ(s.db.size(), 20u);
  EXPECT_EQ(s.pmi.num_graphs(), 20u);
  EXPECT_EQ(s.filter.num_graphs(), 20u);
  // Queries still serve consistently after compaction.
  const QueryOptions options = LiveQueryOptions();
  auto answers = processor.Query(s.db[0].certain(), options);
  ASSERT_TRUE(answers.ok());
  for (uint32_t gi : answers.value()) EXPECT_LT(gi, 20u);
}

TEST(ProcessorMaintenanceTest, CompactWithoutTombstonesIsNoOp) {
  LiveSetup s = BuildLive(6083, 4);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  const uint64_t epoch = processor.epoch();
  processor.Compact();
  // Nothing to reclaim: no renumbering, no epoch bump (callers' cached ids
  // and answer-cache entries stay valid).
  EXPECT_EQ(processor.epoch(), epoch);
  EXPECT_EQ(processor.num_alive(), 4u);
  EXPECT_EQ(s.db.size(), 4u);
}

TEST(ProcessorMaintenanceTest, RemoveAllThenCompactServesEmptyDatabase) {
  LiveSetup s = BuildLive(6089, 4);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  const Graph q = s.db[0].certain();
  for (uint32_t gi = 0; gi < 4; ++gi) {
    ASSERT_TRUE(processor.RemoveGraph(gi).ok());
  }
  EXPECT_EQ(processor.num_alive(), 0u);
  processor.Compact();
  EXPECT_EQ(processor.num_alive(), 0u);
  EXPECT_EQ(s.db.size(), 0u);
  EXPECT_EQ(s.pmi.num_graphs(), 0u);
  // Queries against the emptied database answer cleanly (and emptily).
  auto answers = processor.Query(q, LiveQueryOptions());
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
  // Compacting the already-empty database is a clean no-op.
  const uint64_t epoch = processor.epoch();
  processor.Compact();
  EXPECT_EQ(processor.epoch(), epoch);
  // Every remove on the empty database is a clean validation error.
  EXPECT_FALSE(processor.RemoveGraph(0).ok());
  EXPECT_EQ(processor.epoch(), epoch);
}

TEST(ProcessorMaintenanceTest, ReadOnlyProcessorRejectsMutation) {
  LiveSetup s = BuildLive(6071, 4);
  const std::vector<ProbabilisticGraph>* const_db = &s.db;
  QueryProcessor processor(const_db, &s.pmi, &s.filter);
  EXPECT_FALSE(processor.AddGraph(s.db[0], 1).ok());
  EXPECT_FALSE(processor.RemoveGraph(0).ok());
}

TEST(ProcessorMaintenanceTest, MutateUnderConcurrentQueryLoad) {
  // Races between QueryBatch (shared lock) and AddGraph/RemoveGraph
  // (exclusive lock) — the TSan CI job runs this to prove the serving lock
  // covers every structure the mutation touches.
  LiveSetup s = BuildLive(6073, 10);
  auto extra = SmallDatabase(6079, 1);
  QueryProcessor processor(&s.db, &s.pmi, &s.filter);
  const QueryOptions options = LiveQueryOptions();
  const std::vector<Graph> queries = {s.db[0].certain(), s.db[3].certain(),
                                      s.db[7].certain()};

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    for (int round = 0; round < 8; ++round) {
      auto id = processor.AddGraph(extra[0], 100 + round);
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(processor.RemoveGraph(*id).ok());
    }
    stop.store(true);
  });
  BatchOptions batch;
  batch.num_threads = 2;
  size_t batches = 0;
  while (!stop.load() || batches < 2) {
    const auto results = processor.QueryBatch(queries, options, batch);
    for (const BatchQueryResult& r : results) {
      ASSERT_TRUE(r.status.ok());
      // Each batch sees a consistent membership: answer ids in range.
      for (uint32_t gi : r.answers) EXPECT_LE(gi, 10u);
    }
    ++batches;
  }
  mutator.join();
  EXPECT_EQ(processor.num_alive(), 10u);
}

TEST(DatabaseStatsTest, MatchesHandComputedValues) {
  auto db = SmallDatabase(6017, 10);
  const DatabaseStats stats = ComputeDatabaseStats(db);
  EXPECT_EQ(stats.num_graphs, 10u);
  double expect_vertices = 0;
  for (const auto& g : db) expect_vertices += g.certain().NumVertices();
  EXPECT_NEAR(stats.avg_vertices, expect_vertices / 10.0, 1e-9);
  EXPECT_GE(stats.max_vertices, stats.avg_vertices);
  EXPECT_EQ(stats.connected_graphs, 10u);  // generator makes connected graphs
  EXPECT_EQ(stats.tree_model_graphs, 0u);  // default partition model
  EXPECT_GT(stats.mean_edge_probability, 0.2);
  EXPECT_LT(stats.mean_edge_probability, 0.8);
  size_t total_labels = 0;
  for (size_t c : stats.vertex_label_counts) total_labels += c;
  EXPECT_EQ(static_cast<double>(total_labels), expect_vertices);
  // Degree histogram covers every vertex too.
  size_t total_degrees = 0;
  for (size_t c : stats.degree_histogram) total_degrees += c;
  EXPECT_EQ(static_cast<double>(total_degrees), expect_vertices);
  // Formatting contains the headline numbers.
  const std::string text = FormatDatabaseStats(stats);
  EXPECT_NE(text.find("graphs"), std::string::npos);
  EXPECT_NE(text.find("mean edge probability"), std::string::npos);
}

TEST(DatabaseStatsTest, EmptyDatabase) {
  const DatabaseStats stats = ComputeDatabaseStats({});
  EXPECT_EQ(stats.num_graphs, 0u);
  EXPECT_EQ(stats.avg_vertices, 0.0);
}

TEST(RoundingCoverageTest, Theorem5CoverageHoldsEmpirically) {
  // Theorem 5: after 2 ln|U| rounds of rounding with the relaxed optimum,
  // all elements are covered with probability >= 1 - 1/|U|. Our solver also
  // takes deterministic fallbacks, so coverage can only improve; check the
  // empirical coverage rate across seeds on instances where full coverage
  // is achievable and beneficial (wl >> wu so the objective rewards picks).
  const size_t universe = 8;
  std::vector<QpWeightedSet> sets;
  Rng gen(6043);
  for (uint32_t i = 0; i < 16; ++i) {
    QpWeightedSet s;
    s.id = i;
    s.wl = 0.2 + 0.1 * gen.UniformDouble();
    s.wu = 0.05 * gen.UniformDouble();
    for (uint32_t e = 0; e < universe; ++e) {
      if (gen.Bernoulli(0.4)) s.elements.push_back(e);
    }
    sets.push_back(std::move(s));
  }
  // Ensure every element is coverable.
  for (uint32_t e = 0; e < universe; ++e) {
    sets[e % sets.size()].elements.push_back(e);
  }
  size_t covered_runs = 0;
  const int runs = 40;
  for (int r = 0; r < runs; ++r) {
    Rng rng(7000 + r);
    const LsimResult result =
        SolveTightestLsim(universe, sets, LsimOptions(), &rng);
    covered_runs += result.covered;
  }
  // Theorem 5 bound: >= 1 - 1/8 = 87.5% of runs.
  EXPECT_GE(covered_runs, static_cast<size_t>(runs * 0.875));
}

}  // namespace
}  // namespace pgsim
