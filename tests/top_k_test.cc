// Tests for the top-k extension: ranking correctness against a full exact
// scan, early-termination soundness, and parameter validation.

#include <gtest/gtest.h>

#include "pgsim/datasets/synthetic.h"
#include "pgsim/index/pmi.h"
#include "pgsim/query/top_k.h"
#include "pgsim/query/verifier.h"

namespace pgsim {
namespace {

struct Fixture {
  std::vector<ProbabilisticGraph> db;
  std::vector<Graph> certain;
  ProbabilisticMatrixIndex pmi;
  StructuralFilter filter;
};

Fixture MakeFixture(uint64_t seed) {
  SyntheticOptions options;
  options.num_graphs = 14;
  options.avg_vertices = 8;
  options.edge_factor = 1.3;
  options.num_vertex_labels = 3;
  options.seed = seed;
  Fixture fx;
  fx.db = GenerateDatabase(options).value();
  for (const auto& g : fx.db) fx.certain.push_back(g.certain());
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 4000;
  build.sip.mc.max_samples = 4000;
  fx.pmi = ProbabilisticMatrixIndex::Build(fx.db, build).value();
  fx.filter = StructuralFilter::Build(fx.certain, fx.pmi.features());
  return fx;
}

TEST(TopKTest, RejectsBadParameters) {
  Fixture fx = MakeFixture(4001);
  Rng rng(1);
  auto q = ExtractQuery(fx.certain[0], 4, &rng);
  ASSERT_TRUE(q.ok());
  TopKOptions options;
  options.k = 0;
  EXPECT_FALSE(TopKQuery(fx.db, fx.pmi, &fx.filter, *q, options).ok());
  options.k = 3;
  options.delta = 4;  // == |E(q)|
  EXPECT_FALSE(TopKQuery(fx.db, fx.pmi, &fx.filter, *q, options).ok());
}

class TopKRankingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKRankingTest, ExactModeMatchesFullScanRanking) {
  Fixture fx = MakeFixture(GetParam());
  Rng rng(GetParam() + 1);
  auto q = ExtractQuery(fx.certain[1], 4, &rng);
  ASSERT_TRUE(q.ok());
  TopKOptions options;
  options.k = 4;
  options.delta = 1;
  options.exact_verification = true;
  auto result = TopKQuery(fx.db, fx.pmi, &fx.filter, *q, options);
  ASSERT_TRUE(result.ok());

  // Ground truth: exact SSP of every graph, ranked.
  auto relaxed = GenerateRelaxedQueries(*q, options.delta).value();
  std::vector<std::pair<double, uint32_t>> truth;
  for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
    auto ssp = ExactSubgraphSimilarityProbability(fx.db[gi], relaxed);
    ASSERT_TRUE(ssp.ok());
    if (*ssp > 0.0) truth.emplace_back(*ssp, gi);
  }
  std::sort(truth.begin(), truth.end(), std::greater<>());

  // The returned entries must be the true top-k up to the Monte-Carlo
  // noise of the PMI upper bounds that drive early termination: a graph may
  // be swapped for one whose exact SSP is within the noise band.
  const size_t expected = std::min<size_t>(options.k, truth.size());
  ASSERT_EQ(result->entries.size(), expected);
  for (size_t i = 0; i < expected; ++i) {
    EXPECT_NEAR(result->entries[i].ssp, truth[i].first, 0.05)
        << "rank " << i;
  }
  // Entries are sorted descending.
  for (size_t i = 1; i < result->entries.size(); ++i) {
    EXPECT_GE(result->entries[i - 1].ssp, result->entries[i].ssp);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKRankingTest,
                         ::testing::Values(4003ULL, 4007ULL, 4013ULL));

TEST(TopKTest, EarlyTerminationNeverDropsTrueTopK) {
  // Even when candidates are skipped by the bound, the exact-mode result
  // must equal the brute-force ranking (the bound is an upper bound).
  Fixture fx = MakeFixture(4019);
  Rng rng(5);
  for (int trial = 0; trial < 3; ++trial) {
    auto q = ExtractQuery(fx.certain[trial], 4, &rng);
    ASSERT_TRUE(q.ok());
    TopKOptions options;
    options.k = 2;
    options.delta = 1;
    options.exact_verification = true;
    auto result = TopKQuery(fx.db, fx.pmi, &fx.filter, *q, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->verified + result->skipped_by_bound,
              result->structural_candidates);
    auto relaxed = GenerateRelaxedQueries(*q, options.delta).value();
    double best = 0.0;
    for (uint32_t gi = 0; gi < fx.db.size(); ++gi) {
      auto ssp = ExactSubgraphSimilarityProbability(fx.db[gi], relaxed);
      ASSERT_TRUE(ssp.ok());
      best = std::max(best, *ssp);
    }
    if (!result->entries.empty()) {
      // The true best can only be missed within the bound-noise band.
      EXPECT_NEAR(result->entries[0].ssp, best, 0.05) << "trial " << trial;
    } else {
      EXPECT_EQ(best, 0.0);
    }
  }
}

TEST(TopKTest, SampledModeApproximatesExactRanking) {
  Fixture fx = MakeFixture(4021);
  Rng rng(9);
  auto q = ExtractQuery(fx.certain[2], 4, &rng);
  ASSERT_TRUE(q.ok());
  TopKOptions exact_options;
  exact_options.k = 3;
  exact_options.delta = 1;
  exact_options.exact_verification = true;
  TopKOptions smp_options = exact_options;
  smp_options.exact_verification = false;
  smp_options.verifier.mc.min_samples = 20000;
  smp_options.verifier.mc.max_samples = 20000;
  auto exact = TopKQuery(fx.db, fx.pmi, &fx.filter, *q, exact_options);
  auto smp = TopKQuery(fx.db, fx.pmi, &fx.filter, *q, smp_options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(smp.ok());
  ASSERT_EQ(exact->entries.size(), smp->entries.size());
  // The sampled probabilities of the top entries are close to exact ones.
  for (size_t i = 0; i < exact->entries.size(); ++i) {
    EXPECT_NEAR(exact->entries[i].ssp, smp->entries[i].ssp, 0.08)
        << "rank " << i;
  }
}

TEST(TopKTest, WorksWithoutStructuralFilter) {
  Fixture fx = MakeFixture(4027);
  Rng rng(13);
  auto q = ExtractQuery(fx.certain[3], 4, &rng);
  ASSERT_TRUE(q.ok());
  TopKOptions options;
  options.k = 3;
  options.delta = 1;
  options.exact_verification = true;
  auto with = TopKQuery(fx.db, fx.pmi, &fx.filter, *q, options);
  auto without = TopKQuery(fx.db, fx.pmi, nullptr, *q, options);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  ASSERT_EQ(with->entries.size(), without->entries.size());
  for (size_t i = 0; i < with->entries.size(); ++i) {
    EXPECT_NEAR(with->entries[i].ssp, without->entries[i].ssp, 1e-9);
  }
}

TEST(AdaptiveSmpTest, AdaptiveEstimateNearExact) {
  Fixture fx = MakeFixture(4031);
  Rng rng(17);
  auto q = ExtractQuery(fx.certain[4], 4, &rng);
  ASSERT_TRUE(q.ok());
  auto relaxed = GenerateRelaxedQueries(*q, 1).value();
  VerifierOptions options;
  options.adaptive = true;
  options.mc.xi = 0.05;
  options.mc.tau = 0.05;
  options.mc.max_samples = 200'000;
  for (uint32_t gi = 0; gi < 6; ++gi) {
    auto exact = ExactSubgraphSimilarityProbability(fx.db[gi], relaxed);
    ASSERT_TRUE(exact.ok());
    auto adaptive =
        SampleSubgraphSimilarityProbability(fx.db[gi], relaxed, options, &rng);
    ASSERT_TRUE(adaptive.ok());
    EXPECT_NEAR(*adaptive, *exact, 0.06) << "graph " << gi;
  }
}

}  // namespace
}  // namespace pgsim
