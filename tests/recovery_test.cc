// Crash-recovery tests for the durable live database. The centerpiece is a
// fork-kill matrix: for every failpoint site on the WAL and snapshot IO
// paths, a forked child arms a crash (or torn-write) failpoint, runs a
// mutation plus a checkpoint, and dies mid-IO; the parent reopens the
// directory and asserts the recovered database answers queries bit-
// identically to either the pre-mutation or the post-mutation state —
// never anything in between.
//
// Also covered: WAL replay on reopen, checkpoint WAL truncation, recovery
// stats, the wedge-free mutation error paths (satellite: invalid removes
// and double-creates leave epoch and log untouched), and mutating while a
// checkpoint is in flight.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "pgsim/common/failpoint.h"
#include "pgsim/common/random.h"
#include "pgsim/datasets/synthetic.h"
#include "pgsim/query/processor.h"
#include "pgsim/storage/durable_db.h"

namespace pgsim {
namespace {

namespace fs = std::filesystem;

std::vector<ProbabilisticGraph> SmallDatabase(uint64_t seed, size_t n) {
  SyntheticOptions options;
  options.num_graphs = n;
  options.avg_vertices = 8;
  options.num_vertex_labels = 4;
  options.seed = seed;
  return GenerateDatabase(options).value();
}

PmiBuildOptions FastBuild() {
  PmiBuildOptions build;
  build.miner.beta = 0.2;
  build.miner.gamma = -1.0;
  build.miner.max_vertices = 3;
  build.sip.mc.min_samples = 1000;
  build.sip.mc.max_samples = 1000;
  return build;
}

QueryOptions GoldenOptions() {
  QueryOptions options;
  options.delta = 1;
  options.epsilon = 0.3;
  options.seed = 17;
  return options;
}

StructuralFilterOptions ExactFilter() {
  StructuralFilterOptions options;
  options.exact_check = true;
  return options;
}

std::string FreshDir(const char* name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::vector<uint32_t>> Answers(const QueryProcessor& processor,
                                           const std::vector<Graph>& queries) {
  std::vector<std::vector<uint32_t>> out;
  for (const Graph& q : queries) {
    out.push_back(processor.Query(q, GoldenOptions()).value());
  }
  return out;
}

TEST(DurableDbTest, CreateServesAndRefusesDoubleCreate) {
  const std::string dir = FreshDir("pgsim_durable_create");
  auto db = DurableDatabase::Create(dir, SmallDatabase(7001, 6), FastBuild(),
                                    ExactFilter());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->epoch(), 0u);
  EXPECT_EQ((*db)->snapshot_generation(), 0u);
  auto answers = (*db)->processor().Query(SmallDatabase(7001, 6)[0].certain(),
                                          GoldenOptions());
  ASSERT_TRUE(answers.ok());

  // A second Create on the same directory must refuse, not clobber.
  auto again = DurableDatabase::Create(dir, SmallDatabase(7001, 6),
                                       FastBuild(), ExactFilter());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
  fs::remove_all(dir);
}

TEST(DurableDbTest, MutationsReplayFromWalOnReopen) {
  const std::string dir = FreshDir("pgsim_durable_replay");
  auto base = SmallDatabase(7011, 6);
  auto extra = SmallDatabase(7013, 1);
  const std::vector<Graph> queries = {base[0].certain(), base[3].certain(),
                                      extra[0].certain()};
  std::vector<std::vector<uint32_t>> golden;
  {
    auto db = DurableDatabase::Create(dir, base, FastBuild(), ExactFilter());
    ASSERT_TRUE(db.ok());
    auto id = (*db)->AddGraph(extra[0], 23);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 6u);
    ASSERT_TRUE((*db)->RemoveGraph(2).ok());
    golden = Answers((*db)->processor(), queries);
    // No checkpoint: the mutations live only in the WAL.
    EXPECT_EQ((*db)->mutations_since_checkpoint(), 2u);
  }

  auto reopened = QueryProcessor::Open(dir);
  ASSERT_TRUE(reopened.ok());
  const RecoveryStats& rec = (*reopened)->recovery();
  EXPECT_EQ(rec.snapshot_gen, 0u);
  EXPECT_EQ(rec.wal_records_seen, 2u);
  EXPECT_EQ(rec.wal_records_replayed, 2u);
  EXPECT_EQ(rec.wal_records_skipped, 0u);
  EXPECT_FALSE(rec.wal_tail_truncated);
  EXPECT_EQ(Answers((*reopened)->processor(), queries), golden);
  // The recovered database keeps mutating durably.
  ASSERT_TRUE((*reopened)->RemoveGraph(4).ok());
  fs::remove_all(dir);
}

TEST(DurableDbTest, CheckpointTruncatesWalAndSkipsReplay) {
  const std::string dir = FreshDir("pgsim_durable_ckpt");
  auto base = SmallDatabase(7021, 6);
  auto extra = SmallDatabase(7023, 1);
  const std::vector<Graph> queries = {base[1].certain(), extra[0].certain()};
  std::vector<std::vector<uint32_t>> golden;
  uint64_t wal_after_ckpt = 0;
  {
    auto db = DurableDatabase::Create(dir, base, FastBuild(), ExactFilter());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->AddGraph(extra[0], 23).ok());
    const uint64_t wal_with_record = (*db)->wal_size_bytes();
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ((*db)->snapshot_generation(), 1u);
    EXPECT_EQ((*db)->mutations_since_checkpoint(), 0u);
    wal_after_ckpt = (*db)->wal_size_bytes();
    EXPECT_LT(wal_after_ckpt, wal_with_record);
    golden = Answers((*db)->processor(), queries);
  }
  // The old generation was unlinked; the new one is authoritative.
  EXPECT_FALSE(fs::exists(dir + "/snap-0.db"));
  EXPECT_TRUE(fs::exists(dir + "/snap-1.db"));

  auto reopened = DurableDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovery().snapshot_gen, 1u);
  EXPECT_EQ((*reopened)->recovery().wal_records_replayed, 0u);
  EXPECT_EQ(Answers((*reopened)->processor(), queries), golden);
  fs::remove_all(dir);
}

TEST(DurableDbTest, AutoCheckpointAfterThreshold) {
  const std::string dir = FreshDir("pgsim_durable_auto");
  DurableDbOptions options;
  options.snapshot_every = 2;
  auto db = DurableDatabase::Create(dir, SmallDatabase(7031, 6), FastBuild(),
                                    ExactFilter(), options);
  ASSERT_TRUE(db.ok());
  auto extra = SmallDatabase(7033, 1);
  ASSERT_TRUE((*db)->AddGraph(extra[0], 5).ok());
  EXPECT_EQ((*db)->snapshot_generation(), 0u);
  ASSERT_TRUE((*db)->RemoveGraph(1).ok());  // second mutation: checkpoint
  EXPECT_EQ((*db)->snapshot_generation(), 1u);
  EXPECT_EQ((*db)->mutations_since_checkpoint(), 0u);
  fs::remove_all(dir);
}

TEST(DurableDbTest, InvalidMutationsLeaveEpochAndWalUntouched) {
  const std::string dir = FreshDir("pgsim_durable_invalid");
  auto db = DurableDatabase::Create(dir, SmallDatabase(7041, 6), FastBuild(),
                                    ExactFilter());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->RemoveGraph(3).ok());
  const uint64_t epoch = (*db)->epoch();
  const uint64_t wal_size = (*db)->wal_size_bytes();

  // Unknown id, out-of-range id, and a tombstoned id are all clean
  // validation errors: nothing reaches the log, the epoch does not move.
  EXPECT_EQ((*db)->RemoveGraph(99).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*db)->RemoveGraph(3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*db)->epoch(), epoch);
  EXPECT_EQ((*db)->wal_size_bytes(), wal_size);

  // The database still serves and mutates normally afterwards.
  auto extra = SmallDatabase(7043, 1);
  EXPECT_TRUE((*db)->AddGraph(extra[0], 9).ok());
  fs::remove_all(dir);
}

TEST(DurableDbTest, InjectedWalErrorIsCleanAndRecoverable) {
  const std::string dir = FreshDir("pgsim_durable_walerr");
  auto db = DurableDatabase::Create(dir, SmallDatabase(7051, 6), FastBuild(),
                                    ExactFilter());
  ASSERT_TRUE(db.ok());
  auto extra = SmallDatabase(7053, 1);

  // The append fails BEFORE anything was applied: no wedge, epoch fixed.
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  FailpointSet("wal.append", spec);
  const uint64_t epoch = (*db)->epoch();
  EXPECT_FALSE((*db)->AddGraph(extra[0], 9).ok());
  EXPECT_EQ((*db)->epoch(), epoch);
  // One-shot failpoint: the retry succeeds.
  EXPECT_TRUE((*db)->AddGraph(extra[0], 9).ok());
  FailpointClearAll();
  fs::remove_all(dir);
}

TEST(DurableDbTest, MutateWhileCheckpointInFlight) {
  const std::string dir = FreshDir("pgsim_durable_concurrent");
  auto db = DurableDatabase::Create(dir, SmallDatabase(7061, 8), FastBuild(),
                                    ExactFilter());
  ASSERT_TRUE(db.ok());
  auto extra = SmallDatabase(7063, 1);

  // Checkpoints and mutations serialize on the internal mutex: an AddGraph
  // issued while a snapshot is being written simply waits. Hammer both from
  // two threads; every call must come back clean.
  std::thread checkpoints([&] {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*db)->Checkpoint().ok());
    }
  });
  for (int i = 0; i < 4; ++i) {
    auto id = (*db)->AddGraph(extra[0], 100 + i);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*db)->RemoveGraph(*id).ok());
  }
  checkpoints.join();

  // Everything above is durable: a reopen reproduces the final state.
  const std::vector<Graph> queries = {extra[0].certain()};
  const auto golden = Answers((*db)->processor(), queries);
  db->reset();
  auto reopened = DurableDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Answers((*reopened)->processor(), queries), golden);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The fork-kill matrix.
// ---------------------------------------------------------------------------

void CopyDir(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy(entry.path(), to + "/" + entry.path().filename().string());
  }
}

// Child body: arm `site`, reopen the database, run one AddGraph and one
// Checkpoint. Crash failpoints never return; otherwise exits 0 on success,
// a distinct nonzero code on unexpected failure.
[[noreturn]] void ChildMutate(const std::string& dir, const std::string& site,
                              FailpointMode mode, uint32_t keep_bytes,
                              const ProbabilisticGraph& extra) {
  FailpointSpec spec;
  spec.mode = mode;
  spec.keep_bytes = keep_bytes;
  FailpointSet(site, spec);
  auto db = DurableDatabase::Open(dir);
  if (!db.ok()) _exit(40);
  auto id = (*db)->AddGraph(extra, 23);
  if (!id.ok()) _exit(41);
  if (!(*db)->Checkpoint().ok()) _exit(42);
  _exit(0);
}

TEST(CrashRecoveryTest, KillMatrixRecoversPreOrPostState) {
  const std::string pristine = FreshDir("pgsim_kill_pristine");
  auto base = SmallDatabase(7071, 6);
  auto extra = SmallDatabase(7073, 1);
  // Small queries (2-edge subgraphs) so answer sets are nonempty and the
  // added graph actually shows up in them.
  Rng rng(7079);
  const std::vector<Graph> queries = {
      ExtractQuery(base[0].certain(), 2, &rng).value(),
      ExtractQuery(base[4].certain(), 2, &rng).value(),
      ExtractQuery(extra[0].certain(), 2, &rng).value()};

  std::vector<std::vector<uint32_t>> before, after;
  {
    auto db =
        DurableDatabase::Create(pristine, base, FastBuild(), ExactFilter());
    ASSERT_TRUE(db.ok());
    before = Answers((*db)->processor(), queries);
  }
  // Register the full site universe (and compute the post-mutation golden
  // answers) with one fault-free warmup cycle on a scratch copy.
  const std::string warmup = FreshDir("pgsim_kill_warmup");
  CopyDir(pristine, warmup);
  {
    auto db = DurableDatabase::Open(warmup);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->AddGraph(extra[0], 23).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    after = Answers((*db)->processor(), queries);
  }
  ASSERT_NE(before, after);  // the mutation must be observable

  std::vector<std::string> sites;
  for (const std::string& site : FailpointKnownSites()) {
    if (site.rfind("wal.", 0) == 0 || site.rfind("snapshot.", 0) == 0) {
      sites.push_back(site);
    }
  }
  // The matrix must cover the whole durability path, not a subset.
  auto requires_site = [&](const char* s) {
    ASSERT_NE(std::find(sites.begin(), sites.end(), s), sites.end())
        << "site " << s << " never registered";
  };
  requires_site("wal.append");
  requires_site("wal.append.write");
  requires_site("wal.append.sync");
  requires_site("wal.append.after");
  requires_site("wal.reset");
  requires_site("snapshot.db.rename");
  requires_site("snapshot.pmi.write");
  requires_site("snapshot.filter.sync");
  requires_site("snapshot.manifest.rename");

  for (const std::string& site : sites) {
    // Write sites additionally get a torn-write run (partial payload, then
    // the kill); every site gets a plain crash run.
    std::vector<std::pair<FailpointMode, uint32_t>> faults = {
        {FailpointMode::kCrash, 0}};
    if (site.size() > 6 && site.compare(site.size() - 6, 6, ".write") == 0) {
      faults.push_back({FailpointMode::kTornWrite, 6});
    }
    for (const auto& [mode, keep] : faults) {
      const std::string dir = FreshDir("pgsim_kill_run");
      CopyDir(pristine, dir);

      const pid_t pid = fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        ChildMutate(dir, site, mode, keep, extra[0]);
      }
      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus)) << "site " << site;
      const int code = WEXITSTATUS(wstatus);
      ASSERT_TRUE(code == kFailpointCrashExitCode || code == 0)
          << "site " << site << " exited " << code;

      auto recovered = DurableDatabase::Open(dir);
      ASSERT_TRUE(recovered.ok())
          << "site " << site << ": " << recovered.status().ToString();
      const auto answers = Answers((*recovered)->processor(), queries);
      if (code == 0) {
        // The child finished: recovery must see the post-mutation state.
        EXPECT_EQ(answers, after) << "site " << site;
      } else {
        EXPECT_TRUE(answers == before || answers == after)
            << "site " << site << " recovered a state that is neither the "
            << "pre- nor the post-mutation database";
      }
      // Whatever state it recovered, the database must keep working.
      ASSERT_TRUE((*recovered)->RemoveGraph(1).ok()) << "site " << site;
      fs::remove_all(dir);
    }
  }
  fs::remove_all(pristine);
  fs::remove_all(warmup);
}

TEST(CrashRecoveryTest, EnvironmentVariableArmsFailpoints) {
  // The CI kill matrix drives children through PGSIM_FAILPOINTS; pin the
  // install path end to end.
  ASSERT_EQ(setenv("PGSIM_FAILPOINTS", "env_test.site=error", 1), 0);
  ASSERT_TRUE(FailpointInstallFromEnv().ok());
  EXPECT_FALSE(FailpointCheck("env_test.site").ok());
  unsetenv("PGSIM_FAILPOINTS");
  FailpointClearAll();
}

}  // namespace
}  // namespace pgsim
